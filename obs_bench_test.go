package godcdo_test

import (
	"context"

	"testing"

	"godcdo/internal/legion"
	"godcdo/internal/naming"
	"godcdo/internal/registry"
	"godcdo/internal/transport"
	"godcdo/internal/vclock"
	"godcdo/internal/workload"
)

// BenchmarkInvokeTracingOff measures the allocation cost of one in-process
// invoke through legion.Node with no observability installed. `make vet-obs`
// asserts allocs/op stays at the seed baseline: the obs layer must be
// zero-cost when disabled.
func BenchmarkInvokeTracingOff(b *testing.B) {
	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	server, err := legion.NewNode(legion.NodeConfig{Name: "obs-off-server", Agent: agent, Inproc: net})
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	client, err := legion.NewNode(legion.NodeConfig{Name: "obs-off-client", Agent: agent, Inproc: net})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	reg := registry.New()
	obj, _ := buildDCDO(b, reg, workload.Spec{Prefix: "obsoff", Functions: 20, Components: 2}, 1)
	if _, err := server.HostObject(obj.LOID(), obj); err != nil {
		b.Fatal(err)
	}
	target := workload.LeafName("obsoff", 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Client().Invoke(context.Background(), obj.LOID(), target, nil); err != nil {
			b.Fatal(err)
		}
	}
}
