package godcdo_test

import (
	"context"

	"testing"

	"godcdo/internal/legion"
	"godcdo/internal/naming"
	"godcdo/internal/obs"
	"godcdo/internal/registry"
	"godcdo/internal/transport"
	"godcdo/internal/vclock"
	"godcdo/internal/workload"
)

// BenchmarkInvokeTracingOff measures the allocation cost of one in-process
// invoke through legion.Node with no observability installed. `make vet-obs`
// asserts allocs/op stays at the seed baseline: the obs layer must be
// zero-cost when disabled.
func BenchmarkInvokeTracingOff(b *testing.B) {
	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	server, err := legion.NewNode(legion.NodeConfig{Name: "obs-off-server", Agent: agent, Inproc: net})
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	client, err := legion.NewNode(legion.NodeConfig{Name: "obs-off-client", Agent: agent, Inproc: net})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	reg := registry.New()
	obj, _ := buildDCDO(b, reg, workload.Spec{Prefix: "obsoff", Functions: 20, Components: 2}, 1)
	if _, err := server.HostObject(obj.LOID(), obj); err != nil {
		b.Fatal(err)
	}
	target := workload.LeafName("obsoff", 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Client().Invoke(context.Background(), obj.LOID(), target, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvokeUnsampled measures the allocation cost of an invoke whose
// trace the head sampler drops: tracing is on, a flight recorder is armed,
// but the call is healthy and fast, so nothing is retained. `make vet-obs`
// asserts allocs/op stays within UNSAMPLED_ALLOC_BASELINE — near the
// tracing-off cost — because at a 1% sample rate this is 99% of all calls.
func BenchmarkInvokeUnsampled(b *testing.B) {
	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	// A sample rate low enough that no trace in any plausible b.N is kept:
	// every iteration takes the unsampled path.
	o := obs.NewWithOptions(obs.Options{
		SampleRate:      1e-9,
		FlightCapacity:  obs.DefaultFlightCapacity,
		FlightThreshold: obs.DefaultFlightThreshold,
	})
	server, err := legion.NewNode(legion.NodeConfig{Name: "obs-unsampled-server", Agent: agent, Inproc: net, Obs: o})
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	client, err := legion.NewNode(legion.NodeConfig{Name: "obs-unsampled-client", Agent: agent, Inproc: net, Obs: o})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	reg := registry.New()
	obj, _ := buildDCDO(b, reg, workload.Spec{Prefix: "obsuns", Functions: 20, Components: 2}, 1)
	if _, err := server.HostObject(obj.LOID(), obj); err != nil {
		b.Fatal(err)
	}
	target := workload.LeafName("obsuns", 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Client().Invoke(context.Background(), obj.LOID(), target, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := len(o.Tracer.Recent(0)); got != 0 {
		b.Fatalf("unsampled benchmark recorded %d spans", got)
	}
	if st := o.GetFlight().Stats(); st.Retained != 0 {
		b.Fatalf("unsampled benchmark retained %d traces", st.Retained)
	}
}
