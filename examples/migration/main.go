// Command migration moves a live, stateful DCDO between two hosts of
// *different architectures* (§2.1 of the paper): functionally equivalent
// implementations of the same components are interchangeable, so the object
// comes back up at the destination bound to the implementation matching
// that host, with its state intact and clients healing their bindings
// automatically.
package main

import (
	"context"

	"fmt"
	"log"

	"godcdo/dcdo"
	"godcdo/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func counterFuncs(build string) map[string]dcdo.Func {
	return map[string]dcdo.Func{
		"inc": func(c dcdo.Caller, _ []byte) ([]byte, error) {
			var n uint64
			if raw, ok := c.State().Get("n"); ok {
				n, _ = wire.NewDecoder(raw).Uvarint()
			}
			e := wire.NewEncoder(8)
			e.PutUvarint(n + 1)
			c.State().Set("n", e.Bytes())
			return e.Bytes(), nil
		},
		"build": func(dcdo.Caller, []byte) ([]byte, error) {
			return []byte(build), nil
		},
	}
}

func run() error {
	// The same component, "compiled" for two architectures. In Legion this
	// would be two executables in two ICOs; here both binds live in the
	// registry under one code reference, distinguished by implementation
	// type, and the component descriptor is marked portable ("any").
	amd64 := dcdo.ImplType{Arch: "amd64", Format: "registry", Language: "go"}
	arm64 := dcdo.ImplType{Arch: "arm64", Format: "registry", Language: "go"}

	reg := dcdo.NewRegistry()
	if _, err := reg.Register("counter:1", amd64, counterFuncs("amd64 build")); err != nil {
		return err
	}
	if _, err := reg.Register("counter:1", arm64, counterFuncs("arm64 build")); err != nil {
		return err
	}
	comp, err := dcdo.NewSyntheticComponent(dcdo.ComponentDescriptor{
		ID: "counter", Revision: 1, CodeRef: "counter:1",
		Impl: dcdo.AnyImplType, CodeSize: 16 << 10,
		Functions: []dcdo.FunctionDecl{
			{Name: "inc", Exported: true},
			{Name: "build", Exported: true},
		},
	})
	if err != nil {
		return err
	}
	ico := dcdo.NewAllocator(1, 9).Next()
	fetcher := dcdo.FetcherFunc(func(dcdo.LOID) (*dcdo.Component, error) { return comp, nil })

	// Two hosts of different architectures sharing one binding agent.
	agent := dcdo.NewBindingAgent()
	net := dcdo.NewInprocNetwork()
	amdHost, err := dcdo.NewNode(dcdo.NodeConfig{Name: "amd64-host", Agent: agent, Inproc: net, HostImpl: amd64})
	if err != nil {
		return err
	}
	defer amdHost.Close()
	armHost, err := dcdo.NewNode(dcdo.NodeConfig{Name: "arm64-host", Agent: agent, Inproc: net, HostImpl: arm64})
	if err != nil {
		return err
	}
	defer armHost.Close()
	clientNode, err := dcdo.NewNode(dcdo.NodeConfig{Name: "client", Agent: agent, Inproc: net})
	if err != nil {
		return err
	}
	defer clientNode.Close()

	// The object starts on the amd64 host.
	loid := dcdo.NewAllocator(1, 1).Next()
	obj := dcdo.New(dcdo.Config{LOID: loid, Registry: reg, Fetcher: fetcher, HostImpl: amd64})
	if err := obj.IncorporateComponent(comp, ico, true); err != nil {
		return err
	}
	obj.SetVersion(dcdo.RootVersion)
	if _, err := amdHost.HostObject(loid, obj); err != nil {
		return err
	}

	invoke := func(method string) (string, error) {
		out, err := clientNode.Client().Invoke(context.Background(), loid, method, nil)
		return string(out), err
	}
	show := func(stage string) error {
		build, err := invoke("build")
		if err != nil {
			return err
		}
		count, err := invoke("inc")
		if err != nil {
			return err
		}
		n, _ := wire.NewDecoder([]byte(count)).Uvarint()
		fmt.Printf("%-18s running %q, counter now %d\n", stage, build, n)
		return nil
	}

	if err := show("before migration:"); err != nil {
		return err
	}
	if err := show("before migration:"); err != nil {
		return err
	}

	// Migrate: the destination incarnation is configured for the arm64
	// host; the capture carries version, configuration, and state, and the
	// destination rebuilds the implementation from arm64 binds.
	target := dcdo.New(dcdo.Config{LOID: loid, Registry: reg, Fetcher: fetcher, HostImpl: arm64})
	if err := dcdo.Migrate(loid, amdHost, armHost, obj, target); err != nil {
		return err
	}
	fmt.Printf("migrated %s from %s to %s\n", loid, amdHost.Name(), armHost.Name())

	// The client's cached binding is stale; its next call heals it
	// transparently, and the counter carries on from where it was.
	if err := show("after migration:"); err != nil {
		return err
	}
	if err := show("after migration:"); err != nil {
		return err
	}
	return nil
}
