// Command sortdep reproduces the paper's sort()/compare() scenario (§3.2):
// sort delegates comparisons to the dynamic function compare; replacing
// compare's implementation silently reverses sort's output, and a Type B
// behavioural dependency is the tool that prevents exactly that.
package main

import (
	"errors"
	"fmt"
	"log"
	"sort"

	"godcdo/dcdo"
	"godcdo/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func encodeInts(vals []int64) []byte {
	e := wire.NewEncoder(8 * len(vals))
	e.PutUvarint(uint64(len(vals)))
	for _, v := range vals {
		e.PutVarint(v)
	}
	return e.Bytes()
}

func decodeInts(buf []byte) ([]int64, error) {
	d := wire.NewDecoder(buf)
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, n)
	for i := uint64(0); i < n; i++ {
		v, err := d.Varint()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// sortImpl sorts its payload, delegating every comparison to the dynamic
// function "compare" through the DFM.
func sortImpl(c dcdo.Caller, args []byte) ([]byte, error) {
	vals, err := decodeInts(args)
	if err != nil {
		return nil, err
	}
	var callErr error
	sort.SliceStable(vals, func(i, j int) bool {
		if callErr != nil {
			return false
		}
		e := wire.NewEncoder(16)
		e.PutVarint(vals[i])
		e.PutVarint(vals[j])
		res, err := c.CallInternal("compare", e.Bytes())
		if err != nil {
			callErr = err
			return false
		}
		cmp, err := wire.NewDecoder(res).Varint()
		if err != nil {
			callErr = err
			return false
		}
		return cmp < 0
	})
	if callErr != nil {
		return nil, callErr
	}
	return encodeInts(vals), nil
}

func compareImpl(descending bool) dcdo.Func {
	return func(_ dcdo.Caller, args []byte) ([]byte, error) {
		d := wire.NewDecoder(args)
		a, err := d.Varint()
		if err != nil {
			return nil, err
		}
		b, err := d.Varint()
		if err != nil {
			return nil, err
		}
		cmp := int64(0)
		switch {
		case a < b:
			cmp = -1
		case a > b:
			cmp = 1
		}
		if descending {
			cmp = -cmp
		}
		e := wire.NewEncoder(4)
		e.PutVarint(cmp)
		return e.Bytes(), nil
	}
}

func run() error {
	reg := dcdo.NewRegistry()
	if _, err := reg.Register("mathlib:1", dcdo.NativeImplType, map[string]dcdo.Func{
		"sort":    sortImpl,
		"compare": compareImpl(false),
	}); err != nil {
		return err
	}
	if _, err := reg.Register("revlib:1", dcdo.NativeImplType, map[string]dcdo.Func{
		"compare": compareImpl(true),
	}); err != nil {
		return err
	}

	icoAlloc := dcdo.NewAllocator(1, 9)
	icoMath, icoRev := icoAlloc.Next(), icoAlloc.Next()
	mathComp, err := dcdo.NewSyntheticComponent(dcdo.ComponentDescriptor{
		ID: "mathlib", Revision: 1, CodeRef: "mathlib:1",
		Impl: dcdo.NativeImplType, CodeSize: 8 << 10,
		Functions: []dcdo.FunctionDecl{
			{Name: "sort", Exported: true, Calls: []string{"compare"}},
			{Name: "compare"},
		},
	})
	if err != nil {
		return err
	}
	revComp, err := dcdo.NewSyntheticComponent(dcdo.ComponentDescriptor{
		ID: "revlib", Revision: 1, CodeRef: "revlib:1",
		Impl: dcdo.NativeImplType, CodeSize: 2 << 10,
		Functions: []dcdo.FunctionDecl{{Name: "compare"}},
	})
	if err != nil {
		return err
	}
	byICO := map[dcdo.LOID]*dcdo.Component{icoMath: mathComp, icoRev: revComp}
	fetcher := dcdo.FetcherFunc(func(ico dcdo.LOID) (*dcdo.Component, error) {
		c, ok := byICO[ico]
		if !ok {
			return nil, fmt.Errorf("no component at %s", ico)
		}
		return c, nil
	})

	obj := dcdo.New(dcdo.Config{
		LOID:     dcdo.NewAllocator(1, 1).Next(),
		Registry: reg,
		Fetcher:  fetcher,
	})
	if err := obj.IncorporateComponent(mathComp, icoMath, true); err != nil {
		return err
	}
	if err := obj.IncorporateComponent(revComp, icoRev, false); err != nil {
		return err
	}

	input := []int64{5, 1, 4, 2, 3}
	show := func(label string) error {
		out, err := obj.InvokeMethod("sort", encodeInts(input))
		if err != nil {
			return err
		}
		vals, err := decodeInts(out)
		if err != nil {
			return err
		}
		fmt.Printf("%-34s sort(%v) = %v\n", label, input, vals)
		return nil
	}

	if err := show("ascending compare (mathlib):"); err != nil {
		return err
	}

	// Swap compare's implementation: same signature, reversed behaviour.
	// No structural dependency is violated — but sort's output flips.
	mathCompare := dcdo.EntryKey{Function: "compare", Component: "mathlib"}
	revCompare := dcdo.EntryKey{Function: "compare", Component: "revlib"}
	if err := obj.DisableFunction(mathCompare); err != nil {
		return err
	}
	if err := obj.EnableFunction(revCompare); err != nil {
		return err
	}
	if err := show("after silent swap (revlib):"); err != nil {
		return err
	}

	// Swap back, then declare what the provider of sort() wanted all
	// along: a Type B behavioural dependency pinning sort to mathlib's
	// compare.
	if err := obj.DisableFunction(revCompare); err != nil {
		return err
	}
	if err := obj.EnableFunction(mathCompare); err != nil {
		return err
	}
	dep := dcdo.Dependency{
		Kind: dcdo.DepB, FromFunc: "sort", FromComp: "mathlib",
		ToFunc: "compare", ToComp: "mathlib",
	}
	if err := obj.AddDependency(dep); err != nil {
		return err
	}
	fmt.Printf("installed behavioural dependency        %s\n", dep)

	err = obj.DisableFunction(mathCompare)
	fmt.Printf("disable compare@mathlib now refused:    %v\n", err)
	if err == nil {
		return errors.New("dependency failed to protect sort")
	}

	// The protection is not permanent hardwiring: disable sort first and
	// the dependency's premise goes away.
	if err := obj.DisableFunction(dcdo.EntryKey{Function: "sort", Component: "mathlib"}); err != nil {
		return err
	}
	if err := obj.DisableFunction(mathCompare); err != nil {
		return err
	}
	fmt.Println("after disabling sort, compare can evolve freely again")
	return nil
}
