// Command quickstart walks the DCDO model end to end in one process:
// register function implementations, publish them as components, create a
// DCDO under a DCDO Manager, invoke it, then evolve it on the fly to a new
// version — without the object ever stopping.
package main

import (
	"context"

	"fmt"
	"log"

	"godcdo/dcdo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The code registry stands in for dynamic linking: every function
	// implementation is published under a code reference.
	reg := dcdo.NewRegistry()
	if _, err := reg.Register("greeter-en:1", dcdo.NativeImplType, map[string]dcdo.Func{
		"greet": func(dcdo.Caller, []byte) ([]byte, error) { return []byte("hello, world"), nil },
	}); err != nil {
		return err
	}
	if _, err := reg.Register("greeter-fr:1", dcdo.NativeImplType, map[string]dcdo.Func{
		"greet": func(dcdo.Caller, []byte) ([]byte, error) { return []byte("bonjour, monde"), nil },
	}); err != nil {
		return err
	}

	// 2. Wrap each implementation in a component, served by an ICO named
	// by a LOID.
	icoAlloc := dcdo.NewAllocator(1, 9)
	icoEN, icoFR := icoAlloc.Next(), icoAlloc.Next()
	components := map[dcdo.LOID]*dcdo.Component{}
	for _, c := range []struct {
		ico     dcdo.LOID
		id, ref string
	}{{icoEN, "greeter-en", "greeter-en:1"}, {icoFR, "greeter-fr", "greeter-fr:1"}} {
		comp, err := dcdo.NewSyntheticComponent(dcdo.ComponentDescriptor{
			ID: c.id, Revision: 1, CodeRef: c.ref,
			Impl: dcdo.NativeImplType, CodeSize: 4 << 10,
			Functions: []dcdo.FunctionDecl{{Name: "greet", Exported: true}},
		})
		if err != nil {
			return err
		}
		components[c.ico] = comp
	}
	fetcher := dcdo.FetcherFunc(func(ico dcdo.LOID) (*dcdo.Component, error) {
		c, ok := components[ico]
		if !ok {
			return nil, fmt.Errorf("no component at %s", ico)
		}
		return c, nil
	})

	// 3. A DCDO Manager holds the version tree. Version 1 enables the
	// English greeter; version 1.1 swaps in the French one.
	mgr := dcdo.NewManager(dcdo.SingleVersion, dcdo.Proactive)
	rootDesc := dcdo.NewDescriptor()
	rootDesc.Components["greeter-en"] = dcdo.ComponentRef{
		ICO: icoEN, CodeRef: "greeter-en:1", Impl: dcdo.NativeImplType, CodeSize: 4 << 10, Revision: 1,
	}
	rootDesc.Components["greeter-fr"] = dcdo.ComponentRef{
		ICO: icoFR, CodeRef: "greeter-fr:1", Impl: dcdo.NativeImplType, CodeSize: 4 << 10, Revision: 1,
	}
	rootDesc.Entries = []dcdo.EntryDesc{
		{Function: "greet", Component: "greeter-en", Exported: true, Enabled: true},
		{Function: "greet", Component: "greeter-fr", Exported: true, Enabled: false},
	}
	root, err := mgr.Store().CreateRoot(rootDesc)
	if err != nil {
		return err
	}
	if err := mgr.Store().MarkInstantiable(root); err != nil {
		return err
	}
	if err := mgr.SetCurrentVersion(context.Background(), root); err != nil {
		return err
	}

	// 4. Create a DCDO at the current version and invoke it.
	obj := dcdo.New(dcdo.Config{
		LOID:     dcdo.NewAllocator(1, 1).Next(),
		Registry: reg,
		Fetcher:  fetcher,
	})
	if err := mgr.CreateInstance(context.Background(), dcdo.LocalInstance{Obj: obj}, nil, dcdo.NativeImplType); err != nil {
		return err
	}
	out, err := obj.InvokeMethod("greet", nil)
	if err != nil {
		return err
	}
	fmt.Printf("version %s: greet() = %q   interface = %v\n", obj.Version(), out, obj.Interface())

	// 5. Derive version 1.1 (logical copy), reconfigure it, mark it
	// instantiable, and designate it current. Under the proactive policy
	// the running object evolves immediately — no restart, no downtime.
	child, err := mgr.Store().Derive(root)
	if err != nil {
		return err
	}
	err = mgr.Store().Configure(child, func(d *dcdo.Descriptor) error {
		d.Entry(dcdo.EntryKey{Function: "greet", Component: "greeter-en"}).Enabled = false
		d.Entry(dcdo.EntryKey{Function: "greet", Component: "greeter-fr"}).Enabled = true
		return nil
	})
	if err != nil {
		return err
	}
	if err := mgr.Store().MarkInstantiable(child); err != nil {
		return err
	}
	if err := mgr.SetCurrentVersion(context.Background(), child); err != nil {
		return err
	}

	out, err = obj.InvokeMethod("greet", nil)
	if err != nil {
		return err
	}
	fmt.Printf("version %s: greet() = %q   interface = %v\n", obj.Version(), out, obj.Interface())

	rec, err := mgr.RecordOf(obj.LOID())
	if err != nil {
		return err
	}
	fmt.Printf("manager table: %s at version %s (%s)\n", rec.LOID, rec.Version, rec.Impl)
	return nil
}
