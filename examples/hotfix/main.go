// Command hotfix upgrades a live service over real TCP while clients hammer
// it: a pricing DCDO is evolved from v1 (flat pricing) to v1.1 (bulk
// discount) mid-traffic, with zero downtime. It then prints what the same
// change costs with the traditional mechanism — replacing the monolithic
// executable — using the paper's Centurion cost model.
package main

import (
	"context"

	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"godcdo/dcdo"
	"godcdo/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// priceV1 charges 100 per unit, flat.
func priceV1(_ dcdo.Caller, args []byte) ([]byte, error) {
	qty, err := wire.NewDecoder(args).Uvarint()
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder(8)
	e.PutUvarint(qty * 100)
	return e.Bytes(), nil
}

// priceV2 gives 20% off above 10 units — the hotfix.
func priceV2(_ dcdo.Caller, args []byte) ([]byte, error) {
	qty, err := wire.NewDecoder(args).Uvarint()
	if err != nil {
		return nil, err
	}
	total := qty * 100
	if qty > 10 {
		total = total * 80 / 100
	}
	e := wire.NewEncoder(8)
	e.PutUvarint(total)
	return e.Bytes(), nil
}

func run() error {
	// --- Build the object type: two pricing components. ---
	reg := dcdo.NewRegistry()
	if _, err := reg.Register("pricing-v1:1", dcdo.NativeImplType,
		map[string]dcdo.Func{"price": priceV1}); err != nil {
		return err
	}
	if _, err := reg.Register("pricing-v2:1", dcdo.NativeImplType,
		map[string]dcdo.Func{"price": priceV2}); err != nil {
		return err
	}
	icoAlloc := dcdo.NewAllocator(1, 9)
	icoV1, icoV2 := icoAlloc.Next(), icoAlloc.Next()
	comps := map[dcdo.LOID]*dcdo.Component{}
	for _, c := range []struct {
		ico     dcdo.LOID
		id, ref string
	}{{icoV1, "pricing-v1", "pricing-v1:1"}, {icoV2, "pricing-v2", "pricing-v2:1"}} {
		comp, err := dcdo.NewSyntheticComponent(dcdo.ComponentDescriptor{
			ID: c.id, Revision: 1, CodeRef: c.ref,
			Impl: dcdo.NativeImplType, CodeSize: 550 << 10,
			Functions: []dcdo.FunctionDecl{{Name: "price", Exported: true}},
		})
		if err != nil {
			return err
		}
		comps[c.ico] = comp
	}
	fetcher := dcdo.FetcherFunc(func(ico dcdo.LOID) (*dcdo.Component, error) {
		c, ok := comps[ico]
		if !ok {
			return nil, fmt.Errorf("no component at %s", ico)
		}
		return c, nil
	})

	// --- Serve the DCDO on a real TCP node. ---
	agent := dcdo.NewBindingAgent()
	server, err := dcdo.NewNode(dcdo.NodeConfig{Name: "pricing-server", Agent: agent})
	if err != nil {
		return err
	}
	defer server.Close()
	clientNode, err := dcdo.NewNode(dcdo.NodeConfig{Name: "storefront", Agent: agent})
	if err != nil {
		return err
	}
	defer clientNode.Close()

	obj := dcdo.New(dcdo.Config{
		LOID:     dcdo.NewAllocator(1, 1).Next(),
		Registry: reg,
		Fetcher:  fetcher,
	})
	v1Desc := dcdo.NewDescriptor()
	v1Desc.Components["pricing-v1"] = dcdo.ComponentRef{
		ICO: icoV1, CodeRef: "pricing-v1:1", Impl: dcdo.NativeImplType, CodeSize: 550 << 10, Revision: 1,
	}
	v1Desc.Entries = []dcdo.EntryDesc{
		{Function: "price", Component: "pricing-v1", Exported: true, Enabled: true},
	}
	if _, err := obj.ApplyDescriptor(context.Background(), v1Desc, dcdo.RootVersion); err != nil {
		return err
	}
	if _, err := server.HostObject(obj.LOID(), obj); err != nil {
		return err
	}
	fmt.Printf("pricing service %s live at %s, version %s\n", obj.LOID(), server.Endpoint(), obj.Version())

	// --- Clients hammer the service over TCP while we upgrade. ---
	var (
		stop     = make(chan struct{})
		done     sync.WaitGroup
		requests atomic.Uint64
		failures atomic.Uint64
		flatSeen atomic.Uint64
		discSeen atomic.Uint64
	)
	const qty = 20 // 20 units: 2000 flat, 1600 discounted
	for w := 0; w < 4; w++ {
		done.Add(1)
		go func() {
			defer done.Done()
			args := wire.NewEncoder(8)
			args.PutUvarint(qty)
			for {
				select {
				case <-stop:
					return
				default:
				}
				out, err := clientNode.Client().Invoke(context.Background(), obj.LOID(), "price", args.Bytes())
				requests.Add(1)
				if err != nil {
					if errors.Is(err, dcdo.ErrFunctionDisabled) {
						continue // transient mid-swap; retry per §3.2
					}
					failures.Add(1)
					continue
				}
				total, err := wire.NewDecoder(out).Uvarint()
				if err != nil {
					failures.Add(1)
					continue
				}
				switch total {
				case 2000:
					flatSeen.Add(1)
				case 1600:
					discSeen.Add(1)
				default:
					failures.Add(1)
				}
			}
		}()
	}

	time.Sleep(150 * time.Millisecond) // let traffic build

	// --- The hotfix: evolve to v1.1 while traffic flows. ---
	v11Desc := v1Desc.Clone()
	v11Desc.Components["pricing-v2"] = dcdo.ComponentRef{
		ICO: icoV2, CodeRef: "pricing-v2:1", Impl: dcdo.NativeImplType, CodeSize: 550 << 10, Revision: 1,
	}
	v11Desc.Entry(dcdo.EntryKey{Function: "price", Component: "pricing-v1"}).Enabled = false
	v11Desc.Entries = append(v11Desc.Entries, dcdo.EntryDesc{
		Function: "price", Component: "pricing-v2", Exported: true, Enabled: true,
	})
	upgradeStart := time.Now()
	report, err := obj.ApplyDescriptor(context.Background(), v11Desc, dcdo.VersionID{1, 1})
	if err != nil {
		return err
	}
	upgradeTook := time.Since(upgradeStart)

	time.Sleep(150 * time.Millisecond) // observe post-upgrade traffic
	close(stop)
	done.Wait()

	fmt.Printf("hot upgrade to %s took %v (components added: %d, bytes fetched: %d)\n",
		obj.Version(), upgradeTook, report.ComponentsAdded, report.BytesFetched)
	fmt.Printf("traffic during upgrade: %d requests, %d hard failures\n",
		requests.Load(), failures.Load())
	fmt.Printf("responses observed: %d flat-priced (v1), %d discounted (v1.1)\n",
		flatSeen.Load(), discSeen.Load())
	if failures.Load() > 0 {
		return errors.New("hot upgrade dropped requests")
	}

	// --- What the traditional mechanism would have cost. ---
	model := dcdo.CenturionModel()
	download := model.TransferTime(550 << 10)
	spawn := model.ProcessSpawn
	var sched dcdo.DiscoverySchedule
	sched.Timeout, sched.Attempts, sched.Backoff = 10*time.Second, 3, time.Second
	rebind := sched.TotalDiscoveryTime()
	fmt.Println()
	fmt.Println("the same change by replacing the monolithic executable (Centurion model):")
	fmt.Printf("  download new 550KB executable: %v\n", download)
	fmt.Printf("  create new process:            %v\n", spawn)
	fmt.Printf("  clients discover stale binding: %v\n", rebind)
	fmt.Printf("  total service disruption:      %v  (vs %v hot)\n",
		download+spawn+rebind, upgradeTook)
	return nil
}
