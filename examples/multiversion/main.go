// Command multiversion runs a fleet of DCDOs under a multi-version DCDO
// Manager with the increasing-version-number policy (§3.5): versions form a
// tree, instances may only evolve to descendants of their own version, and
// different instances legitimately coexist at different versions.
package main

import (
	"context"

	"errors"
	"fmt"
	"log"

	"godcdo/dcdo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Implementations: three revisions of a "motd" function.
	reg := dcdo.NewRegistry()
	revs := map[string]string{
		"motd:1": "v1: welcome",
		"motd:2": "v1.1: welcome, now with colours",
		"motd:3": "v1.1.1: welcome, colours fixed",
	}
	for ref, msg := range revs {
		msg := msg
		if _, err := reg.Register(ref, dcdo.NativeImplType, map[string]dcdo.Func{
			"motd": func(dcdo.Caller, []byte) ([]byte, error) { return []byte(msg), nil },
		}); err != nil {
			return err
		}
	}

	// One component per revision, each behind its own ICO LOID.
	icoAlloc := dcdo.NewAllocator(1, 9)
	byICO := map[dcdo.LOID]*dcdo.Component{}
	icoFor := map[string]dcdo.LOID{}
	for i, ref := range []string{"motd:1", "motd:2", "motd:3"} {
		id := fmt.Sprintf("motd-r%d", i+1)
		comp, err := dcdo.NewSyntheticComponent(dcdo.ComponentDescriptor{
			ID: id, Revision: uint64(i + 1), CodeRef: ref,
			Impl: dcdo.NativeImplType, CodeSize: 2 << 10,
			Functions: []dcdo.FunctionDecl{{Name: "motd", Exported: true}},
		})
		if err != nil {
			return err
		}
		ico := icoAlloc.Next()
		byICO[ico] = comp
		icoFor[id] = ico
	}
	fetcher := dcdo.FetcherFunc(func(ico dcdo.LOID) (*dcdo.Component, error) {
		c, ok := byICO[ico]
		if !ok {
			return nil, fmt.Errorf("no component at %s", ico)
		}
		return c, nil
	})

	// Manager with the increasing-version-number style.
	mgr := dcdo.NewManager(dcdo.MultiIncreasing, dcdo.Explicit)
	descFor := func(compID, codeRef string, rev uint64) *dcdo.Descriptor {
		d := dcdo.NewDescriptor()
		d.Components[compID] = dcdo.ComponentRef{
			ICO: icoFor[compID], CodeRef: codeRef,
			Impl: dcdo.NativeImplType, CodeSize: 2 << 10, Revision: rev,
		}
		d.Entries = []dcdo.EntryDesc{
			{Function: "motd", Component: compID, Exported: true, Enabled: true},
		}
		return d
	}

	// Version tree: 1 -> 1.1 -> 1.1.1, all instantiable.
	v1, err := mgr.Store().CreateRoot(descFor("motd-r1", "motd:1", 1))
	if err != nil {
		return err
	}
	if err := mgr.Store().MarkInstantiable(v1); err != nil {
		return err
	}
	define := func(parent dcdo.VersionID, compID, codeRef string, rev uint64) (dcdo.VersionID, error) {
		child, err := mgr.Store().Derive(parent)
		if err != nil {
			return nil, err
		}
		err = mgr.Store().Configure(child, func(d *dcdo.Descriptor) error {
			*d = *descFor(compID, codeRef, rev)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return child, mgr.Store().MarkInstantiable(child)
	}
	v11, err := define(v1, "motd-r2", "motd:2", 2)
	if err != nil {
		return err
	}
	v111, err := define(v11, "motd-r3", "motd:3", 3)
	if err != nil {
		return err
	}
	fmt.Printf("version tree: %s -> %s -> %s\n", v1, v11, v111)

	// A fleet of five instances, all created at version 1.
	objAlloc := dcdo.NewAllocator(1, 1)
	fleet := make([]*dcdo.DCDO, 5)
	for i := range fleet {
		fleet[i] = dcdo.New(dcdo.Config{LOID: objAlloc.Next(), Registry: reg, Fetcher: fetcher})
		if err := mgr.CreateInstance(context.Background(), dcdo.LocalInstance{Obj: fleet[i]}, v1, dcdo.NativeImplType); err != nil {
			return err
		}
	}

	// Canary: evolve instances 0–1 to 1.1, then 0 to 1.1.1.
	for _, i := range []int{0, 1} {
		if err := mgr.EvolveInstance(context.Background(), fleet[i].LOID(), v11); err != nil {
			return err
		}
	}
	if err := mgr.EvolveInstance(context.Background(), fleet[0].LOID(), v111); err != nil {
		return err
	}

	fmt.Println("\nDCDO table (instances coexisting at multiple versions):")
	for _, rec := range mgr.Records() {
		var motd []byte
		for _, obj := range fleet {
			if obj.LOID() == rec.LOID {
				motd, _ = obj.InvokeMethod("motd", nil)
			}
		}
		fmt.Printf("  %s  version %-6s  motd=%q\n", rec.LOID, rec.Version, motd)
	}

	// The policy at work: instance 1 (at 1.1) cannot go back to 1, and
	// instance 2 (at 1) cannot jump sideways to a non-descendant.
	err = mgr.EvolveInstance(context.Background(), fleet[1].LOID(), v1)
	fmt.Printf("\nevolve %s from 1.1 back to 1: %v\n", fleet[1].LOID(), err)
	if err == nil {
		return errors.New("increasing-version policy failed to deny ascent")
	}
	// But 1 -> 1.1.1 (skipping 1.1) is fine: still a descendant.
	if err := mgr.EvolveInstance(context.Background(), fleet[2].LOID(), v111); err != nil {
		return err
	}
	out, _ := fleet[2].InvokeMethod("motd", nil)
	fmt.Printf("evolve %s from 1 straight to 1.1.1: ok, motd=%q\n", fleet[2].LOID(), out)
	return nil
}
