package godcdo_test

import (
	"context"
	"testing"

	"godcdo/internal/legion"
	"godcdo/internal/naming"
	"godcdo/internal/policy"
	"godcdo/internal/registry"
	"godcdo/internal/transport"
	"godcdo/internal/vclock"
	"godcdo/internal/workload"
)

// BenchmarkInvokeDefaultPolicy measures the idempotent invoke path for a
// degree-1 object with an explicit default DistributionPolicy attached to
// its binding. The policy plane's cost on the common path must be one nil
// check plus one BackupReadsAllowed call — no allocation: `make vet-policy`
// asserts allocs/op stays at the unreplicated seed baseline.
func BenchmarkInvokeDefaultPolicy(b *testing.B) {
	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	server, err := legion.NewNode(legion.NodeConfig{Name: "policy-server", Agent: agent, Inproc: net})
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	client, err := legion.NewNode(legion.NodeConfig{Name: "policy-client", Agent: agent, Inproc: net})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	reg := registry.New()
	obj, _ := buildDCDO(b, reg, workload.Spec{Prefix: "polbench", Functions: 20, Components: 2}, 1)
	if _, err := server.HostObject(obj.LOID(), obj); err != nil {
		b.Fatal(err)
	}
	agent.RegisterPolicy(obj.LOID(), policy.Default())

	target := workload.LeafName("polbench", 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Client().InvokeIdempotent(context.Background(), obj.LOID(), target, nil); err != nil {
			b.Fatal(err)
		}
	}
}
