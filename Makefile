# Developer entry points. `make ci` is the gate a PR must pass; it mirrors
# the tier-1 verify from ROADMAP.md plus vet and the race detector.

GO ?= go

.PHONY: ci vet build test race bench-smoke bench experiments

ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector. -short skips the multi-second
# loopback-TCP sweeps (they run in plain `make test` and in E2/E7 below).
race:
	$(GO) test -race -short ./...

# One iteration of every benchmark: proves the bench harness still compiles
# and runs without paying for a full calibrated measurement.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime=1x .

bench:
	$(GO) test -bench . -benchmem .

# Regenerate the EXPERIMENTS.md tables and shape criteria.
experiments:
	$(GO) run ./cmd/dcdo-bench
