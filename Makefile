# Developer entry points. `make ci` is the gate a PR must pass; it mirrors
# the tier-1 verify from ROADMAP.md plus vet and the race detector.

GO ?= go

# Seed allocation baseline for one in-process invoke with observability
# disabled. vet-obs fails if the disabled path ever allocates more than this.
OBS_ALLOC_BASELINE ?= 5

# Head-sampled ceiling: an invoke whose trace the sampler drops (tracing on,
# flight recorder armed, healthy call) may cost at most 2 allocs/op over the
# disabled baseline — at 1% sampling this is 99% of all calls. Measured: 3,
# identical to tracing-off.
UNSAMPLED_ALLOC_BASELINE ?= 7

# Fast-path allocation ceilings (allocs/op), set from the PR-5 transport
# overhaul with a little headroom. vet-wire fails if envelope encode, envelope
# decode, or the fast-path single-call TCP invoke ever regress past them.
WIRE_ENCODE_ALLOC_BASELINE ?= 1
WIRE_DECODE_ALLOC_BASELINE ?= 3
INVOKE_ALLOC_BASELINE ?= 16

# Degree-1 invoke ceiling: a deployment that never constructs a Replica must
# keep the seed invoke alloc budget — replication costs nothing when it is
# off. vet-repl fails if the unreplicated path ever regresses past this.
REPL_ALLOC_BASELINE ?= 5

# Policy-plane invoke ceiling: attaching a (default) DistributionPolicy to a
# binding must not add allocations to the idempotent invoke path — the
# routing decision is a nil check plus one value comparison. Expected 3;
# vet-policy fails past this.
POLICY_ALLOC_BASELINE ?= 5

# Batched-invoke ceiling: one 16-call batch frame must allocate well under
# 16x the single-call budget ($(INVOKE_ALLOC_BASELINE)), i.e. at most
# 4 allocs per sub-call. Measured: 53 allocs per 16-call batch (~3.3/sub).
# vet-batch fails if amortisation ever erodes past this.
BATCH_ALLOC_BASELINE ?= 64

.PHONY: ci vet vet-obs vet-wire vet-repl vet-policy vet-batch build test race bench-smoke bench bench-json experiments fuzz-smoke chaos

ci: vet vet-obs vet-wire vet-repl vet-policy vet-batch build race bench-smoke chaos fuzz-smoke

vet:
	$(GO) vet ./...

# Zero-cost-when-disabled gate: go vet plus an allocation check proving the
# invoke path with observability off still allocates no more than the seed
# baseline ($(OBS_ALLOC_BASELINE) allocs/op).
vet-obs:
	$(GO) vet ./internal/obs/ ./internal/metrics/ ./internal/rpc/ ./internal/core/
	@out=$$($(GO) test -run xxx -bench 'BenchmarkInvokeTracingOff|BenchmarkInvokeUnsampled' -benchmem -benchtime=10000x . | tee /dev/stderr); \
	gate() { \
		allocs=$$(echo "$$out" | awk -v pat="$$1" '$$0 ~ pat {for (i=1; i<=NF; i++) if ($$(i+1) == "allocs/op") print $$i; exit}'); \
		if [ -z "$$allocs" ]; then echo "vet-obs: could not parse allocs/op for $$1"; exit 1; fi; \
		if [ "$$allocs" -gt "$$2" ]; then \
			echo "vet-obs: $$1 invoke allocates $$allocs allocs/op, budget $$2"; exit 1; \
		fi; \
		echo "vet-obs: $$1 invoke at $$allocs allocs/op (budget $$2)"; \
	}; \
	gate 'BenchmarkInvokeTracingOff' $(OBS_ALLOC_BASELINE) && \
	gate 'BenchmarkInvokeUnsampled' $(UNSAMPLED_ALLOC_BASELINE)

# Transport fast-path alloc gate (mirrors vet-obs): envelope encode/decode
# and the fast-path TCP invoke must stay at or below their recorded
# allocs/op ceilings, so pooling and coalescing wins cannot silently erode.
vet-wire:
	$(GO) vet ./internal/wire/ ./internal/transport/
	@out=$$($(GO) test -run xxx -bench 'BenchmarkAblation_WireEnvelope|BenchmarkE10_TransportFastPath/fast/sequential' -benchmem -benchtime=2000x . | tee /dev/stderr); \
	gate() { \
		allocs=$$(echo "$$out" | awk -v pat="$$1" '$$0 ~ pat {for (i=1; i<=NF; i++) if ($$(i+1) == "allocs/op") print $$i; exit}'); \
		if [ -z "$$allocs" ]; then echo "vet-wire: could not parse allocs/op for $$1"; exit 1; fi; \
		if [ "$$allocs" -gt "$$2" ]; then \
			echo "vet-wire: $$1 allocates $$allocs allocs/op, budget $$2"; exit 1; \
		fi; \
		echo "vet-wire: $$1 at $$allocs allocs/op (budget $$2)"; \
	}; \
	gate 'WireEnvelope/encode' $(WIRE_ENCODE_ALLOC_BASELINE) && \
	gate 'WireEnvelope/decode' $(WIRE_DECODE_ALLOC_BASELINE) && \
	gate 'TransportFastPath/fast/sequential' $(INVOKE_ALLOC_BASELINE)

# Replication-off gate (mirrors vet-obs): the degree-1 invoke path must stay
# at the seed alloc baseline, because unreplicated deployments never touch
# internal/replica. The degree-3 read path is benchmarked alongside for the
# delta but not gated — its budget is E13's business.
vet-repl:
	$(GO) vet ./internal/replica/ ./internal/naming/
	@out=$$($(GO) test -run xxx -bench 'BenchmarkInvokeUnreplicated' -benchmem -benchtime=10000x . | tee /dev/stderr); \
	gate() { \
		allocs=$$(echo "$$out" | awk -v pat="$$1" '$$0 ~ pat {for (i=1; i<=NF; i++) if ($$(i+1) == "allocs/op") print $$i; exit}'); \
		if [ -z "$$allocs" ]; then echo "vet-repl: could not parse allocs/op for $$1"; exit 1; fi; \
		if [ "$$allocs" -gt "$$2" ]; then \
			echo "vet-repl: $$1 allocates $$allocs allocs/op, budget $$2"; exit 1; \
		fi; \
		echo "vet-repl: $$1 at $$allocs allocs/op (budget $$2)"; \
	}; \
	gate 'BenchmarkInvokeUnreplicated' $(REPL_ALLOC_BASELINE)

# Distribution-policy gate (mirrors vet-repl): a binding carrying the
# default policy document must invoke at the unreplicated alloc budget —
# read routing only costs when backup-ok is actually in force.
vet-policy:
	$(GO) vet ./internal/policy/ ./internal/manager/
	@out=$$($(GO) test -run xxx -bench 'BenchmarkInvokeDefaultPolicy' -benchmem -benchtime=10000x . | tee /dev/stderr); \
	gate() { \
		allocs=$$(echo "$$out" | awk -v pat="$$1" '$$0 ~ pat {for (i=1; i<=NF; i++) if ($$(i+1) == "allocs/op") print $$i; exit}'); \
		if [ -z "$$allocs" ]; then echo "vet-policy: could not parse allocs/op for $$1"; exit 1; fi; \
		if [ "$$allocs" -gt "$$2" ]; then \
			echo "vet-policy: $$1 allocates $$allocs allocs/op, budget $$2"; exit 1; \
		fi; \
		echo "vet-policy: $$1 at $$allocs allocs/op (budget $$2)"; \
	}; \
	gate 'BenchmarkInvokeDefaultPolicy' $(POLICY_ALLOC_BASELINE)

# Scatter-gather gate (mirrors vet-wire): a 16-call batch over loopback TCP
# must keep its per-frame alloc amortisation — one frame for 16 sub-calls
# cannot cost more than $(BATCH_ALLOC_BASELINE) allocs (4 per sub-call vs
# $(INVOKE_ALLOC_BASELINE) for a single call).
vet-batch:
	$(GO) vet ./internal/rpc/
	@out=$$($(GO) test -run xxx -bench 'BenchmarkInvokeBatch/16' -benchmem -benchtime=2000x . | tee /dev/stderr); \
	gate() { \
		allocs=$$(echo "$$out" | awk -v pat="$$1" '$$0 ~ pat {for (i=1; i<=NF; i++) if ($$(i+1) == "allocs/op") print $$i; exit}'); \
		if [ -z "$$allocs" ]; then echo "vet-batch: could not parse allocs/op for $$1"; exit 1; fi; \
		if [ "$$allocs" -gt "$$2" ]; then \
			echo "vet-batch: $$1 allocates $$allocs allocs/op, budget $$2"; exit 1; \
		fi; \
		echo "vet-batch: $$1 at $$allocs allocs/op (budget $$2)"; \
	}; \
	gate 'InvokeBatch/16' $(BATCH_ALLOC_BASELINE)

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector. -short skips the multi-second
# loopback-TCP sweeps (they run in plain `make test` and in E2/E7 below).
# -shuffle=on randomises test order so inter-test state dependencies fail
# loudly instead of hiding behind source order.
race:
	$(GO) test -race -short -shuffle=on ./...

# One iteration of every benchmark plus the E9 overload experiment, a short
# end-to-end rollout (E11 drives canary waves, an SLO rollback, and a
# journal resume), and the E12 observability-plane drill (1% sampling with
# 100% incident retention): proves the bench harness still compiles and
# runs (and admission control still sheds and screens deadlines) without
# paying for a full calibrated run.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime=1x .
	$(GO) test -run 'TestRunE9|TestRunE11|TestRunE12' ./internal/harness/

bench:
	$(GO) test -bench . -benchmem .

# Regenerate the EXPERIMENTS.md tables and shape criteria.
experiments:
	$(GO) run ./cmd/dcdo-bench

# Full experiment sweep with machine-readable export: the unit of the
# BENCH_*.json perf trajectory (bump BENCH_JSON per PR).
BENCH_JSON ?= BENCH_10.json

bench-json:
	$(GO) run ./cmd/dcdo-bench -json $(BENCH_JSON)

# Bounded run of the native fuzz targets: the wire decoder and the store
# image loader must never panic on adversarial bytes. FUZZTIME is per target.
FUZZTIME ?= 30s

fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzDecodeEnvelope -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz 'FuzzFrameRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzLoadStore -fuzztime $(FUZZTIME) ./internal/manager/

# Crash/partition drills under the race detector: the E8 chaos experiment
# (manager killed mid-pass with a partitioned instance), the E11 rollout
# drill (SLO auto-rollback plus supervisor killed mid-wave and resumed),
# the E13 replication drill (primary replica and primary manager killed
# mid-load), the manager's concurrency, recovery, and standby-takeover
# contracts, replica group fencing/failover, and the supervisor's
# pause/abort-vs-widening race.
chaos:
	$(GO) test -race -run 'TestRunE8|TestRunE11|TestRunE13|TestRunE14' ./internal/harness/
	$(GO) test -race -run 'TestRecover|TestEvolveDropAdopt|TestConcurrentEvolveDropAdopt|TestCreateInstanceConcurrentDuplicate|TestFleetEvolution|TestProber|TestJournalShipping|TestStandby|TestShipperSync|TestEvolveReplicated|TestReconcile|TestPolicyRecover|TestSetPolicy' ./internal/manager/
	$(GO) test -race ./internal/replica/
	$(GO) test -race -run 'TestRollout|TestSupervisor' ./internal/supervisor/
