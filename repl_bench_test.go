package godcdo_test

import (
	"context"
	"testing"

	"godcdo/internal/core"
	"godcdo/internal/legion"
	"godcdo/internal/naming"
	"godcdo/internal/registry"
	"godcdo/internal/replica"
	"godcdo/internal/transport"
	"godcdo/internal/vclock"
	"godcdo/internal/version"
	"godcdo/internal/workload"
)

// BenchmarkInvokeUnreplicated measures the allocation cost of one in-process
// invoke of a degree-1 (unreplicated) DCDO. `make vet-repl` asserts
// allocs/op stays at the seed baseline: a degree-1 deployment never
// constructs a Replica, so replication must cost nothing when it is off.
func BenchmarkInvokeUnreplicated(b *testing.B) {
	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	server, err := legion.NewNode(legion.NodeConfig{Name: "repl-off-server", Agent: agent, Inproc: net})
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	client, err := legion.NewNode(legion.NodeConfig{Name: "repl-off-client", Agent: agent, Inproc: net})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	reg := registry.New()
	obj, _ := buildDCDO(b, reg, workload.Spec{Prefix: "reploff", Functions: 20, Components: 2}, 1)
	if _, err := server.HostObject(obj.LOID(), obj); err != nil {
		b.Fatal(err)
	}
	target := workload.LeafName("reploff", 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Client().Invoke(context.Background(), obj.LOID(), target, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvokeReplicated measures the read-path cost of the same invoke
// against a degree-3 primary/backup group: the call runs through the Replica
// wrapper's role check and state-generation comparison, but a read leaves
// the state generation unchanged, so nothing ships. The delta against
// BenchmarkInvokeUnreplicated is the per-call price of being replicated.
func BenchmarkInvokeReplicated(b *testing.B) {
	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	client, err := legion.NewNode(legion.NodeConfig{Name: "repl-on-client", Agent: agent, Inproc: net})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	reg := registry.New()
	alloc := naming.NewAllocator(1, 9)
	built, err := workload.Build(reg, alloc, workload.Spec{Prefix: "replon", Functions: 20, Components: 2})
	if err != nil {
		b.Fatal(err)
	}
	loid := naming.LOID{Domain: 1, Class: 1, Instance: 1}

	const degree = 3
	endpoints := make([]string, degree)
	nodes := make([]*legion.Node, degree)
	for i := 0; i < degree; i++ {
		node, err := legion.NewNode(legion.NodeConfig{
			Name: "repl-on-server-" + string(rune('a'+i)), Agent: agent, Inproc: net,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
		endpoints[i] = node.Endpoint()
	}
	for i, node := range nodes {
		obj := core.New(core.Config{LOID: loid, Registry: reg, Fetcher: built.Fetcher()})
		if _, err := obj.ApplyDescriptor(context.Background(), built.Descriptor, version.ID{1}); err != nil {
			b.Fatal(err)
		}
		role, backups := replica.RoleBackup, []string(nil)
		if i == 0 {
			role, backups = replica.RolePrimary, endpoints[1:]
		}
		node.Dispatcher().Host(loid, replica.New(loid, obj, net.Dialer(), role, 1, backups))
	}
	if _, ok := agent.RegisterSet(loid, naming.ReplicaSet{Primary: endpoints[0], Backups: endpoints[1:]}); !ok {
		b.Fatal("RegisterSet refused")
	}

	target := workload.LeafName("replon", 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Client().Invoke(context.Background(), loid, target, nil); err != nil {
			b.Fatal(err)
		}
	}
}
