// Package godcdo_test holds the benchmark harness: one testing.B benchmark
// per table/figure in the paper's performance study (E1–E7), plus ablation
// benches for the design choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Modeled Centurion durations are emitted as "modeled-sec/op" metrics so
// multi-second 1999 costs coexist with nanosecond-scale mechanism timings.
package godcdo_test

import (
	"context"

	"fmt"
	"testing"
	"time"

	"godcdo/internal/baseline"
	"godcdo/internal/component"
	"godcdo/internal/core"
	"godcdo/internal/dfm"
	"godcdo/internal/legion"
	"godcdo/internal/manager"
	"godcdo/internal/naming"
	"godcdo/internal/registry"
	"godcdo/internal/rpc"
	"godcdo/internal/simnet"
	"godcdo/internal/transport"
	"godcdo/internal/vclock"
	"godcdo/internal/version"
	"godcdo/internal/wire"
	"godcdo/internal/workload"
)

// buildDCDO assembles a workload-generated DCDO for benchmarking.
func buildDCDO(b *testing.B, reg *registry.Registry, spec workload.Spec, instance uint64) (*core.DCDO, *workload.Built) {
	b.Helper()
	alloc := naming.NewAllocator(1, 9)
	built, err := workload.Build(reg, alloc, spec)
	if err != nil {
		b.Fatal(err)
	}
	obj := core.New(core.Config{
		LOID:     naming.LOID{Domain: 1, Class: 1, Instance: instance},
		Registry: reg,
		Fetcher:  built.Fetcher(),
	})
	if _, err := obj.ApplyDescriptor(context.Background(), built.Descriptor, version.ID{1}); err != nil {
		b.Fatal(err)
	}
	return obj, built
}

// --- E1: dynamic function call overhead --------------------------------------

func BenchmarkE1_CallOverhead(b *testing.B) {
	reg := registry.New()
	obj, _ := buildDCDO(b, reg, workload.Spec{
		Prefix: "b1", Functions: 100, Components: 10, WithCallers: true,
	}, 1)

	leaf := workload.LeafName("b1", 0, 0)
	module, err := reg.Load("b1_c0:1", registry.NativeImplType)
	if err != nil {
		b.Fatal(err)
	}
	direct, err := module.Func(leaf)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := direct(obj, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("self-exported", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := obj.InvokeMethod(leaf, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("internal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := obj.CallInternal(leaf, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("intra-component", func(b *testing.B) {
		intra := workload.IntraCallerName("b1", 0)
		for i := 0; i < b.N; i++ {
			if _, err := obj.InvokeMethod(intra, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("inter-component", func(b *testing.B) {
		inter := workload.InterCallerName("b1", 0)
		for i := 0; i < b.N; i++ {
			if _, err := obj.InvokeMethod(inter, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE1_TableScaling(b *testing.B) {
	for _, functions := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("functions-%d", functions), func(b *testing.B) {
			reg := registry.New()
			prefix := fmt.Sprintf("b1s%d", functions)
			obj, _ := buildDCDO(b, reg, workload.Spec{
				Prefix: prefix, Functions: functions, Components: 10,
			}, 1)
			target := workload.LeafName(prefix, 0, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := obj.InvokeMethod(target, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E2: remote invocation over TCP -------------------------------------------

func BenchmarkE2_RemoteInvocation(b *testing.B) {
	agent := naming.NewAgent(vclock.Real{})
	server, err := legion.NewNode(legion.NodeConfig{Name: "b2-server", Agent: agent})
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	client, err := legion.NewNode(legion.NodeConfig{Name: "b2-client", Agent: agent})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	normalClass := legion.NewClass("b2-normal", naming.NewAllocator(1, 11),
		map[string]legion.Method{
			"noop": func(*legion.State, []byte) ([]byte, error) { return nil, nil },
		}, 550<<10)
	normalObj, err := normalClass.CreateInstance(server)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("normal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := client.Client().Invoke(context.Background(), normalObj.LOID(), "noop", nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	for i, s := range []struct{ functions, components int }{{10, 1}, {100, 10}, {500, 50}} {
		name := fmt.Sprintf("dcdo-%dfns-%dcomps", s.functions, s.components)
		b.Run(name, func(b *testing.B) {
			// A fresh registry per run: the benchmark runner re-executes
			// this closure while calibrating N.
			reg := registry.New()
			prefix := fmt.Sprintf("b2w%d", i)
			obj, _ := buildDCDO(b, reg, workload.Spec{
				Prefix: prefix, Functions: s.functions, Components: s.components,
			}, uint64(i+1))
			if _, err := server.HostObject(obj.LOID(), obj); err != nil {
				b.Fatal(err)
			}
			target := workload.LeafName(prefix, 0, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Client().Invoke(context.Background(), obj.LOID(), target, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E3: object creation ---------------------------------------------------------

func BenchmarkE3_Creation(b *testing.B) {
	model := simnet.Centurion()
	b.Run("monolithic-modeled", func(b *testing.B) {
		var total time.Duration
		for i := 0; i < b.N; i++ {
			total = model.CreationTime(1, true)
		}
		b.ReportMetric(total.Seconds(), "modeled-sec/op")
	})
	for _, comps := range []int{1, 5, 10, 25, 50} {
		b.Run(fmt.Sprintf("dcdo-%dcomps", comps), func(b *testing.B) {
			reg := registry.New()
			alloc := naming.NewAllocator(1, 9)
			built, err := workload.Build(reg, alloc, workload.Spec{
				Prefix: fmt.Sprintf("b3c%d", comps), Functions: 500, Components: comps,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(model.CreationTime(comps, false).Seconds(), "modeled-sec/op")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				obj := core.New(core.Config{
					LOID:     naming.LOID{Domain: 1, Class: 1, Instance: uint64(i + 1)},
					Registry: reg,
					Fetcher:  built.Fetcher(),
				})
				if _, err := obj.ApplyDescriptor(context.Background(), built.Descriptor, version.ID{1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E4: stale bindings and downloads ----------------------------------------------

func BenchmarkE4_BaselineCosts(b *testing.B) {
	model := simnet.Centurion()
	schedule := naming.DefaultDiscoverySchedule()

	b.Run("stale-binding-discovery-modeled", func(b *testing.B) {
		var total time.Duration
		for i := 0; i < b.N; i++ {
			total = schedule.TotalDiscoveryTime()
		}
		b.ReportMetric(total.Seconds(), "modeled-sec/op")
	})

	for _, size := range []int64{550 << 10, 5_347_738} {
		b.Run(fmt.Sprintf("download-%s", sizeLabel(size)), func(b *testing.B) {
			agent := naming.NewAgent(vclock.Real{})
			net := transport.NewInprocNetwork()
			host, err := legion.NewNode(legion.NodeConfig{Name: fmt.Sprintf("b4-%d", size), Agent: agent, Inproc: net})
			if err != nil {
				b.Fatal(err)
			}
			defer host.Close()
			comp, err := component.NewSynthetic(component.Descriptor{
				ID: "payload", Revision: 1, CodeRef: "payload:1",
				Impl: registry.NativeImplType, CodeSize: size,
				Functions: []component.FunctionDecl{{Name: "f", Exported: true}},
			})
			if err != nil {
				b.Fatal(err)
			}
			ico := naming.LOID{Domain: 1, Class: 7, Instance: uint64(size)}
			if _, err := host.HostObject(ico, component.NewICO(comp)); err != nil {
				b.Fatal(err)
			}
			fetcher := &component.RemoteFetcher{Client: host.Client()}
			b.ReportMetric(model.TransferTime(size).Seconds(), "modeled-sec/op")
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fetcher.Fetch(context.Background(), ico); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeLabel(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	}
	return fmt.Sprintf("%dKB", n>>10)
}

// --- E5: DCDO evolution cost ---------------------------------------------------------

func BenchmarkE5_DCDOEvolution(b *testing.B) {
	model := simnet.Centurion()

	b.Run("toggle-function", func(b *testing.B) {
		reg := registry.New()
		obj, _ := buildDCDO(b, reg, workload.Spec{Prefix: "b5t", Functions: 50, Components: 5}, 1)
		key := dfm.EntryKey{Function: workload.LeafName("b5t", 0, 0), Component: "b5t_c0"}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := obj.DisableFunction(key); err != nil {
				b.Fatal(err)
			}
			if err := obj.EnableFunction(key); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("retune-descriptor", func(b *testing.B) {
		reg := registry.New()
		obj, _ := buildDCDO(b, reg, workload.Spec{Prefix: "b5r", Functions: 50, Components: 5}, 1)
		flip := obj.Snapshot()
		for i := range flip.Entries {
			flip.Entries[i].Exported = false
		}
		orig := obj.Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := obj.ApplyDescriptor(context.Background(), flip, version.ID{1, 1}); err != nil {
				b.Fatal(err)
			}
			if _, err := obj.ApplyDescriptor(context.Background(), orig, version.ID{1}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("incorporate-cached-component", func(b *testing.B) {
		reg := registry.New()
		obj, _ := buildDCDO(b, reg, workload.Spec{Prefix: "b5b", Functions: 10, Components: 1}, 1)
		alloc := naming.NewAllocator(1, 9)
		extra, err := workload.Build(reg, alloc, workload.Spec{Prefix: "b5x", Functions: 1, Components: 1})
		if err != nil {
			b.Fatal(err)
		}
		comp := extra.Components[0]
		ico := extra.ICOs[comp.Desc.ID]
		b.ReportMetric(model.ComponentBind.Seconds(), "modeled-sec/op")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := obj.IncorporateComponent(comp, ico, false); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := obj.RemoveComponent(comp.Desc.ID); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})

	b.Run("incorporate-uncached-550KB-modeled", func(b *testing.B) {
		cost := baseline.DCDOEvolutionCost{UncachedBytes: []int64{550 << 10}}
		var total time.Duration
		for i := 0; i < b.N; i++ {
			total = cost.Model(model)
		}
		b.ReportMetric(total.Seconds(), "modeled-sec/op")
	})
}

// --- E6: DCDO vs baseline evolution ---------------------------------------------------

func BenchmarkE6_EvolutionComparison(b *testing.B) {
	model := simnet.Centurion()
	schedule := naming.DefaultDiscoverySchedule()

	b.Run("baseline-pipeline", func(b *testing.B) {
		var modeled time.Duration
		for i := 0; i < b.N; i++ {
			agent := naming.NewAgent(vclock.Real{})
			net := transport.NewInprocNetwork()
			node, err := legion.NewNode(legion.NodeConfig{
				Name: fmt.Sprintf("b6-%d", i), Agent: agent, Inproc: net,
			})
			if err != nil {
				b.Fatal(err)
			}
			methods := map[string]legion.Method{
				"noop": func(*legion.State, []byte) ([]byte, error) { return nil, nil },
			}
			v1 := legion.NewClass("b6v1", naming.NewAllocator(1, 13), methods, 550<<10)
			v2 := legion.NewClass("b6v2", naming.NewAllocator(1, 13), methods, 550<<10)
			obj, err := v1.CreateInstance(node)
			if err != nil {
				b.Fatal(err)
			}
			obj.State().Set("blob", make([]byte, 64<<10))
			ev := &baseline.Evolver{Model: model, Discovery: schedule}
			costs, _, err := ev.Evolve(baseline.Input{
				LOID: obj.LOID(), Src: node, Obj: obj, NewClass: v2,
				ClientsHoldBindings: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			modeled = costs.Total()
			_ = node.Close()
		}
		b.ReportMetric(modeled.Seconds(), "modeled-sec/op")
	})

	b.Run("dcdo-retune", func(b *testing.B) {
		reg := registry.New()
		obj, _ := buildDCDO(b, reg, workload.Spec{Prefix: "b6d", Functions: 20, Components: 2}, 1)
		flip := obj.Snapshot()
		for i := range flip.Entries {
			flip.Entries[i].Exported = false
		}
		orig := obj.Snapshot()
		cost := baseline.DCDOEvolutionCost{RetuneOps: 20}
		b.ReportMetric(cost.Model(model).Seconds(), "modeled-sec/op")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := obj.ApplyDescriptor(context.Background(), flip, version.ID{1, 1}); err != nil {
				b.Fatal(err)
			}
			if _, err := obj.ApplyDescriptor(context.Background(), orig, version.ID{1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E7: invoke under injected faults -------------------------------------------------

func BenchmarkE7_FaultedInvoke(b *testing.B) {
	for _, rate := range []float64{0, 0.1} {
		b.Run(fmt.Sprintf("drop-%.0fpct", rate*100), func(b *testing.B) {
			clk := vclock.Real{}
			agent := naming.NewAgent(clk)
			cache := naming.NewCache(agent, clk, 0)
			net := transport.NewInprocNetwork()
			disp := rpc.NewDispatcher()
			srv, err := net.Listen("b7", disp)
			if err != nil {
				b.Fatal(err)
			}
			loid := naming.LOID{Domain: 1, Class: 7, Instance: 1}
			disp.Host(loid, rpc.ObjectFunc(func(method string, args []byte) ([]byte, error) {
				return nil, nil
			}))
			agent.Register(loid, naming.Address{Endpoint: srv.Endpoint()})
			faults := transport.NewFaults(42)
			faults.SetEndpoint(srv.Endpoint(), transport.FaultConfig{DropResponse: rate})
			client := rpc.NewClient(cache, transport.NewFaultDialer(net.Dialer(), faults))
			client.Retry = rpc.RetryPolicy{
				CallTimeout: 5 * time.Millisecond,
				MaxAttempts: 8,
				MaxRebinds:  2,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  4 * time.Millisecond,
				Multiplier:  2,
				Jitter:      0.2,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.InvokeIdempotent(context.Background(), loid, "get", nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E10: transport fast path ---------------------------------------------------------

// benchTCPEcho builds a TCP node hosting an echo object plus a client over a
// dialer in the requested transport mode, mirroring the E10 harness setup.
func benchTCPEcho(b *testing.B, legacy bool, stripes int) (*rpc.Client, naming.LOID, func()) {
	b.Helper()
	agent := naming.NewAgent(vclock.Real{})
	node, err := legion.NewNode(legion.NodeConfig{
		Name: "bench-e10", Agent: agent, TCPAddr: "127.0.0.1:0",
		DisableTransportFastPath: legacy,
	})
	if err != nil {
		b.Fatal(err)
	}
	loid := naming.LOID{Domain: 10, Class: 10, Instance: 1}
	if _, err := node.HostObject(loid, rpc.ObjectFunc(func(_ string, args []byte) ([]byte, error) {
		return args, nil
	})); err != nil {
		_ = node.Close()
		b.Fatal(err)
	}
	dialer := transport.NewTCPDialer()
	dialer.DisableFastPath = legacy
	dialer.Stripes = stripes
	client := rpc.NewClient(naming.NewCache(agent, vclock.Real{}, 0), dialer)
	client.Retry.CallTimeout = 10 * time.Second
	return client, loid, func() {
		_ = dialer.Close()
		_ = node.Close()
	}
}

// BenchmarkE10_TransportFastPath is the testing.B face of experiment E10:
// invoke over TCP loopback in both transport generations, sequential (run
// with -benchmem for the alloc story) and pipelined (RunParallel; the
// coalescing/striping story).
func BenchmarkE10_TransportFastPath(b *testing.B) {
	payload := make([]byte, 64)
	for _, mode := range []struct {
		name    string
		legacy  bool
		stripes int
	}{
		{"legacy", true, 0},
		{"fast", false, 4},
	} {
		b.Run(mode.name+"/sequential", func(b *testing.B) {
			client, loid, done := benchTCPEcho(b, mode.legacy, mode.stripes)
			defer done()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Invoke(context.Background(), loid, "echo", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(mode.name+"/pipelined-64", func(b *testing.B) {
			client, loid, done := benchTCPEcho(b, mode.legacy, mode.stripes)
			defer done()
			b.SetParallelism(64)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := client.Invoke(context.Background(), loid, "echo", payload); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// --- E15: batched scatter-gather invoke -----------------------------------------------

// BenchmarkInvokeBatch is the testing.B face of experiment E15: N echo
// sub-calls per batch frame over TCP loopback with zero-copy borrowed args
// on the server. The Makefile's vet-batch gate parses the /16 sub-benchmark
// with -benchmem: allocs/op there is allocs per 16-call batch, so the
// per-sub-call budget is the gate baseline divided by 16.
func BenchmarkInvokeBatch(b *testing.B) {
	payload := make([]byte, 64)
	agent := naming.NewAgent(vclock.Real{})
	node, err := legion.NewNode(legion.NodeConfig{
		Name: "bench-e15", Agent: agent, TCPAddr: "127.0.0.1:0",
		BorrowedArgs: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer node.Close()
	loid := naming.LOID{Domain: 15, Class: 10, Instance: 1}
	if _, err := node.HostObject(loid, rpc.ObjectFunc(func(_ string, args []byte) ([]byte, error) {
		return args, nil
	})); err != nil {
		b.Fatal(err)
	}
	dialer := transport.NewTCPDialer()
	dialer.Stripes = 4
	defer dialer.Close()
	client := rpc.NewClient(naming.NewCache(agent, vclock.Real{}, 0), dialer)
	client.Retry.CallTimeout = 10 * time.Second

	for _, size := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("%d", size), func(b *testing.B) {
			batch := client.NewBatch()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch.Reset()
				for j := 0; j < size; j++ {
					batch.Add(loid, "echo", payload)
				}
				for k, r := range batch.Invoke(context.Background()) {
					if r.Err != nil {
						b.Fatalf("sub %d: %v", k, r.Err)
					}
				}
			}
		})
	}
}

// --- Ablations (design decisions from DESIGN.md) ----------------------------------------

// Ablation 1: DFM lookup via atomic snapshot (the implementation) vs taking
// the mutation mutex on every call.
func BenchmarkAblation_DFMLookup(b *testing.B) {
	reg := registry.New()
	obj, _ := buildDCDO(b, reg, workload.Spec{Prefix: "ab1", Functions: 100, Components: 10}, 1)
	target := workload.LeafName("ab1", 0, 0)
	table := obj.DFM()

	b.Run("atomic-snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := table.Peek(target); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mutex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := table.LookupMutex(target); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation 2: cost of the active-thread counters on the invocation path.
func BenchmarkAblation_ThreadCounters(b *testing.B) {
	reg := registry.New()
	obj, _ := buildDCDO(b, reg, workload.Spec{Prefix: "ab2", Functions: 100, Components: 10}, 1)
	target := workload.LeafName("ab2", 0, 0)
	table := obj.DFM()

	b.Run("with-counters", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, release, err := table.BeginCall(target)
			if err != nil {
				b.Fatal(err)
			}
			release()
		}
	})
	b.Run("without-counters", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := table.Peek(target); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation 3: copy-on-derive descriptor clones across version sizes.
func BenchmarkAblation_DescriptorClone(b *testing.B) {
	for _, entries := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("entries-%d", entries), func(b *testing.B) {
			desc := dfm.NewDescriptor()
			for i := 0; i < entries; i++ {
				comp := fmt.Sprintf("c%d", i%10)
				desc.Components[comp] = dfm.ComponentRef{CodeRef: comp}
				desc.Entries = append(desc.Entries, dfm.EntryDesc{
					Function: fmt.Sprintf("f%d", i), Component: comp, Enabled: true,
				})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := desc.Clone(); len(got.Entries) != entries {
					b.Fatal("bad clone")
				}
			}
		})
	}
}

// Ablation 4: manager version operations — derive (logical copy) and the
// instantiability validation gate across descriptor sizes.
func BenchmarkAblation_ManagerVersionOps(b *testing.B) {
	for _, entries := range []int{10, 100, 500} {
		b.Run(fmt.Sprintf("derive-entries-%d", entries), func(b *testing.B) {
			reg := registry.New()
			alloc := naming.NewAllocator(1, 9)
			built, err := workload.Build(reg, alloc, workload.Spec{
				Prefix: fmt.Sprintf("mgr%d", entries), Functions: entries, Components: 10,
			})
			if err != nil {
				b.Fatal(err)
			}
			// A fresh store per batch keeps the version tree a realistic
			// size instead of accumulating b.N children under one root.
			const batch = 64
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				b.StopTimer()
				store := manager.NewStore()
				root, err := store.CreateRoot(built.Descriptor)
				if err != nil {
					b.Fatal(err)
				}
				if err := store.MarkInstantiable(root); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for j := 0; j < batch && i+j < b.N; j++ {
					child, err := store.Derive(root)
					if err != nil {
						b.Fatal(err)
					}
					if err := store.MarkInstantiable(child); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// Ablation 5: wire envelope codec throughput.
func BenchmarkAblation_WireEnvelope(b *testing.B) {
	env := &wire.Envelope{
		Kind: wire.KindRequest, ID: 42, Target: "loid:1.2.3",
		Method: "price", Payload: make([]byte, 256),
	}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if out := env.Encode(); len(out) == 0 {
				b.Fatal("empty encode")
			}
		}
	})
	encoded := env.Encode()
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wire.DecodeEnvelope(encoded); err != nil {
				b.Fatal(err)
			}
		}
	})
}
