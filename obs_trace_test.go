package godcdo_test

import (
	"context"

	"testing"

	"godcdo/internal/core"
	"godcdo/internal/legion"
	"godcdo/internal/naming"
	"godcdo/internal/obs"
	"godcdo/internal/registry"
	"godcdo/internal/vclock"
	"godcdo/internal/version"
	"godcdo/internal/workload"
)

// TestTraceCoversInvokeRebindDispatchResolveExec is the observability
// integration test: one client invoke that discovers a stale binding the
// hard way must produce a single trace whose spans cover the client send,
// the rebind, the server-side dispatch, the DFM resolution, and the
// function execution — with parent links intact across the TCP hop.
func TestTraceCoversInvokeRebindDispatchResolveExec(t *testing.T) {
	o := obs.New()
	agent := naming.NewAgent(vclock.Real{})
	newNode := func(name string) *legion.Node {
		t.Helper()
		n, err := legion.NewNode(legion.NodeConfig{Name: name, Agent: agent, Obs: o})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		return n
	}
	nodeA := newNode("trace-a")
	nodeB := newNode("trace-b")
	clientNode := newNode("trace-client")

	reg := registry.New()
	built, err := workload.Build(reg, naming.NewAllocator(1, 9),
		workload.Spec{Prefix: "tr", Functions: 8, Components: 2})
	if err != nil {
		t.Fatal(err)
	}
	obj := core.New(core.Config{
		LOID:     naming.LOID{Domain: 1, Class: 1, Instance: 1},
		Registry: reg,
		Fetcher:  built.Fetcher(),
	})
	if _, err := obj.ApplyDescriptor(context.Background(), built.Descriptor, version.ID{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := nodeA.HostObject(obj.LOID(), obj); err != nil {
		t.Fatal(err)
	}
	target := workload.LeafName("tr", 0, 0)

	// Warm the client's binding cache against node A...
	if _, err := clientNode.Client().Invoke(context.Background(), obj.LOID(), target, nil); err != nil {
		t.Fatal(err)
	}
	// ...then move the object to node B, leaving the cached binding stale.
	if err := nodeA.EvictObject(obj.LOID(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := nodeB.HostObject(obj.LOID(), obj); err != nil {
		t.Fatal(err)
	}
	if _, err := clientNode.Client().Invoke(context.Background(), obj.LOID(), target, nil); err != nil {
		t.Fatal(err)
	}

	// Collect the trace that includes the rebind.
	spans := o.Tracer.Recent(0)
	var traceID uint64
	for _, sp := range spans {
		if sp.Stage == obs.StageClientRebind {
			traceID = sp.TraceID
		}
	}
	if traceID == 0 {
		t.Fatalf("no %s span recorded; spans: %+v", obs.StageClientRebind, spans)
	}
	trace := o.Tracer.Trace(traceID)

	byStage := make(map[string][]obs.SpanRecord)
	byID := make(map[uint64]obs.SpanRecord, len(trace))
	for _, sp := range trace {
		byStage[sp.Stage] = append(byStage[sp.Stage], sp)
		byID[sp.SpanID] = sp
	}
	for _, stage := range []string{
		obs.StageClientInvoke,
		obs.StageClientBind,
		obs.StageClientAttempt,
		obs.StageClientRebind,
		obs.StageServerDispatch,
		obs.StageDCDOResolve,
		obs.StageDCDOFunc,
	} {
		if len(byStage[stage]) == 0 {
			t.Errorf("trace %d has no %s span; got %+v", traceID, stage, trace)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// The stale binding forces two attempts and two binding lookups.
	if got := len(byStage[obs.StageClientAttempt]); got < 2 {
		t.Errorf("attempts = %d, want >= 2 (stale then rebound)", got)
	}

	// Parent links: exactly one root (the client.invoke span); every other
	// span's parent is present in the same trace.
	for _, sp := range trace {
		if sp.ParentID == 0 {
			if sp.Stage != obs.StageClientInvoke {
				t.Errorf("unexpected root span %s (%d)", sp.Stage, sp.SpanID)
			}
			continue
		}
		if _, ok := byID[sp.ParentID]; !ok {
			t.Errorf("span %s (%d) has dangling parent %d", sp.Stage, sp.SpanID, sp.ParentID)
		}
	}

	// The server-side chain crossed the wire: dispatch is parented on a
	// client attempt, and resolution/execution on the dispatch.
	dispatch := byStage[obs.StageServerDispatch][len(byStage[obs.StageServerDispatch])-1]
	parent, ok := byID[dispatch.ParentID]
	if !ok || parent.Stage != obs.StageClientAttempt {
		t.Errorf("server.dispatch parent = %+v, want a %s span", parent, obs.StageClientAttempt)
	}
	for _, stage := range []string{obs.StageDCDOResolve, obs.StageDCDOFunc} {
		sp := byStage[stage][len(byStage[stage])-1]
		if sp.ParentID != dispatch.SpanID {
			t.Errorf("%s parent = %d, want server.dispatch span %d", stage, sp.ParentID, dispatch.SpanID)
		}
	}

	// The function that ran is named on the execution span.
	fn := byStage[obs.StageDCDOFunc][len(byStage[obs.StageDCDOFunc])-1]
	if fn.Annots["function"] != target {
		t.Errorf("dcdo.func function annotation = %q, want %q", fn.Annots["function"], target)
	}
}
