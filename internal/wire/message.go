package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Kind discriminates the envelope types carried between nodes.
type Kind uint8

// Envelope kinds. Values are part of the wire contract; append only.
const (
	KindRequest Kind = iota + 1
	KindResponse
	KindError
	KindEvent
	// KindBatchRequest carries a run of independent sub-requests in Payload
	// (see batch.go). The outer envelope owns correlation (ID) and metadata
	// (deadline, trace context); sub-envelopes are ordinary KindRequest
	// envelopes, length-prefixed so a decoder can walk the run. A
	// pre-batch peer rejects the unknown kind with CodeBadRequest before
	// dispatching anything, which is what lets new clients fall back
	// per-call against old servers (legacy tolerance, like metaDeadline).
	KindBatchRequest
	// KindBatchResponse carries the per-sub-call results for a
	// KindBatchRequest, one sub-envelope (KindResponse or KindError) per
	// sub-request, in request order.
	KindBatchResponse
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindResponse:
		return "response"
	case KindError:
		return "error"
	case KindEvent:
		return "event"
	case KindBatchRequest:
		return "batch-request"
	case KindBatchResponse:
		return "batch-response"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Well-known error codes carried by KindError envelopes. These model the
// failure classes the paper requires clients to handle: in particular
// CodeNoSuchFunction is the on-the-wire manifestation of the disappearing
// exported function problem (§3.1).
const (
	CodeInternal       uint64 = 1
	CodeNoSuchObject   uint64 = 2
	CodeNoSuchFunction uint64 = 3
	CodeDisabled       uint64 = 4
	CodeStaleBinding   uint64 = 5
	CodeBadRequest     uint64 = 6
	CodeUnavailable    uint64 = 7
	// CodeOverloaded is returned when the server sheds a request at
	// admission: the dispatcher's concurrency limit and queue are full. The
	// request was never dispatched, so retrying after backoff is always safe.
	CodeOverloaded uint64 = 8
	// CodeExpired is returned when the request's propagated deadline had
	// already passed on arrival (rejected before dispatch) or expired while
	// the call was queued or between execution stages.
	CodeExpired uint64 = 9
	// CodeNotPrimary is returned by a backup replica asked to execute a
	// dynamic function: only the group's primary serves application traffic.
	// The replica set has changed, so clients drop the whole cached binding
	// and re-resolve (the agent knows the new primary).
	CodeNotPrimary uint64 = 10
	// CodeFenced is returned when a message carries a group epoch older than
	// the receiver's: the sender is a deposed primary (object replica or
	// manager) that must stop acting for the group.
	CodeFenced uint64 = 11
)

// ErrTruncatedEnvelope is returned when an envelope cannot be fully decoded.
var ErrTruncatedEnvelope = errors.New("wire: truncated envelope")

// Metadata tags used in the envelope's optional trailing metadata section.
// Tags are part of the wire contract; append only. Decoders skip unknown
// tags, so new tags may be introduced without breaking old peers.
const (
	metaTraceID    uint64 = 1
	metaSpanID     uint64 = 2
	metaDeadline   uint64 = 3
	metaTraceFlags uint64 = 4
)

// TraceFlags bits carried in the metaTraceFlags metadata entry.
const (
	// TraceFlagUnsampled marks a trace the head sampler decided to drop:
	// receivers must not record eager spans for it (only tail retention in
	// the flight recorder applies). The flag is a *drop* bit rather than a
	// keep bit so legacy frames — which carry a TraceID but no flags — keep
	// their original "record everything" semantics on new peers.
	TraceFlagUnsampled uint64 = 1
)

// Envelope is the unit of communication between nodes. Target is the
// destination object's LOID in string form; Method names the function being
// invoked (for requests) and Code/ErrorMsg describe failures (for errors).
//
// TraceID/SpanID carry distributed-tracing context and Deadline carries the
// caller's absolute deadline. On the wire they live in an optional metadata
// section appended after Payload; because the original decoder ignored
// trailing bytes, pre-metadata peers still accept frames carrying metadata,
// and post-metadata peers accept frames without it (the fields decode as
// zero).
type Envelope struct {
	Kind     Kind
	ID       uint64 // request/response correlation
	Target   string // destination object LOID
	Method   string // invoked function name (requests only)
	Code     uint64 // error code (errors only)
	ErrorMsg string // human-readable error (errors only)
	Payload  []byte // method arguments or results
	TraceID  uint64 // tracing: trace this message belongs to (0 = untraced)
	SpanID   uint64 // tracing: sender's span, parent of the receiver's span
	Deadline int64  // caller's absolute deadline, Unix nanoseconds (0 = none)
	// TraceFlags carries the head sampler's decision (TraceFlagUnsampled)
	// so the whole distributed trace is kept or dropped as a unit. Zero —
	// including on legacy frames that predate the field — means sampled.
	TraceFlags uint64

	// pooled marks an envelope obtained from GetEnvelope, the only kind
	// PutEnvelope will recycle (see envpool.go).
	pooled bool
	// payloadPooled marks Payload as a frame-pool buffer that PutEnvelope
	// must release via PutBuf.
	payloadPooled bool
}

// envelopeFixedOverhead bounds the non-variable bytes of an encoded
// envelope: kind (≤2) + id (≤10) + code (≤10) + four length prefixes
// (≤5 each), rounded up.
const envelopeFixedOverhead = 48

// envelopeMetadataOverhead bounds the metadata section: a pair count (1)
// plus four pairs of tag (≤2) + length prefix (1) + varint value (≤10).
const envelopeMetadataOverhead = 53

// hasMetadata reports whether the optional trailing metadata section will be
// emitted.
func (ev *Envelope) hasMetadata() bool {
	return ev.TraceID != 0 || ev.SpanID != 0 || ev.Deadline > 0 || ev.TraceFlags != 0
}

// EncodedSizeHint returns an upper bound on Encode's output size, metadata
// section included — so encoding into a buffer of this capacity never
// reallocates mid-encode (traced and deadline-stamped requests used to pay
// exactly that reallocation on every call).
func (ev *Envelope) EncodedSizeHint() int {
	n := envelopeFixedOverhead + len(ev.Target) + len(ev.Method) + len(ev.ErrorMsg) + len(ev.Payload)
	if ev.hasMetadata() {
		n += envelopeMetadataOverhead
	}
	return n
}

// Encode serialises the envelope. The metadata section is emitted only when
// at least one metadata field is set, so untraced traffic is byte-identical
// to the pre-metadata encoding.
func (ev *Envelope) Encode() []byte {
	e := Encoder{buf: make([]byte, 0, ev.EncodedSizeHint())}
	ev.encodeInto(&e)
	return e.buf
}

// AppendEncode appends the envelope's encoding to buf and returns the
// extended slice, allocating only if buf lacks capacity.
func (ev *Envelope) AppendEncode(buf []byte) []byte {
	e := Encoder{buf: buf}
	ev.encodeInto(&e)
	return e.buf
}

// EncodePooled serialises the envelope into a buffer from the frame pool.
// The caller owns the result and releases it with PutBuf once written out;
// this is the transport write path's zero-allocation encode.
func (ev *Envelope) EncodePooled() []byte {
	e := Encoder{buf: GetBuf(ev.EncodedSizeHint())[:0]}
	ev.encodeInto(&e)
	return e.buf
}

// encodeInto writes the envelope body through e.
func (ev *Envelope) encodeInto(e *Encoder) {
	e.PutUvarint(uint64(ev.Kind))
	e.PutUvarint(ev.ID)
	e.PutString(ev.Target)
	e.PutString(ev.Method)
	e.PutUvarint(ev.Code)
	e.PutString(ev.ErrorMsg)
	e.PutBytes(ev.Payload)
	if ev.hasMetadata() {
		ev.encodeMetadata(e)
	}
}

// encodeMetadata appends the metadata section: a uvarint pair count followed
// by (uvarint tag, length-prefixed value) pairs. Length-prefixing every
// value lets decoders skip tags they do not understand. The value scratch
// space is a fixed stack array so metadata-carrying envelopes (every request
// with a propagated deadline) encode without extra allocations.
func (ev *Envelope) encodeMetadata(e *Encoder) {
	var pairs uint64
	if ev.TraceID != 0 {
		pairs++
	}
	if ev.SpanID != 0 {
		pairs++
	}
	if ev.Deadline > 0 {
		pairs++
	}
	if ev.TraceFlags != 0 {
		pairs++
	}
	e.PutUvarint(pairs)
	var scratch [binary.MaxVarintLen64]byte
	put := func(tag, v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		e.PutUvarint(tag)
		e.PutBytes(scratch[:n])
	}
	if ev.TraceID != 0 {
		put(metaTraceID, ev.TraceID)
	}
	if ev.SpanID != 0 {
		put(metaSpanID, ev.SpanID)
	}
	if ev.Deadline > 0 {
		put(metaDeadline, uint64(ev.Deadline))
	}
	if ev.TraceFlags != 0 {
		put(metaTraceFlags, ev.TraceFlags)
	}
}

// decodeMetadata parses the optional trailing metadata section into ev.
// Metadata is best-effort observability context: malformed or unknown
// entries are ignored rather than failing the envelope, because tracing
// must never break message delivery.
func (ev *Envelope) decodeMetadata(d *Decoder) {
	pairs, err := d.Uvarint()
	if err != nil {
		return
	}
	for i := uint64(0); i < pairs; i++ {
		tag, err := d.Uvarint()
		if err != nil {
			return
		}
		val, err := d.Bytes()
		if err != nil {
			return
		}
		switch tag {
		case metaTraceID:
			if v, err := NewDecoder(val).Uvarint(); err == nil {
				ev.TraceID = v
			}
		case metaSpanID:
			if v, err := NewDecoder(val).Uvarint(); err == nil {
				ev.SpanID = v
			}
		case metaDeadline:
			// A deadline past the int64 range is malformed; leave it zero
			// (no deadline) rather than trusting a garbage value.
			if v, err := NewDecoder(val).Uvarint(); err == nil && v <= 1<<63-1 {
				ev.Deadline = int64(v)
			}
		case metaTraceFlags:
			if v, err := NewDecoder(val).Uvarint(); err == nil {
				ev.TraceFlags = v
			}
			// Unknown tags are skipped: the length prefix already consumed
			// their value.
		}
	}
}

// DecodeEnvelope parses an envelope from buf. The Payload field aliases buf.
func DecodeEnvelope(buf []byte) (*Envelope, error) {
	ev := &Envelope{}
	if err := ev.decodeFrom(buf); err != nil {
		return nil, err
	}
	return ev, nil
}

// decodeFrom parses an envelope from buf into ev, overwriting every field
// (stale state from a reused envelope never survives). The Payload field
// aliases buf.
func (ev *Envelope) decodeFrom(buf []byte) error {
	d := NewDecoder(buf)
	kind, err := d.Uvarint()
	if err != nil {
		return fmt.Errorf("%w: kind: %v", ErrTruncatedEnvelope, err)
	}
	id, err := d.Uvarint()
	if err != nil {
		return fmt.Errorf("%w: id: %v", ErrTruncatedEnvelope, err)
	}
	target, err := d.String()
	if err != nil {
		return fmt.Errorf("%w: target: %v", ErrTruncatedEnvelope, err)
	}
	method, err := d.String()
	if err != nil {
		return fmt.Errorf("%w: method: %v", ErrTruncatedEnvelope, err)
	}
	code, err := d.Uvarint()
	if err != nil {
		return fmt.Errorf("%w: code: %v", ErrTruncatedEnvelope, err)
	}
	errMsg, err := d.String()
	if err != nil {
		return fmt.Errorf("%w: error message: %v", ErrTruncatedEnvelope, err)
	}
	payload, err := d.Bytes()
	if err != nil {
		return fmt.Errorf("%w: payload: %v", ErrTruncatedEnvelope, err)
	}
	*ev = Envelope{
		Kind:     Kind(kind),
		ID:       id,
		Target:   target,
		Method:   method,
		Code:     code,
		ErrorMsg: errMsg,
		Payload:  payload,
	}
	// Optional trailing metadata: absent in pre-metadata frames (nothing
	// remains), best-effort otherwise.
	if d.Remaining() > 0 {
		ev.decodeMetadata(d)
	}
	return nil
}
