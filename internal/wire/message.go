package wire

import (
	"errors"
	"fmt"
)

// Kind discriminates the envelope types carried between nodes.
type Kind uint8

// Envelope kinds. Values are part of the wire contract; append only.
const (
	KindRequest Kind = iota + 1
	KindResponse
	KindError
	KindEvent
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindResponse:
		return "response"
	case KindError:
		return "error"
	case KindEvent:
		return "event"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Well-known error codes carried by KindError envelopes. These model the
// failure classes the paper requires clients to handle: in particular
// CodeNoSuchFunction is the on-the-wire manifestation of the disappearing
// exported function problem (§3.1).
const (
	CodeInternal       uint64 = 1
	CodeNoSuchObject   uint64 = 2
	CodeNoSuchFunction uint64 = 3
	CodeDisabled       uint64 = 4
	CodeStaleBinding   uint64 = 5
	CodeBadRequest     uint64 = 6
	CodeUnavailable    uint64 = 7
)

// ErrTruncatedEnvelope is returned when an envelope cannot be fully decoded.
var ErrTruncatedEnvelope = errors.New("wire: truncated envelope")

// Envelope is the unit of communication between nodes. Target is the
// destination object's LOID in string form; Method names the function being
// invoked (for requests) and Code/ErrorMsg describe failures (for errors).
type Envelope struct {
	Kind     Kind
	ID       uint64 // request/response correlation
	Target   string // destination object LOID
	Method   string // invoked function name (requests only)
	Code     uint64 // error code (errors only)
	ErrorMsg string // human-readable error (errors only)
	Payload  []byte // method arguments or results
}

// Encode serialises the envelope.
func (ev *Envelope) Encode() []byte {
	e := NewEncoder(16 + len(ev.Target) + len(ev.Method) + len(ev.ErrorMsg) + len(ev.Payload))
	e.PutUvarint(uint64(ev.Kind))
	e.PutUvarint(ev.ID)
	e.PutString(ev.Target)
	e.PutString(ev.Method)
	e.PutUvarint(ev.Code)
	e.PutString(ev.ErrorMsg)
	e.PutBytes(ev.Payload)
	return e.Bytes()
}

// DecodeEnvelope parses an envelope from buf. The Payload field aliases buf.
func DecodeEnvelope(buf []byte) (*Envelope, error) {
	d := NewDecoder(buf)
	kind, err := d.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: kind: %v", ErrTruncatedEnvelope, err)
	}
	id, err := d.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: id: %v", ErrTruncatedEnvelope, err)
	}
	target, err := d.String()
	if err != nil {
		return nil, fmt.Errorf("%w: target: %v", ErrTruncatedEnvelope, err)
	}
	method, err := d.String()
	if err != nil {
		return nil, fmt.Errorf("%w: method: %v", ErrTruncatedEnvelope, err)
	}
	code, err := d.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: code: %v", ErrTruncatedEnvelope, err)
	}
	errMsg, err := d.String()
	if err != nil {
		return nil, fmt.Errorf("%w: error message: %v", ErrTruncatedEnvelope, err)
	}
	payload, err := d.Bytes()
	if err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrTruncatedEnvelope, err)
	}
	return &Envelope{
		Kind:     Kind(kind),
		ID:       id,
		Target:   target,
		Method:   method,
		Code:     code,
		ErrorMsg: errMsg,
		Payload:  payload,
	}, nil
}
