package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncoderDecoderRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.PutUvarint(42)
	e.PutVarint(-17)
	e.PutBool(true)
	e.PutBool(false)
	e.PutFloat64(3.5)
	e.PutBytes([]byte{1, 2, 3})
	e.PutString("hello")
	e.PutStringSlice([]string{"a", "", "ccc"})
	e.PutUintSlice([]uint64{0, 1, math.MaxUint64})

	d := NewDecoder(e.Bytes())
	if v, err := d.Uvarint(); err != nil || v != 42 {
		t.Fatalf("Uvarint = %d, %v", v, err)
	}
	if v, err := d.Varint(); err != nil || v != -17 {
		t.Fatalf("Varint = %d, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || !v {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || v {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := d.Float64(); err != nil || v != 3.5 {
		t.Fatalf("Float64 = %v, %v", v, err)
	}
	if b, err := d.Bytes(); err != nil || !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v, %v", b, err)
	}
	if s, err := d.String(); err != nil || s != "hello" {
		t.Fatalf("String = %q, %v", s, err)
	}
	if ss, err := d.StringSlice(); err != nil || !reflect.DeepEqual(ss, []string{"a", "", "ccc"}) {
		t.Fatalf("StringSlice = %v, %v", ss, err)
	}
	if us, err := d.UintSlice(); err != nil || !reflect.DeepEqual(us, []uint64{0, 1, math.MaxUint64}) {
		t.Fatalf("UintSlice = %v, %v", us, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	d := NewDecoder(nil)
	if _, err := d.Uvarint(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("Uvarint err = %v", err)
	}
	if _, err := d.Bool(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("Bool err = %v", err)
	}
	if _, err := d.Float64(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("Float64 err = %v", err)
	}
	// A declared length longer than the remaining bytes must not panic.
	e := NewEncoder(8)
	e.PutUvarint(1000)
	d = NewDecoder(e.Bytes())
	if _, err := d.Bytes(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("Bytes err = %v", err)
	}
}

func TestDecoderHostileCountPrefix(t *testing.T) {
	// A count prefix claiming 2^60 strings must be rejected, not allocated.
	e := NewEncoder(8)
	e.PutUvarint(1 << 60)
	if _, err := NewDecoder(e.Bytes()).StringSlice(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("StringSlice err = %v", err)
	}
	if _, err := NewDecoder(e.Bytes()).UintSlice(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("UintSlice err = %v", err)
	}
}

func TestVarintPropertyRoundTrip(t *testing.T) {
	f := func(u uint64, v int64, s string, b []byte) bool {
		e := NewEncoder(32)
		e.PutUvarint(u)
		e.PutVarint(v)
		e.PutString(s)
		e.PutBytes(b)
		d := NewDecoder(e.Bytes())
		gu, err1 := d.Uvarint()
		gv, err2 := d.Varint()
		gs, err3 := d.String()
		gb, err4 := d.Bytes()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return gu == u && gv == v && gs == s && bytes.Equal(gb, b) && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("frame payload")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame = %q, want %q", got, payload)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("frame = %v, want empty", got)
	}
}

func TestFrameBadMagic(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0x00, 0, 0, 0, 1, 'x'})
	if _, err := ReadFrame(buf); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestFrameTooLargeRejectedOnWrite(t *testing.T) {
	var buf bytes.Buffer
	big := make([]byte, MaxFrameSize+1)
	if err := WriteFrame(&buf, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	_, err := ReadFrame(bytes.NewReader(trunc))
	if err == nil {
		t.Fatal("expected error for truncated stream")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want unexpected EOF", err)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	in := &Envelope{
		Kind:     KindRequest,
		ID:       99,
		Target:   "loid:1.2.3",
		Method:   "sort",
		Payload:  []byte{9, 8, 7},
		Code:     CodeNoSuchFunction,
		ErrorMsg: "function gone",
	}
	out, err := DecodeEnvelope(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestEnvelopePropertyRoundTrip(t *testing.T) {
	f := func(id uint64, target, method, errMsg string, payload []byte, kind uint8, code uint64) bool {
		in := &Envelope{
			Kind: Kind(kind), ID: id, Target: target, Method: method,
			Code: code, ErrorMsg: errMsg, Payload: payload,
		}
		out, err := DecodeEnvelope(in.Encode())
		if err != nil {
			return false
		}
		if len(in.Payload) == 0 && len(out.Payload) == 0 {
			out.Payload = in.Payload // nil vs empty slice are equivalent
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEnvelopeTruncated(t *testing.T) {
	full := (&Envelope{Kind: KindResponse, ID: 7, Target: "t", Method: "m", Payload: []byte("abc")}).Encode()
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeEnvelope(full[:cut]); err == nil {
			t.Fatalf("cut=%d: expected decode error", cut)
		}
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindRequest:  "request",
		KindResponse: "response",
		KindError:    "error",
		KindEvent:    "event",
		Kind(200):    "kind(200)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
