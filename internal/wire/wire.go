// Package wire implements the binary wire protocol used between godcdo
// nodes: a compact, reflection-free encoder/decoder and a length-prefixed
// frame format carried over byte streams.
//
// The format is deliberately simple: all integers are unsigned varints
// (zig-zag for signed), byte strings are length-prefixed, and every message
// travels inside an Envelope frame. Legion used its own message layer; this
// package is the equivalent substrate.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Protocol limits. Frames larger than MaxFrameSize are rejected to protect
// nodes from malformed peers.
const (
	// MaxFrameSize bounds a single frame (64 MiB accommodates the largest
	// component payload the experiments ship, 5.1 MB, with ample headroom).
	MaxFrameSize = 64 << 20
	// MagicByte begins every frame so stream desynchronisation is detected
	// immediately rather than misparsed.
	MagicByte = 0xD7
)

// Errors returned by the decoder and framer.
var (
	ErrShortBuffer   = errors.New("wire: short buffer")
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrBadMagic      = errors.New("wire: bad frame magic byte")
	ErrOverflow      = errors.New("wire: varint overflows 64 bits")
)

// Encoder serialises values into an internal buffer. The zero value is ready
// to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity preallocated for sizeHint
// bytes.
func NewEncoder(sizeHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded buffer. The returned slice aliases the encoder's
// internal storage and is invalidated by further Put calls.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the buffer, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutUvarint appends an unsigned varint.
func (e *Encoder) PutUvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// PutVarint appends a zig-zag encoded signed varint.
func (e *Encoder) PutVarint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// PutBool appends a boolean as a single byte.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// PutFloat64 appends an IEEE-754 float in big-endian byte order.
func (e *Encoder) PutFloat64(v float64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// PutBytes appends a length-prefixed byte string.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// PutString appends a length-prefixed UTF-8 string.
func (e *Encoder) PutString(s string) {
	e.PutUvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// PutStringSlice appends a count-prefixed sequence of strings.
func (e *Encoder) PutStringSlice(ss []string) {
	e.PutUvarint(uint64(len(ss)))
	for _, s := range ss {
		e.PutString(s)
	}
}

// PutUintSlice appends a count-prefixed sequence of unsigned varints.
func (e *Encoder) PutUintSlice(vs []uint64) {
	e.PutUvarint(uint64(len(vs)))
	for _, v := range vs {
		e.PutUvarint(v)
	}
}

// Decoder reads values sequentially from a byte slice produced by Encoder.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder over buf. The decoder does not copy buf.
func NewDecoder(buf []byte) *Decoder {
	return &Decoder{buf: buf}
}

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n == 0 {
		return 0, ErrShortBuffer
	}
	if n < 0 {
		return 0, ErrOverflow
	}
	d.off += n
	return v, nil
}

// Varint reads a zig-zag encoded signed varint.
func (d *Decoder) Varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n == 0 {
		return 0, ErrShortBuffer
	}
	if n < 0 {
		return 0, ErrOverflow
	}
	d.off += n
	return v, nil
}

// Bool reads a single-byte boolean.
func (d *Decoder) Bool() (bool, error) {
	if d.Remaining() < 1 {
		return false, ErrShortBuffer
	}
	b := d.buf[d.off]
	d.off++
	return b != 0, nil
}

// Float64 reads an IEEE-754 float.
func (d *Decoder) Float64() (float64, error) {
	if d.Remaining() < 8 {
		return 0, ErrShortBuffer
	}
	bits := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return math.Float64frombits(bits), nil
}

// Bytes reads a length-prefixed byte string. The returned slice aliases the
// decoder's buffer; callers that retain it must copy.
func (d *Decoder) Bytes() ([]byte, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.Remaining()) {
		return nil, ErrShortBuffer
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

// String reads a length-prefixed string.
func (d *Decoder) String() (string, error) {
	b, err := d.Bytes()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// StringSlice reads a count-prefixed sequence of strings.
func (d *Decoder) StringSlice() ([]string, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.Remaining()) { // each string needs >= 1 byte of prefix
		return nil, ErrShortBuffer
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := d.String()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// UintSlice reads a count-prefixed sequence of unsigned varints.
func (d *Decoder) UintSlice() ([]uint64, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.Remaining()) {
		return nil, ErrShortBuffer
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		v, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// WriteFrame writes a magic byte, a 4-byte big-endian length, and the
// payload to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	hdr[0] = MagicByte
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame written by WriteFrame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != MagicByte {
		return nil, ErrBadMagic
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("read frame payload: %w", err)
	}
	return payload, nil
}
