package wire

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
)

func TestGetBufClasses(t *testing.T) {
	for _, n := range []int{0, 1, 511, 512, 513, 4096, 70000, 1 << 20} {
		b := GetBuf(n)
		if len(b) != n {
			t.Fatalf("GetBuf(%d) len = %d", n, len(b))
		}
		PutBuf(b)
	}
	// Oversize buffers are allocated exactly and never pooled.
	big := GetBuf(2 << 20)
	if len(big) != 2<<20 {
		t.Fatalf("oversize len = %d", len(big))
	}
	if FramePoolStats().Oversize == 0 {
		t.Fatal("oversize allocation not counted")
	}
}

func TestPutBufThenGetReuses(t *testing.T) {
	// Pools may drop buffers under GC pressure, so assert the accounting
	// moves rather than demanding a specific buffer back.
	before := FramePoolStats()
	b := GetBuf(100)
	b[0] = 0xAB
	PutBuf(b)
	c := GetBuf(50)
	after := FramePoolStats()
	if hits, misses := after.Hits-before.Hits, after.Misses-before.Misses; hits+misses != 2 {
		t.Fatalf("pool accounting drifted: +%d hits +%d misses for 2 gets", hits, misses)
	}
	PutBuf(c)
}

func TestPutBufDropsUnderSized(t *testing.T) {
	PutBuf(make([]byte, 10)) // capacity below every class: silently dropped
}

func TestReadFramePooledRoundTrip(t *testing.T) {
	payload := []byte("pooled frame payload")
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFramePooled(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q want %q", got, payload)
	}
	PutBuf(got)
}

func TestReadFramePooledErrors(t *testing.T) {
	if _, err := ReadFramePooled(bytes.NewReader([]byte{0x00, 0, 0, 0, 1, 'x'})); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFramePooled(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if _, err := ReadFramePooled(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatal("empty stream must yield EOF")
	}
}

func TestEncodeVariantsAgree(t *testing.T) {
	cases := []*Envelope{
		{Kind: KindRequest, ID: 7, Target: "loid:1.2.3", Method: "get", Payload: []byte("hi")},
		{Kind: KindError, ID: 9, Code: 404, ErrorMsg: "gone"},
		{Kind: KindRequest, ID: 1, Target: "loid:1.2.3", Method: "m", TraceID: 42, SpanID: 7, Deadline: 1 << 40},
	}
	for _, ev := range cases {
		want := ev.Encode()
		if got := ev.AppendEncode(nil); !bytes.Equal(got, want) {
			t.Fatalf("AppendEncode mismatch: %x vs %x", got, want)
		}
		pooled := ev.EncodePooled()
		if !bytes.Equal(pooled, want) {
			t.Fatalf("EncodePooled mismatch: %x vs %x", pooled, want)
		}
		PutBuf(pooled)
		// AppendEncode really appends.
		prefixed := ev.AppendEncode([]byte{0xEE})
		if prefixed[0] != 0xEE || !bytes.Equal(prefixed[1:], want) {
			t.Fatal("AppendEncode clobbered its prefix")
		}
	}
}

// TestEncodedSizeHintCoversMetadata is the regression test for the old size
// hint, which ignored the metadata section and forced a mid-encode
// reallocation on every traced or deadline-stamped request.
func TestEncodedSizeHintCoversMetadata(t *testing.T) {
	ev := &Envelope{
		Kind: KindRequest, ID: 1<<64 - 1, Target: "loid:9.9.9", Method: "work",
		Payload: bytes.Repeat([]byte("p"), 300),
		TraceID: 1<<64 - 1, SpanID: 1<<64 - 1, Deadline: 1<<63 - 1,
	}
	hint := ev.EncodedSizeHint()
	if n := len(ev.Encode()); n > hint {
		t.Fatalf("encoded %d bytes exceeds hint %d (mid-encode realloc)", n, hint)
	}
	// Encoding into a hint-capacity buffer must not grow it.
	buf := make([]byte, 0, hint)
	out := ev.AppendEncode(buf)
	if cap(out) != hint {
		t.Fatalf("AppendEncode grew the buffer: cap %d -> %d", hint, cap(out))
	}
}

// TestPoolConcurrentReuse hammers Get/Put from many goroutines under -race:
// two goroutines must never observe the same buffer concurrently.
func TestPoolConcurrentReuse(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := GetBuf(64 + g)
				for j := range b {
					b[j] = byte(g)
				}
				for j := range b {
					if b[j] != byte(g) {
						t.Errorf("buffer shared across goroutines: got %d want %d", b[j], g)
						return
					}
				}
				PutBuf(b)
			}
		}(g)
	}
	wg.Wait()
}
