package wire

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func buildRun(t *testing.T, subs []*Envelope) []byte {
	t.Helper()
	buf := AppendBatchHeader(nil, len(subs))
	var scratch []byte
	for _, sub := range subs {
		buf, scratch = AppendBatchEntry(buf, sub, scratch)
	}
	return buf
}

func TestBatchRunRoundTrip(t *testing.T) {
	subs := []*Envelope{
		{Kind: KindRequest, ID: 1, Target: "loid:1", Method: "echo", Payload: []byte("hello")},
		{Kind: KindRequest, ID: 2, Target: "loid:2", Method: "add", Payload: []byte{0, 1, 2, 0xDB}},
		{Kind: KindRequest, ID: 3, Target: "loid:3", Method: "get"},
	}
	run := buildRun(t, subs)

	got, err := DecodeBatchRun(run, nil)
	if err != nil {
		t.Fatalf("DecodeBatchRun: %v", err)
	}
	if len(got) != len(subs) {
		t.Fatalf("decoded %d subs, want %d", len(got), len(subs))
	}
	for i, want := range subs {
		g := &got[i]
		if g.Kind != want.Kind || g.ID != want.ID || g.Target != want.Target ||
			g.Method != want.Method || !bytes.Equal(g.Payload, want.Payload) {
			t.Fatalf("sub %d mismatch: got %+v want %+v", i, g, want)
		}
	}
}

func TestBatchRunRoundTripThroughEnvelope(t *testing.T) {
	// A batch run travels as the payload of an outer envelope carrying the
	// correlation ID and deadline; verify the full nesting round-trips.
	subs := []*Envelope{
		{Kind: KindRequest, ID: 1, Target: "loid:7", Method: "m", Payload: []byte("args")},
		{Kind: KindRequest, ID: 2, Target: "loid:8", Method: "n"},
	}
	outer := &Envelope{
		Kind:     KindBatchRequest,
		ID:       99,
		Payload:  buildRun(t, subs),
		Deadline: 1234567890,
	}
	dec, err := DecodeEnvelope(outer.Encode())
	if err != nil {
		t.Fatalf("DecodeEnvelope: %v", err)
	}
	if dec.Kind != KindBatchRequest || dec.ID != 99 || dec.Deadline != 1234567890 {
		t.Fatalf("outer mismatch: %+v", dec)
	}
	got, err := DecodeBatchRun(dec.Payload, nil)
	if err != nil {
		t.Fatalf("DecodeBatchRun: %v", err)
	}
	if len(got) != 2 || got[0].Target != "loid:7" || got[1].Method != "n" {
		t.Fatalf("subs mismatch: %+v", got)
	}
}

func TestBatchRunDecodeReusesDst(t *testing.T) {
	subs := []*Envelope{{Kind: KindRequest, ID: 1, Method: "a", Payload: []byte("x")}}
	run := buildRun(t, subs)
	// A reused dst slice with stale entries must be fully overwritten.
	dst := make([]Envelope, 0, 4)
	dst = append(dst, Envelope{Kind: KindError, Code: CodeInternal, ErrorMsg: "stale"})
	dst = dst[:0]
	got, err := DecodeBatchRun(run, dst)
	if err != nil {
		t.Fatalf("DecodeBatchRun: %v", err)
	}
	if got[0].Kind != KindRequest || got[0].Code != 0 || got[0].ErrorMsg != "" {
		t.Fatalf("stale fields survived reuse: %+v", got[0])
	}
}

func TestBatchRunRejectsOversizedCount(t *testing.T) {
	run := AppendBatchHeader(nil, MaxBatchCalls+1)
	if _, err := DecodeBatchRun(run, nil); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("want ErrBatchTooLarge, got %v", err)
	}
}

func TestBatchRunRejectsLyingCount(t *testing.T) {
	// A count claiming more entries than there are bytes must be rejected
	// up front (it protects decode from attacker-controlled growth).
	run := AppendBatchHeader(nil, 500)
	if _, err := DecodeBatchRun(run, nil); !errors.Is(err, ErrTruncatedEnvelope) {
		t.Fatalf("want ErrTruncatedEnvelope, got %v", err)
	}
}

func TestBatchRunTruncatedEntry(t *testing.T) {
	subs := []*Envelope{
		{Kind: KindRequest, ID: 1, Method: "a", Payload: []byte("0123456789")},
		{Kind: KindRequest, ID: 2, Method: "b", Payload: []byte("abcdefghij")},
	}
	run := buildRun(t, subs)
	for cut := 1; cut < len(run); cut++ {
		if _, err := DecodeBatchRun(run[:cut], nil); err == nil {
			t.Fatalf("truncation at %d/%d decoded cleanly", cut, len(run))
		}
	}
}

func TestBatchEntrySizeHintCovers(t *testing.T) {
	sub := &Envelope{Kind: KindRequest, ID: 7, Target: "loid:42", Method: "echo",
		Payload: bytes.Repeat([]byte("p"), 300), Deadline: 1}
	before := AppendBatchHeader(nil, 1)
	after, _ := AppendBatchEntry(before, sub, nil)
	if grew := len(after) - len(before); grew > BatchEntrySizeHint(sub) {
		t.Fatalf("entry used %d bytes, hint promised ≤%d", grew, BatchEntrySizeHint(sub))
	}
}

func TestEnvelopePoolRecyclesOnlyPooled(t *testing.T) {
	// A plain envelope must never enter the pool.
	plain := &Envelope{Kind: KindResponse, ID: 1}
	PutEnvelope(plain) // must be a no-op
	if plain.Kind != KindResponse {
		t.Fatal("PutEnvelope reset a non-pooled envelope")
	}

	ev := GetEnvelope()
	ev.Kind = KindResponse
	ev.ID = 42
	ev.Payload = []byte("result")
	PutEnvelope(ev)
	if ev.Kind != 0 || ev.ID != 0 || ev.Payload != nil {
		t.Fatalf("pooled envelope not reset: %+v", ev)
	}
}

func TestEnvelopePoolReleasesMarkedPayload(t *testing.T) {
	ev := GetEnvelope()
	ev.Kind = KindBatchResponse
	ev.Payload = GetBuf(100)
	ev.MarkPayloadPooled()
	before := FramePoolStats()
	SetPoisonChecks(true)
	defer SetPoisonChecks(false)
	PutEnvelope(ev)
	// Poison mode quarantines on PutBuf, so the Poisoned delta proves the
	// payload really was routed back through the frame pool.
	if got := FramePoolStats().Poisoned; got != before.Poisoned+1 {
		t.Fatalf("marked payload not released: poisoned %d -> %d", before.Poisoned, got)
	}
}

func TestDecodeBatchRunArbitraryBytesNeverPanics(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		{0x01},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
		bytes.Repeat([]byte{0x02}, 64),
	}
	for i, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("input %d panicked: %v", i, r)
				}
			}()
			_, _ = DecodeBatchRun(in, nil)
		}()
	}
}

func BenchmarkBatchRunEncode16(b *testing.B) {
	subs := make([]*Envelope, 16)
	for i := range subs {
		subs[i] = &Envelope{Kind: KindRequest, ID: uint64(i + 1),
			Target: fmt.Sprintf("loid:%d", i), Method: "echo",
			Payload: bytes.Repeat([]byte("x"), 64)}
	}
	b.ReportAllocs()
	var buf, scratch []byte
	for i := 0; i < b.N; i++ {
		buf = AppendBatchHeader(buf[:0], len(subs))
		for _, sub := range subs {
			buf, scratch = AppendBatchEntry(buf, sub, scratch)
		}
	}
}
