package wire

import (
	"testing"
	"testing/quick"
)

// Decoders across the codebase feed on bytes from the network; none of them
// may panic on arbitrary input. These properties hammer the wire layer —
// the packages above it (dfm, component, legion, manager) get the same
// treatment in their own fuzz tests.

func TestDecodeEnvelopeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeEnvelope(data) // error or success, never panic
		return true
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderPrimitivesNeverPanic(t *testing.T) {
	f := func(data []byte) bool {
		d := NewDecoder(data)
		for d.Remaining() > 0 {
			before := d.Remaining()
			_, _ = d.Uvarint()
			_, _ = d.Varint()
			_, _ = d.Bool()
			_, _ = d.Float64()
			_, _ = d.Bytes()
			_, _ = d.String()
			_, _ = d.StringSlice()
			_, _ = d.UintSlice()
			if d.Remaining() == before {
				break // no progress possible; decoders refused everything
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeEnvelopeMetadataNeverPanics appends arbitrary bytes after a
// valid envelope body — the position of the optional metadata section — and
// checks the decoder neither panics nor lets garbage metadata fail the
// envelope or corrupt its body.
func TestDecodeEnvelopeMetadataNeverPanics(t *testing.T) {
	f := func(id uint64, target string, payload, trailer []byte) bool {
		ev := &Envelope{Kind: KindRequest, ID: id, Target: target, Payload: payload}
		buf := append(ev.Encode(), trailer...)
		got, err := DecodeEnvelope(buf)
		if err != nil {
			return false // a valid body must decode whatever trails it
		}
		return got.ID == id && got.Target == target
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Fatal(err)
	}
}

func quickConfig() *quick.Config {
	return &quick.Config{MaxCount: 500}
}
