package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Frame-buffer pooling. The invoke hot path reads one frame and encodes one
// envelope per message in each direction; paying a fresh make([]byte, n) for
// every one of them is exactly the kind of substrate overhead the paper's
// performance study says the mechanism must not add. Buffers are pooled in a
// small set of size classes so a steady-state node allocates nothing on the
// frame path.
//
// Ownership contract (see also DESIGN.md "Transport fast path"):
//
//   - GetBuf/ReadFramePooled hand the caller exclusive ownership of the
//     returned buffer.
//   - DecodeEnvelope's Payload (and anything else derived via Decoder.Bytes)
//     aliases the frame buffer. The buffer may be released only after that
//     data has been consumed or copied.
//   - PutBuf returns ownership to the pool; the caller must not touch the
//     slice (or anything aliasing it) afterwards.
//
// Callers that cannot prove when the derived data dies simply skip PutBuf and
// let the GC reclaim the buffer — releasing is an optimisation, never an
// obligation.

// bufClasses are the pooled capacity classes. Frames larger than the last
// class are allocated fresh (counted as oversize, not pool misses).
var bufClasses = [...]int{512, 4 << 10, 64 << 10, 1 << 20}

var bufPools [len(bufClasses)]sync.Pool

// Pool counters. Global rather than per-connection: the pool itself is
// process-global, and the hit rate is a property of the whole node's traffic
// mix.
var (
	poolHits     atomic.Uint64
	poolMisses   atomic.Uint64
	poolOversize atomic.Uint64
	poolPoisoned atomic.Uint64
)

// PoolStats is a snapshot of the frame-buffer pool counters.
type PoolStats struct {
	// Hits counts GetBuf calls satisfied from a pooled buffer.
	Hits uint64
	// Misses counts GetBuf calls that allocated a fresh class-sized buffer.
	Misses uint64
	// Oversize counts GetBuf calls larger than the largest class (allocated
	// fresh, never pooled).
	Oversize uint64
	// Poisoned counts buffers quarantined by PutBuf while poison checks
	// were enabled (see SetPoisonChecks).
	Poisoned uint64
}

// FramePoolStats returns a snapshot of the pool counters.
func FramePoolStats() PoolStats {
	return PoolStats{
		Hits:     poolHits.Load(),
		Misses:   poolMisses.Load(),
		Oversize: poolOversize.Load(),
		Poisoned: poolPoisoned.Load(),
	}
}

// PoisonByte fills released buffers while poison checks are enabled. The
// value is arbitrary but distinctive: a late reader that sees a run of 0xDB
// is looking at a released frame, not at plausible recycled traffic.
const PoisonByte = 0xDB

// poisonChecks gates the pool's diagnostic mode (SetPoisonChecks).
var poisonChecks atomic.Bool

// SetPoisonChecks toggles the pool's use-after-release diagnostic mode.
// While enabled, PutBuf fills the buffer with PoisonByte and quarantines it
// (the buffer is never re-pooled), so code that wrongly reads a borrowed
// payload after releasing its frame sees deterministic poison instead of
// whatever request happened to recycle the buffer — turning a silent,
// load-dependent aliasing corruption into an immediately recognisable
// failure. Intended for tests and debugging: quarantining defeats pooling,
// so leave it off in production.
func SetPoisonChecks(on bool) { poisonChecks.Store(on) }

// PoisonChecksEnabled reports whether poison mode is active.
func PoisonChecksEnabled() bool { return poisonChecks.Load() }

// classFor returns the index of the smallest class holding n bytes, or -1
// when n exceeds every class.
func classFor(n int) int {
	for i, c := range bufClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// GetBuf returns a buffer of length n (capacity possibly larger) from the
// pool. The caller owns it until PutBuf.
func GetBuf(n int) []byte {
	ci := classFor(n)
	if ci < 0 {
		poolOversize.Add(1)
		return make([]byte, n)
	}
	if v := bufPools[ci].Get(); v != nil {
		box := v.(*poolBuf)
		b := box.b
		box.b = nil
		boxPool.Put(box)
		poolHits.Add(1)
		return b[:n]
	}
	poolMisses.Add(1)
	return make([]byte, n, bufClasses[ci])
}

// poolBuf boxes a slice so Put does not allocate an interface header on
// every release (the classic sync.Pool []byte pitfall).
type poolBuf struct{ b []byte }

var boxPool = sync.Pool{New: func() any { return new(poolBuf) }}

// PutBuf returns a buffer obtained from GetBuf (or any buffer the caller
// owns outright) to the pool. Buffers whose capacity matches no class are
// dropped for the GC.
func PutBuf(b []byte) {
	if poisonChecks.Load() {
		b = b[:cap(b)]
		for i := range b {
			b[i] = PoisonByte
		}
		poolPoisoned.Add(1)
		// Quarantine: the poisoned buffer never re-enters the pool, so the
		// poison pattern survives for any late reader to trip over.
		return
	}
	c := cap(b)
	// Find the largest class the capacity fully covers, so a Get from that
	// class always has room.
	ci := -1
	for i, cls := range bufClasses {
		if c >= cls {
			ci = i
		}
	}
	if ci < 0 {
		return
	}
	box := boxPool.Get().(*poolBuf)
	box.b = b[:0:c]
	bufPools[ci].Put(box)
}

// ReadFramePooled reads one frame written by WriteFrame into pooled storage.
// The returned buffer is owned by the caller, who releases it with PutBuf
// once every byte derived from it (notably a decoded envelope's Payload) has
// been consumed or copied. The error paths never leak a pooled buffer.
func ReadFramePooled(r io.Reader) ([]byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != MagicByte {
		return nil, ErrBadMagic
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := GetBuf(int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		PutBuf(payload)
		return nil, fmt.Errorf("read frame payload: %w", err)
	}
	return payload, nil
}
