package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

// legacyEncode reproduces the pre-metadata envelope encoding exactly: seven
// fields, nothing after Payload. Used to stand in for an old peer.
func legacyEncode(ev *Envelope) []byte {
	e := NewEncoder(16 + len(ev.Target) + len(ev.Method) + len(ev.ErrorMsg) + len(ev.Payload))
	e.PutUvarint(uint64(ev.Kind))
	e.PutUvarint(ev.ID)
	e.PutString(ev.Target)
	e.PutString(ev.Method)
	e.PutUvarint(ev.Code)
	e.PutString(ev.ErrorMsg)
	e.PutBytes(ev.Payload)
	return e.Bytes()
}

// legacyDecode reproduces the pre-metadata decoder exactly: it reads the
// seven fields and ignores anything that follows. Used to stand in for an
// old peer receiving new frames.
func legacyDecode(buf []byte) (*Envelope, error) {
	d := NewDecoder(buf)
	kind, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	id, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	target, err := d.String()
	if err != nil {
		return nil, err
	}
	method, err := d.String()
	if err != nil {
		return nil, err
	}
	code, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	errMsg, err := d.String()
	if err != nil {
		return nil, err
	}
	payload, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	return &Envelope{Kind: Kind(kind), ID: id, Target: target, Method: method,
		Code: code, ErrorMsg: errMsg, Payload: payload}, nil
}

func sampleEnvelope() *Envelope {
	return &Envelope{
		Kind:    KindRequest,
		ID:      42,
		Target:  "1.7.9",
		Method:  "transfer",
		Payload: []byte("args"),
	}
}

func TestEnvelopeMetadataRoundTrip(t *testing.T) {
	ev := sampleEnvelope()
	ev.TraceID = 0xdeadbeefcafe
	ev.SpanID = 7
	got, err := DecodeEnvelope(ev.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != ev.TraceID || got.SpanID != ev.SpanID {
		t.Fatalf("trace context lost: got %d/%d, want %d/%d",
			got.TraceID, got.SpanID, ev.TraceID, ev.SpanID)
	}
	if got.Target != ev.Target || got.Method != ev.Method || !bytes.Equal(got.Payload, ev.Payload) {
		t.Fatalf("body fields corrupted: %+v", got)
	}
}

func TestEnvelopeMetadataPartial(t *testing.T) {
	// Only one of the two IDs set: the section still round-trips.
	ev := sampleEnvelope()
	ev.TraceID = 99
	got, err := DecodeEnvelope(ev.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 99 || got.SpanID != 0 {
		t.Fatalf("got %d/%d, want 99/0", got.TraceID, got.SpanID)
	}
}

func TestUntracedEncodingUnchanged(t *testing.T) {
	// With no trace context the new encoder must produce byte-identical
	// output to the legacy encoder — the metadata section is truly optional.
	ev := sampleEnvelope()
	if !bytes.Equal(ev.Encode(), legacyEncode(ev)) {
		t.Fatal("untraced encoding differs from pre-metadata encoding")
	}
}

func TestLegacyDecoderAcceptsMetadataFrames(t *testing.T) {
	// Old peer, new frame: the legacy decoder must parse the body correctly
	// and simply not see the trace context.
	ev := sampleEnvelope()
	ev.TraceID = 123456
	ev.SpanID = 654321
	got, err := legacyDecode(ev.Encode())
	if err != nil {
		t.Fatalf("legacy decoder rejected a metadata frame: %v", err)
	}
	if got.Kind != ev.Kind || got.ID != ev.ID || got.Target != ev.Target ||
		got.Method != ev.Method || !bytes.Equal(got.Payload, ev.Payload) {
		t.Fatalf("legacy decoder corrupted body: %+v", got)
	}
}

func TestNewDecoderAcceptsLegacyFrames(t *testing.T) {
	// New peer, old frame: decodes cleanly with zero trace context.
	ev := sampleEnvelope()
	got, err := DecodeEnvelope(legacyEncode(ev))
	if err != nil {
		t.Fatalf("new decoder rejected a legacy frame: %v", err)
	}
	if got.TraceID != 0 || got.SpanID != 0 {
		t.Fatalf("phantom trace context: %d/%d", got.TraceID, got.SpanID)
	}
	if got.Target != ev.Target || !bytes.Equal(got.Payload, ev.Payload) {
		t.Fatalf("body corrupted: %+v", got)
	}
}

func TestMalformedMetadataIgnored(t *testing.T) {
	// Garbage after the payload must not fail the envelope: metadata is
	// best-effort observability context.
	base := legacyEncode(sampleEnvelope())
	for _, trailer := range [][]byte{
		{0xff},                   // truncated pair count
		{0x02, 0x01},             // claims 2 pairs, truncates after one tag
		{0x01, 0x01, 0x05, 0xaa}, // value length 5, only 1 byte present
		{0x01, 0x63, 0x01, 0x00}, // unknown tag 99: skipped
	} {
		buf := append(append([]byte{}, base...), trailer...)
		got, err := DecodeEnvelope(buf)
		if err != nil {
			t.Fatalf("trailer %x failed the envelope: %v", trailer, err)
		}
		if got.Target != "1.7.9" {
			t.Fatalf("trailer %x corrupted body: %+v", trailer, got)
		}
	}
}

func TestUnknownMetadataTagsSkipped(t *testing.T) {
	// A future peer sends tags we do not know plus ones we do: the known
	// tags must still decode.
	base := legacyEncode(sampleEnvelope())
	e := NewEncoder(16)
	e.PutUvarint(3) // three pairs
	e.PutUvarint(99)
	e.PutBytes([]byte("future-value"))
	e.PutUvarint(metaTraceID)
	var val Encoder
	val.PutUvarint(777)
	e.PutBytes(val.Bytes())
	e.PutUvarint(100)
	e.PutBytes(nil)
	buf := append(append([]byte{}, base...), e.Bytes()...)
	got, err := DecodeEnvelope(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 777 {
		t.Fatalf("TraceID = %d, want 777 (unknown tags must be skipped, not abort parsing)", got.TraceID)
	}
}

func TestTraceFlagsRoundTrip(t *testing.T) {
	ev := sampleEnvelope()
	ev.TraceID = 555
	ev.SpanID = 556
	ev.TraceFlags = TraceFlagUnsampled
	got, err := DecodeEnvelope(ev.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceFlags != TraceFlagUnsampled {
		t.Fatalf("TraceFlags = %d, want %d", got.TraceFlags, TraceFlagUnsampled)
	}
	if got.TraceID != 555 || got.SpanID != 556 {
		t.Fatalf("trace context lost alongside flags: %d/%d", got.TraceID, got.SpanID)
	}
	// A legacy peer must still parse the body of a flagged frame.
	legacy, err := legacyDecode(ev.Encode())
	if err != nil {
		t.Fatalf("legacy decoder rejected a flagged frame: %v", err)
	}
	if legacy.Target != ev.Target || !bytes.Equal(legacy.Payload, ev.Payload) {
		t.Fatalf("legacy decoder corrupted flagged frame body: %+v", legacy)
	}
}

func TestLegacyFramesDecodeAsSampled(t *testing.T) {
	// A legacy frame carrying a trace but no flags must decode with
	// TraceFlags zero — i.e. sampled — preserving pre-sampling semantics.
	ev := sampleEnvelope()
	ev.TraceID = 31337
	buf := legacyEncode(ev)
	e := NewEncoder(8)
	e.PutUvarint(1)
	e.PutUvarint(metaTraceID)
	var val Encoder
	val.PutUvarint(31337)
	e.PutBytes(val.Bytes())
	buf = append(buf, e.Bytes()...)
	got, err := DecodeEnvelope(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 31337 || got.TraceFlags != 0 {
		t.Fatalf("got trace %d flags %d, want 31337/0", got.TraceID, got.TraceFlags)
	}
	if got.TraceFlags&TraceFlagUnsampled != 0 {
		t.Fatal("legacy frame decoded as unsampled")
	}
}

func TestEncodedSizeHintCoversFlaggedMetadata(t *testing.T) {
	// The size hint must bound the full four-pair metadata section so
	// flagged+deadline-stamped requests never reallocate mid-encode.
	ev := sampleEnvelope()
	ev.TraceID = ^uint64(0)
	ev.SpanID = ^uint64(0)
	ev.Deadline = 1<<63 - 1
	ev.TraceFlags = ^uint64(0)
	if n, hint := len(ev.Encode()), ev.EncodedSizeHint(); n > hint {
		t.Fatalf("encoded %d bytes > hint %d", n, hint)
	}
}

func TestMetadataRoundTripQuick(t *testing.T) {
	// Property: for any envelope and trace context, Encode→Decode preserves
	// both body and metadata, and the legacy decoder preserves the body.
	f := func(id, traceID, spanID uint64, target, method string, payload []byte) bool {
		ev := &Envelope{Kind: KindRequest, ID: id, Target: target,
			Method: method, Payload: payload, TraceID: traceID, SpanID: spanID}
		buf := ev.Encode()
		got, err := DecodeEnvelope(buf)
		if err != nil {
			return false
		}
		if got.TraceID != traceID || got.SpanID != spanID ||
			got.ID != id || got.Target != target || got.Method != method ||
			!bytes.Equal(got.Payload, payload) {
			return false
		}
		legacy, err := legacyDecode(buf)
		if err != nil {
			return false
		}
		return legacy.ID == id && legacy.Target == target && bytes.Equal(legacy.Payload, payload)
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Fatal(err)
	}
}
