package wire

import (
	"errors"
	"fmt"
)

// Batch runs. A KindBatchRequest (or KindBatchResponse) envelope carries in
// its Payload a *batch run*: a uvarint sub-envelope count followed by that
// many length-prefixed, individually encoded envelopes. Sub-requests are
// ordinary KindRequest envelopes; sub-responses are KindResponse or
// KindError. The outer envelope owns correlation and metadata — its ID pairs
// request with response, and its deadline/trace metadata applies to every
// sub-call — so sub-envelopes normally carry none of their own.
//
// Length-prefixing each sub-envelope is what makes the run walkable: a bare
// envelope encoding has no self-delimiting tail (trailing metadata is
// detected by "bytes remain"), so concatenating envelopes without prefixes
// would be ambiguous.
//
// Legacy tolerance mirrors the metaDeadline rollout: a pre-batch server
// rejects the unknown envelope kind with CodeBadRequest *before* dispatching
// anything, so a new client can safely re-issue every sub-call individually
// — including non-idempotent ones — when it sees that rejection.

// MaxBatchCalls bounds the sub-envelope count in one batch run. Clients
// chunk larger batches; decoders reject larger counts before allocating.
const MaxBatchCalls = 1024

// ErrBatchTooLarge is returned when a batch run's header claims more
// sub-envelopes than MaxBatchCalls.
var ErrBatchTooLarge = errors.New("wire: batch run exceeds MaxBatchCalls")

// AppendBatchHeader appends a batch run's sub-envelope count to buf and
// returns the extended slice. The caller must append exactly count entries
// with AppendBatchEntry and must keep count within MaxBatchCalls (decoders
// reject anything larger).
func AppendBatchHeader(buf []byte, count int) []byte {
	e := Encoder{buf: buf}
	e.PutUvarint(uint64(count))
	return e.buf
}

// AppendBatchEntry appends one length-prefixed sub-envelope to buf, using
// scratch as encode space. It returns the grown buf and the (possibly
// grown) scratch so callers can reuse both across entries without
// allocating.
func AppendBatchEntry(buf []byte, sub *Envelope, scratch []byte) (newBuf, newScratch []byte) {
	scratch = sub.AppendEncode(scratch[:0])
	e := Encoder{buf: buf}
	e.PutBytes(scratch)
	return e.buf, scratch
}

// BatchEntrySizeHint returns an upper bound on the bytes AppendBatchEntry
// will append for sub (its encoding plus the length prefix).
func BatchEntrySizeHint(sub *Envelope) int {
	return sub.EncodedSizeHint() + 5
}

// DecodeBatchRun parses a batch run from buf, appending the decoded
// sub-envelopes to dst (which may be nil) and returning the extended slice.
// Sub-envelope Payloads alias buf, so buf must outlive every use of the
// results — the standard frame-pool ownership contract applies.
func DecodeBatchRun(buf []byte, dst []Envelope) ([]Envelope, error) {
	d := NewDecoder(buf)
	count, err := d.Uvarint()
	if err != nil {
		return dst, fmt.Errorf("%w: batch count: %v", ErrTruncatedEnvelope, err)
	}
	if count > MaxBatchCalls {
		return dst, fmt.Errorf("%w: %d sub-envelopes", ErrBatchTooLarge, count)
	}
	// Every entry costs at least one byte of length prefix, so a count
	// beyond the remaining bytes is a lie — reject before growing dst.
	if int(count) > d.Remaining() {
		return dst, fmt.Errorf("%w: batch count %d exceeds %d remaining bytes",
			ErrTruncatedEnvelope, count, d.Remaining())
	}
	for i := uint64(0); i < count; i++ {
		raw, err := d.Bytes()
		if err != nil {
			return dst, fmt.Errorf("%w: batch entry %d: %v", ErrTruncatedEnvelope, i, err)
		}
		dst = append(dst, Envelope{})
		if err := dst[len(dst)-1].decodeFrom(raw); err != nil {
			return dst, fmt.Errorf("batch entry %d: %w", i, err)
		}
	}
	return dst, nil
}
