package wire

import "sync"

// Envelope pooling for the server response path. Every dispatched call used
// to allocate one response envelope that died as soon as the transport
// encoded it; pooling them removes that per-call allocation the same way the
// frame pool removed the per-frame one.
//
// The contract is deliberately asymmetric so it is impossible to corrupt a
// response by handing it to the wrong transport:
//
//   - Only envelopes obtained from GetEnvelope are marked recyclable.
//     PutEnvelope on anything else (a stack envelope, a decoded request,
//     transport.Dropped) is a no-op.
//   - Only the TCP server write path calls PutEnvelope — after the response
//     has been fully encoded into its outgoing frame. The in-process
//     transport hands the handler's envelope straight to the caller and
//     never recycles it, so pooled envelopes returned over inproc simply
//     fall to the GC (a pool miss, never an aliasing bug).

var envPool = sync.Pool{New: func() any { return new(Envelope) }}

// GetEnvelope returns a zeroed envelope that PutEnvelope can recycle. The
// caller owns it until it hands the envelope off (e.g. returns it from a
// transport.Handler); the component that consumes it decides whether to
// recycle.
func GetEnvelope() *Envelope {
	ev := envPool.Get().(*Envelope)
	ev.pooled = true
	return ev
}

// MarkPayloadPooled records that ev.Payload is a frame-pool buffer
// (GetBuf) whose ownership travels with the envelope: PutEnvelope releases
// it via PutBuf when the envelope is recycled.
func (ev *Envelope) MarkPayloadPooled() { ev.payloadPooled = true }

// PutEnvelope recycles an envelope previously returned by GetEnvelope, along
// with any frame-pool payload marked via MarkPayloadPooled. Envelopes from
// any other source are left for the GC, so calling this on every response is
// always safe. The caller must not touch ev (or a payload it owned)
// afterwards.
func PutEnvelope(ev *Envelope) {
	if ev == nil || !ev.pooled {
		return
	}
	if ev.payloadPooled && ev.Payload != nil {
		PutBuf(ev.Payload)
	}
	*ev = Envelope{}
	envPool.Put(ev)
}
