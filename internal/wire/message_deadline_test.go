package wire

import (
	"bytes"
	"testing"
)

func TestDeadlineMetadataRoundTrip(t *testing.T) {
	ev := sampleEnvelope()
	ev.Deadline = 1_700_000_000_123_456_789
	got, err := DecodeEnvelope(ev.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Deadline != ev.Deadline {
		t.Fatalf("Deadline = %d, want %d", got.Deadline, ev.Deadline)
	}
	if got.Target != ev.Target || got.Method != ev.Method || !bytes.Equal(got.Payload, ev.Payload) {
		t.Fatalf("body fields corrupted: %+v", got)
	}
}

func TestDeadlineAlongsideTraceContext(t *testing.T) {
	// All three metadata tags together: each must survive independently.
	ev := sampleEnvelope()
	ev.TraceID = 11
	ev.SpanID = 22
	ev.Deadline = 33
	got, err := DecodeEnvelope(ev.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 11 || got.SpanID != 22 || got.Deadline != 33 {
		t.Fatalf("metadata lost: trace=%d span=%d deadline=%d", got.TraceID, got.SpanID, got.Deadline)
	}
}

func TestNoDeadlineKeepsLegacyEncoding(t *testing.T) {
	// A request without a deadline (and no trace context) must stay
	// byte-identical to the pre-metadata encoding — the deadline tag is
	// strictly pay-for-what-you-use.
	ev := sampleEnvelope()
	if !bytes.Equal(ev.Encode(), legacyEncode(ev)) {
		t.Fatal("deadline-free encoding differs from pre-metadata encoding")
	}
}

func TestLegacyFrameDecodesWithoutDeadline(t *testing.T) {
	// Old peer, new decoder: no phantom deadline may appear.
	got, err := DecodeEnvelope(legacyEncode(sampleEnvelope()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Deadline != 0 {
		t.Fatalf("phantom deadline %d on a legacy frame", got.Deadline)
	}
}

func TestLegacyDecoderIgnoresDeadlineFrames(t *testing.T) {
	// New peer, old decoder: the body must parse; the deadline is simply
	// invisible to the old peer.
	ev := sampleEnvelope()
	ev.Deadline = 987654321
	got, err := legacyDecode(ev.Encode())
	if err != nil {
		t.Fatalf("legacy decoder rejected a deadline frame: %v", err)
	}
	if got.Target != ev.Target || !bytes.Equal(got.Payload, ev.Payload) {
		t.Fatalf("legacy decoder corrupted body: %+v", got)
	}
}

func TestDeadlineOverflowIgnored(t *testing.T) {
	// A deadline value that does not fit int64 (a hostile or broken peer)
	// must be dropped, not wrapped into a bogus — possibly negative — time.
	base := legacyEncode(sampleEnvelope())
	e := NewEncoder(16)
	e.PutUvarint(1) // one pair
	e.PutUvarint(metaDeadline)
	var val Encoder
	val.PutUvarint(1 << 63) // exceeds math.MaxInt64
	e.PutBytes(val.Bytes())
	buf := append(append([]byte{}, base...), e.Bytes()...)
	got, err := DecodeEnvelope(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Deadline != 0 {
		t.Fatalf("overflowing deadline accepted as %d", got.Deadline)
	}
}
