package wire

import (
	"bytes"
	"testing"
)

// Native fuzz targets (go test -fuzz), complementing the testing/quick
// properties in fuzz_test.go: the engine's coverage guidance digs far deeper
// into the varint/length-prefix state space than random bytes do. The
// Makefile's fuzz-smoke target runs these for a bounded time on every CI
// pass.

// FuzzDecodeEnvelope asserts DecodeEnvelope never panics and that every
// envelope it accepts re-encodes and decodes to the same identity fields.
func FuzzDecodeEnvelope(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Envelope{Kind: KindRequest, ID: 7, Target: "loid:1.2.3", Method: "get", Payload: []byte("hi")}).Encode())
	f.Add((&Envelope{Kind: KindError, ID: 9, Code: 404, ErrorMsg: "gone"}).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		// Accepted envelopes must round-trip their identity.
		again, err := DecodeEnvelope(ev.Encode())
		if err != nil {
			t.Fatalf("re-decode of accepted envelope failed: %v", err)
		}
		if again.Kind != ev.Kind || again.ID != ev.ID || again.Target != ev.Target || again.Method != ev.Method {
			t.Fatalf("round trip changed identity: %+v -> %+v", ev, again)
		}
	})
}

// FuzzFrameRoundTrip asserts the pooled frame path is byte-faithful: any
// payload written by WriteFrame must come back identical through
// ReadFramePooled, and releasing the pooled buffer must never corrupt a
// subsequent read.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("payload"))
	f.Add(bytes.Repeat([]byte{0xD7}, 600)) // magic-byte-dense, crosses a size class
	f.Fuzz(func(t *testing.T, payload []byte) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			if len(payload) > MaxFrameSize {
				return
			}
			t.Fatalf("WriteFrame: %v", err)
		}
		got, err := ReadFramePooled(&buf)
		if err != nil {
			t.Fatalf("ReadFramePooled: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("frame changed in flight: %d bytes vs %d", len(got), len(payload))
		}
		// Release, then read a second frame through the pool: reuse must not
		// leak the first payload into the second.
		PutBuf(got)
		probe := []byte("probe-after-release")
		buf.Reset()
		if err := WriteFrame(&buf, probe); err != nil {
			t.Fatal(err)
		}
		again, err := ReadFramePooled(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, probe) {
			t.Fatalf("pooled reuse corrupted frame: %q", again)
		}
		PutBuf(again)
	})
}
