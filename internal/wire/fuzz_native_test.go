package wire

import (
	"bytes"
	"testing"
)

// Native fuzz targets (go test -fuzz), complementing the testing/quick
// properties in fuzz_test.go: the engine's coverage guidance digs far deeper
// into the varint/length-prefix state space than random bytes do. The
// Makefile's fuzz-smoke target runs these for a bounded time on every CI
// pass.

// FuzzDecodeEnvelope asserts DecodeEnvelope never panics and that every
// envelope it accepts re-encodes and decodes to the same identity fields.
func FuzzDecodeEnvelope(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Envelope{Kind: KindRequest, ID: 7, Target: "loid:1.2.3", Method: "get", Payload: []byte("hi")}).Encode())
	f.Add((&Envelope{Kind: KindError, ID: 9, Code: 404, ErrorMsg: "gone"}).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		// Accepted envelopes must round-trip their identity.
		again, err := DecodeEnvelope(ev.Encode())
		if err != nil {
			t.Fatalf("re-decode of accepted envelope failed: %v", err)
		}
		if again.Kind != ev.Kind || again.ID != ev.ID || again.Target != ev.Target || again.Method != ev.Method {
			t.Fatalf("round trip changed identity: %+v -> %+v", ev, again)
		}
	})
}

// FuzzFrameRoundTrip asserts the pooled frame path is byte-faithful: any
// payload written by WriteFrame must come back identical through
// ReadFramePooled, and releasing the pooled buffer must never corrupt a
// subsequent read. It also covers the batch envelope: the fuzz payload is
// decoded as a batch run (must never panic) and carried as a sub-payload
// through an encoded batch run (must survive identically).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("payload"))
	f.Add(bytes.Repeat([]byte{0xD7}, 600)) // magic-byte-dense, crosses a size class
	f.Add(AppendBatchHeader(nil, 3))       // lying batch count
	f.Fuzz(func(t *testing.T, payload []byte) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			if len(payload) > MaxFrameSize {
				return
			}
			t.Fatalf("WriteFrame: %v", err)
		}
		got, err := ReadFramePooled(&buf)
		if err != nil {
			t.Fatalf("ReadFramePooled: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("frame changed in flight: %d bytes vs %d", len(got), len(payload))
		}
		// Release, then read a second frame through the pool: reuse must not
		// leak the first payload into the second.
		PutBuf(got)
		probe := []byte("probe-after-release")
		buf.Reset()
		if err := WriteFrame(&buf, probe); err != nil {
			t.Fatal(err)
		}
		again, err := ReadFramePooled(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, probe) {
			t.Fatalf("pooled reuse corrupted frame: %q", again)
		}
		PutBuf(again)

		// Batch envelope coverage. Arbitrary bytes must never panic the
		// batch-run decoder (errors are fine).
		_, _ = DecodeBatchRun(payload, nil)

		// And a well-formed run carrying the fuzz payload must round-trip
		// through an outer batch envelope with full fidelity.
		if len(payload) > MaxFrameSize/2 {
			return
		}
		sub := Envelope{Kind: KindRequest, ID: 1, Target: "loid:f", Method: "fz", Payload: payload}
		run := AppendBatchHeader(nil, 2)
		var scratch []byte
		run, scratch = AppendBatchEntry(run, &sub, scratch)
		sub.ID, sub.Payload = 2, nil
		run, _ = AppendBatchEntry(run, &sub, scratch)
		outer := Envelope{Kind: KindBatchRequest, ID: 42, Payload: run}

		buf.Reset()
		if err := WriteFrame(&buf, outer.Encode()); err != nil {
			t.Fatalf("WriteFrame(batch): %v", err)
		}
		frame, err := ReadFramePooled(&buf)
		if err != nil {
			t.Fatalf("ReadFramePooled(batch): %v", err)
		}
		dec, err := DecodeEnvelope(frame)
		if err != nil {
			t.Fatalf("DecodeEnvelope(batch): %v", err)
		}
		if dec.Kind != KindBatchRequest || dec.ID != 42 {
			t.Fatalf("batch outer changed identity: %+v", dec)
		}
		subs, err := DecodeBatchRun(dec.Payload, nil)
		if err != nil {
			t.Fatalf("DecodeBatchRun(encoded run): %v", err)
		}
		if len(subs) != 2 || subs[0].ID != 1 || subs[1].ID != 2 || subs[0].Method != "fz" {
			t.Fatalf("batch subs changed identity: %+v", subs)
		}
		if !bytes.Equal(subs[0].Payload, payload) {
			t.Fatalf("batch sub payload changed in flight: %d bytes vs %d", len(subs[0].Payload), len(payload))
		}
		PutBuf(frame)
	})
}
