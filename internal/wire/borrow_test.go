package wire

import (
	"bytes"
	"testing"
)

// TestBorrowedPayloadLateReleasePoisons exercises the frame-pool ownership
// contract from the borrower's side, the way a buggy BorrowedArgs handler
// would break it: decode a payload that aliases a pooled frame, release the
// frame, then read the alias late. With poison checks on, the late reader
// must observe the deterministic PoisonByte fill and the pool must count the
// quarantine — a recognisable diagnostic instead of silent corruption from
// whatever traffic recycled the buffer. Runs under -race in `make race`; the
// handoff is through a channel so the only badness is the semantic
// use-after-release the poison mode exists to catch.
func TestBorrowedPayloadLateReleasePoisons(t *testing.T) {
	SetPoisonChecks(true)
	defer SetPoisonChecks(false)

	ev := &Envelope{Kind: KindRequest, ID: 9, Target: "loid:9", Method: "put",
		Payload: bytes.Repeat([]byte("A"), 600)}
	var net bytes.Buffer
	if err := WriteFrame(&net, ev.Encode()); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	frame, err := ReadFramePooled(&net)
	if err != nil {
		t.Fatalf("ReadFramePooled: %v", err)
	}
	dec, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("DecodeEnvelope: %v", err)
	}
	borrowed := dec.Payload // aliases frame — the borrow

	// A second goroutine holds the borrow across the release, as a handler
	// that stashed its args would.
	released := make(chan struct{})
	observed := make(chan []byte)
	go func() {
		<-released
		snapshot := make([]byte, len(borrowed))
		copy(snapshot, borrowed) // late read: after PutBuf
		observed <- snapshot
	}()

	before := FramePoolStats().Poisoned
	PutBuf(frame) // released while the borrow is still live — the bug under test
	close(released)
	late := <-observed

	if got := FramePoolStats().Poisoned; got != before+1 {
		t.Fatalf("poisoned counter %d -> %d, want +1", before, got)
	}
	for i, b := range late {
		if b != PoisonByte {
			t.Fatalf("late read byte %d = %#x, want poison %#x — release leaked live data", i, b, PoisonByte)
		}
	}

	// The quarantined buffer must never come back: a GetBuf of the same
	// class may hit on some *other* pooled buffer, but never on this one.
	fresh := GetBuf(len(frame))
	if &fresh[0] == &frame[0] {
		t.Fatal("pool handed the quarantined buffer back out")
	}
	PutBuf(fresh)
}

// TestPoisonChecksOffPoolsNormally pins that the diagnostic mode is opt-in:
// with poison checks off, release/reuse works as before.
func TestPoisonChecksOffPoolsNormally(t *testing.T) {
	if PoisonChecksEnabled() {
		t.Fatal("poison checks unexpectedly enabled")
	}
	buf := GetBuf(600)
	before := FramePoolStats()
	PutBuf(buf)
	if got := FramePoolStats().Poisoned; got != before.Poisoned {
		t.Fatalf("poisoned counter moved with checks off: %d -> %d", before.Poisoned, got)
	}
}
