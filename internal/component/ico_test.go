package component

import (
	"context"

	"bytes"
	"errors"
	"testing"

	"godcdo/internal/naming"
	"godcdo/internal/registry"
	"godcdo/internal/rpc"
	"godcdo/internal/transport"
	"godcdo/internal/vclock"
	"godcdo/internal/wire"
)

func syntheticComponent(t *testing.T, id string, size int64) *Component {
	t.Helper()
	c, err := NewSynthetic(Descriptor{
		ID: id, Revision: 1, CodeRef: id + ":1",
		Impl: registry.NativeImplType, CodeSize: size,
		Functions: []FunctionDecl{{Name: "f", Exported: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestICODescriptorAndSize(t *testing.T) {
	comp := syntheticComponent(t, "c1", 300)
	ico := NewICO(comp)

	descBytes, err := ico.InvokeMethod(MethodGetDescriptor, nil)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := DecodeDescriptor(descBytes)
	if err != nil {
		t.Fatal(err)
	}
	if desc.ID != "c1" || desc.CodeSize != 300 {
		t.Fatalf("descriptor = %+v", desc)
	}

	sizeBytes, err := ico.InvokeMethod(MethodGetCodeSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	size, err := wire.NewDecoder(sizeBytes).Uvarint()
	if err != nil || size != 300 {
		t.Fatalf("size = %d, %v", size, err)
	}
}

func TestICOReadCodeChunked(t *testing.T) {
	comp := syntheticComponent(t, "c2", ReadChunkSize+100)
	ico := NewICO(comp)

	read := func(offset, length uint64) ([]byte, error) {
		e := wire.NewEncoder(16)
		e.PutUvarint(offset)
		e.PutUvarint(length)
		return ico.InvokeMethod(MethodReadCode, e.Bytes())
	}

	chunk1, err := read(0, ReadChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunk1) != ReadChunkSize {
		t.Fatalf("chunk1 len = %d", len(chunk1))
	}
	chunk2, err := read(ReadChunkSize, ReadChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunk2) != 100 {
		t.Fatalf("chunk2 len = %d", len(chunk2))
	}
	if !bytes.Equal(append(chunk1, chunk2...), comp.Code) {
		t.Fatal("reassembled code differs")
	}

	// Oversized length requests are clamped to the chunk size.
	big, err := read(0, 10*ReadChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(big) != ReadChunkSize {
		t.Fatalf("clamped read len = %d, want %d", len(big), ReadChunkSize)
	}

	if _, err := read(uint64(len(comp.Code))+1, 10); !errors.Is(err, ErrBadRange) {
		t.Fatalf("out-of-range err = %v", err)
	}
}

func TestICOUnknownMethod(t *testing.T) {
	ico := NewICO(syntheticComponent(t, "c3", 10))
	if _, err := ico.InvokeMethod("bogus", nil); !errors.Is(err, rpc.ErrNoSuchFunction) {
		t.Fatalf("err = %v, want ErrNoSuchFunction", err)
	}
}

func TestICOBadReadArgs(t *testing.T) {
	ico := NewICO(syntheticComponent(t, "c4", 10))
	if _, err := ico.InvokeMethod(MethodReadCode, nil); !errors.Is(err, rpc.ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
}

func TestICOUpdatePublishesNewRevision(t *testing.T) {
	ico := NewICO(syntheticComponent(t, "c5", 10))
	newComp := syntheticComponent(t, "c5", 20)
	newComp.Desc.Revision = 2
	ico.Update(newComp)
	descBytes, err := ico.InvokeMethod(MethodGetDescriptor, nil)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := DecodeDescriptor(descBytes)
	if err != nil {
		t.Fatal(err)
	}
	if desc.Revision != 2 || desc.CodeSize != 20 {
		t.Fatalf("descriptor after update = %+v", desc)
	}
	if ico.Component() != newComp {
		t.Fatal("Component() did not return updated component")
	}
}

// remoteEnv hosts an ICO behind the RPC layer over the in-process transport.
func remoteEnv(t *testing.T, comp *Component) (*rpc.Client, naming.LOID) {
	t.Helper()
	clk := vclock.Real{}
	agent := naming.NewAgent(clk)
	cache := naming.NewCache(agent, clk, 0)
	net := transport.NewInprocNetwork()
	disp := rpc.NewDispatcher()
	srv, err := net.Listen("ico-host", disp)
	if err != nil {
		t.Fatal(err)
	}
	loid := naming.LOID{Domain: 1, Class: 7, Instance: 1}
	disp.Host(loid, NewICO(comp))
	agent.Register(loid, naming.Address{Endpoint: srv.Endpoint()})
	return rpc.NewClient(cache, net.Dialer()), loid
}

func TestRemoteFetcherRoundTrip(t *testing.T) {
	comp := syntheticComponent(t, "remote", 3*ReadChunkSize/2)
	client, loid := remoteEnv(t, comp)
	f := &RemoteFetcher{Client: client}
	got, err := f.Fetch(context.Background(), loid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Desc.ID != "remote" {
		t.Fatalf("descriptor = %+v", got.Desc)
	}
	if !bytes.Equal(got.Code, comp.Code) {
		t.Fatal("downloaded code differs from source")
	}
}

func TestRemoteFetcherZeroSizeCode(t *testing.T) {
	comp := syntheticComponent(t, "tiny", 0)
	client, loid := remoteEnv(t, comp)
	f := &RemoteFetcher{Client: client}
	got, err := f.Fetch(context.Background(), loid)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Code) != 0 {
		t.Fatalf("code len = %d, want 0", len(got.Code))
	}
}

func TestRemoteFetcherUnboundICO(t *testing.T) {
	client, _ := remoteEnv(t, syntheticComponent(t, "x", 1))
	f := &RemoteFetcher{Client: client}
	if _, err := f.Fetch(context.Background(), naming.LOID{Instance: 999}); err == nil {
		t.Fatal("expected error fetching unbound ICO")
	}
}

func TestStoreAndCachingFetcher(t *testing.T) {
	comp := syntheticComponent(t, "cached", 64)
	loid := naming.LOID{Instance: 11}

	fetches := 0
	backing := FetcherFunc(func(ico naming.LOID) (*Component, error) {
		fetches++
		if ico != loid {
			return nil, errors.New("unknown ico")
		}
		return comp, nil
	})
	store := NewStore()
	cf := &CachingFetcher{Store: store, Backing: backing}

	for i := 0; i < 3; i++ {
		got, err := cf.Fetch(context.Background(), loid)
		if err != nil {
			t.Fatal(err)
		}
		if got != comp {
			t.Fatal("wrong component")
		}
	}
	if fetches != 1 {
		t.Fatalf("backing fetched %d times, want 1", fetches)
	}
	hits, misses := cf.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits %d misses", hits, misses)
	}
	if store.Len() != 1 {
		t.Fatalf("store len = %d", store.Len())
	}
	store.Drop(loid)
	if _, ok := store.Get(loid); ok {
		t.Fatal("Drop did not remove component")
	}
}

func TestCachingFetcherPropagatesErrors(t *testing.T) {
	wantErr := errors.New("backing down")
	cf := &CachingFetcher{
		Store:   NewStore(),
		Backing: FetcherFunc(func(naming.LOID) (*Component, error) { return nil, wantErr }),
	}
	if _, err := cf.Fetch(context.Background(), naming.LOID{Instance: 1}); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if cf.Store.Len() != 0 {
		t.Fatal("error result was cached")
	}
}
