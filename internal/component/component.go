// Package component implements implementation components and the
// Implementation Component Objects (ICOs) that serve them (§2.3 of the
// paper).
//
// A component bundles a descriptor — the functions it implements, their
// exported/mandatory/permanent markings and declared intra-object calls —
// with the executable code that implements them. In this reproduction the
// code bytes are synthetic (Go cannot load code at run time; see package
// registry) but they are real data that travels over the network, so the
// transfer costs the paper measures are exercised faithfully.
package component

import (
	"errors"
	"fmt"

	"godcdo/internal/registry"
	"godcdo/internal/wire"
)

// Errors returned by descriptor validation and decoding.
var (
	// ErrInvalidDescriptor is returned for descriptors that fail
	// validation.
	ErrInvalidDescriptor = errors.New("component: invalid descriptor")
	// ErrCorruptDescriptor is returned when a descriptor cannot be
	// decoded.
	ErrCorruptDescriptor = errors.New("component: corrupt descriptor")
)

// FunctionDecl describes one dynamic function implemented by a component.
type FunctionDecl struct {
	// Name is the dynamic function's name, unique within the component.
	Name string
	// Exported marks the function callable from other objects; otherwise
	// it is internal (§2, "dynamic functions can be exported or internal").
	Exported bool
	// Mandatory requests that any DCDO incorporating this component keep
	// some implementation of the function present (§3.2).
	Mandatory bool
	// Permanent requests that this implementation of the function be
	// frozen in any DCDO incorporating this component (§3.2).
	Permanent bool
	// Calls lists the dynamic functions this implementation calls within
	// its object — the structural dependencies that the paper notes "could
	// be automated via static analysis of source code".
	Calls []string
}

// Descriptor describes a component's contents: the executable code's
// identity, its implementation type, and the functions it defines.
type Descriptor struct {
	// ID names the component, unique within a DCDO Manager.
	ID string
	// Revision distinguishes successive builds of the same component.
	Revision uint64
	// CodeRef is the registry code reference the executable binds to.
	CodeRef string
	// Impl is the component's implementation type (§2.1).
	Impl registry.ImplType
	// CodeSize is the executable's size in bytes; downloads cost
	// accordingly.
	CodeSize int64
	// Functions lists the dynamic functions the component implements.
	Functions []FunctionDecl
}

// Validate checks internal consistency.
func (d *Descriptor) Validate() error {
	if d.ID == "" {
		return fmt.Errorf("%w: empty component ID", ErrInvalidDescriptor)
	}
	if d.CodeRef == "" {
		return fmt.Errorf("%w: %q has no code reference", ErrInvalidDescriptor, d.ID)
	}
	if d.CodeSize < 0 {
		return fmt.Errorf("%w: %q has negative code size", ErrInvalidDescriptor, d.ID)
	}
	if len(d.Functions) == 0 {
		return fmt.Errorf("%w: %q declares no functions", ErrInvalidDescriptor, d.ID)
	}
	seen := make(map[string]bool, len(d.Functions))
	for _, f := range d.Functions {
		if f.Name == "" {
			return fmt.Errorf("%w: %q declares an unnamed function", ErrInvalidDescriptor, d.ID)
		}
		if seen[f.Name] {
			return fmt.Errorf("%w: %q declares function %q twice", ErrInvalidDescriptor, d.ID, f.Name)
		}
		seen[f.Name] = true
		if f.Permanent && !f.Mandatory {
			// A permanent function is implicitly mandatory: its frozen
			// implementation must be present. Normalisation keeps
			// downstream checks simple.
			return fmt.Errorf("%w: %q marks %q permanent but not mandatory", ErrInvalidDescriptor, d.ID, f.Name)
		}
	}
	return nil
}

// Function returns the declaration of the named function.
func (d *Descriptor) Function(name string) (FunctionDecl, bool) {
	for _, f := range d.Functions {
		if f.Name == name {
			return f, true
		}
	}
	return FunctionDecl{}, false
}

// FunctionNames returns the declared function names in declaration order.
func (d *Descriptor) FunctionNames() []string {
	names := make([]string, len(d.Functions))
	for i, f := range d.Functions {
		names[i] = f.Name
	}
	return names
}

// Encode serialises the descriptor for transfer from an ICO.
func (d Descriptor) Encode() []byte {
	e := wire.NewEncoder(64 + 32*len(d.Functions))
	e.PutString(d.ID)
	e.PutUvarint(d.Revision)
	e.PutString(d.CodeRef)
	e.PutString(d.Impl.String())
	e.PutVarint(d.CodeSize)
	e.PutUvarint(uint64(len(d.Functions)))
	for _, f := range d.Functions {
		e.PutString(f.Name)
		e.PutBool(f.Exported)
		e.PutBool(f.Mandatory)
		e.PutBool(f.Permanent)
		e.PutStringSlice(f.Calls)
	}
	return e.Bytes()
}

// DecodeDescriptor parses a descriptor encoded with Encode.
func DecodeDescriptor(buf []byte) (*Descriptor, error) {
	dec := wire.NewDecoder(buf)
	var d Descriptor
	var err error
	if d.ID, err = dec.String(); err != nil {
		return nil, fmt.Errorf("%w: id: %v", ErrCorruptDescriptor, err)
	}
	if d.Revision, err = dec.Uvarint(); err != nil {
		return nil, fmt.Errorf("%w: revision: %v", ErrCorruptDescriptor, err)
	}
	if d.CodeRef, err = dec.String(); err != nil {
		return nil, fmt.Errorf("%w: code ref: %v", ErrCorruptDescriptor, err)
	}
	implStr, err := dec.String()
	if err != nil {
		return nil, fmt.Errorf("%w: impl type: %v", ErrCorruptDescriptor, err)
	}
	if d.Impl, err = registry.ParseImplType(implStr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptDescriptor, err)
	}
	if d.CodeSize, err = dec.Varint(); err != nil {
		return nil, fmt.Errorf("%w: code size: %v", ErrCorruptDescriptor, err)
	}
	n, err := dec.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: function count: %v", ErrCorruptDescriptor, err)
	}
	if n > uint64(dec.Remaining()) {
		return nil, fmt.Errorf("%w: function count %d exceeds buffer", ErrCorruptDescriptor, n)
	}
	d.Functions = make([]FunctionDecl, 0, n)
	for i := uint64(0); i < n; i++ {
		var f FunctionDecl
		if f.Name, err = dec.String(); err != nil {
			return nil, fmt.Errorf("%w: function name: %v", ErrCorruptDescriptor, err)
		}
		if f.Exported, err = dec.Bool(); err != nil {
			return nil, fmt.Errorf("%w: exported flag: %v", ErrCorruptDescriptor, err)
		}
		if f.Mandatory, err = dec.Bool(); err != nil {
			return nil, fmt.Errorf("%w: mandatory flag: %v", ErrCorruptDescriptor, err)
		}
		if f.Permanent, err = dec.Bool(); err != nil {
			return nil, fmt.Errorf("%w: permanent flag: %v", ErrCorruptDescriptor, err)
		}
		if f.Calls, err = dec.StringSlice(); err != nil {
			return nil, fmt.Errorf("%w: calls: %v", ErrCorruptDescriptor, err)
		}
		d.Functions = append(d.Functions, f)
	}
	return &d, nil
}

// Component bundles a descriptor with its executable code bytes.
type Component struct {
	Desc Descriptor
	Code []byte
}

// NewSynthetic builds a component whose code bytes are deterministic
// pseudo-content of Desc.CodeSize bytes. The content is a cheap xorshift
// stream seeded from the component identity, so equal components have equal
// bytes and transfers move real, incompressible-ish data.
func NewSynthetic(desc Descriptor) (*Component, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	code := make([]byte, desc.CodeSize)
	seed := uint64(len(desc.ID)+1) * (desc.Revision + 1)
	for _, c := range desc.ID {
		seed = seed*31 + uint64(c)
	}
	x := seed | 1
	for i := range code {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		code[i] = byte(x)
	}
	return &Component{Desc: desc, Code: code}, nil
}
