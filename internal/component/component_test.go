package component

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"godcdo/internal/registry"
)

func validDescriptor() Descriptor {
	return Descriptor{
		ID:       "mathlib",
		Revision: 1,
		CodeRef:  "mathlib:1",
		Impl:     registry.NativeImplType,
		CodeSize: 1024,
		Functions: []FunctionDecl{
			{Name: "sort", Exported: true, Calls: []string{"compare"}},
			{Name: "compare", Exported: false},
		},
	}
}

func TestDescriptorValidateAccepts(t *testing.T) {
	d := validDescriptor()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptorValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Descriptor)
	}{
		{"empty ID", func(d *Descriptor) { d.ID = "" }},
		{"empty code ref", func(d *Descriptor) { d.CodeRef = "" }},
		{"negative code size", func(d *Descriptor) { d.CodeSize = -1 }},
		{"no functions", func(d *Descriptor) { d.Functions = nil }},
		{"unnamed function", func(d *Descriptor) { d.Functions[0].Name = "" }},
		{"duplicate function", func(d *Descriptor) { d.Functions[1].Name = d.Functions[0].Name }},
		{"permanent without mandatory", func(d *Descriptor) { d.Functions[0].Permanent = true }},
	}
	for _, c := range cases {
		d := validDescriptor()
		c.mutate(&d)
		if err := d.Validate(); !errors.Is(err, ErrInvalidDescriptor) {
			t.Errorf("%s: err = %v, want ErrInvalidDescriptor", c.name, err)
		}
	}
}

func TestDescriptorEncodeDecodeRoundTrip(t *testing.T) {
	in := validDescriptor()
	out, err := DecodeDescriptor(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, *out)
	}
}

func TestDescriptorDecodeTruncated(t *testing.T) {
	full := validDescriptor().Encode()
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeDescriptor(full[:cut]); !errors.Is(err, ErrCorruptDescriptor) {
			t.Fatalf("cut=%d: err = %v, want ErrCorruptDescriptor", cut, err)
		}
	}
}

func TestDescriptorPropertyRoundTrip(t *testing.T) {
	f := func(id, codeRef string, rev uint64, fname string, exported bool, calls []string) bool {
		if id == "" || codeRef == "" || fname == "" {
			return true // Validate covers rejection; here we test the codec
		}
		in := Descriptor{
			ID: id, Revision: rev, CodeRef: codeRef,
			Impl: registry.NativeImplType, CodeSize: 42,
			Functions: []FunctionDecl{{Name: fname, Exported: exported, Calls: calls}},
		}
		out, err := DecodeDescriptor(in.Encode())
		if err != nil {
			return false
		}
		if len(in.Functions[0].Calls) == 0 && len(out.Functions[0].Calls) == 0 {
			out.Functions[0].Calls = in.Functions[0].Calls
		}
		return reflect.DeepEqual(&in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptorFunctionLookup(t *testing.T) {
	d := validDescriptor()
	f, ok := d.Function("sort")
	if !ok || !f.Exported {
		t.Fatalf("Function(sort) = %+v, %v", f, ok)
	}
	if _, ok := d.Function("missing"); ok {
		t.Fatal("found nonexistent function")
	}
	if got := d.FunctionNames(); !reflect.DeepEqual(got, []string{"sort", "compare"}) {
		t.Fatalf("FunctionNames = %v", got)
	}
}

func TestNewSyntheticDeterministic(t *testing.T) {
	d := validDescriptor()
	c1, err := NewSynthetic(d)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewSynthetic(d)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(c1.Code)) != d.CodeSize {
		t.Fatalf("code size = %d, want %d", len(c1.Code), d.CodeSize)
	}
	if !bytes.Equal(c1.Code, c2.Code) {
		t.Fatal("synthetic code not deterministic")
	}
	d2 := d
	d2.ID = "other"
	c3, err := NewSynthetic(d2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(c1.Code, c3.Code) {
		t.Fatal("different components produced identical code")
	}
}

func TestNewSyntheticValidates(t *testing.T) {
	d := validDescriptor()
	d.ID = ""
	if _, err := NewSynthetic(d); !errors.Is(err, ErrInvalidDescriptor) {
		t.Fatalf("err = %v, want ErrInvalidDescriptor", err)
	}
}
