package component

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"godcdo/internal/naming"
	"godcdo/internal/rpc"
	"godcdo/internal/wire"
)

// ICO method names (the implementation component object's exported
// interface, §2.3).
const (
	MethodGetDescriptor = "ico.getDescriptor"
	MethodGetCodeSize   = "ico.getCodeSize"
	MethodReadCode      = "ico.readCode"
)

// ReadChunkSize is the maximum number of code bytes returned by one
// MethodReadCode call, mirroring Legion's chunked object-to-object bulk
// transfer (and driving the per-chunk costs in the simulated experiments).
const ReadChunkSize = 64 << 10

// ErrBadRange is returned for reads outside the component's code.
var ErrBadRange = errors.New("component: read out of range")

// ICO is an Implementation Component Object: an active distributed object
// that maintains a component's data so components live in the system's
// global namespace. It implements rpc.Object.
type ICO struct {
	mu   sync.RWMutex
	comp *Component
}

var _ rpc.Object = (*ICO)(nil)

// NewICO returns an ICO serving comp.
func NewICO(comp *Component) *ICO {
	return &ICO{comp: comp}
}

// Component returns the served component (for in-process access).
func (o *ICO) Component() *Component {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.comp
}

// Update replaces the served component — publishing a new revision of the
// component under the same name.
func (o *ICO) Update(comp *Component) {
	o.mu.Lock()
	o.comp = comp
	o.mu.Unlock()
}

// InvokeMethod implements rpc.Object.
func (o *ICO) InvokeMethod(method string, args []byte) ([]byte, error) {
	o.mu.RLock()
	comp := o.comp
	o.mu.RUnlock()

	switch method {
	case MethodGetDescriptor:
		return comp.Desc.Encode(), nil
	case MethodGetCodeSize:
		e := wire.NewEncoder(8)
		e.PutUvarint(uint64(len(comp.Code)))
		return e.Bytes(), nil
	case MethodReadCode:
		d := wire.NewDecoder(args)
		offset, err := d.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: offset: %v", rpc.ErrBadRequest, err)
		}
		length, err := d.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: length: %v", rpc.ErrBadRequest, err)
		}
		if length > ReadChunkSize {
			length = ReadChunkSize
		}
		if offset > uint64(len(comp.Code)) {
			return nil, fmt.Errorf("%w: offset %d beyond %d", ErrBadRange, offset, len(comp.Code))
		}
		end := offset + length
		if end > uint64(len(comp.Code)) {
			end = uint64(len(comp.Code))
		}
		return comp.Code[offset:end], nil
	default:
		return nil, fmt.Errorf("%q: %w", method, rpc.ErrNoSuchFunction)
	}
}

// Fetcher obtains components by the LOID of their ICO. The DCDO
// incorporation path is written against this interface so in-process tests,
// cached stores, and genuinely remote ICOs are interchangeable. Fetches may
// involve many round trips; ctx lets an evolution abandon a transfer when
// the caller's deadline expires.
type Fetcher interface {
	Fetch(ctx context.Context, ico naming.LOID) (*Component, error)
}

// RemoteFetcher downloads components from ICOs over RPC, chunk by chunk.
type RemoteFetcher struct {
	Client *rpc.Client
}

var _ Fetcher = (*RemoteFetcher)(nil)

// Fetch implements Fetcher.
func (f *RemoteFetcher) Fetch(ctx context.Context, ico naming.LOID) (*Component, error) {
	descBytes, err := f.Client.Invoke(ctx, ico, MethodGetDescriptor, nil)
	if err != nil {
		return nil, fmt.Errorf("fetch descriptor from %s: %w", ico, err)
	}
	desc, err := DecodeDescriptor(descBytes)
	if err != nil {
		return nil, fmt.Errorf("fetch from %s: %w", ico, err)
	}

	sizeBytes, err := f.Client.Invoke(ctx, ico, MethodGetCodeSize, nil)
	if err != nil {
		return nil, fmt.Errorf("fetch code size from %s: %w", ico, err)
	}
	size, err := wire.NewDecoder(sizeBytes).Uvarint()
	if err != nil {
		return nil, fmt.Errorf("fetch from %s: decode size: %w", ico, err)
	}

	code := make([]byte, 0, size)
	for offset := uint64(0); offset < size; {
		// Chunked transfers can run long; check between chunks so a spent
		// deadline aborts the download rather than issuing doomed calls.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("read code from %s at %d: %w", ico, offset, err)
		}
		e := wire.NewEncoder(16)
		e.PutUvarint(offset)
		e.PutUvarint(ReadChunkSize)
		chunk, err := f.Client.Invoke(ctx, ico, MethodReadCode, e.Bytes())
		if err != nil {
			return nil, fmt.Errorf("read code from %s at %d: %w", ico, offset, err)
		}
		if len(chunk) == 0 {
			return nil, fmt.Errorf("read code from %s at %d: empty chunk before EOF", ico, offset)
		}
		code = append(code, chunk...)
		offset += uint64(len(chunk))
	}
	return &Component{Desc: *desc, Code: code}, nil
}

// Store is a local component cache (the host file-system cache the paper
// mentions: evolution costs ~200 µs per component "when the components are
// cached and available"). Safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	byICO map[naming.LOID]*Component
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byICO: make(map[naming.LOID]*Component)}
}

// Put caches comp under the ICO's LOID.
func (s *Store) Put(ico naming.LOID, comp *Component) {
	s.mu.Lock()
	s.byICO[ico] = comp
	s.mu.Unlock()
}

// Get returns the cached component, if present.
func (s *Store) Get(ico naming.LOID) (*Component, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.byICO[ico]
	return c, ok
}

// Drop removes a cached component.
func (s *Store) Drop(ico naming.LOID) {
	s.mu.Lock()
	delete(s.byICO, ico)
	s.mu.Unlock()
}

// Len reports the number of cached components.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byICO)
}

// CachingFetcher consults a Store before falling back to a backing fetcher,
// populating the store on miss.
type CachingFetcher struct {
	Store   *Store
	Backing Fetcher

	mu     sync.Mutex
	hits   uint64
	misses uint64
}

var _ Fetcher = (*CachingFetcher)(nil)

// Fetch implements Fetcher.
func (f *CachingFetcher) Fetch(ctx context.Context, ico naming.LOID) (*Component, error) {
	if c, ok := f.Store.Get(ico); ok {
		f.mu.Lock()
		f.hits++
		f.mu.Unlock()
		return c, nil
	}
	f.mu.Lock()
	f.misses++
	f.mu.Unlock()
	c, err := f.Backing.Fetch(ctx, ico)
	if err != nil {
		return nil, err
	}
	f.Store.Put(ico, c)
	return c, nil
}

// Stats reports cache hits and misses.
func (f *CachingFetcher) Stats() (hits, misses uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits, f.misses
}

// FetcherFunc adapts a function to the Fetcher interface. The adapted
// function ignores ctx; use this for in-memory fetchers where cancellation
// has nothing to interrupt.
type FetcherFunc func(ico naming.LOID) (*Component, error)

// Fetch implements Fetcher.
func (f FetcherFunc) Fetch(_ context.Context, ico naming.LOID) (*Component, error) {
	return f(ico)
}
