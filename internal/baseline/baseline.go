// Package baseline implements evolving a *normal* Legion object — the
// traditional mechanism the paper compares DCDOs against (§4 "Cost"):
// capture the object's state, download the new executable that represents
// the next version, create a new process, read the state back in, and get
// clients to learn the new physical address (stale-binding discovery).
//
// The pipeline performs the functional steps for real against the legion
// runtime, and simultaneously accounts modeled Centurion time for each
// phase on a virtual clock, so the multi-second costs the paper reports are
// reproduced deterministically.
package baseline

import (
	"errors"
	"fmt"
	"time"

	"godcdo/internal/legion"
	"godcdo/internal/naming"
	"godcdo/internal/simnet"
	"godcdo/internal/vclock"
)

// ErrNoObject is returned when the evolver is given a nil object.
var ErrNoObject = errors.New("baseline: nil object")

// CostBreakdown itemises one normal-object evolution, phase by phase,
// matching the decomposition in §4.
type CostBreakdown struct {
	StateCapture       time.Duration
	StateTransfer      time.Duration
	ExecutableDownload time.Duration
	ProcessCreation    time.Duration
	StateRestore       time.Duration
	ClientRebinding    time.Duration
}

// Total sums every phase.
func (c CostBreakdown) Total() time.Duration {
	return c.StateCapture + c.StateTransfer + c.ExecutableDownload +
		c.ProcessCreation + c.StateRestore + c.ClientRebinding
}

// Evolver evolves normal objects by full executable replacement.
type Evolver struct {
	// Model supplies network and process costs.
	Model simnet.CostModel
	// Discovery models how long clients take to abandon stale bindings.
	Discovery naming.DiscoverySchedule
	// StateRateBps is the serialisation rate for state capture/restore in
	// bytes per second. Zero means 50 MB/s.
	StateRateBps int64
	// Clock, when set to a virtual clock, is advanced by each phase's
	// modeled duration, so concurrent simulated activities observe the
	// evolution taking its modeled time.
	Clock *vclock.Virtual
}

// Input describes one evolution: the object, where it runs, where its next
// incarnation runs (may be the same node), and the class providing the next
// version's implementation.
type Input struct {
	LOID naming.LOID
	Src  *legion.Node
	Dst  *legion.Node
	Obj  *legion.NormalObject
	// NewClass supplies the next version's method table and executable
	// size.
	NewClass *legion.Class
	// ClientsHoldBindings indicates live clients cached the old address,
	// charging the stale-binding discovery cost.
	ClientsHoldBindings bool
	// ExecutableCached skips the download (the new binary is already on
	// the destination's file system).
	ExecutableCached bool
}

// Evolve runs the full pipeline and returns its cost breakdown. The object
// is unavailable to clients for the entire modeled duration — the paper's
// core argument for DCDOs.
func (e *Evolver) Evolve(in Input) (CostBreakdown, *legion.NormalObject, error) {
	var costs CostBreakdown
	if in.Obj == nil || in.NewClass == nil {
		return costs, nil, ErrNoObject
	}
	if in.Dst == nil {
		in.Dst = in.Src
	}
	stateRate := e.StateRateBps
	if stateRate == 0 {
		stateRate = 50 << 20
	}

	// Phase 1: capture the object's state.
	state, err := in.Obj.CaptureState()
	if err != nil {
		return costs, nil, fmt.Errorf("baseline: capture: %w", err)
	}
	stateBytes := int64(len(state))
	costs.StateCapture = serializationTime(stateBytes, stateRate)
	e.charge(costs.StateCapture)

	// Phase 2: the old process stops; its binding is now stale.
	if err := in.Src.EvictObject(in.LOID, false); err != nil {
		return costs, nil, fmt.Errorf("baseline: %w", err)
	}

	// Phase 3: transfer the state to the new machine, if moving.
	if in.Dst != in.Src {
		costs.StateTransfer = e.Model.TransferTime(stateBytes)
		e.charge(costs.StateTransfer)
	}

	// Phase 4: download the new executable.
	if !in.ExecutableCached {
		costs.ExecutableDownload = e.Model.TransferTime(in.NewClass.ExecutableSize())
		e.charge(costs.ExecutableDownload)
	}

	// Phase 5: create the new process and restore state into it.
	costs.ProcessCreation = e.Model.ProcessSpawn
	e.charge(costs.ProcessCreation)
	next := in.NewClass.NewIncarnation(in.LOID)
	if err := next.RestoreState(state); err != nil {
		return costs, nil, fmt.Errorf("baseline: restore: %w", err)
	}
	costs.StateRestore = serializationTime(stateBytes, stateRate)
	e.charge(costs.StateRestore)

	// Phase 6: activate and re-register; clients with cached bindings
	// spend the discovery window before they find the new address.
	if _, err := in.Dst.HostObject(in.LOID, next); err != nil {
		return costs, nil, fmt.Errorf("baseline: activate: %w", err)
	}
	if in.ClientsHoldBindings {
		costs.ClientRebinding = e.Discovery.TotalDiscoveryTime()
		e.charge(costs.ClientRebinding)
	}
	return costs, next, nil
}

func (e *Evolver) charge(d time.Duration) {
	if e.Clock != nil && d > 0 {
		e.Clock.Advance(d)
	}
}

func serializationTime(bytes, rateBps int64) time.Duration {
	if bytes <= 0 || rateBps <= 0 {
		return 0
	}
	return time.Duration(bytes * int64(time.Second) / rateBps)
}

// DCDOEvolutionCost models the cost of evolving a DCDO for comparison with
// the baseline (§4): configuration operations cost microseconds through the
// DFM; cached components bind at ~ComponentBind each; uncached components
// are download-dominated.
type DCDOEvolutionCost struct {
	// RetuneOps is the number of enable/disable/flag operations.
	RetuneOps int
	// CachedComponents is the number of incorporated components already in
	// the host's cache.
	CachedComponents int
	// UncachedBytes lists the code sizes of components that must be
	// downloaded.
	UncachedBytes []int64
}

// Model returns the modeled total cost of the DCDO evolution.
func (c DCDOEvolutionCost) Model(m simnet.CostModel) time.Duration {
	const perOp = 15 * time.Microsecond // one DFM configuration call
	total := time.Duration(c.RetuneOps) * perOp
	total += time.Duration(c.CachedComponents) * m.ComponentBind
	for _, size := range c.UncachedBytes {
		total += m.TransferTime(size) + m.ComponentBind
	}
	return total
}
