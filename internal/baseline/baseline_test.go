package baseline

import (
	"context"

	"errors"
	"testing"
	"time"

	"godcdo/internal/legion"
	"godcdo/internal/naming"
	"godcdo/internal/simnet"
	"godcdo/internal/transport"
	"godcdo/internal/vclock"
	"godcdo/internal/wire"
)

func counterMethods(bump uint64) map[string]legion.Method {
	read := func(s *legion.State) uint64 {
		raw, ok := s.Get("n")
		if !ok {
			return 0
		}
		v, _ := wire.NewDecoder(raw).Uvarint()
		return v
	}
	return map[string]legion.Method{
		"inc": func(s *legion.State, _ []byte) ([]byte, error) {
			e := wire.NewEncoder(8)
			e.PutUvarint(read(s) + bump)
			s.Set("n", e.Bytes())
			return nil, nil
		},
		"get": func(s *legion.State, _ []byte) ([]byte, error) {
			e := wire.NewEncoder(8)
			e.PutUvarint(read(s))
			return e.Bytes(), nil
		},
	}
}

type env struct {
	agent *naming.Agent
	src   *legion.Node
	dst   *legion.Node
}

func newEnv(t *testing.T) *env {
	t.Helper()
	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	src, err := legion.NewNode(legion.NodeConfig{Name: "src", Agent: agent, Inproc: net})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := legion.NewNode(legion.NodeConfig{Name: "dst", Agent: agent, Inproc: net})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = src.Close(); _ = dst.Close() })
	return &env{agent: agent, src: src, dst: dst}
}

func TestEvolveReplacesImplementationAndKeepsState(t *testing.T) {
	e := newEnv(t)
	alloc := naming.NewAllocator(1, 4)
	v1 := legion.NewClass("counter-v1", alloc, counterMethods(1), 550<<10)
	v2 := legion.NewClass("counter-v2", naming.NewAllocator(1, 4), counterMethods(10), 550<<10)

	obj, err := v1.CreateInstance(e.src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.dst.Client().Invoke(context.Background(), obj.LOID(), "inc", nil); err != nil {
		t.Fatal(err)
	}

	ev := &Evolver{Model: simnet.Centurion(), Discovery: naming.DefaultDiscoverySchedule()}
	costs, next, err := ev.Evolve(Input{
		LOID: obj.LOID(), Src: e.src, Dst: e.src, Obj: obj, NewClass: v2,
		ClientsHoldBindings: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if next == nil {
		t.Fatal("no new incarnation returned")
	}
	// State survived: counter still 1; new behaviour: inc now bumps by 10.
	if _, err := e.dst.Client().Invoke(context.Background(), obj.LOID(), "inc", nil); err != nil {
		t.Fatal(err)
	}
	out, err := e.dst.Client().Invoke(context.Background(), obj.LOID(), "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := wire.NewDecoder(out).Uvarint()
	if got != 11 {
		t.Fatalf("counter = %d, want 11 (1 preserved + 10 bump)", got)
	}

	// Cost shape: paper reports 550 KB download ≈ 4 s, discovery 25–35 s.
	if costs.ExecutableDownload < 3*time.Second || costs.ExecutableDownload > 5*time.Second {
		t.Fatalf("download = %v", costs.ExecutableDownload)
	}
	if costs.ClientRebinding < 25*time.Second || costs.ClientRebinding > 35*time.Second {
		t.Fatalf("rebinding = %v", costs.ClientRebinding)
	}
	if costs.Total() <= costs.ExecutableDownload {
		t.Fatal("total should exceed the download alone")
	}
}

func TestEvolveCrossHostChargesStateTransfer(t *testing.T) {
	e := newEnv(t)
	alloc := naming.NewAllocator(1, 4)
	v1 := legion.NewClass("v1", alloc, counterMethods(1), 1<<20)
	v2 := legion.NewClass("v2", naming.NewAllocator(1, 4), counterMethods(2), 1<<20)

	obj, err := v1.CreateInstance(e.src)
	if err != nil {
		t.Fatal(err)
	}
	// Give the object ~1 MB of state.
	big := make([]byte, 1<<20)
	obj.State().Set("blob", big)

	ev := &Evolver{Model: simnet.Centurion(), Discovery: naming.DefaultDiscoverySchedule()}
	costs, _, err := ev.Evolve(Input{
		LOID: obj.LOID(), Src: e.src, Dst: e.dst, Obj: obj, NewClass: v2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if costs.StateTransfer == 0 {
		t.Fatal("cross-host evolution should charge state transfer")
	}
	if costs.StateCapture == 0 || costs.StateRestore == 0 {
		t.Fatalf("capture/restore = %v/%v", costs.StateCapture, costs.StateRestore)
	}
	if !e.dst.Hosts(obj.LOID()) || e.src.Hosts(obj.LOID()) {
		t.Fatal("object did not move")
	}
	// No clients held bindings: no rebinding charge.
	if costs.ClientRebinding != 0 {
		t.Fatalf("rebinding = %v, want 0", costs.ClientRebinding)
	}
}

func TestEvolveCachedExecutableSkipsDownload(t *testing.T) {
	e := newEnv(t)
	v1 := legion.NewClass("v1", naming.NewAllocator(1, 4), counterMethods(1), 5<<20)
	v2 := legion.NewClass("v2", naming.NewAllocator(1, 4), counterMethods(2), 5<<20)
	obj, err := v1.CreateInstance(e.src)
	if err != nil {
		t.Fatal(err)
	}
	ev := &Evolver{Model: simnet.Centurion(), Discovery: naming.DefaultDiscoverySchedule()}
	costs, _, err := ev.Evolve(Input{
		LOID: obj.LOID(), Src: e.src, Obj: obj, NewClass: v2, ExecutableCached: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if costs.ExecutableDownload != 0 {
		t.Fatalf("download = %v, want 0 when cached", costs.ExecutableDownload)
	}
	if costs.ProcessCreation == 0 {
		t.Fatal("process creation should always be charged")
	}
}

func TestEvolveAdvancesVirtualClock(t *testing.T) {
	e := newEnv(t)
	v1 := legion.NewClass("v1", naming.NewAllocator(1, 4), counterMethods(1), 550<<10)
	v2 := legion.NewClass("v2", naming.NewAllocator(1, 4), counterMethods(2), 550<<10)
	obj, err := v1.CreateInstance(e.src)
	if err != nil {
		t.Fatal(err)
	}
	clk := vclock.NewVirtual(time.Unix(0, 0))
	ev := &Evolver{Model: simnet.Centurion(), Discovery: naming.DefaultDiscoverySchedule(), Clock: clk}
	costs, _, err := ev.Evolve(Input{
		LOID: obj.LOID(), Src: e.src, Obj: obj, NewClass: v2, ClientsHoldBindings: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now().Sub(time.Unix(0, 0))
	if elapsed != costs.Total() {
		t.Fatalf("clock advanced %v, costs total %v", elapsed, costs.Total())
	}
}

func TestEvolveNilObject(t *testing.T) {
	ev := &Evolver{Model: simnet.Centurion()}
	if _, _, err := ev.Evolve(Input{}); !errors.Is(err, ErrNoObject) {
		t.Fatalf("err = %v, want ErrNoObject", err)
	}
}

func TestDCDOEvolutionCostModel(t *testing.T) {
	m := simnet.Centurion()

	// Retune-only evolution: well under half a second (paper: "less than
	// half a second, except for the case when new components need to be
	// incorporated").
	retune := DCDOEvolutionCost{RetuneOps: 100}
	if got := retune.Model(m); got >= 500*time.Millisecond {
		t.Fatalf("retune-only = %v, want < 0.5s", got)
	}

	// Cached components: ~200 µs per component.
	cached := DCDOEvolutionCost{CachedComponents: 10}
	got := cached.Model(m)
	if got < 10*150*time.Microsecond || got > 10*300*time.Microsecond {
		t.Fatalf("cached incorporation = %v, want ≈2ms for 10 components", got)
	}

	// Uncached: dominated by the download.
	uncached := DCDOEvolutionCost{UncachedBytes: []int64{550 << 10}}
	if got := uncached.Model(m); got < 3*time.Second {
		t.Fatalf("uncached incorporation = %v, want download-dominated", got)
	}

	// And the full baseline is dramatically worse than retune-only DCDO
	// evolution: the paper's headline comparison.
	base := CostBreakdown{
		ExecutableDownload: m.TransferTime(550 << 10),
		ProcessCreation:    m.ProcessSpawn,
		ClientRebinding:    naming.DefaultDiscoverySchedule().TotalDiscoveryTime(),
	}
	if base.Total() < 100*retune.Model(m) {
		t.Fatalf("baseline (%v) should dwarf DCDO retune (%v)", base.Total(), retune.Model(m))
	}
}
