package replica

import (
	"context"
	"fmt"
	"sync"
	"time"

	"godcdo/internal/naming"
	"godcdo/internal/rpc"
	"godcdo/internal/transport"
)

// SetRegistrar publishes replica sets to the naming plane. The in-memory
// naming.Agent satisfies it directly; remote deployments adapt
// rpc.RemoteAgent.RegisterSet.
type SetRegistrar interface {
	RegisterSet(loid naming.LOID, set naming.ReplicaSet) (naming.ReplicaSet, bool)
}

// SetSource reads the authoritative current replica set for a LOID.
// naming.Agent satisfies it; a Group with a source always operates on the
// published set rather than a view cached at construction, which is what
// lets a standby manager attach its group view before a failover and still
// act correctly after one.
type SetSource interface {
	Set(loid naming.LOID) naming.ReplicaSet
}

// Group is the control-plane view of one replica group: it tracks the set,
// owns the epoch counter, and performs promotion and failover. Exactly one
// party drives a Group at a time (the manager, or a chaos harness standing
// in for it); the replicas themselves enforce safety via epoch fencing, so
// a stale Group's actions are refused rather than corrupting the newer era.
type Group struct {
	// LOID is the group's logical object identity.
	LOID naming.LOID
	// Dialer reaches member endpoints.
	Dialer transport.Dialer
	// Registrar publishes set changes to the naming plane.
	Registrar SetRegistrar
	// Source, when set, is the authoritative read side for the current set;
	// Set() prefers it over the cached view. Wired automatically when the
	// registrar also reads (naming.Agent does both).
	Source SetSource
	// CallTimeout bounds each control call to a member. Zero means 2 s.
	CallTimeout time.Duration

	mu    sync.Mutex
	set   naming.ReplicaSet
	epoch uint64
}

// NewGroup returns a group view and publishes the initial set (primary
// first, then backups in failover order) at epoch 1. The caller constructs
// the member Replicas with the matching role/epoch.
func NewGroup(loid naming.LOID, dialer transport.Dialer, registrar SetRegistrar, primary string, backups []string) *Group {
	g := &Group{LOID: loid, Dialer: dialer, Registrar: registrar, epoch: 1}
	if src, ok := registrar.(SetSource); ok {
		g.Source = src
	}
	set := naming.ReplicaSet{Primary: primary, Backups: append([]string(nil), backups...)}
	if registrar != nil {
		set, _ = registrar.RegisterSet(loid, set)
	}
	g.set = set
	return g
}

// Attach returns a group view adopting an existing set and epoch without
// publishing anything — the set is already registered. A standby manager
// taking over an established group uses this to avoid bumping the naming
// generation for a membership that has not changed.
func Attach(loid naming.LOID, dialer transport.Dialer, registrar SetRegistrar, set naming.ReplicaSet, epoch uint64) *Group {
	if epoch == 0 {
		epoch = 1
	}
	g := &Group{LOID: loid, Dialer: dialer, Registrar: registrar, set: set.Clone(), epoch: epoch}
	if src, ok := registrar.(SetSource); ok {
		g.Source = src
	}
	return g
}

// Set returns the group's current view of the replica set: the published
// set when a Source is wired, the cached view otherwise.
func (g *Group) Set() naming.ReplicaSet {
	if g.Source != nil {
		if s := g.Source.Set(g.LOID); s.Replicated() {
			g.mu.Lock()
			g.set = s
			g.mu.Unlock()
			return s
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.set
}

// Epoch returns the group's current epoch.
func (g *Group) Epoch() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// Call invokes method on the group's LOID at a specific member endpoint.
func (g *Group) Call(ctx context.Context, endpoint, method string, args []byte) ([]byte, error) {
	return rpc.DirectCall(ctx, g.Dialer, endpoint, g.LOID, method, args, g.timeout())
}

// Status probes one member's replication status.
func (g *Group) Status(ctx context.Context, endpoint string) (Status, error) {
	out, err := g.Call(ctx, endpoint, MethodStatus, nil)
	if err != nil {
		return Status{}, err
	}
	return DecodeStatus(out)
}

// Promote makes endpoint the group's primary at a bumped epoch: the member
// is promoted with the remaining members as its backup list, the old
// primary is demoted (best-effort — it may be the dead node failover is
// reacting to), and the new set is published with the next generation.
// Keep reports whether the old primary stays in the set as a backup (true
// during planned hand-offs, false when failing away from a dead node).
func (g *Group) Promote(ctx context.Context, endpoint string, keepOldPrimary bool) (naming.ReplicaSet, error) {
	oldSet := g.Set()
	g.mu.Lock()
	newEpoch := g.epoch + 1
	g.mu.Unlock()

	if endpoint != oldSet.Primary && !oldSet.Contains(endpoint) {
		return naming.ReplicaSet{}, fmt.Errorf("replica group %s: %s is not a member", g.LOID, endpoint)
	}

	// A group view attached before someone else's era change (a standby
	// manager's, typically) holds a stale epoch; the target member knows
	// the real one, so derive the new era from whichever is later.
	if st, err := g.Status(ctx, endpoint); err == nil && st.Epoch >= newEpoch {
		newEpoch = st.Epoch + 1
	}

	var backups []string
	if keepOldPrimary && oldSet.Primary != endpoint {
		backups = append(backups, oldSet.Primary)
	}
	for _, b := range oldSet.Backups {
		if b != endpoint {
			backups = append(backups, b)
		}
	}

	if _, err := g.Call(ctx, endpoint, MethodPromote, EncodePromoteArgs(newEpoch, backups)); err != nil {
		return naming.ReplicaSet{}, fmt.Errorf("promote %s for %s: %w", endpoint, g.LOID, err)
	}
	if oldSet.Primary != endpoint {
		// Fence the old primary into a backup of the new era. If it is dead
		// or partitioned this fails harmlessly: its first shipment into the
		// new era will be refused with ErrFenced and it demotes itself.
		_, _ = g.Call(ctx, oldSet.Primary, MethodDemote, EncodeDemoteArgs(newEpoch))
	}

	newSet := naming.ReplicaSet{Primary: endpoint, Backups: backups}
	if g.Registrar != nil {
		if eff, ok := g.Registrar.RegisterSet(g.LOID, newSet); ok {
			newSet = eff
		}
	}
	g.mu.Lock()
	g.epoch = newEpoch
	g.set = newSet
	g.mu.Unlock()
	return newSet, nil
}

// Expand grows the group onto endpoint as a fresh backup: the node's
// replica-host service constructs and hosts a member (skipped when endpoint
// already answers status for the LOID — a pre-built member rejoining), the
// current primary is re-promoted in place at a bumped epoch with the
// candidate appended to its backup list, the primary seeds the candidate
// with a full-state snapshot (MethodSyncTo), and the grown set is published.
// Expanding onto an existing member is a no-op.
func (g *Group) Expand(ctx context.Context, endpoint string) (naming.ReplicaSet, error) {
	oldSet := g.Set()
	if !oldSet.Replicated() {
		return naming.ReplicaSet{}, fmt.Errorf("replica group %s: no primary to expand from", g.LOID)
	}
	if oldSet.Contains(endpoint) {
		return oldSet, nil
	}
	g.mu.Lock()
	newEpoch := g.epoch + 1
	g.mu.Unlock()
	st, err := g.Status(ctx, oldSet.Primary)
	if err != nil {
		return naming.ReplicaSet{}, fmt.Errorf("expand %s for %s: primary %s unreachable: %w",
			endpoint, g.LOID, oldSet.Primary, err)
	}
	if st.Epoch >= newEpoch {
		newEpoch = st.Epoch + 1
	}

	if _, err := g.Status(ctx, endpoint); err != nil {
		// Not yet hosting a member: ask the node's replica-host service to
		// build one as a backup of the new era.
		if _, err := rpc.DirectCall(ctx, g.Dialer, endpoint, rpc.ReplicaHostLOID,
			MethodHostAdd, EncodeHostAddArgs(g.LOID, newEpoch), g.timeout()); err != nil {
			return naming.ReplicaSet{}, fmt.Errorf("expand %s for %s: host backup: %w", endpoint, g.LOID, err)
		}
	}

	backups := append(append([]string(nil), oldSet.Backups...), endpoint)
	// Re-promoting the sitting primary with a higher epoch is an in-place
	// membership change: the promote guard admits it, and the bumped epoch
	// fences any shipment still in flight from the old era.
	if _, err := g.Call(ctx, oldSet.Primary, MethodPromote, EncodePromoteArgs(newEpoch, backups)); err != nil {
		return naming.ReplicaSet{}, fmt.Errorf("expand %s for %s: reconfigure primary: %w", endpoint, g.LOID, err)
	}
	if _, err := g.Call(ctx, oldSet.Primary, MethodSyncTo, EncodeSyncToArgs(endpoint)); err != nil {
		return naming.ReplicaSet{}, fmt.Errorf("expand %s for %s: seed backup: %w", endpoint, g.LOID, err)
	}

	newSet := naming.ReplicaSet{Primary: oldSet.Primary, Backups: backups}
	if g.Registrar != nil {
		if eff, ok := g.Registrar.RegisterSet(g.LOID, newSet); ok {
			newSet = eff
		}
	}
	g.mu.Lock()
	g.epoch = newEpoch
	g.set = newSet
	g.mu.Unlock()
	return newSet, nil
}

// Shrink removes a backup from the group: the primary is re-promoted in
// place at a bumped epoch with the member dropped from its backup list, the
// removed member is demoted best-effort (it may be the dead node the
// reconciler is reacting to), and the trimmed set is published. The primary
// cannot be shrunk away — fail over first. Shrinking a non-member is a
// no-op.
func (g *Group) Shrink(ctx context.Context, endpoint string) (naming.ReplicaSet, error) {
	oldSet := g.Set()
	if endpoint == oldSet.Primary {
		return naming.ReplicaSet{}, fmt.Errorf("replica group %s: cannot shrink away the primary", g.LOID)
	}
	if !oldSet.Contains(endpoint) {
		return oldSet, nil
	}
	g.mu.Lock()
	newEpoch := g.epoch + 1
	g.mu.Unlock()
	st, err := g.Status(ctx, oldSet.Primary)
	if err != nil {
		return naming.ReplicaSet{}, fmt.Errorf("shrink %s for %s: primary %s unreachable: %w",
			endpoint, g.LOID, oldSet.Primary, err)
	}
	if st.Epoch >= newEpoch {
		newEpoch = st.Epoch + 1
	}

	backups := make([]string, 0, len(oldSet.Backups))
	for _, b := range oldSet.Backups {
		if b != endpoint {
			backups = append(backups, b)
		}
	}
	if _, err := g.Call(ctx, oldSet.Primary, MethodPromote, EncodePromoteArgs(newEpoch, backups)); err != nil {
		return naming.ReplicaSet{}, fmt.Errorf("shrink %s for %s: reconfigure primary: %w", endpoint, g.LOID, err)
	}
	// Fence the removed member into the new era as a lone backup; if it is
	// dead this fails harmlessly.
	_, _ = g.Call(ctx, endpoint, MethodDemote, EncodeDemoteArgs(newEpoch))

	newSet := naming.ReplicaSet{Primary: oldSet.Primary, Backups: backups}
	if g.Registrar != nil {
		if eff, ok := g.Registrar.RegisterSet(g.LOID, newSet); ok {
			newSet = eff
		}
	}
	g.mu.Lock()
	g.epoch = newEpoch
	g.set = newSet
	g.mu.Unlock()
	return newSet, nil
}

// Failover reacts to a dead primary: it probes the backups in failover
// order, promotes the first one that answers, and publishes a set that no
// longer contains the old primary. It returns the new primary's endpoint.
func (g *Group) Failover(ctx context.Context) (string, error) {
	set := g.Set()
	for _, candidate := range set.Backups {
		if _, err := g.Status(ctx, candidate); err != nil {
			continue
		}
		if _, err := g.Promote(ctx, candidate, false); err != nil {
			return "", err
		}
		return candidate, nil
	}
	return "", fmt.Errorf("replica group %s: no reachable backup to fail over to", g.LOID)
}

func (g *Group) timeout() time.Duration {
	if g.CallTimeout > 0 {
		return g.CallTimeout
	}
	return 2 * time.Second
}
