package replica

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"godcdo/internal/core"
	"godcdo/internal/naming"
	"godcdo/internal/objstate"
	"godcdo/internal/rpc"
	"godcdo/internal/transport"
	"godcdo/internal/vclock"
	"godcdo/internal/wire"
)

// fakeInner is a minimal Inner: a state container plus "set"/"get" dynamic
// methods and the dcdo.version control probe. The E13 harness exercises the
// real core.DCDO path; these tests isolate the replication machinery.
type fakeInner struct {
	st   *objstate.State
	segs []uint64
}

func newFakeInner(segs ...uint64) *fakeInner {
	return &fakeInner{st: objstate.New(), segs: segs}
}

func (f *fakeInner) State() *objstate.State { return f.st }

func (f *fakeInner) InvokeMethodCtx(_ context.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case core.MethodVersion:
		e := wire.NewEncoder(16)
		e.PutUintSlice(f.segs)
		return e.Bytes(), nil
	case "set":
		dec := wire.NewDecoder(args)
		k, _ := dec.String()
		v, _ := dec.Bytes()
		f.st.Set(k, v)
		return nil, nil
	case "get":
		k, _ := wire.NewDecoder(args).String()
		v, _ := f.st.Get(k)
		e := wire.NewEncoder(len(v) + 4)
		e.PutBytes(v)
		return e.Bytes(), nil
	case "noop":
		return []byte("ok"), nil
	default:
		return nil, fmt.Errorf("%w: %q", rpc.ErrNoSuchFunction, method)
	}
}

func setArgs(k, v string) []byte {
	e := wire.NewEncoder(len(k) + len(v) + 8)
	e.PutString(k)
	e.PutBytes([]byte(v))
	return e.Bytes()
}

func getValue(t *testing.T, inner *fakeInner, k string) string {
	t.Helper()
	v, ok := inner.st.Get(k)
	if !ok {
		return ""
	}
	return string(v)
}

// replicaEnv hosts a 3-member group (p, b1, b2) for one LOID on an inproc
// network, each member on its own endpoint.
type replicaEnv struct {
	loid    naming.LOID
	net     *transport.InprocNetwork
	agent   *naming.Agent
	inners  map[string]*fakeInner
	members map[string]*Replica
	servers map[string]*transport.InprocServer
}

func newReplicaEnv(t *testing.T) *replicaEnv {
	t.Helper()
	env := &replicaEnv{
		loid:    naming.LOID{Domain: 3, Class: 1, Instance: 1},
		net:     transport.NewInprocNetwork(),
		agent:   naming.NewAgent(vclock.Real{}),
		inners:  map[string]*fakeInner{},
		members: map[string]*Replica{},
		servers: map[string]*transport.InprocServer{},
	}
	endpoints := map[string]string{"p": "inproc:p", "b1": "inproc:b1", "b2": "inproc:b2"}
	for name := range endpoints {
		inner := newFakeInner(1)
		role := RoleBackup
		var backups []string
		if name == "p" {
			role = RolePrimary
			backups = []string{"inproc:b1", "inproc:b2"}
		}
		rep := New(env.loid, inner, env.net.Dialer(), role, 1, backups)
		rep.ShipTimeout = 200 * time.Millisecond
		disp := rpc.NewDispatcher()
		disp.Host(env.loid, rep)
		srv, err := env.net.Listen(name, disp)
		if err != nil {
			t.Fatal(err)
		}
		env.inners[name] = inner
		env.members[name] = rep
		env.servers[name] = srv
	}
	env.agent.RegisterSet(env.loid, naming.ReplicaSet{
		Primary: "inproc:p",
		Backups: []string{"inproc:b1", "inproc:b2"},
	})
	return env
}

func (e *replicaEnv) call(endpoint, method string, args []byte) ([]byte, error) {
	return rpc.DirectCall(context.Background(), e.net.Dialer(), endpoint, e.loid, method, args, time.Second)
}

func TestPrimaryExecutesAndShips(t *testing.T) {
	env := newReplicaEnv(t)

	if _, err := env.call("inproc:p", "set", setArgs("k", "v1")); err != nil {
		t.Fatalf("set on primary: %v", err)
	}
	for _, b := range []string{"b1", "b2"} {
		if got := getValue(t, env.inners[b], "k"); got != "v1" {
			t.Fatalf("backup %s state = %q, want v1", b, got)
		}
	}

	// A read that does not mutate state ships nothing: the sequence number
	// is still 1 on every member.
	if _, err := env.call("inproc:p", "noop", nil); err != nil {
		t.Fatalf("noop: %v", err)
	}
	for name, rep := range env.members {
		rep.mu.Lock()
		seq := rep.seq
		rep.mu.Unlock()
		if seq != 1 {
			t.Fatalf("%s seq = %d after read-only call, want 1", name, seq)
		}
	}

	// A second mutation ships again.
	if _, err := env.call("inproc:p", "set", setArgs("k", "v2")); err != nil {
		t.Fatalf("second set: %v", err)
	}
	if got := getValue(t, env.inners["b2"], "k"); got != "v2" {
		t.Fatalf("backup state after second set = %q, want v2", got)
	}
}

func TestBackupRefusesDynamicServesControl(t *testing.T) {
	env := newReplicaEnv(t)

	_, err := env.call("inproc:b1", "set", setArgs("k", "v"))
	if !errors.Is(err, rpc.ErrNotPrimary) {
		t.Fatalf("dynamic call on backup err = %v, want ErrNotPrimary", err)
	}
	var re *rpc.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeNotPrimary {
		t.Fatalf("remote error = %+v, want CodeNotPrimary", re)
	}

	// Control plane passes through on any role.
	out, err := env.call("inproc:b1", core.MethodVersion, nil)
	if err != nil {
		t.Fatalf("version probe on backup: %v", err)
	}
	segs, err := wire.NewDecoder(out).UintSlice()
	if err != nil || len(segs) != 1 || segs[0] != 1 {
		t.Fatalf("version = %v (%v)", segs, err)
	}
}

func TestStaleShipmentAndDuplicateDropped(t *testing.T) {
	env := newReplicaEnv(t)
	if _, err := env.call("inproc:p", "set", setArgs("k", "v1")); err != nil {
		t.Fatal(err)
	}

	// Replay the same sequence with different bytes: deduplicated, state
	// untouched.
	snap := env.inners["p"].st.Encode()
	e := wire.NewEncoder(len(snap) + 16)
	e.PutUvarint(1) // epoch
	e.PutUvarint(1) // seq already applied
	e.PutBytes(snap)
	if _, err := env.call("inproc:b1", MethodApply, e.Bytes()); err != nil {
		t.Fatalf("duplicate shipment: %v", err)
	}

	// A shipment from a dead era is fenced.
	env.members["b1"].mu.Lock()
	env.members["b1"].epoch = 5
	env.members["b1"].mu.Unlock()
	_, err := env.call("inproc:b1", MethodApply, e.Bytes())
	if !errors.Is(err, rpc.ErrFenced) {
		t.Fatalf("stale-epoch shipment err = %v, want ErrFenced", err)
	}
}

func TestDeposedPrimarySelfDemotes(t *testing.T) {
	env := newReplicaEnv(t)

	// A new era starts without the old primary noticing: b1 is promoted at
	// epoch 2 and b2 learns the new epoch.
	if _, err := env.call("inproc:b1", MethodPromote, EncodePromoteArgs(2, []string{"inproc:b2"})); err != nil {
		t.Fatalf("promote b1: %v", err)
	}
	if _, err := env.call("inproc:b2", MethodDemote, EncodeDemoteArgs(2)); err != nil {
		t.Fatalf("demote b2 into era 2: %v", err)
	}

	// The old primary executes a mutation; its shipment is fenced, so the
	// caller sees ErrNotPrimary (the state never committed to the group) and
	// the replica demotes itself.
	_, err := env.call("inproc:p", "set", setArgs("k", "stale"))
	if !errors.Is(err, rpc.ErrNotPrimary) {
		t.Fatalf("deposed primary err = %v, want ErrNotPrimary", err)
	}
	if role := env.members["p"].CurrentRole(); role != RoleBackup {
		t.Fatalf("deposed primary role = %s, want backup", role)
	}
	// The stale value never reached the new era's members.
	if got := getValue(t, env.inners["b2"], "k"); got != "" {
		t.Fatalf("stale write leaked to new era: %q", got)
	}
}

func TestGroupPromoteHandoff(t *testing.T) {
	env := newReplicaEnv(t)
	g := Attach(env.loid, env.net.Dialer(), env.agent, env.agent.Set(env.loid), 1)

	set, err := g.Promote(context.Background(), "inproc:b1", true)
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if set.Primary != "inproc:b1" || len(set.Backups) != 2 || set.Backups[0] != "inproc:p" {
		t.Fatalf("new set = %+v", set)
	}
	if set.Generation != 2 {
		t.Fatalf("generation = %d, want 2", set.Generation)
	}
	if g.Epoch() != 2 {
		t.Fatalf("group epoch = %d, want 2", g.Epoch())
	}
	if env.members["b1"].CurrentRole() != RolePrimary || env.members["p"].CurrentRole() != RoleBackup {
		t.Fatal("roles did not flip on hand-off")
	}

	// The new primary serves and ships; the old one refuses.
	if _, err := env.call("inproc:b1", "set", setArgs("k", "after")); err != nil {
		t.Fatalf("set on new primary: %v", err)
	}
	if got := getValue(t, env.inners["p"], "k"); got != "after" {
		t.Fatalf("old primary (now backup) state = %q, want after", got)
	}
	if _, err := env.call("inproc:p", "set", setArgs("k", "x")); !errors.Is(err, rpc.ErrNotPrimary) {
		t.Fatalf("old primary err = %v, want ErrNotPrimary", err)
	}
}

func TestGroupFailoverSkipsDeadPrimary(t *testing.T) {
	env := newReplicaEnv(t)
	g := Attach(env.loid, env.net.Dialer(), env.agent, env.agent.Set(env.loid), 1)

	if err := env.servers["p"].Close(); err != nil {
		t.Fatal(err)
	}
	newPrimary, err := g.Failover(context.Background())
	if err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if newPrimary != "inproc:b1" {
		t.Fatalf("failover chose %s, want inproc:b1", newPrimary)
	}
	set := g.Set()
	if set.Primary != "inproc:b1" || set.Contains("inproc:p") {
		t.Fatalf("post-failover set = %+v (dead primary must be dropped)", set)
	}
	// The published set reflects the failover.
	published := env.agent.Set(env.loid)
	if published.Primary != "inproc:b1" || published.Generation != 2 {
		t.Fatalf("published set = %+v", published)
	}
}

// TestClientFailsOverTransparently drives the full client path: a cached
// multi-endpoint binding, primary death, failover, and an idempotent retry
// that lands on the new primary without surfacing an error.
func TestClientFailsOverTransparently(t *testing.T) {
	env := newReplicaEnv(t)
	cache := naming.NewCache(env.agent, vclock.Real{}, 0)
	client := rpc.NewClient(cache, env.net.Dialer())
	client.Retry.BaseBackoff = time.Millisecond
	client.Retry.MaxBackoff = 4 * time.Millisecond

	ctx := context.Background()
	if _, err := client.Invoke(ctx, env.loid, "set", setArgs("k", "v1")); err != nil {
		t.Fatalf("warm-up invoke: %v", err)
	}

	// Kill the primary and fail the group over (the manager or a failover
	// controller would do this; the client only needs the agent updated —
	// or, before it is, the cached backup list).
	if err := env.servers["p"].Close(); err != nil {
		t.Fatal(err)
	}
	g := Attach(env.loid, env.net.Dialer(), env.agent, env.agent.Set(env.loid), 1)
	if _, err := g.Failover(ctx); err != nil {
		t.Fatalf("Failover: %v", err)
	}

	out, err := client.Invoke(ctx, env.loid, "get", wireString("k"))
	if err != nil {
		t.Fatalf("invoke after failover: %v", err)
	}
	v, _ := wire.NewDecoder(out).Bytes()
	if string(v) != "v1" {
		t.Fatalf("value after failover = %q, want v1 (replicated before the crash)", v)
	}
	if st := client.Stats(); st.Errors != 0 {
		t.Fatalf("client surfaced errors during failover: %+v", st)
	}
}

func wireString(s string) []byte {
	e := wire.NewEncoder(len(s) + 4)
	e.PutString(s)
	return e.Bytes()
}

// addHostNode starts a fourth node ("n") carrying a HostService but no
// member of the group — the reconciler's raw material for Expand. It
// returns the node's endpoint and a function to fetch the hosted replica's
// inner once one exists.
func (e *replicaEnv) addHostNode(t *testing.T) (string, *HostService) {
	t.Helper()
	disp := rpc.NewDispatcher()
	hs := &HostService{
		Factory: func(naming.LOID) (Inner, error) { return newFakeInner(1), nil },
		Dialer:  e.net.Dialer(),
		Host:    disp.Host,
	}
	disp.Host(rpc.ReplicaHostLOID, hs)
	srv, err := e.net.Listen("n", disp)
	if err != nil {
		t.Fatal(err)
	}
	e.servers["n"] = srv
	return "inproc:n", hs
}

func TestGroupExpandHostsSeedsPublishes(t *testing.T) {
	env := newReplicaEnv(t)
	ep, hs := env.addHostNode(t)
	if _, err := env.call("inproc:p", "set", setArgs("k", "pre")); err != nil {
		t.Fatal(err)
	}

	g := Attach(env.loid, env.net.Dialer(), env.agent, env.agent.Set(env.loid), 1)
	set, err := g.Expand(context.Background(), ep)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if set.Primary != "inproc:p" || len(set.Backups) != 3 || set.Backups[2] != ep {
		t.Fatalf("expanded set = %+v", set)
	}
	if set.Generation != 2 {
		t.Fatalf("expanded generation = %d, want 2", set.Generation)
	}
	if g.Epoch() != 2 {
		t.Fatalf("group epoch = %d, want 2", g.Epoch())
	}
	published := env.agent.Set(env.loid)
	if !published.Contains(ep) || published.Generation != 2 {
		t.Fatalf("published set = %+v", published)
	}

	// The new member was seeded with the pre-expansion state…
	rep, ok := hs.Hosted(env.loid)
	if !ok {
		t.Fatal("host service did not build a member")
	}
	if v, _ := rep.inner.State().Get("k"); string(v) != "pre" {
		t.Fatalf("seeded state = %q, want pre", v)
	}
	// …and receives subsequent shipments like any backup.
	if _, err := env.call("inproc:p", "set", setArgs("k", "post")); err != nil {
		t.Fatal(err)
	}
	if v, _ := rep.inner.State().Get("k"); string(v) != "post" {
		t.Fatalf("post-expansion shipment = %q, want post", v)
	}

	// Expanding onto an existing member is a no-op.
	again, err := g.Expand(context.Background(), ep)
	if err != nil {
		t.Fatalf("idempotent Expand: %v", err)
	}
	if again.Generation != set.Generation || len(again.Backups) != 3 {
		t.Fatalf("idempotent Expand changed the set: %+v", again)
	}
}

func TestGroupExpandRequiresReachablePrimary(t *testing.T) {
	env := newReplicaEnv(t)
	ep, _ := env.addHostNode(t)
	g := Attach(env.loid, env.net.Dialer(), env.agent, env.agent.Set(env.loid), 1)
	if err := env.servers["p"].Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Expand(context.Background(), ep); err == nil {
		t.Fatal("Expand succeeded with a dead primary")
	}
}

func TestGroupShrinkRemovesBackup(t *testing.T) {
	env := newReplicaEnv(t)
	g := Attach(env.loid, env.net.Dialer(), env.agent, env.agent.Set(env.loid), 1)

	set, err := g.Shrink(context.Background(), "inproc:b2")
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if set.Primary != "inproc:p" || len(set.Backups) != 1 || set.Backups[0] != "inproc:b1" {
		t.Fatalf("shrunk set = %+v", set)
	}
	if published := env.agent.Set(env.loid); published.Contains("inproc:b2") {
		t.Fatalf("published set still contains the removed member: %+v", published)
	}

	// Writes after the shrink reach the survivor, not the removed member.
	if _, err := env.call("inproc:p", "set", setArgs("k", "v")); err != nil {
		t.Fatal(err)
	}
	if got := getValue(t, env.inners["b1"], "k"); got != "v" {
		t.Fatalf("survivor state = %q, want v", got)
	}
	if got := getValue(t, env.inners["b2"], "k"); got != "" {
		t.Fatalf("removed member still receives shipments: %q", got)
	}

	// The primary cannot be shrunk away; a non-member shrink is a no-op.
	if _, err := g.Shrink(context.Background(), "inproc:p"); err == nil {
		t.Fatal("Shrink removed the primary")
	}
	if again, err := g.Shrink(context.Background(), "inproc:zzz"); err != nil || len(again.Backups) != 1 {
		t.Fatalf("non-member Shrink = %+v, %v", again, err)
	}
}

func TestHostServiceIdempotentAdd(t *testing.T) {
	env := newReplicaEnv(t)
	ep, hs := env.addHostNode(t)
	ctx := context.Background()
	args := EncodeHostAddArgs(env.loid, 5)
	for i := 0; i < 2; i++ {
		if _, err := rpc.DirectCall(ctx, env.net.Dialer(), ep, rpc.ReplicaHostLOID,
			MethodHostAdd, args, time.Second); err != nil {
			t.Fatalf("add #%d: %v", i+1, err)
		}
	}
	rep, ok := hs.Hosted(env.loid)
	if !ok {
		t.Fatal("nothing hosted after add")
	}
	if rep.CurrentRole() != RoleBackup || rep.Epoch() != 5 {
		t.Fatalf("hosted member role=%v epoch=%d, want backup at epoch 5", rep.CurrentRole(), rep.Epoch())
	}

	// A node without a factory refuses politely.
	bare := &HostService{}
	if _, err := bare.InvokeMethod(MethodHostAdd, args); !errors.Is(err, rpc.ErrNoSuchFunction) {
		t.Fatalf("factory-less add err = %v, want ErrNoSuchFunction", err)
	}
}

func TestReplReadServedOnAnyRole(t *testing.T) {
	env := newReplicaEnv(t)
	if _, err := env.call("inproc:p", "set", setArgs("k", "v1")); err != nil {
		t.Fatal(err)
	}

	// A wrapped read is served by primary and backups alike.
	for _, ep := range []string{"inproc:p", "inproc:b1", "inproc:b2"} {
		out, err := env.call(ep, rpc.MethodReplRead, rpc.EncodeReadArgs("get", wireString("k")))
		if err != nil {
			t.Fatalf("repl.read on %s: %v", ep, err)
		}
		v, _ := wire.NewDecoder(out).Bytes()
		if string(v) != "v1" {
			t.Fatalf("repl.read on %s = %q, want v1", ep, v)
		}
	}

	// A wrapped mutation trips the generation guard — loudly, not silently.
	if _, err := env.call("inproc:b1", rpc.MethodReplRead, rpc.EncodeReadArgs("set", setArgs("k", "x"))); err == nil {
		t.Fatal("repl.read let a mutation through on a backup")
	}

	// Replication-plane and control methods may not ride the wrapper.
	for _, inner := range []string{MethodApply, "dcdo.version"} {
		if _, err := env.call("inproc:b1", rpc.MethodReplRead, rpc.EncodeReadArgs(inner, nil)); !errors.Is(err, rpc.ErrBadRequest) {
			t.Fatalf("repl.read(%s) err = %v, want ErrBadRequest", inner, err)
		}
	}
}

func TestSyncToPrimaryOnly(t *testing.T) {
	env := newReplicaEnv(t)
	if _, err := env.call("inproc:b1", MethodSyncTo, EncodeSyncToArgs("inproc:b2")); !errors.Is(err, rpc.ErrNotPrimary) {
		t.Fatalf("syncTo on a backup err = %v, want ErrNotPrimary", err)
	}
}
