// Package replica puts N instances behind one LOID as a primary/backup
// group. The primary executes dynamic functions and synchronously ships the
// resulting object state (objstate encoding) to every backup; backups refuse
// dynamic traffic with rpc.ErrNotPrimary but serve the dcdo.* control plane,
// so version probes and descriptor evolution reach every member directly.
//
// Group membership and leadership are versioned by an epoch. Every shipped
// snapshot carries the shipper's epoch; a member holding a higher epoch
// rejects it with rpc.ErrFenced, which makes a deposed primary demote itself
// the moment it tries to act for the group — the classic fencing token, on
// the object plane rather than the lock plane.
package replica

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"godcdo/internal/core"
	"godcdo/internal/naming"
	"godcdo/internal/objstate"
	"godcdo/internal/rpc"
	"godcdo/internal/transport"
	"godcdo/internal/wire"
)

// Role is a replica's position in its group.
type Role int

const (
	// RoleBackup replicas apply shipped state and refuse dynamic calls.
	RoleBackup Role = iota
	// RolePrimary replicas execute dynamic calls and ship state to backups.
	RolePrimary
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "backup"
}

// Replication methods, hosted on the replica's own LOID beside the object's
// dynamic and control methods. The "repl." prefix is reserved the same way
// core.ControlPrefix is.
const (
	// ReplPrefix marks replication-plane methods.
	ReplPrefix = "repl."
	// MethodApply ships a state snapshot: epoch, sequence, objstate bytes.
	MethodApply = ReplPrefix + "apply"
	// MethodPromote makes the receiver primary at a new epoch with a new
	// backup list.
	MethodPromote = ReplPrefix + "promote"
	// MethodDemote makes the receiver a backup at a new epoch.
	MethodDemote = ReplPrefix + "demote"
	// MethodStatus reports role, epoch, applied sequence, and version.
	MethodStatus = ReplPrefix + "status"
	// MethodSyncTo (primary-only) ships a full state snapshot to one named
	// endpoint: how a freshly hosted backup is seeded when a group expands.
	MethodSyncTo = ReplPrefix + "syncto"
)

// Inner is the object a Replica wraps: context-aware invocation plus the
// serialisable state container replication ships. core.DCDO satisfies it.
type Inner interface {
	InvokeMethodCtx(ctx context.Context, method string, args []byte) ([]byte, error)
	State() *objstate.State
}

// Replica wraps one group member. It implements rpc.Object and
// rpc.ContextAwareObject, so it is hosted on a dispatcher exactly where the
// bare object would be; degree-1 deployments simply never construct one,
// which is how replication costs nothing when it is off.
type Replica struct {
	loid   naming.LOID
	inner  Inner
	dialer transport.Dialer

	// ShipTimeout bounds each state shipment to one backup. Zero means 2 s.
	ShipTimeout time.Duration

	mu      sync.Mutex
	role    Role
	epoch   uint64
	seq     uint64   // primary: last shipped; backup: last applied
	backups []string // primary only: endpoints state ships to
	shipGen uint64   // state generation as of the last shipment

	// shipMu serialises snapshot encoding and shipment so sequence numbers
	// observed by backups are in snapshot order.
	shipMu sync.Mutex
}

var (
	_ rpc.Object             = (*Replica)(nil)
	_ rpc.ContextAwareObject = (*Replica)(nil)
)

// New returns a replica for loid wrapping inner. Role, epoch, and the
// backup list come from the caller (the group bootstrapper): the initial
// primary starts at epoch 1 with its peers as backups; initial backups
// start at epoch 1 with no peer list.
func New(loid naming.LOID, inner Inner, dialer transport.Dialer, role Role, epoch uint64, backups []string) *Replica {
	return &Replica{
		loid:    loid,
		inner:   inner,
		dialer:  dialer,
		role:    role,
		epoch:   epoch,
		backups: append([]string(nil), backups...),
	}
}

// Status is a replica's self-report.
type Status struct {
	Role  Role
	Epoch uint64
	Seq   uint64
	// VersionSegs is the wrapped object's version (version.ID segments),
	// captured via the control plane.
	VersionSegs []uint64
}

// Role returns the replica's current role.
func (r *Replica) CurrentRole() Role {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role
}

// Epoch returns the replica's current group epoch.
func (r *Replica) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// InvokeMethod implements rpc.Object.
func (r *Replica) InvokeMethod(method string, args []byte) ([]byte, error) {
	return r.InvokeMethodCtx(context.Background(), method, args)
}

// InvokeMethodCtx implements rpc.ContextAwareObject: replication-plane
// methods are handled here, control-plane methods pass through on any role
// (probes and evolution must reach backups), and dynamic methods execute on
// the primary only, followed by a synchronous state shipment when the call
// mutated state.
func (r *Replica) InvokeMethodCtx(ctx context.Context, method string, args []byte) ([]byte, error) {
	if strings.HasPrefix(method, ReplPrefix) {
		return r.invokeRepl(ctx, method, args)
	}
	if strings.HasPrefix(method, core.ControlPrefix) {
		return r.inner.InvokeMethodCtx(ctx, method, args)
	}
	r.mu.Lock()
	if r.role != RolePrimary {
		epoch := r.epoch
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s (epoch %d)", rpc.ErrNotPrimary, r.loid, epoch)
	}
	r.mu.Unlock()
	out, err := r.inner.InvokeMethodCtx(ctx, method, args)
	if err != nil {
		return out, err
	}
	if shipErr := r.shipIfChanged(ctx); shipErr != nil {
		if errors.Is(shipErr, rpc.ErrFenced) {
			// A backup holds a newer epoch: we are deposed. The local
			// execution never committed to the group (the shipment was
			// refused), so tell the caller to re-resolve and retry against
			// the real primary.
			return nil, fmt.Errorf("%w: deposed primary for %s: %v", rpc.ErrNotPrimary, r.loid, shipErr)
		}
		// The primary is healthy but cannot commit to its group right now
		// (typically a dead backup the reconciler has not yet dropped).
		// ErrUnavailable tells the client the condition is transient and that
		// the call may have executed locally without committing: idempotent
		// invokes retry through it, non-idempotent ones surface ambiguity.
		return nil, fmt.Errorf("%w: replica %s: state shipment failed: %v", rpc.ErrUnavailable, r.loid, shipErr)
	}
	return out, nil
}

// shipIfChanged ships a state snapshot to every backup if the state
// generation moved since the last shipment. Shipments are serialised so
// backups can deduplicate by sequence number alone.
func (r *Replica) shipIfChanged(ctx context.Context) error {
	r.shipMu.Lock()
	defer r.shipMu.Unlock()

	gen := r.inner.State().Generation()
	r.mu.Lock()
	if gen == r.shipGen || r.role != RolePrimary || len(r.backups) == 0 {
		if r.role == RolePrimary {
			r.shipGen = gen
		}
		r.mu.Unlock()
		return nil
	}
	r.seq++
	seq := r.seq
	epoch := r.epoch
	backups := append([]string(nil), r.backups...)
	r.mu.Unlock()

	snapshot := r.inner.State().Encode()
	e := wire.NewEncoder(len(snapshot) + 16)
	e.PutUvarint(epoch)
	e.PutUvarint(seq)
	e.PutBytes(snapshot)
	payload := e.Bytes()

	var firstErr error
	for _, endpoint := range backups {
		_, err := rpc.DirectCall(ctx, r.dialer, endpoint, r.loid, MethodApply, payload, r.shipTimeout())
		if errors.Is(err, rpc.ErrFenced) {
			r.demoteSelf()
			return err
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("backup %s: %w", endpoint, err)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	r.mu.Lock()
	r.shipGen = gen
	r.mu.Unlock()
	return nil
}

// syncTo ships one full-state snapshot to endpoint at the primary's current
// epoch and a fresh sequence number. It shares shipMu with shipIfChanged so
// the seeded snapshot is ordered against regular shipments; a following
// dynamic call re-ships to everyone at a later sequence, so over-shipping is
// the worst case, divergence never.
func (r *Replica) syncTo(ctx context.Context, endpoint string) error {
	r.shipMu.Lock()
	defer r.shipMu.Unlock()

	r.mu.Lock()
	if r.role != RolePrimary {
		epoch := r.epoch
		r.mu.Unlock()
		return fmt.Errorf("%w: %s (epoch %d)", rpc.ErrNotPrimary, r.loid, epoch)
	}
	r.seq++
	seq := r.seq
	epoch := r.epoch
	r.mu.Unlock()

	snapshot := r.inner.State().Encode()
	e := wire.NewEncoder(len(snapshot) + 16)
	e.PutUvarint(epoch)
	e.PutUvarint(seq)
	e.PutBytes(snapshot)
	_, err := rpc.DirectCall(ctx, r.dialer, endpoint, r.loid, MethodApply, e.Bytes(), r.shipTimeout())
	if errors.Is(err, rpc.ErrFenced) {
		r.demoteSelf()
		return err
	}
	if err != nil {
		return fmt.Errorf("sync %s to %s: %w", r.loid, endpoint, err)
	}
	return nil
}

// demoteSelf demotes a fenced ex-primary in place.
func (r *Replica) demoteSelf() {
	r.mu.Lock()
	r.role = RoleBackup
	r.backups = nil
	r.mu.Unlock()
}

func (r *Replica) shipTimeout() time.Duration {
	if r.ShipTimeout > 0 {
		return r.ShipTimeout
	}
	return 2 * time.Second
}

// invokeRepl handles the replication plane.
func (r *Replica) invokeRepl(ctx context.Context, method string, args []byte) ([]byte, error) {
	dec := wire.NewDecoder(args)
	switch method {
	case rpc.MethodReplRead:
		// Policy-routed read: unwrap and execute locally on ANY role — the
		// one replication-plane method backups serve. The caller asserted
		// the inner method is read-only; the generation check makes a
		// violation loud instead of letting a backup silently diverge.
		inner, innerArgs, err := rpc.DecodeReadArgs(args)
		if err != nil {
			return nil, err
		}
		if strings.HasPrefix(inner, ReplPrefix) || strings.HasPrefix(inner, core.ControlPrefix) {
			return nil, fmt.Errorf("%w: %q may not ride %s", rpc.ErrBadRequest, inner, rpc.MethodReplRead)
		}
		before := r.inner.State().Generation()
		out, err := r.inner.InvokeMethodCtx(ctx, inner, innerArgs)
		if err != nil {
			return nil, err
		}
		if r.inner.State().Generation() != before {
			return nil, fmt.Errorf("replica %s: %q mutated state via %s; backup-ok reads must be read-only",
				r.loid, inner, rpc.MethodReplRead)
		}
		return out, nil

	case MethodSyncTo:
		endpoint, err := dec.String()
		if err != nil {
			return nil, fmt.Errorf("%w: endpoint: %v", rpc.ErrBadRequest, err)
		}
		return nil, r.syncTo(ctx, endpoint)
	case MethodApply:
		epoch, err := dec.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: epoch: %v", rpc.ErrBadRequest, err)
		}
		seq, err := dec.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: seq: %v", rpc.ErrBadRequest, err)
		}
		snapshot, err := dec.Bytes()
		if err != nil {
			return nil, fmt.Errorf("%w: snapshot: %v", rpc.ErrBadRequest, err)
		}
		r.mu.Lock()
		if epoch < r.epoch {
			own := r.epoch
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: shipment epoch %d < group epoch %d", rpc.ErrFenced, epoch, own)
		}
		if epoch > r.epoch {
			// A new leadership era we missed: adopt it. If we thought we
			// were primary, two primaries existed and the higher epoch wins.
			r.epoch = epoch
			r.role = RoleBackup
			r.backups = nil
			r.seq = 0
		}
		if seq <= r.seq {
			r.mu.Unlock()
			return nil, nil // duplicate or reordered older snapshot
		}
		r.seq = seq
		r.mu.Unlock()
		if err := r.inner.State().ReplaceFrom(snapshot); err != nil {
			return nil, fmt.Errorf("replica %s: apply shipment: %w", r.loid, err)
		}
		return nil, nil

	case MethodPromote:
		epoch, err := dec.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: epoch: %v", rpc.ErrBadRequest, err)
		}
		n, err := dec.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: backup count: %v", rpc.ErrBadRequest, err)
		}
		backups := make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			b, err := dec.String()
			if err != nil {
				return nil, fmt.Errorf("%w: backup: %v", rpc.ErrBadRequest, err)
			}
			backups = append(backups, b)
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if epoch <= r.epoch && !(epoch == r.epoch && r.role == RolePrimary) {
			return nil, fmt.Errorf("%w: promote epoch %d not newer than %d", rpc.ErrFenced, epoch, r.epoch)
		}
		r.epoch = epoch
		r.role = RolePrimary
		r.backups = backups
		return nil, nil

	case MethodDemote:
		epoch, err := dec.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: epoch: %v", rpc.ErrBadRequest, err)
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if epoch < r.epoch {
			return nil, fmt.Errorf("%w: demote epoch %d < group epoch %d", rpc.ErrFenced, epoch, r.epoch)
		}
		r.epoch = epoch
		r.role = RoleBackup
		r.backups = nil
		return nil, nil

	case MethodStatus:
		segs, err := r.versionSegs(ctx)
		if err != nil {
			return nil, err
		}
		r.mu.Lock()
		st := Status{Role: r.role, Epoch: r.epoch, Seq: r.seq, VersionSegs: segs}
		r.mu.Unlock()
		e := wire.NewEncoder(32)
		e.PutString(st.Role.String())
		e.PutUvarint(st.Epoch)
		e.PutUvarint(st.Seq)
		e.PutUintSlice(st.VersionSegs)
		return e.Bytes(), nil

	default:
		return nil, fmt.Errorf("%w: %q", rpc.ErrNoSuchFunction, method)
	}
}

// versionSegs reads the wrapped object's version via its control plane.
func (r *Replica) versionSegs(ctx context.Context) ([]uint64, error) {
	out, err := r.inner.InvokeMethodCtx(ctx, core.MethodVersion, nil)
	if err != nil {
		return nil, err
	}
	return wire.NewDecoder(out).UintSlice()
}

// EncodePromoteArgs encodes a MethodPromote payload.
func EncodePromoteArgs(epoch uint64, backups []string) []byte {
	e := wire.NewEncoder(64)
	e.PutUvarint(epoch)
	e.PutUvarint(uint64(len(backups)))
	for _, b := range backups {
		e.PutString(b)
	}
	return e.Bytes()
}

// EncodeDemoteArgs encodes a MethodDemote payload.
func EncodeDemoteArgs(epoch uint64) []byte {
	e := wire.NewEncoder(8)
	e.PutUvarint(epoch)
	return e.Bytes()
}

// EncodeSyncToArgs encodes a MethodSyncTo payload.
func EncodeSyncToArgs(endpoint string) []byte {
	e := wire.NewEncoder(16 + len(endpoint))
	e.PutString(endpoint)
	return e.Bytes()
}

// DecodeStatus parses a MethodStatus response.
func DecodeStatus(buf []byte) (Status, error) {
	dec := wire.NewDecoder(buf)
	role, err := dec.String()
	if err != nil {
		return Status{}, fmt.Errorf("status: role: %w", err)
	}
	epoch, err := dec.Uvarint()
	if err != nil {
		return Status{}, fmt.Errorf("status: epoch: %w", err)
	}
	seq, err := dec.Uvarint()
	if err != nil {
		return Status{}, fmt.Errorf("status: seq: %w", err)
	}
	segs, err := dec.UintSlice()
	if err != nil {
		return Status{}, fmt.Errorf("status: version: %w", err)
	}
	st := Status{Epoch: epoch, Seq: seq, VersionSegs: segs}
	if role == RolePrimary.String() {
		st.Role = RolePrimary
	}
	return st, nil
}
