package replica

import (
	"fmt"
	"sync"

	"godcdo/internal/naming"
	"godcdo/internal/rpc"
	"godcdo/internal/transport"
	"godcdo/internal/wire"
)

// The replica-host service lets the reconciler grow a group onto a node
// that does not yet carry a member: it constructs the object via a
// node-local Factory, wraps it as a backup Replica at the caller's epoch,
// and hosts it on the node's dispatcher under the group LOID. The service
// lives at rpc.ReplicaHostLOID beside the other infrastructure objects; a
// node without a Factory simply does not host one and is skipped as a
// placement candidate.

// MethodHostAdd asks a node to host a fresh backup replica for a LOID.
const MethodHostAdd = "replhost.add"

// Factory constructs the node-local inner object for a LOID about to join a
// replica group as a backup. The returned object's state is immediately
// overwritten by the primary's seeding snapshot, so the factory only has to
// produce something structurally correct (right class, right version).
type Factory func(loid naming.LOID) (Inner, error)

// HostService hosts backup replicas on demand.
type HostService struct {
	// Factory builds the inner object for each newly hosted LOID.
	Factory Factory
	// Dialer is handed to constructed replicas for their own shipments
	// (relevant only if the member is later promoted).
	Dialer transport.Dialer
	// Host installs an object on the node's dispatcher under loid. Wired by
	// the node (legion.NewNode) so this package needs no dispatcher import.
	Host func(loid naming.LOID, obj rpc.Object)

	mu     sync.Mutex
	hosted map[naming.LOID]*Replica
}

var _ rpc.Object = (*HostService)(nil)

// Hosted returns the replica this service created for loid, if any.
func (s *HostService) Hosted(loid naming.LOID) (*Replica, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.hosted[loid]
	return r, ok
}

// InvokeMethod implements rpc.Object.
func (s *HostService) InvokeMethod(method string, args []byte) ([]byte, error) {
	switch method {
	case MethodHostAdd:
		dec := wire.NewDecoder(args)
		str, err := dec.String()
		if err != nil {
			return nil, fmt.Errorf("%w: loid: %v", rpc.ErrBadRequest, err)
		}
		loid, err := naming.ParseLOID(str)
		if err != nil {
			return nil, fmt.Errorf("%w: loid: %v", rpc.ErrBadRequest, err)
		}
		epoch, err := dec.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: epoch: %v", rpc.ErrBadRequest, err)
		}
		return nil, s.add(loid, epoch)
	default:
		return nil, fmt.Errorf("%w: %q", rpc.ErrNoSuchFunction, method)
	}
}

// add hosts a backup replica for loid at epoch. Adding a LOID this service
// already hosts is a no-op — the reconciler retries are idempotent, and the
// existing member's own epoch fencing governs which era it accepts.
func (s *HostService) add(loid naming.LOID, epoch uint64) error {
	if s.Factory == nil || s.Host == nil {
		return fmt.Errorf("%w: node does not accept hosted replicas", rpc.ErrNoSuchFunction)
	}
	s.mu.Lock()
	if _, ok := s.hosted[loid]; ok {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	inner, err := s.Factory(loid)
	if err != nil {
		return fmt.Errorf("host replica %s: %w", loid, err)
	}
	rep := New(loid, inner, s.Dialer, RoleBackup, epoch, nil)

	s.mu.Lock()
	if _, ok := s.hosted[loid]; ok { // lost a race with a concurrent add
		s.mu.Unlock()
		return nil
	}
	if s.hosted == nil {
		s.hosted = make(map[naming.LOID]*Replica)
	}
	s.hosted[loid] = rep
	s.mu.Unlock()

	s.Host(loid, rep)
	return nil
}

// EncodeHostAddArgs encodes a MethodHostAdd payload.
func EncodeHostAddArgs(loid naming.LOID, epoch uint64) []byte {
	e := wire.NewEncoder(32)
	e.PutString(loid.String())
	e.PutUvarint(epoch)
	return e.Bytes()
}
