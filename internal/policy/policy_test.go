package policy

import (
	"strings"
	"testing"
)

func TestDefaultIsValid(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatalf("Default().Validate: %v", err)
	}
	if p.Degree != 1 || p.ReadPreference != ReadPrimary || p.Consistency != ConsistencyStrong {
		t.Fatalf("unexpected default: %+v", p)
	}
	if p.BackupReadsAllowed() {
		t.Fatal("default policy must not allow backup reads")
	}
}

func TestParseRoundTrip(t *testing.T) {
	doc := `{"degree":3,"read_preference":"backup-ok","consistency":"eventual","candidates":["a","b","c"],"anti_affinity":true}`
	p, err := Parse(doc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Degree != 3 || p.ReadPreference != ReadBackupOK || !p.AntiAffinity {
		t.Fatalf("parsed: %+v", p)
	}
	if !p.BackupReadsAllowed() {
		t.Fatal("backup-ok + eventual must allow backup reads")
	}
	back, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-Parse(String): %v", err)
	}
	if !p.Equal(back) {
		t.Fatalf("JSON round trip changed the document: %+v vs %+v", p, back)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"zero degree", `{"degree":0}`, "degree 0"},
		{"huge degree", `{"degree":99}`, "exceeds maximum"},
		{"bad read pref", `{"degree":1,"read_preference":"nearest"}`, "read preference"},
		{"bad consistency", `{"degree":1,"consistency":"linear"}`, "consistency"},
		{"unknown field", `{"degree":1,"shards":4}`, "unknown field"},
		{"dup candidate", `{"degree":2,"candidates":["a","a"]}`, "duplicate candidate"},
		{"too few candidates", `{"degree":3,"candidates":["a","b"]}`, "cannot satisfy degree"},
		{"garbage", `degree=3`, "parse"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.doc)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.doc, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse(%q) = %v, want error containing %q", tc.doc, err, tc.want)
			}
		})
	}
}

func TestWireRoundTrip(t *testing.T) {
	p := DistributionPolicy{
		Degree:          3,
		ReadPreference:  ReadBackupOK,
		Consistency:     ConsistencyEventual,
		Candidates:      []string{"inproc://a", "inproc://b", "inproc://c", "inproc://d"},
		AntiAffinity:    true,
		RetryIdempotent: true,
		MaxAttempts:     5,
	}
	back, err := DecodeWire(p.EncodeWire())
	if err != nil {
		t.Fatalf("DecodeWire: %v", err)
	}
	if !p.Equal(back) {
		t.Fatalf("wire round trip changed the document: %+v vs %+v", p, back)
	}

	// Append-only discipline: a decoder must tolerate trailing bytes a
	// newer encoder appended.
	grown := append(p.EncodeWire(), 0x7, 0x7, 0x7)
	back, err = DecodeWire(grown)
	if err != nil {
		t.Fatalf("DecodeWire with trailing bytes: %v", err)
	}
	if !p.Equal(back) {
		t.Fatalf("trailing bytes changed the decode: %+v", back)
	}
}

func TestDecodeWireRejectsCorrupt(t *testing.T) {
	if _, err := DecodeWire(nil); err == nil {
		t.Fatal("DecodeWire(nil) succeeded")
	}
	if _, err := DecodeWire([]byte{99}); err == nil {
		t.Fatal("DecodeWire(bad format) succeeded")
	}
	// Truncated mid-candidates.
	p := DistributionPolicy{Degree: 3, Candidates: []string{"a", "b", "c"}}
	buf := p.EncodeWire()
	if _, err := DecodeWire(buf[:len(buf)-2]); err == nil {
		t.Fatal("DecodeWire(truncated) succeeded")
	}
}

func TestDiffAndEqual(t *testing.T) {
	a := Default()
	b := DistributionPolicy{Degree: 3, ReadPreference: ReadBackupOK, Consistency: ConsistencyEventual}
	if a.Equal(b) {
		t.Fatal("distinct documents compare equal")
	}
	diff := a.Diff(b)
	if len(diff) != 3 {
		t.Fatalf("Diff = %v, want 3 lines", diff)
	}
	for _, want := range []string{"degree: 1 -> 3", "read_preference: primary -> backup-ok", "consistency: strong -> eventual"} {
		found := false
		for _, line := range diff {
			if line == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Diff missing %q: %v", want, diff)
		}
	}
	if got := a.Diff(a); len(got) != 0 {
		t.Fatalf("self-diff = %v", got)
	}
	// Normalisation: unset enums equal explicit defaults.
	if !a.Equal(DistributionPolicy{Degree: 1}) {
		t.Fatal("normalised comparison failed")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := DistributionPolicy{Degree: 2, Candidates: []string{"a", "b"}}
	c := p.Clone()
	c.Candidates[0] = "x"
	if p.Candidates[0] != "a" {
		t.Fatal("Clone aliased the candidate slice")
	}
}
