// Package policy defines the per-object declarative distribution policy:
// one document, carried on naming bindings and journalled by the manager,
// that states how a LOID is distributed — replication degree, placement
// candidates and anti-affinity, where reads may go, consistency hints, and
// retry defaults. The layers that used to hard-code these decisions
// (replica groups, the rpc client, node flags) interpret the document
// instead; retuning a live object is rewriting its document, never
// redeploying code. The package is a leaf: it depends only on the wire
// codec, so naming, rpc, replica, and the manager can all import it.
package policy

import (
	"encoding/json"
	"fmt"
	"strings"

	"godcdo/internal/wire"
)

// ReadPreference says where a client may send idempotent reads.
type ReadPreference string

// Read preferences.
const (
	// ReadPrimary routes every call to the primary (the safe default:
	// reads observe the latest acknowledged write).
	ReadPrimary ReadPreference = "primary"
	// ReadBackupOK lets clients spread idempotent reads across the whole
	// replica set. A read served by a backup may trail the primary by the
	// in-flight shipment window — choose it for read-mostly objects where
	// that staleness is acceptable.
	ReadBackupOK ReadPreference = "backup-ok"
)

// Consistency is the document's consistency hint. It does not change the
// replication protocol (state shipping is synchronous either way); it
// records the contract the object's owner asserts, and read routing refuses
// backup reads for strong-consistency documents unless the read preference
// explicitly overrides.
type Consistency string

// Consistency hints.
const (
	// ConsistencyStrong asserts reads must observe the latest write.
	ConsistencyStrong Consistency = "strong"
	// ConsistencyEventual tolerates the shipment-window staleness backup
	// reads can observe.
	ConsistencyEventual Consistency = "eventual"
)

// formatVersion guards the wire encoding; bump on incompatible change.
// Decoders ignore trailing bytes, so compatible growth appends fields.
const formatVersion = 1

// MaxDegree bounds the replication degree a document may ask for; beyond
// this the synchronous shipping fan-out is the wrong mechanism anyway.
const MaxDegree = 16

// DistributionPolicy is the declarative distribution document for one LOID.
// The zero value is not meaningful; start from Default() or Parse.
type DistributionPolicy struct {
	// Degree is the desired replica count including the primary. 1 means
	// unreplicated. The reconciler converges the live group onto this
	// number: it re-replicates onto a fresh candidate after a member loss
	// and demotes excess members after a decrease.
	Degree int `json:"degree"`
	// ReadPreference says where idempotent reads may be served
	// (ReadPrimary when empty).
	ReadPreference ReadPreference `json:"read_preference,omitempty"`
	// Consistency is the object's consistency hint (ConsistencyStrong when
	// empty).
	Consistency Consistency `json:"consistency,omitempty"`
	// Candidates constrains placement: endpoints replicas may live on.
	// Empty means the reconciler's global candidate pool.
	Candidates []string `json:"candidates,omitempty"`
	// AntiAffinity, when set, tells the reconciler to avoid candidates
	// already hosting a member of another policy-managed group, spreading
	// groups across the fleet instead of stacking them.
	AntiAffinity bool `json:"anti_affinity,omitempty"`
	// RetryIdempotent is the idempotency default: callers that do not know
	// better may treat the object's exported functions as idempotent
	// (retry ambiguous failures, route reads per ReadPreference).
	RetryIdempotent bool `json:"retry_idempotent,omitempty"`
	// MaxAttempts, when positive, overrides the client retry policy's
	// transport attempt budget for this object. Zero keeps the client
	// default.
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// Default returns the document every LOID implicitly has before anyone
// writes one: unreplicated, primary reads, strong consistency.
func Default() DistributionPolicy {
	return DistributionPolicy{
		Degree:         1,
		ReadPreference: ReadPrimary,
		Consistency:    ConsistencyStrong,
	}
}

// Normalize fills empty enum fields with their defaults and returns the
// result; it does not validate.
func (p DistributionPolicy) Normalize() DistributionPolicy {
	if p.ReadPreference == "" {
		p.ReadPreference = ReadPrimary
	}
	if p.Consistency == "" {
		p.Consistency = ConsistencyStrong
	}
	return p
}

// Validate checks the document's invariants.
func (p DistributionPolicy) Validate() error {
	if p.Degree < 1 {
		return fmt.Errorf("policy: degree %d < 1", p.Degree)
	}
	if p.Degree > MaxDegree {
		return fmt.Errorf("policy: degree %d exceeds maximum %d", p.Degree, MaxDegree)
	}
	switch p.ReadPreference {
	case "", ReadPrimary, ReadBackupOK:
	default:
		return fmt.Errorf("policy: unknown read preference %q", p.ReadPreference)
	}
	switch p.Consistency {
	case "", ConsistencyStrong, ConsistencyEventual:
	default:
		return fmt.Errorf("policy: unknown consistency %q", p.Consistency)
	}
	if p.MaxAttempts < 0 {
		return fmt.Errorf("policy: max attempts %d < 0", p.MaxAttempts)
	}
	seen := make(map[string]bool, len(p.Candidates))
	for _, c := range p.Candidates {
		if c == "" {
			return fmt.Errorf("policy: empty candidate endpoint")
		}
		if seen[c] {
			return fmt.Errorf("policy: duplicate candidate %q", c)
		}
		seen[c] = true
	}
	if p.Degree > 1 && len(p.Candidates) > 0 && len(p.Candidates) < p.Degree {
		return fmt.Errorf("policy: %d candidates cannot satisfy degree %d", len(p.Candidates), p.Degree)
	}
	return nil
}

// Clone deep-copies the document.
func (p DistributionPolicy) Clone() DistributionPolicy {
	if len(p.Candidates) > 0 {
		p.Candidates = append([]string(nil), p.Candidates...)
	}
	return p
}

// Equal compares two documents after normalisation, so an unset enum and
// its explicit default are the same policy.
func (p DistributionPolicy) Equal(o DistributionPolicy) bool {
	a, b := p.Normalize(), o.Normalize()
	if a.Degree != b.Degree || a.ReadPreference != b.ReadPreference ||
		a.Consistency != b.Consistency || a.AntiAffinity != b.AntiAffinity ||
		a.RetryIdempotent != b.RetryIdempotent || a.MaxAttempts != b.MaxAttempts {
		return false
	}
	if len(a.Candidates) != len(b.Candidates) {
		return false
	}
	for i := range a.Candidates {
		if a.Candidates[i] != b.Candidates[i] {
			return false
		}
	}
	return true
}

// BackupReadsAllowed reports whether the document lets clients serve
// idempotent reads off backups: the read preference must say so, and the
// consistency hint must tolerate it.
func (p DistributionPolicy) BackupReadsAllowed() bool {
	return p.ReadPreference == ReadBackupOK && p.Consistency != ConsistencyStrong
}

// Diff returns human-readable "field: old -> new" lines describing what
// changes when moving from p to o (both normalised). Empty means the
// documents are equal.
func (p DistributionPolicy) Diff(o DistributionPolicy) []string {
	a, b := p.Normalize(), o.Normalize()
	var out []string
	if a.Degree != b.Degree {
		out = append(out, fmt.Sprintf("degree: %d -> %d", a.Degree, b.Degree))
	}
	if a.ReadPreference != b.ReadPreference {
		out = append(out, fmt.Sprintf("read_preference: %s -> %s", a.ReadPreference, b.ReadPreference))
	}
	if a.Consistency != b.Consistency {
		out = append(out, fmt.Sprintf("consistency: %s -> %s", a.Consistency, b.Consistency))
	}
	if strings.Join(a.Candidates, ",") != strings.Join(b.Candidates, ",") {
		out = append(out, fmt.Sprintf("candidates: [%s] -> [%s]",
			strings.Join(a.Candidates, " "), strings.Join(b.Candidates, " ")))
	}
	if a.AntiAffinity != b.AntiAffinity {
		out = append(out, fmt.Sprintf("anti_affinity: %t -> %t", a.AntiAffinity, b.AntiAffinity))
	}
	if a.RetryIdempotent != b.RetryIdempotent {
		out = append(out, fmt.Sprintf("retry_idempotent: %t -> %t", a.RetryIdempotent, b.RetryIdempotent))
	}
	if a.MaxAttempts != b.MaxAttempts {
		out = append(out, fmt.Sprintf("max_attempts: %d -> %d", a.MaxAttempts, b.MaxAttempts))
	}
	return out
}

// String renders the compact JSON form (the journalled representation).
func (p DistributionPolicy) String() string {
	b, err := json.Marshal(p.Normalize())
	if err != nil {
		// Marshal of a plain struct cannot fail; keep the signature honest.
		return fmt.Sprintf("policy(degree=%d)", p.Degree)
	}
	return string(b)
}

// Parse decodes a JSON document, normalises it, and validates it. Unknown
// fields are rejected so a typoed field name fails loudly instead of
// silently meaning the default.
func Parse(doc string) (DistributionPolicy, error) {
	dec := json.NewDecoder(strings.NewReader(doc))
	dec.DisallowUnknownFields()
	var p DistributionPolicy
	if err := dec.Decode(&p); err != nil {
		return DistributionPolicy{}, fmt.Errorf("policy: parse: %w", err)
	}
	p = p.Normalize()
	if err := p.Validate(); err != nil {
		return DistributionPolicy{}, err
	}
	return p, nil
}

// EncodeWire serialises the document for transport (binding-agent lookup
// responses carry it). Append-only: decoders ignore trailing bytes, so new
// fields go at the end under the same format version.
func (p DistributionPolicy) EncodeWire() []byte {
	p = p.Normalize()
	e := wire.NewEncoder(48)
	e.PutUvarint(formatVersion)
	e.PutUvarint(uint64(p.Degree))
	e.PutString(string(p.ReadPreference))
	e.PutString(string(p.Consistency))
	putBool(e, p.AntiAffinity)
	putBool(e, p.RetryIdempotent)
	e.PutUvarint(uint64(p.MaxAttempts))
	e.PutUvarint(uint64(len(p.Candidates)))
	for _, c := range p.Candidates {
		e.PutString(c)
	}
	return e.Bytes()
}

// DecodeWire parses an EncodeWire payload.
func DecodeWire(buf []byte) (DistributionPolicy, error) {
	dec := wire.NewDecoder(buf)
	format, err := dec.Uvarint()
	if err != nil {
		return DistributionPolicy{}, fmt.Errorf("policy: decode: %w", err)
	}
	if format != formatVersion {
		return DistributionPolicy{}, fmt.Errorf("policy: unsupported format %d", format)
	}
	var p DistributionPolicy
	degree, err := dec.Uvarint()
	if err != nil {
		return DistributionPolicy{}, fmt.Errorf("policy: decode degree: %w", err)
	}
	p.Degree = int(degree)
	pref, err := dec.String()
	if err != nil {
		return DistributionPolicy{}, fmt.Errorf("policy: decode read preference: %w", err)
	}
	p.ReadPreference = ReadPreference(pref)
	cons, err := dec.String()
	if err != nil {
		return DistributionPolicy{}, fmt.Errorf("policy: decode consistency: %w", err)
	}
	p.Consistency = Consistency(cons)
	if p.AntiAffinity, err = getBool(dec); err != nil {
		return DistributionPolicy{}, fmt.Errorf("policy: decode anti-affinity: %w", err)
	}
	if p.RetryIdempotent, err = getBool(dec); err != nil {
		return DistributionPolicy{}, fmt.Errorf("policy: decode retry default: %w", err)
	}
	attempts, err := dec.Uvarint()
	if err != nil {
		return DistributionPolicy{}, fmt.Errorf("policy: decode max attempts: %w", err)
	}
	p.MaxAttempts = int(attempts)
	n, err := dec.Uvarint()
	if err != nil {
		return DistributionPolicy{}, fmt.Errorf("policy: decode candidate count: %w", err)
	}
	if n > uint64(dec.Remaining()) {
		return DistributionPolicy{}, fmt.Errorf("policy: candidate count %d exceeds payload", n)
	}
	for i := uint64(0); i < n; i++ {
		c, err := dec.String()
		if err != nil {
			return DistributionPolicy{}, fmt.Errorf("policy: decode candidate: %w", err)
		}
		p.Candidates = append(p.Candidates, c)
	}
	p = p.Normalize()
	if err := p.Validate(); err != nil {
		return DistributionPolicy{}, err
	}
	return p, nil
}

func putBool(e *wire.Encoder, v bool) {
	if v {
		e.PutUvarint(1)
	} else {
		e.PutUvarint(0)
	}
}

func getBool(dec *wire.Decoder) (bool, error) {
	v, err := dec.Uvarint()
	if err != nil {
		return false, err
	}
	return v != 0, nil
}
