// Package vclock provides the clock abstraction used throughout godcdo.
//
// Two implementations exist: a real clock backed by the time package, and a
// deterministic virtual clock used by the simulation experiments (the
// multi-second download and stale-binding measurements from the paper run in
// virtual time so the benchmark harness completes in milliseconds and is
// fully reproducible).
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the minimal time source used by the runtime, the simulated
// network, and the evolution policies. Code under test receives a Clock so
// experiments can run against virtual time.
type Clock interface {
	// Now returns the current instant according to this clock.
	Now() time.Time
	// Sleep blocks the caller for d. On a virtual clock the block resolves
	// when simulated time advances past the deadline.
	Sleep(d time.Duration)
	// After returns a channel that delivers the then-current time once d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
}

// Real is a Clock backed by the wall clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Virtual is a deterministic simulated clock. Time only advances when a
// caller invokes Advance or Run; sleepers are woken in deadline order.
//
// The zero value is not usable; construct with NewVirtual.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     uint64
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock whose epoch is start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

type waiter struct {
	deadline time.Time
	seq      uint64 // tie-break so equal deadlines wake FIFO
	ch       chan time.Time
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].deadline.Equal(h[j].deadline) {
		return h[i].seq < h[j].seq
	}
	return h[i].deadline.Before(h[j].deadline)
}
func (h waiterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *waiterHeap) Push(x any) {
	w, ok := x.(*waiter)
	if !ok {
		return
	}
	*h = append(*h, w)
}

func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock. It blocks until the virtual clock is advanced past
// the deadline by another goroutine calling Advance or Run.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.seq++
	heap.Push(&v.waiters, &waiter{deadline: v.now.Add(d), seq: v.seq, ch: ch})
	return ch
}

// Advance moves the virtual clock forward by d, waking every sleeper whose
// deadline has passed, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	v.advanceToLocked(target)
	v.mu.Unlock()
}

// AdvanceTo moves the clock to t if t is in the future; it is a no-op
// otherwise.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.advanceToLocked(t)
	}
	v.mu.Unlock()
}

func (v *Virtual) advanceToLocked(target time.Time) {
	for len(v.waiters) > 0 && !v.waiters[0].deadline.After(target) {
		w, ok := heap.Pop(&v.waiters).(*waiter)
		if !ok {
			continue
		}
		v.now = w.deadline
		w.ch <- w.deadline
	}
	v.now = target
}

// RunUntilIdle advances the clock to each pending deadline in order until no
// sleepers remain, and returns the total duration advanced. It is the virtual
// analogue of "let every timer fire".
func (v *Virtual) RunUntilIdle() time.Duration {
	v.mu.Lock()
	start := v.now
	for len(v.waiters) > 0 {
		w, ok := heap.Pop(&v.waiters).(*waiter)
		if !ok {
			continue
		}
		v.now = w.deadline
		w.ch <- w.deadline
	}
	elapsed := v.now.Sub(start)
	v.mu.Unlock()
	return elapsed
}

// PendingWaiters reports how many sleepers are currently blocked on the
// clock. Intended for tests.
func (v *Virtual) PendingWaiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}
