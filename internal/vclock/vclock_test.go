package vclock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualNowStartsAtEpoch(t *testing.T) {
	v := NewVirtual(epoch)
	if got := v.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
}

func TestVirtualAdvanceMovesNow(t *testing.T) {
	v := NewVirtual(epoch)
	v.Advance(5 * time.Second)
	if got, want := v.Now(), epoch.Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestVirtualAdvanceToPastIsNoOp(t *testing.T) {
	v := NewVirtual(epoch)
	v.Advance(10 * time.Second)
	v.AdvanceTo(epoch.Add(3 * time.Second))
	if got, want := v.Now(), epoch.Add(10*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestVirtualSleepWakesOnAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	done := make(chan time.Duration, 1)
	go func() {
		start := v.Now()
		v.Sleep(2 * time.Second)
		done <- v.Now().Sub(start)
	}()
	// Wait for the sleeper to register.
	for v.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(3 * time.Second)
	if got := <-done; got < 2*time.Second {
		t.Fatalf("sleeper woke after %v, want >= 2s", got)
	}
}

func TestVirtualSleepZeroReturnsImmediately(t *testing.T) {
	v := NewVirtual(epoch)
	doneCh := make(chan struct{})
	go func() {
		v.Sleep(0)
		v.Sleep(-time.Second)
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(time.Second):
		t.Fatal("Sleep(0) blocked")
	}
}

func TestVirtualAfterOrdering(t *testing.T) {
	v := NewVirtual(epoch)
	c1 := v.After(1 * time.Second)
	c2 := v.After(2 * time.Second)
	c3 := v.After(3 * time.Second)
	v.Advance(10 * time.Second)
	t1, t2, t3 := <-c1, <-c2, <-c3
	if !t1.Before(t2) || !t2.Before(t3) {
		t.Fatalf("wake times out of order: %v %v %v", t1, t2, t3)
	}
	if want := epoch.Add(2 * time.Second); !t2.Equal(want) {
		t.Fatalf("second waiter woke at %v, want %v", t2, want)
	}
}

func TestVirtualEqualDeadlinesWakeFIFO(t *testing.T) {
	v := NewVirtual(epoch)
	const n = 8
	chans := make([]<-chan time.Time, n)
	for i := range chans {
		chans[i] = v.After(time.Second)
	}
	v.Advance(time.Second)
	for i, ch := range chans {
		select {
		case <-ch:
		case <-time.After(time.Second):
			t.Fatalf("waiter %d never woke", i)
		}
	}
}

func TestVirtualRunUntilIdle(t *testing.T) {
	v := NewVirtual(epoch)
	var wg sync.WaitGroup
	for _, d := range []time.Duration{time.Second, 3 * time.Second, 7 * time.Second} {
		wg.Add(1)
		d := d
		go func() {
			defer wg.Done()
			v.Sleep(d)
		}()
	}
	for v.PendingWaiters() != 3 {
		time.Sleep(time.Millisecond)
	}
	elapsed := v.RunUntilIdle()
	wg.Wait()
	if elapsed != 7*time.Second {
		t.Fatalf("RunUntilIdle advanced %v, want 7s", elapsed)
	}
	if got, want := v.Now(), epoch.Add(7*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestVirtualAdvancePartialWake(t *testing.T) {
	v := NewVirtual(epoch)
	early := v.After(1 * time.Second)
	late := v.After(10 * time.Second)
	v.Advance(2 * time.Second)
	select {
	case <-early:
	default:
		t.Fatal("early waiter not woken")
	}
	select {
	case <-late:
		t.Fatal("late waiter woken too soon")
	default:
	}
	if v.PendingWaiters() != 1 {
		t.Fatalf("PendingWaiters = %d, want 1", v.PendingWaiters())
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	before := c.Now()
	c.Sleep(time.Millisecond)
	after := c.Now()
	if !after.After(before) {
		t.Fatalf("real clock did not advance: %v -> %v", before, after)
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real.After never fired")
	}
}
