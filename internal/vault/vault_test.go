package vault

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"godcdo/internal/naming"
)

// vaultUnderTest runs the same contract suite against both implementations.
func vaults(t *testing.T) map[string]Vault {
	t.Helper()
	file, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Vault{
		"memory": NewMemory(),
		"file":   file,
	}
}

func TestStoreLoadDelete(t *testing.T) {
	for name, v := range vaults(t) {
		t.Run(name, func(t *testing.T) {
			loid := naming.LOID{Domain: 1, Class: 2, Instance: 3}
			state := []byte("captured state")
			if err := v.Store(loid, state); err != nil {
				t.Fatal(err)
			}
			got, err := v.Load(loid)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, state) {
				t.Fatalf("Load = %q", got)
			}
			// Overwrite replaces.
			if err := v.Store(loid, []byte("v2")); err != nil {
				t.Fatal(err)
			}
			got, _ = v.Load(loid)
			if string(got) != "v2" {
				t.Fatalf("after overwrite = %q", got)
			}
			if err := v.Delete(loid); err != nil {
				t.Fatal(err)
			}
			if _, err := v.Load(loid); !errors.Is(err, ErrNotStored) {
				t.Fatalf("err = %v, want ErrNotStored", err)
			}
			// Double delete is a no-op.
			if err := v.Delete(loid); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLoadMissing(t *testing.T) {
	for name, v := range vaults(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := v.Load(naming.LOID{Instance: 404}); !errors.Is(err, ErrNotStored) {
				t.Fatalf("err = %v, want ErrNotStored", err)
			}
		})
	}
}

func TestListSorted(t *testing.T) {
	for name, v := range vaults(t) {
		t.Run(name, func(t *testing.T) {
			for _, i := range []uint64{3, 1, 2} {
				if err := v.Store(naming.LOID{Domain: 1, Class: 1, Instance: i}, []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			loids, err := v.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(loids) != 3 {
				t.Fatalf("List = %v", loids)
			}
			for i := 1; i < len(loids); i++ {
				if loids[i-1].String() >= loids[i].String() {
					t.Fatalf("unsorted: %v", loids)
				}
			}
		})
	}
}

func TestMemoryStoreCopies(t *testing.T) {
	v := NewMemory()
	loid := naming.LOID{Instance: 1}
	in := []byte{1}
	if err := v.Store(loid, in); err != nil {
		t.Fatal(err)
	}
	in[0] = 9
	got, _ := v.Load(loid)
	if got[0] != 1 {
		t.Fatal("Store aliased caller slice")
	}
	got[0] = 7
	got2, _ := v.Load(loid)
	if got2[0] != 1 {
		t.Fatal("Load returned aliased storage")
	}
}

func TestFileVaultSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	v1, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	loid := naming.LOID{Domain: 2, Class: 2, Instance: 2}
	if err := v1.Store(loid, []byte("persistent")); err != nil {
		t.Fatal(err)
	}
	// "Restart": a fresh vault over the same directory sees the entry.
	v2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v2.Load(loid)
	if err != nil || string(got) != "persistent" {
		t.Fatalf("Load after reopen = %q, %v", got, err)
	}
	loids, err := v2.List()
	if err != nil || len(loids) != 1 || loids[0] != loid {
		t.Fatalf("List after reopen = %v, %v", loids, err)
	}
}

func TestNewFileRejectsFilePath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "occupied")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFile(path); err == nil {
		t.Fatal("NewFile over a regular file accepted")
	}
}

func TestFileVaultStoreFailsWhenDirRemoved(t *testing.T) {
	dir := t.TempDir()
	v, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := v.Store(naming.LOID{Instance: 1}, []byte("x")); err == nil {
		t.Fatal("store into removed directory succeeded")
	}
	if _, err := v.List(); err == nil {
		t.Fatal("list of removed directory succeeded")
	}
}

func TestFileVaultIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	v, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "not-a-loid.state"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	loids, err := v.List()
	if err != nil || len(loids) != 0 {
		t.Fatalf("List = %v, %v", loids, err)
	}
}
