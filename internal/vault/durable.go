package vault

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
)

// Durable-write helpers shared by the file vault and the manager's evolution
// journal. "Atomic" temp-file-plus-rename writes are only crash-safe when the
// temp file's contents are flushed to stable storage before the rename and
// the directory entry itself is flushed after it; without both, a power loss
// can leave the final name pointing at a truncated or empty file.

// WriteDurable writes data to path atomically and durably: the bytes land in
// a temp file in path's directory, the temp file is fsynced before being
// renamed over path, and the directory is fsynced so the rename itself
// survives power loss.
func WriteDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".durable-*")
	if err != nil {
		return fmt.Errorf("vault: durable write %q: %w", path, err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("vault: durable write %q: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("vault: durable write %q: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("vault: durable write %q: %w", path, err)
	}
	if err := SyncDir(dir); err != nil {
		return fmt.Errorf("vault: durable write %q: %w", path, err)
	}
	return nil
}

// RemoveOrphanedTemps deletes leftover WriteDurable temp files in dir. A
// crash between a temp file's fsync and its rename strands a ".durable-*"
// file that nothing will ever adopt; callers that own a directory (the
// journal, the file vault) sweep these on open, before any concurrent
// WriteDurable could be in flight. Returns how many files were removed.
func RemoveOrphanedTemps(dir string) (int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, ".durable-*"))
	if err != nil {
		return 0, fmt.Errorf("vault: sweep temps in %q: %w", dir, err)
	}
	removed := 0
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return removed, fmt.Errorf("vault: sweep temps in %q: %w", dir, err)
		}
		removed++
	}
	return removed, nil
}

// SyncDir fsyncs a directory so renames and creations inside it are durable.
// On platforms where directories cannot be fsynced (notably Windows) it is a
// no-op.
func SyncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
