// Package vault implements Legion's vault objects: persistent storage for
// deactivated objects' state. A node deactivates an object by capturing its
// state into a vault and evicting it; a later activation (possibly on a
// different node, after a crash, or during the baseline evolution pipeline)
// restores the state into a fresh incarnation.
//
// Two implementations are provided: an in-memory vault for tests and
// simulations, and a file-backed vault whose entries survive process
// restarts.
package vault

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"godcdo/internal/naming"
)

// Errors returned by vaults.
var (
	// ErrNotStored is returned when activating an object the vault does
	// not hold.
	ErrNotStored = errors.New("vault: no stored state for object")
	// ErrCorruptVault is returned when a stored entry cannot be read.
	ErrCorruptVault = errors.New("vault: corrupt entry")
)

// Vault stores captured object state by LOID.
type Vault interface {
	// Store saves the object's captured state, replacing any previous
	// entry.
	Store(loid naming.LOID, state []byte) error
	// Load returns the stored state.
	Load(loid naming.LOID) ([]byte, error)
	// Delete removes the entry; deleting a missing entry is a no-op.
	Delete(loid naming.LOID) error
	// List returns the stored LOIDs, sorted by string form.
	List() ([]naming.LOID, error)
}

// Memory is an in-memory vault. The zero value is not usable; construct
// with NewMemory.
type Memory struct {
	mu      sync.RWMutex
	entries map[naming.LOID][]byte
}

var _ Vault = (*Memory)(nil)

// NewMemory returns an empty in-memory vault.
func NewMemory() *Memory {
	return &Memory{entries: make(map[naming.LOID][]byte)}
}

// Store implements Vault.
func (m *Memory) Store(loid naming.LOID, state []byte) error {
	copied := make([]byte, len(state))
	copy(copied, state)
	m.mu.Lock()
	m.entries[loid] = copied
	m.mu.Unlock()
	return nil
}

// Load implements Vault.
func (m *Memory) Load(loid naming.LOID) ([]byte, error) {
	m.mu.RLock()
	state, ok := m.entries[loid]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotStored, loid)
	}
	copied := make([]byte, len(state))
	copy(copied, state)
	return copied, nil
}

// Delete implements Vault.
func (m *Memory) Delete(loid naming.LOID) error {
	m.mu.Lock()
	delete(m.entries, loid)
	m.mu.Unlock()
	return nil
}

// List implements Vault.
func (m *Memory) List() ([]naming.LOID, error) {
	m.mu.RLock()
	out := make([]naming.LOID, 0, len(m.entries))
	for loid := range m.entries {
		out = append(out, loid)
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, nil
}

// File is a file-backed vault: one file per object under a directory,
// surviving process restarts.
type File struct {
	dir string
	mu  sync.Mutex
}

var _ Vault = (*File)(nil)

// NewFile returns a vault rooted at dir, creating it if needed.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vault: create %q: %w", dir, err)
	}
	return &File{dir: dir}, nil
}

// entryPath encodes the LOID into a filename ("1.2.3.state").
func (f *File) entryPath(loid naming.LOID) string {
	name := strings.TrimPrefix(loid.String(), "loid:")
	return filepath.Join(f.dir, name+".state")
}

// Store implements Vault. The write is atomic and durable (temp file,
// fsync, rename, directory fsync — see WriteDurable) so a crash or power
// loss never leaves a truncated or lost entry.
func (f *File) Store(loid naming.LOID, state []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := WriteDurable(f.entryPath(loid), state); err != nil {
		return fmt.Errorf("vault: store %s: %w", loid, err)
	}
	return nil
}

// Load implements Vault.
func (f *File) Load(loid naming.LOID) ([]byte, error) {
	state, err := os.ReadFile(f.entryPath(loid))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotStored, loid)
		}
		return nil, fmt.Errorf("%w: %s: %v", ErrCorruptVault, loid, err)
	}
	return state, nil
}

// Delete implements Vault.
func (f *File) Delete(loid naming.LOID) error {
	err := os.Remove(f.entryPath(loid))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("vault: delete %s: %w", loid, err)
	}
	return nil
}

// List implements Vault.
func (f *File) List() ([]naming.LOID, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("vault: list: %w", err)
	}
	var out []naming.LOID
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".state")
		if !ok {
			continue
		}
		loid, err := naming.ParseLOID("loid:" + name)
		if err != nil {
			continue // foreign file; not a vault entry
		}
		out = append(out, loid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, nil
}
