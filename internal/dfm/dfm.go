package dfm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"godcdo/internal/metrics"
	"godcdo/internal/registry"
)

// Errors returned by live DFM operations.
var (
	// ErrUnknownFunction means no entry exists for the function — the
	// missing internal function problem when hit from inside the object.
	ErrUnknownFunction = errors.New("dfm: unknown function")
	// ErrDisabledFunction means entries exist but none is enabled.
	ErrDisabledFunction = errors.New("dfm: function disabled")
	// ErrUnknownEntry means no entry exists for a (function, component).
	ErrUnknownEntry = errors.New("dfm: unknown entry")
	// ErrDuplicateEntry is returned when adding an entry that exists.
	ErrDuplicateEntry = errors.New("dfm: duplicate entry")
	// ErrAlreadyEnabled is returned when enabling a function that already
	// has a different enabled implementation.
	ErrAlreadyEnabled = errors.New("dfm: another implementation is enabled")
	// ErrPermanent is returned when disabling or removing a permanent
	// implementation.
	ErrPermanent = errors.New("dfm: implementation is permanent")
	// ErrDependency is returned when an operation would violate a declared
	// dependency.
	ErrDependency = errors.New("dfm: operation violates dependency")
	// ErrEntryEnabled is returned when removing an entry that is still
	// enabled.
	ErrEntryEnabled = errors.New("dfm: entry still enabled")
	// ErrNotExported is returned when an external caller invokes an
	// internal function.
	ErrNotExported = errors.New("dfm: function not exported")
)

// liveEntry is one DFM table row plus its live binding and thread counter.
type liveEntry struct {
	desc   EntryDesc
	impl   registry.Func
	active atomic.Int64
	calls  atomic.Uint64
}

// fastEntry is one immutable row of the fast-path index: the implementation,
// its exported flag frozen at rebuild time, the live entry whose counters
// the call updates, and (when latency metering is enabled) the function's
// latency histogram, also frozen at rebuild time.
type fastEntry struct {
	impl     registry.Func
	exported bool
	live     *liveEntry
	hist     *metrics.Histogram
}

// lookupTable is the immutable fast-path index rebuilt on every mutation.
// byFunc maps each known function to its enabled implementation, or nil
// when every implementation is disabled — preserving the paper's
// distinction between a missing function and a disabled one.
type lookupTable struct {
	byFunc map[string]*fastEntry
}

// DFM is the live Dynamic Function Mapper maintained within every DCDO. All
// calls to dynamic functions go through it; configuration operations mutate
// it. Reads are lock-free against an immutable snapshot; mutations are
// serialised by a mutex and publish a fresh snapshot.
type DFM struct {
	mu      sync.Mutex
	entries map[EntryKey]*liveEntry
	deps    []Dependency
	lookup  atomic.Pointer[lookupTable]
	// histFor, when set via EnableLatency, supplies a per-function latency
	// histogram attached to each fast-path row at rebuild time. Nil (the
	// default) keeps BeginCall's release closure identical to the unmetered
	// path.
	histFor func(function string) *metrics.Histogram
}

// New returns an empty DFM.
func New() *DFM {
	d := &DFM{entries: make(map[EntryKey]*liveEntry)}
	d.lookup.Store(&lookupTable{byFunc: make(map[string]*fastEntry)})
	return d
}

// rebuildLocked publishes a fresh lookup snapshot. Callers hold d.mu.
func (d *DFM) rebuildLocked() {
	byFunc := make(map[string]*fastEntry, len(d.entries))
	for _, e := range d.entries {
		if e.desc.Enabled {
			fe := &fastEntry{impl: e.impl, exported: e.desc.Exported, live: e}
			if d.histFor != nil {
				fe.hist = d.histFor(e.desc.Function)
			}
			byFunc[e.desc.Function] = fe
		} else if _, known := byFunc[e.desc.Function]; !known {
			byFunc[e.desc.Function] = nil
		}
	}
	d.lookup.Store(&lookupTable{byFunc: byFunc})
}

// EnableLatency turns on per-function latency metering: histFor is invoked
// at rebuild time for each enabled function and the returned histogram
// observes the duration of every call begun through BeginCall or
// BeginExportedCall. Passing nil turns metering back off. The change takes
// effect immediately (the lookup snapshot is rebuilt).
func (d *DFM) EnableLatency(histFor func(function string) *metrics.Histogram) {
	d.mu.Lock()
	d.histFor = histFor
	d.rebuildLocked()
	d.mu.Unlock()
}

// Add inserts a new entry bound to impl. The entry starts in the state
// carried by desc; enabling a function that already has an enabled
// implementation fails.
func (d *DFM) Add(desc EntryDesc, impl registry.Func) error {
	if desc.Function == "" || desc.Component == "" {
		return fmt.Errorf("%w: empty function or component", ErrUnknownEntry)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	key := desc.Key()
	if _, exists := d.entries[key]; exists {
		return fmt.Errorf("%w: %s", ErrDuplicateEntry, key)
	}
	if desc.Enabled {
		if cur := d.enabledImplLocked(desc.Function); cur != nil {
			return fmt.Errorf("%w: %q already enabled in %q", ErrAlreadyEnabled, desc.Function, cur.desc.Component)
		}
	}
	d.entries[key] = &liveEntry{desc: desc, impl: impl}
	d.rebuildLocked()
	return nil
}

func (d *DFM) enabledImplLocked(function string) *liveEntry {
	for _, e := range d.entries {
		if e.desc.Function == function && e.desc.Enabled {
			return e
		}
	}
	return nil
}

// Enable makes the keyed implementation the one that services calls to its
// function.
func (d *DFM) Enable(key EntryKey) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownEntry, key)
	}
	if e.desc.Enabled {
		return nil
	}
	if cur := d.enabledImplLocked(key.Function); cur != nil {
		return fmt.Errorf("%w: %q already enabled in %q", ErrAlreadyEnabled, key.Function, cur.desc.Component)
	}
	e.desc.Enabled = true
	d.rebuildLocked()
	return nil
}

// Disable stops the keyed implementation from servicing calls. Unless force
// is set, disabling a permanent implementation or one that a satisfied
// dependency relies on is refused. Threads already executing inside the
// function proceed (§3.2: "there is no reason why a thread cannot proceed
// inside a deactivated function").
func (d *DFM) Disable(key EntryKey, force bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownEntry, key)
	}
	if !e.desc.Enabled {
		return nil
	}
	if !force {
		if e.desc.Permanent {
			return fmt.Errorf("%w: %s", ErrPermanent, key)
		}
		if dep, violated := d.wouldViolateLocked(key); violated {
			return fmt.Errorf("%w: %s requires %s", ErrDependency, dep, key)
		}
	}
	e.desc.Enabled = false
	d.rebuildLocked()
	return nil
}

// wouldViolateLocked reports whether disabling key breaks a dependency whose
// premise remains triggered.
func (d *DFM) wouldViolateLocked(key EntryKey) (Dependency, bool) {
	for _, dep := range d.deps {
		// Would the conclusion still hold without this entry?
		if !dep.SatisfiedBy(key.Function, key.Component) {
			continue
		}
		stillSatisfied := false
		for k, e := range d.entries {
			if k != key && e.desc.Enabled && dep.SatisfiedBy(k.Function, k.Component) {
				stillSatisfied = true
				break
			}
		}
		if stillSatisfied {
			continue
		}
		// Conclusion would break; is the premise triggered by an enabled
		// entry other than the one being disabled?
		for k, e := range d.entries {
			if k != key && e.desc.Enabled && dep.AppliesTo(k.Function, k.Component) {
				return dep, true
			}
		}
	}
	return Dependency{}, false
}

// Remove deletes a disabled entry from the table.
func (d *DFM) Remove(key EntryKey) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownEntry, key)
	}
	if e.desc.Enabled {
		return fmt.Errorf("%w: %s", ErrEntryEnabled, key)
	}
	delete(d.entries, key)
	d.rebuildLocked()
	return nil
}

// RemoveComponent deletes every entry belonging to the component. Entries
// must all be disabled first.
func (d *DFM) RemoveComponent(component string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for key, e := range d.entries {
		if key.Component == component && e.desc.Enabled {
			return fmt.Errorf("%w: %s", ErrEntryEnabled, key)
		}
	}
	for key := range d.entries {
		if key.Component == component {
			delete(d.entries, key)
		}
	}
	d.rebuildLocked()
	return nil
}

// SetFlags updates an entry's exported/mandatory/permanent flags (enabled
// state is changed only through Enable/Disable).
func (d *DFM) SetFlags(key EntryKey, exported, mandatory, permanent bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownEntry, key)
	}
	e.desc.Exported = exported
	e.desc.Mandatory = mandatory
	e.desc.Permanent = permanent
	d.rebuildLocked()
	return nil
}

// SetDeps replaces the dependency set wholesale (used when applying a
// validated descriptor).
func (d *DFM) SetDeps(deps []Dependency) {
	copied := make([]Dependency, len(deps))
	copy(copied, deps)
	d.mu.Lock()
	d.deps = copied
	d.mu.Unlock()
}

// AddDep validates and installs one dependency. Installation fails if the
// dependency is immediately violated by the current enabled set.
func (d *DFM) AddDep(dep Dependency) error {
	if err := dep.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	triggered, satisfied := false, false
	for k, e := range d.entries {
		if !e.desc.Enabled {
			continue
		}
		if dep.AppliesTo(k.Function, k.Component) {
			triggered = true
		}
		if dep.SatisfiedBy(k.Function, k.Component) {
			satisfied = true
		}
	}
	if triggered && !satisfied {
		return fmt.Errorf("%w: %s is violated by the current configuration", ErrDependency, dep)
	}
	d.deps = append(d.deps, dep)
	return nil
}

// Deps returns a copy of the installed dependencies.
func (d *DFM) Deps() []Dependency {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Dependency, len(d.deps))
	copy(out, d.deps)
	return out
}

// BeginCall resolves function to its enabled implementation, increments the
// implementation's active-thread counter, and returns the implementation
// together with a release function the caller must invoke when the call
// completes. This is the whole invocation fast path: one atomic pointer
// load, one map lookup, two atomic adds.
func (d *DFM) BeginCall(function string) (registry.Func, func(), error) {
	fe, err := d.resolve(function)
	if err != nil {
		return nil, nil, err
	}
	live := fe.live
	live.active.Add(1)
	live.calls.Add(1)
	if fe.hist != nil {
		return fe.impl, timedRelease(live, fe.hist), nil
	}
	return fe.impl, func() { live.active.Add(-1) }, nil
}

// BeginExportedCall is BeginCall restricted to exported functions — the
// entry point for invocations arriving from other objects. Internal
// functions fail with ErrNotExported.
func (d *DFM) BeginExportedCall(function string) (registry.Func, func(), error) {
	fe, err := d.resolve(function)
	if err != nil {
		return nil, nil, err
	}
	if !fe.exported {
		return nil, nil, fmt.Errorf("%w: %q", ErrNotExported, function)
	}
	live := fe.live
	live.active.Add(1)
	live.calls.Add(1)
	if fe.hist != nil {
		return fe.impl, timedRelease(live, fe.hist), nil
	}
	return fe.impl, func() { live.active.Add(-1) }, nil
}

// timedRelease builds a release closure that also records the call's
// duration into hist. Split out so the unmetered fast path keeps its
// original, smaller closure.
func timedRelease(live *liveEntry, hist *metrics.Histogram) func() {
	start := time.Now()
	return func() {
		live.active.Add(-1)
		hist.Observe(time.Since(start))
	}
}

func (d *DFM) resolve(function string) (*fastEntry, error) {
	table := d.lookup.Load()
	fe, known := table.byFunc[function]
	if !known {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFunction, function)
	}
	if fe == nil {
		return nil, fmt.Errorf("%w: %q", ErrDisabledFunction, function)
	}
	return fe, nil
}

// DropDepsMentioning removes every dependency that names the component in
// either role. Dependencies "evolve along with the implementation" (§3.2):
// when a component leaves the object, constraints tied to it are retracted.
func (d *DFM) DropDepsMentioning(component string) {
	d.mu.Lock()
	kept := d.deps[:0]
	for _, dep := range d.deps {
		if dep.FromComp == component || dep.ToComp == component {
			continue
		}
		kept = append(kept, dep)
	}
	d.deps = kept
	d.mu.Unlock()
}

// Peek resolves function to its enabled implementation without touching the
// active-thread or call counters. It exists for status probes and for the
// ablation benchmark isolating the counters' cost; the invocation path must
// use BeginCall so thread activity monitoring stays accurate.
func (d *DFM) Peek(function string) (registry.Func, error) {
	fe, err := d.resolve(function)
	if err != nil {
		return nil, err
	}
	return fe.impl, nil
}

// LookupMutex is the ablation variant of the BeginCall resolution step: it
// takes the mutation mutex on every call instead of reading the immutable
// snapshot. Only benchmarks use it.
func (d *DFM) LookupMutex(function string) (registry.Func, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	known := false
	for _, e := range d.entries {
		if e.desc.Function != function {
			continue
		}
		known = true
		if e.desc.Enabled {
			return e.impl, nil
		}
	}
	if !known {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFunction, function)
	}
	return nil, fmt.Errorf("%w: %q", ErrDisabledFunction, function)
}

// Entry returns a copy of the keyed entry's descriptor state.
func (d *DFM) Entry(key EntryKey) (EntryDesc, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[key]
	if !ok {
		return EntryDesc{}, false
	}
	return e.desc, true
}

// Entries returns the table's entries sorted by key.
func (d *DFM) Entries() []EntryDesc {
	d.mu.Lock()
	out := make([]EntryDesc, 0, len(d.entries))
	for _, e := range d.entries {
		out = append(out, e.desc)
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Function != out[j].Function {
			return out[i].Function < out[j].Function
		}
		return out[i].Component < out[j].Component
	})
	return out
}

// ActiveThreads reports the keyed implementation's active-thread count.
func (d *DFM) ActiveThreads(key EntryKey) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entries[key]; ok {
		return e.active.Load()
	}
	return 0
}

// ComponentActive reports the number of threads executing inside any
// function of the component — the check a DCDO runs before removing a
// component (§3.2, thread activity monitoring).
func (d *DFM) ComponentActive(component string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for key, e := range d.entries {
		if key.Component == component {
			total += e.active.Load()
		}
	}
	return total
}

// Calls reports how many invocations the keyed implementation has serviced.
func (d *DFM) Calls(key EntryKey) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entries[key]; ok {
		return e.calls.Load()
	}
	return 0
}

// CallCounts reports every function's total serviced invocations, summed
// across that function's implementations — the per-function view the obs
// registry exports.
func (d *DFM) CallCounts() map[string]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]uint64, len(d.entries))
	for key, e := range d.entries {
		out[key.Function] += e.calls.Load()
	}
	return out
}

// DependentsActive reports the number of threads executing inside enabled
// functions that depend (directly) on the keyed implementation — used to
// postpone disables until dependent callers drain (§3.2).
func (d *DFM) DependentsActive(key EntryKey) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for _, dep := range d.deps {
		if !dep.SatisfiedBy(key.Function, key.Component) {
			continue
		}
		for k, e := range d.entries {
			if e.desc.Enabled && dep.AppliesTo(k.Function, k.Component) {
				total += e.active.Load()
			}
		}
	}
	return total
}
