package dfm

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"godcdo/internal/registry"
)

// Model-based property test: a random sequence of DFM operations is applied
// both to the real DFM and to a trivially-correct in-memory oracle. After
// every step the two must agree, and the single-enabled-per-function
// invariant must hold. Operations that the oracle predicts must fail must
// fail on the DFM too (and vice versa), so legality is part of the model.

type oracleEntry struct {
	exported, enabled, mandatory, permanent bool
}

type oracle struct {
	entries map[EntryKey]*oracleEntry
}

func newOracle() *oracle {
	return &oracle{entries: make(map[EntryKey]*oracleEntry)}
}

func (o *oracle) enabledImpl(function string) (EntryKey, bool) {
	for k, e := range o.entries {
		if k.Function == function && e.enabled {
			return k, true
		}
	}
	return EntryKey{}, false
}

// add mirrors DFM.Add; returns whether it should succeed.
func (o *oracle) add(desc EntryDesc) bool {
	key := desc.Key()
	if _, exists := o.entries[key]; exists {
		return false
	}
	if desc.Enabled {
		if _, taken := o.enabledImpl(desc.Function); taken {
			return false
		}
	}
	o.entries[key] = &oracleEntry{
		exported: desc.Exported, enabled: desc.Enabled,
		mandatory: desc.Mandatory, permanent: desc.Permanent,
	}
	return true
}

func (o *oracle) enable(key EntryKey) bool {
	e, ok := o.entries[key]
	if !ok {
		return false
	}
	if e.enabled {
		return true
	}
	if _, taken := o.enabledImpl(key.Function); taken {
		return false
	}
	e.enabled = true
	return true
}

func (o *oracle) disable(key EntryKey) bool {
	e, ok := o.entries[key]
	if !ok {
		return false
	}
	if e.permanent && e.enabled {
		return false
	}
	e.enabled = false
	return true
}

func (o *oracle) remove(key EntryKey) bool {
	e, ok := o.entries[key]
	if !ok || e.enabled {
		return false
	}
	delete(o.entries, key)
	return true
}

func TestPropertyDFMAgainstOracle(t *testing.T) {
	const (
		functions  = 5
		components = 4
		steps      = 4000
	)
	rng := rand.New(rand.NewSource(1))
	d := New()
	o := newOracle()
	nop := registry.Func(func(registry.Caller, []byte) ([]byte, error) { return nil, nil })

	randomKey := func() EntryKey {
		return EntryKey{
			Function:  fmt.Sprintf("f%d", rng.Intn(functions)),
			Component: fmt.Sprintf("c%d", rng.Intn(components)),
		}
	}

	for step := 0; step < steps; step++ {
		key := randomKey()
		switch rng.Intn(5) {
		case 0: // add
			desc := EntryDesc{
				Function: key.Function, Component: key.Component,
				Exported: rng.Intn(2) == 0,
				Enabled:  rng.Intn(2) == 0,
			}
			if rng.Intn(8) == 0 {
				desc.Mandatory = true
				if rng.Intn(2) == 0 {
					// Permanent requires mandatory; also at most one
					// permanent per function — emulate the descriptor rule
					// loosely by only marking permanently when no other
					// permanent exists in the oracle.
					hasPermanent := false
					for k, e := range o.entries {
						if k.Function == key.Function && e.permanent {
							hasPermanent = true
						}
					}
					if !hasPermanent {
						desc.Permanent = true
					}
				}
			}
			wantOK := o.add(desc)
			err := d.Add(desc, nop)
			if (err == nil) != wantOK {
				t.Fatalf("step %d: Add(%+v) err=%v, oracle wantOK=%v", step, desc, err, wantOK)
			}
		case 1: // enable
			wantOK := o.enable(key)
			err := d.Enable(key)
			if (err == nil) != wantOK {
				t.Fatalf("step %d: Enable(%s) err=%v, oracle wantOK=%v", step, key, err, wantOK)
			}
		case 2: // disable
			wantOK := o.disable(key)
			err := d.Disable(key, false)
			if (err == nil) != wantOK {
				t.Fatalf("step %d: Disable(%s) err=%v, oracle wantOK=%v", step, key, err, wantOK)
			}
		case 3: // remove
			wantOK := o.remove(key)
			err := d.Remove(key)
			if (err == nil) != wantOK {
				t.Fatalf("step %d: Remove(%s) err=%v, oracle wantOK=%v", step, key, err, wantOK)
			}
		case 4: // resolve and compare with oracle
			wantKey, wantEnabled := o.enabledImpl(key.Function)
			impl, release, err := d.BeginCall(key.Function)
			switch {
			case wantEnabled:
				if err != nil {
					t.Fatalf("step %d: BeginCall(%s) = %v, oracle has %s enabled",
						step, key.Function, err, wantKey)
				}
				if impl == nil {
					t.Fatalf("step %d: nil impl", step)
				}
				release()
			default:
				if err == nil {
					release()
					t.Fatalf("step %d: BeginCall(%s) succeeded, oracle has no enabled impl",
						step, key.Function)
				}
				if !errors.Is(err, ErrUnknownFunction) && !errors.Is(err, ErrDisabledFunction) {
					t.Fatalf("step %d: unexpected error class %v", step, err)
				}
			}
		}

		// Global invariants after every step.
		entries := d.Entries()
		if len(entries) != len(o.entries) {
			t.Fatalf("step %d: %d entries, oracle has %d", step, len(entries), len(o.entries))
		}
		enabledPer := make(map[string]int)
		for _, e := range entries {
			oe, ok := o.entries[e.Key()]
			if !ok {
				t.Fatalf("step %d: DFM has %s, oracle does not", step, e.Key())
			}
			if e.Enabled != oe.enabled || e.Exported != oe.exported ||
				e.Mandatory != oe.mandatory || e.Permanent != oe.permanent {
				t.Fatalf("step %d: %s state %+v diverges from oracle %+v", step, e.Key(), e, *oe)
			}
			if e.Enabled {
				enabledPer[e.Function]++
			}
		}
		for fn, n := range enabledPer {
			if n > 1 {
				t.Fatalf("step %d: function %q has %d enabled implementations", step, fn, n)
			}
		}
	}
}
