// Package dfm implements the Dynamic Function Mapper, the data structure at
// the heart of the DCDO model (§2): a table through which all calls to
// dynamic functions go, tracking for every function implementation whether
// it is exported or internal, enabled or disabled, mandatory or permanent,
// and how many threads are currently executing inside it.
//
// The package provides both the live DFM used on the invocation path and the
// serialisable DFM descriptor that DCDO Managers keep in their DFM stores
// (§2.4), plus the dependency declarations of §3.2 and the validation rules
// that make versions safe to instantiate.
package dfm

import (
	"errors"
	"fmt"
)

// DepKind distinguishes the four dependency types of §3.2.
type DepKind uint8

// Dependency kinds. See the paper's Type A–D definitions.
const (
	// DepA: [F1,C1] → [F2]. Structural: if F1's implementation in C1 is
	// enabled, some implementation of F2 must be enabled.
	DepA DepKind = iota + 1
	// DepB: [F1,C1] → [F2,C2]. Behavioral: if F1's implementation in C1 is
	// enabled, F2's implementation in C2 must be enabled.
	DepB
	// DepC: [F1] → [F2,C2]. Behavioral: if any implementation of F1 is
	// enabled, F2's implementation in C2 must be enabled.
	DepC
	// DepD: [F1] → [F2]. Structural: if any implementation of F1 is
	// enabled, some implementation of F2 must be enabled.
	DepD
)

// String implements fmt.Stringer.
func (k DepKind) String() string {
	switch k {
	case DepA:
		return "A"
	case DepB:
		return "B"
	case DepC:
		return "C"
	case DepD:
		return "D"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ErrBadDependency is returned for dependency declarations whose fields do
// not match their kind.
var ErrBadDependency = errors.New("dfm: malformed dependency")

// Dependency declares that one dynamic function requires another (§3.2).
// FromComp is set only for kinds A and B; ToComp only for kinds B and C.
type Dependency struct {
	Kind     DepKind
	FromFunc string
	FromComp string
	ToFunc   string
	ToComp   string
}

// String renders the paper's arrow notation, e.g. "[sort,c1] -> [compare]".
func (d Dependency) String() string {
	from := "[" + d.FromFunc
	if d.FromComp != "" {
		from += "," + d.FromComp
	}
	from += "]"
	to := "[" + d.ToFunc
	if d.ToComp != "" {
		to += "," + d.ToComp
	}
	to += "]"
	return from + " -> " + to
}

// Validate checks that the populated fields match the declared kind.
func (d Dependency) Validate() error {
	if d.FromFunc == "" || d.ToFunc == "" {
		return fmt.Errorf("%w: missing function name in %s", ErrBadDependency, d)
	}
	switch d.Kind {
	case DepA:
		if d.FromComp == "" || d.ToComp != "" {
			return fmt.Errorf("%w: type A needs FromComp only: %s", ErrBadDependency, d)
		}
	case DepB:
		if d.FromComp == "" || d.ToComp == "" {
			return fmt.Errorf("%w: type B needs both components: %s", ErrBadDependency, d)
		}
	case DepC:
		if d.FromComp != "" || d.ToComp == "" {
			return fmt.Errorf("%w: type C needs ToComp only: %s", ErrBadDependency, d)
		}
	case DepD:
		if d.FromComp != "" || d.ToComp != "" {
			return fmt.Errorf("%w: type D names no components: %s", ErrBadDependency, d)
		}
	default:
		return fmt.Errorf("%w: unknown kind in %s", ErrBadDependency, d)
	}
	return nil
}

// AppliesTo reports whether the dependency's premise is triggered by the
// given enabled implementation (function f in component c).
func (d Dependency) AppliesTo(f, c string) bool {
	if d.FromFunc != f {
		return false
	}
	switch d.Kind {
	case DepA, DepB:
		return d.FromComp == c
	default:
		return true
	}
}

// RequiresSpecific reports whether the dependency requires a particular
// component's implementation of the target (kinds B and C) rather than any
// implementation (kinds A and D).
func (d Dependency) RequiresSpecific() bool {
	return d.Kind == DepB || d.Kind == DepC
}

// SatisfiedBy reports whether an enabled implementation of function f in
// component c discharges the dependency's conclusion.
func (d Dependency) SatisfiedBy(f, c string) bool {
	if d.ToFunc != f {
		return false
	}
	if d.RequiresSpecific() {
		return d.ToComp == c
	}
	return true
}
