package dfm

import (
	"testing"
	"testing/quick"
)

// DecodeDescriptor feeds on bytes from the network (managers ship
// descriptors to DCDOs); arbitrary input must produce an error, never a
// panic or runaway allocation.
func TestDecodeDescriptorNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeDescriptor(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Mutating single bytes of a valid encoding must also decode cleanly or
// fail cleanly — a stronger corpus than pure random bytes because more of
// the decoder executes.
func TestDecodeDescriptorBitflips(t *testing.T) {
	valid := twoCompDescriptor()
	valid.Deps = []Dependency{{Kind: DepA, FromFunc: "sort", FromComp: "c1", ToFunc: "compare"}}
	image := valid.Encode()
	for i := range image {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mutated := make([]byte, len(image))
			copy(mutated, image)
			mutated[i] ^= flip
			_, _ = DecodeDescriptor(mutated) // must not panic
		}
	}
}
