package dfm

import (
	"reflect"
	"testing"

	"godcdo/internal/naming"
	"godcdo/internal/registry"
)

func TestDiffIdenticalIsEmpty(t *testing.T) {
	a := twoCompDescriptor()
	b := twoCompDescriptor()
	plan := Diff(a, b)
	if !plan.Empty() {
		t.Fatalf("plan = %+v, want empty", plan)
	}
	if plan.NeedsComponents() {
		t.Fatal("empty plan claims to need components")
	}
}

func TestDiffAddAndRemoveComponents(t *testing.T) {
	cur := twoCompDescriptor()
	tgt := twoCompDescriptor()
	// Target drops c2 and adds c3.
	delete(tgt.Components, "c2")
	tgt.Entries = tgt.Entries[:2]
	tgt.Components["c3"] = ComponentRef{ICO: naming.LOID{Instance: 3}, CodeRef: "c3:1", Impl: registry.NativeImplType, Revision: 1}
	tgt.Entries = append(tgt.Entries, EntryDesc{Function: "hash", Component: "c3", Exported: true, Enabled: true})

	plan := Diff(cur, tgt)
	if !reflect.DeepEqual(plan.AddComponents, []string{"c3"}) {
		t.Fatalf("AddComponents = %v", plan.AddComponents)
	}
	if !reflect.DeepEqual(plan.RemoveComponents, []string{"c2"}) {
		t.Fatalf("RemoveComponents = %v", plan.RemoveComponents)
	}
	if len(plan.ReplaceComponents) != 0 || len(plan.Retune) != 0 {
		t.Fatalf("plan = %+v", plan)
	}
	if !plan.NeedsComponents() {
		t.Fatal("plan with additions should need components")
	}
}

func TestDiffRevisionChangeReplaces(t *testing.T) {
	cur := twoCompDescriptor()
	tgt := twoCompDescriptor()
	ref := tgt.Components["c2"]
	ref.Revision = 2
	ref.CodeRef = "c2:2"
	tgt.Components["c2"] = ref

	plan := Diff(cur, tgt)
	if !reflect.DeepEqual(plan.ReplaceComponents, []string{"c2"}) {
		t.Fatalf("ReplaceComponents = %v", plan.ReplaceComponents)
	}
	if !plan.NeedsComponents() {
		t.Fatal("replacement should need components")
	}
}

func TestDiffEntrySetChangeReplaces(t *testing.T) {
	cur := twoCompDescriptor()
	tgt := twoCompDescriptor()
	// Same revision but c2 now also implements "max": entry set changed.
	tgt.Entries = append(tgt.Entries, EntryDesc{Function: "max", Component: "c2"})

	plan := Diff(cur, tgt)
	if !reflect.DeepEqual(plan.ReplaceComponents, []string{"c2"}) {
		t.Fatalf("ReplaceComponents = %v", plan.ReplaceComponents)
	}
}

func TestDiffRetuneFlagsOnly(t *testing.T) {
	cur := twoCompDescriptor()
	tgt := twoCompDescriptor()
	// Swap compare's enabled implementation from c1 to c2: pure retune, no
	// component changes — the sub-half-second evolution case.
	tgt.Entries[1].Enabled = false
	tgt.Entries[2].Enabled = true

	plan := Diff(cur, tgt)
	if plan.NeedsComponents() || len(plan.RemoveComponents) != 0 {
		t.Fatalf("plan = %+v, want retune only", plan)
	}
	if len(plan.Retune) != 2 {
		t.Fatalf("Retune = %v, want 2 entries", plan.Retune)
	}
	// Retune is sorted by (function, component).
	if plan.Retune[0].Component != "c1" || plan.Retune[1].Component != "c2" {
		t.Fatalf("Retune order = %v", plan.Retune)
	}
	if plan.Retune[0].Enabled || !plan.Retune[1].Enabled {
		t.Fatalf("Retune states = %v", plan.Retune)
	}
}

func TestDiffCarriesTargetDeps(t *testing.T) {
	cur := twoCompDescriptor()
	tgt := twoCompDescriptor()
	tgt.Deps = []Dependency{{Kind: DepD, FromFunc: "sort", ToFunc: "compare"}}
	plan := Diff(cur, tgt)
	if !plan.Empty() {
		t.Fatalf("dep-only change should be empty plan, got %+v", plan)
	}
	if len(plan.Deps) != 1 || plan.Deps[0].Kind != DepD {
		t.Fatalf("Deps = %v", plan.Deps)
	}
	// Plan's dep slice is a copy.
	plan.Deps[0].FromFunc = "mutated"
	if tgt.Deps[0].FromFunc != "sort" {
		t.Fatal("plan aliases target deps")
	}
}
