package dfm

import (
	"errors"
	"fmt"
	"sort"

	"godcdo/internal/naming"
	"godcdo/internal/registry"
	"godcdo/internal/wire"
)

// Errors returned by descriptor validation.
var (
	// ErrInvalidDescriptor is returned for structurally broken descriptors.
	ErrInvalidDescriptor = errors.New("dfm: invalid descriptor")
	// ErrNotInstantiable is returned when a descriptor fails the stricter
	// checks required before a version may be marked instantiable.
	ErrNotInstantiable = errors.New("dfm: descriptor not instantiable")
	// ErrIllegalDerivation is returned when a derived descriptor violates a
	// mandatory or permanent constraint inherited from its parent.
	ErrIllegalDerivation = errors.New("dfm: illegal derivation")
	// ErrCorruptDescriptor is returned when a descriptor cannot be decoded.
	ErrCorruptDescriptor = errors.New("dfm: corrupt descriptor")
)

// EntryKey identifies one function implementation: a (function, component)
// pair.
type EntryKey struct {
	Function  string
	Component string
}

// String renders "function@component".
func (k EntryKey) String() string { return k.Function + "@" + k.Component }

// EntryDesc is the descriptor form of one DFM entry.
type EntryDesc struct {
	Function  string
	Component string
	// Exported marks the function callable from outside the object.
	Exported bool
	// Enabled marks this implementation as the one that services calls.
	Enabled bool
	// Mandatory marks the *function* as mandatory (§3.2): some
	// implementation must remain present in all derived versions.
	Mandatory bool
	// Permanent freezes this *implementation* (§3.2): it must remain the
	// enabled implementation in all derived versions.
	Permanent bool
}

// Key returns the entry's identity.
func (e EntryDesc) Key() EntryKey {
	return EntryKey{Function: e.Function, Component: e.Component}
}

// ComponentRef records where a version's component can be obtained (the ICO
// holding it) plus cached metadata used without contacting the ICO.
type ComponentRef struct {
	ICO      naming.LOID
	CodeRef  string
	Impl     registry.ImplType
	CodeSize int64
	Revision uint64
}

// Descriptor mirrors a DFM's structure without its live function bindings
// (§2.4): DCDO Managers keep descriptors in their DFM stores and use them to
// configure DCDOs at creation, migration, and evolution time.
type Descriptor struct {
	Entries    []EntryDesc
	Deps       []Dependency
	Components map[string]ComponentRef
}

// NewDescriptor returns an empty descriptor.
func NewDescriptor() *Descriptor {
	return &Descriptor{Components: make(map[string]ComponentRef)}
}

// Clone returns a deep copy — the "logical copy" a manager makes when
// deriving a new configurable version from an existing one.
func (d *Descriptor) Clone() *Descriptor {
	out := &Descriptor{
		Entries:    make([]EntryDesc, len(d.Entries)),
		Deps:       make([]Dependency, len(d.Deps)),
		Components: make(map[string]ComponentRef, len(d.Components)),
	}
	copy(out.Entries, d.Entries)
	copy(out.Deps, d.Deps)
	for id, ref := range d.Components {
		out.Components[id] = ref
	}
	return out
}

// Entry returns a pointer to the entry with the given key, or nil.
func (d *Descriptor) Entry(key EntryKey) *EntryDesc {
	for i := range d.Entries {
		if d.Entries[i].Key() == key {
			return &d.Entries[i]
		}
	}
	return nil
}

// EnabledImpl returns the enabled implementation of the named function, or
// nil when the function has no enabled implementation.
func (d *Descriptor) EnabledImpl(function string) *EntryDesc {
	for i := range d.Entries {
		if d.Entries[i].Function == function && d.Entries[i].Enabled {
			return &d.Entries[i]
		}
	}
	return nil
}

// FunctionNames returns the sorted set of function names with at least one
// entry.
func (d *Descriptor) FunctionNames() []string {
	set := make(map[string]bool)
	for _, e := range d.Entries {
		set[e.Function] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Interface returns the sorted names of enabled exported functions — what a
// client discovers when it asks the object for its interface.
func (d *Descriptor) Interface() []string {
	var names []string
	for _, e := range d.Entries {
		if e.Enabled && e.Exported {
			names = append(names, e.Function)
		}
	}
	sort.Strings(names)
	return names
}

// Validate checks structural consistency: unique entries, components
// resolvable, at most one enabled and at most one permanent implementation
// per function, permanent implies mandatory, dependencies well-formed.
func (d *Descriptor) Validate() error {
	seen := make(map[EntryKey]bool, len(d.Entries))
	enabledBy := make(map[string]string) // function -> component with enabled impl
	permanentBy := make(map[string]string)
	for _, e := range d.Entries {
		if e.Function == "" || e.Component == "" {
			return fmt.Errorf("%w: entry with empty function or component", ErrInvalidDescriptor)
		}
		key := e.Key()
		if seen[key] {
			return fmt.Errorf("%w: duplicate entry %s", ErrInvalidDescriptor, key)
		}
		seen[key] = true
		if _, ok := d.Components[e.Component]; !ok {
			return fmt.Errorf("%w: entry %s references unknown component", ErrInvalidDescriptor, key)
		}
		if e.Enabled {
			if prev, ok := enabledBy[e.Function]; ok {
				return fmt.Errorf("%w: function %q enabled in both %q and %q",
					ErrInvalidDescriptor, e.Function, prev, e.Component)
			}
			enabledBy[e.Function] = e.Component
		}
		if e.Permanent {
			if !e.Mandatory {
				return fmt.Errorf("%w: permanent entry %s must be mandatory", ErrInvalidDescriptor, key)
			}
			if prev, ok := permanentBy[e.Function]; ok {
				// §3.2: incorporating a component with a permanent
				// implementation of a function that already has one fails.
				return fmt.Errorf("%w: function %q has permanent implementations in both %q and %q",
					ErrInvalidDescriptor, e.Function, prev, e.Component)
			}
			permanentBy[e.Function] = e.Component
		}
	}
	for _, dep := range d.Deps {
		if err := dep.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidDescriptor, err)
		}
	}
	return nil
}

// DependencyViolations returns every dependency whose premise is triggered
// by an enabled entry but whose conclusion is not discharged by any enabled
// entry.
func (d *Descriptor) DependencyViolations() []Dependency {
	var violated []Dependency
	for _, dep := range d.Deps {
		triggered := false
		for _, e := range d.Entries {
			if e.Enabled && dep.AppliesTo(e.Function, e.Component) {
				triggered = true
				break
			}
		}
		if !triggered {
			continue
		}
		satisfied := false
		for _, e := range d.Entries {
			if e.Enabled && dep.SatisfiedBy(e.Function, e.Component) {
				satisfied = true
				break
			}
		}
		if !satisfied {
			violated = append(violated, dep)
		}
	}
	return violated
}

// ValidateInstantiable applies the checks a DCDO Manager runs before marking
// a version instantiable (§2.4, §3.2): structure is valid, every mandatory
// function has an enabled implementation, every permanent implementation is
// enabled, and all dependencies are satisfied.
func (d *Descriptor) ValidateInstantiable() error {
	if err := d.Validate(); err != nil {
		return err
	}
	mandatoryFuncs := make(map[string]bool)
	for _, e := range d.Entries {
		if e.Mandatory {
			mandatoryFuncs[e.Function] = true
		}
		if e.Permanent && !e.Enabled {
			return fmt.Errorf("%w: permanent implementation %s is disabled", ErrNotInstantiable, e.Key())
		}
	}
	for f := range mandatoryFuncs {
		if d.EnabledImpl(f) == nil {
			return fmt.Errorf("%w: mandatory function %q has no enabled implementation", ErrNotInstantiable, f)
		}
	}
	if violated := d.DependencyViolations(); len(violated) > 0 {
		return fmt.Errorf("%w: dependency %s not satisfied", ErrNotInstantiable, violated[0])
	}
	return nil
}

// ValidateDerivation checks the constraints a child version inherits from
// the version it derives from (§3.2): mandatory functions stay present and
// mandatory; permanent implementations stay present, permanent, and remain
// the enabled implementation of their function.
func (d *Descriptor) ValidateDerivation(parent *Descriptor) error {
	parentMandatory := make(map[string]bool)
	for _, e := range parent.Entries {
		if e.Mandatory {
			parentMandatory[e.Function] = true
		}
	}
	childHasFunc := make(map[string]bool)
	childMandatory := make(map[string]bool)
	for _, e := range d.Entries {
		childHasFunc[e.Function] = true
		if e.Mandatory {
			childMandatory[e.Function] = true
		}
	}
	for f := range parentMandatory {
		if !childHasFunc[f] {
			return fmt.Errorf("%w: mandatory function %q removed", ErrIllegalDerivation, f)
		}
		if !childMandatory[f] {
			return fmt.Errorf("%w: mandatory function %q demoted", ErrIllegalDerivation, f)
		}
	}
	for _, pe := range parent.Entries {
		if !pe.Permanent {
			continue
		}
		ce := d.Entry(pe.Key())
		if ce == nil {
			return fmt.Errorf("%w: permanent implementation %s removed", ErrIllegalDerivation, pe.Key())
		}
		if !ce.Permanent {
			return fmt.Errorf("%w: permanent implementation %s demoted", ErrIllegalDerivation, pe.Key())
		}
		if !ce.Enabled {
			return fmt.Errorf("%w: permanent implementation %s disabled", ErrIllegalDerivation, pe.Key())
		}
		if impl := d.EnabledImpl(pe.Function); impl == nil || impl.Key() != pe.Key() {
			return fmt.Errorf("%w: permanent function %q rebound away from %s",
				ErrIllegalDerivation, pe.Function, pe.Key())
		}
	}
	return nil
}

// Equivalent reports functional equivalence (§2.1): "the same components are
// incorporated into the two objects, and the DFMs of the objects are
// functionally equivalent (the same function implementations are enabled and
// exported)".
func (d *Descriptor) Equivalent(other *Descriptor) bool {
	if len(d.Components) != len(other.Components) {
		return false
	}
	for id := range d.Components {
		if _, ok := other.Components[id]; !ok {
			return false
		}
	}
	type state struct{ enabled, exported bool }
	collect := func(desc *Descriptor) map[EntryKey]state {
		m := make(map[EntryKey]state, len(desc.Entries))
		for _, e := range desc.Entries {
			if e.Enabled {
				m[e.Key()] = state{enabled: true, exported: e.Exported}
			}
		}
		return m
	}
	a, b := collect(d), collect(other)
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Encode serialises the descriptor for transfer between a manager and its
// DCDOs.
func (d *Descriptor) Encode() []byte {
	e := wire.NewEncoder(64 + 32*len(d.Entries))
	e.PutUvarint(uint64(len(d.Entries)))
	for _, en := range d.Entries {
		e.PutString(en.Function)
		e.PutString(en.Component)
		e.PutBool(en.Exported)
		e.PutBool(en.Enabled)
		e.PutBool(en.Mandatory)
		e.PutBool(en.Permanent)
	}
	e.PutUvarint(uint64(len(d.Deps)))
	for _, dep := range d.Deps {
		e.PutUvarint(uint64(dep.Kind))
		e.PutString(dep.FromFunc)
		e.PutString(dep.FromComp)
		e.PutString(dep.ToFunc)
		e.PutString(dep.ToComp)
	}
	ids := make([]string, 0, len(d.Components))
	for id := range d.Components {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	e.PutUvarint(uint64(len(ids)))
	for _, id := range ids {
		ref := d.Components[id]
		e.PutString(id)
		e.PutString(ref.ICO.String())
		e.PutString(ref.CodeRef)
		e.PutString(ref.Impl.String())
		e.PutVarint(ref.CodeSize)
		e.PutUvarint(ref.Revision)
	}
	return e.Bytes()
}

// DecodeDescriptor parses a descriptor encoded with Encode.
func DecodeDescriptor(buf []byte) (*Descriptor, error) {
	dec := wire.NewDecoder(buf)
	fail := func(what string, err error) (*Descriptor, error) {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorruptDescriptor, what, err)
	}
	d := NewDescriptor()
	nEntries, err := dec.Uvarint()
	if err != nil {
		return fail("entry count", err)
	}
	if nEntries > uint64(dec.Remaining()) {
		return fail("entry count", ErrCorruptDescriptor)
	}
	d.Entries = make([]EntryDesc, 0, nEntries)
	for i := uint64(0); i < nEntries; i++ {
		var en EntryDesc
		if en.Function, err = dec.String(); err != nil {
			return fail("entry function", err)
		}
		if en.Component, err = dec.String(); err != nil {
			return fail("entry component", err)
		}
		if en.Exported, err = dec.Bool(); err != nil {
			return fail("entry exported", err)
		}
		if en.Enabled, err = dec.Bool(); err != nil {
			return fail("entry enabled", err)
		}
		if en.Mandatory, err = dec.Bool(); err != nil {
			return fail("entry mandatory", err)
		}
		if en.Permanent, err = dec.Bool(); err != nil {
			return fail("entry permanent", err)
		}
		d.Entries = append(d.Entries, en)
	}
	nDeps, err := dec.Uvarint()
	if err != nil {
		return fail("dependency count", err)
	}
	if nDeps > uint64(dec.Remaining()) {
		return fail("dependency count", ErrCorruptDescriptor)
	}
	d.Deps = make([]Dependency, 0, nDeps)
	for i := uint64(0); i < nDeps; i++ {
		var dep Dependency
		kind, err := dec.Uvarint()
		if err != nil {
			return fail("dependency kind", err)
		}
		dep.Kind = DepKind(kind)
		if dep.FromFunc, err = dec.String(); err != nil {
			return fail("dependency from-func", err)
		}
		if dep.FromComp, err = dec.String(); err != nil {
			return fail("dependency from-comp", err)
		}
		if dep.ToFunc, err = dec.String(); err != nil {
			return fail("dependency to-func", err)
		}
		if dep.ToComp, err = dec.String(); err != nil {
			return fail("dependency to-comp", err)
		}
		d.Deps = append(d.Deps, dep)
	}
	nComps, err := dec.Uvarint()
	if err != nil {
		return fail("component count", err)
	}
	if nComps > uint64(dec.Remaining()) {
		return fail("component count", ErrCorruptDescriptor)
	}
	for i := uint64(0); i < nComps; i++ {
		id, err := dec.String()
		if err != nil {
			return fail("component id", err)
		}
		var ref ComponentRef
		loidStr, err := dec.String()
		if err != nil {
			return fail("component ico", err)
		}
		if ref.ICO, err = naming.ParseLOID(loidStr); err != nil {
			return fail("component ico", err)
		}
		if ref.CodeRef, err = dec.String(); err != nil {
			return fail("component code ref", err)
		}
		implStr, err := dec.String()
		if err != nil {
			return fail("component impl type", err)
		}
		if ref.Impl, err = registry.ParseImplType(implStr); err != nil {
			return fail("component impl type", err)
		}
		if ref.CodeSize, err = dec.Varint(); err != nil {
			return fail("component code size", err)
		}
		if ref.Revision, err = dec.Uvarint(); err != nil {
			return fail("component revision", err)
		}
		d.Components[id] = ref
	}
	return d, nil
}
