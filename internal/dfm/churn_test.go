package dfm

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godcdo/internal/metrics"
	"godcdo/internal/registry"
)

// TestBeginCallUnderEnableDisableChurn hammers BeginCall/BeginExportedCall
// from caller goroutines while mutator goroutines flip the two
// implementations of each function between enabled and disabled. Run under
// -race this exercises the snapshot-swap path; afterwards the per-function
// call counters must equal the number of successful calls, and every
// active-thread counter must have drained to zero.
func TestBeginCallUnderEnableDisableChurn(t *testing.T) {
	d := New()
	noop := registry.Func(func(c registry.Caller, args []byte) ([]byte, error) { return nil, nil })

	const funcs = 4
	names := []string{"f0", "f1", "f2", "f3"}
	for _, fn := range names {
		if err := d.Add(EntryDesc{Function: fn, Component: "a", Exported: true, Enabled: true}, noop); err != nil {
			t.Fatal(err)
		}
		if err := d.Add(EntryDesc{Function: fn, Component: "b", Exported: true, Enabled: false}, noop); err != nil {
			t.Fatal(err)
		}
	}

	// Meter latency too, so the timed-release closure is part of the race
	// surface being tested.
	reg := metrics.NewRegistry()
	d.EnableLatency(func(fn string) *metrics.Histogram { return reg.Histogram("dfm." + fn) })

	var succeeded [funcs]atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Callers: alternate BeginCall and BeginExportedCall.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fi := (g + i) % funcs
				var err error
				var release func()
				if i%2 == 0 {
					_, release, err = d.BeginCall(names[fi])
				} else {
					_, release, err = d.BeginExportedCall(names[fi])
				}
				if err != nil {
					// Mid-flip both implementations may be disabled; that is
					// the only acceptable failure.
					if !errors.Is(err, ErrDisabledFunction) {
						t.Errorf("unexpected BeginCall error: %v", err)
						return
					}
					continue
				}
				release()
				succeeded[fi].Add(1)
			}
		}(g)
	}

	// Mutators: flip each function between its two implementations.
	for g := 0; g < funcs; g++ {
		wg.Add(1)
		go func(fi int) {
			defer wg.Done()
			keyA := EntryKey{Function: names[fi], Component: "a"}
			keyB := EntryKey{Function: names[fi], Component: "b"}
			cur, next := keyA, keyB
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := d.Disable(cur, false); err != nil {
					t.Errorf("disable %s: %v", cur, err)
					return
				}
				if err := d.Enable(next); err != nil {
					t.Errorf("enable %s: %v", next, err)
					return
				}
				cur, next = next, cur
			}
		}(g)
	}

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	counts := d.CallCounts()
	for fi, fn := range names {
		want := succeeded[fi].Load()
		if counts[fn] != want {
			t.Errorf("%s: call count %d, want %d", fn, counts[fn], want)
		}
		for _, comp := range []string{"a", "b"} {
			key := EntryKey{Function: fn, Component: comp}
			if n := d.ActiveThreads(key); n != 0 {
				t.Errorf("%s: %d active threads after drain", key, n)
			}
		}
		// Every successful metered call observed exactly one latency sample.
		if h := reg.LookupHistogram("dfm." + fn); h == nil || h.Count() != want {
			got := uint64(0)
			if h != nil {
				got = h.Count()
			}
			t.Errorf("%s: histogram count %d, want %d", fn, got, want)
		}
	}
}

// TestEnableLatencyToggle verifies metering attaches and detaches with the
// snapshot rebuild.
func TestEnableLatencyToggle(t *testing.T) {
	d := New()
	noop := registry.Func(func(c registry.Caller, args []byte) ([]byte, error) { return nil, nil })
	if err := d.Add(EntryDesc{Function: "f", Component: "c", Exported: true, Enabled: true}, noop); err != nil {
		t.Fatal(err)
	}
	h := metrics.NewHistogram("dfm.f")
	d.EnableLatency(func(string) *metrics.Histogram { return h })

	_, release, err := d.BeginCall("f")
	if err != nil {
		t.Fatal(err)
	}
	release()
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}

	d.EnableLatency(nil)
	_, release, err = d.BeginCall("f")
	if err != nil {
		t.Fatal(err)
	}
	release()
	if h.Count() != 1 {
		t.Fatalf("histogram observed after metering disabled: count = %d", h.Count())
	}
}

func TestCallCounts(t *testing.T) {
	d := New()
	noop := registry.Func(func(c registry.Caller, args []byte) ([]byte, error) { return nil, nil })
	if err := d.Add(EntryDesc{Function: "f", Component: "a", Exported: true, Enabled: true}, noop); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(EntryDesc{Function: "g", Component: "a", Enabled: true}, noop); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, release, err := d.BeginCall("f")
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	_, release, err := d.BeginCall("g")
	if err != nil {
		t.Fatal(err)
	}
	release()
	counts := d.CallCounts()
	if counts["f"] != 3 || counts["g"] != 1 {
		t.Fatalf("CallCounts = %v", counts)
	}
}
