package dfm

import "sort"

// Plan describes the operations needed to evolve a DCDO from one descriptor
// to another. Managers compute plans when driving evolution; the costs the
// paper reports for DCDO evolution (sub-second without new components,
// download-dominated otherwise) are determined by the plan's shape.
type Plan struct {
	// AddComponents are component IDs present only in the target; the DCDO
	// must fetch and incorporate them.
	AddComponents []string
	// RemoveComponents are component IDs present only in the current
	// descriptor; the DCDO removes them (after thread-activity checks).
	RemoveComponents []string
	// ReplaceComponents are component IDs present in both whose revision,
	// code reference, or entry set changed; the DCDO removes the old
	// incarnation and incorporates the new one.
	ReplaceComponents []string
	// Retune carries the target entry state (enabled/exported/mandatory/
	// permanent) for every entry of a kept component.
	Retune []EntryDesc
	// Deps is the target dependency set, applied wholesale.
	Deps []Dependency
}

// Empty reports whether the plan performs no component changes and no
// entry retuning (dependency replacement alone is considered empty).
func (p Plan) Empty() bool {
	return len(p.AddComponents) == 0 && len(p.RemoveComponents) == 0 &&
		len(p.ReplaceComponents) == 0 && len(p.Retune) == 0
}

// NeedsComponents reports whether the plan incorporates any component, the
// condition under which the paper's evolution cost jumps from sub-second to
// download-dominated.
func (p Plan) NeedsComponents() bool {
	return len(p.AddComponents) > 0 || len(p.ReplaceComponents) > 0
}

// Diff computes the plan that evolves current into target. Both descriptors
// are assumed individually valid.
func Diff(current, target *Descriptor) Plan {
	var plan Plan

	entriesByComp := func(d *Descriptor) map[string][]EntryDesc {
		m := make(map[string][]EntryDesc)
		for _, e := range d.Entries {
			m[e.Component] = append(m[e.Component], e)
		}
		return m
	}
	curEntries := entriesByComp(current)
	tgtEntries := entriesByComp(target)

	for id := range target.Components {
		if _, ok := current.Components[id]; !ok {
			plan.AddComponents = append(plan.AddComponents, id)
		}
	}
	for id := range current.Components {
		if _, ok := target.Components[id]; !ok {
			plan.RemoveComponents = append(plan.RemoveComponents, id)
		}
	}

	for id, curRef := range current.Components {
		tgtRef, ok := target.Components[id]
		if !ok {
			continue
		}
		if curRef.Revision != tgtRef.Revision || curRef.CodeRef != tgtRef.CodeRef ||
			!sameEntryKeys(curEntries[id], tgtEntries[id]) {
			plan.ReplaceComponents = append(plan.ReplaceComponents, id)
			continue
		}
		// Kept component: retune every entry whose state differs.
		curByKey := make(map[EntryKey]EntryDesc, len(curEntries[id]))
		for _, e := range curEntries[id] {
			curByKey[e.Key()] = e
		}
		for _, te := range tgtEntries[id] {
			if curByKey[te.Key()] != te {
				plan.Retune = append(plan.Retune, te)
			}
		}
	}

	sort.Strings(plan.AddComponents)
	sort.Strings(plan.RemoveComponents)
	sort.Strings(plan.ReplaceComponents)
	sort.Slice(plan.Retune, func(i, j int) bool {
		ki, kj := plan.Retune[i].Key(), plan.Retune[j].Key()
		if ki.Function != kj.Function {
			return ki.Function < kj.Function
		}
		return ki.Component < kj.Component
	})
	plan.Deps = make([]Dependency, len(target.Deps))
	copy(plan.Deps, target.Deps)
	return plan
}

func sameEntryKeys(a, b []EntryDesc) bool {
	if len(a) != len(b) {
		return false
	}
	keys := make(map[EntryKey]bool, len(a))
	for _, e := range a {
		keys[e.Key()] = true
	}
	for _, e := range b {
		if !keys[e.Key()] {
			return false
		}
	}
	return true
}
