package dfm

import (
	"errors"
	"testing"
)

func TestDependencyValidate(t *testing.T) {
	valid := []Dependency{
		{Kind: DepA, FromFunc: "f1", FromComp: "c1", ToFunc: "f2"},
		{Kind: DepB, FromFunc: "f1", FromComp: "c1", ToFunc: "f2", ToComp: "c2"},
		{Kind: DepC, FromFunc: "f1", ToFunc: "f2", ToComp: "c2"},
		{Kind: DepD, FromFunc: "f1", ToFunc: "f2"},
	}
	for _, d := range valid {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: unexpected error %v", d, err)
		}
	}
	invalid := []Dependency{
		{Kind: DepA, FromFunc: "f1", ToFunc: "f2"},                               // A without FromComp
		{Kind: DepA, FromFunc: "f1", FromComp: "c1", ToFunc: "f2", ToComp: "c2"}, // A with ToComp
		{Kind: DepB, FromFunc: "f1", FromComp: "c1", ToFunc: "f2"},               // B without ToComp
		{Kind: DepC, FromFunc: "f1", FromComp: "c1", ToFunc: "f2", ToComp: "c2"}, // C with FromComp
		{Kind: DepD, FromFunc: "f1", FromComp: "c1", ToFunc: "f2"},               // D with component
		{Kind: DepD, FromFunc: "", ToFunc: "f2"},                                 // missing from
		{Kind: DepD, FromFunc: "f1", ToFunc: ""},                                 // missing to
		{Kind: DepKind(99), FromFunc: "f1", ToFunc: "f2"},                        // unknown kind
	}
	for _, d := range invalid {
		if err := d.Validate(); !errors.Is(err, ErrBadDependency) {
			t.Errorf("%s: err = %v, want ErrBadDependency", d, err)
		}
	}
}

func TestDependencyAppliesTo(t *testing.T) {
	a := Dependency{Kind: DepA, FromFunc: "f1", FromComp: "c1", ToFunc: "f2"}
	if !a.AppliesTo("f1", "c1") || a.AppliesTo("f1", "c9") || a.AppliesTo("f9", "c1") {
		t.Error("type A premise matching wrong")
	}
	d := Dependency{Kind: DepD, FromFunc: "f1", ToFunc: "f2"}
	if !d.AppliesTo("f1", "anything") || d.AppliesTo("f2", "c1") {
		t.Error("type D premise matching wrong")
	}
}

func TestDependencySatisfiedBy(t *testing.T) {
	b := Dependency{Kind: DepB, FromFunc: "f1", FromComp: "c1", ToFunc: "f2", ToComp: "c2"}
	if !b.SatisfiedBy("f2", "c2") || b.SatisfiedBy("f2", "c9") || b.SatisfiedBy("f9", "c2") {
		t.Error("type B conclusion matching wrong")
	}
	a := Dependency{Kind: DepA, FromFunc: "f1", FromComp: "c1", ToFunc: "f2"}
	if !a.SatisfiedBy("f2", "anyComp") || a.SatisfiedBy("f1", "c1") {
		t.Error("type A conclusion matching wrong")
	}
}

func TestDependencyRequiresSpecific(t *testing.T) {
	if (Dependency{Kind: DepA}).RequiresSpecific() || (Dependency{Kind: DepD}).RequiresSpecific() {
		t.Error("structural deps should not require specific impl")
	}
	if !(Dependency{Kind: DepB}).RequiresSpecific() || !(Dependency{Kind: DepC}).RequiresSpecific() {
		t.Error("behavioral deps should require specific impl")
	}
}

func TestDependencyString(t *testing.T) {
	d := Dependency{Kind: DepB, FromFunc: "sort", FromComp: "c1", ToFunc: "compare", ToComp: "c2"}
	if got := d.String(); got != "[sort,c1] -> [compare,c2]" {
		t.Errorf("String = %q", got)
	}
	a := Dependency{Kind: DepD, FromFunc: "sort", ToFunc: "compare"}
	if got := a.String(); got != "[sort] -> [compare]" {
		t.Errorf("String = %q", got)
	}
}

func TestDepKindString(t *testing.T) {
	for k, want := range map[DepKind]string{DepA: "A", DepB: "B", DepC: "C", DepD: "D", DepKind(7): "kind(7)"} {
		if got := k.String(); got != want {
			t.Errorf("DepKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
