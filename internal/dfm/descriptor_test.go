package dfm

import (
	"errors"
	"reflect"
	"testing"

	"godcdo/internal/naming"
	"godcdo/internal/registry"
)

// twoCompDescriptor builds a descriptor with components c1 (sort, compare)
// and c2 (compare) where c1's implementations are enabled.
func twoCompDescriptor() *Descriptor {
	d := NewDescriptor()
	d.Components["c1"] = ComponentRef{
		ICO: naming.LOID{Domain: 1, Class: 9, Instance: 1}, CodeRef: "c1:1",
		Impl: registry.NativeImplType, CodeSize: 100, Revision: 1,
	}
	d.Components["c2"] = ComponentRef{
		ICO: naming.LOID{Domain: 1, Class: 9, Instance: 2}, CodeRef: "c2:1",
		Impl: registry.NativeImplType, CodeSize: 200, Revision: 1,
	}
	d.Entries = []EntryDesc{
		{Function: "sort", Component: "c1", Exported: true, Enabled: true},
		{Function: "compare", Component: "c1", Enabled: true},
		{Function: "compare", Component: "c2"},
	}
	return d
}

func TestDescriptorValidateAccepts(t *testing.T) {
	if err := twoCompDescriptor().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptorValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Descriptor)
	}{
		{"empty function", func(d *Descriptor) { d.Entries[0].Function = "" }},
		{"duplicate entry", func(d *Descriptor) { d.Entries[2] = d.Entries[1] }},
		{"unknown component", func(d *Descriptor) { d.Entries[0].Component = "ghost" }},
		{"two enabled impls", func(d *Descriptor) { d.Entries[2].Enabled = true }},
		{"permanent not mandatory", func(d *Descriptor) { d.Entries[0].Permanent = true }},
		{"bad dependency", func(d *Descriptor) {
			d.Deps = append(d.Deps, Dependency{Kind: DepA, FromFunc: "sort", ToFunc: "compare"})
		}},
		{"two permanent impls", func(d *Descriptor) {
			d.Entries[1].Mandatory, d.Entries[1].Permanent = true, true
			d.Entries[2].Mandatory, d.Entries[2].Permanent = true, true
		}},
	}
	for _, c := range cases {
		d := twoCompDescriptor()
		c.mutate(d)
		if err := d.Validate(); !errors.Is(err, ErrInvalidDescriptor) {
			t.Errorf("%s: err = %v, want ErrInvalidDescriptor", c.name, err)
		}
	}
}

func TestDescriptorInterfaceAndLookups(t *testing.T) {
	d := twoCompDescriptor()
	if got := d.Interface(); !reflect.DeepEqual(got, []string{"sort"}) {
		t.Fatalf("Interface = %v", got)
	}
	if got := d.FunctionNames(); !reflect.DeepEqual(got, []string{"compare", "sort"}) {
		t.Fatalf("FunctionNames = %v", got)
	}
	impl := d.EnabledImpl("compare")
	if impl == nil || impl.Component != "c1" {
		t.Fatalf("EnabledImpl(compare) = %+v", impl)
	}
	if d.EnabledImpl("missing") != nil {
		t.Fatal("EnabledImpl for unknown function should be nil")
	}
	if e := d.Entry(EntryKey{Function: "compare", Component: "c2"}); e == nil || e.Enabled {
		t.Fatalf("Entry(compare@c2) = %+v", e)
	}
	if d.Entry(EntryKey{Function: "x", Component: "y"}) != nil {
		t.Fatal("Entry for unknown key should be nil")
	}
}

func TestDescriptorCloneIsDeep(t *testing.T) {
	d := twoCompDescriptor()
	d.Deps = []Dependency{{Kind: DepD, FromFunc: "sort", ToFunc: "compare"}}
	c := d.Clone()
	c.Entries[0].Enabled = false
	c.Deps[0].FromFunc = "mutated"
	c.Components["c3"] = ComponentRef{}
	if !d.Entries[0].Enabled || d.Deps[0].FromFunc != "sort" || len(d.Components) != 2 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestValidateInstantiable(t *testing.T) {
	// Valid case: mandatory function with enabled impl, satisfied dep.
	d := twoCompDescriptor()
	d.Entries[1].Mandatory = true
	d.Deps = []Dependency{{Kind: DepA, FromFunc: "sort", FromComp: "c1", ToFunc: "compare"}}
	if err := d.ValidateInstantiable(); err != nil {
		t.Fatal(err)
	}

	// Mandatory function with no enabled implementation.
	d2 := twoCompDescriptor()
	d2.Entries[1].Enabled = false
	d2.Entries[1].Mandatory = true
	if err := d2.ValidateInstantiable(); !errors.Is(err, ErrNotInstantiable) {
		t.Fatalf("mandatory-without-enabled err = %v", err)
	}

	// Permanent implementation that is disabled.
	d3 := twoCompDescriptor()
	d3.Entries[2].Mandatory, d3.Entries[2].Permanent = true, true // compare@c2, disabled
	if err := d3.ValidateInstantiable(); !errors.Is(err, ErrNotInstantiable) {
		t.Fatalf("disabled-permanent err = %v", err)
	}

	// Violated dependency: sort depends on an implementation that is
	// disabled (type B on c2's compare, while c1's is enabled).
	d4 := twoCompDescriptor()
	d4.Deps = []Dependency{{Kind: DepB, FromFunc: "sort", FromComp: "c1", ToFunc: "compare", ToComp: "c2"}}
	if err := d4.ValidateInstantiable(); !errors.Is(err, ErrNotInstantiable) {
		t.Fatalf("violated-dependency err = %v", err)
	}

	// A dependency whose premise is not triggered is not violated.
	d5 := twoCompDescriptor()
	d5.Entries[0].Enabled = false // sort disabled; its dependency is moot
	d5.Deps = []Dependency{{Kind: DepB, FromFunc: "sort", FromComp: "c1", ToFunc: "compare", ToComp: "c2"}}
	if err := d5.ValidateInstantiable(); err != nil {
		t.Fatalf("untriggered dependency should not block: %v", err)
	}
}

func TestDependencyViolationsTypeCD(t *testing.T) {
	d := twoCompDescriptor()
	// Type C: any enabled impl of sort requires compare@c2 — violated,
	// since c1's compare is the enabled one.
	d.Deps = []Dependency{{Kind: DepC, FromFunc: "sort", ToFunc: "compare", ToComp: "c2"}}
	if v := d.DependencyViolations(); len(v) != 1 {
		t.Fatalf("violations = %v, want 1", v)
	}
	// Type D: any impl of sort requires some compare — satisfied.
	d.Deps = []Dependency{{Kind: DepD, FromFunc: "sort", ToFunc: "compare"}}
	if v := d.DependencyViolations(); len(v) != 0 {
		t.Fatalf("violations = %v, want none", v)
	}
}

func TestValidateDerivation(t *testing.T) {
	parent := twoCompDescriptor()
	parent.Entries[0].Mandatory = true // sort mandatory

	// Legal: child keeps sort mandatory.
	child := parent.Clone()
	if err := child.ValidateDerivation(parent); err != nil {
		t.Fatal(err)
	}

	// Illegal: child removes the mandatory function entirely.
	gone := parent.Clone()
	gone.Entries = gone.Entries[1:]
	if err := gone.ValidateDerivation(parent); !errors.Is(err, ErrIllegalDerivation) {
		t.Fatalf("removed-mandatory err = %v", err)
	}

	// Illegal: child demotes the mandatory flag.
	demoted := parent.Clone()
	demoted.Entries[0].Mandatory = false
	if err := demoted.ValidateDerivation(parent); !errors.Is(err, ErrIllegalDerivation) {
		t.Fatalf("demoted-mandatory err = %v", err)
	}
}

func TestValidateDerivationPermanent(t *testing.T) {
	parent := twoCompDescriptor()
	parent.Entries[1].Mandatory, parent.Entries[1].Permanent = true, true // compare@c1 permanent

	// Illegal: permanent implementation removed.
	removed := parent.Clone()
	removed.Entries = []EntryDesc{parent.Entries[0], parent.Entries[2]}
	if err := removed.ValidateDerivation(parent); !errors.Is(err, ErrIllegalDerivation) {
		t.Fatalf("removed-permanent err = %v", err)
	}

	// Illegal: permanent implementation disabled, replaced by c2's.
	swapped := parent.Clone()
	swapped.Entries[1].Enabled = false
	swapped.Entries[2].Enabled = true
	if err := swapped.ValidateDerivation(parent); !errors.Is(err, ErrIllegalDerivation) {
		t.Fatalf("swapped-permanent err = %v", err)
	}

	// Illegal: flag demoted even if still enabled.
	demoted := parent.Clone()
	demoted.Entries[1].Permanent = false
	if err := demoted.ValidateDerivation(parent); !errors.Is(err, ErrIllegalDerivation) {
		t.Fatalf("demoted-permanent err = %v", err)
	}

	// Legal: everything intact, new entries added elsewhere.
	grown := parent.Clone()
	grown.Components["c3"] = ComponentRef{ICO: naming.LOID{Instance: 3}, CodeRef: "c3:1", Impl: registry.NativeImplType}
	grown.Entries = append(grown.Entries, EntryDesc{Function: "extra", Component: "c3", Exported: true, Enabled: true})
	if err := grown.ValidateDerivation(parent); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptorEquivalent(t *testing.T) {
	a := twoCompDescriptor()
	b := twoCompDescriptor()
	if !a.Equivalent(b) {
		t.Fatal("identical descriptors not equivalent")
	}
	// Disabled-entry differences do not affect equivalence...
	b.Entries[2].Mandatory = true
	if !a.Equivalent(b) {
		t.Fatal("disabled-entry flag change should not break equivalence")
	}
	// ...but export changes on enabled entries do.
	c := twoCompDescriptor()
	c.Entries[0].Exported = false
	if a.Equivalent(c) {
		t.Fatal("export flag change should break equivalence")
	}
	// Enabling a different implementation breaks equivalence.
	d := twoCompDescriptor()
	d.Entries[1].Enabled = false
	d.Entries[2].Enabled = true
	if a.Equivalent(d) {
		t.Fatal("implementation swap should break equivalence")
	}
	// Different component sets break equivalence.
	e := twoCompDescriptor()
	delete(e.Components, "c2")
	e.Entries = e.Entries[:2]
	if a.Equivalent(e) {
		t.Fatal("component set change should break equivalence")
	}
}

func TestDescriptorEncodeDecodeRoundTrip(t *testing.T) {
	in := twoCompDescriptor()
	in.Deps = []Dependency{
		{Kind: DepA, FromFunc: "sort", FromComp: "c1", ToFunc: "compare"},
		{Kind: DepB, FromFunc: "sort", FromComp: "c1", ToFunc: "compare", ToComp: "c2"},
	}
	out, err := DecodeDescriptor(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestDescriptorDecodeTruncated(t *testing.T) {
	full := twoCompDescriptor().Encode()
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeDescriptor(full[:cut]); !errors.Is(err, ErrCorruptDescriptor) {
			t.Fatalf("cut=%d: err = %v, want ErrCorruptDescriptor", cut, err)
		}
	}
}

func TestDescriptorEmptyRoundTrip(t *testing.T) {
	in := NewDescriptor()
	out, err := DecodeDescriptor(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 0 || len(out.Deps) != 0 || len(out.Components) != 0 {
		t.Fatalf("decoded non-empty: %+v", out)
	}
}
