package dfm

import (
	"errors"
	"sync"
	"testing"

	"godcdo/internal/registry"
)

func constFunc(result string) registry.Func {
	return func(registry.Caller, []byte) ([]byte, error) {
		return []byte(result), nil
	}
}

func key(f, c string) EntryKey { return EntryKey{Function: f, Component: c} }

// buildDFM creates a DFM with sort@c1 (exported, enabled), compare@c1
// (enabled) and compare@c2 (disabled).
func buildDFM(t *testing.T) *DFM {
	t.Helper()
	d := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.Add(EntryDesc{Function: "sort", Component: "c1", Exported: true, Enabled: true}, constFunc("sorted")))
	must(d.Add(EntryDesc{Function: "compare", Component: "c1", Enabled: true}, constFunc("asc")))
	must(d.Add(EntryDesc{Function: "compare", Component: "c2"}, constFunc("desc")))
	return d
}

func TestBeginCallDispatchesEnabledImpl(t *testing.T) {
	d := buildDFM(t)
	impl, release, err := d.BeginCall("compare")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	out, err := impl(nil, nil)
	if err != nil || string(out) != "asc" {
		t.Fatalf("impl = %q, %v", out, err)
	}
}

func TestBeginCallUnknownVsDisabled(t *testing.T) {
	d := buildDFM(t)
	if _, _, err := d.BeginCall("missing"); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("unknown err = %v", err)
	}
	// Disable both compare implementations: function known but disabled.
	if err := d.Disable(key("compare", "c1"), false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.BeginCall("compare"); !errors.Is(err, ErrDisabledFunction) {
		t.Fatalf("disabled err = %v", err)
	}
}

func TestActiveThreadAccounting(t *testing.T) {
	d := buildDFM(t)
	k := key("sort", "c1")
	_, release1, err := d.BeginCall("sort")
	if err != nil {
		t.Fatal(err)
	}
	_, release2, err := d.BeginCall("sort")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.ActiveThreads(k); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
	if got := d.ComponentActive("c1"); got != 2 {
		t.Fatalf("component active = %d, want 2", got)
	}
	release1()
	release2()
	if got := d.ActiveThreads(k); got != 0 {
		t.Fatalf("active after release = %d, want 0", got)
	}
	if got := d.Calls(k); got != 2 {
		t.Fatalf("calls = %d, want 2", got)
	}
	if d.ActiveThreads(key("ghost", "c9")) != 0 || d.Calls(key("ghost", "c9")) != 0 {
		t.Fatal("unknown entries should report zero counters")
	}
}

func TestActiveThreadsNeverNegativeConcurrent(t *testing.T) {
	d := buildDFM(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_, release, err := d.BeginCall("sort")
				if err != nil {
					t.Error(err)
					return
				}
				if d.ActiveThreads(key("sort", "c1")) < 1 {
					t.Error("active count below 1 while a call is in flight")
					release()
					return
				}
				release()
			}
		}()
	}
	wg.Wait()
	if got := d.ActiveThreads(key("sort", "c1")); got != 0 {
		t.Fatalf("final active = %d, want 0", got)
	}
}

func TestAddDuplicateRejected(t *testing.T) {
	d := buildDFM(t)
	err := d.Add(EntryDesc{Function: "sort", Component: "c1"}, constFunc("x"))
	if !errors.Is(err, ErrDuplicateEntry) {
		t.Fatalf("err = %v, want ErrDuplicateEntry", err)
	}
}

func TestAddEnabledConflictRejected(t *testing.T) {
	d := buildDFM(t)
	err := d.Add(EntryDesc{Function: "compare", Component: "c3", Enabled: true}, constFunc("x"))
	if !errors.Is(err, ErrAlreadyEnabled) {
		t.Fatalf("err = %v, want ErrAlreadyEnabled", err)
	}
}

func TestAddEmptyKeyRejected(t *testing.T) {
	d := New()
	if err := d.Add(EntryDesc{Function: "", Component: "c"}, nil); err == nil {
		t.Fatal("empty function accepted")
	}
	if err := d.Add(EntryDesc{Function: "f", Component: ""}, nil); err == nil {
		t.Fatal("empty component accepted")
	}
}

func TestImplementationSwap(t *testing.T) {
	d := buildDFM(t)
	// The paper's compare() example: swap the ascending implementation for
	// the descending one.
	if err := d.Disable(key("compare", "c1"), false); err != nil {
		t.Fatal(err)
	}
	if err := d.Enable(key("compare", "c2")); err != nil {
		t.Fatal(err)
	}
	impl, release, err := d.BeginCall("compare")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	out, _ := impl(nil, nil)
	if string(out) != "desc" {
		t.Fatalf("after swap impl = %q, want desc", out)
	}
}

func TestEnableConflictAndIdempotence(t *testing.T) {
	d := buildDFM(t)
	if err := d.Enable(key("compare", "c2")); !errors.Is(err, ErrAlreadyEnabled) {
		t.Fatalf("err = %v, want ErrAlreadyEnabled", err)
	}
	if err := d.Enable(key("compare", "c1")); err != nil {
		t.Fatalf("re-enable of enabled entry should be a no-op: %v", err)
	}
	if err := d.Enable(key("ghost", "c1")); !errors.Is(err, ErrUnknownEntry) {
		t.Fatalf("err = %v, want ErrUnknownEntry", err)
	}
	if err := d.Disable(key("ghost", "c1"), false); !errors.Is(err, ErrUnknownEntry) {
		t.Fatalf("err = %v, want ErrUnknownEntry", err)
	}
	if err := d.Disable(key("compare", "c2"), false); err != nil {
		t.Fatalf("disable of disabled entry should be a no-op: %v", err)
	}
}

func TestDisablePermanentRefused(t *testing.T) {
	d := buildDFM(t)
	if err := d.SetFlags(key("sort", "c1"), true, true, true); err != nil {
		t.Fatal(err)
	}
	if err := d.Disable(key("sort", "c1"), false); !errors.Is(err, ErrPermanent) {
		t.Fatalf("err = %v, want ErrPermanent", err)
	}
	// Force bypasses (used only when applying a validated descriptor).
	if err := d.Disable(key("sort", "c1"), true); err != nil {
		t.Fatal(err)
	}
}

func TestDisableDependedOnRefused(t *testing.T) {
	d := buildDFM(t)
	if err := d.AddDep(Dependency{Kind: DepA, FromFunc: "sort", FromComp: "c1", ToFunc: "compare"}); err != nil {
		t.Fatal(err)
	}
	// compare@c1 is the only enabled compare; sort@c1 is enabled and
	// depends on it.
	if err := d.Disable(key("compare", "c1"), false); !errors.Is(err, ErrDependency) {
		t.Fatalf("err = %v, want ErrDependency", err)
	}
	// Disabling the dependent first releases the constraint.
	if err := d.Disable(key("sort", "c1"), false); err != nil {
		t.Fatal(err)
	}
	if err := d.Disable(key("compare", "c1"), false); err != nil {
		t.Fatalf("disable after dependent gone: %v", err)
	}
}

func TestDisableWithAlternativeImplAllowedForTypeA(t *testing.T) {
	d := buildDFM(t)
	if err := d.AddDep(Dependency{Kind: DepA, FromFunc: "sort", FromComp: "c1", ToFunc: "compare"}); err != nil {
		t.Fatal(err)
	}
	// Swap enabled compare impl from c1 to c2 in the order enable-then-
	// disable is impossible (single-enabled invariant), so disable must
	// consider... c1 is the only enabled impl, so it is refused.
	if err := d.Disable(key("compare", "c1"), false); !errors.Is(err, ErrDependency) {
		t.Fatalf("err = %v, want ErrDependency", err)
	}
	// Force-swap to c2: type A is satisfied by any implementation, so once
	// c2 is enabled the dependency holds again.
	if err := d.Disable(key("compare", "c1"), true); err != nil {
		t.Fatal(err)
	}
	if err := d.Enable(key("compare", "c2")); err != nil {
		t.Fatal(err)
	}
	if v := descriptorFromDFM(d).DependencyViolations(); len(v) != 0 {
		t.Fatalf("violations after swap = %v", v)
	}
}

// descriptorFromDFM builds a minimal Descriptor view for validation tests.
func descriptorFromDFM(d *DFM) *Descriptor {
	desc := NewDescriptor()
	desc.Entries = d.Entries()
	desc.Deps = d.Deps()
	for _, e := range desc.Entries {
		desc.Components[e.Component] = ComponentRef{}
	}
	return desc
}

func TestAddDepImmediateViolationRefused(t *testing.T) {
	d := buildDFM(t)
	// sort is enabled, but nothing implements "hash": installing the
	// dependency would be violated immediately.
	err := d.AddDep(Dependency{Kind: DepD, FromFunc: "sort", ToFunc: "hash"})
	if !errors.Is(err, ErrDependency) {
		t.Fatalf("err = %v, want ErrDependency", err)
	}
	// Malformed dependencies are rejected before installation.
	if err := d.AddDep(Dependency{Kind: DepA, FromFunc: "sort", ToFunc: "x"}); !errors.Is(err, ErrBadDependency) {
		t.Fatalf("err = %v, want ErrBadDependency", err)
	}
	// A dependency whose premise is untriggered installs fine.
	if err := d.AddDep(Dependency{Kind: DepD, FromFunc: "nonexistent", ToFunc: "alsoMissing"}); err != nil {
		t.Fatal(err)
	}
	if len(d.Deps()) != 1 {
		t.Fatalf("deps = %v", d.Deps())
	}
}

func TestRemoveRequiresDisabled(t *testing.T) {
	d := buildDFM(t)
	if err := d.Remove(key("sort", "c1")); !errors.Is(err, ErrEntryEnabled) {
		t.Fatalf("err = %v, want ErrEntryEnabled", err)
	}
	if err := d.Disable(key("sort", "c1"), false); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove(key("sort", "c1")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.BeginCall("sort"); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("after removal err = %v, want ErrUnknownFunction", err)
	}
	if err := d.Remove(key("sort", "c1")); !errors.Is(err, ErrUnknownEntry) {
		t.Fatalf("double remove err = %v", err)
	}
}

func TestRemoveComponent(t *testing.T) {
	d := buildDFM(t)
	if err := d.RemoveComponent("c1"); !errors.Is(err, ErrEntryEnabled) {
		t.Fatalf("err = %v, want ErrEntryEnabled (c1 has enabled entries)", err)
	}
	if err := d.RemoveComponent("c2"); err != nil {
		t.Fatal(err)
	}
	if len(d.Entries()) != 2 {
		t.Fatalf("entries = %v", d.Entries())
	}
	// Removing a component with no entries is a no-op.
	if err := d.RemoveComponent("ghost"); err != nil {
		t.Fatal(err)
	}
}

func TestDisabledFunctionCallProceedsForInflightThreads(t *testing.T) {
	d := buildDFM(t)
	impl, release, err := d.BeginCall("compare")
	if err != nil {
		t.Fatal(err)
	}
	// Disable while "the thread is blocked on an outcall".
	if err := d.Disable(key("compare", "c1"), false); err != nil {
		t.Fatal(err)
	}
	// The in-flight thread still runs the old implementation fine.
	out, err := impl(nil, nil)
	if err != nil || string(out) != "asc" {
		t.Fatalf("in-flight call = %q, %v", out, err)
	}
	release()
	// New calls are refused.
	if _, _, err := d.BeginCall("compare"); !errors.Is(err, ErrDisabledFunction) {
		t.Fatalf("new call err = %v", err)
	}
}

func TestDependentsActive(t *testing.T) {
	d := buildDFM(t)
	if err := d.AddDep(Dependency{Kind: DepA, FromFunc: "sort", FromComp: "c1", ToFunc: "compare"}); err != nil {
		t.Fatal(err)
	}
	_, release, err := d.BeginCall("sort")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.DependentsActive(key("compare", "c1")); got != 1 {
		t.Fatalf("DependentsActive = %d, want 1", got)
	}
	release()
	if got := d.DependentsActive(key("compare", "c1")); got != 0 {
		t.Fatalf("DependentsActive after release = %d, want 0", got)
	}
}

func TestEntriesSnapshotSorted(t *testing.T) {
	d := buildDFM(t)
	entries := d.Entries()
	if len(entries) != 3 {
		t.Fatalf("entries = %v", entries)
	}
	if entries[0].Function != "compare" || entries[0].Component != "c1" ||
		entries[1].Component != "c2" || entries[2].Function != "sort" {
		t.Fatalf("entries not sorted: %v", entries)
	}
	e, ok := d.Entry(key("sort", "c1"))
	if !ok || !e.Exported {
		t.Fatalf("Entry = %+v, %v", e, ok)
	}
	if _, ok := d.Entry(key("x", "y")); ok {
		t.Fatal("found nonexistent entry")
	}
}

func TestPeekResolvesWithoutCounting(t *testing.T) {
	d := buildDFM(t)
	impl, err := d.Peek("sort")
	if err != nil || impl == nil {
		t.Fatalf("Peek = %v, %v", impl, err)
	}
	// Peek must not perturb the counters thread-activity policies rely on.
	if got := d.ActiveThreads(key("sort", "c1")); got != 0 {
		t.Fatalf("active after Peek = %d", got)
	}
	if got := d.Calls(key("sort", "c1")); got != 0 {
		t.Fatalf("calls after Peek = %d", got)
	}
	if _, err := d.Peek("ghost"); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("err = %v", err)
	}
}

func TestLookupMutexMatchesFastPath(t *testing.T) {
	d := buildDFM(t)
	implFast, release, err := d.BeginCall("compare")
	if err != nil {
		t.Fatal(err)
	}
	release()
	implSlow, err := d.LookupMutex("compare")
	if err != nil {
		t.Fatal(err)
	}
	outFast, _ := implFast(nil, nil)
	outSlow, _ := implSlow(nil, nil)
	if string(outFast) != string(outSlow) {
		t.Fatalf("fast %q != slow %q", outFast, outSlow)
	}
	if _, err := d.LookupMutex("missing"); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("err = %v", err)
	}
	if err := d.Disable(key("compare", "c1"), false); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LookupMutex("compare"); !errors.Is(err, ErrDisabledFunction) {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentCallsDuringReconfiguration(t *testing.T) {
	d := buildDFM(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Callers hammer the DFM while a configurator swaps compare back and
	// forth. Calls may fail with ErrDisabledFunction mid-swap (the paper
	// says callers must handle that) but must never crash or return the
	// wrong error.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				impl, release, err := d.BeginCall("compare")
				if err != nil {
					if !errors.Is(err, ErrDisabledFunction) {
						t.Errorf("unexpected err: %v", err)
						return
					}
					continue
				}
				if _, err := impl(nil, nil); err != nil {
					t.Error(err)
				}
				release()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if err := d.Disable(key("compare", "c1"), false); err != nil {
			t.Fatal(err)
		}
		if err := d.Enable(key("compare", "c2")); err != nil {
			t.Fatal(err)
		}
		if err := d.Disable(key("compare", "c2"), false); err != nil {
			t.Fatal(err)
		}
		if err := d.Enable(key("compare", "c1")); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSetFlagsUnknownEntry(t *testing.T) {
	d := New()
	if err := d.SetFlags(key("f", "c"), true, false, false); !errors.Is(err, ErrUnknownEntry) {
		t.Fatalf("err = %v, want ErrUnknownEntry", err)
	}
}

func TestBeginExportedCall(t *testing.T) {
	d := buildDFM(t)
	// sort is exported: external call succeeds.
	_, release, err := d.BeginExportedCall("sort")
	if err != nil {
		t.Fatal(err)
	}
	release()
	// compare is internal: external call refused, internal call fine.
	if _, _, err := d.BeginExportedCall("compare"); !errors.Is(err, ErrNotExported) {
		t.Fatalf("err = %v, want ErrNotExported", err)
	}
	if _, release, err := d.BeginCall("compare"); err != nil {
		t.Fatal(err)
	} else {
		release()
	}
	if _, _, err := d.BeginExportedCall("ghost"); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("err = %v, want ErrUnknownFunction", err)
	}
}

func TestExportFlagChangeVisibleToFastPath(t *testing.T) {
	d := buildDFM(t)
	if err := d.SetFlags(key("sort", "c1"), false, false, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.BeginExportedCall("sort"); !errors.Is(err, ErrNotExported) {
		t.Fatalf("err = %v, want ErrNotExported after unexport", err)
	}
}

func TestDropDepsMentioning(t *testing.T) {
	d := buildDFM(t)
	d.SetDeps([]Dependency{
		{Kind: DepA, FromFunc: "sort", FromComp: "c1", ToFunc: "compare"},
		{Kind: DepB, FromFunc: "sort", FromComp: "c1", ToFunc: "compare", ToComp: "c2"},
		{Kind: DepD, FromFunc: "sort", ToFunc: "compare"},
	})
	d.DropDepsMentioning("c2")
	deps := d.Deps()
	if len(deps) != 2 {
		t.Fatalf("deps = %v, want 2 (only the ToComp=c2 dep dropped)", deps)
	}
	d.DropDepsMentioning("c1")
	deps = d.Deps()
	if len(deps) != 1 || deps[0].Kind != DepD {
		t.Fatalf("deps = %v, want only type D", deps)
	}
}

func TestSetDepsCopies(t *testing.T) {
	d := New()
	deps := []Dependency{{Kind: DepD, FromFunc: "a", ToFunc: "b"}}
	d.SetDeps(deps)
	deps[0].FromFunc = "mutated"
	if d.Deps()[0].FromFunc != "a" {
		t.Fatal("SetDeps aliases caller slice")
	}
}
