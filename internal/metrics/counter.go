package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing, concurrency-safe event counter.
type Counter struct {
	name string
	n    atomic.Uint64
}

// NewCounter returns a zeroed counter with the given display name.
func NewCounter(name string) *Counter {
	return &Counter{name: name}
}

// Name returns the counter's display name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// CounterSet is a named group of counters, created on first use, so a
// subsystem can expose all of its event counts to a report in one call.
type CounterSet struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewCounterSet returns an empty set.
func NewCounterSet() *CounterSet {
	return &CounterSet{counters: make(map[string]*Counter)}
}

// Counter returns the counter registered under name, creating it at zero on
// first use. The returned pointer is stable: callers may cache it.
func (s *CounterSet) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = NewCounter(name)
		s.counters[name] = c
	}
	return c
}

// Lookup returns the counter registered under name, or nil if never
// created. Read paths (SLO guards, exporters) use this instead of Counter
// so probing for a name a producer never incremented doesn't materialise a
// zero counter in every future snapshot.
func (s *CounterSet) Lookup(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// snapshotMap returns name → value for every counter, shaped for the
// registry snapshot.
func (s *CounterSet) snapshotMap() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[string]uint64, len(s.counters))
	for name, c := range s.counters {
		m[name] = c.Value()
	}
	return m
}

// Snapshot returns every counter's current value, sorted by name.
func (s *CounterSet) Snapshot() []CounterValue {
	s.mu.Lock()
	out := make([]CounterValue, 0, len(s.counters))
	for name, c := range s.counters {
		out = append(out, CounterValue{Name: name, Value: c.Value()})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CounterValue is one counter's snapshot.
type CounterValue struct {
	Name  string
	Value uint64
}
