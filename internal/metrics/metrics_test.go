package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestSampleSummaryBasics(t *testing.T) {
	s := NewSample("calls")
	for _, d := range []time.Duration{10, 20, 30, 40, 50} {
		s.Observe(d * time.Microsecond)
	}
	sum := s.Summarize()
	if sum.Count != 5 {
		t.Fatalf("Count = %d, want 5", sum.Count)
	}
	if sum.Min != 10*time.Microsecond || sum.Max != 50*time.Microsecond {
		t.Fatalf("Min/Max = %v/%v", sum.Min, sum.Max)
	}
	if sum.Mean != 30*time.Microsecond {
		t.Fatalf("Mean = %v, want 30µs", sum.Mean)
	}
	if sum.Median != 30*time.Microsecond {
		t.Fatalf("Median = %v, want 30µs", sum.Median)
	}
	if sum.Name != "calls" {
		t.Fatalf("Name = %q", sum.Name)
	}
}

func TestSampleName(t *testing.T) {
	if got := NewSample("latency").Name(); got != "latency" {
		t.Fatalf("Name = %q", got)
	}
}

func TestSampleEmptySummary(t *testing.T) {
	sum := NewSample("empty").Summarize()
	if sum.Count != 0 || sum.Mean != 0 || sum.P95 != 0 {
		t.Fatalf("empty summary not zero: %+v", sum)
	}
}

func TestSampleConcurrentObserve(t *testing.T) {
	s := NewSample("conc")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				s.Observe(time.Microsecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := s.Count(); got != 800 {
		t.Fatalf("Count = %d, want 800", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	durs := []time.Duration{0, 100}
	if got := quantile(durs, 0.5); got != 50 {
		t.Fatalf("quantile(0.5) = %v, want 50", got)
	}
	if got := quantile(durs, 1.0); got != 100 {
		t.Fatalf("quantile(1.0) = %v, want 100", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Fatalf("quantile(nil) = %v, want 0", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E1: overhead", "kind", "mean")
	tb.AddRow("direct", "5ns")
	tb.AddRow("dfm-indirect", "12µs")
	out := tb.String()
	if !strings.Contains(out, "E1: overhead") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "dfm-indirect") || !strings.Contains(out, "12µs") {
		t.Fatalf("missing row content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{2200 * time.Millisecond, "2.20s"},
		{15 * time.Millisecond, "15.00ms"},
		{12 * time.Microsecond, "12.00µs"},
		{500 * time.Nanosecond, "500ns"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{550 * 1024, "550KB"},
		{5348000, "5.1MB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
