package metrics

import "sync/atomic"

// Gauge is a concurrency-safe instantaneous value (queue depth, in-flight
// requests, hosted-object count). Unlike Counter it can go down.
type Gauge struct {
	name string
	v    atomic.Int64
}

// NewGauge returns a zeroed gauge with the given display name.
func NewGauge(name string) *Gauge {
	return &Gauge{name: name}
}

// Name returns the gauge's display name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
