package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram("empty")
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not zero: count=%d sum=%v mean=%v", h.Count(), h.Sum(), h.Mean())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("Quantile on empty = %v, want 0", q)
	}
	snap := h.Snapshot()
	if snap.Count != 0 || snap.P99Ns != 0 {
		t.Fatalf("empty snapshot not zero: %+v", snap)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("lat")
	for i := 0; i < 1000; i++ {
		h.Observe(100 * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count())
	}
	if h.Sum() != 1000*100*time.Microsecond {
		t.Fatalf("Sum = %v", h.Sum())
	}
	if h.Mean() != 100*time.Microsecond {
		t.Fatalf("Mean = %v, want 100µs", h.Mean())
	}
	// All mass is in the bucket containing 100µs, i.e. [2^16, 2^17) ns.
	// Any quantile must land inside that bucket.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 65536 || got > 131072 {
			t.Fatalf("Quantile(%v) = %v, outside the containing bucket", q, got)
		}
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	h := NewHistogram("spread")
	// 90 fast observations, 10 slow ones: p50 must be fast-bucket, p99 slow.
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	if p50 > 10*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1µs", p50)
	}
	if p99 < time.Millisecond {
		t.Fatalf("p99 = %v, want ~10ms", p99)
	}
	if p50 >= p99 {
		t.Fatalf("quantiles not ordered: p50=%v p99=%v", p50, p99)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	h := NewHistogram("zero")
	h.Observe(0)
	h.Observe(-time.Second)
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("Quantile = %v, want 0 (zero bucket)", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("conc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(g+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
}

func TestBucketBounds(t *testing.T) {
	lo, hi := bucketBounds(0)
	if lo != 0 || hi != 0 {
		t.Fatalf("bucket 0 bounds = [%v, %v)", lo, hi)
	}
	lo, hi = bucketBounds(1)
	if lo != 1 || hi != 2 {
		t.Fatalf("bucket 1 bounds = [%v, %v), want [1, 2)", lo, hi)
	}
	lo, hi = bucketBounds(10)
	if lo != 512 || hi != 1024 {
		t.Fatalf("bucket 10 bounds = [%v, %v), want [512, 1024)", lo, hi)
	}
	lo, _ = bucketBounds(64)
	if uint64(lo) != 1<<63 {
		t.Fatalf("bucket 64 lo = %d", lo)
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge("inflight")
	if g.Name() != "inflight" {
		t.Fatalf("Name = %q", g.Name())
	}
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("Value = %d, want 1", g.Value())
	}
	g.Add(-5)
	if g.Value() != -4 {
		t.Fatalf("Value = %d, want -4", g.Value())
	}
	g.Set(42)
	if g.Value() != 42 {
		t.Fatalf("Value = %d, want 42", g.Value())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("stage.bind")
	h2 := r.Histogram("stage.bind")
	if h1 != h2 {
		t.Fatal("Histogram pointers not stable across calls")
	}
	if r.LookupHistogram("stage.bind") != h1 {
		t.Fatal("LookupHistogram did not find the registered histogram")
	}
	if r.LookupHistogram("nope") != nil {
		t.Fatal("LookupHistogram invented a histogram")
	}
	g1 := r.Gauge("queue")
	g2 := r.Gauge("queue")
	if g1 != g2 {
		t.Fatal("Gauge pointers not stable across calls")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Histogram("stage.dispatch").Observe(time.Millisecond)
	r.Gauge("queue").Set(3)
	r.RegisterGaugeFunc("hosted", func() int64 { return 7 })
	cs := NewCounterSet()
	cs.Counter("calls").Add(9)
	r.RegisterCounters("client", cs)

	snap := r.Snapshot()
	if snap.Histograms["stage.dispatch"].Count != 1 {
		t.Fatalf("histogram snapshot: %+v", snap.Histograms)
	}
	if snap.Gauges["queue"] != 3 {
		t.Fatalf("gauge snapshot: %+v", snap.Gauges)
	}
	if snap.Gauges["hosted"] != 7 {
		t.Fatalf("gauge-func snapshot: %+v", snap.Gauges)
	}
	if snap.Counters["client"]["calls"] != 9 {
		t.Fatalf("counter snapshot: %+v", snap.Counters)
	}
}

func TestSampleQuantileCachedSort(t *testing.T) {
	s := NewSample("q")
	for _, d := range []time.Duration{50, 10, 40, 20, 30} {
		s.Observe(d)
	}
	if got := s.Quantile(0.5); got != 30 {
		t.Fatalf("Quantile(0.5) = %v, want 30", got)
	}
	// A second query must see the same sorted view.
	if got := s.Quantile(0); got != 10 {
		t.Fatalf("Quantile(0) = %v, want 10", got)
	}
	// New observations re-dirty the sort.
	s.Observe(5)
	if got := s.Quantile(0); got != 5 {
		t.Fatalf("Quantile(0) after new obs = %v, want 5", got)
	}
	if got := NewSample("empty").Quantile(0.9); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
}

func TestHistogramQuantileClampedToMax(t *testing.T) {
	// A single observation of 100µs lands in bucket [65536ns, 131072ns).
	// Before the max clamp, Quantile(1) interpolated to the bucket's lower
	// bound and intermediate quantiles could exceed the true maximum; now
	// every quantile of a single-observation histogram is exactly the
	// observed value.
	tests := []struct {
		name string
		obs  []time.Duration
		q    float64
		want func(got time.Duration) bool
		desc string
	}{
		{
			name: "q0 single observation",
			obs:  []time.Duration{100 * time.Microsecond},
			q:    0,
			want: func(got time.Duration) bool { return got >= 65536 && got <= 100*time.Microsecond },
			desc: "within bucket and not above the observed value",
		},
		{
			name: "q1 single observation is exact",
			obs:  []time.Duration{100 * time.Microsecond},
			q:    1,
			want: func(got time.Duration) bool { return got == 100*time.Microsecond },
			desc: "exactly the recorded max",
		},
		{
			name: "q1 multiple observations is exact max",
			obs:  []time.Duration{time.Microsecond, 3 * time.Microsecond, 90 * time.Microsecond},
			q:    1,
			want: func(got time.Duration) bool { return got == 90*time.Microsecond },
			desc: "exactly the recorded max",
		},
		{
			name: "single bucket never exceeds max",
			obs: []time.Duration{
				70 * time.Microsecond, 70 * time.Microsecond, 70 * time.Microsecond,
				70 * time.Microsecond, 70 * time.Microsecond,
			},
			q:    0.99,
			want: func(got time.Duration) bool { return got <= 70*time.Microsecond && got >= 65536 },
			desc: "clamped to 70µs despite the bucket topping out at ~131µs",
		},
		{
			name: "q between buckets stays under max",
			obs:  []time.Duration{time.Microsecond, 100 * time.Microsecond},
			q:    0.9,
			want: func(got time.Duration) bool { return got <= 100*time.Microsecond },
			desc: "upper-bucket interpolation clamped to the true max",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := NewHistogram(tt.name)
			for _, d := range tt.obs {
				h.Observe(d)
			}
			got := h.Quantile(tt.q)
			if !tt.want(got) {
				t.Fatalf("Quantile(%v) = %v, want %s", tt.q, got, tt.desc)
			}
		})
	}
}

func TestHistogramMax(t *testing.T) {
	h := NewHistogram("max")
	if h.Max() != 0 {
		t.Fatalf("empty Max = %v", h.Max())
	}
	h.Observe(5 * time.Millisecond)
	h.Observe(time.Millisecond)
	h.Observe(-time.Second)
	if h.Max() != 5*time.Millisecond {
		t.Fatalf("Max = %v, want 5ms", h.Max())
	}
	if h.Snapshot().MaxNs != int64(5*time.Millisecond) {
		t.Fatalf("snapshot MaxNs = %d", h.Snapshot().MaxNs)
	}
}

func TestHistogramQuantileSaturatingCounts(t *testing.T) {
	// Bucket counts near uint64 saturation must not overflow the rank
	// arithmetic (it is float-based); set the atomics directly since
	// observing 2^63 times is not practical.
	h := NewHistogram("sat")
	h.buckets[10].Store(^uint64(0) / 2)
	h.buckets[20].Store(^uint64(0) / 2)
	h.count.Store(^uint64(0) - 1)
	h.max.Store(int64(1) << 20)
	for _, q := range []float64{0, 0.25, 0.75, 1} {
		got := h.Quantile(q)
		if got < 0 || got > time.Duration(int64(1)<<20) {
			t.Fatalf("Quantile(%v) = %v, outside [0, max]", q, got)
		}
	}
	if p25 := h.Quantile(0.25); p25 >= 1024 {
		t.Fatalf("p25 = %v, want inside bucket 10 [512, 1024)", p25)
	}
}

func TestQuantileBetween(t *testing.T) {
	h := NewHistogram("win")
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond)
	}
	prev := h.Counts()
	// The new window is all slow traffic; a lifetime quantile would still
	// report ~1µs at p50, the windowed one must not.
	for i := 0; i < 50; i++ {
		h.Observe(2 * time.Millisecond)
	}
	cur := h.Counts()
	p50, n := QuantileBetween(prev, cur, 0.5)
	if n != 50 {
		t.Fatalf("window count = %d, want 50", n)
	}
	if p50 < time.Millisecond || p50 > 2*time.Millisecond {
		t.Fatalf("windowed p50 = %v, want ~2ms", p50)
	}
	if p100, _ := QuantileBetween(prev, cur, 1); p100 != 2*time.Millisecond {
		t.Fatalf("windowed p100 = %v, want exactly 2ms", p100)
	}
	// An empty window reports zero samples and a zero estimate.
	if q, n := QuantileBetween(cur, cur, 0.99); q != 0 || n != 0 {
		t.Fatalf("empty window: q=%v n=%d", q, n)
	}
}

func TestRegistryLookupCounters(t *testing.T) {
	r := NewRegistry()
	if r.LookupCounters("client") != nil {
		t.Fatal("LookupCounters invented a set")
	}
	cs := NewCounterSet()
	r.RegisterCounters("client", cs)
	if r.LookupCounters("client") != cs {
		t.Fatal("LookupCounters did not return the registered set")
	}
}

func TestQuantileClamped(t *testing.T) {
	durs := []time.Duration{10, 20}
	if got := quantile(durs, -1); got != 10 {
		t.Fatalf("quantile(-1) = %v, want 10", got)
	}
	if got := quantile(durs, 2); got != 20 {
		t.Fatalf("quantile(2) = %v, want 20", got)
	}
}
