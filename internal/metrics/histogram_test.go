package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram("empty")
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not zero: count=%d sum=%v mean=%v", h.Count(), h.Sum(), h.Mean())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("Quantile on empty = %v, want 0", q)
	}
	snap := h.Snapshot()
	if snap.Count != 0 || snap.P99Ns != 0 {
		t.Fatalf("empty snapshot not zero: %+v", snap)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("lat")
	for i := 0; i < 1000; i++ {
		h.Observe(100 * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count())
	}
	if h.Sum() != 1000*100*time.Microsecond {
		t.Fatalf("Sum = %v", h.Sum())
	}
	if h.Mean() != 100*time.Microsecond {
		t.Fatalf("Mean = %v, want 100µs", h.Mean())
	}
	// All mass is in the bucket containing 100µs, i.e. [2^16, 2^17) ns.
	// Any quantile must land inside that bucket.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 65536 || got > 131072 {
			t.Fatalf("Quantile(%v) = %v, outside the containing bucket", q, got)
		}
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	h := NewHistogram("spread")
	// 90 fast observations, 10 slow ones: p50 must be fast-bucket, p99 slow.
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	if p50 > 10*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1µs", p50)
	}
	if p99 < time.Millisecond {
		t.Fatalf("p99 = %v, want ~10ms", p99)
	}
	if p50 >= p99 {
		t.Fatalf("quantiles not ordered: p50=%v p99=%v", p50, p99)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	h := NewHistogram("zero")
	h.Observe(0)
	h.Observe(-time.Second)
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("Quantile = %v, want 0 (zero bucket)", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("conc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(g+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
}

func TestBucketBounds(t *testing.T) {
	lo, hi := bucketBounds(0)
	if lo != 0 || hi != 0 {
		t.Fatalf("bucket 0 bounds = [%v, %v)", lo, hi)
	}
	lo, hi = bucketBounds(1)
	if lo != 1 || hi != 2 {
		t.Fatalf("bucket 1 bounds = [%v, %v), want [1, 2)", lo, hi)
	}
	lo, hi = bucketBounds(10)
	if lo != 512 || hi != 1024 {
		t.Fatalf("bucket 10 bounds = [%v, %v), want [512, 1024)", lo, hi)
	}
	lo, _ = bucketBounds(64)
	if uint64(lo) != 1<<63 {
		t.Fatalf("bucket 64 lo = %d", lo)
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge("inflight")
	if g.Name() != "inflight" {
		t.Fatalf("Name = %q", g.Name())
	}
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("Value = %d, want 1", g.Value())
	}
	g.Add(-5)
	if g.Value() != -4 {
		t.Fatalf("Value = %d, want -4", g.Value())
	}
	g.Set(42)
	if g.Value() != 42 {
		t.Fatalf("Value = %d, want 42", g.Value())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("stage.bind")
	h2 := r.Histogram("stage.bind")
	if h1 != h2 {
		t.Fatal("Histogram pointers not stable across calls")
	}
	if r.LookupHistogram("stage.bind") != h1 {
		t.Fatal("LookupHistogram did not find the registered histogram")
	}
	if r.LookupHistogram("nope") != nil {
		t.Fatal("LookupHistogram invented a histogram")
	}
	g1 := r.Gauge("queue")
	g2 := r.Gauge("queue")
	if g1 != g2 {
		t.Fatal("Gauge pointers not stable across calls")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Histogram("stage.dispatch").Observe(time.Millisecond)
	r.Gauge("queue").Set(3)
	r.RegisterGaugeFunc("hosted", func() int64 { return 7 })
	cs := NewCounterSet()
	cs.Counter("calls").Add(9)
	r.RegisterCounters("client", cs)

	snap := r.Snapshot()
	if snap.Histograms["stage.dispatch"].Count != 1 {
		t.Fatalf("histogram snapshot: %+v", snap.Histograms)
	}
	if snap.Gauges["queue"] != 3 {
		t.Fatalf("gauge snapshot: %+v", snap.Gauges)
	}
	if snap.Gauges["hosted"] != 7 {
		t.Fatalf("gauge-func snapshot: %+v", snap.Gauges)
	}
	if snap.Counters["client"]["calls"] != 9 {
		t.Fatalf("counter snapshot: %+v", snap.Counters)
	}
}

func TestSampleQuantileCachedSort(t *testing.T) {
	s := NewSample("q")
	for _, d := range []time.Duration{50, 10, 40, 20, 30} {
		s.Observe(d)
	}
	if got := s.Quantile(0.5); got != 30 {
		t.Fatalf("Quantile(0.5) = %v, want 30", got)
	}
	// A second query must see the same sorted view.
	if got := s.Quantile(0); got != 10 {
		t.Fatalf("Quantile(0) = %v, want 10", got)
	}
	// New observations re-dirty the sort.
	s.Observe(5)
	if got := s.Quantile(0); got != 5 {
		t.Fatalf("Quantile(0) after new obs = %v, want 5", got)
	}
	if got := NewSample("empty").Quantile(0.9); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
}

func TestQuantileClamped(t *testing.T) {
	durs := []time.Duration{10, 20}
	if got := quantile(durs, -1); got != 10 {
		t.Fatalf("quantile(-1) = %v, want 10", got)
	}
	if got := quantile(durs, 2); got != 20 {
		t.Fatalf("quantile(2) = %v, want 20", got)
	}
}
