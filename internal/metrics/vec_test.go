package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramVecStablePointersAndSnapshot(t *testing.T) {
	v := NewHistogramVec("invoke.latency", []string{"loid", "method"}, 8)
	h1 := v.With("1.2.3", "get")
	h2 := v.With("1.2.3", "get")
	if h1 != h2 {
		t.Fatal("same labels returned different children")
	}
	h1.Observe(time.Millisecond)
	v.With("1.2.3", "put").Observe(2 * time.Millisecond)
	kids := v.Children()
	if len(kids) != 2 {
		t.Fatalf("children = %d, want 2", len(kids))
	}
	if kids[0].Labels != `loid="1.2.3",method="get"` {
		t.Fatalf("label key = %q", kids[0].Labels)
	}
	if got := h1.Name(); got != `invoke.latency{loid="1.2.3",method="get"}` {
		t.Fatalf("child name = %q", got)
	}
}

func TestHistogramVecOverflow(t *testing.T) {
	v := NewHistogramVec("lat", []string{"loid"}, 2)
	a := v.With("a")
	bb := v.With("b")
	c := v.With("c") // over the bound: collapses into `other`
	d := v.With("d")
	if c != d {
		t.Fatal("overflow children must share one histogram")
	}
	if c == a || c == bb {
		t.Fatal("overflow child aliases a real child")
	}
	c.Observe(time.Millisecond)
	found := false
	for _, kid := range v.Children() {
		if kid.Labels == `loid="other"` {
			found = true
			if kid.Metric.Count() != 1 {
				t.Fatalf("overflow count = %d", kid.Metric.Count())
			}
		}
	}
	if !found {
		t.Fatal("no `other` child in snapshot")
	}
	// Existing children keep resolving after the bound is hit.
	if v.With("a") != a {
		t.Fatal("existing child lost after overflow")
	}
}

func TestCounterVecSumAndMatch(t *testing.T) {
	v := NewCounterVec("invoke.errors", []string{"loid", "method"}, 16)
	v.With("1.1.1", "get").Add(3)
	v.With("1.1.1", "put").Add(2)
	v.With("2.2.2", "get").Add(10)
	if got := v.Sum(nil); got != 15 {
		t.Fatalf("total = %d, want 15", got)
	}
	if got := v.Sum(MatchLabel("loid", "1.1.1")); got != 5 {
		t.Fatalf("cohort 1.1.1 = %d, want 5", got)
	}
	if got := v.Sum(MatchAnyLabel("loid", []string{"1.1.1", "2.2.2"})); got != 15 {
		t.Fatalf("union cohort = %d, want 15", got)
	}
	if got := v.Sum(MatchLabel("loid", "9.9.9")); got != 0 {
		t.Fatalf("empty cohort = %d, want 0", got)
	}
	// A value that is a substring of another must not match.
	v2 := NewCounterVec("c", []string{"loid"}, 8)
	v2.With("1.1.1").Add(1)
	v2.With("11.1.1").Add(100)
	if got := v2.Sum(MatchLabel("loid", "1.1.1")); got != 1 {
		t.Fatalf("substring label matched: %d, want 1", got)
	}
}

func TestCounterVecOverflow(t *testing.T) {
	v := NewCounterVec("c", []string{"k"}, 1)
	v.With("a").Inc()
	v.With("b").Inc()
	v.With("z").Inc()
	if v.With("b") != v.With("z") {
		t.Fatal("overflow counters must share")
	}
	if got := v.Sum(MatchLabel("k", OverflowLabel)); got != 2 {
		t.Fatalf("overflow sum = %d, want 2", got)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	v := NewCounterVec("c", []string{"k"}, 8)
	v.With("a\"b\\c\nd").Inc()
	kids := v.Children()
	if len(kids) != 1 {
		t.Fatalf("children = %d", len(kids))
	}
	want := `k="a\"b\\c\nd"`
	if kids[0].Labels != want {
		t.Fatalf("escaped labels = %q, want %q", kids[0].Labels, want)
	}
}

func TestVecPadValues(t *testing.T) {
	v := NewCounterVec("c", []string{"a", "b"}, 8)
	v.With("x").Inc() // miscounted call: second value renders empty
	if kids := v.Children(); kids[0].Labels != `a="x",b=""` {
		t.Fatalf("padded labels = %q", kids[0].Labels)
	}
}

func TestCohortWindowBurn(t *testing.T) {
	calls := NewCounterVec("invoke.calls", []string{"loid"}, 16)
	errs := NewCounterVec("invoke.errors", []string{"loid"}, 16)
	calls.With("canary").Add(1000)
	errs.With("canary").Add(100)
	calls.With("base").Add(1000)

	w := NewCohortWindow(calls, errs, MatchLabel("loid", "canary"))
	w.Prime()
	// Pre-prime traffic is excluded.
	if burn, n := w.Burn(0.001); burn != 0 || n != 0 {
		t.Fatalf("primed window saw pre-existing traffic: burn %v n %d", burn, n)
	}
	calls.With("canary").Add(1000)
	errs.With("canary").Add(10) // 1% error rate against a 0.1% budget → burn 10
	calls.With("base").Add(5000)
	errs.With("base").Add(5000) // baseline noise must not leak into the cohort
	burn, n := w.Burn(0.001)
	if n != 1000 {
		t.Fatalf("window calls = %d, want 1000", n)
	}
	if burn < 9.9 || burn > 10.1 {
		t.Fatalf("burn = %v, want 10", burn)
	}
	// Baseline cohort: at-budget errors burn exactly 1.
	wb := NewCohortWindow(calls, errs, MatchLabel("loid", "base"))
	base, bn := wb.Burn(1.0)
	if bn != 6000 || base < 0.83 || base > 0.84 {
		t.Fatalf("baseline burn = %v over %d", base, bn)
	}
	// Zero budget or empty window burns zero.
	if burn, _ := w.Burn(0); burn != 0 {
		t.Fatal("zero budget burned")
	}
	empty := NewCohortWindow(calls, errs, MatchLabel("loid", "nobody"))
	empty.Prime()
	if burn, n := empty.Burn(0.1); burn != 0 || n != 0 {
		t.Fatalf("empty cohort burn = %v n %d", burn, n)
	}
}

func TestRegistryVecAccessors(t *testing.T) {
	r := NewRegistry()
	if r.LookupHistogramVec("hv") != nil || r.LookupCounterVec("cv") != nil || r.LookupGauge("g") != nil {
		t.Fatal("lookup created metrics on miss")
	}
	hv := r.HistogramVec("hv", []string{"loid"}, 8)
	if r.HistogramVec("hv", []string{"ignored"}, 1) != hv || r.LookupHistogramVec("hv") != hv {
		t.Fatal("histogram vec identity broken")
	}
	cv := r.CounterVec("cv", []string{"loid"}, 8)
	if r.LookupCounterVec("cv") != cv {
		t.Fatal("counter vec identity broken")
	}
	g := r.Gauge("g")
	if r.LookupGauge("g") != g {
		t.Fatal("LookupGauge missed an existing gauge")
	}

	hv.With("1.2.3").Observe(time.Millisecond)
	cv.With("1.2.3").Add(7)
	snap := r.Snapshot()
	if hs, ok := snap.Histograms[`hv{loid="1.2.3"}`]; !ok || hs.Count != 1 {
		t.Fatalf("vec child missing from snapshot: %+v", snap.Histograms)
	}
	if snap.Counters["cv"][`loid="1.2.3"`] != 7 {
		t.Fatalf("counter vec missing from snapshot: %+v", snap.Counters)
	}
}

func TestCounterSetLookup(t *testing.T) {
	cs := NewCounterSet()
	if cs.Lookup("missing") != nil {
		t.Fatal("Lookup created a counter")
	}
	if len(cs.Snapshot()) != 0 {
		t.Fatal("probing polluted the set")
	}
	c := cs.Counter("hits")
	if cs.Lookup("hits") != c {
		t.Fatal("Lookup missed an existing counter")
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"client.invoke":      "client_invoke",
		"server.n-1.depth":   "server_n_1_depth",
		"ok_name:sub":        "ok_name:sub",
		"9starts.with.digit": "_starts_with_digit",
		"":                   "_",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Fatalf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteExposition(t *testing.T) {
	r := NewRegistry()
	r.Histogram("client.invoke").Observe(time.Millisecond)
	r.Histogram("client.invoke").Observe(3 * time.Millisecond)
	r.Gauge("queue.depth").Set(4)
	r.RegisterGaugeFunc("hosted.objects", func() int64 { return 11 })
	cs := NewCounterSet()
	cs.Counter("rebinds").Add(2)
	r.RegisterCounters("client.stats", cs)
	r.HistogramVec("invoke.latency", []string{"loid", "method"}, 8).With("1.2.3", "get").Observe(2 * time.Millisecond)
	r.CounterVec("invoke.errors", []string{"loid", "method"}, 8).With("1.2.3", "get").Add(5)

	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE client_invoke_seconds histogram",
		`client_invoke_seconds_bucket{le="+Inf"} 2`,
		"client_invoke_seconds_count 2",
		"# TYPE queue_depth gauge\nqueue_depth 4",
		"hosted_objects 11",
		"# TYPE client_stats_rebinds_total counter\nclient_stats_rebinds_total 2",
		`invoke_latency_seconds_bucket{loid="1.2.3",method="get",le="+Inf"} 1`,
		`invoke_latency_seconds_count{loid="1.2.3",method="get"} 1`,
		`invoke_errors_total{loid="1.2.3",method="get"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be monotonic per series.
	if strings.Count(out, "client_invoke_seconds_bucket") < 2 {
		t.Fatalf("expected at least two bucket lines:\n%s", out)
	}
}
