package metrics

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter("hits")
	if c.Name() != "hits" || c.Value() != 0 {
		t.Fatalf("fresh counter: name=%q value=%d", c.Name(), c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d, want 5", c.Value())
	}
}

func TestCounterConcurrentAdd(t *testing.T) {
	c := NewCounter("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("value = %d, want 8000", c.Value())
	}
}

func TestCounterSetStablePointersAndSnapshot(t *testing.T) {
	s := NewCounterSet()
	a := s.Counter("b-second")
	if s.Counter("b-second") != a {
		t.Fatal("Counter returned a different pointer for the same name")
	}
	a.Add(2)
	s.Counter("a-first").Inc()

	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}
	if snap[0].Name != "a-first" || snap[0].Value != 1 {
		t.Fatalf("snap[0] = %+v", snap[0])
	}
	if snap[1].Name != "b-second" || snap[1].Value != 2 {
		t.Fatalf("snap[1] = %+v", snap[1])
	}
}
