package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// These tests exist to run under `go test -race -shuffle=on`: concurrent
// create-on-first-use against snapshot/exposition readers is exactly what a
// live node does (hot paths registering metrics while the SLO guard and
// /metrics scrape), and the registry had no concurrency coverage before.

func TestRegistryConcurrentCreateAndSnapshot(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Histogram(fmt.Sprintf("h.%d.%d", w, i%17)).Observe(time.Duration(i))
				r.Gauge(fmt.Sprintf("g.%d.%d", w, i%13)).Set(int64(i))
				r.CounterVec("calls", []string{"loid"}, 64).With(fmt.Sprintf("%d.%d", w, i%7)).Inc()
				r.HistogramVec("lat", []string{"loid"}, 64).With(fmt.Sprintf("%d.%d", w, i%7)).Observe(time.Duration(i))
				if i%31 == 0 {
					r.RegisterGaugeFunc(fmt.Sprintf("gf.%d", w), func() int64 { return int64(i) })
					cs := NewCounterSet()
					cs.Counter("x").Inc()
					r.RegisterCounters(fmt.Sprintf("cs.%d", w), cs)
				}
			}
		}(w)
	}
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Snapshot()
			var b strings.Builder
			_ = r.WriteExposition(&b)
			_ = r.LookupGauge("g.0.0")
			_ = r.LookupHistogramVec("lat")
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	snap := r.Snapshot()
	if len(snap.Histograms) == 0 || len(snap.Gauges) == 0 || len(snap.Counters) == 0 {
		t.Fatalf("snapshot empty after concurrent churn: %d/%d/%d",
			len(snap.Histograms), len(snap.Gauges), len(snap.Counters))
	}
}

func TestHistogramVecConcurrentWithAndObserve(t *testing.T) {
	v := NewHistogramVec("lat", []string{"loid", "method"}, 32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				// More label sets than the bound, so overflow creation races
				// with regular creation and with Children().
				h := v.With(fmt.Sprintf("%d.%d", w, i%10), "m")
				h.Observe(time.Duration(i))
				if i%50 == 0 {
					_ = v.Children()
					_ = NewCohortWindow(nil, nil, nil)
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, kid := range v.Children() {
		total += kid.Metric.Count()
	}
	if total != 8*500 {
		t.Fatalf("observations lost under concurrency: %d, want %d", total, 8*500)
	}
}

func TestCounterVecConcurrentSum(t *testing.T) {
	v := NewCounterVec("calls", []string{"loid"}, 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.With(fmt.Sprintf("l%d", w%4)).Inc()
				if i%100 == 0 {
					_ = v.Sum(MatchLabel("loid", "l0"))
				}
			}
		}(w)
	}
	wg.Wait()
	if got := v.Sum(nil); got != 8000 {
		t.Fatalf("sum = %d, want 8000", got)
	}
}
