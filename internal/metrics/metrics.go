// Package metrics provides lightweight measurement primitives used by the
// experiment harness: duration samples, summary statistics, and fixed-width
// table rendering for the paper-reproduction reports.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sample accumulates duration observations and computes summary statistics.
// It is safe for concurrent use. The observation slice is kept sorted lazily:
// Observe marks it dirty and the first quantile query after a batch of
// observations sorts in place once, so repeated Summarize/Quantile calls do
// not re-sort or copy.
type Sample struct {
	mu     sync.Mutex
	name   string
	durs   []time.Duration
	sorted bool
}

// NewSample returns an empty sample with the given display name.
func NewSample(name string) *Sample {
	return &Sample{name: name, sorted: true}
}

// Name returns the sample's display name.
func (s *Sample) Name() string { return s.name }

// Observe records one duration.
func (s *Sample) Observe(d time.Duration) {
	s.mu.Lock()
	s.durs = append(s.durs, d)
	s.sorted = false
	s.mu.Unlock()
}

// ensureSortedLocked sorts the observations in place if new ones arrived
// since the last sort. Callers must hold s.mu.
func (s *Sample) ensureSortedLocked() {
	if !s.sorted {
		sort.Slice(s.durs, func(i, j int) bool { return s.durs[i] < s.durs[j] })
		s.sorted = true
	}
}

// Count returns the number of observations recorded so far.
func (s *Sample) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.durs)
}

// Summary holds order statistics over a set of duration observations.
type Summary struct {
	Name   string
	Count  int
	Min    time.Duration
	Max    time.Duration
	Mean   time.Duration
	Median time.Duration
	P95    time.Duration
	Stddev time.Duration
}

// Summarize computes order statistics. A zero-value Summary (apart from the
// name) is returned for an empty sample.
func (s *Sample) Summarize() Summary {
	s.mu.Lock()
	defer s.mu.Unlock()

	sum := Summary{Name: s.name, Count: len(s.durs)}
	if len(s.durs) == 0 {
		return sum
	}
	s.ensureSortedLocked()
	durs := s.durs
	sum.Min = durs[0]
	sum.Max = durs[len(durs)-1]
	sum.Median = quantile(durs, 0.5)
	sum.P95 = quantile(durs, 0.95)

	var total float64
	for _, d := range durs {
		total += float64(d)
	}
	mean := total / float64(len(durs))
	sum.Mean = time.Duration(mean)

	var varSum float64
	for _, d := range durs {
		diff := float64(d) - mean
		varSum += diff * diff
	}
	sum.Stddev = time.Duration(math.Sqrt(varSum / float64(len(durs))))
	return sum
}

// Quantile returns the interpolated q-quantile (q in [0,1]) of the
// observations, or zero for an empty sample.
func (s *Sample) Quantile(q float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.durs) == 0 {
		return 0
	}
	s.ensureSortedLocked()
	return quantile(s.durs, q)
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// Table renders aligned text tables for the experiment reports.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatDuration renders d with three significant figures and an
// appropriate unit, matching the precision the paper reports results at.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

// FormatBytes renders a byte count in KB/MB as the paper does (550 K, 5.1 MB).
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
