package metrics

import "sync"

// Registry is a per-node metrics namespace: histograms and gauges are
// created on first use (stable pointers, so hot paths cache them), and
// whole CounterSets and gauge functions maintained elsewhere (client stats,
// dispatcher hosted-object counts) register under a name. Snapshot flattens
// everything for the obs layer's JSON export and the harness's
// stage-breakdown tables.
type Registry struct {
	mu         sync.Mutex
	histograms map[string]*Histogram
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	counters   map[string]*CounterSet
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		histograms: make(map[string]*Histogram),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		counters:   make(map[string]*CounterSet),
	}
}

// Histogram returns the histogram registered under name, creating it on
// first use. The returned pointer is stable: callers may cache it.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(name)
		r.histograms[name] = h
	}
	return h
}

// LookupHistogram returns the named histogram or nil without creating one.
func (r *Registry) LookupHistogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.histograms[name]
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = NewGauge(name)
		r.gauges[name] = g
	}
	return g
}

// RegisterGaugeFunc registers a callback sampled at snapshot time (for
// values already maintained elsewhere, like a dispatcher's hosted-object
// count). Re-registering a name replaces the previous callback.
func (r *Registry) RegisterGaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// RegisterCounters registers a CounterSet maintained elsewhere under name.
// Re-registering a name replaces the previous set.
func (r *Registry) RegisterCounters(name string, cs *CounterSet) {
	r.mu.Lock()
	r.counters[name] = cs
	r.mu.Unlock()
}

// LookupCounters returns the CounterSet registered under name, or nil if
// none is registered. Unlike Histogram there is no create-on-miss: counter
// sets are owned by their producers (client stats, dispatchers) and only
// registered here for export and SLO evaluation.
func (r *Registry) LookupCounters(name string) *CounterSet {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// RegistrySnapshot is a point-in-time flattening of a registry, shaped for
// JSON export.
type RegistrySnapshot struct {
	Counters   map[string]map[string]uint64 `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot flattens the registry. Gauge functions are invoked on the
// calling goroutine and must be fast and safe for concurrent use.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	gaugeFuncs := make(map[string]func() int64, len(r.gaugeFuncs))
	for name, fn := range r.gaugeFuncs {
		gaugeFuncs[name] = fn
	}
	counters := make(map[string]*CounterSet, len(r.counters))
	for name, cs := range r.counters {
		counters[name] = cs
	}
	r.mu.Unlock()

	snap := RegistrySnapshot{
		Counters:   make(map[string]map[string]uint64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)+len(gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for name, h := range hists {
		snap.Histograms[name] = h.Snapshot()
	}
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, fn := range gaugeFuncs {
		snap.Gauges[name] = fn()
	}
	for name, cs := range counters {
		vals := cs.Snapshot()
		m := make(map[string]uint64, len(vals))
		for _, cv := range vals {
			m[cv.Name] = cv.Value
		}
		snap.Counters[name] = m
	}
	return snap
}
