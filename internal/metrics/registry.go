package metrics

import "sync"

// Registry is a per-node metrics namespace: histograms and gauges are
// created on first use (stable pointers, so hot paths cache them), and
// whole CounterSets and gauge functions maintained elsewhere (client stats,
// dispatcher hosted-object counts) register under a name. Snapshot flattens
// everything for the obs layer's JSON export and the harness's
// stage-breakdown tables.
type Registry struct {
	mu            sync.Mutex
	histograms    map[string]*Histogram
	gauges        map[string]*Gauge
	gaugeFuncs    map[string]func() int64
	counters      map[string]*CounterSet
	histogramVecs map[string]*HistogramVec
	counterVecs   map[string]*CounterVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		histograms:    make(map[string]*Histogram),
		gauges:        make(map[string]*Gauge),
		gaugeFuncs:    make(map[string]func() int64),
		counters:      make(map[string]*CounterSet),
		histogramVecs: make(map[string]*HistogramVec),
		counterVecs:   make(map[string]*CounterVec),
	}
}

// Histogram returns the histogram registered under name, creating it on
// first use. The returned pointer is stable: callers may cache it.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(name)
		r.histograms[name] = h
	}
	return h
}

// LookupHistogram returns the named histogram or nil without creating one.
func (r *Registry) LookupHistogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.histograms[name]
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = NewGauge(name)
		r.gauges[name] = g
	}
	return g
}

// LookupGauge returns the named gauge or nil without creating one — the
// read-path counterpart of Gauge, so observers (SLO guards, exporters,
// status endpoints) don't litter the registry with empty metrics when they
// probe for a name that no producer registered.
func (r *Registry) LookupGauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// HistogramVec returns the labelled histogram family registered under name,
// creating it on first use with the given label names and cardinality bound
// (DefaultVecCardinality if maxCard <= 0). The first registration fixes the
// label schema; later calls return the existing family regardless of the
// label arguments, so producers should agree on a single declaration site.
func (r *Registry) HistogramVec(name string, labelNames []string, maxCard int) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.histogramVecs[name]
	if !ok {
		v = NewHistogramVec(name, labelNames, maxCard)
		r.histogramVecs[name] = v
	}
	return v
}

// LookupHistogramVec returns the named family or nil without creating one.
func (r *Registry) LookupHistogramVec(name string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.histogramVecs[name]
}

// CounterVec returns the labelled counter family registered under name,
// creating it on first use; the same schema-fixing rule as HistogramVec
// applies.
func (r *Registry) CounterVec(name string, labelNames []string, maxCard int) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counterVecs[name]
	if !ok {
		v = NewCounterVec(name, labelNames, maxCard)
		r.counterVecs[name] = v
	}
	return v
}

// LookupCounterVec returns the named family or nil without creating one.
func (r *Registry) LookupCounterVec(name string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counterVecs[name]
}

// RegisterGaugeFunc registers a callback sampled at snapshot time (for
// values already maintained elsewhere, like a dispatcher's hosted-object
// count). Re-registering a name replaces the previous callback.
func (r *Registry) RegisterGaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// RegisterCounters registers a CounterSet maintained elsewhere under name.
// Re-registering a name replaces the previous set.
func (r *Registry) RegisterCounters(name string, cs *CounterSet) {
	r.mu.Lock()
	r.counters[name] = cs
	r.mu.Unlock()
}

// LookupCounters returns the CounterSet registered under name, or nil if
// none is registered. Unlike Histogram there is no create-on-miss: counter
// sets are owned by their producers (client stats, dispatchers) and only
// registered here for export and SLO evaluation.
func (r *Registry) LookupCounters(name string) *CounterSet {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// RegistrySnapshot is a point-in-time flattening of a registry, shaped for
// JSON export.
type RegistrySnapshot struct {
	Counters   map[string]map[string]uint64 `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// gaugeFuncSample is scratch for deferring gauge-callback invocation past
// the registry lock.
type gaugeFuncSample struct {
	name string
	fn   func() int64
}

// Snapshot flattens the registry. Gauge functions are invoked on the
// calling goroutine and must be fast and safe for concurrent use.
//
// The output maps are built directly under the registry lock — histogram,
// gauge, and counter reads are all atomic, so no intermediate copies of the
// registry's maps are needed (this path used to allocate four throwaway
// maps per call, and the SLO guard snapshots every probe interval). Only
// the gauge callbacks are deferred past the unlock: they run arbitrary
// external code (dispatcher sizes, pool stats) that must not execute under
// the registry mutex.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	snap := RegistrySnapshot{
		Counters:   make(map[string]map[string]uint64, len(r.counters)+len(r.counterVecs)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, h := range r.histograms {
		snap.Histograms[name] = h.Snapshot()
	}
	for _, v := range r.histogramVecs {
		for _, child := range v.Children() {
			snap.Histograms[child.Metric.Name()] = child.Metric.Snapshot()
		}
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, cs := range r.counters {
		snap.Counters[name] = cs.snapshotMap()
	}
	for name, v := range r.counterVecs {
		m := make(map[string]uint64, 8)
		for _, child := range v.Children() {
			m[child.Labels] = child.Metric.Value()
		}
		snap.Counters[name] = m
	}
	deferred := make([]gaugeFuncSample, 0, len(r.gaugeFuncs))
	for name, fn := range r.gaugeFuncs {
		deferred = append(deferred, gaugeFuncSample{name, fn})
	}
	r.mu.Unlock()

	for _, s := range deferred {
		snap.Gauges[s.name] = s.fn()
	}
	return snap
}
