package metrics

// CohortWindow evaluates an error-budget burn rate for a cohort of children
// within a pair of counter vectors (calls and errors sharing label sets).
// It follows the anchored-window model the supervisor's SLO guard already
// uses for histograms: Prime anchors the window at the current totals, and
// each Burn call reports the burn rate accumulated since the anchor — so a
// bake period evaluates only its own traffic, per cohort (e.g. the canary
// wave's LOIDs vs. the baseline fleet), not process-lifetime aggregates.
type CohortWindow struct {
	calls *CounterVec
	errs  *CounterVec
	match func(labels string) bool

	primed     bool
	prevCalls  uint64
	prevErrors uint64
}

// NewCohortWindow returns a window over the cohort of children selected by
// match (nil = every child) in the given calls/errors vectors. Either
// vector may be nil; missing vectors contribute zero.
func NewCohortWindow(calls, errs *CounterVec, match func(labels string) bool) *CohortWindow {
	return &CohortWindow{calls: calls, errs: errs, match: match}
}

// sums reads current cohort totals.
func (w *CohortWindow) sums() (calls, errs uint64) {
	if w.calls != nil {
		calls = w.calls.Sum(w.match)
	}
	if w.errs != nil {
		errs = w.errs.Sum(w.match)
	}
	return calls, errs
}

// Prime anchors the window at the current totals. Children created after
// priming still count fully — they start at zero, which is also the
// anchor's implicit value for them.
func (w *CohortWindow) Prime() {
	w.prevCalls, w.prevErrors = w.sums()
	w.primed = true
}

// Delta returns the calls and errors accumulated in the window since Prime
// (or since construction, treating the anchor as zero, when never primed).
func (w *CohortWindow) Delta() (calls, errs uint64) {
	curCalls, curErrs := w.sums()
	if !w.primed {
		return curCalls, curErrs
	}
	if curCalls > w.prevCalls {
		calls = curCalls - w.prevCalls
	}
	if curErrs > w.prevErrors {
		errs = curErrs - w.prevErrors
	}
	return calls, errs
}

// Burn reports the window's error-budget burn rate: the observed error rate
// divided by budget (the SLO's allowed error fraction, e.g. 0.001 for
// 99.9%). A burn of 1.0 means errors are arriving exactly at the budgeted
// rate; 10.0 means the budget is being consumed ten times too fast. Also
// returns the window's call count so callers can require a minimum sample
// size before acting. A zero-call window or non-positive budget burns 0.
func (w *CohortWindow) Burn(budget float64) (burn float64, calls uint64) {
	calls, errs := w.Delta()
	if calls == 0 || budget <= 0 {
		return 0, calls
	}
	rate := float64(errs) / float64(calls)
	return rate / budget, calls
}
