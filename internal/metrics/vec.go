package metrics

import (
	"sort"
	"strings"
	"sync"
)

// OverflowLabel is the label value dimensioned metrics collapse into once a
// vector reaches its cardinality bound. Bounding cardinality is what makes
// per-LOID metrics safe on a node hosting an unbounded number of objects: a
// scrape stays O(bound), and a label-cardinality explosion degrades into one
// aggregated child instead of unbounded memory.
const OverflowLabel = "other"

// DefaultVecCardinality bounds how many distinct label combinations a vector
// tracks before overflowing into the `other` child.
const DefaultVecCardinality = 512

// labelKey renders label names/values as a canonical, exposition-ready
// string: `name="value",...` in the order the label names were declared.
// Values are escaped per the Prometheus text format.
func labelKey(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double-quote, and newline per the
// Prometheus text exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// HistogramVec is a family of histograms sharing one name, keyed by label
// values (e.g. invoke latency keyed by LOID x method). Children are created
// on first use with stable pointers — hot paths resolve a child once (one
// mutex-guarded map lookup) and then observe lock-free. Cardinality is
// bounded: past maxCard distinct label sets, observations collapse into a
// single `other` child so a misbehaving label source cannot exhaust memory.
type HistogramVec struct {
	name    string
	labels  []string
	maxCard int

	mu       sync.Mutex
	children map[string]*Histogram // keyed by canonical label string
	overflow *Histogram
}

// NewHistogramVec returns a histogram family with the given label names,
// tracking at most maxCard distinct label sets (DefaultVecCardinality if
// maxCard <= 0).
func NewHistogramVec(name string, labelNames []string, maxCard int) *HistogramVec {
	if maxCard <= 0 {
		maxCard = DefaultVecCardinality
	}
	return &HistogramVec{
		name:     name,
		labels:   append([]string(nil), labelNames...),
		maxCard:  maxCard,
		children: make(map[string]*Histogram),
	}
}

// Name returns the family name.
func (v *HistogramVec) Name() string { return v.name }

// LabelNames returns the declared label names.
func (v *HistogramVec) LabelNames() []string { return v.labels }

// With returns the child histogram for the given label values (one value per
// declared label name; missing values render empty). The pointer is stable —
// callers should cache it next to whatever keys their hot path already
// resolves. At the cardinality bound, new label sets share the `other`
// child.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	key := labelKey(v.labels, padValues(labelValues, len(v.labels)))
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[key]; ok {
		return h
	}
	if len(v.children) >= v.maxCard {
		return v.overflowLocked()
	}
	h := NewHistogram(v.name + "{" + key + "}")
	v.children[key] = h
	return h
}

// overflowLocked lazily creates the shared overflow child, registering it
// under every label set to `other`.
func (v *HistogramVec) overflowLocked() *Histogram {
	if v.overflow == nil {
		vals := make([]string, len(v.labels))
		for i := range vals {
			vals[i] = OverflowLabel
		}
		key := labelKey(v.labels, vals)
		v.overflow = NewHistogram(v.name + "{" + key + "}")
		v.children[key] = v.overflow
	}
	return v.overflow
}

// Children returns each child keyed by its canonical label string, sorted by
// key, paired for iteration by snapshots and the exposition writer.
func (v *HistogramVec) Children() []VecChild[*Histogram] {
	v.mu.Lock()
	out := make([]VecChild[*Histogram], 0, len(v.children))
	for key, h := range v.children {
		out = append(out, VecChild[*Histogram]{Labels: key, Metric: h})
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Labels < out[j].Labels })
	return out
}

// VecChild pairs a child metric with its canonical label string.
type VecChild[M any] struct {
	Labels string
	Metric M
}

// CounterVec is a family of counters sharing one name, keyed by label
// values, with the same stable-pointer and bounded-cardinality contract as
// HistogramVec.
type CounterVec struct {
	name    string
	labels  []string
	maxCard int

	mu       sync.Mutex
	children map[string]*Counter
	overflow *Counter
}

// NewCounterVec returns a counter family with the given label names,
// tracking at most maxCard distinct label sets (DefaultVecCardinality if
// maxCard <= 0).
func NewCounterVec(name string, labelNames []string, maxCard int) *CounterVec {
	if maxCard <= 0 {
		maxCard = DefaultVecCardinality
	}
	return &CounterVec{
		name:     name,
		labels:   append([]string(nil), labelNames...),
		maxCard:  maxCard,
		children: make(map[string]*Counter),
	}
}

// Name returns the family name.
func (v *CounterVec) Name() string { return v.name }

// LabelNames returns the declared label names.
func (v *CounterVec) LabelNames() []string { return v.labels }

// With returns the child counter for the given label values; stable
// pointer, `other` overflow at the cardinality bound.
func (v *CounterVec) With(labelValues ...string) *Counter {
	key := labelKey(v.labels, padValues(labelValues, len(v.labels)))
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	if len(v.children) >= v.maxCard {
		if v.overflow == nil {
			vals := make([]string, len(v.labels))
			for i := range vals {
				vals[i] = OverflowLabel
			}
			okey := labelKey(v.labels, vals)
			v.overflow = NewCounter(v.name + "{" + okey + "}")
			v.children[okey] = v.overflow
		}
		return v.overflow
	}
	c := NewCounter(v.name + "{" + key + "}")
	v.children[key] = c
	return c
}

// Children returns each child keyed by its canonical label string, sorted.
func (v *CounterVec) Children() []VecChild[*Counter] {
	v.mu.Lock()
	out := make([]VecChild[*Counter], 0, len(v.children))
	for key, c := range v.children {
		out = append(out, VecChild[*Counter]{Labels: key, Metric: c})
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Labels < out[j].Labels })
	return out
}

// Sum totals the children whose canonical label string satisfies match
// (every child when match is nil). This is the cohort primitive: burn-rate
// windows sum `loid="x"` children for the canary set against the rest.
func (v *CounterVec) Sum(match func(labels string) bool) uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var total uint64
	for key, c := range v.children {
		if match == nil || match(key) {
			total += c.Value()
		}
	}
	return total
}

// MatchLabel returns a predicate matching children whose canonical label
// string carries name="value".
func MatchLabel(name, value string) func(labels string) bool {
	needle := name + `="` + escapeLabelValue(value) + `"`
	return func(labels string) bool {
		// Canonical strings separate pairs with commas, so a needle match is
		// exact at a boundary.
		idx := strings.Index(labels, needle)
		for idx >= 0 {
			end := idx + len(needle)
			if (idx == 0 || labels[idx-1] == ',') && (end == len(labels) || labels[end] == ',') {
				return true
			}
			next := strings.Index(labels[idx+1:], needle)
			if next < 0 {
				return false
			}
			idx += 1 + next
		}
		return false
	}
}

// MatchAnyLabel returns a predicate matching children carrying name="v" for
// any v in values.
func MatchAnyLabel(name string, values []string) func(labels string) bool {
	preds := make([]func(string) bool, len(values))
	for i, v := range values {
		preds[i] = MatchLabel(name, v)
	}
	return func(labels string) bool {
		for _, p := range preds {
			if p(labels) {
				return true
			}
		}
		return false
	}
}

// padValues right-pads values with empty strings to length n (truncating
// extras), so With never panics on a miscounted call site.
func padValues(values []string, n int) []string {
	if len(values) == n {
		return values
	}
	out := make([]string, n)
	copy(out, values)
	return out
}
