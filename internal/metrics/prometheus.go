package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type for the Prometheus text format
// this package writes.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteExposition renders the registry in the Prometheus text exposition
// format (0.0.4): histograms (flat and labelled) as `_seconds` histogram
// families with cumulative `le` buckets, gauges and gauge funcs as gauges,
// and counter sets / counter vectors as `_total` counters. Metric names are
// sanitised to the Prometheus charset (dots become underscores), durations
// are converted from nanoseconds to seconds per convention.
//
// The write happens against a point-in-time gathering of the metric
// pointers, so the scrape never holds the registry lock while formatting.
func (r *Registry) WriteExposition(w io.Writer) error {
	// Gather stable pointers under the lock; format outside it.
	r.mu.Lock()
	hists := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hists = append(hists, h)
	}
	hvecs := make([]*HistogramVec, 0, len(r.histogramVecs))
	for _, v := range r.histogramVecs {
		hvecs = append(hvecs, v)
	}
	cvecs := make([]*CounterVec, 0, len(r.counterVecs))
	for _, v := range r.counterVecs {
		cvecs = append(cvecs, v)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	gfuncs := make([]gaugeFuncSample, 0, len(r.gaugeFuncs))
	for name, fn := range r.gaugeFuncs {
		gfuncs = append(gfuncs, gaugeFuncSample{name, fn})
	}
	type namedSet struct {
		name string
		set  *CounterSet
	}
	csets := make([]namedSet, 0, len(r.counters))
	for name, cs := range r.counters {
		csets = append(csets, namedSet{name, cs})
	}
	r.mu.Unlock()

	sort.Slice(hists, func(i, j int) bool { return hists[i].Name() < hists[j].Name() })
	sort.Slice(hvecs, func(i, j int) bool { return hvecs[i].Name() < hvecs[j].Name() })
	sort.Slice(cvecs, func(i, j int) bool { return cvecs[i].Name() < cvecs[j].Name() })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].Name() < gauges[j].Name() })
	sort.Slice(gfuncs, func(i, j int) bool { return gfuncs[i].name < gfuncs[j].name })
	sort.Slice(csets, func(i, j int) bool { return csets[i].name < csets[j].name })

	var b strings.Builder
	for _, h := range hists {
		writeHistogram(&b, sanitizeMetricName(h.Name())+"_seconds", "", h)
	}
	for _, v := range hvecs {
		family := sanitizeMetricName(v.Name()) + "_seconds"
		fmt.Fprintf(&b, "# TYPE %s histogram\n", family)
		for _, child := range v.Children() {
			writeHistogramBody(&b, family, child.Labels, child.Metric)
		}
	}
	for _, g := range gauges {
		name := sanitizeMetricName(g.Name())
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, g.Value())
	}
	for _, gf := range gfuncs {
		name := sanitizeMetricName(gf.name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, gf.fn())
	}
	for _, ns := range csets {
		prefix := sanitizeMetricName(ns.name)
		for _, cv := range ns.set.Snapshot() {
			name := prefix + "_" + sanitizeMetricName(cv.Name) + "_total"
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, cv.Value)
		}
	}
	for _, v := range cvecs {
		family := sanitizeMetricName(v.Name()) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n", family)
		for _, child := range v.Children() {
			fmt.Fprintf(&b, "%s{%s} %d\n", family, child.Labels, child.Metric.Value())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits a full histogram family (TYPE line + body).
func writeHistogram(b *strings.Builder, family, labels string, h *Histogram) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", family)
	writeHistogramBody(b, family, labels, h)
}

// writeHistogramBody emits cumulative `le` bucket lines plus _sum/_count
// for one histogram (one labelled child of a family, or a flat histogram
// with empty labels). Only populated buckets get a line — with 65 log-scale
// buckets per histogram that keeps scrape size proportional to the data —
// plus the mandatory `+Inf` bound.
func writeHistogramBody(b *strings.Builder, family, labels string, h *Histogram) {
	c := h.Counts()
	var cum, total uint64
	for _, n := range c.Buckets {
		total += n
	}
	for i, n := range c.Buckets {
		cum += n
		if n == 0 {
			continue
		}
		if i >= 64 {
			// The top bucket's bound is effectively infinite; the +Inf line
			// below covers it.
			break
		}
		_, hi := bucketBounds(i)
		writeBucketLine(b, family, labels, strconv.FormatFloat(float64(hi)/1e9, 'g', -1, 64), cum)
	}
	writeBucketLine(b, family, labels, "+Inf", total)
	sep0, sep1 := "", ""
	if labels != "" {
		sep0, sep1 = "{", "}"
	}
	fmt.Fprintf(b, "%s_sum%s%s%s %s\n", family, sep0, labels, sep1,
		strconv.FormatFloat(float64(c.SumNs)/1e9, 'g', -1, 64))
	fmt.Fprintf(b, "%s_count%s%s%s %d\n", family, sep0, labels, sep1, total)
}

// writeBucketLine emits one `_bucket` sample, splicing `le` into any
// existing label set.
func writeBucketLine(b *strings.Builder, family, labels, le string, cum uint64) {
	if labels == "" {
		fmt.Fprintf(b, "%s_bucket{le=\"%s\"} %d\n", family, le, cum)
		return
	}
	fmt.Fprintf(b, "%s_bucket{%s,le=\"%s\"} %d\n", family, labels, le, cum)
}

// sanitizeMetricName maps an internal metric name onto the Prometheus
// charset [a-zA-Z_:][a-zA-Z0-9_:]*; every other byte becomes '_'.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	ok := true
	for i := 0; i < len(name); i++ {
		if !isNameByte(name[i], i) {
			ok = false
			break
		}
	}
	if ok {
		return name
	}
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		if isNameByte(name[i], i) {
			out[i] = name[i]
		} else {
			out[i] = '_'
		}
	}
	return string(out)
}

func isNameByte(c byte, pos int) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return pos > 0
	default:
		return false
	}
}
