package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log-scale buckets a Histogram maintains:
// bucket i (i ≥ 1) holds observations whose nanosecond value needs exactly i
// bits, i.e. the half-open range [2^(i-1), 2^i); bucket 0 holds zeros and
// negatives. 64 bit-lengths plus the zero bucket cover every duration.
const histBuckets = 65

// Histogram is a fixed-bucket log-scale duration histogram. Observe is one
// atomic add per bucket plus count/sum bookkeeping — no locks, no
// allocations — so it can sit on invoke hot paths. Quantiles are estimated
// by linear interpolation within the containing power-of-two bucket, which
// is accurate to well under a factor of two; that is sufficient for the
// stage-attribution reports the obs layer produces.
type Histogram struct {
	name    string
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram with the given display name.
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name}
}

// Name returns the histogram's display name.
func (h *Histogram) Name() string { return h.name }

// Observe records one duration. Negative durations count into the zero
// bucket (they arise only from clock steps).
func (h *Histogram) Observe(d time.Duration) {
	idx := 0
	if d > 0 {
		idx = bits.Len64(uint64(d))
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the mean observed duration, or zero for an empty histogram.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution. An empty histogram reports zero. The estimate interpolates
// linearly inside the containing bucket.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Snapshot bucket counts first; concurrent Observes may skew count vs
	// buckets slightly, so derive the total from the snapshot itself.
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total-1)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if rank < cum+float64(c) {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += float64(c)
	}
	// Rank fell past the last populated bucket (rounding); return its upper
	// bound.
	for i := histBuckets - 1; i >= 0; i-- {
		if counts[i] > 0 {
			_, hi := bucketBounds(i)
			return hi
		}
	}
	return 0
}

// bucketBounds returns the [lo, hi) duration range of bucket i.
func bucketBounds(i int) (lo, hi time.Duration) {
	if i == 0 {
		return 0, 0
	}
	lo = time.Duration(uint64(1) << (i - 1))
	if i >= 64 {
		return lo, time.Duration(^uint64(0) >> 1)
	}
	hi = time.Duration(uint64(1) << i)
	return lo, hi
}

// HistogramSnapshot is a point-in-time summary of a histogram, shaped for
// the obs layer's JSON export.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	SumNs int64  `json:"sum_ns"`
	P50Ns int64  `json:"p50_ns"`
	P95Ns int64  `json:"p95_ns"`
	P99Ns int64  `json:"p99_ns"`
}

// Snapshot summarises the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.count.Load(),
		SumNs: h.sum.Load(),
		P50Ns: int64(h.Quantile(0.50)),
		P95Ns: int64(h.Quantile(0.95)),
		P99Ns: int64(h.Quantile(0.99)),
	}
}
