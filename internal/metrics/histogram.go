package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log-scale buckets a Histogram maintains:
// bucket i (i ≥ 1) holds observations whose nanosecond value needs exactly i
// bits, i.e. the half-open range [2^(i-1), 2^i); bucket 0 holds zeros and
// negatives. 64 bit-lengths plus the zero bucket cover every duration.
const histBuckets = 65

// Histogram is a fixed-bucket log-scale duration histogram. Observe is one
// atomic add per bucket plus count/sum bookkeeping — no locks, no
// allocations — so it can sit on invoke hot paths. Quantiles are estimated
// by linear interpolation within the containing power-of-two bucket, which
// is accurate to well under a factor of two; that is sufficient for the
// stage-attribution reports the obs layer produces.
type Histogram struct {
	name    string
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram with the given display name.
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name}
}

// Name returns the histogram's display name.
func (h *Histogram) Name() string { return h.name }

// Observe records one duration. Negative durations count into the zero
// bucket (they arise only from clock steps).
func (h *Histogram) Observe(d time.Duration) {
	idx := 0
	if d > 0 {
		idx = bits.Len64(uint64(d))
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	// Track the true observed maximum so quantile estimates can be clamped
	// to it: a log-scale bucket's upper bound can sit almost 2x above the
	// largest value actually recorded, and an SLO guard must not trip on
	// that phantom tail. Steady state is one load; the CAS only retries
	// while a new maximum is being set.
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the mean observed duration, or zero for an empty histogram.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Max returns the largest duration observed so far (zero for an empty
// histogram or one that has only seen zero/negative durations).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution. An empty histogram reports zero. The estimate interpolates
// linearly inside the containing bucket and is clamped to the recorded
// maximum, so it never exceeds a value that was actually observed —
// without the clamp a log-scale bucket's upper bound could report tail
// latency nearly 2x above the true maximum. Quantile(1) is exact: it
// returns the recorded maximum itself.
func (h *Histogram) Quantile(q float64) time.Duration {
	// Snapshot bucket counts first; concurrent Observes may skew count vs
	// buckets slightly, so derive the total from the snapshot itself.
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return quantileOverCounts(&counts, total, q, h.Max())
}

// quantileOverCounts is the shared estimator behind Quantile and
// QuantileBetween: linear interpolation inside the containing bucket,
// clamped to max (the true observed ceiling) when max is positive.
func quantileOverCounts(counts *[histBuckets]uint64, total uint64, q float64, max time.Duration) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if total == 0 {
		return 0
	}
	if q == 1 && max > 0 {
		// The top quantile is the maximum by definition; the recorded max is
		// exact where bucket interpolation is not.
		return max
	}
	est := time.Duration(-1)
	rank := q * float64(total-1)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if rank < cum+float64(c) {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / float64(c)
			est = lo + time.Duration(frac*float64(hi-lo))
			break
		}
		cum += float64(c)
	}
	if est < 0 {
		// Rank fell past the last populated bucket (rounding); fall back to
		// its upper bound before clamping.
		for i := histBuckets - 1; i >= 0; i-- {
			if counts[i] > 0 {
				_, est = bucketBounds(i)
				break
			}
		}
		if est < 0 {
			return 0
		}
	}
	if max > 0 && est > max {
		est = max
	}
	return est
}

// HistogramCounts is a raw snapshot of a histogram's counters, suitable for
// delta arithmetic: a sliding-window consumer keeps the previous snapshot and
// evaluates quantiles over the difference via QuantileBetween.
type HistogramCounts struct {
	Count   uint64
	SumNs   int64
	MaxNs   int64
	Buckets [histBuckets]uint64
}

// Counts captures the histogram's raw counters. Concurrent Observes may skew
// Count against the bucket array by in-flight observations; windowed
// consumers should derive totals from the buckets themselves (QuantileBetween
// does).
func (h *Histogram) Counts() HistogramCounts {
	var c HistogramCounts
	c.Count = h.count.Load()
	c.SumNs = h.sum.Load()
	c.MaxNs = h.max.Load()
	for i := range h.buckets {
		c.Buckets[i] = h.buckets[i].Load()
	}
	return c
}

// QuantileBetween estimates the q-quantile of the observations recorded
// between two snapshots of the same histogram (prev taken before cur). It is
// the primitive behind sliding-window SLO evaluation: quantiles over only
// the last window's traffic, not the process lifetime. The estimate is
// clamped to cur's recorded maximum — the max is lifetime-wide, so the clamp
// is conservative (never under-reports the window's tail). Returns the
// window's observation count alongside the estimate; a zero count means no
// traffic landed in the window and the estimate is zero.
func QuantileBetween(prev, cur HistogramCounts, q float64) (time.Duration, uint64) {
	var delta [histBuckets]uint64
	var total uint64
	for i := range delta {
		if cur.Buckets[i] > prev.Buckets[i] {
			delta[i] = cur.Buckets[i] - prev.Buckets[i]
			total += delta[i]
		}
	}
	return quantileOverCounts(&delta, total, q, time.Duration(cur.MaxNs)), total
}

// bucketBounds returns the [lo, hi) duration range of bucket i.
func bucketBounds(i int) (lo, hi time.Duration) {
	if i == 0 {
		return 0, 0
	}
	lo = time.Duration(uint64(1) << (i - 1))
	if i >= 64 {
		return lo, time.Duration(^uint64(0) >> 1)
	}
	hi = time.Duration(uint64(1) << i)
	return lo, hi
}

// HistogramSnapshot is a point-in-time summary of a histogram, shaped for
// the obs layer's JSON export.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	SumNs int64  `json:"sum_ns"`
	P50Ns int64  `json:"p50_ns"`
	P95Ns int64  `json:"p95_ns"`
	P99Ns int64  `json:"p99_ns"`
	MaxNs int64  `json:"max_ns"`
}

// Snapshot summarises the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.count.Load(),
		SumNs: h.sum.Load(),
		P50Ns: int64(h.Quantile(0.50)),
		P95Ns: int64(h.Quantile(0.95)),
		P99Ns: int64(h.Quantile(0.99)),
		MaxNs: h.max.Load(),
	}
}
