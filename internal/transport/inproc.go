package transport

import (
	"context"
	"fmt"
	"sync"
	"time"

	"godcdo/internal/wire"
)

// InprocNetwork connects servers and dialers within one process. It models
// the same request/response contract as TCP without sockets, so unit tests
// and single-process examples run a full node topology cheaply.
type InprocNetwork struct {
	mu       sync.RWMutex
	handlers map[string]Handler // name -> handler
	nextID   uint64
}

// NewInprocNetwork returns an empty in-process network.
func NewInprocNetwork() *InprocNetwork {
	return &InprocNetwork{handlers: make(map[string]Handler)}
}

// Listen registers handler under name and returns its server handle. The
// endpoint is "inproc:<name>".
func (n *InprocNetwork) Listen(name string, handler Handler) (*InprocServer, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.handlers[name]; exists {
		return nil, fmt.Errorf("%w: inproc name %q already in use", ErrBadEndpoint, name)
	}
	n.handlers[name] = handler
	return &InprocServer{net: n, name: name}, nil
}

// Dialer returns a Dialer that resolves inproc endpoints on this network.
func (n *InprocNetwork) Dialer() *InprocDialer {
	return &InprocDialer{net: n}
}

// InprocServer is the server handle for a registered inproc handler.
type InprocServer struct {
	net  *InprocNetwork
	name string
}

var _ Server = (*InprocServer)(nil)

// Endpoint implements Server.
func (s *InprocServer) Endpoint() string { return "inproc:" + s.name }

// Close implements Server.
func (s *InprocServer) Close() error {
	s.net.mu.Lock()
	delete(s.net.handlers, s.name)
	s.net.mu.Unlock()
	return nil
}

// InprocDialer calls handlers registered on its network.
type InprocDialer struct {
	net    *InprocNetwork
	mu     sync.Mutex
	closed bool
}

var _ Dialer = (*InprocDialer)(nil)

// Call implements Dialer. The handler runs synchronously on the caller's
// goroutine with the caller's ctx, so cancellation and deadlines propagate
// directly; timeout applies only in the sense that a missing endpoint fails
// immediately (a synchronous handler cannot be abandoned).
func (d *InprocDialer) Call(ctx context.Context, endpoint string, req *wire.Envelope, timeout time.Duration) (*wire.Envelope, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	d.mu.Unlock()

	scheme, name, err := ParseEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	if scheme != SchemeInproc {
		return nil, fmt.Errorf("%w: inproc dialer got %q", ErrBadEndpoint, endpoint)
	}
	if timeout <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrInvalidTimeout, timeout)
	}
	if err := ctx.Err(); err != nil {
		return nil, &CallError{Class: RetryNever, Err: err}
	}
	StampDeadline(ctx, req)
	d.net.mu.RLock()
	handler, ok := d.net.handlers[name]
	d.net.mu.RUnlock()
	if !ok {
		// The request was never dispatched: safe to retry after rebinding.
		return nil, safeErr(fmt.Errorf("%w: inproc endpoint %q", ErrUnreachable, endpoint))
	}

	d.net.mu.Lock()
	d.net.nextID++
	req.ID = d.net.nextID
	d.net.mu.Unlock()

	resp := handler.Handle(ctx, req)
	if resp == Dropped {
		// The handler executed (or deliberately discarded) the request and
		// its response was lost: surface the same ambiguous timeout a TCP
		// caller would observe.
		return nil, ambiguousErr(fmt.Errorf("%w: %s (response dropped)", ErrTimeout, endpoint))
	}
	if resp == nil {
		return nil, ambiguousErr(fmt.Errorf("%w: nil response from %q", ErrUnreachable, endpoint))
	}
	resp.ID = req.ID
	return resp, nil
}

// Close implements Dialer.
func (d *InprocDialer) Close() error {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	return nil
}
