package transport

import (
	"context"

	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"godcdo/internal/wire"
)

func echoHandler() Handler {
	return HandlerFunc(func(ctx context.Context, req *wire.Envelope) *wire.Envelope {
		return &wire.Envelope{
			Kind:    wire.KindResponse,
			Target:  req.Target,
			Method:  req.Method,
			Payload: req.Payload,
		}
	})
}

func TestParseEndpoint(t *testing.T) {
	cases := []struct {
		in      string
		scheme  Scheme
		rest    string
		wantErr bool
	}{
		{"tcp:127.0.0.1:80", SchemeTCP, "127.0.0.1:80", false},
		{"inproc:node-1", SchemeInproc, "node-1", false},
		{"udp:127.0.0.1:80", "", "", true},
		{"tcp:", "", "", true},
		{"garbage", "", "", true},
		{"", "", "", true},
	}
	for _, c := range cases {
		scheme, rest, err := ParseEndpoint(c.in)
		if c.wantErr {
			if !errors.Is(err, ErrBadEndpoint) {
				t.Errorf("ParseEndpoint(%q) err = %v, want ErrBadEndpoint", c.in, err)
			}
			continue
		}
		if err != nil || scheme != c.scheme || rest != c.rest {
			t.Errorf("ParseEndpoint(%q) = (%q,%q,%v)", c.in, scheme, rest, err)
		}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	d := NewTCPDialer()
	defer d.Close()

	req := &wire.Envelope{Kind: wire.KindRequest, Target: "loid:1.1.1", Method: "ping", Payload: []byte("abc")}
	resp, err := d.Call(context.Background(), srv.Endpoint(), req, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != wire.KindResponse || string(resp.Payload) != "abc" || resp.Method != "ping" {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.ID != req.ID {
		t.Fatalf("response ID %d != request ID %d", resp.ID, req.ID)
	}
}

func TestTCPConcurrentCallsShareConnection(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	d := NewTCPDialer()
	defer d.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("msg-%d", i))
			resp, err := d.Call(context.Background(), srv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest, Payload: payload}, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if string(resp.Payload) != string(payload) {
				errs <- fmt.Errorf("payload mismatch: got %q want %q", resp.Payload, payload)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	d.mu.Lock()
	nconns := len(d.conns)
	d.mu.Unlock()
	if nconns != 1 {
		t.Fatalf("dialer holds %d connections, want 1 (pooled)", nconns)
	}
}

func TestTCPSlowHandlerDoesNotBlockPipelinedCalls(t *testing.T) {
	block := make(chan struct{})
	handler := HandlerFunc(func(ctx context.Context, req *wire.Envelope) *wire.Envelope {
		if req.Method == "slow" {
			<-block
		}
		return &wire.Envelope{Kind: wire.KindResponse, Payload: req.Payload}
	})
	srv, err := ListenTCP("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := NewTCPDialer()
	defer d.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := d.Call(context.Background(), srv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest, Method: "slow"}, 10*time.Second)
		slowDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let slow call reach the handler

	if _, err := d.Call(context.Background(), srv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest, Method: "fast"}, 2*time.Second); err != nil {
		t.Fatalf("fast call blocked behind slow call: %v", err)
	}
	close(block)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call failed: %v", err)
	}
}

func TestTCPCallTimeout(t *testing.T) {
	handler := HandlerFunc(func(ctx context.Context, req *wire.Envelope) *wire.Envelope {
		time.Sleep(time.Second)
		return &wire.Envelope{Kind: wire.KindResponse}
	})
	srv, err := ListenTCP("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := NewTCPDialer()
	defer d.Close()

	_, err = d.Call(context.Background(), srv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest}, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestTCPServerCloseFailsInflightCalls(t *testing.T) {
	started := make(chan struct{}, 1)
	handler := HandlerFunc(func(ctx context.Context, req *wire.Envelope) *wire.Envelope {
		started <- struct{}{}
		time.Sleep(100 * time.Millisecond)
		return &wire.Envelope{Kind: wire.KindResponse}
	})
	srv, err := ListenTCP("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	d := NewTCPDialer()
	defer d.Close()

	done := make(chan error, 1)
	go func() {
		_, err := d.Call(context.Background(), srv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest}, 5*time.Second)
		done <- err
	}()
	<-started
	_ = srv.Close()
	if err := <-done; err == nil {
		t.Fatal("in-flight call succeeded despite server close")
	}
}

func TestTCPDialUnreachable(t *testing.T) {
	d := NewTCPDialer()
	d.DialTimeout = 200 * time.Millisecond
	defer d.Close()
	_, err := d.Call(context.Background(), "tcp:127.0.0.1:1", &wire.Envelope{Kind: wire.KindRequest}, time.Second)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestTCPDialerRejectsWrongScheme(t *testing.T) {
	d := NewTCPDialer()
	defer d.Close()
	if _, err := d.Call(context.Background(), "inproc:x", &wire.Envelope{}, time.Second); !errors.Is(err, ErrBadEndpoint) {
		t.Fatalf("err = %v, want ErrBadEndpoint", err)
	}
}

func TestTCPDialerClosed(t *testing.T) {
	d := NewTCPDialer()
	_ = d.Close()
	if _, err := d.Call(context.Background(), "tcp:127.0.0.1:1", &wire.Envelope{}, time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestTCPNilHandlerResponse(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", HandlerFunc(func(context.Context, *wire.Envelope) *wire.Envelope { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := NewTCPDialer()
	defer d.Close()
	resp, err := d.Call(context.Background(), srv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != wire.KindError || resp.Code != wire.CodeInternal {
		t.Fatalf("resp = %+v, want internal error", resp)
	}
}

func TestTCPServerDropsDesynchronisedStream(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	_, addr, err := ParseEndpoint(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Garbage that is not a valid frame: the server must drop the
	// connection rather than misparse the stream.
	if _, err := conn.Write([]byte("this is not a frame at all........")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a garbage stream")
	}

	// The listener survives and keeps serving clean clients.
	d := NewTCPDialer()
	defer d.Close()
	if _, err := d.Call(context.Background(), srv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest}, 2*time.Second); err != nil {
		t.Fatalf("server wedged after garbage stream: %v", err)
	}
}

func TestTCPServerDropsCorruptEnvelope(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, addr, err := ParseEndpoint(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A well-formed frame whose payload is not a decodable envelope.
	if err := wire.WriteFrame(conn, []byte{0xff}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a corrupt envelope")
	}
}

func TestInprocRoundTrip(t *testing.T) {
	n := NewInprocNetwork()
	srv, err := n.Listen("node-1", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	d := n.Dialer()
	resp, err := d.Call(context.Background(), srv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest, Payload: []byte("x")}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "x" {
		t.Fatalf("payload = %q", resp.Payload)
	}
}

func TestInprocDuplicateNameRejected(t *testing.T) {
	n := NewInprocNetwork()
	if _, err := n.Listen("dup", echoHandler()); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("dup", echoHandler()); !errors.Is(err, ErrBadEndpoint) {
		t.Fatalf("err = %v, want ErrBadEndpoint", err)
	}
}

func TestInprocCloseUnregisters(t *testing.T) {
	n := NewInprocNetwork()
	srv, _ := n.Listen("gone", echoHandler())
	_ = srv.Close()
	d := n.Dialer()
	if _, err := d.Call(context.Background(), "inproc:gone", &wire.Envelope{}, time.Second); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	// Name is reusable after Close.
	if _, err := n.Listen("gone", echoHandler()); err != nil {
		t.Fatalf("relisten after close: %v", err)
	}
}

func TestInprocDialerClosed(t *testing.T) {
	n := NewInprocNetwork()
	d := n.Dialer()
	_ = d.Close()
	if _, err := d.Call(context.Background(), "inproc:x", &wire.Envelope{}, time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestTCPDialerRejectsNonPositiveTimeout(t *testing.T) {
	d := NewTCPDialer()
	defer d.Close()
	for _, timeout := range []time.Duration{0, -time.Second} {
		_, err := d.Call(context.Background(), "tcp:127.0.0.1:1", &wire.Envelope{Kind: wire.KindRequest}, timeout)
		if !errors.Is(err, ErrInvalidTimeout) {
			t.Fatalf("timeout %v: err = %v, want ErrInvalidTimeout", timeout, err)
		}
		if Classify(err) != RetryNever {
			t.Fatalf("timeout %v classified %v, want never", timeout, Classify(err))
		}
	}
}

func TestInprocDialerRejectsNonPositiveTimeout(t *testing.T) {
	n := NewInprocNetwork()
	if _, err := n.Listen("tz", echoHandler()); err != nil {
		t.Fatal(err)
	}
	d := n.Dialer()
	_, err := d.Call(context.Background(), "inproc:tz", &wire.Envelope{Kind: wire.KindRequest}, 0)
	if !errors.Is(err, ErrInvalidTimeout) {
		t.Fatalf("err = %v, want ErrInvalidTimeout", err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want RetryClass
	}{
		{ErrBadEndpoint, RetryNever},
		{ErrClosed, RetryNever},
		{ErrInvalidTimeout, RetryNever},
		{ErrUnreachable, RetrySafe},
		{ErrTimeout, RetryAmbiguous},
		{errors.New("mystery"), RetryAmbiguous},
		{safeErr(fmt.Errorf("%w: wrapped", ErrTimeout)), RetrySafe},               // explicit class wins
		{ambiguousErr(fmt.Errorf("%w: wrapped", ErrUnreachable)), RetryAmbiguous}, // explicit class wins
		{fmt.Errorf("outer: %w", safeErr(ErrReset)), RetrySafe},                   // class survives wrapping
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestTCPDialerEvictsWedgedConnection(t *testing.T) {
	// A handler that never answers "wedge" simulates a connection whose
	// peer has stopped responding without closing the socket.
	handler := HandlerFunc(func(ctx context.Context, req *wire.Envelope) *wire.Envelope {
		if req.Method == "wedge" {
			return Dropped
		}
		return &wire.Envelope{Kind: wire.KindResponse, Payload: req.Payload}
	})
	srv, err := ListenTCP("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	d := NewTCPDialer()
	d.TimeoutEvictAfter = 2
	defer d.Close()

	for i := 0; i < 2; i++ {
		if _, err := d.Call(context.Background(), srv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest, Method: "wedge"}, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Fatalf("wedge call %d: err = %v, want ErrTimeout", i, err)
		}
	}
	st := d.Stats()
	if st.Timeouts != 2 {
		t.Fatalf("timeouts = %d, want 2", st.Timeouts)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (threshold reached)", st.Evictions)
	}
	d.mu.Lock()
	nconns := len(d.conns)
	d.mu.Unlock()
	if nconns != 0 {
		t.Fatalf("dialer still pools %d connections after eviction", nconns)
	}

	// The next call redials a fresh connection and succeeds.
	if _, err := d.Call(context.Background(), srv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest, Method: "ok"}, time.Second); err != nil {
		t.Fatalf("call after eviction: %v", err)
	}
	if st := d.Stats(); st.Dials != 2 {
		t.Fatalf("dials = %d, want 2 (redial after eviction)", st.Dials)
	}
}

func TestTCPDialerCountsOrphanedResponses(t *testing.T) {
	release := make(chan struct{})
	handler := HandlerFunc(func(ctx context.Context, req *wire.Envelope) *wire.Envelope {
		if req.Method == "late" {
			<-release
		}
		return &wire.Envelope{Kind: wire.KindResponse, Payload: req.Payload}
	})
	srv, err := ListenTCP("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	d := NewTCPDialer()
	defer d.Close()

	_, err = d.Call(context.Background(), srv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest, Method: "late"}, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// Let the server finish; its response now has no waiting caller.
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for d.Stats().OrphanedResponses == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("orphaned responses never counted; stats = %+v", d.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A successful call resets the consecutive-timeout streak: no eviction.
	if _, err := d.Call(context.Background(), srv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest, Method: "ok"}, time.Second); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0", st.Evictions)
	}
}

func TestMultiDialerRouting(t *testing.T) {
	n := NewInprocNetwork()
	if _, err := n.Listen("a", echoHandler()); err != nil {
		t.Fatal(err)
	}
	tcpSrv, err := ListenTCP("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer tcpSrv.Close()

	md := NewMultiDialer(map[Scheme]Dialer{
		SchemeInproc: n.Dialer(),
		SchemeTCP:    NewTCPDialer(),
	})
	defer md.Close()

	if _, err := md.Call(context.Background(), "inproc:a", &wire.Envelope{Kind: wire.KindRequest}, time.Second); err != nil {
		t.Fatalf("inproc via multi: %v", err)
	}
	if _, err := md.Call(context.Background(), tcpSrv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest}, time.Second); err != nil {
		t.Fatalf("tcp via multi: %v", err)
	}
	if _, err := md.Call(context.Background(), "bogus", &wire.Envelope{}, time.Second); !errors.Is(err, ErrBadEndpoint) {
		t.Fatalf("err = %v, want ErrBadEndpoint", err)
	}
}
