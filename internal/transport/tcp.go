package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"godcdo/internal/wire"
)

// ServerStats counts TCPServer outcomes, mirroring DialerStats on the other
// side of the wire. DecodeErrors count connections dropped because a frame
// failed to decode (stream desynchronisation); DroppedFrames count responses
// deliberately withheld (the Dropped fault-injection sentinel).
// BatchFlushes/BatchedFrames expose the response coalescer: frames÷flushes
// is the realised write batch size.
type ServerStats struct {
	AcceptedConns uint64
	ActiveConns   int64
	DecodeErrors  uint64
	DroppedFrames uint64
	BatchFlushes  uint64
	BatchedFrames uint64
}

// TCPServerOptions tunes the server's fast path. The zero value is the
// default configuration (coalescing on, unlimited workers).
type TCPServerOptions struct {
	// MaxWorkers bounds concurrent handler goroutines across the whole
	// server. When the bound is reached the read loops stop pulling frames,
	// so backpressure lands on the kernel socket buffers instead of on
	// unbounded goroutine growth. It composes with the dispatcher's
	// admission control: admission sheds load per node with CodeOverloaded,
	// while MaxWorkers caps raw goroutine fan-out below it. Zero means
	// unlimited (one goroutine per in-flight request).
	MaxWorkers int
	// WriteQueue bounds each connection's outbound response queue, in
	// frames. Zero means defaultWriteQueue.
	WriteQueue int
	// DisableFastPath reverts to the pre-fast-path transport: unpooled
	// frame reads and a synchronous write+flush per response. It exists as
	// the honest baseline for the E10 experiment and as an escape hatch.
	DisableFastPath bool
}

// TCPServer serves envelopes over TCP. Each connection is read by one
// goroutine; requests are dispatched concurrently so a slow handler does not
// head-of-line block pipelined callers. Responses from all handlers on a
// connection funnel through one coalescing writer, which flushes once per
// batch rather than once per response.
type TCPServer struct {
	handler  Handler
	listener net.Listener
	opts     TCPServerOptions

	// workers is the MaxWorkers semaphore (nil = unlimited). Acquired by the
	// read loop before spawning a handler goroutine.
	workers chan struct{}

	// ctx is the server's lifetime context, cancelled on Close so in-flight
	// handlers observe shutdown. It is the ctx passed to Handler.Handle.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	accepted     atomic.Uint64
	active       atomic.Int64
	decodeErrors atomic.Uint64
	dropped      atomic.Uint64
	flushes      atomic.Uint64
	frames       atomic.Uint64
}

var _ Server = (*TCPServer)(nil)

// ListenTCP starts a server on addr ("127.0.0.1:0" picks a free port) with
// default options.
func ListenTCP(addr string, handler Handler) (*TCPServer, error) {
	return ListenTCPOptions(addr, handler, TCPServerOptions{})
}

// ListenTCPOptions starts a server on addr with explicit options.
func ListenTCPOptions(addr string, handler Handler, opts TCPServerOptions) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %q: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &TCPServer{handler: handler, listener: ln, opts: opts, ctx: ctx, cancel: cancel, conns: make(map[net.Conn]struct{})}
	if opts.MaxWorkers > 0 {
		s.workers = make(chan struct{}, opts.MaxWorkers)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Stats returns a snapshot of the server counters.
func (s *TCPServer) Stats() ServerStats {
	return ServerStats{
		AcceptedConns: s.accepted.Load(),
		ActiveConns:   s.active.Load(),
		DecodeErrors:  s.decodeErrors.Load(),
		DroppedFrames: s.dropped.Load(),
		BatchFlushes:  s.flushes.Load(),
		BatchedFrames: s.frames.Load(),
	}
}

// Endpoint implements Server.
func (s *TCPServer) Endpoint() string {
	return "tcp:" + s.listener.Addr().String()
}

// Close implements Server.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.cancel()
	err := s.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.accepted.Add(1)
		s.active.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
		s.active.Add(-1)
	}()
	if s.opts.DisableFastPath {
		s.serveConnLegacy(conn)
		return
	}

	bw := bufio.NewWriter(conn)
	br := bufio.NewReader(conn)
	wr := newFrameWriter(bw, s.opts.WriteQueue, &s.flushes, &s.frames, nil, nil)
	var handlers sync.WaitGroup
	// Shutdown order matters for both accounting and delivery: every handler
	// must have finished (so DroppedFrames and its response enqueue are
	// final) before the writer stops, and the writer drains and flushes what
	// it holds before the connection-cleanup defer above closes the socket.
	defer wr.Stop()
	defer handlers.Wait()

	for {
		frame, err := wire.ReadFramePooled(br)
		if err != nil {
			return // EOF or broken connection
		}
		req, err := wire.DecodeEnvelope(frame)
		if err != nil {
			// Stream desynchronised; the connection must drop (nothing after
			// a bad frame can be trusted), but count it so operators can see
			// protocol corruption instead of a silent disconnect.
			wire.PutBuf(frame)
			s.decodeErrors.Add(1)
			return
		}
		if s.workers != nil {
			// Blocking here parks the read loop, so backpressure reaches the
			// client through TCP flow control rather than goroutine pileup.
			select {
			case s.workers <- struct{}{}:
			case <-s.ctx.Done():
				wire.PutBuf(frame)
				return
			}
		}
		handlers.Add(1)
		// Direct method spawn, not a closure: the arguments travel in the
		// goroutine frame, so the per-request closure allocation disappears
		// from the hot path.
		go s.handleOneAsync(req, frame, wr, &handlers)
	}
}

// handleOneAsync is the goroutine body behind each fast-path request: it
// dispatches, releases the MaxWorkers slot acquired by the read loop, and
// signals the connection's handler WaitGroup.
func (s *TCPServer) handleOneAsync(req *wire.Envelope, frame []byte, wr *frameWriter, handlers *sync.WaitGroup) {
	defer handlers.Done()
	if s.workers != nil {
		defer func() { <-s.workers }()
	}
	s.handleOne(req, frame, wr)
}

// handleOne dispatches one decoded request and enqueues its response on the
// connection's coalescing writer. frame is the pooled buffer req was decoded
// from; req.Payload aliases it, so it is released only after the response —
// which for echo-style handlers may itself alias the request payload — has
// been encoded into its own buffer.
func (s *TCPServer) handleOne(req *wire.Envelope, frame []byte, wr *frameWriter) {
	resp := s.handler.Handle(s.ctx, req)
	if resp == Dropped {
		s.dropped.Add(1)
		wire.PutBuf(frame)
		return // injected response loss: leave the caller to time out
	}
	if resp == nil {
		resp = &wire.Envelope{
			Kind: wire.KindError, ID: req.ID,
			Code: wire.CodeInternal, ErrorMsg: "nil response from handler",
		}
	}
	resp.ID = req.ID
	buf := resp.EncodePooled()
	wire.PutBuf(frame)
	// The response is fully encoded into buf; recycle the envelope (and any
	// frame-pool payload travelling with it). A no-op for handlers that
	// return envelopes from other sources.
	wire.PutEnvelope(resp)
	if err := wr.Enqueue(outFrame{buf: buf}); err != nil {
		wire.PutBuf(buf) // writer refused ownership; the conn is going down
	}
}

// serveConnLegacy is the pre-fast-path read loop: unpooled frames, one
// goroutine per request, one write+flush per response under a mutex.
func (s *TCPServer) serveConnLegacy(conn net.Conn) {
	var writeMu sync.Mutex
	bw := bufio.NewWriter(conn)
	br := bufio.NewReader(conn)
	var handlers sync.WaitGroup
	defer handlers.Wait()

	for {
		frame, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		req, err := wire.DecodeEnvelope(frame)
		if err != nil {
			s.decodeErrors.Add(1)
			return
		}
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			resp := s.handler.Handle(s.ctx, req)
			if resp == Dropped {
				s.dropped.Add(1)
				return
			}
			if resp == nil {
				resp = &wire.Envelope{
					Kind: wire.KindError, ID: req.ID,
					Code: wire.CodeInternal, ErrorMsg: "nil response from handler",
				}
			}
			resp.ID = req.ID
			writeMu.Lock()
			defer writeMu.Unlock()
			if err := wire.WriteFrame(bw, resp.Encode()); err != nil {
				return
			}
			_ = bw.Flush()
		}()
	}
}

// maxOrphanWatch bounds how many timed-out call IDs one connection tracks
// for late-response accounting; entries are dropped when the response
// arrives or the connection dies.
const maxOrphanWatch = 1024

// defaultTimeoutEvictAfter is the consecutive-timeout threshold after which
// a pooled connection is presumed wedged and evicted.
const defaultTimeoutEvictAfter = 3

// DialerStats counts TCPDialer outcomes. OrphanedResponses are responses
// that arrived after their call had already timed out — evidence that the
// server executed a request whose caller had given up, which is exactly the
// ambiguity the invoke retry policy must respect. BatchFlushes/BatchedFrames
// expose the request coalescer; OpenConns counts live connections across all
// endpoints and stripes.
type DialerStats struct {
	Dials             uint64
	Timeouts          uint64
	Evictions         uint64
	OrphanedResponses uint64
	BatchFlushes      uint64
	BatchedFrames     uint64
	OpenConns         int
	// GrowthDials counts stripes dialed by load (AdaptiveStripes), as
	// opposed to dialed out of necessity.
	GrowthDials uint64
}

// TCPDialer issues calls over pooled TCP connections with responses
// correlated by envelope ID. Each endpoint gets up to Stripes connections,
// chosen round-robin per call, so a single TCP stream's head-of-line
// blocking and per-connection throughput ceiling stop being the bottleneck
// at high caller concurrency. Outbound frames on each connection are
// coalesced by a dedicated writer that flushes once per batch.
type TCPDialer struct {
	// DialTimeout bounds connection establishment. Zero means 5 s.
	DialTimeout time.Duration
	// TimeoutEvictAfter evicts a pooled connection after this many
	// consecutive call timeouts, so one wedged connection does not make
	// every later call to the endpoint eat the full timeout. Zero means 3.
	// With striping, eviction drops only the wedged stripe.
	TimeoutEvictAfter int
	// Stripes is the number of connections per endpoint, chosen round-robin
	// per call and dialed lazily. Zero means 1 (the pre-striping behaviour).
	// Set before the first Call; an endpoint's stripe count is fixed when
	// its first connection is dialed.
	Stripes int
	// AdaptiveStripes changes Stripes from a round-robin ramp into a
	// load-driven ceiling: one connection is dialed up front and additional
	// stripes are opened only while the mean in-flight calls per live
	// stripe meet StripeLoadThreshold. Lightly loaded endpoints keep one
	// socket; saturated ones grow to Stripes. Set before the first Call.
	AdaptiveStripes bool
	// StripeLoadThreshold is the mean in-flight calls per live stripe that
	// triggers adaptive growth. Zero means defaultStripeLoadThreshold.
	StripeLoadThreshold int
	// WriteQueue bounds each connection's outbound frame queue. Zero means
	// defaultWriteQueue.
	WriteQueue int
	// DisableFastPath reverts to the pre-fast-path behaviour: synchronous
	// write+flush per request under the connection lock and unpooled frame
	// reads. It exists as the honest baseline for the E10 experiment and as
	// an escape hatch. Set before the first Call.
	DisableFastPath bool

	mu     sync.Mutex
	conns  map[string]*tcpEndpoint
	closed bool

	// nextID is outside the pool mutex: call-ID allocation is on every
	// call's fast path and must not contend with dial/evict bookkeeping.
	nextID atomic.Uint64

	dials     atomic.Uint64
	timeouts  atomic.Uint64
	evictions atomic.Uint64
	orphaned  atomic.Uint64
	flushes   atomic.Uint64
	frames    atomic.Uint64
	growth    atomic.Uint64
}

var _ Dialer = (*TCPDialer)(nil)

// NewTCPDialer returns an empty connection pool.
func NewTCPDialer() *TCPDialer {
	return &TCPDialer{conns: make(map[string]*tcpEndpoint)}
}

// Stats returns a snapshot of the dialer counters.
func (d *TCPDialer) Stats() DialerStats {
	return DialerStats{
		Dials:             d.dials.Load(),
		Timeouts:          d.timeouts.Load(),
		Evictions:         d.evictions.Load(),
		OrphanedResponses: d.orphaned.Load(),
		BatchFlushes:      d.flushes.Load(),
		BatchedFrames:     d.frames.Load(),
		OpenConns:         d.openConns(),
		GrowthDials:       d.growth.Load(),
	}
}

// openConns counts live stripe connections across all endpoints.
func (d *TCPDialer) openConns() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, ep := range d.conns {
		for _, cc := range ep.stripes {
			if cc != nil {
				n++
			}
		}
	}
	return n
}

func (d *TCPDialer) evictAfter() int {
	if d.TimeoutEvictAfter > 0 {
		return d.TimeoutEvictAfter
	}
	return defaultTimeoutEvictAfter
}

func (d *TCPDialer) stripeCount() int {
	if d.Stripes > 0 {
		return d.Stripes
	}
	return 1
}

// defaultStripeLoadThreshold is the mean in-flight calls per live stripe
// above which AdaptiveStripes opens another connection. Eight in-flight
// calls is roughly where one coalesced TCP stream's per-flush ceiling starts
// to show in E10-style pipelined load.
const defaultStripeLoadThreshold = 8

func (d *TCPDialer) stripeLoadThreshold() int {
	if d.StripeLoadThreshold > 0 {
		return d.StripeLoadThreshold
	}
	return defaultStripeLoadThreshold
}

// tcpEndpoint is one endpoint's stripe set. Slots are dialed lazily and
// nilled on drop; the endpoint entry itself is removed from the pool once
// every slot is empty, so an unreachable endpoint does not pin map entries.
type tcpEndpoint struct {
	stripes []*tcpClientConn // guarded by TCPDialer.mu
	rr      atomic.Uint64    // round-robin cursor
	dialing atomic.Bool      // adaptive-growth dial in progress (anti-stampede)
}

// callOutcome is the resolution of one in-flight call: a response, or a
// classified transport error. Exactly one resolver delivers it (resolvers
// remove the pending entry under the lock before sending, and the channel
// is buffered), which is what lets waiters receive without polling.
type callOutcome struct {
	resp *wire.Envelope
	err  error
}

// respChPool recycles the per-call outcome channels of the fast path. A
// channel is returned only when it is provably quiescent: either the waiter
// consumed the one outcome a resolver committed to it, or the waiter removed
// the pending entry itself, in which case no resolver ever held a claim and
// nothing was or will be sent. The legacy path keeps allocating fresh
// channels — it is the pre-PR baseline and must not borrow fast-path wins.
var respChPool = sync.Pool{New: func() any { return make(chan callOutcome, 1) }}

// timerPool recycles the per-call timeout timers of the fast path. putTimer
// restores the invariant that a pooled timer is stopped with an empty
// channel, so Reset on reuse is safe.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if t, ok := timerPool.Get().(*time.Timer); ok {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer) {
	if !t.Stop() {
		// Fired. The waiter either consumed the tick (timeout branch) or it
		// is still buffered; drain so the next Reset starts clean.
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

type tcpClientConn struct {
	conn net.Conn
	bw   *bufio.Writer
	wr   *frameWriter // coalescing writer; nil when DisableFastPath

	mu             sync.Mutex // guards bw (legacy mode), pending, orphans, counters
	pending        map[uint64]chan callOutcome
	orphans        map[uint64]struct{} // timed-out IDs awaiting late responses
	consecTimeouts int
	dead           error

	// deadFlag mirrors dead != nil so the stripe picker can skip dying
	// connections without taking cc.mu; set (never cleared) wherever dead
	// is assigned.
	deadFlag atomic.Bool
	// nPending mirrors len(pending) (via syncPending, under cc.mu) so the
	// adaptive stripe picker can read in-flight load lock-free.
	nPending atomic.Int64
}

// syncPending refreshes the lock-free in-flight mirror; call under cc.mu
// after every pending-map mutation.
func (cc *tcpClientConn) syncPending() {
	cc.nPending.Store(int64(len(cc.pending)))
}

// resolve delivers out to the call waiting on id, if it is still pending.
// It reports whether this caller won the resolution.
func (cc *tcpClientConn) resolve(id uint64, out callOutcome) bool {
	cc.mu.Lock()
	ch, ok := cc.pending[id]
	if ok {
		delete(cc.pending, id)
		cc.syncPending()
	}
	cc.mu.Unlock()
	if ok {
		ch <- out
	}
	return ok
}

// Call implements Dialer.
func (d *TCPDialer) Call(ctx context.Context, endpoint string, req *wire.Envelope, timeout time.Duration) (*wire.Envelope, error) {
	scheme, addr, err := ParseEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	if scheme != SchemeTCP {
		return nil, fmt.Errorf("%w: TCP dialer got %q", ErrBadEndpoint, endpoint)
	}
	if timeout <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrInvalidTimeout, timeout)
	}
	wait, err := callWait(ctx, timeout)
	if err != nil {
		return nil, err
	}
	StampDeadline(ctx, req)
	cc, err := d.getConn(endpoint, addr)
	if err != nil {
		// Dial failure: nothing was sent, safe to retry elsewhere.
		return nil, safeErr(err)
	}

	id := d.nextID.Add(1)
	req.ID = id
	fast := cc.wr != nil
	var respCh chan callOutcome
	if fast {
		respCh = respChPool.Get().(chan callOutcome)
	} else {
		respCh = make(chan callOutcome, 1)
	}

	if fast {
		// Fast path: register, then hand the encoded frame to the coalescing
		// writer. The writer owns the buffer on success; if the frame is
		// later discarded unwritten, the writer resolves this call as
		// safe-to-retry through onNeverWritten.
		cc.mu.Lock()
		if cc.dead != nil {
			err := cc.dead
			cc.mu.Unlock()
			d.dropConn(endpoint, cc)
			respChPool.Put(respCh) // never registered: no resolver can hold it
			// The connection was already dead before this request was written.
			return nil, safeErr(err)
		}
		cc.pending[id] = respCh
		cc.syncPending()
		cc.mu.Unlock()
		buf := req.EncodePooled()
		if err := cc.wr.Enqueue(outFrame{buf: buf, id: id}); err != nil {
			wire.PutBuf(buf)
			cc.mu.Lock()
			_, wasPending := cc.pending[id]
			delete(cc.pending, id)
			cc.syncPending()
			cc.mu.Unlock()
			if wasPending {
				// The frame never entered the queue: provably unwritten, and
				// we reclaimed the pending entry, so nothing was or will be
				// sent on respCh.
				respChPool.Put(respCh)
				return nil, safeErr(fmt.Errorf("%w during write: %v", ErrReset, err))
			}
			// A death path resolved the call first; its verdict is committed
			// to respCh, so take that instead of inventing our own.
			out := <-respCh
			respChPool.Put(respCh)
			return d.finish(cc, out)
		}
	} else {
		// Legacy path: synchronous write+flush per request under the lock.
		cc.mu.Lock()
		if cc.dead != nil {
			err := cc.dead
			cc.mu.Unlock()
			d.dropConn(endpoint, cc)
			return nil, safeErr(err)
		}
		cc.pending[id] = respCh
		cc.syncPending()
		writeErr := wire.WriteFrame(cc.bw, req.Encode())
		if writeErr == nil {
			writeErr = cc.bw.Flush()
		}
		if writeErr != nil {
			delete(cc.pending, id)
			cc.syncPending()
			cc.mu.Unlock()
			d.dropConn(endpoint, cc)
			// A write error means the length-prefixed frame never fully reached
			// the kernel, so the server cannot have dispatched it: safe.
			return nil, safeErr(fmt.Errorf("%w during write: %v", ErrReset, writeErr))
		}
		cc.mu.Unlock()
	}

	var timer *time.Timer
	if fast {
		timer = getTimer(wait)
	} else {
		timer = time.NewTimer(wait)
	}
	select {
	case out := <-respCh:
		if fast {
			putTimer(timer)
			respChPool.Put(respCh)
		} else {
			timer.Stop()
		}
		return d.finish(cc, out)
	case <-ctx.Done():
		// The caller gave up (cancellation or its deadline, whichever ctx
		// carries). The request may already be on the wire, so the server may
		// execute it anyway; keep the orphan watch so a late response is
		// accounted rather than dropped silently. Cancellation says nothing
		// about connection health, so it does not feed timeout eviction.
		cc.mu.Lock()
		_, wasPending := cc.pending[id]
		if wasPending {
			delete(cc.pending, id)
			cc.syncPending()
			if len(cc.orphans) < maxOrphanWatch {
				cc.orphans[id] = struct{}{}
			}
		}
		cc.mu.Unlock()
		if !wasPending {
			// A resolver won the race; its outcome is committed to respCh.
			// Cancellation still wins, but a real response that loses this
			// race is an orphan for accounting, not a silent drop.
			if out := <-respCh; out.resp != nil {
				d.orphaned.Add(1)
			}
		}
		if fast {
			// Either we reclaimed the pending entry (no send ever) or we
			// consumed the committed outcome above: quiescent either way.
			putTimer(timer)
			respChPool.Put(respCh)
		} else {
			timer.Stop()
		}
		return nil, &CallError{Class: RetryNever, Err: ctx.Err()}
	case <-timer.C:
		cc.mu.Lock()
		_, wasPending := cc.pending[id]
		if wasPending {
			delete(cc.pending, id)
			cc.syncPending()
			if len(cc.orphans) < maxOrphanWatch {
				cc.orphans[id] = struct{}{}
			}
			cc.consecTimeouts++
		}
		evict := cc.consecTimeouts >= d.evictAfter()
		cc.mu.Unlock()
		if !wasPending {
			// A resolver claimed this call as the timer fired; its outcome is
			// already committed to respCh (resolvers delete the pending entry
			// before sending on the buffered channel), so block for it. The
			// old non-blocking poll here silently dropped responses still in
			// flight between the delete and the send.
			out := <-respCh
			if fast {
				putTimer(timer)
				respChPool.Put(respCh)
			}
			return d.finish(cc, out)
		}
		d.timeouts.Add(1)
		if evict {
			d.evictions.Add(1)
			d.dropConn(endpoint, cc)
		}
		if fast {
			// The tick was consumed and the pending entry reclaimed.
			putTimer(timer)
			respChPool.Put(respCh)
		}
		return nil, ambiguousErr(fmt.Errorf("%w: %s after %v", ErrTimeout, endpoint, wait))
	}
}

// finish translates a delivered outcome into Call's return values, resetting
// the wedge detector on any real response.
func (d *TCPDialer) finish(cc *tcpClientConn, out callOutcome) (*wire.Envelope, error) {
	if out.err != nil {
		return nil, out.err
	}
	cc.mu.Lock()
	cc.consecTimeouts = 0
	cc.mu.Unlock()
	return out.resp, nil
}

// Close implements Dialer.
func (d *TCPDialer) Close() error {
	d.mu.Lock()
	d.closed = true
	conns := make([]*tcpClientConn, 0, len(d.conns))
	for _, ep := range d.conns {
		for _, cc := range ep.stripes {
			if cc != nil {
				conns = append(conns, cc)
			}
		}
	}
	d.conns = make(map[string]*tcpEndpoint)
	d.mu.Unlock()
	for _, cc := range conns {
		_ = cc.conn.Close()
		if cc.wr != nil {
			cc.wr.Stop()
		}
	}
	return nil
}

// getConn picks (or dials) the stripe connection for one call.
//
// Static mode keeps the original lazy round-robin ramp — the rr slot dials
// when empty — with one fix: a stripe whose connection is already marked
// dead (writer error or read-loop death racing its removal) is skipped when
// a live alternative exists, instead of being handed out to fail the call.
//
// Adaptive mode (AdaptiveStripes) treats Stripes as a ceiling: the first
// call dials one connection, later calls rotate over live stripes, and a new
// stripe is dialed only while mean in-flight load per live stripe reaches
// StripeLoadThreshold (one grower at a time per endpoint).
func (d *TCPDialer) getConn(endpoint, addr string) (*tcpClientConn, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	ep := d.conns[endpoint]
	if ep == nil {
		ep = &tcpEndpoint{stripes: make([]*tcpClientConn, d.stripeCount())}
		d.conns[endpoint] = ep
	}
	n := len(ep.stripes)
	start := int(ep.rr.Add(1) % uint64(n))

	// One scan from the rr cursor: first live stripe wins; remember the
	// first empty slot and any dead conn, and sum in-flight load.
	var live, deadCC *tcpClientConn
	emptyIdx, liveCount := -1, 0
	var pendingSum int64
	for i := 0; i < n; i++ {
		cc := ep.stripes[(start+i)%n]
		switch {
		case cc == nil:
			if emptyIdx < 0 {
				emptyIdx = (start + i) % n
			}
		case cc.deadFlag.Load():
			if deadCC == nil {
				deadCC = cc
			}
		default:
			if live == nil {
				live = cc
			}
			liveCount++
			pendingSum += cc.nPending.Load()
		}
	}

	idx, grow := -1, false
	if d.AdaptiveStripes {
		switch {
		case live == nil && emptyIdx >= 0:
			idx = emptyIdx // nothing usable: dial out of necessity
		case live != nil && emptyIdx >= 0 &&
			pendingSum >= int64(liveCount)*int64(d.stripeLoadThreshold()):
			idx, grow = emptyIdx, true
		}
	} else if cc := ep.stripes[start]; cc == nil {
		idx = start // lazy ramp: the rr slot dials when empty
	} else if cc.deadFlag.Load() && live == nil && emptyIdx >= 0 {
		idx = emptyIdx // rr hit a dead conn, nothing live: dial a fresh slot
	}

	if idx < 0 {
		pick := live
		if pick == nil {
			// Only dead conns remain and no slot is free to redial: hand one
			// back; Call fails it fast with a safe, retryable error.
			pick = deadCC
		}
		if pick != nil {
			d.mu.Unlock()
			return pick, nil
		}
		idx = start // unreachable (some slot is always nil or occupied)
	}
	if grow {
		if !ep.dialing.CompareAndSwap(false, true) {
			// Another caller is already growing this endpoint; don't stampede
			// dials, just use a live stripe.
			d.mu.Unlock()
			return live, nil
		}
		defer ep.dialing.Store(false)
	}
	d.mu.Unlock()

	dialTimeout := d.DialTimeout
	if dialTimeout == 0 {
		dialTimeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrUnreachable, addr, err)
	}
	d.dials.Add(1)
	if grow {
		d.growth.Add(1)
	}
	cc := &tcpClientConn{
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		pending: make(map[uint64]chan callOutcome),
		orphans: make(map[uint64]struct{}),
	}

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		_ = conn.Close()
		return nil, ErrClosed
	}
	cur := d.conns[endpoint]
	if cur == nil {
		// The endpoint entry was dropped (every stripe died) while we were
		// dialing; reinstate it.
		cur = &tcpEndpoint{stripes: make([]*tcpClientConn, d.stripeCount())}
		d.conns[endpoint] = cur
	}
	if idx >= len(cur.stripes) {
		idx %= len(cur.stripes)
	}
	if existing := cur.stripes[idx]; existing != nil {
		// Lost the race for this stripe; use the winner's connection.
		d.mu.Unlock()
		_ = conn.Close()
		return existing, nil
	}
	cur.stripes[idx] = cc
	d.mu.Unlock()

	if !d.DisableFastPath {
		cc.wr = newFrameWriter(cc.bw, d.WriteQueue, &d.flushes, &d.frames,
			func(err error) {
				// First write error: mark the conn dead and drop it. Closing
				// the socket makes the read loop fail every call that may
				// already be on the wire as ambiguous; frames still queued
				// behind the error are failed safe via onNeverWritten.
				cc.mu.Lock()
				if cc.dead == nil {
					cc.dead = fmt.Errorf("%w during write: %v", ErrReset, err)
				}
				cc.deadFlag.Store(true)
				cc.mu.Unlock()
				d.dropConn(endpoint, cc)
			},
			func(id uint64, err error) {
				// This frame provably never reached the wire: safe to retry.
				cc.resolve(id, callOutcome{err: safeErr(fmt.Errorf("%w during write: %v", ErrReset, err))})
			})
	}
	go d.readLoop(endpoint, cc)
	return cc, nil
}

func (d *TCPDialer) readLoop(endpoint string, cc *tcpClientConn) {
	br := bufio.NewReader(cc.conn)
	var loopErr error
	for {
		var frame []byte
		var err error
		if cc.wr != nil {
			frame, err = wire.ReadFramePooled(br)
		} else {
			frame, err = wire.ReadFrame(br)
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				loopErr = fmt.Errorf("%w: connection closed by peer", ErrUnreachable)
			} else {
				loopErr = fmt.Errorf("%w: %v", ErrUnreachable, err)
			}
			break
		}
		resp, err := wire.DecodeEnvelope(frame)
		if err != nil {
			if cc.wr != nil {
				wire.PutBuf(frame)
			}
			loopErr = fmt.Errorf("%w: %v", ErrUnreachable, err)
			break
		}
		cc.mu.Lock()
		ch, ok := cc.pending[resp.ID]
		delete(cc.pending, resp.ID)
		cc.syncPending()
		var orphan bool
		if !ok {
			if _, orphan = cc.orphans[resp.ID]; orphan {
				delete(cc.orphans, resp.ID)
			}
		}
		cc.mu.Unlock()
		if ok {
			if cc.wr != nil {
				// The payload aliases the pooled frame, which is reused the
				// moment it is released: detach it before handing the
				// envelope to the caller.
				if len(resp.Payload) > 0 {
					p := make([]byte, len(resp.Payload))
					copy(p, resp.Payload)
					resp.Payload = p
				}
				wire.PutBuf(frame)
			}
			ch <- callOutcome{resp: resp}
		} else {
			if orphan {
				// The caller timed out and moved on; the server executed the
				// request anyway. Account for it instead of dropping silently.
				d.orphaned.Add(1)
			}
			if cc.wr != nil {
				wire.PutBuf(frame)
			}
		}
	}
	cc.mu.Lock()
	if cc.dead == nil {
		cc.dead = loopErr
	}
	cc.deadFlag.Store(true)
	pend := cc.pending
	cc.pending = make(map[uint64]chan callOutcome)
	cc.orphans = make(map[uint64]struct{})
	cc.syncPending()
	cc.mu.Unlock()
	for _, ch := range pend {
		// These frames were written (or queued) but never answered: the
		// server may or may not have executed them.
		ch <- callOutcome{err: ambiguousErr(fmt.Errorf("%w: connection lost mid-call", ErrUnreachable))}
	}
	d.dropConn(endpoint, cc)
}

// dropConn removes cc from its endpoint's stripe set (removing the endpoint
// entry once every stripe is gone), closes the socket, and stops the
// coalescing writer. Safe to call from any path, multiple times.
func (d *TCPDialer) dropConn(endpoint string, cc *tcpClientConn) {
	d.mu.Lock()
	if ep, ok := d.conns[endpoint]; ok {
		live := 0
		for i, c := range ep.stripes {
			if c == cc {
				ep.stripes[i] = nil
			} else if c != nil {
				live++
			}
		}
		if live == 0 {
			delete(d.conns, endpoint)
		}
	}
	d.mu.Unlock()
	_ = cc.conn.Close()
	if cc.wr != nil {
		// Asynchronous: dropConn may run on the writer's own goroutine (via
		// onDead), where a synchronous Stop would deadlock.
		go cc.wr.Stop()
	}
}
