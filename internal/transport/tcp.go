package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"godcdo/internal/wire"
)

// ServerStats counts TCPServer outcomes, mirroring DialerStats on the other
// side of the wire. DecodeErrors count connections dropped because a frame
// failed to decode (stream desynchronisation); DroppedFrames count responses
// deliberately withheld (the Dropped fault-injection sentinel).
type ServerStats struct {
	AcceptedConns uint64
	ActiveConns   int64
	DecodeErrors  uint64
	DroppedFrames uint64
}

// TCPServer serves envelopes over TCP. Each connection is read by one
// goroutine; requests are dispatched concurrently so a slow handler does not
// head-of-line block pipelined callers.
type TCPServer struct {
	handler  Handler
	listener net.Listener

	// ctx is the server's lifetime context, cancelled on Close so in-flight
	// handlers observe shutdown. It is the ctx passed to Handler.Handle.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	accepted     atomic.Uint64
	active       atomic.Int64
	decodeErrors atomic.Uint64
	dropped      atomic.Uint64
}

var _ Server = (*TCPServer)(nil)

// ListenTCP starts a server on addr ("127.0.0.1:0" picks a free port).
func ListenTCP(addr string, handler Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %q: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &TCPServer{handler: handler, listener: ln, ctx: ctx, cancel: cancel, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Stats returns a snapshot of the server counters.
func (s *TCPServer) Stats() ServerStats {
	return ServerStats{
		AcceptedConns: s.accepted.Load(),
		ActiveConns:   s.active.Load(),
		DecodeErrors:  s.decodeErrors.Load(),
		DroppedFrames: s.dropped.Load(),
	}
}

// Endpoint implements Server.
func (s *TCPServer) Endpoint() string {
	return "tcp:" + s.listener.Addr().String()
}

// Close implements Server.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.cancel()
	err := s.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.accepted.Add(1)
		s.active.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
		s.active.Add(-1)
	}()

	var writeMu sync.Mutex
	bw := bufio.NewWriter(conn)
	br := bufio.NewReader(conn)
	var handlers sync.WaitGroup
	defer handlers.Wait()

	for {
		frame, err := wire.ReadFrame(br)
		if err != nil {
			return // EOF or broken connection
		}
		req, err := wire.DecodeEnvelope(frame)
		if err != nil {
			// Stream desynchronised; the connection must drop (nothing after
			// a bad frame can be trusted), but count it so operators can see
			// protocol corruption instead of a silent disconnect.
			s.decodeErrors.Add(1)
			return
		}
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			resp := s.handler.Handle(s.ctx, req)
			if resp == Dropped {
				s.dropped.Add(1)
				return // injected response loss: leave the caller to time out
			}
			if resp == nil {
				resp = &wire.Envelope{
					Kind: wire.KindError, ID: req.ID,
					Code: wire.CodeInternal, ErrorMsg: "nil response from handler",
				}
			}
			resp.ID = req.ID
			writeMu.Lock()
			defer writeMu.Unlock()
			if err := wire.WriteFrame(bw, resp.Encode()); err != nil {
				return
			}
			_ = bw.Flush()
		}()
	}
}

// maxOrphanWatch bounds how many timed-out call IDs one connection tracks
// for late-response accounting; entries are dropped when the response
// arrives or the connection dies.
const maxOrphanWatch = 1024

// defaultTimeoutEvictAfter is the consecutive-timeout threshold after which
// a pooled connection is presumed wedged and evicted.
const defaultTimeoutEvictAfter = 3

// DialerStats counts TCPDialer outcomes. OrphanedResponses are responses
// that arrived after their call had already timed out — evidence that the
// server executed a request whose caller had given up, which is exactly the
// ambiguity the invoke retry policy must respect.
type DialerStats struct {
	Dials             uint64
	Timeouts          uint64
	Evictions         uint64
	OrphanedResponses uint64
}

// TCPDialer issues calls over pooled TCP connections, one connection per
// endpoint, with responses correlated by envelope ID.
type TCPDialer struct {
	// DialTimeout bounds connection establishment. Zero means 5 s.
	DialTimeout time.Duration
	// TimeoutEvictAfter evicts a pooled connection after this many
	// consecutive call timeouts, so one wedged connection does not make
	// every later call to the endpoint eat the full timeout. Zero means 3.
	TimeoutEvictAfter int

	mu     sync.Mutex
	conns  map[string]*tcpClientConn
	closed bool

	// nextID is outside the pool mutex: call-ID allocation is on every
	// call's fast path and must not contend with dial/evict bookkeeping.
	nextID atomic.Uint64

	dials     atomic.Uint64
	timeouts  atomic.Uint64
	evictions atomic.Uint64
	orphaned  atomic.Uint64
}

var _ Dialer = (*TCPDialer)(nil)

// NewTCPDialer returns an empty connection pool.
func NewTCPDialer() *TCPDialer {
	return &TCPDialer{conns: make(map[string]*tcpClientConn)}
}

// Stats returns a snapshot of the dialer counters.
func (d *TCPDialer) Stats() DialerStats {
	return DialerStats{
		Dials:             d.dials.Load(),
		Timeouts:          d.timeouts.Load(),
		Evictions:         d.evictions.Load(),
		OrphanedResponses: d.orphaned.Load(),
	}
}

func (d *TCPDialer) evictAfter() int {
	if d.TimeoutEvictAfter > 0 {
		return d.TimeoutEvictAfter
	}
	return defaultTimeoutEvictAfter
}

type tcpClientConn struct {
	conn net.Conn
	bw   *bufio.Writer

	mu             sync.Mutex // guards bw, pending, orphans, counters
	pending        map[uint64]chan *wire.Envelope
	orphans        map[uint64]struct{} // timed-out IDs awaiting late responses
	consecTimeouts int
	dead           error
}

// Call implements Dialer.
func (d *TCPDialer) Call(ctx context.Context, endpoint string, req *wire.Envelope, timeout time.Duration) (*wire.Envelope, error) {
	scheme, addr, err := ParseEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	if scheme != SchemeTCP {
		return nil, fmt.Errorf("%w: TCP dialer got %q", ErrBadEndpoint, endpoint)
	}
	if timeout <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrInvalidTimeout, timeout)
	}
	wait, err := callWait(ctx, timeout)
	if err != nil {
		return nil, err
	}
	StampDeadline(ctx, req)
	cc, err := d.getConn(endpoint, addr)
	if err != nil {
		// Dial failure: nothing was sent, safe to retry elsewhere.
		return nil, safeErr(err)
	}

	id := d.nextID.Add(1)
	req.ID = id

	respCh := make(chan *wire.Envelope, 1)
	cc.mu.Lock()
	if cc.dead != nil {
		err := cc.dead
		cc.mu.Unlock()
		d.dropConn(endpoint, cc)
		// The connection was already dead before this request was written.
		return nil, safeErr(err)
	}
	cc.pending[id] = respCh
	writeErr := wire.WriteFrame(cc.bw, req.Encode())
	if writeErr == nil {
		writeErr = cc.bw.Flush()
	}
	if writeErr != nil {
		delete(cc.pending, id)
		cc.mu.Unlock()
		d.dropConn(endpoint, cc)
		// A write error means the length-prefixed frame never fully reached
		// the kernel, so the server cannot have dispatched it: safe.
		return nil, safeErr(fmt.Errorf("%w during write: %v", ErrReset, writeErr))
	}
	cc.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case resp := <-respCh:
		if resp == nil {
			// The frame was written but the connection died before the
			// response: the server may or may not have executed the call.
			return nil, ambiguousErr(fmt.Errorf("%w: connection lost mid-call", ErrUnreachable))
		}
		cc.mu.Lock()
		cc.consecTimeouts = 0
		cc.mu.Unlock()
		return resp, nil
	case <-ctx.Done():
		// The caller gave up (cancellation or its deadline, whichever ctx
		// carries). The request was already written, so the server may
		// execute it anyway; keep the orphan watch so a late response is
		// accounted rather than dropped silently. Cancellation says nothing
		// about connection health, so it does not feed timeout eviction.
		cc.mu.Lock()
		if _, wasPending := cc.pending[id]; wasPending {
			delete(cc.pending, id)
			if len(cc.orphans) < maxOrphanWatch {
				cc.orphans[id] = struct{}{}
			}
		}
		cc.mu.Unlock()
		return nil, &CallError{Class: RetryNever, Err: ctx.Err()}
	case <-timer.C:
		cc.mu.Lock()
		_, wasPending := cc.pending[id]
		if wasPending {
			delete(cc.pending, id)
			if len(cc.orphans) < maxOrphanWatch {
				cc.orphans[id] = struct{}{}
			}
		}
		cc.consecTimeouts++
		evict := cc.consecTimeouts >= d.evictAfter()
		cc.mu.Unlock()
		if !wasPending {
			// The reader resolved this call as the timer fired; prefer the
			// actual outcome over a spurious timeout.
			select {
			case resp := <-respCh:
				if resp != nil {
					return resp, nil
				}
				return nil, ambiguousErr(fmt.Errorf("%w: connection lost mid-call", ErrUnreachable))
			default:
			}
		}
		d.timeouts.Add(1)
		if evict {
			d.evictions.Add(1)
			d.dropConn(endpoint, cc)
		}
		return nil, ambiguousErr(fmt.Errorf("%w: %s after %v", ErrTimeout, endpoint, wait))
	}
}

// Close implements Dialer.
func (d *TCPDialer) Close() error {
	d.mu.Lock()
	d.closed = true
	conns := make([]*tcpClientConn, 0, len(d.conns))
	for _, c := range d.conns {
		conns = append(conns, c)
	}
	d.conns = make(map[string]*tcpClientConn)
	d.mu.Unlock()
	for _, c := range conns {
		_ = c.conn.Close()
	}
	return nil
}

func (d *TCPDialer) getConn(endpoint, addr string) (*tcpClientConn, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	if cc, ok := d.conns[endpoint]; ok {
		d.mu.Unlock()
		return cc, nil
	}
	d.mu.Unlock()

	dialTimeout := d.DialTimeout
	if dialTimeout == 0 {
		dialTimeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrUnreachable, addr, err)
	}
	d.dials.Add(1)
	cc := &tcpClientConn{
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		pending: make(map[uint64]chan *wire.Envelope),
		orphans: make(map[uint64]struct{}),
	}

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		_ = conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := d.conns[endpoint]; ok {
		// Lost the race; use the winner's connection.
		d.mu.Unlock()
		_ = conn.Close()
		return existing, nil
	}
	d.conns[endpoint] = cc
	d.mu.Unlock()

	go d.readLoop(endpoint, cc)
	return cc, nil
}

func (d *TCPDialer) readLoop(endpoint string, cc *tcpClientConn) {
	br := bufio.NewReader(cc.conn)
	var loopErr error
	for {
		frame, err := wire.ReadFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				loopErr = fmt.Errorf("%w: connection closed by peer", ErrUnreachable)
			} else {
				loopErr = fmt.Errorf("%w: %v", ErrUnreachable, err)
			}
			break
		}
		resp, err := wire.DecodeEnvelope(frame)
		if err != nil {
			loopErr = fmt.Errorf("%w: %v", ErrUnreachable, err)
			break
		}
		cc.mu.Lock()
		ch, ok := cc.pending[resp.ID]
		delete(cc.pending, resp.ID)
		var orphan bool
		if !ok {
			if _, orphan = cc.orphans[resp.ID]; orphan {
				delete(cc.orphans, resp.ID)
			}
		}
		cc.mu.Unlock()
		if ok {
			ch <- resp
		} else if orphan {
			// The caller timed out and moved on; the server executed the
			// request anyway. Account for it instead of dropping silently.
			d.orphaned.Add(1)
		}
	}
	cc.mu.Lock()
	cc.dead = loopErr
	for id, ch := range cc.pending {
		delete(cc.pending, id)
		close(ch)
	}
	cc.orphans = make(map[uint64]struct{})
	cc.mu.Unlock()
	d.dropConn(endpoint, cc)
}

func (d *TCPDialer) dropConn(endpoint string, cc *tcpClientConn) {
	d.mu.Lock()
	if cur, ok := d.conns[endpoint]; ok && cur == cc {
		delete(d.conns, endpoint)
	}
	d.mu.Unlock()
	_ = cc.conn.Close()
}
