package transport

import (
	"bufio"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"godcdo/internal/wire"
)

// errWriterClosed is returned by enqueue after the writer has been stopped
// or has died on a write error.
var errWriterClosed = errors.New("transport: connection writer closed")

// defaultWriteQueue bounds a connection's outbound frame queue when the
// owner does not choose a depth. Deep enough that a pipelining burst rarely
// blocks, shallow enough that a stalled peer cannot buffer unbounded memory.
const defaultWriteQueue = 128

// combineYieldBudget caps how many times one combine yields the processor
// hoping to grow its batch. Each yield that nets new frames earns another
// (up to the budget); a yield that nets nothing flushes immediately. With an
// empty run queue a yield costs nanoseconds, so a latency-sensitive lone
// caller is unaffected.
const combineYieldBudget = 5

// outFrame is one encoded envelope queued for write-out. buf is pooled
// (wire.PutBuf-able); the writer owns and releases it once written or
// discarded. id, when non-zero, names the call awaiting a response so a
// frame that provably never reached the wire can be failed as safe-to-retry.
type outFrame struct {
	buf []byte
	id  uint64
}

// frameWriter coalesces outbound frames onto one connection without a
// dedicated goroutine. Enqueue places the frame on a bounded queue and then
// tries to become the combiner: the one goroutine holding mu, which drains
// the queue, writes every frame it finds, and flushes once per drain. A
// goroutine that loses the TryLock returns immediately — the active
// combiner's post-unlock recheck guarantees its frame is written, by that
// combiner or a successor.
//
// The shape matters on small machines. A lone caller combines a batch of
// one, which is byte-for-byte the legacy synchronous write+flush — no
// goroutine handoff, no added latency. Under pipelining, whichever caller
// holds the lock writes everyone's frames and the flush syscall is amortised
// over the whole batch; the peers' read loops then receive many frames per
// read syscall for free. A dedicated writer goroutine gets neither property:
// it adds a scheduler wakeup per frame, and on a loaded single-core box it
// drains one frame at a time, flushing batches of one.
//
// Failure semantics: the first write or flush error kills the writer. Frames
// already handed to the buffered writer by then may have partially reached
// the kernel — their fate is ambiguous, and resolving them is left to the
// connection's death path (the read loop fails all still-pending calls).
// Frames still queued at death provably never reached the wire; each is
// reported through onNeverWritten so its caller can be failed safe-to-retry.
type frameWriter struct {
	bw *bufio.Writer
	ch chan outFrame
	mu sync.Mutex // held by the active combiner; guards bw

	stop     chan struct{} // closed by Stop: reject new frames, drain the rest
	stopOnce sync.Once
	dead     chan struct{} // closed on the first write error
	deadOnce sync.Once

	// onDead, when non-nil, runs once with the first write error, before any
	// onNeverWritten call. onNeverWritten, when non-nil, runs for every
	// frame with a non-zero id that was discarded without being written.
	// Both run on whichever goroutine is combining when the error surfaces.
	onDead         func(err error)
	onNeverWritten func(id uint64, err error)

	// flushes/frames are owner-provided batch counters (frames÷flushes is
	// the realised batch size).
	flushes *atomic.Uint64
	frames  *atomic.Uint64
}

// newFrameWriter builds a writer over bw with the given queue depth
// (defaultWriteQueue when <= 0).
func newFrameWriter(bw *bufio.Writer, queue int, flushes, frames *atomic.Uint64,
	onDead func(error), onNeverWritten func(uint64, error)) *frameWriter {
	if queue <= 0 {
		queue = defaultWriteQueue
	}
	return &frameWriter{
		bw:             bw,
		ch:             make(chan outFrame, queue),
		stop:           make(chan struct{}),
		dead:           make(chan struct{}),
		onDead:         onDead,
		onNeverWritten: onNeverWritten,
		flushes:        flushes,
		frames:         frames,
	}
}

// Enqueue hands one frame to the writer, blocking while the queue is full,
// and then pumps: the caller either becomes the combiner and writes the
// batch itself, or observes an active combiner that is guaranteed to write
// the frame. On success the writer owns f.buf (a dead writer releases it and
// reports it through onNeverWritten). On error the caller keeps ownership
// and knows the frame never reached the wire.
func (w *frameWriter) Enqueue(f outFrame) error {
	// Fast-fail before blocking: a dead or stopped writer never drains.
	select {
	case <-w.dead:
		return errWriterClosed
	case <-w.stop:
		return errWriterClosed
	default:
	}
	select {
	case w.ch <- f:
	case <-w.dead:
		return errWriterClosed
	case <-w.stop:
		return errWriterClosed
	}
	w.pump()
	return nil
}

// pump makes this goroutine the combiner if no other goroutine already is.
// The post-unlock recheck closes the handoff race: a frame enqueued while we
// held the lock, whose owner then failed its own TryLock against us, must
// not strand — the channel length check happens after our unlock, so it sees
// any such frame and loops to claim it.
func (w *frameWriter) pump() {
	for {
		if !w.mu.TryLock() {
			// An active combiner exists. Our frame was enqueued before its
			// unlock, so its recheck (or a successor's) will see it.
			return
		}
		w.combine()
		w.mu.Unlock()
		if len(w.ch) == 0 {
			return
		}
	}
}

// combine drains the queue and flushes once. Must hold w.mu. After death it
// keeps draining, discarding each frame as never-written, so blocked
// enqueuers unstick and their calls fail safe instead of timing out.
//
// Before the flush, the combiner yields the processor once. This is what
// makes batches form when goroutines outnumber cores: runnable peers — a
// pipelined caller just woken by its previous response, a handler goroutine
// about to enqueue its reply — get to run up to their own enqueue, lose the
// TryLock to us, and land in the queue we are about to drain. Without the
// yield, a combiner on a saturated single-core box always finishes its
// write+flush before any peer runs, and every "batch" is one frame. With no
// other runnable goroutine the yield is a few nanoseconds, so a lone
// low-latency caller pays nothing.
func (w *frameWriter) combine() {
	wrote := 0
	yields := 0
	for {
		select {
		case f := <-w.ch:
			if w.isDead() {
				w.neverWritten(f)
				continue
			}
			err := wire.WriteFrame(w.bw, f.buf)
			wire.PutBuf(f.buf)
			if err != nil {
				w.died(err)
				continue
			}
			wrote++
		default:
			if wrote > 0 && yields < combineYieldBudget && !w.isDead() {
				yields++
				runtime.Gosched()
				if len(w.ch) > 0 {
					continue // the yield produced frames: grow the batch
				}
				// Nothing arrived; stop waiting and flush what we have.
			}
			if wrote > 0 && !w.isDead() {
				if err := w.bw.Flush(); err != nil {
					w.died(err)
					return
				}
				if w.flushes != nil {
					w.flushes.Add(1)
					w.frames.Add(uint64(wrote))
				}
			}
			return
		}
	}
}

// Stop rejects further frames, then drains and flushes whatever is queued
// (discarding it if the writer is dead). Idempotent and safe from multiple
// goroutines. Callers must first guarantee no Enqueue can race the stop (the
// transport stops the writer only after every handler/caller that might
// enqueue has finished or the connection is being torn down); an enqueue
// that does race sees errWriterClosed or, at worst, leaves its frame for
// the GC.
func (w *frameWriter) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	for {
		w.mu.Lock()
		w.combine()
		w.mu.Unlock()
		if len(w.ch) == 0 {
			return
		}
	}
}

func (w *frameWriter) isDead() bool {
	select {
	case <-w.dead:
		return true
	default:
		return false
	}
}

// died marks the writer dead and notifies the owner exactly once. Runs with
// w.mu held, on the combining goroutine.
func (w *frameWriter) died(err error) {
	w.deadOnce.Do(func() {
		close(w.dead)
		if w.onDead != nil {
			w.onDead(err)
		}
	})
}

func (w *frameWriter) neverWritten(f outFrame) {
	wire.PutBuf(f.buf)
	if f.id != 0 && w.onNeverWritten != nil {
		w.onNeverWritten(f.id, errWriterClosed)
	}
}
