package transport

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godcdo/internal/wire"
)

// TestTCPPooledFrameConcurrentReuse hammers the pooled read/encode path with
// concurrent callers and payloads spanning multiple pool size classes. Run
// under -race this catches a frame released while its bytes are still
// aliased; the content checks catch reuse corruption that -race cannot see.
func TestTCPPooledFrameConcurrentReuse(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := NewTCPDialer()
	d.Stripes = 2
	defer d.Close()

	sizes := []int{0, 7, 300, 600, 5000, 70000}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				size := sizes[(g+i)%len(sizes)]
				payload := bytes.Repeat([]byte{byte(g*31 + i)}, size)
				resp, err := d.Call(context.Background(), srv.Endpoint(),
					&wire.Envelope{Kind: wire.KindRequest, Payload: payload}, 5*time.Second)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp.Payload, payload) {
					errs <- fmt.Errorf("goroutine %d call %d: payload corrupted (%d bytes vs %d)",
						g, i, len(resp.Payload), len(payload))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTCPStripedDialerOpensStripes verifies concurrent calls spread over the
// configured stripe count — no more, no fewer once warm.
func TestTCPStripedDialerOpensStripes(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := NewTCPDialer()
	d.Stripes = 4
	defer d.Close()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.Call(context.Background(), srv.Endpoint(),
				&wire.Envelope{Kind: wire.KindRequest, Payload: []byte("x")}, 5*time.Second); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := d.Stats()
	if st.OpenConns != 4 {
		t.Fatalf("OpenConns = %d, want 4 (one per stripe)", st.OpenConns)
	}
	if st.Dials < 4 {
		// Concurrent callers may race extra dials whose losers are discarded;
		// at least one dial per stripe must have happened.
		t.Fatalf("Dials = %d, want >= 4", st.Dials)
	}
	d.mu.Lock()
	nEndpoints := len(d.conns)
	d.mu.Unlock()
	if nEndpoints != 1 {
		t.Fatalf("endpoint entries = %d, want 1 (stripes share one entry)", nEndpoints)
	}
}

// TestTCPStripeFailover kills one stripe's connection and verifies the
// endpoint keeps serving: surviving stripes carry calls and the dead stripe
// is redialed lazily, with no error surfacing to later callers.
func TestTCPStripeFailover(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := NewTCPDialer()
	d.Stripes = 2
	defer d.Close()

	// Warm both stripes.
	for i := 0; i < 2; i++ {
		if _, err := d.Call(context.Background(), srv.Endpoint(),
			&wire.Envelope{Kind: wire.KindRequest, Payload: []byte("warm")}, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if st := d.Stats(); st.OpenConns != 2 {
		t.Fatalf("OpenConns = %d, want 2 after warmup", st.OpenConns)
	}

	// Kill one stripe out from under the dialer.
	d.mu.Lock()
	var victim *tcpClientConn
	for _, ep := range d.conns {
		for _, cc := range ep.stripes {
			if cc != nil {
				victim = cc
				break
			}
		}
	}
	d.mu.Unlock()
	if victim == nil {
		t.Fatal("no live stripe to kill")
	}
	_ = victim.conn.Close()

	// Wait for the read loop to notice and drop the stripe.
	deadline := time.Now().Add(2 * time.Second)
	for d.Stats().OpenConns != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("dead stripe never dropped: OpenConns = %d", d.Stats().OpenConns)
		}
		time.Sleep(time.Millisecond)
	}

	// Every later call succeeds: the survivor carries its share and the dead
	// stripe redials on first use.
	for i := 0; i < 8; i++ {
		if _, err := d.Call(context.Background(), srv.Endpoint(),
			&wire.Envelope{Kind: wire.KindRequest, Payload: []byte("after")}, 5*time.Second); err != nil {
			t.Fatalf("call %d after stripe death: %v", i, err)
		}
	}
	if st := d.Stats(); st.OpenConns != 2 || st.Dials != 3 {
		t.Fatalf("OpenConns = %d Dials = %d, want 2 and 3 (one redial)", st.OpenConns, st.Dials)
	}
}

// TestTCPCoalescingCountsBatches verifies the batch counters on both sides:
// every frame is accounted and flushes never exceed frames.
func TestTCPCoalescingCountsBatches(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := NewTCPDialer()
	defer d.Close()

	const calls = 64
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.Call(context.Background(), srv.Endpoint(),
				&wire.Envelope{Kind: wire.KindRequest, Payload: []byte("b")}, 5*time.Second); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	ds := d.Stats()
	if ds.BatchedFrames != calls {
		t.Fatalf("dialer BatchedFrames = %d, want %d", ds.BatchedFrames, calls)
	}
	if ds.BatchFlushes == 0 || ds.BatchFlushes > ds.BatchedFrames {
		t.Fatalf("dialer BatchFlushes = %d out of range (frames %d)", ds.BatchFlushes, ds.BatchedFrames)
	}
	ss := srv.Stats()
	if ss.BatchedFrames != calls {
		t.Fatalf("server BatchedFrames = %d, want %d", ss.BatchedFrames, calls)
	}
	if ss.BatchFlushes == 0 || ss.BatchFlushes > ss.BatchedFrames {
		t.Fatalf("server BatchFlushes = %d out of range (frames %d)", ss.BatchFlushes, ss.BatchedFrames)
	}
}

// TestTCPServerWorkerPoolBounds verifies MaxWorkers caps handler concurrency
// while every pipelined call still completes.
func TestTCPServerWorkerPoolBounds(t *testing.T) {
	var cur, peak atomic.Int64
	handler := HandlerFunc(func(ctx context.Context, req *wire.Envelope) *wire.Envelope {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return &wire.Envelope{Kind: wire.KindResponse, Payload: req.Payload}
	})
	srv, err := ListenTCPOptions("127.0.0.1:0", handler, TCPServerOptions{MaxWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := NewTCPDialer()
	d.Stripes = 4 // several read loops competing for the shared worker pool
	defer d.Close()

	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.Call(context.Background(), srv.Endpoint(),
				&wire.Envelope{Kind: wire.KindRequest, Payload: []byte("w")}, 10*time.Second); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("handler concurrency peaked at %d, want <= 2 (MaxWorkers)", p)
	}
}

// TestTCPLegacyModeRoundTrip pins the DisableFastPath escape hatch: calls
// work end to end and neither side's coalescer runs.
func TestTCPLegacyModeRoundTrip(t *testing.T) {
	srv, err := ListenTCPOptions("127.0.0.1:0", echoHandler(), TCPServerOptions{DisableFastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := NewTCPDialer()
	d.DisableFastPath = true
	defer d.Close()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("legacy-%d", i))
			resp, err := d.Call(context.Background(), srv.Endpoint(),
				&wire.Envelope{Kind: wire.KindRequest, Payload: payload}, 5*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(resp.Payload, payload) {
				t.Errorf("payload mismatch: %q", resp.Payload)
			}
		}(i)
	}
	wg.Wait()
	if ds := d.Stats(); ds.BatchFlushes != 0 || ds.BatchedFrames != 0 {
		t.Fatalf("legacy dialer used the coalescer: %+v", ds)
	}
	if ss := srv.Stats(); ss.BatchFlushes != 0 || ss.BatchedFrames != 0 {
		t.Fatalf("legacy server used the coalescer: %+v", ss)
	}
}

// TestTCPNilHandlerResponseFastPath pins the nil-response error envelope
// through the coalescing writer: the client must get a real CodeInternal
// error, not a hang or connection drop.
func TestTCPNilHandlerResponseFastPath(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", HandlerFunc(func(ctx context.Context, req *wire.Envelope) *wire.Envelope {
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := NewTCPDialer()
	defer d.Close()

	resp, err := d.Call(context.Background(), srv.Endpoint(),
		&wire.Envelope{Kind: wire.KindRequest, Method: "m"}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != wire.KindError || resp.Code != wire.CodeInternal {
		t.Fatalf("resp = %+v, want KindError/CodeInternal", resp)
	}
}

// gatedSink is an io.Writer whose Write blocks until released, then either
// succeeds or fails — the scaffolding for deterministic batch tests.
type gatedSink struct {
	entered chan struct{} // signalled when a Write starts blocking
	release chan error    // what the blocked Write returns
	wrote   [][]byte
}

func newGatedSink() *gatedSink {
	return &gatedSink{entered: make(chan struct{}, 8), release: make(chan error, 8)}
}

func (g *gatedSink) Write(p []byte) (int, error) {
	g.entered <- struct{}{}
	if err := <-g.release; err != nil {
		return 0, err
	}
	cp := make([]byte, len(p))
	copy(cp, p)
	g.wrote = append(g.wrote, cp)
	return len(p), nil
}

// TestFrameWriterCoalescesWhileBlocked pins the batching mechanism: frames
// that arrive while a flush is in flight go out together in the next flush.
func TestFrameWriterCoalescesWhileBlocked(t *testing.T) {
	sink := newGatedSink()
	var flushes, frames atomic.Uint64
	w := newFrameWriter(bufio.NewWriter(sink), 16, &flushes, &frames, nil, nil)

	enc := func(s string) []byte { b := wire.GetBuf(len(s)); copy(b, s); return b }
	// The first enqueuer becomes the combiner and blocks inside the gated
	// flush, so it runs on its own goroutine.
	first := make(chan error, 1)
	go func() { first <- w.Enqueue(outFrame{buf: enc("first")}) }()
	<-sink.entered // flush of batch 1 is now blocked in the sink
	// These lose the combine lock to the blocked flusher and return at once;
	// its post-flush recheck picks both up as one batch.
	if err := w.Enqueue(outFrame{buf: enc("second")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Enqueue(outFrame{buf: enc("third")}); err != nil {
		t.Fatal(err)
	}
	sink.release <- nil // batch 1 completes
	<-sink.entered      // batch 2 (second+third together) reaches the sink
	sink.release <- nil
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	w.Stop()

	if got := flushes.Load(); got != 2 {
		t.Fatalf("flushes = %d, want 2", got)
	}
	if got := frames.Load(); got != 3 {
		t.Fatalf("frames = %d, want 3", got)
	}
	if len(sink.wrote) != 2 {
		t.Fatalf("sink saw %d writes, want 2", len(sink.wrote))
	}
	if !bytes.Contains(sink.wrote[1], []byte("second")) || !bytes.Contains(sink.wrote[1], []byte("third")) {
		t.Fatalf("second flush missing coalesced frames: %q", sink.wrote[1])
	}
}

// TestFrameWriterFailsQueuedFramesSafe pins the failure-attribution split:
// frames queued behind a write error are reported never-written (the callers
// can retry safely), while the frame being written is left to the ambiguous
// connection-death path.
func TestFrameWriterFailsQueuedFramesSafe(t *testing.T) {
	sink := newGatedSink()
	var flushes, frames atomic.Uint64
	var mu sync.Mutex
	var failed []uint64
	var diedErr error
	w := newFrameWriter(bufio.NewWriter(sink), 16, &flushes, &frames,
		func(err error) {
			mu.Lock()
			diedErr = err
			mu.Unlock()
		},
		func(id uint64, err error) {
			mu.Lock()
			failed = append(failed, id)
			mu.Unlock()
		})

	enc := func(s string) []byte { b := wire.GetBuf(len(s)); copy(b, s); return b }
	first := make(chan error, 1)
	go func() { first <- w.Enqueue(outFrame{buf: enc("doomed"), id: 1}) }()
	<-sink.entered // frame 1's flush is in flight, its enqueuer combining
	if err := w.Enqueue(outFrame{buf: enc("queued-a"), id: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Enqueue(outFrame{buf: enc("queued-b"), id: 3}); err != nil {
		t.Fatal(err)
	}
	sink.release <- errors.New("wire cut") // frame 1's flush fails
	if err := <-first; err != nil {
		// Frame 1 entered the queue before the death, so its Enqueue reports
		// success; the failure reaches its caller through the ambiguous
		// connection-death path instead.
		t.Fatalf("doomed enqueue = %v, want nil (failure is attributed via conn death)", err)
	}
	w.Stop()

	mu.Lock()
	defer mu.Unlock()
	if diedErr == nil {
		t.Fatal("onDead never fired")
	}
	if len(failed) != 2 || failed[0] != 2 || failed[1] != 3 {
		t.Fatalf("never-written ids = %v, want [2 3] (frame 1 is ambiguous, not safe)", failed)
	}
	if err := w.Enqueue(outFrame{buf: enc("late"), id: 4}); !errors.Is(err, errWriterClosed) {
		t.Fatalf("enqueue after death = %v, want errWriterClosed", err)
	}
}

// TestTCPStripePickSkipsDeadConn pins the stripe-selection fix: a stripe
// whose connection is marked dead (the window between a writer error and its
// removal from the slot) must be skipped while a live alternative exists,
// instead of being handed out to fail the call.
func TestTCPStripePickSkipsDeadConn(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := NewTCPDialer()
	d.Stripes = 2
	defer d.Close()

	// Warm both stripes (the rr cursor dials a fresh slot per call).
	for i := 0; i < 2; i++ {
		if _, err := d.Call(context.Background(), srv.Endpoint(),
			&wire.Envelope{Kind: wire.KindRequest, Payload: []byte("warm")}, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	_, addr, err := ParseEndpoint(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	ep := d.conns[srv.Endpoint()]
	d.mu.Unlock()
	if ep == nil || len(ep.stripes) != 2 || ep.stripes[0] == nil || ep.stripes[1] == nil {
		t.Fatalf("expected 2 warm stripes, got %+v", ep)
	}
	dead, live := ep.stripes[0], ep.stripes[1]
	dead.deadFlag.Store(true)

	// Every pick — wherever the rr cursor lands — must return the live conn.
	for i := 0; i < 8; i++ {
		cc, err := d.getConn(srv.Endpoint(), addr)
		if err != nil {
			t.Fatalf("getConn: %v", err)
		}
		if cc == dead {
			t.Fatalf("pick %d returned the dead stripe", i)
		}
		if cc != live {
			t.Fatalf("pick %d returned an unexpected conn", i)
		}
	}
	// And real calls keep flowing through the survivor.
	if _, err := d.Call(context.Background(), srv.Endpoint(),
		&wire.Envelope{Kind: wire.KindRequest, Payload: []byte("after")}, 5*time.Second); err != nil {
		t.Fatalf("call after dead-stripe skip: %v", err)
	}
}

// TestTCPAdaptiveStripesGrowWithLoad verifies AdaptiveStripes behaviour:
// sequential traffic keeps a single connection, and sustained in-flight load
// above the threshold grows the stripe set toward the Stripes ceiling.
func TestTCPAdaptiveStripesGrowWithLoad(t *testing.T) {
	release := make(chan struct{})
	handler := HandlerFunc(func(ctx context.Context, req *wire.Envelope) *wire.Envelope {
		if req.Method == "block" {
			select {
			case <-release:
			case <-ctx.Done():
			}
		}
		return &wire.Envelope{Kind: wire.KindResponse, Payload: req.Payload}
	})
	srv, err := ListenTCP("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := NewTCPDialer()
	d.AdaptiveStripes = true
	d.Stripes = 4
	d.StripeLoadThreshold = 2
	defer d.Close()

	// Light sequential traffic: one socket is enough, none of the ceiling
	// is dialed.
	for i := 0; i < 8; i++ {
		if _, err := d.Call(context.Background(), srv.Endpoint(),
			&wire.Envelope{Kind: wire.KindRequest, Payload: []byte("seq")}, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Stats().Dials; got != 1 {
		t.Fatalf("sequential traffic dialed %d conns, want 1", got)
	}

	// Saturate: 32 concurrent calls parked in the handler push in-flight
	// load far past the threshold, so later arrivals grow the stripe set.
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.Call(context.Background(), srv.Endpoint(),
				&wire.Envelope{Kind: wire.KindRequest, Method: "block", Payload: []byte("x")}, 30*time.Second); err != nil {
				t.Error(err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && d.Stats().GrowthDials == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	wg.Wait()
	st := d.Stats()
	if st.GrowthDials == 0 {
		t.Fatalf("no growth dials under saturation: %+v", st)
	}
	if st.Dials > 4 {
		t.Fatalf("grew past the Stripes ceiling: %+v", st)
	}
}
