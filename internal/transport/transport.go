// Package transport provides the real byte transports godcdo nodes talk
// over: TCP (for genuinely distributed deployments and the remote-invocation
// experiments) and an in-process transport (for tests and single-process
// examples). Both carry wire.Envelope frames.
package transport

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"godcdo/internal/wire"
)

// Errors returned by transports.
var (
	// ErrBadEndpoint is returned for endpoints that do not parse.
	ErrBadEndpoint = errors.New("transport: malformed endpoint")
	// ErrTimeout is returned when a call's deadline expires.
	ErrTimeout = errors.New("transport: call timed out")
	// ErrClosed is returned when using a closed transport.
	ErrClosed = errors.New("transport: closed")
	// ErrUnreachable is returned when the endpoint cannot be contacted.
	ErrUnreachable = errors.New("transport: endpoint unreachable")
)

// Handler processes one inbound request envelope and returns the response
// envelope (KindResponse or KindError). Handlers must be safe for concurrent
// use; the TCP server dispatches pipelined requests concurrently.
type Handler interface {
	Handle(req *wire.Envelope) *wire.Envelope
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req *wire.Envelope) *wire.Envelope

// Handle implements Handler.
func (f HandlerFunc) Handle(req *wire.Envelope) *wire.Envelope { return f(req) }

// Server accepts inbound envelopes on an endpoint.
type Server interface {
	// Endpoint returns the server's dialable endpoint ("tcp:host:port" or
	// "inproc:name").
	Endpoint() string
	// Close stops accepting and tears down live connections.
	Close() error
}

// Dialer issues request/response calls against endpoints.
type Dialer interface {
	// Call sends req to endpoint and waits up to timeout for the matching
	// response.
	Call(endpoint string, req *wire.Envelope, timeout time.Duration) (*wire.Envelope, error)
	// Close releases pooled connections.
	Close() error
}

// Scheme identifies the transport family of an endpoint.
type Scheme string

// Supported endpoint schemes.
const (
	SchemeTCP    Scheme = "tcp"
	SchemeInproc Scheme = "inproc"
)

// ParseEndpoint splits "scheme:rest" and validates the scheme.
func ParseEndpoint(endpoint string) (Scheme, string, error) {
	scheme, rest, ok := strings.Cut(endpoint, ":")
	if !ok || rest == "" {
		return "", "", fmt.Errorf("%w: %q", ErrBadEndpoint, endpoint)
	}
	switch Scheme(scheme) {
	case SchemeTCP, SchemeInproc:
		return Scheme(scheme), rest, nil
	default:
		return "", "", fmt.Errorf("%w: unknown scheme in %q", ErrBadEndpoint, endpoint)
	}
}

// MultiDialer routes calls to the dialer registered for each endpoint's
// scheme. It is how a node talks both TCP and in-process.
type MultiDialer struct {
	dialers map[Scheme]Dialer
}

var _ Dialer = (*MultiDialer)(nil)

// NewMultiDialer returns a dialer that dispatches on endpoint scheme.
func NewMultiDialer(dialers map[Scheme]Dialer) *MultiDialer {
	m := make(map[Scheme]Dialer, len(dialers))
	for k, v := range dialers {
		m[k] = v
	}
	return &MultiDialer{dialers: m}
}

// Call implements Dialer.
func (m *MultiDialer) Call(endpoint string, req *wire.Envelope, timeout time.Duration) (*wire.Envelope, error) {
	scheme, _, err := ParseEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	d, ok := m.dialers[scheme]
	if !ok {
		return nil, fmt.Errorf("%w: no dialer for scheme %q", ErrBadEndpoint, scheme)
	}
	return d.Call(endpoint, req, timeout)
}

// Close implements Dialer, closing every registered dialer.
func (m *MultiDialer) Close() error {
	var firstErr error
	for _, d := range m.dialers {
		if err := d.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
