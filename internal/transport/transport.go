// Package transport provides the real byte transports godcdo nodes talk
// over: TCP (for genuinely distributed deployments and the remote-invocation
// experiments) and an in-process transport (for tests and single-process
// examples). Both carry wire.Envelope frames.
package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"godcdo/internal/wire"
)

// Errors returned by transports.
var (
	// ErrBadEndpoint is returned for endpoints that do not parse.
	ErrBadEndpoint = errors.New("transport: malformed endpoint")
	// ErrTimeout is returned when a call's deadline expires.
	ErrTimeout = errors.New("transport: call timed out")
	// ErrClosed is returned when using a closed transport.
	ErrClosed = errors.New("transport: closed")
	// ErrUnreachable is returned when the endpoint cannot be contacted.
	ErrUnreachable = errors.New("transport: endpoint unreachable")
	// ErrReset is returned when the peer resets the connection.
	ErrReset = errors.New("transport: connection reset")
	// ErrInvalidTimeout is returned for non-positive call timeouts, which
	// would otherwise fire the deadline timer before the request is sent.
	ErrInvalidTimeout = errors.New("transport: non-positive call timeout")
)

// RetryClass partitions call failures by what the caller may safely do
// next. The invoke path (rpc.Client) retries according to this class; the
// distinction between RetrySafe and RetryAmbiguous is what prevents a
// retried call from executing a non-idempotent dynamic function twice.
type RetryClass int

const (
	// RetrySafe means the request provably never reached the remote
	// dispatcher (dial refused, connection already dead before the frame
	// was written, incomplete frame). Retrying cannot double-execute.
	RetrySafe RetryClass = iota
	// RetryAmbiguous means the request may have been executed but the
	// response was lost (call timeout, connection reset after the frame
	// was written). Retrying is only safe for idempotent methods.
	RetryAmbiguous
	// RetryNever means retrying the same call cannot help (malformed
	// endpoint, closed dialer, invalid timeout).
	RetryNever
)

// String implements fmt.Stringer.
func (c RetryClass) String() string {
	switch c {
	case RetrySafe:
		return "safe"
	case RetryAmbiguous:
		return "ambiguous"
	case RetryNever:
		return "never"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// CallError attaches a RetryClass to a transport failure. Dialers wrap
// every failure whose class differs from the default mapping in Classify.
type CallError struct {
	Class RetryClass
	Err   error
}

// Error implements error.
func (e *CallError) Error() string { return e.Err.Error() }

// Unwrap implements errors.Unwrap, so sentinel matching (errors.Is) works
// through the classification wrapper.
func (e *CallError) Unwrap() error { return e.Err }

func safeErr(err error) error      { return &CallError{Class: RetrySafe, Err: err} }
func ambiguousErr(err error) error { return &CallError{Class: RetryAmbiguous, Err: err} }

// Classify maps a call failure to its retry class. Errors carrying an
// explicit CallError use its class; bare sentinels fall back to a
// conservative default mapping (unknown errors are ambiguous, because
// retrying them might double-execute but a retry could also succeed).
func Classify(err error) RetryClass {
	var ce *CallError
	if errors.As(err, &ce) {
		return ce.Class
	}
	switch {
	case errors.Is(err, ErrBadEndpoint), errors.Is(err, ErrClosed), errors.Is(err, ErrInvalidTimeout):
		return RetryNever
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The caller's context is spent: no further attempt can succeed
		// within it, so retrying the same call cannot help.
		return RetryNever
	case errors.Is(err, ErrUnreachable):
		// A bare unreachable means the dial itself failed: nothing was sent.
		return RetrySafe
	case errors.Is(err, ErrTimeout):
		return RetryAmbiguous
	default:
		return RetryAmbiguous
	}
}

// Dropped is a sentinel response a Handler may return to simulate a lost
// response (fault injection): the TCP server writes nothing back, and the
// in-process dialer surfaces an ambiguous timeout, exactly as a genuinely
// dropped response frame would behave.
var Dropped = &wire.Envelope{Kind: wire.KindError, ErrorMsg: "transport: response dropped (sentinel)"}

// Handler processes one inbound request envelope and returns the response
// envelope (KindResponse or KindError). Handlers must be safe for concurrent
// use; the TCP server dispatches pipelined requests concurrently.
//
// ctx is the server-side call context: the in-process transport passes the
// caller's context straight through (so cancellation propagates for free),
// while the TCP server passes its own lifetime context (cancelled on Close).
// Any deadline the *caller* set travels separately as req.Deadline; the
// dispatcher, not the transport, decides how to honour it.
//
// Ownership: req.Payload may alias a pooled frame buffer that the transport
// reclaims after Handle returns and the response has been encoded. Handlers
// may read it freely during the call — and may even return a response whose
// Payload aliases it, since encoding copies — but must copy any bytes they
// retain past returning (background goroutines, caches, journals).
type Handler interface {
	Handle(ctx context.Context, req *wire.Envelope) *wire.Envelope
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, req *wire.Envelope) *wire.Envelope

// Handle implements Handler.
func (f HandlerFunc) Handle(ctx context.Context, req *wire.Envelope) *wire.Envelope {
	return f(ctx, req)
}

// Server accepts inbound envelopes on an endpoint.
type Server interface {
	// Endpoint returns the server's dialable endpoint ("tcp:host:port" or
	// "inproc:name").
	Endpoint() string
	// Close stops accepting and tears down live connections.
	Close() error
}

// Dialer issues request/response calls against endpoints.
type Dialer interface {
	// Call sends req to endpoint and waits up to timeout for the matching
	// response. The effective wait is the smaller of timeout and ctx's
	// remaining budget; a done ctx aborts the wait immediately. Dialers
	// stamp ctx's absolute deadline (when one is set and req carries none)
	// into req.Deadline so it propagates to the server.
	Call(ctx context.Context, endpoint string, req *wire.Envelope, timeout time.Duration) (*wire.Envelope, error)
	// Close releases pooled connections.
	Close() error
}

// StampDeadline copies ctx's absolute deadline into req.Deadline when ctx
// carries one and the envelope does not already have an equal-or-earlier
// deadline. Dialers call it on every outbound request so the server sees the
// caller's end-to-end budget, not the per-attempt transport timeout.
func StampDeadline(ctx context.Context, req *wire.Envelope) {
	if d, ok := ctx.Deadline(); ok {
		if ns := d.UnixNano(); req.Deadline == 0 || ns < req.Deadline {
			req.Deadline = ns
		}
	}
}

// callWait returns the effective wait budget for a call: the smaller of the
// configured timeout and ctx's remaining time. A context that is already
// done yields ctx.Err wrapped as RetryNever via the caller's use of Classify.
func callWait(ctx context.Context, timeout time.Duration) (time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return 0, &CallError{Class: RetryNever, Err: err}
	}
	if d, ok := ctx.Deadline(); ok {
		if remain := time.Until(d); remain < timeout {
			timeout = remain
		}
	}
	if timeout <= 0 {
		// The context deadline leaves no budget: surface it as the
		// context's own error class rather than ErrInvalidTimeout, which is
		// reserved for caller bugs.
		return 0, &CallError{Class: RetryNever, Err: context.DeadlineExceeded}
	}
	return timeout, nil
}

// Scheme identifies the transport family of an endpoint.
type Scheme string

// Supported endpoint schemes.
const (
	SchemeTCP    Scheme = "tcp"
	SchemeInproc Scheme = "inproc"
)

// ParseEndpoint splits "scheme:rest" and validates the scheme.
func ParseEndpoint(endpoint string) (Scheme, string, error) {
	scheme, rest, ok := strings.Cut(endpoint, ":")
	if !ok || rest == "" {
		return "", "", fmt.Errorf("%w: %q", ErrBadEndpoint, endpoint)
	}
	switch Scheme(scheme) {
	case SchemeTCP, SchemeInproc:
		return Scheme(scheme), rest, nil
	default:
		return "", "", fmt.Errorf("%w: unknown scheme in %q", ErrBadEndpoint, endpoint)
	}
}

// MultiDialer routes calls to the dialer registered for each endpoint's
// scheme. It is how a node talks both TCP and in-process.
type MultiDialer struct {
	dialers map[Scheme]Dialer
}

var _ Dialer = (*MultiDialer)(nil)

// NewMultiDialer returns a dialer that dispatches on endpoint scheme.
func NewMultiDialer(dialers map[Scheme]Dialer) *MultiDialer {
	m := make(map[Scheme]Dialer, len(dialers))
	for k, v := range dialers {
		m[k] = v
	}
	return &MultiDialer{dialers: m}
}

// Call implements Dialer.
func (m *MultiDialer) Call(ctx context.Context, endpoint string, req *wire.Envelope, timeout time.Duration) (*wire.Envelope, error) {
	scheme, _, err := ParseEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	d, ok := m.dialers[scheme]
	if !ok {
		return nil, fmt.Errorf("%w: no dialer for scheme %q", ErrBadEndpoint, scheme)
	}
	return d.Call(ctx, endpoint, req, timeout)
}

// Close implements Dialer, closing every registered dialer.
func (m *MultiDialer) Close() error {
	var firstErr error
	for _, d := range m.dialers {
		if err := d.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
