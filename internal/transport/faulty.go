// Fault injection for the transport layer. FaultDialer and FaultServer wrap
// any Dialer/Server pair with configurable, seedable fault rules — dropped
// requests, dropped responses, added latency, connection resets, endpoint
// partitions — so the rebind/retry machinery in the invoke path can be
// exercised deterministically in tests and in cmd/dcdo-bench (experiment E7).
//
// Fault decisions are taken client-side in FaultDialer (simulating network
// loss) or server-side in FaultHandler (simulating a slow or lossy host);
// both consult a shared Faults rule set, so one object controls a whole
// topology's failure behaviour.
package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"godcdo/internal/wire"
)

// FaultConfig describes the faults injected for calls matching one endpoint
// (or the default rule). Probabilities are in [0, 1].
type FaultConfig struct {
	// DropRequest is the probability the request is lost before reaching
	// the server: it never executes, and the caller observes a timeout.
	DropRequest float64
	// DropResponse is the probability the response is lost after the
	// server executed the request; the caller observes a timeout. This is
	// the fault that makes retrying non-idempotent calls dangerous.
	DropResponse float64
	// ResetBeforeWrite is the probability the connection is reset before
	// the request frame is written — the canonical safe-to-retry failure.
	ResetBeforeWrite float64
	// ExtraLatency is added to every call before it is forwarded. If it
	// meets or exceeds the call's timeout the call times out instead.
	ExtraLatency time.Duration
	// LatencyJitter adds a uniformly random duration in [0, LatencyJitter)
	// on top of ExtraLatency.
	LatencyJitter time.Duration
	// Partitioned fails every call instantly with ErrUnreachable, as if
	// the endpoint were on the far side of a network partition.
	Partitioned bool
	// Budget, when positive, bounds the total number of faults injected
	// under this config; once spent, the config behaves as a clean
	// network. Zero means unlimited. Deterministic budgets let tests
	// assert exact retry schedules ("first two responses are lost").
	Budget int
	// unlimited distinguishes "Budget never set" from "Budget spent" once
	// the config is stored inside Faults.
	unlimited bool
}

// FaultStats counts injected faults.
type FaultStats struct {
	Calls             uint64
	DroppedRequests   uint64
	DroppedResponses  uint64
	Resets            uint64
	Delays            uint64
	PartitionRefusals uint64
}

// Faults is a seedable, concurrency-safe fault rule set shared by the
// FaultDialer/FaultServer pair of a simulated topology. Rules are keyed by
// endpoint, with an optional default applying to everything else.
type Faults struct {
	mu         sync.Mutex
	rng        *rand.Rand
	def        *FaultConfig
	byEndpoint map[string]*FaultConfig
	stats      FaultStats
}

// NewFaults returns an empty rule set whose randomness derives entirely
// from seed, so a given seed replays the identical fault sequence.
func NewFaults(seed int64) *Faults {
	return &Faults{
		rng:        rand.New(rand.NewSource(seed)),
		byEndpoint: make(map[string]*FaultConfig),
	}
}

// SetDefault installs cfg for every endpoint without a specific rule.
func (f *Faults) SetDefault(cfg FaultConfig) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cfg.unlimited = cfg.Budget == 0
	f.def = &cfg
}

// ClearDefault removes the default rule.
func (f *Faults) ClearDefault() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.def = nil
}

// SetEndpoint installs cfg for one endpoint, overriding the default.
func (f *Faults) SetEndpoint(endpoint string, cfg FaultConfig) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cfg.unlimited = cfg.Budget == 0
	f.byEndpoint[endpoint] = &cfg
}

// ClearEndpoint removes endpoint's specific rule, reverting to the default.
func (f *Faults) ClearEndpoint(endpoint string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.byEndpoint, endpoint)
}

// Partition makes every call to endpoint fail as unreachable until Heal.
func (f *Faults) Partition(endpoint string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cfg, ok := f.byEndpoint[endpoint]
	if !ok {
		cfg = &FaultConfig{unlimited: true}
		f.byEndpoint[endpoint] = cfg
	}
	cfg.Partitioned = true
}

// Heal reconnects a partitioned endpoint.
func (f *Faults) Heal(endpoint string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cfg, ok := f.byEndpoint[endpoint]; ok {
		cfg.Partitioned = false
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (f *Faults) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// faultPlan is one call's precomputed fate: decisions are drawn under the
// rule-set lock so the seeded sequence is stable, then applied lock-free.
type faultPlan struct {
	partitioned  bool
	reset        bool
	dropRequest  bool
	dropResponse bool
	delay        time.Duration
}

func (f *Faults) plan(endpoint string) faultPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Calls++
	cfg, ok := f.byEndpoint[endpoint]
	if !ok {
		cfg = f.def
	}
	if cfg == nil {
		return faultPlan{}
	}
	var p faultPlan
	spend := func() bool {
		if cfg.unlimited {
			return true
		}
		if cfg.Budget <= 0 {
			return false
		}
		cfg.Budget--
		return true
	}
	if cfg.Partitioned {
		// Partitions are topology state, not random faults: no budget.
		p.partitioned = true
		f.stats.PartitionRefusals++
		return p
	}
	// Draw every probability in a fixed order so the seeded sequence does
	// not depend on which faults are configured.
	rReset, rReq, rResp := f.rng.Float64(), f.rng.Float64(), f.rng.Float64()
	var jitter time.Duration
	if cfg.LatencyJitter > 0 {
		jitter = time.Duration(f.rng.Int63n(int64(cfg.LatencyJitter)))
	}
	switch {
	case cfg.ResetBeforeWrite > 0 && rReset < cfg.ResetBeforeWrite && spend():
		p.reset = true
		f.stats.Resets++
	case cfg.DropRequest > 0 && rReq < cfg.DropRequest && spend():
		p.dropRequest = true
		f.stats.DroppedRequests++
	case cfg.DropResponse > 0 && rResp < cfg.DropResponse && spend():
		p.dropResponse = true
		f.stats.DroppedResponses++
	}
	if cfg.ExtraLatency > 0 || jitter > 0 {
		p.delay = cfg.ExtraLatency + jitter
		f.stats.Delays++
	}
	return p
}

// FaultDialer wraps an inner Dialer, injecting faults per its rule set.
// Injected failures carry the same retry classification real ones would:
// partitions and pre-write resets are safe to retry, dropped requests and
// dropped responses surface as ambiguous timeouts.
type FaultDialer struct {
	Inner  Dialer
	Faults *Faults
}

var _ Dialer = (*FaultDialer)(nil)

// NewFaultDialer wraps inner with the given fault rules.
func NewFaultDialer(inner Dialer, faults *Faults) *FaultDialer {
	return &FaultDialer{Inner: inner, Faults: faults}
}

// Call implements Dialer.
func (d *FaultDialer) Call(ctx context.Context, endpoint string, req *wire.Envelope, timeout time.Duration) (*wire.Envelope, error) {
	p := d.Faults.plan(endpoint)
	if p.partitioned {
		return nil, safeErr(fmt.Errorf("%w: %s (injected partition)", ErrUnreachable, endpoint))
	}
	if p.reset {
		return nil, safeErr(fmt.Errorf("%w before write: %s (injected)", ErrReset, endpoint))
	}
	start := time.Now()
	if p.delay > 0 {
		if p.delay >= timeout {
			time.Sleep(timeout)
			return nil, ambiguousErr(fmt.Errorf("%w: %s after %v (injected latency)", ErrTimeout, endpoint, timeout))
		}
		time.Sleep(p.delay)
	}
	if p.dropRequest {
		// The request never reaches the server; the caller burns the rest
		// of its timeout exactly as it would on a real loss.
		sleepUntil(start, timeout)
		return nil, ambiguousErr(fmt.Errorf("%w: %s after %v (injected request drop)", ErrTimeout, endpoint, timeout))
	}
	remaining := timeout - time.Since(start)
	if remaining <= 0 {
		return nil, ambiguousErr(fmt.Errorf("%w: %s after %v (injected latency)", ErrTimeout, endpoint, timeout))
	}
	resp, err := d.Inner.Call(ctx, endpoint, req, remaining)
	if err != nil {
		return nil, err
	}
	if p.dropResponse {
		// The server executed the request; only the response is lost.
		sleepUntil(start, timeout)
		return nil, ambiguousErr(fmt.Errorf("%w: %s after %v (injected response drop)", ErrTimeout, endpoint, timeout))
	}
	return resp, nil
}

// Close implements Dialer.
func (d *FaultDialer) Close() error { return d.Inner.Close() }

func sleepUntil(start time.Time, timeout time.Duration) {
	if remaining := timeout - time.Since(start); remaining > 0 {
		time.Sleep(remaining)
	}
}

// FaultHandler wraps a server-side Handler with the same rule set: dropped
// requests never execute, dropped responses execute but return Dropped
// (which servers translate into silence), and latency delays the handler.
type FaultHandler struct {
	Inner    Handler
	Faults   *Faults
	Endpoint string // rule key; usually the serving endpoint
}

var _ Handler = (*FaultHandler)(nil)

// NewFaultHandler wraps inner, applying the rules registered for endpoint.
func NewFaultHandler(inner Handler, faults *Faults, endpoint string) *FaultHandler {
	return &FaultHandler{Inner: inner, Faults: faults, Endpoint: endpoint}
}

// Handle implements Handler.
func (h *FaultHandler) Handle(ctx context.Context, req *wire.Envelope) *wire.Envelope {
	p := h.Faults.plan(h.Endpoint)
	if p.partitioned || p.reset || p.dropRequest {
		// The request is lost before dispatch: no execution, no response.
		return Dropped
	}
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	resp := h.Inner.Handle(ctx, req)
	if p.dropResponse {
		return Dropped
	}
	return resp
}

// FaultServer pairs an inner Server with the rule set governing it, so a
// test can partition or degrade "this host" without tracking endpoint
// strings by hand. Serving-side faults are injected by wrapping the
// server's handler in a FaultHandler before listening.
type FaultServer struct {
	inner  Server
	faults *Faults
}

var _ Server = (*FaultServer)(nil)

// NewFaultServer wraps inner with partition/heal controls over faults.
func NewFaultServer(inner Server, faults *Faults) *FaultServer {
	return &FaultServer{inner: inner, faults: faults}
}

// Endpoint implements Server.
func (s *FaultServer) Endpoint() string { return s.inner.Endpoint() }

// Close implements Server.
func (s *FaultServer) Close() error { return s.inner.Close() }

// Faults returns the rule set governing this server.
func (s *FaultServer) Faults() *Faults { return s.faults }

// Partition drops all traffic to this server's endpoint until Heal.
func (s *FaultServer) Partition() { s.faults.Partition(s.inner.Endpoint()) }

// Heal reconnects the server after Partition.
func (s *FaultServer) Heal() { s.faults.Heal(s.inner.Endpoint()) }
