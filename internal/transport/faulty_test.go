package transport

import (
	"context"

	"errors"
	"sync/atomic"
	"testing"
	"time"

	"godcdo/internal/wire"
)

func TestFaultDialerCleanPassthrough(t *testing.T) {
	n := NewInprocNetwork()
	if _, err := n.Listen("clean", echoHandler()); err != nil {
		t.Fatal(err)
	}
	d := NewFaultDialer(n.Dialer(), NewFaults(1))
	resp, err := d.Call(context.Background(), "inproc:clean", &wire.Envelope{Kind: wire.KindRequest, Payload: []byte("x")}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "x" {
		t.Fatalf("payload = %q", resp.Payload)
	}
}

func TestFaultDialerPartition(t *testing.T) {
	n := NewInprocNetwork()
	srv, err := n.Listen("part", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	faults := NewFaults(1)
	d := NewFaultDialer(n.Dialer(), faults)
	fsrv := NewFaultServer(srv, faults)

	fsrv.Partition()
	_, err = d.Call(context.Background(), srv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest}, time.Second)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if Classify(err) != RetrySafe {
		t.Fatalf("partition classified %v, want safe", Classify(err))
	}

	fsrv.Heal()
	if _, err := d.Call(context.Background(), srv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest}, time.Second); err != nil {
		t.Fatalf("healed call: %v", err)
	}
	if st := faults.Stats(); st.PartitionRefusals != 1 {
		t.Fatalf("partition refusals = %d, want 1", st.PartitionRefusals)
	}
}

func TestFaultDialerDropResponseIsAmbiguousAndBudgeted(t *testing.T) {
	n := NewInprocNetwork()
	calls := 0
	if _, err := n.Listen("dropresp", HandlerFunc(func(ctx context.Context, req *wire.Envelope) *wire.Envelope {
		calls++
		return &wire.Envelope{Kind: wire.KindResponse}
	})); err != nil {
		t.Fatal(err)
	}
	faults := NewFaults(7)
	faults.SetEndpoint("inproc:dropresp", FaultConfig{DropResponse: 1, Budget: 2})
	d := NewFaultDialer(n.Dialer(), faults)

	for i := 0; i < 2; i++ {
		_, err := d.Call(context.Background(), "inproc:dropresp", &wire.Envelope{Kind: wire.KindRequest}, 10*time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("drop %d: err = %v, want ErrTimeout", i, err)
		}
		if Classify(err) != RetryAmbiguous {
			t.Fatalf("drop %d classified %v, want ambiguous", i, Classify(err))
		}
	}
	// The handler executed despite both losses, and the budget is spent.
	if calls != 2 {
		t.Fatalf("handler executed %d times, want 2 (drop-response still executes)", calls)
	}
	if _, err := d.Call(context.Background(), "inproc:dropresp", &wire.Envelope{Kind: wire.KindRequest}, 10*time.Millisecond); err != nil {
		t.Fatalf("post-budget call: %v", err)
	}
	if st := faults.Stats(); st.DroppedResponses != 2 {
		t.Fatalf("dropped responses = %d, want 2", st.DroppedResponses)
	}
}

func TestFaultDialerDropRequestNeverExecutes(t *testing.T) {
	n := NewInprocNetwork()
	calls := 0
	if _, err := n.Listen("dropreq", HandlerFunc(func(ctx context.Context, req *wire.Envelope) *wire.Envelope {
		calls++
		return &wire.Envelope{Kind: wire.KindResponse}
	})); err != nil {
		t.Fatal(err)
	}
	faults := NewFaults(7)
	faults.SetEndpoint("inproc:dropreq", FaultConfig{DropRequest: 1, Budget: 1})
	d := NewFaultDialer(n.Dialer(), faults)

	_, err := d.Call(context.Background(), "inproc:dropreq", &wire.Envelope{Kind: wire.KindRequest}, 10*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if calls != 0 {
		t.Fatalf("handler executed %d times, want 0 (request was dropped)", calls)
	}
}

func TestFaultDialerResetBeforeWriteIsSafe(t *testing.T) {
	n := NewInprocNetwork()
	if _, err := n.Listen("reset", echoHandler()); err != nil {
		t.Fatal(err)
	}
	faults := NewFaults(3)
	faults.SetEndpoint("inproc:reset", FaultConfig{ResetBeforeWrite: 1, Budget: 1})
	d := NewFaultDialer(n.Dialer(), faults)

	_, err := d.Call(context.Background(), "inproc:reset", &wire.Envelope{Kind: wire.KindRequest}, time.Second)
	if !errors.Is(err, ErrReset) {
		t.Fatalf("err = %v, want ErrReset", err)
	}
	if Classify(err) != RetrySafe {
		t.Fatalf("reset-before-write classified %v, want safe", Classify(err))
	}
	// Budget spent: the next call goes through.
	if _, err := d.Call(context.Background(), "inproc:reset", &wire.Envelope{Kind: wire.KindRequest}, time.Second); err != nil {
		t.Fatalf("post-budget call: %v", err)
	}
}

func TestFaultDialerLatencyTimesOutWhenExceedingDeadline(t *testing.T) {
	n := NewInprocNetwork()
	if _, err := n.Listen("slow", echoHandler()); err != nil {
		t.Fatal(err)
	}
	faults := NewFaults(5)
	faults.SetEndpoint("inproc:slow", FaultConfig{ExtraLatency: 50 * time.Millisecond})
	d := NewFaultDialer(n.Dialer(), faults)

	start := time.Now()
	_, err := d.Call(context.Background(), "inproc:slow", &wire.Envelope{Kind: wire.KindRequest}, 10*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("returned after %v, want >= the 10ms timeout", elapsed)
	}
	// With a generous deadline the same latency is only a delay.
	if _, err := d.Call(context.Background(), "inproc:slow", &wire.Envelope{Kind: wire.KindRequest}, time.Second); err != nil {
		t.Fatalf("call with headroom: %v", err)
	}
}

func TestFaultsSeedDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		faults := NewFaults(seed)
		faults.SetDefault(FaultConfig{DropResponse: 0.5})
		outcomes := make([]bool, 0, 64)
		for i := 0; i < 64; i++ {
			p := faults.plan("inproc:x")
			outcomes = append(outcomes, p.dropResponse)
		}
		return outcomes
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-call fault sequences")
	}
}

func TestFaultHandlerServerSideDrops(t *testing.T) {
	faults := NewFaults(9)
	inner := echoHandler()
	executed := 0
	counting := HandlerFunc(func(ctx context.Context, req *wire.Envelope) *wire.Envelope {
		executed++
		return inner.Handle(ctx, req)
	})
	h := NewFaultHandler(counting, faults, "tcp:host:1")

	// Server-side request drop: never executed, response is Dropped.
	faults.SetEndpoint("tcp:host:1", FaultConfig{DropRequest: 1, Budget: 1})
	if resp := h.Handle(context.Background(), &wire.Envelope{Kind: wire.KindRequest}); resp != Dropped {
		t.Fatalf("resp = %+v, want Dropped", resp)
	}
	if executed != 0 {
		t.Fatalf("handler executed %d times, want 0", executed)
	}

	// Server-side response drop: executed once, response still lost.
	faults.SetEndpoint("tcp:host:1", FaultConfig{DropResponse: 1, Budget: 1})
	if resp := h.Handle(context.Background(), &wire.Envelope{Kind: wire.KindRequest}); resp != Dropped {
		t.Fatalf("resp = %+v, want Dropped", resp)
	}
	if executed != 1 {
		t.Fatalf("handler executed %d times, want 1", executed)
	}

	// Budget spent: clean pass-through.
	if resp := h.Handle(context.Background(), &wire.Envelope{Kind: wire.KindRequest, Payload: []byte("ok")}); resp == Dropped || resp == nil {
		t.Fatal("post-budget request did not pass through")
	}
	if executed != 2 {
		t.Fatalf("handler executed %d times, want 2", executed)
	}
}

func TestFaultServerTCPDroppedResponseTimesOutCaller(t *testing.T) {
	faults := NewFaults(11)
	var executed atomic.Int32
	handler := HandlerFunc(func(ctx context.Context, req *wire.Envelope) *wire.Envelope {
		executed.Add(1)
		return &wire.Envelope{Kind: wire.KindResponse, Payload: req.Payload}
	})
	// The handler must be wrapped before listening, when the endpoint is
	// not yet known, so its rules are installed as the default.
	faults.SetDefault(FaultConfig{DropResponse: 1, Budget: 1})
	fh := NewFaultHandler(handler, faults, "")
	srv, err := ListenTCP("127.0.0.1:0", fh)
	if err != nil {
		t.Fatal(err)
	}
	fsrv := NewFaultServer(srv, faults)
	defer fsrv.Close()

	d := NewTCPDialer()
	defer d.Close()
	_, err = d.Call(context.Background(), fsrv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest}, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout (response dropped server-side)", err)
	}
	if Classify(err) != RetryAmbiguous {
		t.Fatalf("classified %v, want ambiguous", Classify(err))
	}
	if n := executed.Load(); n != 1 {
		t.Fatalf("handler executed %d times, want 1", n)
	}
	// The connection survives a dropped response; the next call succeeds.
	resp, err := d.Call(context.Background(), fsrv.Endpoint(), &wire.Envelope{Kind: wire.KindRequest, Payload: []byte("again")}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "again" {
		t.Fatalf("payload = %q", resp.Payload)
	}
}
