package manager

import (
	"context"

	"godcdo/internal/core"
	"godcdo/internal/dfm"
	"godcdo/internal/naming"
	"godcdo/internal/obs"
	"godcdo/internal/version"
)

// tracedInstance is optionally implemented by instances that can thread
// trace context into their apply path (LocalInstance does, via
// core.ApplyDescriptorTraced). Remote instances fall back to plain Apply —
// the trace context for those rides the RPC envelope instead.
type tracedInstance interface {
	ApplyTraced(ctx context.Context, parent obs.SpanContext, target *dfm.Descriptor, v version.ID) (core.ApplyReport, error)
}

// ApplyTraced implements tracedInstance.
func (l LocalInstance) ApplyTraced(ctx context.Context, parent obs.SpanContext, target *dfm.Descriptor, v version.ID) (core.ApplyReport, error) {
	return l.Obj.ApplyDescriptorTraced(ctx, parent, target, v)
}

var (
	_ obs.Configurable = (*Manager)(nil)
	_ obs.Configurable = (*Object)(nil)
)

// SetObs implements obs.Configurable for the RPC wrapper by delegating to
// the wrapped manager, so hosting a manager Object on an instrumented node
// wires the manager automatically.
func (o *Object) SetObs(ob *obs.Obs) { o.Mgr.SetObs(ob) }

// SetObs wires the manager into o: evolution operations gain mgr.evolve /
// mgr.apply spans and append structured events (version designations,
// instance creations, adoptions, drops, evolutions) to o's event log. A nil
// o disables both.
func (m *Manager) SetObs(o *obs.Obs) {
	m.obsState.Store(o)
}

// tracer returns the manager's tracer, nil when observability is off.
func (m *Manager) tracer() *obs.Tracer {
	return m.obsState.Load().GetTracer()
}

// event appends a structured event to the wired event log (no-op when
// observability is off).
func (m *Manager) event(kind string, loid naming.LOID, v version.ID, detail string) {
	log := m.obsState.Load().GetEvents()
	if log == nil {
		return
	}
	ev := obs.Event{Kind: kind, Detail: detail}
	if loid != (naming.LOID{}) {
		ev.Object = loid.String()
	}
	if !v.IsZero() {
		ev.Version = v.String()
	}
	log.Append(ev)
}

// applyInstance runs inst.Apply under a mgr.apply span parented on sp,
// threading the span context into local instances so the object's
// dcdo.apply span joins the same trace. With tracing off (sp nil) it is a
// plain Apply call. ctx flows through either way.
func applyInstance(ctx context.Context, sp *obs.Span, inst Instance, desc *dfm.Descriptor, v version.ID) (core.ApplyReport, error) {
	if sp == nil {
		return inst.Apply(ctx, desc, v)
	}
	child := sp.Child(obs.StageMgrApply)
	child.Annotate("object", inst.LOID().String())
	var report core.ApplyReport
	var err error
	if ti, ok := inst.(tracedInstance); ok {
		report, err = ti.ApplyTraced(ctx, child.Context(), desc, v)
	} else {
		report, err = inst.Apply(ctx, desc, v)
	}
	child.Fail(err)
	child.Finish()
	return report, err
}
