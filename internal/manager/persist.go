package manager

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"godcdo/internal/dfm"
	"godcdo/internal/evolution"
	"godcdo/internal/version"
	"godcdo/internal/wire"
)

// A DCDO Manager's DFM store is the authoritative record of an object
// type's versions; production managers must survive restarts. Save and
// LoadStore serialise the whole version tree — identifiers, states,
// derivation structure, and descriptors — so a manager can be rebuilt from
// a vault or file.

// storeFormatVersion guards the persistence format; bump on change.
const storeFormatVersion = 1

// ErrBadStoreImage is returned when a persisted store cannot be decoded.
var ErrBadStoreImage = errors.New("manager: corrupt store image")

// Save writes the store's full version tree to w.
func (s *Store) Save(w io.Writer) error {
	s.mu.Lock()
	type row struct {
		id        version.ID
		state     VersionState
		parent    version.ID
		nextChild uint32
		desc      []byte
	}
	rows := make([]row, 0, len(s.nodes))
	for _, node := range s.nodes {
		rows = append(rows, row{
			id:        node.id.Clone(),
			state:     node.state,
			parent:    node.parent.Clone(),
			nextChild: node.nextChild,
			desc:      node.desc.Encode(),
		})
	}
	root := s.root.Clone()
	s.mu.Unlock()

	sort.Slice(rows, func(i, j int) bool { return rows[i].id.Compare(rows[j].id) < 0 })

	e := wire.NewEncoder(256)
	e.PutUvarint(storeFormatVersion)
	e.PutUintSlice(root.Encode())
	e.PutUvarint(uint64(len(rows)))
	for _, r := range rows {
		e.PutUintSlice(r.id.Encode())
		e.PutUvarint(uint64(r.state))
		e.PutUintSlice(r.parent.Encode())
		e.PutUvarint(uint64(r.nextChild))
		e.PutBytes(r.desc)
	}
	if err := wire.WriteFrame(w, e.Bytes()); err != nil {
		return fmt.Errorf("manager: save store: %w", err)
	}
	return nil
}

// LoadStore reads a store image written by Save.
func LoadStore(r io.Reader) (*Store, error) {
	frame, err := wire.ReadFrame(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStoreImage, err)
	}
	dec := wire.NewDecoder(frame)
	format, err := dec.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: format: %v", ErrBadStoreImage, err)
	}
	if format != storeFormatVersion {
		return nil, fmt.Errorf("%w: unsupported format %d", ErrBadStoreImage, format)
	}
	decodeVersion := func(what string) (version.ID, error) {
		segs, err := dec.UintSlice()
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrBadStoreImage, what, err)
		}
		v, err := version.Decode(segs)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrBadStoreImage, what, err)
		}
		return v, nil
	}

	root, err := decodeVersion("root")
	if err != nil {
		return nil, err
	}
	n, err := dec.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: node count: %v", ErrBadStoreImage, err)
	}
	if n > uint64(dec.Remaining()) {
		return nil, fmt.Errorf("%w: node count %d exceeds image", ErrBadStoreImage, n)
	}

	s := NewStore()
	s.root = root
	for i := uint64(0); i < n; i++ {
		id, err := decodeVersion("node id")
		if err != nil {
			return nil, err
		}
		stateRaw, err := dec.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: state: %v", ErrBadStoreImage, err)
		}
		state := VersionState(stateRaw)
		if state != StateConfigurable && state != StateInstantiable {
			return nil, fmt.Errorf("%w: unknown state %d", ErrBadStoreImage, stateRaw)
		}
		parent, err := decodeVersion("parent")
		if err != nil {
			return nil, err
		}
		nextChild, err := dec.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: next child: %v", ErrBadStoreImage, err)
		}
		descBytes, err := dec.Bytes()
		if err != nil {
			return nil, fmt.Errorf("%w: descriptor: %v", ErrBadStoreImage, err)
		}
		desc, err := dfm.DecodeDescriptor(descBytes)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadStoreImage, err)
		}
		s.nodes[id.String()] = &versionNode{
			id:        id,
			state:     state,
			desc:      desc,
			parent:    parent,
			nextChild: uint32(nextChild),
		}
	}

	// Rebuild child lists from parent pointers (stable order: sorted ids).
	ids := make([]version.ID, 0, len(s.nodes))
	for _, node := range s.nodes {
		ids = append(ids, node.id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 })
	for _, id := range ids {
		node := s.nodes[id.String()]
		if node.parent.IsZero() {
			continue
		}
		parent, ok := s.nodes[node.parent.String()]
		if !ok {
			return nil, fmt.Errorf("%w: node %s references missing parent %s",
				ErrBadStoreImage, node.id, node.parent)
		}
		parent.children = append(parent.children, node.id)
	}
	if !s.root.IsZero() {
		if _, ok := s.nodes[s.root.String()]; !ok {
			return nil, fmt.Errorf("%w: missing root %s", ErrBadStoreImage, s.root)
		}
	}
	return s, nil
}

// NewWithStore returns a manager over a previously loaded store (e.g. after
// a restart). Instances re-register via Adopt.
func NewWithStore(store *Store, style evolution.Style, policy evolution.UpdatePolicy) *Manager {
	m := New(style, policy)
	m.store = store
	return m
}
