package manager

import (
	"context"

	"errors"
	"reflect"
	"testing"

	"godcdo/internal/core"
	"godcdo/internal/dfm"
	"godcdo/internal/evolution"
	"godcdo/internal/naming"
	"godcdo/internal/registry"
	"godcdo/internal/rpc"
	"godcdo/internal/transport"
	"godcdo/internal/vclock"
	"godcdo/internal/wire"
)

// remoteEnv hosts a manager object and DCDOs behind an in-process RPC
// stack, exercising the full remote management path.
type remoteEnv struct {
	f      *fixture
	mgr    *Manager
	agent  *naming.Agent
	disp   *rpc.Dispatcher
	srv    *transport.InprocServer
	client *rpc.Client
	mgrLOI naming.LOID
}

func newRemoteEnv(t *testing.T, style evolution.Style) *remoteEnv {
	t.Helper()
	f := newFixture(t)
	m := f.newManager(t, style, evolution.Explicit)

	clk := vclock.Real{}
	agent := naming.NewAgent(clk)
	cache := naming.NewCache(agent, clk, 0)
	net := transport.NewInprocNetwork()
	disp := rpc.NewDispatcher()
	srv, err := net.Listen("mgr-node", disp)
	if err != nil {
		t.Fatal(err)
	}

	mgrLOID := naming.LOID{Domain: 1, Class: 2, Instance: 1}
	disp.Host(mgrLOID, &Object{Mgr: m})
	agent.Register(mgrLOID, naming.Address{Endpoint: srv.Endpoint()})

	return &remoteEnv{
		f: f, mgr: m, agent: agent, disp: disp, srv: srv,
		client: rpc.NewClient(cache, net.Dialer()),
		mgrLOI: mgrLOID,
	}
}

func (e *remoteEnv) hostDCDO(t *testing.T) *core.DCDO {
	t.Helper()
	obj := e.f.newDCDO()
	e.disp.Host(obj.LOID(), obj)
	e.agent.Register(obj.LOID(), naming.Address{Endpoint: e.srv.Endpoint()})
	return obj
}

func TestRemoteCurrentVersionAndDescriptor(t *testing.T) {
	env := newRemoteEnv(t, evolution.SingleVersion)

	view := RemoteView{Client: env.client, Target: env.mgrLOI}
	cur, err := view.CurrentVersion()
	if err != nil || !cur.Equal(v(1)) {
		t.Fatalf("current = %v, %v", cur, err)
	}
	desc, err := view.InstantiableDescriptor(v(1))
	if err != nil {
		t.Fatal(err)
	}
	local, _ := env.mgr.Store().InstantiableDescriptor(v(1))
	if !desc.Equivalent(local) {
		t.Fatal("remote descriptor not equivalent to local")
	}
	// Configurable version refused through the instantiable method.
	cfgV, _ := env.mgr.Store().Derive(v(1))
	if _, err := view.InstantiableDescriptor(cfgV); err == nil {
		t.Fatal("configurable descriptor served as instantiable")
	}
	// But visible through the plain descriptor method.
	out, err := env.client.Invoke(context.Background(), env.mgrLOI, MethodDescriptor, EncodeVersionArgs(cfgV))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dfm.DecodeDescriptor(out); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteVersionLifecycle(t *testing.T) {
	env := newRemoteEnv(t, evolution.SingleVersion)

	// Derive a new version remotely.
	out, err := env.client.Invoke(context.Background(), env.mgrLOI, MethodDerive, EncodeVersionArgs(v(1)))
	if err != nil {
		t.Fatal(err)
	}
	segs, _ := wire.NewDecoder(out).UintSlice()
	child, _ := versionFromSegs(segs)

	// Configure it: swap the enabled implementation to fr.
	if _, err := env.client.Invoke(context.Background(), env.mgrLOI, MethodVSetEnabled,
		EncodeSetEnabledArgs(child, dfm.EntryKey{Function: "greet", Component: "en"}, false)); err != nil {
		t.Fatal(err)
	}
	if _, err := env.client.Invoke(context.Background(), env.mgrLOI, MethodVSetEnabled,
		EncodeSetEnabledArgs(child, dfm.EntryKey{Function: "greet", Component: "fr"}, true)); err != nil {
		t.Fatal(err)
	}
	// Mark instantiable and set current.
	if _, err := env.client.Invoke(context.Background(), env.mgrLOI, MethodMarkInstantiable, EncodeVersionArgs(child)); err != nil {
		t.Fatal(err)
	}
	if _, err := env.client.Invoke(context.Background(), env.mgrLOI, MethodSetCurrent, EncodeVersionArgs(child)); err != nil {
		t.Fatal(err)
	}
	cur, _ := env.mgr.CurrentVersion()
	if !cur.Equal(child) {
		t.Fatalf("current = %v, want %v", cur, child)
	}
}

func versionFromSegs(segs []uint64) (out []uint32, err error) {
	out = make([]uint32, len(segs))
	for i, s := range segs {
		out[i] = uint32(s)
	}
	return out, nil
}

func TestRemoteInstanceEvolution(t *testing.T) {
	env := newRemoteEnv(t, evolution.SingleVersion)
	obj := env.hostDCDO(t)

	// The manager manages the object through a remote proxy.
	ri := RemoteInstance{Client: env.client, Target: obj.LOID()}
	if err := env.mgr.CreateInstance(context.Background(), ri, nil, registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	got, err := ri.Version(context.Background())
	if err != nil || !got.Equal(v(1)) {
		t.Fatalf("remote version = %v, %v", got, err)
	}
	iface, err := ri.Interface(context.Background())
	if err != nil || !reflect.DeepEqual(iface, []string{"greet"}) {
		t.Fatalf("remote interface = %v, %v", iface, err)
	}

	// Evolve via the manager's remote interface.
	if _, err := env.client.Invoke(context.Background(), env.mgrLOI, MethodSetCurrent, EncodeVersionArgs(v(1, 1))); err != nil {
		t.Fatal(err)
	}
	if _, err := env.client.Invoke(context.Background(), env.mgrLOI, MethodEvolveInstance,
		EncodeEvolveInstanceArgs(obj.LOID(), v(1, 1))); err != nil {
		t.Fatal(err)
	}
	out, err := env.client.Invoke(context.Background(), obj.LOID(), "greet", nil)
	if err != nil || string(out) != "bonjour" {
		t.Fatalf("greet after remote evolution = %q, %v", out, err)
	}
}

func TestEnsureCurrentUpdatesStaleInstance(t *testing.T) {
	env := newRemoteEnv(t, evolution.SingleVersion)
	obj := env.hostDCDO(t)
	ri := RemoteInstance{Client: env.client, Target: obj.LOID()}
	if err := env.mgr.CreateInstance(context.Background(), ri, nil, registry.NativeImplType); err != nil {
		t.Fatal(err)
	}

	// Object is already current: no update initiated.
	updated, err := EnsureCurrent(context.Background(), env.client, env.mgrLOI, obj.LOID())
	if err != nil {
		t.Fatal(err)
	}
	if updated {
		t.Fatal("EnsureCurrent updated an up-to-date instance")
	}

	// Designate 1.1 current under the explicit policy: the instance stays
	// stale until a client calls EnsureCurrent.
	if err := env.mgr.SetCurrentVersion(context.Background(), v(1, 1)); err != nil {
		t.Fatal(err)
	}
	if !obj.Version().Equal(v(1)) {
		t.Fatalf("instance evolved without explicit request: %v", obj.Version())
	}
	updated, err = EnsureCurrent(context.Background(), env.client, env.mgrLOI, obj.LOID())
	if err != nil {
		t.Fatal(err)
	}
	if !updated {
		t.Fatal("EnsureCurrent did not update a stale instance")
	}
	if !obj.Version().Equal(v(1, 1)) {
		t.Fatalf("version = %v, want 1.1", obj.Version())
	}
	out, err := env.client.Invoke(context.Background(), obj.LOID(), "greet", nil)
	if err != nil || string(out) != "bonjour" {
		t.Fatalf("greet after explicit update = %q, %v", out, err)
	}
}

func TestEnsureCurrentNoCurrentVersion(t *testing.T) {
	env := newRemoteEnv(t, evolution.SingleVersion)
	obj := env.hostDCDO(t)
	ri := RemoteInstance{Client: env.client, Target: obj.LOID()}
	if err := env.mgr.CreateInstance(context.Background(), ri, v(1), registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	env.mgr.mu.Lock()
	env.mgr.current = nil
	env.mgr.mu.Unlock()
	updated, err := EnsureCurrent(context.Background(), env.client, env.mgrLOI, obj.LOID())
	if err != nil || updated {
		t.Fatalf("EnsureCurrent = %v, %v; want no-op", updated, err)
	}
}

func TestRemoteRecords(t *testing.T) {
	env := newRemoteEnv(t, evolution.SingleVersion)
	obj := env.hostDCDO(t)
	ri := RemoteInstance{Client: env.client, Target: obj.LOID()}
	if err := env.mgr.CreateInstance(context.Background(), ri, nil, registry.NativeImplType); err != nil {
		t.Fatal(err)
	}

	out, err := env.client.Invoke(context.Background(), env.mgrLOI, MethodRecords, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec := wire.NewDecoder(out)
	n, _ := dec.Uvarint()
	if n != 1 {
		t.Fatalf("records = %d", n)
	}
	loidStr, _ := dec.String()
	if loidStr != obj.LOID().String() {
		t.Fatalf("record loid = %q", loidStr)
	}
	segs, _ := dec.UintSlice()
	if len(segs) != 1 || segs[0] != 1 {
		t.Fatalf("record version = %v", segs)
	}
	implStr, _ := dec.String()
	if implStr != registry.NativeImplType.String() {
		t.Fatalf("record impl = %q", implStr)
	}
}

func TestRemoteAddComponentAndDep(t *testing.T) {
	env := newRemoteEnv(t, evolution.MultiGeneral)
	cfgV, _ := env.mgr.Store().Derive(v(1))

	// Remove fr remotely, then re-add it with different entries.
	if _, err := env.client.Invoke(context.Background(), env.mgrLOI, MethodVRemoveComponent, encodeRemoveComponentArgs(cfgV, "fr")); err != nil {
		t.Fatal(err)
	}
	desc, _ := env.mgr.Store().Descriptor(cfgV)
	if _, ok := desc.Components["fr"]; ok {
		t.Fatal("fr not removed")
	}

	ref := dfm.ComponentRef{ICO: env.f.icoFR, CodeRef: "fr:1", Impl: registry.NativeImplType, CodeSize: 32, Revision: 1}
	entries := []dfm.EntryDesc{{Function: "greet", Component: "fr", Exported: true}}
	if _, err := env.client.Invoke(context.Background(), env.mgrLOI, MethodVAddComponent,
		EncodeAddComponentArgs(cfgV, "fr", ref, entries)); err != nil {
		t.Fatal(err)
	}
	if _, err := env.client.Invoke(context.Background(), env.mgrLOI, MethodVAddDep,
		EncodeAddDepArgs(cfgV, dfm.Dependency{Kind: dfm.DepD, FromFunc: "greet", ToFunc: "greet"})); err != nil {
		t.Fatal(err)
	}
	desc, _ = env.mgr.Store().Descriptor(cfgV)
	if _, ok := desc.Components["fr"]; !ok || len(desc.Deps) != 1 {
		t.Fatalf("descriptor after remote config = %+v", desc)
	}

	// SetFlags remotely.
	if _, err := env.client.Invoke(context.Background(), env.mgrLOI, MethodVSetFlags,
		EncodeSetFlagsArgs(cfgV, dfm.EntryKey{Function: "greet", Component: "en"}, true, true, false)); err != nil {
		t.Fatal(err)
	}
	desc, _ = env.mgr.Store().Descriptor(cfgV)
	if e := desc.Entry(dfm.EntryKey{Function: "greet", Component: "en"}); e == nil || !e.Mandatory {
		t.Fatalf("entry after remote flags = %+v", e)
	}
}

func encodeRemoveComponentArgs(ver []uint32, id string) []byte {
	e := wire.NewEncoder(32)
	segs := make([]uint64, len(ver))
	for i, s := range ver {
		segs[i] = uint64(s)
	}
	e.PutUintSlice(segs)
	e.PutString(id)
	return e.Bytes()
}

func TestRemoteCreateRoot(t *testing.T) {
	f := newFixture(t)
	m := New(evolution.SingleVersion, evolution.Explicit)
	obj := &Object{Mgr: m}

	// Empty payload creates an empty root.
	e := wire.NewEncoder(8)
	e.PutBytes(nil)
	out, err := obj.InvokeMethod(MethodCreateRoot, e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	segs, _ := wire.NewDecoder(out).UintSlice()
	if len(segs) != 1 || segs[0] != 1 {
		t.Fatalf("root = %v", segs)
	}

	// Second root refused.
	e2 := wire.NewEncoder(8)
	e2.PutBytes(f.descriptorEnabling("en").Encode())
	if _, err := obj.InvokeMethod(MethodCreateRoot, e2.Bytes()); !errors.Is(err, ErrRootExists) {
		t.Fatalf("err = %v, want ErrRootExists", err)
	}
}

func TestRemoteBadArgsAndUnknownMethod(t *testing.T) {
	m := New(evolution.SingleVersion, evolution.Explicit)
	obj := &Object{Mgr: m}
	for _, method := range []string{
		MethodSetCurrent, MethodDescriptor, MethodDerive, MethodMarkInstantiable,
		MethodEvolveInstance, MethodVAddComponent, MethodVRemoveComponent,
		MethodVSetEnabled, MethodVSetFlags, MethodVAddDep,
	} {
		if _, err := obj.InvokeMethod(method, nil); !errors.Is(err, rpc.ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", method, err)
		}
	}
	if _, err := obj.InvokeMethod("mgr.bogus", nil); !errors.Is(err, rpc.ErrNoSuchFunction) {
		t.Fatalf("err = %v, want ErrNoSuchFunction", err)
	}
}
