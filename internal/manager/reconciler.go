package manager

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"godcdo/internal/naming"
	"godcdo/internal/policy"
	"godcdo/internal/replica"
)

// Reconciler is the convergence loop of the distribution-policy plane: each
// sweep diffs every policy-designated LOID's desired state (the
// DistributionPolicy document) against the observed state of its replica
// group (member status probes) and closes the gap — failing over a dead
// primary, dropping dead backups, expanding onto fresh candidates until the
// replication degree heals to N, and demoting excess members when the
// degree was lowered. Every step is journalled (OpReconcile) before it is
// taken, so a standby taking over mid-convergence can see how far its
// predecessor got; the loop itself is level-triggered — it needs no resume
// state beyond the policies themselves, which Recover restores.
type Reconciler struct {
	// Mgr is the manager whose policies are reconciled.
	Mgr *Manager
	// Candidates is the global spare-node pool drawn from when a policy
	// names no candidates of its own. Endpoints must host a replica-host
	// service (or already carry a member).
	Candidates []string
	// Interval is the background sweep period (default 500 ms).
	Interval time.Duration

	mu   sync.Mutex
	stop chan struct{}
	wg   sync.WaitGroup

	sweeps    atomic.Uint64
	failovers atomic.Uint64
	drops     atomic.Uint64
	heals     atomic.Uint64
	demotions atomic.Uint64
}

// ReconcileStats counts the reconciler's convergence actions.
type ReconcileStats struct {
	// Sweeps counts completed sweeps.
	Sweeps uint64
	// Failovers counts dead primaries failed away from.
	Failovers uint64
	// Drops counts dead backups removed from sets.
	Drops uint64
	// Heals counts fresh backups added to restore degree.
	Heals uint64
	// Demotions counts healthy members removed after a degree decrease.
	Demotions uint64
}

// Stats returns a snapshot of the reconciler's counters.
func (r *Reconciler) Stats() ReconcileStats {
	return ReconcileStats{
		Sweeps:    r.sweeps.Load(),
		Failovers: r.failovers.Load(),
		Drops:     r.drops.Load(),
		Heals:     r.heals.Load(),
		Demotions: r.demotions.Load(),
	}
}

// ReconcileReport summarises one sweep.
type ReconcileReport struct {
	// Actions lists the convergence steps taken, in order, as the same
	// strings journalled with them ("loid: add endpoint" etc.).
	Actions []string
	// Converged counts policy LOIDs whose observed state matched the
	// document at the end of their reconciliation.
	Converged int
	// Diverged counts policy LOIDs left short of their document (no viable
	// candidate, unreachable primary, ...); the next sweep retries.
	Diverged int
}

// Sweep reconciles every policy-designated LOID once. Errors converging
// individual LOIDs are collected and joined, never aborting the sweep; a
// LOID with no registered replica group is skipped (a degree-1 object that
// never grew a group has nothing to reconcile — see Manager.SetPolicy).
func (r *Reconciler) Sweep(ctx context.Context) (ReconcileReport, error) {
	var report ReconcileReport
	var errs []error
	m := r.Mgr

	// Membership across all policy-managed groups, for anti-affinity: an
	// endpoint already carrying any member is a worse (or forbidden) home
	// for another.
	hosting := make(map[string]int)
	loids := m.PolicyLOIDs()
	for _, loid := range loids {
		if g := m.ReplicaGroup(loid); g != nil {
			for _, ep := range g.Set().Endpoints() {
				hosting[ep]++
			}
		}
	}

	for _, loid := range loids {
		if ctx.Err() != nil {
			break // sweep cut short; the next interval picks up the rest
		}
		pol, ok := m.PolicyOf(loid)
		if !ok {
			continue
		}
		g := m.ReplicaGroup(loid)
		if g == nil {
			continue
		}
		converged, acts, err := r.reconcileOne(ctx, loid, pol, g, hosting)
		report.Actions = append(report.Actions, acts...)
		if err != nil {
			errs = append(errs, fmt.Errorf("reconcile %s: %w", loid, err))
		}
		if converged {
			report.Converged++
		} else {
			report.Diverged++
		}
	}
	r.sweeps.Add(1)
	return report, errors.Join(errs...)
}

// reconcileOne converges one group toward pol. hosting is updated in place
// as members move so later LOIDs in the same sweep see the new placement.
func (r *Reconciler) reconcileOne(ctx context.Context, loid naming.LOID, pol policy.DistributionPolicy, g *replica.Group, hosting map[string]int) (bool, []string, error) {
	var acts []string
	var errs []error
	m := r.Mgr

	step := func(action string) {
		// Intent is journalled before the action so a shipped journal shows
		// the standby what its predecessor was mid-way through.
		_ = m.Journal().Reconcile(loid, action)
		m.event("reconcile", loid, nil, action)
		acts = append(acts, loid.String()+": "+action)
	}

	set := g.Set()
	if !set.Replicated() {
		return false, acts, fmt.Errorf("no replica set published")
	}

	// Observe: probe every member.
	alive := make(map[string]bool, 1+len(set.Backups))
	for _, ep := range set.Endpoints() {
		_, err := g.Status(ctx, ep)
		alive[ep] = err == nil
	}

	// Dead primary: fail over to the first live backup before anything else
	// — every other action needs a reachable primary.
	if !alive[set.Primary] {
		step("failover from " + set.Primary)
		if _, err := g.Failover(ctx); err != nil {
			return false, acts, fmt.Errorf("failover: %w", err)
		}
		r.failovers.Add(1)
		hosting[set.Primary]--
		set = g.Set()
	}

	// Dead backups: drop them so degree accounting below sees live members
	// only and healing replaces them.
	for _, b := range set.Backups {
		if alive[b] {
			continue
		}
		step("drop dead " + b)
		if _, err := g.Shrink(ctx, b); err != nil {
			errs = append(errs, fmt.Errorf("drop %s: %w", b, err))
			continue
		}
		r.drops.Add(1)
		hosting[b]--
	}
	set = g.Set()

	// Heal upward: expand onto candidates until the degree matches.
	for have := len(set.Endpoints()); have < pol.Degree; have = len(set.Endpoints()) {
		ep := r.pickCandidate(pol, set.Contains, hosting)
		if ep == "" {
			errs = append(errs, fmt.Errorf("degree %d/%d: no viable candidate", have, pol.Degree))
			break
		}
		step("add " + ep)
		newSet, err := g.Expand(ctx, ep)
		if err != nil {
			// The candidate may be down; poison it for this pass and retry
			// with the next one.
			errs = append(errs, fmt.Errorf("add %s: %w", ep, err))
			hosting[ep] += len(r.Candidates) + 1
			continue
		}
		r.heals.Add(1)
		hosting[ep]++
		set = newSet
	}

	// Demote downward: a lowered degree sheds backups from the tail of the
	// failover order (the most recently added, least proven members).
	for have := len(set.Endpoints()); have > pol.Degree && len(set.Backups) > 0; have = len(set.Endpoints()) {
		ep := set.Backups[len(set.Backups)-1]
		step("demote " + ep)
		newSet, err := g.Shrink(ctx, ep)
		if err != nil {
			errs = append(errs, fmt.Errorf("demote %s: %w", ep, err))
			break
		}
		r.demotions.Add(1)
		hosting[ep]--
		set = newSet
	}

	return len(set.Endpoints()) == pol.Degree, acts, errors.Join(errs...)
}

// pickCandidate chooses the next endpoint to expand onto: the policy's own
// candidate list when present, the reconciler's global pool otherwise,
// skipping current members. With AntiAffinity the candidate must not host
// any other policy-managed member; without it, the least-loaded candidate
// wins. Empty means no viable candidate.
func (r *Reconciler) pickCandidate(pol policy.DistributionPolicy, isMember func(string) bool, hosting map[string]int) string {
	pool := pol.Candidates
	if len(pool) == 0 {
		pool = r.Candidates
	}
	best, bestLoad := "", -1
	for _, ep := range pool {
		if isMember(ep) {
			continue
		}
		load := hosting[ep]
		if pol.AntiAffinity && load > 0 {
			continue
		}
		if bestLoad < 0 || load < bestLoad {
			best, bestLoad = ep, load
		}
	}
	return best
}

// Run starts a background loop sweeping every Interval until Stop. A
// reconciler runs at most one loop; Run panics on a second call before
// Stop.
func (r *Reconciler) Run() {
	interval := r.Interval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	r.mu.Lock()
	if r.stop != nil {
		r.mu.Unlock()
		panic("manager: reconciler already running")
	}
	stop := make(chan struct{})
	r.stop = stop
	r.mu.Unlock()

	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				_, _ = r.Sweep(context.Background())
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit. Safe to call
// when not running.
func (r *Reconciler) Stop() {
	r.mu.Lock()
	stop := r.stop
	r.stop = nil
	r.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	r.wg.Wait()
}
