package manager

import (
	"errors"
	"testing"

	"godcdo/internal/dfm"
	"godcdo/internal/naming"
	"godcdo/internal/registry"
	"godcdo/internal/version"
)

// seedDescriptor returns a valid single-component descriptor.
func seedDescriptor() *dfm.Descriptor {
	d := dfm.NewDescriptor()
	d.Components["c1"] = dfm.ComponentRef{
		ICO: naming.LOID{Domain: 1, Class: 9, Instance: 1}, CodeRef: "c1:1",
		Impl: registry.NativeImplType, CodeSize: 64, Revision: 1,
	}
	d.Entries = []dfm.EntryDesc{
		{Function: "f", Component: "c1", Exported: true, Enabled: true},
	}
	return d
}

func TestCreateRootOnce(t *testing.T) {
	s := NewStore()
	if !s.Root().IsZero() {
		t.Fatal("empty store has a root")
	}
	root, err := s.CreateRoot(seedDescriptor())
	if err != nil {
		t.Fatal(err)
	}
	if !root.Equal(version.Root) {
		t.Fatalf("root = %v", root)
	}
	if !s.Root().Equal(root) {
		t.Fatalf("Root() = %v", s.Root())
	}
	if _, err := s.CreateRoot(nil); !errors.Is(err, ErrRootExists) {
		t.Fatalf("err = %v, want ErrRootExists", err)
	}
	if st, _ := s.State(root); st != StateConfigurable {
		t.Fatalf("root state = %v", st)
	}
}

func TestDeriveAllocatesChildIDs(t *testing.T) {
	s := NewStore()
	root, _ := s.CreateRoot(seedDescriptor())
	c1, err := s.Derive(root)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Derive(root)
	if err != nil {
		t.Fatal(err)
	}
	if c1.String() != "1.1" || c2.String() != "1.2" {
		t.Fatalf("children = %v, %v", c1, c2)
	}
	grand, err := s.Derive(c1)
	if err != nil {
		t.Fatal(err)
	}
	if grand.String() != "1.1.1" {
		t.Fatalf("grandchild = %v", grand)
	}
	kids, err := s.Children(root)
	if err != nil || len(kids) != 2 {
		t.Fatalf("children = %v, %v", kids, err)
	}
	p, err := s.Parent(grand)
	if err != nil || !p.Equal(c1) {
		t.Fatalf("parent = %v, %v", p, err)
	}
	if p, _ := s.Parent(root); p != nil {
		t.Fatalf("root parent = %v", p)
	}
	if _, err := s.Derive(version.ID{9}); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeriveIsLogicalCopy(t *testing.T) {
	s := NewStore()
	root, _ := s.CreateRoot(seedDescriptor())
	child, _ := s.Derive(root)

	// Mutating the child leaves the parent untouched.
	err := s.Configure(child, func(d *dfm.Descriptor) error {
		d.Entries[0].Exported = false
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	parentDesc, _ := s.Descriptor(root)
	if !parentDesc.Entries[0].Exported {
		t.Fatal("configuring child mutated parent descriptor")
	}
}

func TestConfigureValidatesAndRollsBack(t *testing.T) {
	s := NewStore()
	root, _ := s.CreateRoot(seedDescriptor())

	// A structurally invalid edit is rejected and rolled back.
	err := s.Configure(root, func(d *dfm.Descriptor) error {
		d.Entries = append(d.Entries, dfm.EntryDesc{Function: "g", Component: "ghost"})
		return nil
	})
	if !errors.Is(err, dfm.ErrInvalidDescriptor) {
		t.Fatalf("err = %v, want ErrInvalidDescriptor", err)
	}
	desc, _ := s.Descriptor(root)
	if len(desc.Entries) != 1 {
		t.Fatal("failed edit left descriptor mutated")
	}

	// A callback error is propagated and rolls back too.
	sentinel := errors.New("user error")
	if err := s.Configure(root, func(*dfm.Descriptor) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Configure(version.ID{4}, func(*dfm.Descriptor) error { return nil }); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestMarkInstantiableFreezes(t *testing.T) {
	s := NewStore()
	root, _ := s.CreateRoot(seedDescriptor())
	if s.IsInstantiable(root) {
		t.Fatal("configurable version reported instantiable")
	}
	if _, err := s.InstantiableDescriptor(root); !errors.Is(err, ErrVersionNotReady) {
		t.Fatalf("err = %v, want ErrVersionNotReady", err)
	}
	if err := s.MarkInstantiable(root); err != nil {
		t.Fatal(err)
	}
	if !s.IsInstantiable(root) {
		t.Fatal("marked version not instantiable")
	}
	// Instantiable versions cannot be configured further.
	err := s.Configure(root, func(*dfm.Descriptor) error { return nil })
	if !errors.Is(err, ErrVersionFrozen) {
		t.Fatalf("err = %v, want ErrVersionFrozen", err)
	}
	// Idempotent.
	if err := s.MarkInstantiable(root); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstantiableDescriptor(root); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkInstantiable(version.ID{7}); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestMarkInstantiableEnforcesMandatoryRule(t *testing.T) {
	s := NewStore()
	desc := seedDescriptor()
	desc.Entries[0].Mandatory = true
	desc.Entries[0].Enabled = false
	root, _ := s.CreateRoot(desc)
	// "If the DFM descriptor contains a mandatory dynamic function with no
	// enabled implementation, the version will not be allowed to be marked
	// instantiable."
	if err := s.MarkInstantiable(root); !errors.Is(err, dfm.ErrNotInstantiable) {
		t.Fatalf("err = %v, want ErrNotInstantiable", err)
	}
}

func TestMarkInstantiableEnforcesDerivationRules(t *testing.T) {
	s := NewStore()
	desc := seedDescriptor()
	desc.Entries[0].Mandatory = true
	root, _ := s.CreateRoot(desc)
	if err := s.MarkInstantiable(root); err != nil {
		t.Fatal(err)
	}
	child, _ := s.Derive(root)
	// Remove the mandatory function in the child.
	err := s.Configure(child, func(d *dfm.Descriptor) error {
		d.Entries = nil
		delete(d.Components, "c1")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkInstantiable(child); !errors.Is(err, dfm.ErrIllegalDerivation) {
		t.Fatalf("err = %v, want ErrIllegalDerivation", err)
	}
}

func TestVersionsSortedAndLen(t *testing.T) {
	s := NewStore()
	root, _ := s.CreateRoot(seedDescriptor())
	c1, _ := s.Derive(root)
	if _, err := s.Derive(root); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Derive(c1); err != nil {
		t.Fatal(err)
	}
	vs := s.Versions()
	if len(vs) != 4 || s.Len() != 4 {
		t.Fatalf("versions = %v", vs)
	}
	for i := 1; i < len(vs); i++ {
		if vs[i-1].Compare(vs[i]) >= 0 {
			t.Fatalf("versions not sorted: %v", vs)
		}
	}
}

func TestDescriptorReturnsCopy(t *testing.T) {
	s := NewStore()
	root, _ := s.CreateRoot(seedDescriptor())
	d1, _ := s.Descriptor(root)
	d1.Entries[0].Function = "mutated"
	d2, _ := s.Descriptor(root)
	if d2.Entries[0].Function != "f" {
		t.Fatal("Descriptor returned shared storage")
	}
	if _, err := s.Descriptor(version.ID{5}); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.State(version.ID{5}); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Children(version.ID{5}); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Parent(version.ID{5}); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestVersionStateString(t *testing.T) {
	if StateConfigurable.String() != "configurable" || StateInstantiable.String() != "instantiable" {
		t.Fatal("state strings wrong")
	}
	if VersionState(9).String() != "state(9)" {
		t.Fatal("unknown state string wrong")
	}
}
