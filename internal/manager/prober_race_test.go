package manager

import (
	"context"
	"sync"
	"testing"
	"time"

	"godcdo/internal/evolution"
	"godcdo/internal/registry"
)

// TestProberRacesEvolvingFleet hammers a running Prober (Run/Stop plus
// manual Sweeps) while the fleet underneath it churns — instances created,
// dropped, and evolved concurrently. It asserts nothing beyond "no crash,
// no deadlock, prober state pruned to the survivors": the point is the
// -race run in CI.
func TestProberRacesEvolvingFleet(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiIncreasing, evolution.Explicit)
	if err := m.SetCurrentVersion(context.Background(), v(1)); err != nil {
		t.Fatal(err)
	}

	// A stable core of instances that live for the whole test.
	for i := 0; i < 4; i++ {
		obj := f.newDCDO()
		if err := m.CreateInstance(context.Background(), LocalInstance{Obj: obj}, v(1), registry.NativeImplType); err != nil {
			t.Fatal(err)
		}
	}

	p := &Prober{Mgr: m, FailureThreshold: 2, BaseBackoff: time.Millisecond}
	p.Run(time.Millisecond)

	ctx := context.Background()
	var wg sync.WaitGroup

	// Churn: create short-lived instances and drop them again.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			obj := f.newDCDO()
			if err := m.CreateInstance(ctx, LocalInstance{Obj: obj}, v(1), registry.NativeImplType); err != nil {
				t.Errorf("create: %v", err)
				return
			}
			time.Sleep(100 * time.Microsecond)
			m.Drop(obj.LOID())
		}
	}()

	// Fleet evolution passes racing the prober's sweeps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := m.EvolveFleet(ctx, v(1, 1)); err != nil {
				t.Errorf("evolve fleet: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Manual sweeps racing the Run loop's own.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, err := p.Sweep(ctx); err != nil {
				t.Errorf("sweep: %v", err)
				return
			}
			time.Sleep(150 * time.Microsecond)
		}
	}()

	wg.Wait()
	p.Stop()

	// After the churn settles, one final sweep prunes state down to the
	// survivors: no entries for dropped instances may linger.
	if _, err := p.Sweep(ctx); err != nil {
		t.Fatalf("final sweep: %v", err)
	}
	live := make(map[string]bool)
	for _, loid := range m.InstanceLOIDs() {
		live[loid.String()] = true
	}
	p.mu.Lock()
	for loid := range p.state {
		if !live[loid.String()] {
			t.Errorf("prober retains state for dropped instance %s", loid)
		}
	}
	p.mu.Unlock()
}
