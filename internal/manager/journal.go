package manager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"godcdo/internal/naming"
	"godcdo/internal/vault"
	"godcdo/internal/version"
	"godcdo/internal/wire"
)

// The evolution journal is a write-ahead log that makes multi-instance
// evolution crash-safe. Before the manager touches any instance it durably
// records what it is about to do (a pass: target version plus the planned
// instances), then per-instance intent/applied records as it goes, and a
// done record when the pass completes. A manager that crashes mid-pass can
// replay the journal on restart (see Recover) and either resume the
// interrupted evolution or roll stragglers back — instead of silently
// stranding the fleet on a mix of versions.
//
// On-disk format: a sequence of records, each framed as
//
//	[magic 0xDA][uvarint payload length][4-byte big-endian CRC32][payload]
//
// Appends are fsynced before the corresponding instance operation proceeds,
// which is what makes the intent durable. The reader is tolerant of a
// truncated or corrupt tail (the normal shape of a crash mid-append): it
// returns every record up to the first damaged frame and ignores the rest.

// journalFormatVersion guards the record payload format; bump on change.
const journalFormatVersion = 1

// journalMagic begins every journal frame so a desynchronised or foreign
// file is detected immediately.
const journalMagic = 0xDA

// maxJournalRecord bounds one record's payload (a begin record lists every
// planned instance; 16 MiB is far beyond any realistic fleet).
const maxJournalRecord = 16 << 20

// ErrNoJournal is returned by operations that require a journal when the
// manager has none installed.
var ErrNoJournal = errors.New("manager: no evolution journal installed")

// JournalOp enumerates journal record types.
type JournalOp uint8

// Journal record types.
const (
	// OpCurrent records a current-version designation, so recovery can
	// restore the manager's designated version (the store image does not
	// carry it).
	OpCurrent JournalOp = iota + 1
	// OpBegin opens a pass: the target version and the planned instances.
	OpBegin
	// OpIntent records that the manager is about to apply the pass target
	// to one instance (with the instance's pre-evolution version, which is
	// what rollback restores).
	OpIntent
	// OpApplied records that one instance verifiably reached the target.
	OpApplied
	// OpSkipped records that one instance was deliberately left out of the
	// pass (quarantined / unreachable).
	OpSkipped
	// OpDone closes a pass; a begin without a matching done is an
	// interrupted evolution.
	OpDone
	// OpRolloutStart opens a supervised rollout: Target is the rollout's
	// target version, From the baseline to roll back to, and Reason carries
	// the serialised policy so a restarted supervisor can resume with the
	// same SLO guard and wave plan. Pass is the rollout identifier (drawn
	// from the same sequence as evolution passes).
	OpRolloutStart
	// OpRolloutWave records that one wave of instances (Planned) finished
	// baking healthy and was promoted.
	OpRolloutWave
	// OpRolloutRollback records the supervisor's decision to abandon the
	// target and return promoted instances to the baseline (Reason says why).
	OpRolloutRollback
	// OpRolloutDone closes a rollout; Reason is its terminal disposition
	// ("completed", "rolled-back", or "aborted"). A rollout start without a
	// matching done is an interrupted rollout the supervisor resumes.
	OpRolloutDone
	// OpReplicaPromote records that, within a pass, LOID's replica group
	// promoted a new primary (Reason carries its endpoint). A recovery that
	// resumes the pass sees promotion already happened and continues with
	// the remaining members instead of promoting twice.
	OpReplicaPromote
	// OpMgrEpoch records a manager-epoch bump (Pass carries the epoch): a
	// standby manager journals one before taking over, fencing the late
	// writes of the primary it replaces. Recovery carries the latest epoch
	// record through compaction, like OpCurrent.
	OpMgrEpoch
	// OpPolicySet records a distribution-policy designation for LOID
	// (Reason carries the serialised document). Recovery carries the
	// latest document per LOID through compaction — like OpCurrent — and
	// the records ship to the standby, so a takeover resumes reconciling
	// toward the same desired state.
	OpPolicySet
	// OpReconcile records one convergence step the policy reconciler is
	// about to take for LOID (Reason describes it: "add <endpoint>",
	// "demote <endpoint>", ...). The reconciler is level-triggered —
	// desired state lives in OpPolicySet records — so these are an audit
	// trail, not resume state, and compaction drops them.
	OpReconcile
)

// String implements fmt.Stringer.
func (op JournalOp) String() string {
	switch op {
	case OpCurrent:
		return "current"
	case OpBegin:
		return "begin"
	case OpIntent:
		return "intent"
	case OpApplied:
		return "applied"
	case OpSkipped:
		return "skipped"
	case OpDone:
		return "done"
	case OpRolloutStart:
		return "rollout-start"
	case OpRolloutWave:
		return "rollout-wave"
	case OpRolloutRollback:
		return "rollout-rollback"
	case OpRolloutDone:
		return "rollout-done"
	case OpReplicaPromote:
		return "replica-promote"
	case OpMgrEpoch:
		return "mgr-epoch"
	case OpPolicySet:
		return "policy-set"
	case OpReconcile:
		return "reconcile"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// JournalRecord is one decoded journal entry. Fields not meaningful for a
// record's op are zero.
type JournalRecord struct {
	Op      JournalOp
	Pass    uint64
	Target  version.ID    // OpCurrent, OpBegin, OpRolloutStart
	Planned []naming.LOID // OpBegin, OpRolloutWave
	LOID    naming.LOID   // OpIntent, OpApplied, OpSkipped
	From    version.ID    // OpIntent, OpRolloutStart (baseline)
	To      version.ID    // OpIntent, OpApplied
	Reason  string        // OpSkipped, OpBegin (pass kind), rollout records
}

// encode serialises the record payload (without the frame).
func (r JournalRecord) encode() []byte {
	e := wire.NewEncoder(64)
	e.PutUvarint(journalFormatVersion)
	e.PutUvarint(uint64(r.Op))
	e.PutUvarint(r.Pass)
	e.PutUintSlice(r.Target.Encode())
	e.PutUvarint(uint64(len(r.Planned)))
	for _, loid := range r.Planned {
		e.PutString(loid.String())
	}
	if r.LOID == (naming.LOID{}) {
		e.PutString("")
	} else {
		e.PutString(r.LOID.String())
	}
	e.PutUintSlice(r.From.Encode())
	e.PutUintSlice(r.To.Encode())
	e.PutString(r.Reason)
	return e.Bytes()
}

// decodeJournalRecord parses one record payload.
func decodeJournalRecord(payload []byte) (JournalRecord, error) {
	var r JournalRecord
	dec := wire.NewDecoder(payload)
	format, err := dec.Uvarint()
	if err != nil {
		return r, err
	}
	if format != journalFormatVersion {
		return r, fmt.Errorf("unsupported journal format %d", format)
	}
	op, err := dec.Uvarint()
	if err != nil {
		return r, err
	}
	r.Op = JournalOp(op)
	if r.Pass, err = dec.Uvarint(); err != nil {
		return r, err
	}
	readVersion := func() (version.ID, error) {
		segs, err := dec.UintSlice()
		if err != nil {
			return nil, err
		}
		return version.Decode(segs)
	}
	if r.Target, err = readVersion(); err != nil {
		return r, err
	}
	n, err := dec.Uvarint()
	if err != nil {
		return r, err
	}
	if n > uint64(dec.Remaining()) {
		return r, fmt.Errorf("planned count %d exceeds record", n)
	}
	for i := uint64(0); i < n; i++ {
		s, err := dec.String()
		if err != nil {
			return r, err
		}
		loid, err := naming.ParseLOID(s)
		if err != nil {
			return r, err
		}
		r.Planned = append(r.Planned, loid)
	}
	loidStr, err := dec.String()
	if err != nil {
		return r, err
	}
	if loidStr != "" {
		if r.LOID, err = naming.ParseLOID(loidStr); err != nil {
			return r, err
		}
	}
	if r.From, err = readVersion(); err != nil {
		return r, err
	}
	if r.To, err = readVersion(); err != nil {
		return r, err
	}
	if r.Reason, err = dec.String(); err != nil {
		return r, err
	}
	return r, nil
}

// frameRecord wraps a payload in the journal frame.
func frameRecord(payload []byte) []byte {
	buf := make([]byte, 0, len(payload)+10)
	buf = append(buf, journalMagic)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// Journal is the durable evolution WAL. Methods are nil-safe: a nil *Journal
// is the disabled state and every operation is a successful no-op, so the
// manager's evolution paths call through unconditionally.
type Journal struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	nextPass uint64
	sink     func(JournalRecord) error
}

// OpenJournal opens (or creates) the journal at path, scanning any existing
// records to continue the pass-identifier sequence. A torn final record from
// an earlier crash is tolerated.
func OpenJournal(path string) (*Journal, error) {
	// A compaction that crashed between writing its temp file and the rename
	// strands a ".durable-*" file beside the journal. It must never be
	// adopted (its contents may be a torn half-image) and nothing else will
	// clean it, so sweep the directory before reading. Open runs before any
	// concurrent compaction can be in flight, so the sweep cannot race a
	// live WriteDurable.
	if _, err := vault.RemoveOrphanedTemps(filepath.Dir(path)); err != nil {
		return nil, fmt.Errorf("manager: open journal %q: %w", path, err)
	}
	recs, err := ReadJournal(path)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	for _, r := range recs {
		if r.Pass >= next {
			next = r.Pass + 1
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("manager: open journal %q: %w", path, err)
	}
	// Make the journal's existence itself durable.
	if err := vault.SyncDir(filepath.Dir(path)); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("manager: open journal %q: %w", path, err)
	}
	return &Journal{path: path, f: f, nextPass: next}, nil
}

// Path returns the journal's file path ("" for a nil journal).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Close releases the journal's file handle. Nil-safe.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Append durably appends one record: the frame is written and fsynced before
// Append returns, so callers may rely on the record surviving a crash that
// happens any time afterwards. Nil-safe.
func (j *Journal) Append(r JournalRecord) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(r)
}

func (j *Journal) appendLocked(r JournalRecord) error {
	if j.f == nil {
		return fmt.Errorf("manager: journal %q is closed", j.path)
	}
	if _, err := j.f.Write(frameRecord(r.encode())); err != nil {
		return fmt.Errorf("manager: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("manager: journal append: %w", err)
	}
	// Replication hook: the record is locally durable, now stream it to the
	// standby. Shipping failures propagate — in particular a fencing
	// rejection from a standby that has taken over, which is how a deposed
	// primary manager finds out it must stop mid-pass.
	if j.sink != nil {
		if err := j.sink(r); err != nil {
			return fmt.Errorf("manager: journal shipping: %w", err)
		}
	}
	return nil
}

// SetSink installs a function called with every record after it is durably
// appended, still under the journal lock so the stream preserves append
// order. The journal shipper to a standby manager is the intended sink; a
// sink error fails the Append that triggered it. Nil-safe.
func (j *Journal) SetSink(sink func(JournalRecord) error) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.sink = sink
	j.mu.Unlock()
}

// BeginPass allocates a pass identifier and durably records the pass intent:
// the target version and the instances the pass plans to evolve. Nil-safe
// (returns pass 0).
func (j *Journal) BeginPass(target version.ID, planned []naming.LOID) (uint64, error) {
	return j.beginPass(OpBegin, target, planned, "")
}

// BeginRollbackPass is BeginPass for a rollback: the begin record's Reason
// marks the pass as style-exempt, so a recovery that resumes it applies the
// target descriptor directly instead of re-running the style check (which a
// forward-only style would veto — exactly as live rollback does).
func (j *Journal) BeginRollbackPass(target version.ID, planned []naming.LOID) (uint64, error) {
	return j.beginPass(OpBegin, target, planned, passReasonRollback)
}

// passReasonRollback on an OpBegin record marks a style-exempt rollback pass.
const passReasonRollback = "rollback"

func (j *Journal) beginPass(op JournalOp, target version.ID, planned []naming.LOID, reason string) (uint64, error) {
	if j == nil {
		return 0, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	pass := j.nextPass
	j.nextPass++
	err := j.appendLocked(JournalRecord{Op: op, Pass: pass, Target: target.Clone(), Planned: planned, Reason: reason})
	if err != nil {
		return 0, err
	}
	return pass, nil
}

// Intent records that the manager is about to evolve loid from 'from' to
// 'to' under the given pass. Nil-safe.
func (j *Journal) Intent(pass uint64, loid naming.LOID, from, to version.ID) error {
	return j.Append(JournalRecord{Op: OpIntent, Pass: pass, LOID: loid, From: from.Clone(), To: to.Clone()})
}

// Applied records that loid verifiably reached 'to'. Nil-safe.
func (j *Journal) Applied(pass uint64, loid naming.LOID, to version.ID) error {
	return j.Append(JournalRecord{Op: OpApplied, Pass: pass, LOID: loid, To: to.Clone()})
}

// Skipped records that loid was left out of the pass. Nil-safe.
func (j *Journal) Skipped(pass uint64, loid naming.LOID, reason string) error {
	return j.Append(JournalRecord{Op: OpSkipped, Pass: pass, LOID: loid, Reason: reason})
}

// Done closes the pass. Nil-safe.
func (j *Journal) Done(pass uint64) error {
	return j.Append(JournalRecord{Op: OpDone, Pass: pass})
}

// RolloutStart allocates a rollout identifier and durably records the
// rollout's target, baseline, and serialised policy. Nil-safe (returns 0).
func (j *Journal) RolloutStart(target, baseline version.ID, policy string) (uint64, error) {
	if j == nil {
		return 0, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	id := j.nextPass
	j.nextPass++
	err := j.appendLocked(JournalRecord{
		Op:     OpRolloutStart,
		Pass:   id,
		Target: target.Clone(),
		From:   baseline.Clone(),
		Reason: policy,
	})
	if err != nil {
		return 0, err
	}
	return id, nil
}

// RolloutWave records that the given instances baked healthy and were
// promoted under the rollout. Nil-safe.
func (j *Journal) RolloutWave(rollout uint64, promoted []naming.LOID) error {
	return j.Append(JournalRecord{Op: OpRolloutWave, Pass: rollout, Planned: promoted})
}

// RolloutRollback records the supervisor's decision to roll the rollout
// back. Nil-safe.
func (j *Journal) RolloutRollback(rollout uint64, reason string) error {
	return j.Append(JournalRecord{Op: OpRolloutRollback, Pass: rollout, Reason: reason})
}

// RolloutDone closes the rollout with its terminal disposition. Nil-safe.
func (j *Journal) RolloutDone(rollout uint64, disposition string) error {
	return j.Append(JournalRecord{Op: OpRolloutDone, Pass: rollout, Reason: disposition})
}

// Current records a current-version designation. Nil-safe.
func (j *Journal) Current(v version.ID) error {
	return j.Append(JournalRecord{Op: OpCurrent, Target: v.Clone()})
}

// ReplicaPromote records that loid's group promoted the member at endpoint
// to primary within the pass. Nil-safe.
func (j *Journal) ReplicaPromote(pass uint64, loid naming.LOID, endpoint string) error {
	return j.Append(JournalRecord{Op: OpReplicaPromote, Pass: pass, LOID: loid, Reason: endpoint})
}

// MgrEpoch records a manager-epoch bump; Pass carries the epoch. Nil-safe.
func (j *Journal) MgrEpoch(epoch uint64) error {
	return j.Append(JournalRecord{Op: OpMgrEpoch, Pass: epoch})
}

// PolicySet records a distribution-policy designation for loid; doc is the
// serialised document. Nil-safe.
func (j *Journal) PolicySet(loid naming.LOID, doc string) error {
	return j.Append(JournalRecord{Op: OpPolicySet, LOID: loid, Reason: doc})
}

// Reconcile records one policy-reconciler convergence step for loid.
// Nil-safe.
func (j *Journal) Reconcile(loid naming.LOID, action string) error {
	return j.Append(JournalRecord{Op: OpReconcile, LOID: loid, Reason: action})
}

// Records reads the journal back from disk (see ReadJournal). Nil-safe.
func (j *Journal) Records() ([]JournalRecord, error) {
	if j == nil {
		return nil, nil
	}
	j.mu.Lock()
	path := j.path
	j.mu.Unlock()
	return ReadJournal(path)
}

// Compact atomically replaces the journal's contents with the given records
// (typically just the latest current-version designation, once every pass
// has been recovered). The replacement is durable: the new image is written
// through vault.WriteDurable and the append handle reopened on it. Nil-safe.
func (j *Journal) Compact(keep []JournalRecord) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var buf []byte
	for _, r := range keep {
		buf = append(buf, frameRecord(r.encode())...)
	}
	if j.f != nil {
		if err := j.f.Close(); err != nil {
			return fmt.Errorf("manager: compact journal: %w", err)
		}
		j.f = nil
	}
	if err := vault.WriteDurable(j.path, buf); err != nil {
		return fmt.Errorf("manager: compact journal: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("manager: compact journal: %w", err)
	}
	j.f = f
	return nil
}

// ReadJournal reads every intact record from the journal at path. A missing
// file yields no records. A torn or corrupt frame ends the read: everything
// before it is returned, everything at and after it is ignored — the WAL
// convention for a crash mid-append. Only genuine I/O failures return an
// error.
func ReadJournal(path string) ([]JournalRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("manager: read journal %q: %w", path, err)
	}
	var out []JournalRecord
	off := 0
	for off < len(data) {
		if data[off] != journalMagic {
			break
		}
		length, n := binary.Uvarint(data[off+1:])
		if n <= 0 || length > maxJournalRecord {
			break
		}
		hdr := off + 1 + n
		if hdr+4+int(length) > len(data) {
			break // torn tail
		}
		sum := binary.BigEndian.Uint32(data[hdr:])
		payload := data[hdr+4 : hdr+4+int(length)]
		if crc32.ChecksumIEEE(payload) != sum {
			break // bit rot or torn write
		}
		rec, err := decodeJournalRecord(payload)
		if err != nil {
			break
		}
		out = append(out, rec)
		off = hdr + 4 + int(length)
	}
	return out, nil
}
