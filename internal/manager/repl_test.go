package manager

import (
	"context"
	"errors"
	"testing"
	"time"

	"godcdo/internal/core"
	"godcdo/internal/evolution"
	"godcdo/internal/naming"
	"godcdo/internal/registry"
	"godcdo/internal/replica"
	"godcdo/internal/rpc"
	"godcdo/internal/transport"
	"godcdo/internal/vclock"
)

// standbyEnv wires a primary journal shipping into a standby ReplService
// hosted over inproc, the way a real deployment pairs two manager nodes.
type standbyEnv struct {
	net      *transport.InprocNetwork
	primaryJ *Journal
	standbyJ *Journal
	service  *ReplService
	shipper  *JournalShipper
}

func newStandbyEnv(t *testing.T) *standbyEnv {
	t.Helper()
	net := transport.NewInprocNetwork()
	pj, err := OpenJournal(journalPath(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pj.Close() })
	sj, err := OpenJournal(journalPath(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sj.Close() })

	service := NewReplService(sj, 1)
	disp := rpc.NewDispatcher()
	disp.Host(rpc.MgrReplLOID, service)
	srv, err := net.Listen("standby", disp)
	if err != nil {
		t.Fatal(err)
	}
	shipper := &JournalShipper{
		Dialer:   net.Dialer(),
		Endpoint: srv.Endpoint(),
		Epoch:    1,
		Timeout:  time.Second,
	}
	pj.SetSink(shipper.Ship)
	return &standbyEnv{net: net, primaryJ: pj, standbyJ: sj, service: service, shipper: shipper}
}

func TestJournalShippingMirrorsRecords(t *testing.T) {
	env := newStandbyEnv(t)

	pass, err := env.primaryJ.BeginPass(v(1, 1), []naming.LOID{{Instance: 1}})
	if err != nil {
		t.Fatalf("BeginPass: %v", err)
	}
	if err := env.primaryJ.Intent(pass, naming.LOID{Instance: 1}, v(1), v(1, 1)); err != nil {
		t.Fatalf("Intent: %v", err)
	}
	if err := env.primaryJ.Done(pass); err != nil {
		t.Fatalf("Done: %v", err)
	}

	want, _ := env.primaryJ.Records()
	got, err := env.standbyJ.Records()
	if err != nil {
		t.Fatalf("standby Records: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("standby has %d records, primary %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].Pass != want[i].Pass {
			t.Fatalf("record %d diverged: %+v vs %+v", i, got[i], want[i])
		}
	}
	if env.service.Received() != uint64(len(want)) {
		t.Fatalf("received = %d, want %d", env.service.Received(), len(want))
	}
}

func TestStandbyFencesDeposedPrimary(t *testing.T) {
	env := newStandbyEnv(t)

	if _, err := env.primaryJ.BeginPass(v(1, 1), nil); err != nil {
		t.Fatalf("BeginPass before takeover: %v", err)
	}

	// The standby takes over: epoch 2. The deposed primary's next append
	// fails at the shipping step with a fencing error.
	env.service.Bump()
	_, err := env.primaryJ.BeginPass(v(1, 1), nil)
	if !errors.Is(err, rpc.ErrFenced) {
		t.Fatalf("append after takeover err = %v, want ErrFenced", err)
	}
}

func TestShipperSyncBringsStandbyUpToDate(t *testing.T) {
	env := newStandbyEnv(t)

	// Records appended before the standby attached (no sink yet).
	env.primaryJ.SetSink(nil)
	if err := env.primaryJ.Current(v(1)); err != nil {
		t.Fatalf("Current: %v", err)
	}
	pass, _ := env.primaryJ.BeginPass(v(1, 1), nil)
	_ = env.primaryJ.Done(pass)

	if err := env.shipper.Sync(env.primaryJ); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	env.primaryJ.SetSink(env.shipper.Ship)
	if err := env.primaryJ.MgrEpoch(1); err != nil {
		t.Fatalf("append after sync: %v", err)
	}

	got, _ := env.standbyJ.Records()
	if len(got) != 4 || got[0].Op != OpCurrent || got[3].Op != OpMgrEpoch {
		t.Fatalf("standby records = %+v", got)
	}
}

// TestStandbyTakeoverResumesFleetPass is the manager-failover core: the
// primary manager dies mid-fleet-pass, and the standby — holding only the
// shipped journal — takes over with a fenced epoch bump and finishes the
// pass against the same fleet.
func TestStandbyTakeoverResumesFleetPass(t *testing.T) {
	env := newStandbyEnv(t)
	f := newFixture(t)
	ctx := context.Background()

	primary := f.newManager(t, evolution.MultiGeneral, evolution.Explicit)
	primary.SetJournal(env.primaryJ)
	var objs []*core.DCDO
	for i := 0; i < 3; i++ {
		obj := f.newDCDO()
		objs = append(objs, obj)
		if err := primary.CreateInstance(ctx, LocalInstance{Obj: obj}, v(1), registry.NativeImplType); err != nil {
			t.Fatal(err)
		}
	}

	// The pass dies after one apply; the journal (and its shipped mirror)
	// holds an open pass.
	rep, err := primary.EvolveFleetPartial(ctx, v(1, 1), 1)
	if err != nil || !rep.Halted || len(rep.Evolved) != 1 {
		t.Fatalf("partial pass: %+v err=%v", rep, err)
	}
	_ = env.primaryJ.Close() // crash

	// The standby manager: same store shape, the same fleet re-registered
	// (in-process here; remotely they would be RemoteInstances), and the
	// shipped journal.
	standbyMgr := f.newManager(t, evolution.MultiGeneral, evolution.Explicit)
	standbyMgr.SetJournal(env.standbyJ)
	for _, obj := range objs {
		if err := standbyMgr.Adopt(ctx, LocalInstance{Obj: obj}, registry.NativeImplType); err != nil {
			t.Fatal(err)
		}
	}

	sb := &Standby{Mgr: standbyMgr, Service: env.service}
	report, epoch, err := sb.Takeover(ctx)
	if err != nil {
		t.Fatalf("Takeover: %v", err)
	}
	if epoch != 2 {
		t.Fatalf("takeover epoch = %d, want 2", epoch)
	}
	if report.Passes != 1 {
		t.Fatalf("takeover recovered %d passes, want 1", report.Passes)
	}
	for i, obj := range objs {
		if !obj.Version().Equal(v(1, 1)) {
			t.Fatalf("object %d at %v after takeover, want 1.1", i, obj.Version())
		}
	}

	// The epoch survives the takeover's compaction, so a third-era manager
	// recovering from this journal still knows era 2 happened.
	recs, err := env.standbyJ.Records()
	if err != nil {
		t.Fatal(err)
	}
	foundEpoch := false
	for _, r := range recs {
		if r.Op == OpMgrEpoch && r.Pass == 2 {
			foundEpoch = true
		}
	}
	if !foundEpoch {
		t.Fatalf("epoch record lost in compaction: %+v", recs)
	}

	// A second takeover is idempotent apart from the epoch bump.
	report2, epoch2, err := sb.Takeover(ctx)
	if err != nil || report2.Passes != 0 || epoch2 != 3 {
		t.Fatalf("second takeover: %+v epoch=%d err=%v", report2, epoch2, err)
	}
}

// replicatedFleetEnv hosts one replicated LOID (three members on their own
// inproc endpoints) managed through the RPC stack, for zero-downtime
// evolution tests.
type replicatedFleetEnv struct {
	f      *fixture
	mgr    *Manager
	agent  *naming.Agent
	net    *transport.InprocNetwork
	client *rpc.Client
	loid   naming.LOID
	group  *replica.Group
	objs   map[string]*core.DCDO
}

func newReplicatedFleetEnv(t *testing.T) *replicatedFleetEnv {
	t.Helper()
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiGeneral, evolution.Explicit)
	clk := vclock.Real{}
	agent := naming.NewAgent(clk)
	cache := naming.NewCache(agent, clk, 0)
	net := transport.NewInprocNetwork()
	client := rpc.NewClient(cache, net.Dialer())
	client.Retry.BaseBackoff = time.Millisecond
	client.Retry.MaxBackoff = 4 * time.Millisecond

	env := &replicatedFleetEnv{
		f: f, mgr: m, agent: agent, net: net, client: client,
		loid: naming.LOID{Domain: 2, Class: 1, Instance: 1},
		objs: map[string]*core.DCDO{},
	}

	desc, err := m.Store().InstantiableDescriptor(v(1))
	if err != nil {
		t.Fatal(err)
	}
	endpoints := []string{"inproc:r0", "inproc:r1", "inproc:r2"}
	for i, ep := range endpoints {
		obj := core.New(core.Config{LOID: env.loid, Registry: f.reg, Fetcher: f.fetcher()})
		if _, err := obj.ApplyDescriptor(context.Background(), desc, v(1)); err != nil {
			t.Fatal(err)
		}
		role := replica.RoleBackup
		var backups []string
		if i == 0 {
			role = replica.RolePrimary
			backups = endpoints[1:]
		}
		rep := replica.New(env.loid, obj, net.Dialer(), role, 1, backups)
		disp := rpc.NewDispatcher()
		disp.Host(env.loid, rep)
		if _, err := net.Listen(ep[len("inproc:"):], disp); err != nil {
			t.Fatal(err)
		}
		env.objs[ep] = obj
	}
	env.group = replica.NewGroup(env.loid, net.Dialer(), agent, endpoints[0], endpoints[1:])

	if err := m.Adopt(context.Background(), RemoteInstance{Client: client, Target: env.loid}, registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	m.RegisterReplicaGroup(env.loid, env.group)
	return env
}

func TestEvolveReplicatedZeroDowntime(t *testing.T) {
	env := newReplicatedFleetEnv(t)
	ctx := context.Background()
	j, err := OpenJournal(journalPath(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	env.mgr.SetJournal(j)

	if err := env.mgr.EvolveInstance(ctx, env.loid, v(1, 1)); err != nil {
		t.Fatalf("EvolveInstance: %v", err)
	}

	// Every member runs the target.
	for ep, obj := range env.objs {
		if !obj.Version().Equal(v(1, 1)) {
			t.Fatalf("member %s at %v, want 1.1", ep, obj.Version())
		}
	}
	// Leadership moved to the first evolved backup and the naming plane
	// published the hand-off as generation 2.
	set := env.agent.Set(env.loid)
	if set.Primary != "inproc:r1" || set.Generation != 2 {
		t.Fatalf("published set after evolution = %+v", set)
	}
	if !set.Contains("inproc:r0") {
		t.Fatalf("old primary dropped from set: %+v", set)
	}
	// The promotion is journalled, so a recovering manager knows which
	// member leads the pass's new era.
	recs, _ := j.Records()
	var promote *JournalRecord
	for i := range recs {
		if recs[i].Op == OpReplicaPromote {
			promote = &recs[i]
		}
	}
	if promote == nil || promote.LOID != env.loid || promote.Reason != "inproc:r1" {
		t.Fatalf("promote record = %+v", promote)
	}
	// The manager's record tracks the group version.
	rec, err := env.mgr.RecordOf(env.loid)
	if err != nil || !rec.Version.Equal(v(1, 1)) {
		t.Fatalf("record = %+v err=%v", rec, err)
	}

	// Clients keep working against the evolved group (the fr component is
	// the enabled one at v1.1).
	out, err := env.client.Invoke(ctx, env.loid, "greet", nil)
	if err != nil || string(out) != "bonjour" {
		t.Fatalf("greet after evolution = %q, %v", out, err)
	}
}

// TestEvolveReplicatedResumesAfterPartialPass drives the crash-resume
// convergence property: a pass interrupted after the backups evolved (but
// before promotion) is re-run and converges without flipping leadership
// twice.
func TestEvolveReplicatedResumesAfterPartialPass(t *testing.T) {
	env := newReplicatedFleetEnv(t)
	ctx := context.Background()

	// Manually evolve both backups to the target, simulating the state a
	// crash left behind mid-evolveReplicated.
	desc, err := env.mgr.Store().InstantiableDescriptor(v(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range []string{"inproc:r1", "inproc:r2"} {
		if _, err := env.group.Call(ctx, ep, core.MethodApplyDescriptor, core.EncodeApplyArgs(desc, v(1, 1))); err != nil {
			t.Fatal(err)
		}
	}

	if err := env.mgr.EvolveInstance(ctx, env.loid, v(1, 1)); err != nil {
		t.Fatalf("resumed EvolveInstance: %v", err)
	}
	for ep, obj := range env.objs {
		if !obj.Version().Equal(v(1, 1)) {
			t.Fatalf("member %s at %v, want 1.1", ep, obj.Version())
		}
	}
	if got := env.group.Epoch(); got != 2 {
		t.Fatalf("group epoch = %d, want exactly one promotion", got)
	}
}
