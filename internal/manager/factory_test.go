package manager

import (
	"context"

	"errors"
	"testing"

	"godcdo/internal/component"
	"godcdo/internal/core"
	"godcdo/internal/evolution"
	"godcdo/internal/legion"
	"godcdo/internal/naming"
	"godcdo/internal/transport"
	"godcdo/internal/vclock"
)

// factoryEnv hosts the fixture's ICOs on a node and builds a Factory whose
// instances download components over RPC.
func factoryEnv(t *testing.T) (*fixture, *Manager, *legion.Node, *Factory) {
	t.Helper()
	f := newFixture(t)
	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	node, err := legion.NewNode(legion.NodeConfig{Name: "factory-node", Agent: agent, Inproc: net})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	for id, ico := range map[string]naming.LOID{"en": f.icoEN, "fr": f.icoFR} {
		if _, err := node.HostObject(ico, component.NewICO(f.comps[icoFor(f, id)])); err != nil {
			t.Fatal(err)
		}
	}
	m := f.newManager(t, evolution.SingleVersion, evolution.Proactive)
	factory := &Factory{
		Manager: m,
		Alloc:   naming.NewAllocator(1, 1),
		Config:  core.Config{Registry: f.reg},
	}
	return f, m, node, factory
}

func icoFor(f *fixture, id string) naming.LOID {
	if id == "en" {
		return f.icoEN
	}
	return f.icoFR
}

func TestFactoryCreatesHostedManagedInstances(t *testing.T) {
	_, m, node, factory := factoryEnv(t)

	var objs []*core.DCDO
	for i := 0; i < 3; i++ {
		obj, err := factory.CreateOn(context.Background(), node, nil)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	// Unique LOIDs, hosted, managed, serving.
	seen := map[naming.LOID]bool{}
	for _, obj := range objs {
		if seen[obj.LOID()] {
			t.Fatal("duplicate LOID from factory")
		}
		seen[obj.LOID()] = true
		if !node.Hosts(obj.LOID()) {
			t.Fatalf("%s not hosted", obj.LOID())
		}
		out, err := node.Client().Invoke(context.Background(), obj.LOID(), "greet", nil)
		if err != nil || string(out) != "hello" {
			t.Fatalf("greet = %q, %v", out, err)
		}
	}
	if got := len(m.Records()); got != 3 {
		t.Fatalf("records = %d", got)
	}

	// A proactive current-version change evolves the whole factory fleet.
	if err := m.SetCurrentVersion(context.Background(), v(1, 1)); err != nil {
		t.Fatal(err)
	}
	for _, obj := range objs {
		out, _ := node.Client().Invoke(context.Background(), obj.LOID(), "greet", nil)
		if string(out) != "bonjour" {
			t.Fatalf("%s greet = %q after fleet evolution", obj.LOID(), out)
		}
	}
}

func TestFactoryAtSpecificVersion(t *testing.T) {
	_, _, node, factory := factoryEnv(t)
	obj, err := factory.CreateOn(context.Background(), node, v(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := node.Client().Invoke(context.Background(), obj.LOID(), "greet", nil)
	if string(out) != "bonjour" {
		t.Fatalf("greet = %q", out)
	}
}

func TestFactoryValidation(t *testing.T) {
	if _, err := (&Factory{}).CreateOn(context.Background(), nil, nil); !errors.Is(err, ErrFactoryIncomplete) {
		t.Fatalf("err = %v, want ErrFactoryIncomplete", err)
	}
}

func TestFactoryConfigurableVersionRefused(t *testing.T) {
	_, m, node, factory := factoryEnv(t)
	cfgV, err := m.Store().Derive(v(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := factory.CreateOn(context.Background(), node, cfgV); !errors.Is(err, ErrVersionNotReady) {
		t.Fatalf("err = %v, want ErrVersionNotReady", err)
	}
	// Failed creations leave no orphan records.
	if got := len(m.Records()); got != 0 {
		t.Fatalf("records after failed create = %d", got)
	}
}
