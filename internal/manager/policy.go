package manager

import (
	"fmt"
	"sort"

	"godcdo/internal/naming"
	"godcdo/internal/policy"
)

// Distribution-policy plane: the manager is the durable authority for each
// LOID's declarative DistributionPolicy. SetPolicy journals the document
// (OpPolicySet — shipped to the standby and carried through compaction),
// remembers it, and publishes it to the naming plane so clients learn it on
// resolve. The reconciler (reconciler.go) converges live replica groups
// onto the documents; everything else — read routing, node flags, ctl —
// just interprets them.

// PolicyPublisher pushes a policy document to the naming plane so clients
// receive it alongside the replica set on resolve. naming.Agent implements
// it directly; rpc.RemoteAgent adapts it over the wire.
type PolicyPublisher interface {
	RegisterPolicy(loid naming.LOID, pol policy.DistributionPolicy)
}

// SetPolicyPublisher installs the naming-plane hook SetPolicy (and policy
// restoration during Recover) publishes through. Nil disables publishing.
func (m *Manager) SetPolicyPublisher(p PolicyPublisher) {
	m.mu.Lock()
	m.policyPub = p
	m.mu.Unlock()
}

// SetPolicy durably designates loid's distribution policy: the document is
// validated, journalled before anything observes it, stored, and published
// to the naming plane. The reconciler picks the new desired state up on its
// next sweep; callers wanting synchronous convergence run a sweep
// themselves.
func (m *Manager) SetPolicy(loid naming.LOID, pol policy.DistributionPolicy) error {
	pol = pol.Normalize()
	if err := pol.Validate(); err != nil {
		return err
	}
	doc := pol.String()
	if err := m.Journal().PolicySet(loid, doc); err != nil {
		return err
	}
	m.mu.Lock()
	if m.policies == nil {
		m.policies = make(map[naming.LOID]policy.DistributionPolicy)
	}
	m.policies[loid] = pol.Clone()
	pub := m.policyPub
	m.mu.Unlock()
	if pub != nil {
		pub.RegisterPolicy(loid, pol)
	}
	m.event("policy-set", loid, nil, doc)
	return nil
}

// PolicyOf returns loid's designated policy. ok is false when none was ever
// set — the caller decides whether the implicit policy.Default() applies.
func (m *Manager) PolicyOf(loid naming.LOID) (policy.DistributionPolicy, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pol, ok := m.policies[loid]
	return pol.Clone(), ok
}

// PolicyLOIDs returns the LOIDs with a designated policy, sorted.
func (m *Manager) PolicyLOIDs() []naming.LOID {
	m.mu.Lock()
	out := make([]naming.LOID, 0, len(m.policies))
	for loid := range m.policies {
		out = append(out, loid)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// restorePolicy installs a journalled document during recovery: no
// re-journalling (the record is already durable), but the naming plane is
// re-published — a standby that just took over must make clients' next
// resolve see the policy its deposed predecessor had designated.
func (m *Manager) restorePolicy(loid naming.LOID, doc string) error {
	pol, err := policy.Parse(doc)
	if err != nil {
		return fmt.Errorf("recover policy for %s: %w", loid, err)
	}
	m.mu.Lock()
	if m.policies == nil {
		m.policies = make(map[naming.LOID]policy.DistributionPolicy)
	}
	m.policies[loid] = pol
	pub := m.policyPub
	m.mu.Unlock()
	if pub != nil {
		pub.RegisterPolicy(loid, pol)
	}
	return nil
}
