package manager

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"godcdo/internal/naming"
	"godcdo/internal/obs"
	"godcdo/internal/vclock"
	"godcdo/internal/version"
)

// Prober is the manager-side half of the liveness layer: it periodically
// probes every managed instance (by asking for its version over the normal
// Instance interface — an RPC round trip for remote instances), quarantines
// instances that stop answering, and re-converges quarantined instances to
// the current version when they answer again. Failing instances are probed
// with exponential backoff so a long partition does not burn the node's
// retry budget every sweep.
type Prober struct {
	// Mgr is the manager whose instances are probed.
	Mgr *Manager
	// Clock supplies time for backoff accounting (vclock.Real when nil).
	Clock vclock.Clock
	// FailureThreshold is how many consecutive probe failures quarantine an
	// instance. Zero means 1 — the first failure quarantines.
	FailureThreshold int
	// BaseBackoff is the delay before re-probing after the first failure
	// (default 50 ms); it doubles per consecutive failure up to MaxBackoff
	// (default 5 s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	mu    sync.Mutex
	state map[naming.LOID]*probeState
	stop  chan struct{}
	wg    sync.WaitGroup
}

// probeState tracks one instance's consecutive failures and backoff window.
type probeState struct {
	failures  int
	backoff   time.Duration
	nextProbe time.Time
}

// SweepReport summarises one prober sweep.
type SweepReport struct {
	// Probed lists instances actually probed this sweep.
	Probed []naming.LOID
	// Healthy lists probed instances that answered.
	Healthy []naming.LOID
	// Quarantined lists instances newly quarantined this sweep.
	Quarantined []naming.LOID
	// Reconverged lists previously quarantined instances that answered and
	// were brought back to the current version.
	Reconverged []naming.LOID
	// Deferred lists failing instances skipped because their backoff window
	// has not elapsed.
	Deferred []naming.LOID
}

func (p *Prober) clock() vclock.Clock {
	if p.Clock == nil {
		return vclock.Real{}
	}
	return p.Clock
}

func (p *Prober) threshold() int {
	if p.FailureThreshold <= 0 {
		return 1
	}
	return p.FailureThreshold
}

func (p *Prober) backoffBounds() (base, max time.Duration) {
	base, max = p.BaseBackoff, p.MaxBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if max < base {
		max = base
	}
	return base, max
}

// Sweep probes every managed instance once (respecting per-instance
// backoff) and applies the quarantine / re-convergence transitions. It
// returns what it did; errors re-converging individual instances are
// collected and joined, never aborting the sweep. A ctx that ends mid-sweep
// stops probing further instances; a probe in flight still completes.
func (p *Prober) Sweep(ctx context.Context) (SweepReport, error) {
	var report SweepReport
	var errs []error
	now := p.clock().Now()

	var sp *obs.Span
	if tr := p.Mgr.tracer(); tr != nil {
		sp = tr.StartSpan(obs.StageMgrProbe, obs.SpanContext{})
	}

	loids := p.Mgr.InstanceLOIDs()
	p.prune(loids)
	for _, loid := range loids {
		if ctx.Err() != nil {
			break // sweep cut short; the next interval picks up the rest
		}
		if p.deferred(loid, now) {
			report.Deferred = append(report.Deferred, loid)
			continue
		}
		inst := p.Mgr.instanceOf(loid)
		if inst == nil {
			continue // dropped between listing and probing
		}
		report.Probed = append(report.Probed, loid)
		_, err := inst.Version(ctx)
		if err != nil && isConnectivityError(err) {
			if p.recordFailure(loid, now) {
				p.Mgr.quarantine(loid, fmt.Sprintf("probe failed: %v", err))
				report.Quarantined = append(report.Quarantined, loid)
			}
			continue
		}
		// Any answer — even an application-level error — proves liveness.
		p.recordSuccess(loid)
		report.Healthy = append(report.Healthy, loid)
		if q, _ := p.Mgr.IsQuarantined(loid); !q {
			continue
		}
		if err := p.reconverge(ctx, loid); err != nil {
			errs = append(errs, fmt.Errorf("reconverge %s: %w", loid, err))
			continue
		}
		report.Reconverged = append(report.Reconverged, loid)
	}

	if sp != nil {
		sp.Annotate("probed", fmt.Sprintf("%d", len(report.Probed)))
		sp.Annotate("quarantined", fmt.Sprintf("%d", len(report.Quarantined)))
		sp.Annotate("reconverged", fmt.Sprintf("%d", len(report.Reconverged)))
		sp.Finish()
	}
	return report, errors.Join(errs...)
}

// reconverge lifts an instance's quarantine and, when a current version is
// designated and the instance is behind it, evolves the instance to it —
// the "evolve-to-current" half of the quarantine lifecycle.
func (p *Prober) reconverge(ctx context.Context, loid naming.LOID) error {
	current, _ := p.Mgr.CurrentVersion()
	if !current.IsZero() {
		actual, err := p.Mgr.instanceProbe(ctx, loid)
		if err != nil {
			return err
		}
		p.Mgr.syncRecord(loid, actual)
		if !actual.Equal(current) {
			if err := p.Mgr.EvolveInstance(ctx, loid, current); err != nil {
				return err
			}
		}
	}
	p.Mgr.UnquarantineInstance(loid)
	p.Mgr.event("reconverged", loid, current, "")
	return nil
}

// deferred reports whether loid's backoff window is still open.
func (p *Prober) deferred(loid naming.LOID, now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.state[loid]
	return st != nil && st.failures > 0 && now.Before(st.nextProbe)
}

// recordFailure notes a consecutive failure and reports whether the
// threshold was just crossed.
func (p *Prober) recordFailure(loid naming.LOID, now time.Time) bool {
	base, max := p.backoffBounds()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state == nil {
		p.state = make(map[naming.LOID]*probeState)
	}
	st := p.state[loid]
	if st == nil {
		st = &probeState{}
		p.state[loid] = st
	}
	st.failures++
	if st.backoff == 0 {
		st.backoff = base
	} else if st.backoff < max {
		st.backoff *= 2
		if st.backoff > max {
			st.backoff = max
		}
	}
	st.nextProbe = now.Add(st.backoff)
	return st.failures == p.threshold()
}

// prune drops probe state for LOIDs no longer managed. Without it the map
// grows without bound on a long-lived manager as instances are dropped or
// migrated away, and — worse — a LOID re-created later would inherit the old
// incarnation's consecutive-failure count and backoff window, so its first
// transient hiccup could quarantine it immediately.
func (p *Prober) prune(fleet []naming.LOID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.state) == 0 {
		return
	}
	live := make(map[naming.LOID]struct{}, len(fleet))
	for _, loid := range fleet {
		live[loid] = struct{}{}
	}
	for loid := range p.state {
		if _, ok := live[loid]; !ok {
			delete(p.state, loid)
		}
	}
}

// recordSuccess clears loid's failure state.
func (p *Prober) recordSuccess(loid naming.LOID) {
	p.mu.Lock()
	delete(p.state, loid)
	p.mu.Unlock()
}

// Run starts a background loop sweeping every interval until Stop. A
// prober runs at most one loop; Run panics on a second call before Stop.
func (p *Prober) Run(interval time.Duration) {
	p.mu.Lock()
	if p.stop != nil {
		p.mu.Unlock()
		panic("manager: prober already running")
	}
	stop := make(chan struct{})
	p.stop = stop
	p.mu.Unlock()

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-p.clock().After(interval):
				// The background loop owns its sweeps; Stop ends the loop
				// between sweeps rather than cancelling one mid-flight.
				_, _ = p.Sweep(context.Background())
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit. Safe to call
// when not running.
func (p *Prober) Stop() {
	p.mu.Lock()
	stop := p.stop
	p.stop = nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	p.wg.Wait()
}

// instanceProbe returns the instance's actual version (an RPC for remote
// instances).
func (m *Manager) instanceProbe(ctx context.Context, loid naming.LOID) (version.ID, error) {
	inst := m.instanceOf(loid)
	if inst == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownInstance, loid)
	}
	return inst.Version(ctx)
}
