package manager

import (
	"context"
	"fmt"

	"godcdo/internal/core"
	"godcdo/internal/dfm"
	"godcdo/internal/evolution"
	"godcdo/internal/naming"
	"godcdo/internal/policy"
	"godcdo/internal/registry"
	"godcdo/internal/rpc"
	"godcdo/internal/version"
	"godcdo/internal/wire"
)

// Remotely callable manager methods. A DCDO Manager is itself an active
// distributed object; these constants are its exported interface.
const (
	MethodCurrentVersion   = "mgr.currentVersion"
	MethodSetCurrent       = "mgr.setCurrent"
	MethodDescriptor       = "mgr.descriptor"
	MethodInstantiableDesc = "mgr.instantiableDescriptor"
	MethodDerive           = "mgr.derive"
	MethodMarkInstantiable = "mgr.markInstantiable"
	MethodEvolveInstance   = "mgr.evolveInstance"
	MethodRecords          = "mgr.records"
	MethodCreateRoot       = "mgr.createRoot"
	MethodVAddComponent    = "mgr.vAddComponent"
	MethodVRemoveComponent = "mgr.vRemoveComponent"
	MethodVSetEnabled      = "mgr.vSetEnabled"
	MethodVSetFlags        = "mgr.vSetFlags"
	MethodVAddDep          = "mgr.vAddDep"
	MethodRecover          = "mgr.recover"
	MethodHealth           = "mgr.health"
	MethodPolicyGet        = "mgr.policyGet"
	MethodPolicySet        = "mgr.policySet"
)

// InstanceHealth is one row of the mgr.health reply: the DCDO table entry
// plus its quarantine state.
type InstanceHealth struct {
	LOID        naming.LOID
	Version     version.ID
	Quarantined bool
	Reason      string
}

// InstanceHealths reports every managed instance's table version and
// quarantine state, sorted by LOID.
func (m *Manager) InstanceHealths() []InstanceHealth {
	records := m.Records()
	out := make([]InstanceHealth, 0, len(records))
	for _, r := range records {
		h := InstanceHealth{LOID: r.LOID, Version: r.Version}
		h.Quarantined, h.Reason = m.IsQuarantined(r.LOID)
		out = append(out, h)
	}
	return out
}

// Object wraps a Manager as an rpc.Object so remote programmers and DCDOs
// can drive version management and evolution over the wire.
type Object struct {
	Mgr *Manager
}

var (
	_ rpc.Object             = (*Object)(nil)
	_ rpc.ContextAwareObject = (*Object)(nil)
)

// InvokeMethod implements rpc.Object for context-free callers.
func (o *Object) InvokeMethod(method string, args []byte) ([]byte, error) {
	return o.InvokeMethodCtx(context.Background(), method, args)
}

// InvokeMethodCtx implements rpc.ContextAwareObject: the long-running
// manager operations (fleet-wide designations, per-instance evolutions,
// recovery) run under the caller's context, so a remote client's deadline
// bounds the instance RPCs the manager issues on its behalf.
func (o *Object) InvokeMethodCtx(ctx context.Context, method string, args []byte) ([]byte, error) {
	m := o.Mgr
	dec := wire.NewDecoder(args)
	badReq := func(what string, err error) ([]byte, error) {
		return nil, fmt.Errorf("%w: %s: %v", rpc.ErrBadRequest, what, err)
	}
	decodeVersion := func() (version.ID, error) {
		segs, err := dec.UintSlice()
		if err != nil {
			return nil, err
		}
		return version.Decode(segs)
	}
	encodeVersion := func(v version.ID) []byte {
		e := wire.NewEncoder(16)
		e.PutUintSlice(v.Encode())
		return e.Bytes()
	}

	switch method {
	case MethodCurrentVersion:
		v, err := m.CurrentVersion()
		if err != nil {
			return nil, err
		}
		return encodeVersion(v), nil

	case MethodSetCurrent:
		v, err := decodeVersion()
		if err != nil {
			return badReq("version", err)
		}
		return nil, m.SetCurrentVersion(ctx, v)

	case MethodDescriptor, MethodInstantiableDesc:
		v, err := decodeVersion()
		if err != nil {
			return badReq("version", err)
		}
		var desc *dfm.Descriptor
		if method == MethodDescriptor {
			desc, err = m.Store().Descriptor(v)
		} else {
			desc, err = m.Store().InstantiableDescriptor(v)
		}
		if err != nil {
			return nil, err
		}
		return desc.Encode(), nil

	case MethodDerive:
		from, err := decodeVersion()
		if err != nil {
			return badReq("version", err)
		}
		child, err := m.Store().Derive(from)
		if err != nil {
			return nil, err
		}
		return encodeVersion(child), nil

	case MethodMarkInstantiable:
		v, err := decodeVersion()
		if err != nil {
			return badReq("version", err)
		}
		return nil, m.Store().MarkInstantiable(v)

	case MethodEvolveInstance:
		loidStr, err := dec.String()
		if err != nil {
			return badReq("loid", err)
		}
		loid, err := naming.ParseLOID(loidStr)
		if err != nil {
			return badReq("loid", err)
		}
		v, err := decodeVersion()
		if err != nil {
			return badReq("version", err)
		}
		return nil, m.EvolveInstance(ctx, loid, v)

	case MethodRecords:
		records := m.Records()
		e := wire.NewEncoder(32 * len(records))
		e.PutUvarint(uint64(len(records)))
		for _, r := range records {
			e.PutString(r.LOID.String())
			e.PutUintSlice(r.Version.Encode())
			e.PutString(r.Impl.String())
		}
		return e.Bytes(), nil

	case MethodCreateRoot:
		descBytes, err := dec.Bytes()
		if err != nil {
			return badReq("descriptor", err)
		}
		var desc *dfm.Descriptor
		if len(descBytes) > 0 {
			if desc, err = dfm.DecodeDescriptor(descBytes); err != nil {
				return badReq("descriptor", err)
			}
		}
		root, err := m.Store().CreateRoot(desc)
		if err != nil {
			return nil, err
		}
		return encodeVersion(root), nil

	case MethodVAddComponent:
		v, err := decodeVersion()
		if err != nil {
			return badReq("version", err)
		}
		id, ref, entries, err := decodeAddComponent(dec)
		if err != nil {
			return badReq("component", err)
		}
		return nil, m.Store().Configure(v, func(d *dfm.Descriptor) error {
			d.Components[id] = ref
			d.Entries = append(d.Entries, entries...)
			return nil
		})

	case MethodVRemoveComponent:
		v, err := decodeVersion()
		if err != nil {
			return badReq("version", err)
		}
		id, err := dec.String()
		if err != nil {
			return badReq("component id", err)
		}
		return nil, m.Store().Configure(v, func(d *dfm.Descriptor) error {
			delete(d.Components, id)
			kept := d.Entries[:0]
			for _, e := range d.Entries {
				if e.Component != id {
					kept = append(kept, e)
				}
			}
			d.Entries = kept
			return nil
		})

	case MethodVSetEnabled:
		v, err := decodeVersion()
		if err != nil {
			return badReq("version", err)
		}
		fn, err := dec.String()
		if err != nil {
			return badReq("function", err)
		}
		comp, err := dec.String()
		if err != nil {
			return badReq("component", err)
		}
		enabled, err := dec.Bool()
		if err != nil {
			return badReq("enabled flag", err)
		}
		return nil, m.Store().Configure(v, func(d *dfm.Descriptor) error {
			e := d.Entry(dfm.EntryKey{Function: fn, Component: comp})
			if e == nil {
				return fmt.Errorf("%w: no entry %s@%s in %s", ErrUnknownVersion, fn, comp, v)
			}
			e.Enabled = enabled
			return nil
		})

	case MethodVSetFlags:
		v, err := decodeVersion()
		if err != nil {
			return badReq("version", err)
		}
		fn, err := dec.String()
		if err != nil {
			return badReq("function", err)
		}
		comp, err := dec.String()
		if err != nil {
			return badReq("component", err)
		}
		var flags [3]bool
		for i := range flags {
			if flags[i], err = dec.Bool(); err != nil {
				return badReq("flags", err)
			}
		}
		return nil, m.Store().Configure(v, func(d *dfm.Descriptor) error {
			e := d.Entry(dfm.EntryKey{Function: fn, Component: comp})
			if e == nil {
				return fmt.Errorf("%w: no entry %s@%s in %s", ErrUnknownVersion, fn, comp, v)
			}
			e.Exported, e.Mandatory, e.Permanent = flags[0], flags[1], flags[2]
			return nil
		})

	case MethodVAddDep:
		v, err := decodeVersion()
		if err != nil {
			return badReq("version", err)
		}
		kind, err := dec.Uvarint()
		if err != nil {
			return badReq("dependency", err)
		}
		var dep dfm.Dependency
		dep.Kind = dfm.DepKind(kind)
		if dep.FromFunc, err = dec.String(); err != nil {
			return badReq("dependency", err)
		}
		if dep.FromComp, err = dec.String(); err != nil {
			return badReq("dependency", err)
		}
		if dep.ToFunc, err = dec.String(); err != nil {
			return badReq("dependency", err)
		}
		if dep.ToComp, err = dec.String(); err != nil {
			return badReq("dependency", err)
		}
		if err := dep.Validate(); err != nil {
			return badReq("dependency", err)
		}
		return nil, m.Store().Configure(v, func(d *dfm.Descriptor) error {
			d.Deps = append(d.Deps, dep)
			return nil
		})

	case MethodPolicyGet:
		loidStr, err := dec.String()
		if err != nil {
			return badReq("loid", err)
		}
		loid, err := naming.ParseLOID(loidStr)
		if err != nil {
			return badReq("loid", err)
		}
		pol, ok := m.PolicyOf(loid)
		e := wire.NewEncoder(64)
		e.PutBool(ok)
		if ok {
			e.PutString(pol.String())
		} else {
			e.PutString("")
		}
		return e.Bytes(), nil

	case MethodPolicySet:
		loidStr, err := dec.String()
		if err != nil {
			return badReq("loid", err)
		}
		loid, err := naming.ParseLOID(loidStr)
		if err != nil {
			return badReq("loid", err)
		}
		doc, err := dec.String()
		if err != nil {
			return badReq("policy", err)
		}
		pol, err := policy.Parse(doc)
		if err != nil {
			return badReq("policy", err)
		}
		return nil, m.SetPolicy(loid, pol)

	case MethodRecover:
		report, err := m.Recover(ctx)
		if err != nil {
			return nil, err
		}
		return EncodeRecoveryReport(report), nil

	case MethodHealth:
		healths := m.InstanceHealths()
		e := wire.NewEncoder(32 * len(healths))
		e.PutUvarint(uint64(len(healths)))
		for _, h := range healths {
			e.PutString(h.LOID.String())
			e.PutUintSlice(h.Version.Encode())
			e.PutBool(h.Quarantined)
			e.PutString(h.Reason)
		}
		return e.Bytes(), nil

	default:
		return nil, fmt.Errorf("%w: %q", rpc.ErrNoSuchFunction, method)
	}
}

// EncodeRecoveryReport serialises a RecoveryReport for the wire.
func EncodeRecoveryReport(r RecoveryReport) []byte {
	e := wire.NewEncoder(64)
	e.PutUvarint(uint64(r.Passes))
	e.PutUintSlice(r.Current.Encode())
	putLOIDs := func(loids []naming.LOID) {
		e.PutUvarint(uint64(len(loids)))
		for _, loid := range loids {
			e.PutString(loid.String())
		}
	}
	putLOIDs(r.Resumed)
	putLOIDs(r.Verified)
	putLOIDs(r.RolledBack)
	putLOIDs(r.Quarantined)
	return e.Bytes()
}

// DecodeRecoveryReport parses EncodeRecoveryReport's payload.
func DecodeRecoveryReport(payload []byte) (RecoveryReport, error) {
	var r RecoveryReport
	dec := wire.NewDecoder(payload)
	passes, err := dec.Uvarint()
	if err != nil {
		return r, err
	}
	r.Passes = int(passes)
	segs, err := dec.UintSlice()
	if err != nil {
		return r, err
	}
	if r.Current, err = version.Decode(segs); err != nil {
		return r, err
	}
	readLOIDs := func() ([]naming.LOID, error) {
		n, err := dec.Uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(dec.Remaining()) {
			return nil, fmt.Errorf("loid count %d exceeds payload", n)
		}
		var out []naming.LOID
		for i := uint64(0); i < n; i++ {
			s, err := dec.String()
			if err != nil {
				return nil, err
			}
			loid, err := naming.ParseLOID(s)
			if err != nil {
				return nil, err
			}
			out = append(out, loid)
		}
		return out, nil
	}
	if r.Resumed, err = readLOIDs(); err != nil {
		return r, err
	}
	if r.Verified, err = readLOIDs(); err != nil {
		return r, err
	}
	if r.RolledBack, err = readLOIDs(); err != nil {
		return r, err
	}
	if r.Quarantined, err = readLOIDs(); err != nil {
		return r, err
	}
	return r, nil
}

// DecodeInstanceHealths parses the mgr.health reply.
func DecodeInstanceHealths(payload []byte) ([]InstanceHealth, error) {
	dec := wire.NewDecoder(payload)
	n, err := dec.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(dec.Remaining()) {
		return nil, fmt.Errorf("health count %d exceeds payload", n)
	}
	out := make([]InstanceHealth, 0, n)
	for i := uint64(0); i < n; i++ {
		var h InstanceHealth
		s, err := dec.String()
		if err != nil {
			return nil, err
		}
		if h.LOID, err = naming.ParseLOID(s); err != nil {
			return nil, err
		}
		segs, err := dec.UintSlice()
		if err != nil {
			return nil, err
		}
		if h.Version, err = version.Decode(segs); err != nil {
			return nil, err
		}
		if h.Quarantined, err = dec.Bool(); err != nil {
			return nil, err
		}
		if h.Reason, err = dec.String(); err != nil {
			return nil, err
		}
		out = append(out, h)
	}
	return out, nil
}

func decodeAddComponent(dec *wire.Decoder) (string, dfm.ComponentRef, []dfm.EntryDesc, error) {
	id, err := dec.String()
	if err != nil {
		return "", dfm.ComponentRef{}, nil, err
	}
	var ref dfm.ComponentRef
	loidStr, err := dec.String()
	if err != nil {
		return "", ref, nil, err
	}
	if ref.ICO, err = naming.ParseLOID(loidStr); err != nil {
		return "", ref, nil, err
	}
	if ref.CodeRef, err = dec.String(); err != nil {
		return "", ref, nil, err
	}
	implStr, err := dec.String()
	if err != nil {
		return "", ref, nil, err
	}
	if ref.Impl, err = registry.ParseImplType(implStr); err != nil {
		return "", ref, nil, err
	}
	if ref.CodeSize, err = dec.Varint(); err != nil {
		return "", ref, nil, err
	}
	if ref.Revision, err = dec.Uvarint(); err != nil {
		return "", ref, nil, err
	}
	n, err := dec.Uvarint()
	if err != nil {
		return "", ref, nil, err
	}
	if n > uint64(dec.Remaining()) {
		return "", ref, nil, fmt.Errorf("entry count %d exceeds buffer", n)
	}
	entries := make([]dfm.EntryDesc, 0, n)
	for i := uint64(0); i < n; i++ {
		var e dfm.EntryDesc
		if e.Function, err = dec.String(); err != nil {
			return "", ref, nil, err
		}
		e.Component = id
		if e.Exported, err = dec.Bool(); err != nil {
			return "", ref, nil, err
		}
		if e.Enabled, err = dec.Bool(); err != nil {
			return "", ref, nil, err
		}
		if e.Mandatory, err = dec.Bool(); err != nil {
			return "", ref, nil, err
		}
		if e.Permanent, err = dec.Bool(); err != nil {
			return "", ref, nil, err
		}
		entries = append(entries, e)
	}
	return id, ref, entries, nil
}

// EncodeAddComponentArgs builds MethodVAddComponent's payload.
func EncodeAddComponentArgs(v version.ID, id string, ref dfm.ComponentRef, entries []dfm.EntryDesc) []byte {
	e := wire.NewEncoder(128)
	e.PutUintSlice(v.Encode())
	e.PutString(id)
	e.PutString(ref.ICO.String())
	e.PutString(ref.CodeRef)
	e.PutString(ref.Impl.String())
	e.PutVarint(ref.CodeSize)
	e.PutUvarint(ref.Revision)
	e.PutUvarint(uint64(len(entries)))
	for _, en := range entries {
		e.PutString(en.Function)
		e.PutBool(en.Exported)
		e.PutBool(en.Enabled)
		e.PutBool(en.Mandatory)
		e.PutBool(en.Permanent)
	}
	return e.Bytes()
}

// EncodeVersionArgs builds a payload holding just a version.
func EncodeVersionArgs(v version.ID) []byte {
	e := wire.NewEncoder(16)
	e.PutUintSlice(v.Encode())
	return e.Bytes()
}

// EncodeSetEnabledArgs builds MethodVSetEnabled's payload.
func EncodeSetEnabledArgs(v version.ID, key dfm.EntryKey, enabled bool) []byte {
	e := wire.NewEncoder(64)
	e.PutUintSlice(v.Encode())
	e.PutString(key.Function)
	e.PutString(key.Component)
	e.PutBool(enabled)
	return e.Bytes()
}

// EncodeSetFlagsArgs builds MethodVSetFlags's payload.
func EncodeSetFlagsArgs(v version.ID, key dfm.EntryKey, exported, mandatory, permanent bool) []byte {
	e := wire.NewEncoder(64)
	e.PutUintSlice(v.Encode())
	e.PutString(key.Function)
	e.PutString(key.Component)
	e.PutBool(exported)
	e.PutBool(mandatory)
	e.PutBool(permanent)
	return e.Bytes()
}

// EncodeAddDepArgs builds MethodVAddDep's payload.
func EncodeAddDepArgs(v version.ID, dep dfm.Dependency) []byte {
	e := wire.NewEncoder(64)
	e.PutUintSlice(v.Encode())
	e.PutUvarint(uint64(dep.Kind))
	e.PutString(dep.FromFunc)
	e.PutString(dep.FromComp)
	e.PutString(dep.ToFunc)
	e.PutString(dep.ToComp)
	return e.Bytes()
}

// EncodeEvolveInstanceArgs builds MethodEvolveInstance's payload.
func EncodeEvolveInstanceArgs(loid naming.LOID, v version.ID) []byte {
	e := wire.NewEncoder(48)
	e.PutString(loid.String())
	e.PutUintSlice(v.Encode())
	return e.Bytes()
}

// EncodePolicyGetArgs builds MethodPolicyGet's payload.
func EncodePolicyGetArgs(loid naming.LOID) []byte {
	e := wire.NewEncoder(32)
	e.PutString(loid.String())
	return e.Bytes()
}

// DecodePolicyGetReply parses the mgr.policyGet reply: the serialised
// document and whether one was designated.
func DecodePolicyGetReply(payload []byte) (doc string, ok bool, err error) {
	dec := wire.NewDecoder(payload)
	if ok, err = dec.Bool(); err != nil {
		return "", false, err
	}
	if doc, err = dec.String(); err != nil {
		return "", false, err
	}
	return doc, ok, nil
}

// EncodePolicySetArgs builds MethodPolicySet's payload.
func EncodePolicySetArgs(loid naming.LOID, doc string) []byte {
	e := wire.NewEncoder(32 + len(doc))
	e.PutString(loid.String())
	e.PutString(doc)
	return e.Bytes()
}

// --- Remote proxies -----------------------------------------------------------

// RemoteInstance adapts a DCDO reachable over RPC to the Instance interface.
type RemoteInstance struct {
	Client *rpc.Client
	Target naming.LOID
}

var _ Instance = RemoteInstance{}

// LOID implements Instance.
func (r RemoteInstance) LOID() naming.LOID { return r.Target }

// Version implements Instance.
func (r RemoteInstance) Version(ctx context.Context) (version.ID, error) {
	out, err := r.Client.Invoke(ctx, r.Target, core.MethodVersion, nil)
	if err != nil {
		return nil, err
	}
	segs, err := wire.NewDecoder(out).UintSlice()
	if err != nil {
		return nil, fmt.Errorf("remote version: %w", err)
	}
	return version.Decode(segs)
}

// Apply implements Instance.
func (r RemoteInstance) Apply(ctx context.Context, target *dfm.Descriptor, v version.ID) (core.ApplyReport, error) {
	out, err := r.Client.Invoke(ctx, r.Target, core.MethodApplyDescriptor, core.EncodeApplyArgs(target, v))
	if err != nil {
		return core.ApplyReport{}, err
	}
	return core.DecodeApplyReport(out)
}

// Interface implements Instance.
func (r RemoteInstance) Interface(ctx context.Context) ([]string, error) {
	out, err := r.Client.Invoke(ctx, r.Target, core.MethodInterface, nil)
	if err != nil {
		return nil, err
	}
	return wire.NewDecoder(out).StringSlice()
}

// EnsureCurrent implements the client side of the explicit update policy
// (§3.4): a client "discovers that a DCDO is out of date, and initiates the
// update to the current version before invoking a function on the object".
// It compares the object's version with the remote manager's current
// version and, when they differ, asks the manager to evolve the instance.
// It reports whether an update was initiated.
func EnsureCurrent(ctx context.Context, client *rpc.Client, mgr, obj naming.LOID) (bool, error) {
	view := RemoteView{Client: client, Target: mgr}
	current, err := view.currentVersion(ctx)
	if err != nil {
		return false, fmt.Errorf("ensure current: %w", err)
	}
	if current.IsZero() {
		return false, nil
	}
	inst := RemoteInstance{Client: client, Target: obj}
	mine, err := inst.Version(ctx)
	if err != nil {
		return false, fmt.Errorf("ensure current: %w", err)
	}
	if current.Equal(mine) {
		return false, nil
	}
	if _, err := client.Invoke(ctx, mgr, MethodEvolveInstance, EncodeEvolveInstanceArgs(obj, current)); err != nil {
		return false, fmt.Errorf("ensure current: %w", err)
	}
	return true, nil
}

// RemoteView adapts a manager reachable over RPC to evolution.ManagerView,
// letting remote DCDOs run lazy update checks against their manager.
type RemoteView struct {
	Client *rpc.Client
	Target naming.LOID
}

var _ evolution.ManagerView = RemoteView{}

// CurrentVersion implements evolution.ManagerView. The interface is
// deliberately context-free (lazy update checks are the object's own
// maintenance); the proxy supplies a background context.
func (r RemoteView) CurrentVersion() (version.ID, error) {
	return r.currentVersion(context.Background())
}

func (r RemoteView) currentVersion(ctx context.Context) (version.ID, error) {
	out, err := r.Client.Invoke(ctx, r.Target, MethodCurrentVersion, nil)
	if err != nil {
		return nil, err
	}
	segs, err := wire.NewDecoder(out).UintSlice()
	if err != nil {
		return nil, fmt.Errorf("remote current version: %w", err)
	}
	return version.Decode(segs)
}

// InstantiableDescriptor implements evolution.ManagerView.
func (r RemoteView) InstantiableDescriptor(v version.ID) (*dfm.Descriptor, error) {
	out, err := r.Client.Invoke(context.Background(), r.Target, MethodInstantiableDesc, EncodeVersionArgs(v))
	if err != nil {
		return nil, err
	}
	return dfm.DecodeDescriptor(out)
}
