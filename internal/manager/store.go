// Package manager implements the DCDO Manager object type (§2.4): the DFM
// store holding the version tree of DFM descriptors (each configurable or
// instantiable), the DCDO table tracking managed instances, version
// derivation and configuration, and the evolution driving governed by the
// policies in package evolution.
package manager

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"godcdo/internal/dfm"
	"godcdo/internal/version"
)

// VersionState distinguishes configurable from instantiable versions.
type VersionState int

// Version states (§2.4).
const (
	// StateConfigurable versions can be edited but cannot create or evolve
	// DCDOs.
	StateConfigurable VersionState = iota + 1
	// StateInstantiable versions can create and evolve DCDOs but can no
	// longer be edited.
	StateInstantiable
)

// String implements fmt.Stringer.
func (s VersionState) String() string {
	switch s {
	case StateConfigurable:
		return "configurable"
	case StateInstantiable:
		return "instantiable"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Errors returned by the store.
var (
	// ErrUnknownVersion is returned for versions absent from the store.
	ErrUnknownVersion = errors.New("manager: unknown version")
	// ErrVersionFrozen is returned when configuring an instantiable
	// version.
	ErrVersionFrozen = errors.New("manager: version is instantiable and cannot be configured")
	// ErrVersionNotReady is returned when using a configurable version to
	// create or evolve DCDOs.
	ErrVersionNotReady = errors.New("manager: version is not instantiable")
	// ErrRootExists is returned when creating a second root version.
	ErrRootExists = errors.New("manager: root version already exists")
)

// versionNode is one node of the version tree.
type versionNode struct {
	id        version.ID
	state     VersionState
	desc      *dfm.Descriptor
	parent    version.ID // nil for the root
	children  []version.ID
	nextChild uint32
}

// Store is the DFM store: the version tree of DFM descriptors for one
// object type. Safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	nodes map[string]*versionNode
	root  version.ID
}

// NewStore returns an empty DFM store.
func NewStore() *Store {
	return &Store{nodes: make(map[string]*versionNode)}
}

// CreateRoot installs the tree's root version (conventionally version 1) in
// the configurable state with the given descriptor (nil means empty).
func (s *Store) CreateRoot(desc *dfm.Descriptor) (version.ID, error) {
	if desc == nil {
		desc = dfm.NewDescriptor()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.root.IsZero() {
		return nil, ErrRootExists
	}
	root := version.Root.Clone()
	s.nodes[root.String()] = &versionNode{
		id:    root,
		state: StateConfigurable,
		desc:  desc.Clone(),
	}
	s.root = root
	return root, nil
}

// Root returns the root version, or nil when none exists.
func (s *Store) Root() version.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.root.Clone()
}

// Derive creates a new configurable version by logically copying an existing
// one (§2.4). Child identifiers are allocated as from.<n> with n increasing.
func (s *Store) Derive(from version.ID) (version.ID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, ok := s.nodes[from.String()]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownVersion, from)
	}
	parent.nextChild++
	child := from.Child(parent.nextChild)
	s.nodes[child.String()] = &versionNode{
		id:     child,
		state:  StateConfigurable,
		desc:   parent.desc.Clone(),
		parent: from.Clone(),
	}
	parent.children = append(parent.children, child)
	return child, nil
}

// Configure edits a configurable version's descriptor through fn. The
// descriptor must remain structurally valid; otherwise the edit is rolled
// back.
func (s *Store) Configure(v version.ID, fn func(*dfm.Descriptor) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	node, ok := s.nodes[v.String()]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownVersion, v)
	}
	if node.state != StateConfigurable {
		return fmt.Errorf("%w: %s", ErrVersionFrozen, v)
	}
	working := node.desc.Clone()
	if err := fn(working); err != nil {
		return err
	}
	if err := working.Validate(); err != nil {
		return fmt.Errorf("configure %s: %w", v, err)
	}
	node.desc = working
	return nil
}

// MarkInstantiable freezes a configurable version after checking the
// instantiability rules (§3.2) and the derivation constraints inherited from
// its parent. Once instantiable, a version's descriptor never changes,
// which is what lets a <manager, version id> pair uniquely identify an
// interface and implementation.
func (s *Store) MarkInstantiable(v version.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	node, ok := s.nodes[v.String()]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownVersion, v)
	}
	if node.state == StateInstantiable {
		return nil
	}
	if err := node.desc.ValidateInstantiable(); err != nil {
		return fmt.Errorf("mark %s instantiable: %w", v, err)
	}
	if !node.parent.IsZero() {
		parent := s.nodes[node.parent.String()]
		if parent != nil {
			if err := node.desc.ValidateDerivation(parent.desc); err != nil {
				return fmt.Errorf("mark %s instantiable: %w", v, err)
			}
		}
	}
	node.state = StateInstantiable
	return nil
}

// State returns a version's state.
func (s *Store) State(v version.ID) (VersionState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	node, ok := s.nodes[v.String()]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownVersion, v)
	}
	return node.state, nil
}

// Descriptor returns a copy of a version's descriptor.
func (s *Store) Descriptor(v version.ID) (*dfm.Descriptor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	node, ok := s.nodes[v.String()]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownVersion, v)
	}
	return node.desc.Clone(), nil
}

// InstantiableDescriptor returns a copy of an instantiable version's
// descriptor; configurable versions are refused (§2.4: they "cannot be used
// to create a new DCDO, or to evolve an existing DCDO").
func (s *Store) InstantiableDescriptor(v version.ID) (*dfm.Descriptor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	node, ok := s.nodes[v.String()]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownVersion, v)
	}
	if node.state != StateInstantiable {
		return nil, fmt.Errorf("%w: %s", ErrVersionNotReady, v)
	}
	return node.desc.Clone(), nil
}

// IsInstantiable reports whether v exists and is instantiable.
func (s *Store) IsInstantiable(v version.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	node, ok := s.nodes[v.String()]
	return ok && node.state == StateInstantiable
}

// Parent returns a version's parent (nil for the root).
func (s *Store) Parent(v version.ID) (version.ID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	node, ok := s.nodes[v.String()]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownVersion, v)
	}
	return node.parent.Clone(), nil
}

// Children returns a version's direct children in derivation order.
func (s *Store) Children(v version.ID) ([]version.ID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	node, ok := s.nodes[v.String()]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownVersion, v)
	}
	out := make([]version.ID, len(node.children))
	for i, c := range node.children {
		out[i] = c.Clone()
	}
	return out, nil
}

// Versions returns every version in the store, sorted.
func (s *Store) Versions() []version.ID {
	s.mu.Lock()
	out := make([]version.ID, 0, len(s.nodes))
	for _, node := range s.nodes {
		out = append(out, node.id.Clone())
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Len reports the number of versions in the store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.nodes)
}
