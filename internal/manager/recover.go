package manager

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"godcdo/internal/naming"
	"godcdo/internal/obs"
	"godcdo/internal/registry"
	"godcdo/internal/version"
)

// Recovery: a restarted manager owns a store image (LoadStore), a journal,
// and a set of re-registered instances — but no memory of what it was doing
// when it died. Recover replays the journal to find out: the last
// current-version designation is restored, and every pass that began but
// never recorded done is finished. For each instance the journal says a
// pass planned or touched, the instance's *actual* version is probed over
// its normal Instance interface (an RPC for remote instances) — the journal
// narrows the candidates, the probe decides. Unreachable instances are
// quarantined for the prober rather than blocking recovery.

// RecoveryReport summarises one Recover call.
type RecoveryReport struct {
	// Passes is the number of incomplete journal passes that were
	// recovered. 0 means the journal was clean — recovery was a no-op.
	Passes int
	// Current is the restored current version (nil if none was journalled).
	Current version.ID
	// Resumed lists instances evolved forward to an interrupted pass's
	// target during recovery.
	Resumed []naming.LOID
	// Verified lists instances probed and found already consistent.
	Verified []naming.LOID
	// RolledBack lists instances moved back to their pre-pass version
	// because the pass target is no longer instantiable in the store.
	RolledBack []naming.LOID
	// Quarantined lists instances that could not be probed and were
	// quarantined for the prober to re-converge later.
	Quarantined []naming.LOID
	// Policies is the number of distribution-policy documents restored
	// from the journal (latest per LOID).
	Policies int
}

// passState is one journal pass reconstructed from its records.
type passState struct {
	pass    uint64
	target  version.ID
	reason  string // OpBegin reason; passReasonRollback marks style-exempt
	planned []naming.LOID
	intents map[naming.LOID]JournalRecord // latest intent per instance
	applied map[naming.LOID]bool
	skipped map[naming.LOID]bool
	done    bool
}

// AdoptUnverified registers an instance without probing it (Adopt calls
// Version, which fails for a partitioned instance). The instance enters the
// table at lastKnown, quarantined with the given reason, so recovery and
// the prober can converge it when it becomes reachable. This is the restart
// path's adoption primitive for instances that were unreachable at boot.
func (m *Manager) AdoptUnverified(inst Instance, impl registry.ImplType, lastKnown version.ID, reason string) error {
	loid := inst.LOID()
	m.mu.Lock()
	if _, exists := m.records[loid]; exists {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicateInstance, loid)
	}
	m.instances[loid] = inst
	m.records[loid] = &Record{LOID: loid, Version: lastKnown.Clone(), Impl: impl}
	m.quarantined[loid] = reason
	m.mu.Unlock()
	m.event("adopted", loid, lastKnown, "unverified impl="+impl.String())
	m.event("quarantined", loid, nil, reason)
	return nil
}

// Recover replays the evolution journal against the (re-loaded) store and
// the re-registered instances, finishing every interrupted pass: instances
// are probed for their actual version, evolved forward when the pass target
// is still instantiable, rolled back to their pre-pass version when it is
// not, and quarantined when unreachable. Completed passes are then
// compacted out of the journal, so a second Recover is a no-op. Requires a
// journal (ErrNoJournal otherwise). ctx bounds the probes and evolutions
// recovery performs.
func (m *Manager) Recover(ctx context.Context) (RecoveryReport, error) {
	j := m.Journal()
	if j == nil {
		return RecoveryReport{}, ErrNoJournal
	}
	recs, err := j.Records()
	if err != nil {
		return RecoveryReport{}, err
	}

	var sp *obs.Span
	if tr := m.tracer(); tr != nil {
		sp = tr.StartSpan(obs.StageMgrRecover, obs.SpanContext{})
	}
	report, err := m.recover(ctx, sp, j, recs)
	if sp != nil {
		sp.Annotate("passes", fmt.Sprintf("%d", report.Passes))
		sp.Fail(err)
		sp.Finish()
	}
	m.event("recovered", naming.LOID{}, report.Current,
		fmt.Sprintf("passes=%d resumed=%d verified=%d rolledback=%d quarantined=%d",
			report.Passes, len(report.Resumed), len(report.Verified),
			len(report.RolledBack), len(report.Quarantined)))
	return report, err
}

func (m *Manager) recover(ctx context.Context, sp *obs.Span, j *Journal, recs []JournalRecord) (RecoveryReport, error) {
	var report RecoveryReport
	var lastCurrent version.ID
	var lastEpoch uint64
	passes := make(map[uint64]*passState)
	var order []uint64
	// Rollout records belong to the supervisor, not the manager: recovery
	// finishes the manager's evolution passes but must carry any rollout
	// still open (start without done) through its compaction so a restarted
	// supervisor can resume it.
	rolloutRecs := make(map[uint64][]JournalRecord)
	rolloutDone := make(map[uint64]bool)
	var rolloutOrder []uint64
	// Distribution policies are designations like OpCurrent: the latest
	// document per LOID is restored and carried through compaction.
	// OpReconcile records are a transient audit trail and compact away —
	// the reconciler re-derives its work from policy vs observed state.
	lastPolicy := make(map[naming.LOID]string)
	var policyOrder []naming.LOID
	for _, r := range recs {
		switch r.Op {
		case OpCurrent:
			lastCurrent = r.Target
		case OpPolicySet:
			if _, seen := lastPolicy[r.LOID]; !seen {
				policyOrder = append(policyOrder, r.LOID)
			}
			lastPolicy[r.LOID] = r.Reason
		case OpMgrEpoch:
			// Manager-epoch bumps are era markers, not pass records: track
			// the latest so compaction carries it forward like OpCurrent.
			if r.Pass > lastEpoch {
				lastEpoch = r.Pass
			}
		case OpRolloutStart:
			if _, seen := rolloutRecs[r.Pass]; !seen {
				rolloutOrder = append(rolloutOrder, r.Pass)
			}
			rolloutRecs[r.Pass] = append(rolloutRecs[r.Pass], r)
		case OpRolloutWave, OpRolloutRollback:
			rolloutRecs[r.Pass] = append(rolloutRecs[r.Pass], r)
		case OpRolloutDone:
			rolloutDone[r.Pass] = true
		case OpBegin:
			passes[r.Pass] = &passState{
				pass:    r.Pass,
				target:  r.Target,
				reason:  r.Reason,
				planned: r.Planned,
				intents: make(map[naming.LOID]JournalRecord),
				applied: make(map[naming.LOID]bool),
				skipped: make(map[naming.LOID]bool),
			}
			order = append(order, r.Pass)
		case OpIntent:
			if p := passes[r.Pass]; p != nil {
				p.intents[r.LOID] = r
			}
		case OpApplied:
			if p := passes[r.Pass]; p != nil {
				p.applied[r.LOID] = true
			}
		case OpSkipped:
			if p := passes[r.Pass]; p != nil {
				p.skipped[r.LOID] = true
			}
		case OpDone:
			if p := passes[r.Pass]; p != nil {
				p.done = true
			}
		}
	}

	// Restore the current-version designation, provided the loaded store
	// still considers it instantiable (a store image older than the journal
	// may not).
	if !lastCurrent.IsZero() && m.store.IsInstantiable(lastCurrent) {
		m.mu.Lock()
		m.current = lastCurrent.Clone()
		m.mu.Unlock()
		report.Current = lastCurrent.Clone()
	}

	var errs []error
	for _, loid := range policyOrder {
		if err := m.restorePolicy(loid, lastPolicy[loid]); err != nil {
			errs = append(errs, err)
			delete(lastPolicy, loid) // do not carry a corrupt document forward
			continue
		}
		report.Policies++
	}
	for _, id := range order {
		p := passes[id]
		if p.done {
			continue
		}
		report.Passes++
		if m.store.IsInstantiable(p.target) {
			m.resumePass(ctx, sp, j, p, &report, &errs)
		} else {
			m.rollbackPass(ctx, sp, j, p, &report, &errs)
		}
		if err := j.Done(p.pass); err != nil {
			errs = append(errs, err)
		}
	}

	// Every pass is now closed; shrink the journal to just the designation
	// a future restart needs — plus any open rollout's records, which the
	// supervisor (not this recovery) will close.
	var keep []JournalRecord
	if !report.Current.IsZero() {
		keep = append(keep, JournalRecord{Op: OpCurrent, Target: report.Current})
	}
	if lastEpoch > 0 {
		keep = append(keep, JournalRecord{Op: OpMgrEpoch, Pass: lastEpoch})
	}
	for _, loid := range policyOrder {
		if doc, ok := lastPolicy[loid]; ok {
			keep = append(keep, JournalRecord{Op: OpPolicySet, LOID: loid, Reason: doc})
		}
	}
	for _, id := range rolloutOrder {
		if !rolloutDone[id] {
			keep = append(keep, rolloutRecs[id]...)
		}
	}
	if err := j.Compact(keep); err != nil {
		errs = append(errs, err)
	}
	sortLOIDs(report.Resumed)
	sortLOIDs(report.Verified)
	sortLOIDs(report.RolledBack)
	sortLOIDs(report.Quarantined)
	return report, errors.Join(errs...)
}

// resumePass drives an interrupted pass forward: every planned instance
// still managed is probed and, if not already on the target, evolved to it.
func (m *Manager) resumePass(ctx context.Context, sp *obs.Span, j *Journal, p *passState, report *RecoveryReport, errs *[]error) {
	for _, loid := range p.planned {
		inst := m.instanceOf(loid)
		if inst == nil {
			continue // dropped or never re-registered; nothing to converge
		}
		actual, err := inst.Version(ctx)
		if err != nil {
			m.quarantineUnreachable(j, p.pass, loid, err, report, errs)
			continue
		}
		m.syncRecord(loid, actual)
		if actual.Equal(p.target) {
			// Already there — either the applied record was lost with the
			// crash or the apply landed before it. Record it now.
			if err := j.Applied(p.pass, loid, p.target); err != nil {
				*errs = append(*errs, err)
			}
			m.UnquarantineInstance(loid) // probe succeeded: it is alive
			report.Verified = append(report.Verified, loid)
			continue
		}
		switch err := m.resumeOne(ctx, sp, j, p, loid); {
		case err == nil:
			m.UnquarantineInstance(loid)
			report.Resumed = append(report.Resumed, loid)
		case isConnectivityError(err):
			m.quarantineUnreachable(j, p.pass, loid, err, report, errs)
		default:
			*errs = append(*errs, fmt.Errorf("resume %s: %w", loid, err))
		}
	}
}

// resumeOne pushes one instance to an interrupted pass's target. A normal
// pass goes through evolveOne, which re-runs the style check; a rollback
// pass (begin reason passReasonRollback) applies the target descriptor
// directly — the forward-only style vetoed the transition when the rollback
// was decided live, so it must not be consulted again on resume.
func (m *Manager) resumeOne(ctx context.Context, sp *obs.Span, j *Journal, p *passState, loid naming.LOID) error {
	if p.reason != passReasonRollback {
		return m.evolveOne(ctx, p.pass, loid, p.target)
	}
	inst := m.instanceOf(loid)
	if inst == nil {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, loid)
	}
	desc, err := m.store.InstantiableDescriptor(p.target)
	if err != nil {
		return err
	}
	rec, err := m.RecordOf(loid)
	if err != nil {
		return err
	}
	if err := j.Intent(p.pass, loid, rec.Version, p.target); err != nil {
		return err
	}
	if _, err := applyInstance(ctx, sp, inst, desc, p.target); err != nil {
		return err
	}
	m.syncRecord(loid, p.target)
	if err := j.Applied(p.pass, loid, p.target); err != nil {
		return err
	}
	m.event("rolled-back", loid, p.target, "resumed rollback pass")
	return nil
}

// rollbackPass undoes an interrupted pass whose target the loaded store no
// longer offers: any instance observed on the orphaned target is forced
// back to its journalled pre-pass version. The style is deliberately not
// consulted — the orphaned version does not exist as far as the store is
// concerned, so the only consistent state is the pre-pass one.
func (m *Manager) rollbackPass(ctx context.Context, sp *obs.Span, j *Journal, p *passState, report *RecoveryReport, errs *[]error) {
	loids := make([]naming.LOID, 0, len(p.intents))
	for loid := range p.intents {
		loids = append(loids, loid)
	}
	sortLOIDs(loids)
	for _, loid := range loids {
		intent := p.intents[loid]
		inst := m.instanceOf(loid)
		if inst == nil {
			continue
		}
		actual, err := inst.Version(ctx)
		if err != nil {
			m.quarantineUnreachable(j, p.pass, loid, err, report, errs)
			continue
		}
		m.syncRecord(loid, actual)
		if !actual.Equal(p.target) {
			report.Verified = append(report.Verified, loid)
			continue
		}
		desc, err := m.store.InstantiableDescriptor(intent.From)
		if err != nil {
			*errs = append(*errs, fmt.Errorf("rollback %s to %s: %w", loid, intent.From, err))
			continue
		}
		if _, err := applyInstance(ctx, sp, inst, desc, intent.From); err != nil {
			if isConnectivityError(err) {
				m.quarantineUnreachable(j, p.pass, loid, err, report, errs)
			} else {
				*errs = append(*errs, fmt.Errorf("rollback %s to %s: %w", loid, intent.From, err))
			}
			continue
		}
		m.syncRecord(loid, intent.From)
		m.event("rolled-back", loid, intent.From, "orphaned target "+p.target.String())
		report.RolledBack = append(report.RolledBack, loid)
	}
}

// quarantineUnreachable handles a probe/evolve connectivity failure during
// recovery: quarantine the instance, journal the skip, report it.
func (m *Manager) quarantineUnreachable(j *Journal, pass uint64, loid naming.LOID, cause error, report *RecoveryReport, errs *[]error) {
	reason := fmt.Sprintf("unreachable during recovery of pass %d: %v", pass, cause)
	m.quarantine(loid, reason)
	if err := j.Skipped(pass, loid, reason); err != nil {
		*errs = append(*errs, err)
	}
	report.Quarantined = append(report.Quarantined, loid)
}

// syncRecord pins the DCDO table to an instance's observed version.
func (m *Manager) syncRecord(loid naming.LOID, v version.ID) {
	m.mu.Lock()
	if rec, ok := m.records[loid]; ok {
		rec.Version = v.Clone()
	}
	m.mu.Unlock()
}

func sortLOIDs(loids []naming.LOID) {
	sort.Slice(loids, func(i, j int) bool { return loids[i].String() < loids[j].String() })
}
