package manager

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"godcdo/internal/evolution"
	"godcdo/internal/naming"
	"godcdo/internal/policy"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "evolution.journal")
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	defer j.Close()

	a := naming.LOID{Domain: 1, Class: 2, Instance: 3}
	b := naming.LOID{Domain: 1, Class: 2, Instance: 4}
	target := v(1, 1)

	if err := j.Current(v(1)); err != nil {
		t.Fatalf("Current: %v", err)
	}
	pass, err := j.BeginPass(target, []naming.LOID{a, b})
	if err != nil {
		t.Fatalf("BeginPass: %v", err)
	}
	if pass != 1 {
		t.Fatalf("first pass = %d, want 1", pass)
	}
	if err := j.Intent(pass, a, v(1), target); err != nil {
		t.Fatalf("Intent: %v", err)
	}
	if err := j.Applied(pass, a, target); err != nil {
		t.Fatalf("Applied: %v", err)
	}
	if err := j.Skipped(pass, b, "quarantined"); err != nil {
		t.Fatalf("Skipped: %v", err)
	}
	if err := j.Done(pass); err != nil {
		t.Fatalf("Done: %v", err)
	}

	recs, err := j.Records()
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	wantOps := []JournalOp{OpCurrent, OpBegin, OpIntent, OpApplied, OpSkipped, OpDone}
	if len(recs) != len(wantOps) {
		t.Fatalf("got %d records, want %d", len(recs), len(wantOps))
	}
	for i, op := range wantOps {
		if recs[i].Op != op {
			t.Fatalf("record %d op = %s, want %s", i, recs[i].Op, op)
		}
	}
	if !recs[0].Target.Equal(v(1)) {
		t.Fatalf("current target = %s, want %s", recs[0].Target, v(1))
	}
	begin := recs[1]
	if !begin.Target.Equal(target) || len(begin.Planned) != 2 || begin.Planned[0] != a || begin.Planned[1] != b {
		t.Fatalf("begin record = %+v", begin)
	}
	intent := recs[2]
	if intent.LOID != a || !intent.From.Equal(v(1)) || !intent.To.Equal(target) || intent.Pass != pass {
		t.Fatalf("intent record = %+v", intent)
	}
	if recs[4].Reason != "quarantined" {
		t.Fatalf("skip reason = %q", recs[4].Reason)
	}
}

func TestJournalPassSequenceSurvivesReopen(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	p1, _ := j.BeginPass(v(1), nil)
	p2, _ := j.BeginPass(v(1, 1), nil)
	if p1 != 1 || p2 != 2 {
		t.Fatalf("passes = %d, %d", p1, p2)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	p3, _ := j2.BeginPass(v(1, 1), nil)
	if p3 != 3 {
		t.Fatalf("pass after reopen = %d, want 3", p3)
	}
}

// TestJournalOpenSweepsOrphanedTemps simulates a compaction crash: the temp
// image was written and fsynced but the rename never happened, leaving a
// ".durable-*" file beside the journal. Reopening must remove the orphan
// (never adopt it) and read the original journal intact.
func TestJournalOpenSweepsOrphanedTemps(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if err := j.Current(v(1)); err != nil {
		t.Fatalf("Current: %v", err)
	}
	pass, _ := j.BeginPass(v(1, 1), nil)
	if err := j.Done(pass); err != nil {
		t.Fatalf("Done: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The crashed compaction's would-be image: a valid journal holding only
	// a different designation, abandoned pre-rename. If open adopted it, the
	// pass history (and the real designation) would silently vanish.
	dir := filepath.Dir(path)
	orphan := frameRecord(JournalRecord{Op: OpCurrent, Target: v(9)}.encode())
	for i := 0; i < 2; i++ {
		tmp, err := os.CreateTemp(dir, ".durable-*")
		if err != nil {
			t.Fatalf("create orphan: %v", err)
		}
		if _, err := tmp.Write(orphan); err != nil {
			t.Fatalf("write orphan: %v", err)
		}
		if err := tmp.Close(); err != nil {
			t.Fatalf("close orphan: %v", err)
		}
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	recs, err := j2.Records()
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	if len(recs) != 3 || recs[0].Op != OpCurrent || !recs[0].Target.Equal(v(1)) {
		t.Fatalf("journal after sweep = %+v, want the original 3 records", recs)
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, ".durable-*"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("orphaned temp files survived open: %v", leftovers)
	}
	// The sweep must not disturb a working journal: the next compaction's
	// own temp-and-rename still succeeds.
	if err := j2.Compact(recs[:1]); err != nil {
		t.Fatalf("Compact after sweep: %v", err)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	pass, _ := j.BeginPass(v(1, 1), nil)
	loid := naming.LOID{Domain: 1, Class: 2, Instance: 3}
	if err := j.Intent(pass, loid, v(1), v(1, 1)); err != nil {
		t.Fatalf("Intent: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a crash mid-append: chop bytes off the final record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("ReadJournal after truncation: %v", err)
	}
	if len(recs) != 1 || recs[0].Op != OpBegin {
		t.Fatalf("after torn tail got %+v, want just the begin record", recs)
	}

	// A flipped bit in the tail record's payload must also stop the read at
	// the checksum, without affecting earlier records.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("restore: %v", err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	recs, err = ReadJournal(path)
	if err != nil {
		t.Fatalf("ReadJournal after corruption: %v", err)
	}
	if len(recs) != 1 || recs[0].Op != OpBegin {
		t.Fatalf("after bit flip got %+v, want just the begin record", recs)
	}
}

// TestJournalReplicationOps round-trips the replication-era records
// (replica promotions inside a pass, manager-epoch bumps) through a close
// and re-read, exactly like the evolution ops they ride beside.
func TestJournalReplicationOps(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	loid := naming.LOID{Domain: 1, Class: 2, Instance: 3}
	pass, err := j.BeginPass(v(2), []naming.LOID{loid})
	if err != nil {
		t.Fatalf("BeginPass: %v", err)
	}
	if err := j.ReplicaPromote(pass, loid, "inproc://replica-b"); err != nil {
		t.Fatalf("ReplicaPromote: %v", err)
	}
	if err := j.MgrEpoch(7); err != nil {
		t.Fatalf("MgrEpoch: %v", err)
	}
	if err := j.Done(pass); err != nil {
		t.Fatalf("Done: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	wantOps := []JournalOp{OpBegin, OpReplicaPromote, OpMgrEpoch, OpDone}
	if len(recs) != len(wantOps) {
		t.Fatalf("got %d records, want %d", len(recs), len(wantOps))
	}
	for i, op := range wantOps {
		if recs[i].Op != op {
			t.Fatalf("record %d op = %s, want %s", i, recs[i].Op, op)
		}
	}
	promote := recs[1]
	if promote.Pass != pass || promote.LOID != loid || promote.Reason != "inproc://replica-b" {
		t.Fatalf("promote record = %+v", promote)
	}
	if recs[2].Pass != 7 {
		t.Fatalf("epoch record pass = %d, want 7", recs[2].Pass)
	}
}

// TestJournalTornTailOnReplicatedRecord is the torn-tail test with the tail
// being a streamed/replicated record: a manager that crashes while fsyncing
// an epoch bump (or a standby that crashes mid-shipped-append) must reopen
// to the intact prefix, not reject the journal.
func TestJournalTornTailOnReplicatedRecord(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	loid := naming.LOID{Domain: 1, Class: 2, Instance: 3}
	pass, _ := j.BeginPass(v(1, 1), []naming.LOID{loid})
	if err := j.ReplicaPromote(pass, loid, "inproc://replica-b"); err != nil {
		t.Fatalf("ReplicaPromote: %v", err)
	}
	if err := j.MgrEpoch(3); err != nil {
		t.Fatalf("MgrEpoch: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("ReadJournal after truncation: %v", err)
	}
	if len(recs) != 2 || recs[0].Op != OpBegin || recs[1].Op != OpReplicaPromote {
		t.Fatalf("after torn epoch tail got %+v, want begin+promote", recs)
	}

	// Corrupt the tail payload instead: the checksum must stop the read at
	// the same place.
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	recs, err = ReadJournal(path)
	if err != nil {
		t.Fatalf("ReadJournal after corruption: %v", err)
	}
	if len(recs) != 2 || recs[1].Op != OpReplicaPromote {
		t.Fatalf("after bit flip got %+v, want begin+promote", recs)
	}
}

// TestJournalSink checks the shipping hook: every successfully fsynced
// append reaches the sink in order, and a sink failure fails the Append that
// triggered it (a fenced ex-primary must not keep journalling locally as if
// it still led the fleet).
func TestJournalSink(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	defer j.Close()

	var shipped []JournalOp
	var fail error
	j.SetSink(func(r JournalRecord) error {
		if fail != nil {
			return fail
		}
		shipped = append(shipped, r.Op)
		return nil
	})

	pass, err := j.BeginPass(v(1, 1), nil)
	if err != nil {
		t.Fatalf("BeginPass: %v", err)
	}
	if err := j.MgrEpoch(2); err != nil {
		t.Fatalf("MgrEpoch: %v", err)
	}
	want := []JournalOp{OpBegin, OpMgrEpoch}
	if len(shipped) != len(want) || shipped[0] != want[0] || shipped[1] != want[1] {
		t.Fatalf("shipped = %v, want %v", shipped, want)
	}

	fail = errors.New("standby fenced us")
	if err := j.Done(pass); err == nil {
		t.Fatal("Done with failing sink: want error, got nil")
	}
	// The record still landed locally (fsync precedes shipping): a re-read
	// sees it even though the Append reported the shipping failure.
	recs, err := j.Records()
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	if recs[len(recs)-1].Op != OpDone {
		t.Fatalf("tail op = %s, want %s", recs[len(recs)-1].Op, OpDone)
	}

	j.SetSink(nil)
	if err := j.Current(v(1, 1)); err != nil {
		t.Fatalf("Current after clearing sink: %v", err)
	}
}

func TestJournalCompact(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	defer j.Close()
	pass, _ := j.BeginPass(v(1, 1), nil)
	_ = j.Done(pass)
	_ = j.Current(v(1, 1))

	if err := j.Compact([]JournalRecord{{Op: OpCurrent, Target: v(1, 1)}}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	recs, err := j.Records()
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	if len(recs) != 1 || recs[0].Op != OpCurrent || !recs[0].Target.Equal(v(1, 1)) {
		t.Fatalf("after compact got %+v", recs)
	}

	// The journal stays appendable after compaction.
	if _, err := j.BeginPass(v(1, 1), nil); err != nil {
		t.Fatalf("BeginPass after compact: %v", err)
	}
	recs, _ = j.Records()
	if len(recs) != 2 {
		t.Fatalf("after post-compact append got %d records", len(recs))
	}
}

func TestJournalMissingFile(t *testing.T) {
	recs, err := ReadJournal(filepath.Join(t.TempDir(), "nope.journal"))
	if err != nil || recs != nil {
		t.Fatalf("missing file: recs=%v err=%v", recs, err)
	}
}

func TestJournalNilIsNoOp(t *testing.T) {
	var j *Journal
	if pass, err := j.BeginPass(v(1), nil); pass != 0 || err != nil {
		t.Fatalf("nil BeginPass: pass=%d err=%v", pass, err)
	}
	if err := errors.Join(
		j.Intent(0, naming.LOID{}, nil, nil),
		j.Applied(0, naming.LOID{}, nil),
		j.Skipped(0, naming.LOID{}, ""),
		j.Done(0),
		j.Current(v(1)),
		j.Compact(nil),
		j.Close(),
	); err != nil {
		t.Fatalf("nil journal op: %v", err)
	}
	if recs, err := j.Records(); recs != nil || err != nil {
		t.Fatalf("nil Records: %v %v", recs, err)
	}
}

func TestJournalPolicyOps(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	loid := naming.LOID{Domain: 2, Class: 3, Instance: 4}
	doc := `{"degree":3,"read_preference":"backup-ok"}`
	if err := j.PolicySet(loid, doc); err != nil {
		t.Fatalf("PolicySet: %v", err)
	}
	if err := j.Reconcile(loid, "add inproc:n1"); err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	wantOps := []JournalOp{OpPolicySet, OpReconcile}
	if len(recs) != len(wantOps) {
		t.Fatalf("got %d records, want %d", len(recs), len(wantOps))
	}
	for i, op := range wantOps {
		if recs[i].Op != op {
			t.Fatalf("record %d op = %s, want %s", i, recs[i].Op, op)
		}
	}
	if recs[0].LOID != loid || recs[0].Reason != doc {
		t.Fatalf("policy-set record = %+v", recs[0])
	}
	if recs[1].LOID != loid || recs[1].Reason != "add inproc:n1" {
		t.Fatalf("reconcile record = %+v", recs[1])
	}
	if got := OpPolicySet.String(); got != "policy-set" {
		t.Fatalf("OpPolicySet.String() = %q", got)
	}
	if got := OpReconcile.String(); got != "reconcile" {
		t.Fatalf("OpReconcile.String() = %q", got)
	}
}

// A torn tail on a policy designation must not take the intact prefix with
// it: the standby recovering from a shipped journal keeps every fully
// fsynced designation and loses only the interrupted append.
func TestJournalTornTailOnPolicyRecord(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	loid := naming.LOID{Domain: 2, Class: 3, Instance: 4}
	if err := j.PolicySet(loid, `{"degree":2}`); err != nil {
		t.Fatalf("PolicySet #1: %v", err)
	}
	if err := j.PolicySet(loid, `{"degree":3}`); err != nil {
		t.Fatalf("PolicySet #2: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("ReadJournal after truncation: %v", err)
	}
	if len(recs) != 1 || recs[0].Op != OpPolicySet || recs[0].Reason != `{"degree":2}` {
		t.Fatalf("after torn policy tail got %+v, want the first designation only", recs)
	}
}

// Compaction (run by Recover) must carry the latest policy designation per
// LOID forward and drop superseded ones plus transient reconcile audit
// records — a compacted journal still tells a future restart what every
// object's distribution should be.
func TestJournalCompactKeepsLatestPolicy(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	loidA := naming.LOID{Domain: 2, Class: 3, Instance: 1}
	loidB := naming.LOID{Domain: 2, Class: 3, Instance: 2}
	docA1 := policy.DistributionPolicy{Degree: 1}.Normalize().String()
	docA2 := func() string {
		p := policy.Default()
		p.Degree = 3
		p.ReadPreference = policy.ReadBackupOK
		p.Consistency = policy.ConsistencyEventual
		return p.Normalize().String()
	}()
	docB := policy.Default().String()
	_ = j.PolicySet(loidA, docA1)
	_ = j.PolicySet(loidB, docB)
	_ = j.Reconcile(loidA, "add inproc:n1")
	_ = j.PolicySet(loidA, docA2) // supersedes docA1
	_ = j.Reconcile(loidA, "demote inproc:n1")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	m := New(evolution.MultiGeneral, evolution.Explicit)
	m.SetJournal(j2)
	report, err := m.Recover(context.Background())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if report.Policies != 2 {
		t.Fatalf("recovery restored %d policies, want 2", report.Policies)
	}
	if p, ok := m.PolicyOf(loidA); !ok || p.Degree != 3 {
		t.Fatalf("loidA recovered policy = %+v ok=%v, want the superseding degree-3 doc", p, ok)
	}

	recs, err := j2.Records()
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	var polA, polB, reconciles int
	for _, r := range recs {
		switch r.Op {
		case OpPolicySet:
			switch r.LOID {
			case loidA:
				polA++
				if r.Reason != docA2 {
					t.Fatalf("compaction kept %q for loidA, want the latest %q", r.Reason, docA2)
				}
			case loidB:
				polB++
			}
		case OpReconcile:
			reconciles++
		}
	}
	if polA != 1 || polB != 1 || reconciles != 0 {
		t.Fatalf("compacted journal: %d/%d policy-set, %d reconcile records: %+v", polA, polB, reconciles, recs)
	}

	// A second recovery from the compacted journal still sees both.
	m2 := New(evolution.MultiGeneral, evolution.Explicit)
	m2.SetJournal(j2)
	report2, err := m2.Recover(context.Background())
	if err != nil || report2.Policies != 2 {
		t.Fatalf("second recovery = %+v err=%v", report2, err)
	}
}
