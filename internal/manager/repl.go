package manager

import (
	"context"
	"fmt"
	"sync"
	"time"

	"godcdo/internal/rpc"
	"godcdo/internal/transport"
	"godcdo/internal/wire"
)

// Manager replication: the primary manager's journal records stream to a
// standby over the mgr.repl service, so the standby holds a byte-equivalent
// WAL and can finish (or roll back) an interrupted fleet pass after taking
// over. Takeover is fenced by a manager epoch: the standby bumps it before
// acting, after which the deposed primary's next shipped record is refused
// with rpc.ErrFenced — failing its in-flight Append and halting its pass.

// Remotely callable manager-replication methods, hosted at rpc.MgrReplLOID.
const (
	// MethodMgrReplAppend appends one shipped journal record: the shipper's
	// epoch followed by the encoded record.
	MethodMgrReplAppend = "mgr.repl.append"
	// MethodMgrReplEpoch reports the service's current manager epoch.
	MethodMgrReplEpoch = "mgr.repl.epoch"
)

// JournalShipper streams journal records to a standby manager's ReplService.
// Install it as the journal's sink: j.SetSink(shipper.Ship).
type JournalShipper struct {
	// Dialer reaches the standby.
	Dialer transport.Dialer
	// Endpoint is the standby node's dialable endpoint.
	Endpoint string
	// Epoch is the shipping manager's epoch (1 for a first-era primary). A
	// standby that has taken over holds a higher epoch and fences us.
	Epoch uint64
	// Timeout bounds each shipment. Zero means 2 s.
	Timeout time.Duration
}

// Ship sends one record to the standby. An rpc.ErrFenced result means the
// standby took over and this manager must stop acting for the fleet.
func (s *JournalShipper) Ship(rec JournalRecord) error {
	payload := rec.encode()
	e := wire.NewEncoder(len(payload) + 8)
	e.PutUvarint(s.Epoch)
	e.PutBytes(payload)
	timeout := s.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	_, err := rpc.DirectCall(context.Background(), s.Dialer, s.Endpoint, rpc.MgrReplLOID, MethodMgrReplAppend, e.Bytes(), timeout)
	if err != nil {
		return fmt.Errorf("ship to standby %s: %w", s.Endpoint, err)
	}
	return nil
}

// Sync ships every record already in j, bringing a standby attached after
// journal activity up to date before live streaming begins.
func (s *JournalShipper) Sync(j *Journal) error {
	recs, err := j.Records()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := s.Ship(rec); err != nil {
			return err
		}
	}
	return nil
}

// ReplService is the standby side of journal shipping: an rpc.Object hosted
// at rpc.MgrReplLOID that appends shipped records to the standby's own
// journal and enforces the manager epoch. It is hosted directly on the
// standby node's dispatcher, never registered with the binding agent (like
// the health service — it is addressed by endpoint).
type ReplService struct {
	mu       sync.Mutex
	epoch    uint64
	journal  *Journal
	received uint64
}

var _ rpc.Object = (*ReplService)(nil)

// NewReplService returns a service accepting shipments at the given epoch
// into journal (the standby's own journal file, which must have no sink —
// shipped records are not re-shipped).
func NewReplService(journal *Journal, epoch uint64) *ReplService {
	if epoch == 0 {
		epoch = 1
	}
	return &ReplService{journal: journal, epoch: epoch}
}

// Epoch returns the service's current manager epoch.
func (s *ReplService) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Received reports how many records have been accepted.
func (s *ReplService) Received() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received
}

// Bump advances the epoch past every era seen so far and returns the new
// epoch. The standby calls it at takeover; from that moment the deposed
// primary's shipments are fenced.
func (s *ReplService) Bump() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	return s.epoch
}

// InvokeMethod implements rpc.Object.
func (s *ReplService) InvokeMethod(method string, args []byte) ([]byte, error) {
	switch method {
	case MethodMgrReplAppend:
		dec := wire.NewDecoder(args)
		epoch, err := dec.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: epoch: %v", rpc.ErrBadRequest, err)
		}
		payload, err := dec.Bytes()
		if err != nil {
			return nil, fmt.Errorf("%w: record: %v", rpc.ErrBadRequest, err)
		}
		rec, err := decodeJournalRecord(payload)
		if err != nil {
			return nil, fmt.Errorf("%w: record: %v", rpc.ErrBadRequest, err)
		}
		s.mu.Lock()
		if epoch < s.epoch {
			own := s.epoch
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: shipment epoch %d < manager epoch %d", rpc.ErrFenced, epoch, own)
		}
		if epoch > s.epoch {
			s.epoch = epoch
		}
		j := s.journal
		s.received++
		s.mu.Unlock()
		if err := j.Append(rec); err != nil {
			return nil, err
		}
		return nil, nil

	case MethodMgrReplEpoch:
		e := wire.NewEncoder(8)
		e.PutUvarint(s.Epoch())
		return e.Bytes(), nil

	default:
		return nil, fmt.Errorf("%w: %q", rpc.ErrNoSuchFunction, method)
	}
}

// Standby couples a cold manager (instances adopted, journal receiving
// shipped records through a ReplService) with the takeover procedure.
type Standby struct {
	// Mgr is the standby manager. Its journal must be the one the Service
	// appends shipped records to.
	Mgr *Manager
	// Service receives the primary's journal stream and owns the epoch.
	Service *ReplService
}

// Takeover makes the standby the acting manager: it bumps the manager epoch
// (fencing the deposed primary's future shipments), durably journals the
// bump, and runs recovery over the shipped journal — resuming or rolling
// back whatever fleet pass the dead primary left open. Idempotent in the
// same sense Recover is: a second takeover finds nothing open.
func (s *Standby) Takeover(ctx context.Context) (RecoveryReport, uint64, error) {
	epoch := s.Service.Bump()
	if err := s.Mgr.Journal().MgrEpoch(epoch); err != nil {
		return RecoveryReport{}, epoch, fmt.Errorf("takeover: journal epoch bump: %w", err)
	}
	rep, err := s.Mgr.Recover(ctx)
	if err != nil {
		return rep, epoch, fmt.Errorf("takeover: recover: %w", err)
	}
	return rep, epoch, nil
}

// Monitor probes the primary manager's node with health until it misses
// `threshold` consecutive probes, then performs Takeover. It blocks until
// takeover completes or ctx ends. interval is the probe cadence. Misses
// count only after the primary has answered at least once: a standby
// brought up before (or without) its primary waits for first contact
// instead of seizing an epoch the primary then trips over on its first
// shipment — "stand by for" means take over when the primary dies, not
// when it has not started yet.
func (s *Standby) Monitor(ctx context.Context, health *rpc.HealthClient, interval time.Duration, threshold int) (RecoveryReport, uint64, error) {
	if threshold < 1 {
		threshold = 1
	}
	misses := 0
	seen := false
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return RecoveryReport{}, 0, ctx.Err()
		case <-ticker.C:
		}
		if _, err := health.Ping(ctx); err != nil {
			if !seen {
				continue
			}
			misses++
			if misses >= threshold {
				return s.Takeover(ctx)
			}
			continue
		}
		seen = true
		misses = 0
	}
}
