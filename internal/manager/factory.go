package manager

import (
	"context"
	"errors"
	"fmt"

	"godcdo/internal/component"
	"godcdo/internal/core"
	"godcdo/internal/legion"
	"godcdo/internal/naming"
	"godcdo/internal/version"
)

// Factory plays the role of a Legion class object for a DCDO type: it
// allocates LOIDs, instantiates DCDOs on nodes wired to each node's own
// component fetcher, hosts them, and registers them with the type's DCDO
// Manager — the complete creation flow experiment E3 prices.
type Factory struct {
	// Manager is the type's DCDO Manager.
	Manager *Manager
	// Alloc hands out instance LOIDs.
	Alloc *naming.Allocator
	// Config templates each instance's DCDO configuration; LOID, Fetcher,
	// and HostImpl are filled per instance.
	Config core.Config
	// FetcherFor builds the component fetcher an instance on node uses.
	// Nil means "download from ICOs over RPC with a local cache".
	FetcherFor func(node *legion.Node) component.Fetcher
}

// ErrFactoryIncomplete is returned when required fields are missing.
var ErrFactoryIncomplete = errors.New("manager: factory missing manager, allocator, or registry")

// CreateOn creates a new DCDO on node at version v (nil means the manager's
// current version), hosts it, and adds it to the DCDO table. ctx bounds the
// component fetches configuration performs.
func (f *Factory) CreateOn(ctx context.Context, node *legion.Node, v version.ID) (*core.DCDO, error) {
	if f.Manager == nil || f.Alloc == nil || f.Config.Registry == nil {
		return nil, ErrFactoryIncomplete
	}
	fetcherFor := f.FetcherFor
	if fetcherFor == nil {
		fetcherFor = func(node *legion.Node) component.Fetcher {
			return &component.CachingFetcher{
				Store:   component.NewStore(),
				Backing: &component.RemoteFetcher{Client: node.Client()},
			}
		}
	}

	cfg := f.Config
	cfg.LOID = f.Alloc.Next()
	cfg.Fetcher = fetcherFor(node)
	cfg.HostImpl = node.HostImpl()
	obj := core.New(cfg)

	// Configure first (the expensive part E3 measures), then activate, so
	// clients never reach a half-built object.
	if err := f.Manager.CreateInstance(ctx, LocalInstance{Obj: obj}, v, node.HostImpl()); err != nil {
		return nil, fmt.Errorf("factory: %w", err)
	}
	if _, err := node.HostObject(cfg.LOID, obj); err != nil {
		f.Manager.Drop(cfg.LOID)
		return nil, fmt.Errorf("factory: %w", err)
	}
	return obj, nil
}
