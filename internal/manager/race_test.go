package manager

import (
	"context"

	"errors"
	"sync"
	"testing"

	"godcdo/internal/core"
	"godcdo/internal/dfm"
	"godcdo/internal/evolution"
	"godcdo/internal/naming"
	"godcdo/internal/registry"
	"godcdo/internal/version"
)

// gateInstance is a minimal Instance whose Apply can be made to block,
// letting tests freeze an evolution at the point where the manager's lock
// is not held.
type gateInstance struct {
	loid    naming.LOID
	gate    chan struct{} // Apply waits for this to close when non-nil
	entered chan struct{} // closed when Apply is first entered, when non-nil

	once sync.Once
	mu   sync.Mutex
	ver  version.ID
}

func (g *gateInstance) LOID() naming.LOID { return g.loid }

func (g *gateInstance) Version(context.Context) (version.ID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ver.Clone(), nil
}

func (g *gateInstance) Apply(_ context.Context, _ *dfm.Descriptor, v version.ID) (core.ApplyReport, error) {
	if g.entered != nil {
		g.once.Do(func() { close(g.entered) })
	}
	if g.gate != nil {
		<-g.gate
	}
	g.mu.Lock()
	g.ver = v.Clone()
	g.mu.Unlock()
	return core.ApplyReport{}, nil
}

func (g *gateInstance) Interface(context.Context) ([]string, error) { return nil, nil }

// TestEvolveDropAdoptNoResurrection pins the evolve/drop race fix: an
// evolution in flight when its instance is dropped and the LOID re-adopted
// must not stamp the stale target version onto the new record.
func TestEvolveDropAdoptNoResurrection(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiIncreasing, evolution.Explicit)
	loid := naming.LOID{Domain: 9, Class: 1, Instance: 1}

	old := &gateInstance{loid: loid, ver: v(1), gate: make(chan struct{}), entered: make(chan struct{})}
	if err := m.Adopt(context.Background(), old, registry.NativeImplType); err != nil {
		t.Fatalf("adopt: %v", err)
	}

	done := make(chan error, 1)
	go func() { done <- m.EvolveInstance(context.Background(), loid, v(1, 1)) }()

	// Wait until the evolution is parked inside Apply (outside the lock).
	<-old.entered

	// Drop the instance mid-evolution and re-adopt the LOID at version 1.
	m.Drop(loid)
	fresh := &gateInstance{loid: loid, ver: v(1)}
	if err := m.Adopt(context.Background(), fresh, registry.NativeImplType); err != nil {
		t.Fatalf("re-adopt: %v", err)
	}

	close(old.gate) // let the stale evolution finish
	if err := <-done; err != nil {
		t.Fatalf("evolve: %v", err)
	}

	rec, err := m.RecordOf(loid)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if !rec.Version.Equal(v(1)) {
		t.Fatalf("stale evolution resurrected version %s onto re-adopted record, want %s", rec.Version, v(1))
	}
	actual, _ := fresh.Version(context.Background())
	if !rec.Version.Equal(actual) {
		t.Fatalf("record %s disagrees with instance %s", rec.Version, actual)
	}
}

// TestConcurrentEvolveDropAdopt hammers evolve/drop/adopt from several
// goroutines under -race, then checks the DCDO table agrees with the
// surviving instance.
func TestConcurrentEvolveDropAdopt(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiGeneral, evolution.Explicit)
	loid := naming.LOID{Domain: 9, Class: 1, Instance: 2}
	if err := m.Adopt(context.Background(), &gateInstance{loid: loid, ver: v(1)}, registry.NativeImplType); err != nil {
		t.Fatalf("adopt: %v", err)
	}

	const iters = 200
	var wg sync.WaitGroup
	evolver := func(target version.ID) {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			// ErrUnknownInstance is expected while the dropper has the
			// LOID out of the table.
			if err := m.EvolveInstance(context.Background(), loid, target); err != nil && !errors.Is(err, ErrUnknownInstance) {
				t.Errorf("evolve to %s: %v", target, err)
				return
			}
		}
	}
	wg.Add(3)
	go evolver(v(1))
	go evolver(v(1, 1))
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			m.Drop(loid)
			if err := m.Adopt(context.Background(), &gateInstance{loid: loid, ver: v(1)}, registry.NativeImplType); err != nil {
				t.Errorf("re-adopt: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	rec, err := m.RecordOf(loid)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	inst := m.instanceOf(loid)
	if inst == nil {
		t.Fatal("instance missing after stress")
	}
	actual, err := inst.Version(context.Background())
	if err != nil {
		t.Fatalf("version: %v", err)
	}
	if !rec.Version.Equal(actual) {
		t.Fatalf("table version %s disagrees with instance version %s", rec.Version, actual)
	}
}

// TestCreateInstanceConcurrentDuplicate pins the CreateInstance re-check: a
// LOID claimed while the descriptor was being applied outside the lock must
// yield ErrDuplicateInstance, not a silent overwrite.
func TestCreateInstanceConcurrentDuplicate(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiIncreasing, evolution.Explicit)
	loid := naming.LOID{Domain: 9, Class: 1, Instance: 3}

	slow := &gateInstance{loid: loid, gate: make(chan struct{})}
	done := make(chan error, 1)
	go func() { done <- m.CreateInstance(context.Background(), slow, v(1), registry.NativeImplType) }()

	// While the slow create is parked in Apply, another creator claims the
	// LOID.
	if err := m.Adopt(context.Background(), &gateInstance{loid: loid, ver: v(1)}, registry.NativeImplType); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	close(slow.gate)
	if err := <-done; !errors.Is(err, ErrDuplicateInstance) {
		t.Fatalf("slow create returned %v, want ErrDuplicateInstance", err)
	}
}
