package manager

import (
	"bytes"
	"errors"
	"testing"

	"godcdo/internal/dfm"
	"godcdo/internal/registry"
)

// fuzzStoreImage builds a small but structurally complete store image —
// root plus one configured, instantiable child — for the fuzz corpus.
func fuzzStoreImage(f *testing.F) []byte {
	f.Helper()
	s := NewStore()
	desc := dfm.NewDescriptor()
	desc.Components["c"] = dfm.ComponentRef{CodeRef: "c:1", Impl: registry.NativeImplType, CodeSize: 8, Revision: 1}
	desc.Entries = []dfm.EntryDesc{{Function: "get", Component: "c", Exported: true, Enabled: true}}
	root, err := s.CreateRoot(desc)
	if err != nil {
		f.Fatal(err)
	}
	if err := s.MarkInstantiable(root); err != nil {
		f.Fatal(err)
	}
	if _, err := s.Derive(root); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadStore is the store-image robustness contract: a persisted store
// read back from disk may be truncated, bit-flipped, or arbitrary garbage
// (crashed writes, foreign files), and LoadStore must return
// ErrBadStoreImage for every such input — never panic, never return a
// half-built store alongside an error.
func FuzzLoadStore(f *testing.F) {
	img := fuzzStoreImage(f)
	f.Add(img)
	f.Add([]byte{})
	f.Add(img[:len(img)/2])
	for _, i := range []int{0, 1, 6, len(img) / 2, len(img) - 1} {
		mutated := bytes.Clone(img)
		mutated[i] ^= 0x5a
		f.Add(mutated)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := LoadStore(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadStoreImage) {
				t.Fatalf("LoadStore error not wrapped in ErrBadStoreImage: %v", err)
			}
			if s != nil {
				t.Fatalf("LoadStore returned a store alongside error %v", err)
			}
			return
		}
		// Accepted images must survive a save/load round trip.
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("re-save of accepted image: %v", err)
		}
		if _, err := LoadStore(&buf); err != nil {
			t.Fatalf("re-load of accepted image: %v", err)
		}
	})
}
