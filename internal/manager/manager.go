package manager

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"godcdo/internal/core"
	"godcdo/internal/dfm"
	"godcdo/internal/evolution"
	"godcdo/internal/naming"
	"godcdo/internal/obs"
	"godcdo/internal/policy"
	"godcdo/internal/registry"
	"godcdo/internal/replica"
	"godcdo/internal/version"
)

// Errors returned by the manager.
var (
	// ErrUnknownInstance is returned for LOIDs absent from the DCDO table.
	ErrUnknownInstance = errors.New("manager: unknown instance")
	// ErrDuplicateInstance is returned when adopting a LOID twice.
	ErrDuplicateInstance = errors.New("manager: instance already managed")
	// ErrNoCurrentVersion is returned when an operation requires a
	// designated current version and none is set.
	ErrNoCurrentVersion = errors.New("manager: no current version designated")
)

// Instance is a managed DCDO as the manager sees it: local instances wrap
// *core.DCDO directly; remote instances proxy over RPC. Every operation
// takes a context — for remote instances these are RPC round trips, and the
// manager's deadline must reach the wire.
type Instance interface {
	// LOID names the instance.
	LOID() naming.LOID
	// Version returns the instance's current version.
	Version(ctx context.Context) (version.ID, error)
	// Apply evolves the instance to the target descriptor and version.
	Apply(ctx context.Context, target *dfm.Descriptor, v version.ID) (core.ApplyReport, error)
	// Interface returns the instance's enabled exported function names.
	Interface(ctx context.Context) ([]string, error)
}

// Record is one row of the DCDO table (§2.4): the version identifier and
// implementation type corresponding to each object's current implementation.
type Record struct {
	LOID    naming.LOID
	Version version.ID
	Impl    registry.ImplType
}

// Manager is a DCDO Manager: it maintains the DFM store for one object type
// and the table of the DCDOs under its control, and drives their evolution
// under a configured style and update policy.
type Manager struct {
	store  *Store
	style  evolution.Style
	policy evolution.UpdatePolicy

	mu          sync.Mutex
	instances   map[naming.LOID]Instance
	records     map[naming.LOID]*Record
	current     version.ID
	quarantined map[naming.LOID]string
	journal     *Journal
	groups      map[naming.LOID]*replica.Group
	policies    map[naming.LOID]policy.DistributionPolicy
	policyPub   PolicyPublisher

	// obsState holds the observability handle installed by SetObs, nil when
	// disabled.
	obsState atomic.Pointer[obs.Obs]
}

var _ evolution.ManagerView = (*Manager)(nil)

// New returns a manager over its own empty store.
func New(style evolution.Style, policy evolution.UpdatePolicy) *Manager {
	return &Manager{
		store:       NewStore(),
		style:       style,
		policy:      policy,
		instances:   make(map[naming.LOID]Instance),
		records:     make(map[naming.LOID]*Record),
		quarantined: make(map[naming.LOID]string),
	}
}

// SetJournal installs the evolution journal. Subsequent current-version
// designations and evolution passes are durably recorded before instances
// are touched, making them recoverable after a crash (see Recover). A nil
// journal disables journalling.
func (m *Manager) SetJournal(j *Journal) {
	m.mu.Lock()
	m.journal = j
	m.mu.Unlock()
}

// Journal returns the installed evolution journal (nil when disabled).
func (m *Manager) Journal() *Journal {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.journal
}

// RegisterReplicaGroup tells the manager that loid is served by a replica
// group: evolution of loid switches to the zero-downtime replicated path
// (backups first, promote an evolved backup, then the old primary). A nil
// group deregisters. Unreplicated LOIDs pay nothing for this — the lookup
// is one nil-map read on the evolve path only.
func (m *Manager) RegisterReplicaGroup(loid naming.LOID, g *replica.Group) {
	m.mu.Lock()
	if g == nil {
		delete(m.groups, loid)
	} else {
		if m.groups == nil {
			m.groups = make(map[naming.LOID]*replica.Group)
		}
		m.groups[loid] = g
	}
	m.mu.Unlock()
}

// ReplicaGroup returns the group registered for loid (nil when loid is
// unreplicated).
func (m *Manager) ReplicaGroup(loid naming.LOID) *replica.Group {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.groups[loid]
}

// Store exposes the manager's DFM store for version management.
func (m *Manager) Store() *Store { return m.store }

// Style returns the manager's evolution style.
func (m *Manager) Style() evolution.Style { return m.style }

// Policy returns the manager's update policy.
func (m *Manager) Policy() evolution.UpdatePolicy { return m.policy }

// CurrentVersion implements evolution.ManagerView.
func (m *Manager) CurrentVersion() (version.ID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.current.Clone(), nil
}

// InstantiableDescriptor implements evolution.ManagerView.
func (m *Manager) InstantiableDescriptor(v version.ID) (*dfm.Descriptor, error) {
	return m.store.InstantiableDescriptor(v)
}

// SetCurrentVersion designates v as the official current version. Under the
// proactive update policy, every managed instance is immediately evolved
// (§3.4); errors are collected per instance and returned joined. ctx bounds
// the proactive fleet pass.
func (m *Manager) SetCurrentVersion(ctx context.Context, v version.ID) error {
	if !m.store.IsInstantiable(v) {
		return fmt.Errorf("%w: %s", ErrVersionNotReady, v)
	}
	// Journal the designation before adopting it, so a restarted manager
	// recovers the same current version (the store image does not carry it).
	if err := m.Journal().Current(v); err != nil {
		return err
	}
	m.mu.Lock()
	m.current = v.Clone()
	policy := m.policy
	m.mu.Unlock()
	m.event("set-current-version", naming.LOID{}, v, "policy="+policy.String())

	if policy != evolution.Proactive {
		return nil
	}
	_, err := m.EvolveFleet(ctx, v)
	return err
}

// CreateInstance initialises a fresh instance to the given instantiable
// version (or the current version when v is nil) and adds it to the DCDO
// table.
func (m *Manager) CreateInstance(ctx context.Context, inst Instance, v version.ID, impl registry.ImplType) error {
	if v.IsZero() {
		m.mu.Lock()
		v = m.current.Clone()
		m.mu.Unlock()
		if v.IsZero() {
			return ErrNoCurrentVersion
		}
	}
	desc, err := m.store.InstantiableDescriptor(v)
	if err != nil {
		return err
	}
	loid := inst.LOID()
	m.mu.Lock()
	if _, exists := m.records[loid]; exists {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicateInstance, loid)
	}
	m.mu.Unlock()

	if _, err := inst.Apply(ctx, desc, v); err != nil {
		return fmt.Errorf("create %s at %s: %w", loid, v, err)
	}

	m.mu.Lock()
	// Re-check: a concurrent create/adopt may have claimed the LOID while
	// the descriptor was being applied outside the lock.
	if _, exists := m.records[loid]; exists {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicateInstance, loid)
	}
	m.instances[loid] = inst
	m.records[loid] = &Record{LOID: loid, Version: v.Clone(), Impl: impl}
	m.mu.Unlock()
	m.event("instance-created", loid, v, "impl="+impl.String())
	return nil
}

// Adopt registers an already configured instance without evolving it (used
// when a DCDO migrates in from another manager replica).
func (m *Manager) Adopt(ctx context.Context, inst Instance, impl registry.ImplType) error {
	loid := inst.LOID()
	v, err := inst.Version(ctx)
	if err != nil {
		return fmt.Errorf("adopt %s: %w", loid, err)
	}
	m.mu.Lock()
	if _, exists := m.records[loid]; exists {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicateInstance, loid)
	}
	m.instances[loid] = inst
	m.records[loid] = &Record{LOID: loid, Version: v.Clone(), Impl: impl}
	m.mu.Unlock()
	m.event("adopted", loid, v, "impl="+impl.String())
	return nil
}

// Drop removes an instance from the table (destroyed or migrated away).
func (m *Manager) Drop(loid naming.LOID) {
	m.mu.Lock()
	delete(m.instances, loid)
	delete(m.records, loid)
	delete(m.quarantined, loid)
	m.mu.Unlock()
	m.event("dropped", loid, version.ID{}, "")
}

// EvolveInstance evolves one managed DCDO to version v, enforcing the
// manager's style. This is the updateInstance() entry point the explicit
// update policy relies on. With a journal installed the evolution runs as a
// durable single-instance pass, recoverable if the manager crashes mid-way.
func (m *Manager) EvolveInstance(ctx context.Context, loid naming.LOID, v version.ID) error {
	j := m.Journal()
	pass, err := j.BeginPass(v, []naming.LOID{loid})
	if err != nil {
		return err
	}
	evErr := m.evolveOne(ctx, pass, loid, v)
	// The pass completed — successfully or with a known failure. Only a
	// crash leaves it open for Recover to finish.
	if err := j.Done(pass); err != nil && evErr == nil {
		evErr = err
	}
	return evErr
}

// RollbackInstance forces one managed DCDO back to version v without
// consulting the evolution style. Styles encode *forward* discipline
// (multi-increasing only ever admits descendants), which is exactly wrong
// for an operational retreat: when a canary trips its SLO the supervisor
// must return it to the baseline the style would veto. The move is still a
// journalled single-instance pass — begun with the rollback reason, so a
// crash mid-retreat resumes as a rollback too — and still requires v to be
// instantiable in the store.
func (m *Manager) RollbackInstance(ctx context.Context, loid naming.LOID, v version.ID) error {
	j := m.Journal()
	pass, err := j.BeginRollbackPass(v, []naming.LOID{loid})
	if err != nil {
		return err
	}
	rbErr := m.rollbackOne(ctx, pass, loid, v)
	if err := j.Done(pass); err != nil && rbErr == nil {
		rbErr = err
	}
	return rbErr
}

// rollbackOne is evolveOne minus the style check: descriptor fetched,
// intent journalled, descriptor applied, table row pinned.
func (m *Manager) rollbackOne(ctx context.Context, pass uint64, loid naming.LOID, v version.ID) error {
	m.mu.Lock()
	inst, ok := m.instances[loid]
	rec := m.records[loid]
	var from version.ID
	if rec != nil {
		from = rec.Version.Clone()
	}
	j := m.journal
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, loid)
	}

	var sp *obs.Span
	if tr := m.tracer(); tr != nil {
		sp = tr.StartSpan(obs.StageMgrEvolve, obs.SpanContext{})
		sp.Annotate("object", loid.String())
		sp.Annotate("from", from.String())
		sp.Annotate("to", v.String())
		sp.Annotate("rollback", "true")
	}
	err := func() error {
		desc, err := m.store.InstantiableDescriptor(v)
		if err != nil {
			return err
		}
		if err := j.Intent(pass, loid, from, v); err != nil {
			return err
		}
		if _, err := applyInstance(ctx, sp, inst, desc, v); err != nil {
			return fmt.Errorf("rollback %s to %s: %w", loid, v, err)
		}
		m.mu.Lock()
		if cur, ok := m.records[loid]; ok && cur == rec {
			cur.Version = v.Clone()
		}
		m.mu.Unlock()
		return j.Applied(pass, loid, v)
	}()
	if sp != nil {
		sp.Fail(err)
		sp.Finish()
	}
	if err == nil {
		m.event("rolled-back", loid, v, "from="+from.String())
	}
	return err
}

// evolveOne evolves one instance under an already-open journal pass: intent
// is durably recorded before the instance is touched, success after it is
// verified applied.
func (m *Manager) evolveOne(ctx context.Context, pass uint64, loid naming.LOID, v version.ID) error {
	m.mu.Lock()
	inst, ok := m.instances[loid]
	rec := m.records[loid]
	var from version.ID
	if rec != nil {
		from = rec.Version.Clone()
	}
	current := m.current.Clone()
	j := m.journal
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, loid)
	}

	var sp *obs.Span
	if tr := m.tracer(); tr != nil {
		sp = tr.StartSpan(obs.StageMgrEvolve, obs.SpanContext{})
		sp.Annotate("object", loid.String())
		sp.Annotate("from", from.String())
		sp.Annotate("to", v.String())
	}
	err := m.evolveInstance(ctx, sp, j, pass, inst, rec, loid, from, current, v)
	if sp != nil {
		sp.Fail(err)
		sp.Finish()
	}
	if err == nil {
		m.event("evolved", loid, v, "from="+from.String())
	}
	return err
}

// evolveInstance is the span-carrying body of evolveOne. rec is the table
// row captured under the lock alongside inst; the post-apply version update
// is applied only if that same row is still installed, so an evolution that
// raced with Drop (and possibly a re-Adopt) cannot resurrect a stale
// version onto a new record.
func (m *Manager) evolveInstance(ctx context.Context, sp *obs.Span, j *Journal, pass uint64, inst Instance, rec *Record, loid naming.LOID, from, current version.ID, v version.ID) error {
	// An instance already at the target has nothing to evolve: succeed
	// without consulting the style (whose rules govern *transitions* — the
	// increasing style, for one, deliberately rejects the degenerate
	// self-edge) and without re-applying the descriptor.
	if !from.IsZero() && from.Equal(v) {
		return nil
	}
	input := evolution.TransitionInput{
		From:           from,
		To:             v,
		Current:        current,
		ToInstantiable: m.store.IsInstantiable(v),
	}
	if m.style == evolution.MultiHybrid && !from.IsZero() {
		input.DerivationErr = m.checkHybridDerivation(from, v)
	}
	if err := m.style.CheckTransition(input); err != nil {
		return err
	}

	desc, err := m.store.InstantiableDescriptor(v)
	if err != nil {
		return err
	}
	// Durable intent before the instance is touched: after a crash, Recover
	// knows this instance may be anywhere between from and v.
	if err := j.Intent(pass, loid, from, v); err != nil {
		return err
	}
	if g := m.ReplicaGroup(loid); g != nil {
		if err := m.evolveReplicated(ctx, j, pass, g, loid, desc, v); err != nil {
			return fmt.Errorf("evolve %s to %s: %w", loid, v, err)
		}
	} else if _, err := applyInstance(ctx, sp, inst, desc, v); err != nil {
		return fmt.Errorf("evolve %s to %s: %w", loid, v, err)
	}
	m.mu.Lock()
	if cur, ok := m.records[loid]; ok && cur == rec {
		cur.Version = v.Clone()
	}
	m.mu.Unlock()
	return j.Applied(pass, loid, v)
}

// evolveReplicated evolves a replica group to v with the LOID continuously
// available: every backup is brought to the target first (each still serving
// shipped state, none serving clients), then an evolved backup is promoted
// to primary — the instant of hand-off is the only leadership change and
// both sides of it run the target version or the old one, never neither —
// and finally the deposed primary, now a backup, is evolved. Each member
// already at the target is skipped, which is what makes a crash-interrupted
// pass resumable: the re-run converges on the remaining members instead of
// repeating completed work or flipping leadership twice.
func (m *Manager) evolveReplicated(ctx context.Context, j *Journal, pass uint64, g *replica.Group, loid naming.LOID, desc *dfm.Descriptor, v version.ID) error {
	set := g.Set()
	applyArgs := core.EncodeApplyArgs(desc, v)

	memberAt := func(endpoint string) (bool, error) {
		st, err := g.Status(ctx, endpoint)
		if err != nil {
			return false, err
		}
		at, err := version.Decode(st.VersionSegs)
		if err != nil {
			return false, err
		}
		return at.Equal(v), nil
	}

	// Backups first: invisible to clients, the primary keeps serving.
	for _, ep := range set.Backups {
		done, err := memberAt(ep)
		if err != nil {
			return fmt.Errorf("replica %s: %w", ep, err)
		}
		if done {
			continue
		}
		if _, err := g.Call(ctx, ep, core.MethodApplyDescriptor, applyArgs); err != nil {
			return fmt.Errorf("replica %s: %w", ep, err)
		}
	}

	// If the primary already runs the target (a resumed pass promoted it
	// before the crash), the group is converged.
	done, err := memberAt(set.Primary)
	if err != nil {
		return fmt.Errorf("replica %s: %w", set.Primary, err)
	}
	if done {
		return nil
	}

	if len(set.Backups) > 0 {
		// Promote an evolved backup; the old primary stays in the set as a
		// backup of the new era and is evolved last.
		newPrimary := set.Backups[0]
		if err := j.ReplicaPromote(pass, loid, newPrimary); err != nil {
			return err
		}
		if _, err := g.Promote(ctx, newPrimary, true); err != nil {
			return err
		}
		m.event("replica-promoted", loid, v, "primary="+newPrimary)
	}
	if _, err := g.Call(ctx, set.Primary, core.MethodApplyDescriptor, applyArgs); err != nil {
		return fmt.Errorf("replica %s: %w", set.Primary, err)
	}
	return nil
}

// checkHybridDerivation applies the mandatory/permanent rules between two
// arbitrary versions — the hybrid style's "checks to see if evolving a DCDO
// to a version violates any rules" (§3.5).
func (m *Manager) checkHybridDerivation(from, to version.ID) error {
	fromDesc, err := m.store.Descriptor(from)
	if err != nil {
		return err
	}
	toDesc, err := m.store.Descriptor(to)
	if err != nil {
		return err
	}
	return toDesc.ValidateDerivation(fromDesc)
}

// InstanceLOIDs returns the managed LOIDs in sorted order.
func (m *Manager) InstanceLOIDs() []naming.LOID {
	m.mu.Lock()
	out := make([]naming.LOID, 0, len(m.records))
	for loid := range m.records {
		out = append(out, loid)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return out[i].String() < out[j].String()
	})
	return out
}

// Records returns a copy of the DCDO table.
func (m *Manager) Records() []Record {
	m.mu.Lock()
	out := make([]Record, 0, len(m.records))
	for _, r := range m.records {
		out = append(out, Record{LOID: r.LOID, Version: r.Version.Clone(), Impl: r.Impl})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].LOID.String() < out[j].LOID.String() })
	return out
}

// RecordOf returns the table row for one instance.
func (m *Manager) RecordOf(loid naming.LOID) (Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.records[loid]
	if !ok {
		return Record{}, fmt.Errorf("%w: %s", ErrUnknownInstance, loid)
	}
	return Record{LOID: r.LOID, Version: r.Version.Clone(), Impl: r.Impl}, nil
}

// --- Instance adapters -------------------------------------------------------

// LocalInstance adapts an in-process *core.DCDO to the Instance interface.
type LocalInstance struct {
	Obj *core.DCDO
}

var _ Instance = LocalInstance{}

// LOID implements Instance.
func (l LocalInstance) LOID() naming.LOID { return l.Obj.LOID() }

// Version implements Instance.
func (l LocalInstance) Version(context.Context) (version.ID, error) { return l.Obj.Version(), nil }

// Apply implements Instance.
func (l LocalInstance) Apply(ctx context.Context, target *dfm.Descriptor, v version.ID) (core.ApplyReport, error) {
	return l.Obj.ApplyDescriptor(ctx, target, v)
}

// Interface implements Instance.
func (l LocalInstance) Interface(context.Context) ([]string, error) { return l.Obj.Interface(), nil }
