package manager

import (
	"context"
	"fmt"
	"testing"
	"time"

	"godcdo/internal/core"
	"godcdo/internal/evolution"
	"godcdo/internal/naming"
	"godcdo/internal/objstate"
	"godcdo/internal/policy"
	"godcdo/internal/replica"
	"godcdo/internal/rpc"
	"godcdo/internal/transport"
	"godcdo/internal/vclock"
	"godcdo/internal/wire"
)

// recInner is a minimal replica.Inner for reconciler tests: a state
// container with set/get. The E14 harness drives the full core.DCDO path;
// here only the convergence machinery is under test.
type recInner struct{ st *objstate.State }

func newRecInner() *recInner { return &recInner{st: objstate.New()} }

func (f *recInner) State() *objstate.State { return f.st }

func (f *recInner) InvokeMethodCtx(_ context.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case core.MethodVersion:
		e := wire.NewEncoder(16)
		e.PutUintSlice([]uint64{1})
		return e.Bytes(), nil
	case "set":
		dec := wire.NewDecoder(args)
		k, _ := dec.String()
		v, _ := dec.Bytes()
		f.st.Set(k, v)
		return nil, nil
	case "get":
		k, _ := wire.NewDecoder(args).String()
		v, _ := f.st.Get(k)
		e := wire.NewEncoder(len(v) + 4)
		e.PutBytes(v)
		return e.Bytes(), nil
	default:
		return nil, fmt.Errorf("%w: %q", rpc.ErrNoSuchFunction, method)
	}
}

// reconEnv hosts one policy-managed replica group (members) plus spare
// nodes carrying only a replica-host service (candidates).
type reconEnv struct {
	net     *transport.InprocNetwork
	agent   *naming.Agent
	mgr     *Manager
	loid    naming.LOID
	group   *replica.Group
	servers map[string]*transport.InprocServer
	hosts   map[string]*replica.HostService
}

// ep turns a node name into its inproc endpoint.
func ep(name string) string { return "inproc:" + name }

func newReconEnv(t *testing.T, members, candidates []string) *reconEnv {
	t.Helper()
	env := &reconEnv{
		net:     transport.NewInprocNetwork(),
		agent:   naming.NewAgent(vclock.Real{}),
		mgr:     New(evolution.MultiGeneral, evolution.Explicit),
		loid:    naming.LOID{Domain: 4, Class: 1, Instance: 1},
		servers: map[string]*transport.InprocServer{},
		hosts:   map[string]*replica.HostService{},
	}
	endpoints := make([]string, len(members))
	for i, name := range members {
		endpoints[i] = ep(name)
	}
	for i, name := range members {
		role := replica.RoleBackup
		var backups []string
		if i == 0 {
			role = replica.RolePrimary
			backups = endpoints[1:]
		}
		rep := replica.New(env.loid, newRecInner(), env.net.Dialer(), role, 1, backups)
		rep.ShipTimeout = 200 * time.Millisecond
		disp := rpc.NewDispatcher()
		disp.Host(env.loid, rep)
		srv, err := env.net.Listen(name, disp)
		if err != nil {
			t.Fatal(err)
		}
		env.servers[name] = srv
	}
	for _, name := range candidates {
		disp := rpc.NewDispatcher()
		hs := &replica.HostService{
			Factory: func(naming.LOID) (replica.Inner, error) { return newRecInner(), nil },
			Dialer:  env.net.Dialer(),
			Host:    disp.Host,
		}
		disp.Host(rpc.ReplicaHostLOID, hs)
		srv, err := env.net.Listen(name, disp)
		if err != nil {
			t.Fatal(err)
		}
		env.servers[name] = srv
		env.hosts[name] = hs
	}
	env.agent.RegisterSet(env.loid, naming.ReplicaSet{Primary: endpoints[0], Backups: endpoints[1:]})
	env.group = replica.Attach(env.loid, env.net.Dialer(), env.agent, env.agent.Set(env.loid), 1)
	env.mgr.RegisterReplicaGroup(env.loid, env.group)
	env.mgr.SetPolicyPublisher(env.agent)
	return env
}

func (e *reconEnv) kill(t *testing.T, name string) {
	t.Helper()
	if err := e.servers[name].Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReconcileHealsDegreeAfterBackupLoss(t *testing.T) {
	env := newReconEnv(t, []string{"p", "b1", "b2"}, []string{"n1", "n2"})
	j, err := OpenJournal(journalPath(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	env.mgr.SetJournal(j)

	pol := policy.Default()
	pol.Degree = 3
	if err := env.mgr.SetPolicy(env.loid, pol); err != nil {
		t.Fatal(err)
	}

	rec := &Reconciler{Mgr: env.mgr, Candidates: []string{ep("n1"), ep("n2")}}
	ctx := context.Background()

	// A converged group needs nothing.
	report, err := rec.Sweep(ctx)
	if err != nil || report.Converged != 1 || len(report.Actions) != 0 {
		t.Fatalf("converged sweep = %+v err=%v", report, err)
	}

	// Kill a backup: the next sweep drops it and heals onto a candidate.
	env.kill(t, "b2")
	report, err = rec.Sweep(ctx)
	if err != nil {
		t.Fatalf("healing sweep: %v", err)
	}
	if report.Converged != 1 {
		t.Fatalf("healing sweep did not converge: %+v", report)
	}
	set := env.group.Set()
	if len(set.Endpoints()) != 3 || set.Contains(ep("b2")) {
		t.Fatalf("post-heal set = %+v", set)
	}
	if !set.Contains(ep("n1")) && !set.Contains(ep("n2")) {
		t.Fatalf("no candidate joined: %+v", set)
	}
	st := rec.Stats()
	if st.Drops != 1 || st.Heals != 1 || st.Failovers != 0 {
		t.Fatalf("stats = %+v, want 1 drop + 1 heal", st)
	}
	if published := env.agent.Set(env.loid); published.Contains(ep("b2")) || len(published.Endpoints()) != 3 {
		t.Fatalf("published set = %+v", published)
	}

	// Each convergence step was journalled before it was taken.
	recs, err := j.Records()
	if err != nil {
		t.Fatal(err)
	}
	var reconcileOps, policyOps int
	for _, r := range recs {
		switch r.Op {
		case OpReconcile:
			reconcileOps++
		case OpPolicySet:
			policyOps++
		}
	}
	if reconcileOps != 2 || policyOps != 1 {
		t.Fatalf("journal: %d reconcile + %d policy-set records, want 2 + 1", reconcileOps, policyOps)
	}
}

func TestReconcileFailsOverDeadPrimary(t *testing.T) {
	env := newReconEnv(t, []string{"p", "b1", "b2"}, []string{"n1"})
	pol := policy.Default()
	pol.Degree = 3
	if err := env.mgr.SetPolicy(env.loid, pol); err != nil {
		t.Fatal(err)
	}
	rec := &Reconciler{Mgr: env.mgr, Candidates: []string{ep("n1")}}

	env.kill(t, "p")
	report, err := rec.Sweep(context.Background())
	if err != nil {
		t.Fatalf("failover sweep: %v", err)
	}
	if report.Converged != 1 {
		t.Fatalf("failover sweep did not converge: %+v", report)
	}
	set := env.group.Set()
	if set.Primary != ep("b1") || set.Contains(ep("p")) || len(set.Endpoints()) != 3 {
		t.Fatalf("post-failover set = %+v", set)
	}
	st := rec.Stats()
	if st.Failovers != 1 || st.Heals != 1 {
		t.Fatalf("stats = %+v, want 1 failover + 1 heal", st)
	}
}

func TestReconcileDemotesOnDegreeDecrease(t *testing.T) {
	env := newReconEnv(t, []string{"p", "b1", "b2"}, nil)
	pol := policy.Default()
	pol.Degree = 2
	if err := env.mgr.SetPolicy(env.loid, pol); err != nil {
		t.Fatal(err)
	}
	rec := &Reconciler{Mgr: env.mgr}

	report, err := rec.Sweep(context.Background())
	if err != nil {
		t.Fatalf("demoting sweep: %v", err)
	}
	if report.Converged != 1 {
		t.Fatalf("demoting sweep did not converge: %+v", report)
	}
	set := env.group.Set()
	if len(set.Endpoints()) != 2 || set.Contains(ep("b2")) {
		t.Fatalf("post-demote set = %+v (tail backup should go first)", set)
	}
	if st := rec.Stats(); st.Demotions != 1 {
		t.Fatalf("stats = %+v, want 1 demotion", st)
	}
}

func TestReconcileSkipsUnmanagedAndUngrouped(t *testing.T) {
	env := newReconEnv(t, []string{"p", "b1"}, nil)
	// A policy on a LOID with no registered group is skipped, not an error.
	orphan := naming.LOID{Domain: 4, Class: 1, Instance: 99}
	if err := env.mgr.SetPolicy(orphan, policy.Default()); err != nil {
		t.Fatal(err)
	}
	rec := &Reconciler{Mgr: env.mgr}
	report, err := rec.Sweep(context.Background())
	if err != nil || report.Converged != 0 || report.Diverged != 0 {
		t.Fatalf("sweep over ungrouped policy = %+v err=%v", report, err)
	}
}

func TestPickCandidatePlacement(t *testing.T) {
	r := &Reconciler{Candidates: []string{"a", "b", "c"}}
	hosting := map[string]int{"a": 2, "b": 1}
	notMember := func(string) bool { return false }

	pol := policy.Default()
	if got := r.pickCandidate(pol, notMember, hosting); got != "c" {
		t.Fatalf("least-loaded pick = %q, want c", got)
	}
	if got := r.pickCandidate(pol, func(e string) bool { return e == "c" }, hosting); got != "b" {
		t.Fatalf("member-skipping pick = %q, want b", got)
	}

	// Anti-affinity is strict: only endpoints hosting nothing qualify.
	pol.AntiAffinity = true
	if got := r.pickCandidate(pol, notMember, hosting); got != "c" {
		t.Fatalf("anti-affinity pick = %q, want c", got)
	}
	hosting["c"] = 1
	if got := r.pickCandidate(pol, notMember, hosting); got != "" {
		t.Fatalf("anti-affinity pick = %q, want none (all loaded)", got)
	}

	// A policy's own candidate list overrides the global pool.
	pol2 := policy.Default()
	pol2.Candidates = []string{"x"}
	if got := r.pickCandidate(pol2, notMember, hosting); got != "x" {
		t.Fatalf("policy-candidates pick = %q, want x", got)
	}
}

// TestPolicyRecoverResumesConvergence is the standby story: the first
// manager designates a policy and crashes before its reconciler finishes;
// a successor recovering from the same journal restores the document,
// re-publishes it, and its own sweep completes the convergence.
func TestPolicyRecoverResumesConvergence(t *testing.T) {
	env := newReconEnv(t, []string{"p", "b1", "b2"}, []string{"n1"})
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	env.mgr.SetJournal(j)

	pol := policy.Default()
	pol.Degree = 3
	pol.ReadPreference = policy.ReadBackupOK
	pol.Consistency = policy.ConsistencyEventual
	if err := env.mgr.SetPolicy(env.loid, pol); err != nil {
		t.Fatal(err)
	}
	// The predecessor observes the loss and journals its first intent, then
	// dies before acting on it.
	env.kill(t, "b2")
	if err := j.Reconcile(env.loid, "drop dead "+ep("b2")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The successor recovers from the shipped journal.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	m2 := New(evolution.MultiGeneral, evolution.Explicit)
	m2.SetJournal(j2)
	agent2 := naming.NewAgent(vclock.Real{})
	m2.SetPolicyPublisher(agent2)
	report, err := m2.Recover(context.Background())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if report.Policies != 1 {
		t.Fatalf("recovery restored %d policies, want 1", report.Policies)
	}
	got, ok := m2.PolicyOf(env.loid)
	if !ok || !got.Equal(pol.Normalize()) {
		t.Fatalf("recovered policy = %+v ok=%v", got, ok)
	}
	// Restoration re-published to the successor's naming plane.
	if p, ok := agent2.PolicyOf(env.loid); !ok || p.Degree != 3 {
		t.Fatalf("policy not re-published on recovery: %+v ok=%v", p, ok)
	}

	// The successor's reconciler finishes what the predecessor started,
	// level-triggered from the restored document — no resume state needed.
	m2.RegisterReplicaGroup(env.loid, env.group)
	rec := &Reconciler{Mgr: m2, Candidates: []string{ep("n1")}}
	rep, err := rec.Sweep(context.Background())
	if err != nil {
		t.Fatalf("successor sweep: %v", err)
	}
	if rep.Converged != 1 {
		t.Fatalf("successor sweep did not converge: %+v", rep)
	}
	set := env.group.Set()
	if len(set.Endpoints()) != 3 || set.Contains(ep("b2")) || !set.Contains(ep("n1")) {
		t.Fatalf("post-takeover set = %+v", set)
	}
}

func TestSetPolicyValidatesBeforeJournalling(t *testing.T) {
	m := New(evolution.MultiGeneral, evolution.Explicit)
	j, err := OpenJournal(journalPath(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	m.SetJournal(j)
	loid := naming.LOID{Domain: 4, Class: 2, Instance: 1}

	bad := policy.DistributionPolicy{Degree: -1}
	if err := m.SetPolicy(loid, bad); err == nil {
		t.Fatal("invalid policy accepted")
	}
	recs, err := j.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("rejected policy reached the journal: %+v", recs)
	}
	if _, ok := m.PolicyOf(loid); ok {
		t.Fatal("rejected policy was stored")
	}

	good := policy.Default()
	good.Degree = 2
	if err := m.SetPolicy(loid, good); err != nil {
		t.Fatal(err)
	}
	recs, err = j.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Op != OpPolicySet || recs[0].LOID != loid {
		t.Fatalf("journal after SetPolicy = %+v", recs)
	}
	reparsed, err := policy.Parse(recs[0].Reason)
	if err != nil || reparsed.Degree != 2 {
		t.Fatalf("journalled doc = %q (parse err %v)", recs[0].Reason, err)
	}
	if lids := m.PolicyLOIDs(); len(lids) != 1 || lids[0] != loid {
		t.Fatalf("PolicyLOIDs = %v", lids)
	}
}

func TestReconcilerRunStopLifecycle(t *testing.T) {
	env := newReconEnv(t, []string{"p", "b1"}, nil)
	pol := policy.Default()
	pol.Degree = 2
	if err := env.mgr.SetPolicy(env.loid, pol); err != nil {
		t.Fatal(err)
	}
	rec := &Reconciler{Mgr: env.mgr, Interval: time.Millisecond}
	rec.Run()
	defer rec.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for rec.Stats().Sweeps == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background loop never swept")
		}
		time.Sleep(time.Millisecond)
	}
	rec.Stop()
	rec.Stop() // idempotent
	// A stopped reconciler may Run again.
	rec.Run()
	rec.Stop()
}
