package manager

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"godcdo/internal/naming"
	"godcdo/internal/rpc"
	"godcdo/internal/transport"
	"godcdo/internal/version"
)

// Fleet evolution: a manager-driven pass that brings every managed instance
// to a target version. Unlike the per-instance EvolveInstance entry point, a
// fleet pass tolerates partial connectivity — instances that cannot be
// reached are quarantined and skipped rather than failing the whole pass
// (the prober re-converges them when they return, see Prober) — and the
// whole pass is journalled so a crashed manager resumes it on restart.

// FleetReport summarises one fleet evolution pass.
type FleetReport struct {
	// Target is the version the pass drove instances towards.
	Target version.ID
	// Pass is the journal pass identifier (0 with no journal).
	Pass uint64
	// Evolved lists instances successfully brought to Target.
	Evolved []naming.LOID
	// Skipped lists instances quarantined during (or before) the pass.
	Skipped []naming.LOID
	// Failed lists instances whose evolution failed for non-connectivity
	// reasons (style violation, descriptor errors, application failures).
	Failed []naming.LOID
	// Halted reports that the pass was abandoned mid-way (only by
	// EvolveFleetPartial, the crash-simulation hook).
	Halted bool
}

// EvolveFleet evolves every managed, non-quarantined instance to v as one
// journalled pass. Unreachable instances are quarantined and skipped; other
// per-instance failures are collected and returned joined (each wrapped
// with its LOID), without stopping the pass. A ctx that ends mid-pass halts
// the pass between instances — never mid-instance — leaving the journal
// open for Recover to resume, exactly as a crash would.
func (m *Manager) EvolveFleet(ctx context.Context, v version.ID) (FleetReport, error) {
	return m.evolveFleet(ctx, v, -1, nil)
}

// EvolveFleetPartial is EvolveFleet with a crash point: the pass is
// abandoned — journal left open, no done record — after maxApplies
// successful applications. It exists so tests and the chaos harness can
// simulate a manager dying mid-pass; production callers want EvolveFleet.
func (m *Manager) EvolveFleetPartial(ctx context.Context, v version.ID, maxApplies int) (FleetReport, error) {
	return m.evolveFleet(ctx, v, maxApplies, nil)
}

// EvolveFleetSubset evolves only the given instances to v, as one journalled
// pass. This is the rollout supervisor's wave primitive: the journal pass
// plans exactly the subset, so a crash mid-wave makes Recover finish the
// wave — and only the wave — rather than pushing the whole fleet to the
// target behind the SLO guard's back. Quarantined and unknown LOIDs in the
// subset are skipped.
func (m *Manager) EvolveFleetSubset(ctx context.Context, v version.ID, subset []naming.LOID) (FleetReport, error) {
	return m.evolveFleet(ctx, v, -1, subset)
}

// EvolveFleetSubsetPartial is EvolveFleetSubset with EvolveFleetPartial's
// crash point, for chaos tests that kill a supervisor mid-wave.
func (m *Manager) EvolveFleetSubsetPartial(ctx context.Context, v version.ID, subset []naming.LOID, maxApplies int) (FleetReport, error) {
	return m.evolveFleet(ctx, v, maxApplies, subset)
}

func (m *Manager) evolveFleet(ctx context.Context, v version.ID, maxApplies int, only []naming.LOID) (FleetReport, error) {
	m.mu.Lock()
	j := m.journal
	var planned []naming.LOID
	if only != nil {
		planned = make([]naming.LOID, 0, len(only))
		for _, loid := range only {
			_, q := m.quarantined[loid]
			if m.records[loid] != nil && !q {
				planned = append(planned, loid)
			}
		}
	} else {
		planned = make([]naming.LOID, 0, len(m.records))
		for loid := range m.records {
			if _, q := m.quarantined[loid]; !q {
				planned = append(planned, loid)
			}
		}
	}
	m.mu.Unlock()
	sort.Slice(planned, func(i, j int) bool { return planned[i].String() < planned[j].String() })

	report := FleetReport{Target: v.Clone()}
	pass, err := j.BeginPass(v, planned)
	if err != nil {
		return report, err
	}
	report.Pass = pass

	var errs []error
	for _, loid := range planned {
		if err := ctx.Err(); err != nil {
			// Halt like a crash: the journal pass stays open, so Recover
			// resumes the instances this pass never reached.
			report.Halted = true
			errs = append(errs, fmt.Errorf("fleet pass %d halted: %w", pass, err))
			return report, errors.Join(errs...)
		}
		if maxApplies >= 0 && len(report.Evolved) >= maxApplies {
			report.Halted = true
			return report, errors.Join(errs...)
		}
		// Already converged instances need no transition (styles like
		// multi-increasing would even deny the self-transition).
		m.mu.Lock()
		atTarget := m.records[loid] != nil && m.records[loid].Version.Equal(v)
		m.mu.Unlock()
		if atTarget {
			report.Evolved = append(report.Evolved, loid)
			continue
		}
		switch evErr := m.evolveOne(ctx, pass, loid, v); {
		case evErr == nil:
			report.Evolved = append(report.Evolved, loid)
		case isConnectivityError(evErr):
			reason := fmt.Sprintf("unreachable during pass %d: %v", pass, evErr)
			m.quarantine(loid, reason)
			if jerr := j.Skipped(pass, loid, reason); jerr != nil {
				errs = append(errs, fmt.Errorf("%s: %w", loid, jerr))
			}
			report.Skipped = append(report.Skipped, loid)
		default:
			report.Failed = append(report.Failed, loid)
			errs = append(errs, fmt.Errorf("%s: %w", loid, evErr))
		}
	}
	if err := j.Done(pass); err != nil {
		errs = append(errs, err)
	}
	return report, errors.Join(errs...)
}

// isConnectivityError reports whether err indicates the instance could not
// be reached (as opposed to refusing or failing the evolution): transport
// faults, retry exhaustion, ambiguous outcomes, unresolvable or evicted
// bindings. Connectivity failures quarantine an instance; anything else is
// a real evolution failure.
func isConnectivityError(err error) bool {
	var ce *transport.CallError
	if errors.As(err, &ce) {
		return true
	}
	return errors.Is(err, transport.ErrUnreachable) ||
		errors.Is(err, transport.ErrTimeout) ||
		errors.Is(err, transport.ErrReset) ||
		errors.Is(err, rpc.ErrBudgetExhausted) ||
		errors.Is(err, rpc.ErrAmbiguousResult) ||
		errors.Is(err, rpc.ErrNoSuchObject) ||
		errors.Is(err, rpc.ErrUnavailable) ||
		errors.Is(err, naming.ErrNotBound)
}

// QuarantineInstance marks a managed instance unreachable: fleet passes
// skip it until it is unquarantined (normally by the prober observing it
// respond again).
func (m *Manager) QuarantineInstance(loid naming.LOID, reason string) error {
	m.mu.Lock()
	_, ok := m.records[loid]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, loid)
	}
	m.quarantine(loid, reason)
	return nil
}

// quarantine records the quarantine and emits the event; the instance need
// not be re-checked (callers hold evidence it is managed).
func (m *Manager) quarantine(loid naming.LOID, reason string) {
	m.mu.Lock()
	_, already := m.quarantined[loid]
	m.quarantined[loid] = reason
	m.mu.Unlock()
	if !already {
		m.event("quarantined", loid, nil, reason)
	}
}

// UnquarantineInstance clears an instance's quarantine, making it eligible
// for fleet passes again. Clearing a non-quarantined instance is a no-op.
func (m *Manager) UnquarantineInstance(loid naming.LOID) {
	m.mu.Lock()
	_, was := m.quarantined[loid]
	delete(m.quarantined, loid)
	m.mu.Unlock()
	if was {
		m.event("unquarantined", loid, nil, "")
	}
}

// IsQuarantined reports whether loid is quarantined, and why.
func (m *Manager) IsQuarantined(loid naming.LOID) (bool, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	reason, ok := m.quarantined[loid]
	return ok, reason
}

// Quarantined returns the quarantined LOIDs in sorted order.
func (m *Manager) Quarantined() []naming.LOID {
	m.mu.Lock()
	out := make([]naming.LOID, 0, len(m.quarantined))
	for loid := range m.quarantined {
		out = append(out, loid)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// instanceOf returns the managed instance for loid (nil when unknown).
func (m *Manager) instanceOf(loid naming.LOID) Instance {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.instances[loid]
}
