package manager

import (
	"context"

	"errors"
	"testing"

	"godcdo/internal/dfm"
	"godcdo/internal/evolution"
	"godcdo/internal/naming"
	"godcdo/internal/registry"
	"godcdo/internal/version"
)

func TestCreateInstanceAtCurrentVersion(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.SingleVersion, evolution.Explicit)
	obj := f.newDCDO()

	if err := m.CreateInstance(context.Background(), LocalInstance{Obj: obj}, nil, registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	out, err := obj.InvokeMethod("greet", nil)
	if err != nil || string(out) != "hello" {
		t.Fatalf("greet = %q, %v", out, err)
	}
	if !obj.Version().Equal(v(1)) {
		t.Fatalf("version = %v", obj.Version())
	}
	rec, err := m.RecordOf(obj.LOID())
	if err != nil || !rec.Version.Equal(v(1)) || rec.Impl != registry.NativeImplType {
		t.Fatalf("record = %+v, %v", rec, err)
	}
}

func TestCreateInstanceAtSpecificVersion(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiGeneral, evolution.Explicit)
	obj := f.newDCDO()
	if err := m.CreateInstance(context.Background(), LocalInstance{Obj: obj}, v(1, 1), registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	out, _ := obj.InvokeMethod("greet", nil)
	if string(out) != "bonjour" {
		t.Fatalf("greet = %q", out)
	}
}

func TestCreateInstanceErrors(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.SingleVersion, evolution.Explicit)
	obj := f.newDCDO()
	if err := m.CreateInstance(context.Background(), LocalInstance{Obj: obj}, nil, registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateInstance(context.Background(), LocalInstance{Obj: obj}, nil, registry.NativeImplType); !errors.Is(err, ErrDuplicateInstance) {
		t.Fatalf("err = %v, want ErrDuplicateInstance", err)
	}

	// No current version designated.
	empty := New(evolution.SingleVersion, evolution.Explicit)
	if err := empty.CreateInstance(context.Background(), LocalInstance{Obj: f.newDCDO()}, nil, registry.NativeImplType); !errors.Is(err, ErrNoCurrentVersion) {
		t.Fatalf("err = %v, want ErrNoCurrentVersion", err)
	}

	// Configurable versions cannot create instances.
	m2 := f.newManager(t, evolution.MultiGeneral, evolution.Explicit)
	cfgV, _ := m2.Store().Derive(v(1))
	if err := m2.CreateInstance(context.Background(), LocalInstance{Obj: f.newDCDO()}, cfgV, registry.NativeImplType); !errors.Is(err, ErrVersionNotReady) {
		t.Fatalf("err = %v, want ErrVersionNotReady", err)
	}
}

func TestSetCurrentVersionRequiresInstantiable(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.SingleVersion, evolution.Explicit)
	cfgV, _ := m.Store().Derive(v(1))
	if err := m.SetCurrentVersion(context.Background(), cfgV); !errors.Is(err, ErrVersionNotReady) {
		t.Fatalf("err = %v, want ErrVersionNotReady", err)
	}
	if err := m.SetCurrentVersion(context.Background(), v(1, 1)); err != nil {
		t.Fatal(err)
	}
	cur, _ := m.CurrentVersion()
	if !cur.Equal(v(1, 1)) {
		t.Fatalf("current = %v", cur)
	}
}

func TestProactiveUpdateEvolvesAllInstances(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.SingleVersion, evolution.Proactive)
	objs := []*LocalInstance{}
	for i := 0; i < 3; i++ {
		obj := f.newDCDO()
		inst := LocalInstance{Obj: obj}
		if err := m.CreateInstance(context.Background(), inst, nil, registry.NativeImplType); err != nil {
			t.Fatal(err)
		}
		objs = append(objs, &inst)
	}
	// Designating a new current version immediately evolves everyone.
	if err := m.SetCurrentVersion(context.Background(), v(1, 1)); err != nil {
		t.Fatal(err)
	}
	for i, inst := range objs {
		out, err := inst.Obj.InvokeMethod("greet", nil)
		if err != nil || string(out) != "bonjour" {
			t.Fatalf("instance %d greet = %q, %v", i, out, err)
		}
		if !inst.Obj.Version().Equal(v(1, 1)) {
			t.Fatalf("instance %d version = %v", i, inst.Obj.Version())
		}
	}
	for _, rec := range m.Records() {
		if !rec.Version.Equal(v(1, 1)) {
			t.Fatalf("record version = %v", rec.Version)
		}
	}
}

func TestExplicitPolicyLeavesInstancesAlone(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.SingleVersion, evolution.Explicit)
	obj := f.newDCDO()
	if err := m.CreateInstance(context.Background(), LocalInstance{Obj: obj}, nil, registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	if err := m.SetCurrentVersion(context.Background(), v(1, 1)); err != nil {
		t.Fatal(err)
	}
	out, _ := obj.InvokeMethod("greet", nil)
	if string(out) != "hello" {
		t.Fatalf("greet = %q, instance should be out of date under explicit policy", out)
	}
	// An external object explicitly updates the instance.
	if err := m.EvolveInstance(context.Background(), obj.LOID(), v(1, 1)); err != nil {
		t.Fatal(err)
	}
	out, _ = obj.InvokeMethod("greet", nil)
	if string(out) != "bonjour" {
		t.Fatalf("greet after explicit update = %q", out)
	}
}

func TestSingleVersionStyleDeniesNonCurrent(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.SingleVersion, evolution.Explicit)
	obj := f.newDCDO()
	if err := m.CreateInstance(context.Background(), LocalInstance{Obj: obj}, nil, registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	// v1.1 is instantiable but not current: denied under single-version.
	if err := m.EvolveInstance(context.Background(), obj.LOID(), v(1, 1)); !errors.Is(err, evolution.ErrTransitionDenied) {
		t.Fatalf("err = %v, want ErrTransitionDenied", err)
	}
}

func TestNoUpdateStyleDeniesEvolution(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiNoUpdate, evolution.Explicit)
	obj := f.newDCDO()
	if err := m.CreateInstance(context.Background(), LocalInstance{Obj: obj}, v(1), registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	if err := m.EvolveInstance(context.Background(), obj.LOID(), v(1, 1)); !errors.Is(err, evolution.ErrTransitionDenied) {
		t.Fatalf("err = %v, want ErrTransitionDenied", err)
	}
}

func TestIncreasingStyleRequiresDescendant(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiIncreasing, evolution.Explicit)
	obj := f.newDCDO()
	if err := m.CreateInstance(context.Background(), LocalInstance{Obj: obj}, v(1), registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	// 1 -> 1.1 is a descent: allowed.
	if err := m.EvolveInstance(context.Background(), obj.LOID(), v(1, 1)); err != nil {
		t.Fatal(err)
	}
	// 1.1 -> 1 is an ascent: denied.
	if err := m.EvolveInstance(context.Background(), obj.LOID(), v(1)); !errors.Is(err, evolution.ErrTransitionDenied) {
		t.Fatalf("err = %v, want ErrTransitionDenied", err)
	}
}

func TestGeneralStyleAllowsCrossBranch(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiGeneral, evolution.Explicit)
	obj := f.newDCDO()
	if err := m.CreateInstance(context.Background(), LocalInstance{Obj: obj}, v(1, 1), registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	// 1.1 -> 1 (backwards) is fine under general evolution.
	if err := m.EvolveInstance(context.Background(), obj.LOID(), v(1)); err != nil {
		t.Fatal(err)
	}
	out, _ := obj.InvokeMethod("greet", nil)
	if string(out) != "hello" {
		t.Fatalf("greet = %q", out)
	}
}

func TestHybridStyleChecksMandatoryRules(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiHybrid, evolution.Explicit)

	// Derive v1.2 where greet@en is mandatory, and v1.3 which drops en
	// entirely (only fr).
	v12, _ := m.Store().Derive(v(1))
	err := m.Store().Configure(v12, func(d *dfm.Descriptor) error {
		d.Entry(dfm.EntryKey{Function: "greet", Component: "en"}).Mandatory = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store().MarkInstantiable(v12); err != nil {
		t.Fatal(err)
	}

	obj := f.newDCDO()
	if err := m.CreateInstance(context.Background(), LocalInstance{Obj: obj}, v12, registry.NativeImplType); err != nil {
		t.Fatal(err)
	}

	// v1.1 keeps the function but enables fr; from v1.2 (greet mandatory)
	// to v1.1 the function still exists but the mandatory flag is demoted:
	// hybrid denies it.
	if err := m.EvolveInstance(context.Background(), obj.LOID(), v(1, 1)); !errors.Is(err, evolution.ErrTransitionDenied) {
		t.Fatalf("err = %v, want ErrTransitionDenied", err)
	}
}

func TestEvolveUnknownInstance(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.SingleVersion, evolution.Explicit)
	if err := m.EvolveInstance(context.Background(), naming.LOID{Instance: 404}, v(1)); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("err = %v, want ErrUnknownInstance", err)
	}
}

func TestAdoptAndDrop(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiGeneral, evolution.Explicit)
	obj := f.newDCDO()
	desc, _ := m.Store().InstantiableDescriptor(v(1))
	if _, err := obj.ApplyDescriptor(context.Background(), desc, v(1)); err != nil {
		t.Fatal(err)
	}

	if err := m.Adopt(context.Background(), LocalInstance{Obj: obj}, registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	if err := m.Adopt(context.Background(), LocalInstance{Obj: obj}, registry.NativeImplType); !errors.Is(err, ErrDuplicateInstance) {
		t.Fatalf("err = %v, want ErrDuplicateInstance", err)
	}
	rec, err := m.RecordOf(obj.LOID())
	if err != nil || !rec.Version.Equal(v(1)) {
		t.Fatalf("record = %+v, %v", rec, err)
	}
	if got := len(m.InstanceLOIDs()); got != 1 {
		t.Fatalf("instances = %d", got)
	}
	m.Drop(obj.LOID())
	if _, err := m.RecordOf(obj.LOID()); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("err = %v, want ErrUnknownInstance", err)
	}
}

func TestManagerAccessors(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiGeneral, evolution.Lazy)
	if m.Style() != evolution.MultiGeneral {
		t.Fatalf("Style = %v", m.Style())
	}
	if m.Policy() != evolution.Lazy {
		t.Fatalf("Policy = %v", m.Policy())
	}
	obj := f.newDCDO()
	if err := m.CreateInstance(context.Background(), LocalInstance{Obj: obj}, v(1), registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	iface, err := (LocalInstance{Obj: obj}).Interface(context.Background())
	if err != nil || len(iface) != 1 || iface[0] != "greet" {
		t.Fatalf("Interface = %v, %v", iface, err)
	}
}

func TestManagerImplementsManagerViewForLazyUpdates(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.SingleVersion, evolution.Lazy)
	obj := f.newDCDO()
	if err := m.CreateInstance(context.Background(), LocalInstance{Obj: obj}, nil, registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	lu := evolution.NewLazyUpdater(obj, m, evolution.StrictConsistency(), nil)
	if err := m.SetCurrentVersion(context.Background(), v(1, 1)); err != nil {
		t.Fatal(err)
	}
	out, err := lu.InvokeMethod("greet", nil)
	if err != nil || string(out) != "bonjour" {
		t.Fatalf("lazy greet = %q, %v", out, err)
	}
	ver, err := version.Decode(obj.Version().Encode())
	if err != nil || !ver.Equal(v(1, 1)) {
		t.Fatalf("version = %v, %v", ver, err)
	}
}
