package manager

import (
	"context"

	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"godcdo/internal/core"
	"godcdo/internal/dfm"
	"godcdo/internal/evolution"
	"godcdo/internal/naming"
	"godcdo/internal/registry"
	"godcdo/internal/transport"
	"godcdo/internal/version"
)

// flakyInstance is an Instance whose connectivity can be switched off,
// standing in for a partitioned remote instance.
type flakyInstance struct {
	loid naming.LOID
	down atomic.Bool

	mu  sync.Mutex
	ver version.ID
}

func (f *flakyInstance) LOID() naming.LOID { return f.loid }

func (f *flakyInstance) Version(context.Context) (version.ID, error) {
	if f.down.Load() {
		return nil, transport.ErrUnreachable
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ver.Clone(), nil
}

func (f *flakyInstance) Apply(_ context.Context, _ *dfm.Descriptor, v version.ID) (core.ApplyReport, error) {
	if f.down.Load() {
		return core.ApplyReport{}, transport.ErrUnreachable
	}
	f.mu.Lock()
	f.ver = v.Clone()
	f.mu.Unlock()
	return core.ApplyReport{}, nil
}

func (f *flakyInstance) Interface(context.Context) ([]string, error) {
	if f.down.Load() {
		return nil, transport.ErrUnreachable
	}
	return []string{"greet"}, nil
}

// restartManager simulates the crash/restart boundary: the store is
// round-tripped through its persistent image, a fresh manager built over
// it, and the journal reopened from disk.
func restartManager(t *testing.T, m *Manager, style evolution.Style, policy evolution.UpdatePolicy, journalPath string) *Manager {
	t.Helper()
	var image bytes.Buffer
	if err := m.Store().Save(&image); err != nil {
		t.Fatalf("save store: %v", err)
	}
	store, err := LoadStore(&image)
	if err != nil {
		t.Fatalf("load store: %v", err)
	}
	m2 := NewWithStore(store, style, policy)
	j, err := OpenJournal(journalPath)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	m2.SetJournal(j)
	return m2
}

func TestRecoverResumesInterruptedPass(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiIncreasing, evolution.Explicit)
	path := filepath.Join(t.TempDir(), "evolution.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	m.SetJournal(j)

	objs := make([]*core.DCDO, 3)
	for i := range objs {
		objs[i] = f.newDCDO()
		if err := m.CreateInstance(context.Background(), LocalInstance{Obj: objs[i]}, v(1), registry.NativeImplType); err != nil {
			t.Fatalf("create: %v", err)
		}
	}
	if err := m.SetCurrentVersion(context.Background(), v(1, 1)); err != nil {
		t.Fatalf("set current: %v", err)
	}
	rep, err := m.EvolveFleetPartial(context.Background(), v(1, 1), 1)
	if err != nil {
		t.Fatalf("partial fleet pass: %v", err)
	}
	if !rep.Halted || len(rep.Evolved) != 1 {
		t.Fatalf("partial pass = %+v, want halted after 1 apply", rep)
	}
	// Crash: the journal handle dies with the manager; no done record.
	if err := j.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}

	m2 := restartManager(t, m, evolution.MultiIncreasing, evolution.Explicit, path)
	for _, obj := range objs {
		if err := m2.Adopt(context.Background(), LocalInstance{Obj: obj}, registry.NativeImplType); err != nil {
			t.Fatalf("re-adopt: %v", err)
		}
	}
	report, err := m2.Recover(context.Background())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if report.Passes != 1 {
		t.Fatalf("recovered %d passes, want 1", report.Passes)
	}
	if len(report.Verified) != 1 || len(report.Resumed) != 2 {
		t.Fatalf("verified=%v resumed=%v, want 1 verified + 2 resumed", report.Verified, report.Resumed)
	}
	if !report.Current.Equal(v(1, 1)) {
		t.Fatalf("restored current = %s, want %s", report.Current, v(1, 1))
	}
	cur, _ := m2.CurrentVersion()
	if !cur.Equal(v(1, 1)) {
		t.Fatalf("manager current = %s, want %s", cur, v(1, 1))
	}
	for i, obj := range objs {
		if got := obj.Version(); !got.Equal(v(1, 1)) {
			t.Fatalf("instance %d at %s after recovery, want %s", i, got, v(1, 1))
		}
		rec, err := m2.RecordOf(LocalInstance{Obj: obj}.LOID())
		if err != nil || !rec.Version.Equal(v(1, 1)) {
			t.Fatalf("record %d = %+v (%v), want version %s", i, rec, err, v(1, 1))
		}
	}

	// Idempotence: the journal was compacted, so replaying it again finds
	// nothing to do.
	report2, err := m2.Recover(context.Background())
	if err != nil {
		t.Fatalf("second recover: %v", err)
	}
	if report2.Passes != 0 || len(report2.Resumed)+len(report2.RolledBack) != 0 {
		t.Fatalf("second recover not a no-op: %+v", report2)
	}
	if !report2.Current.Equal(v(1, 1)) {
		t.Fatalf("second recover lost current: %+v", report2)
	}
}

func TestRecoverRollsBackOrphanedTarget(t *testing.T) {
	f := newFixture(t)
	m := New(evolution.MultiIncreasing, evolution.Explicit)
	root, err := m.Store().CreateRoot(f.descriptorEnabling("en"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store().MarkInstantiable(root); err != nil {
		t.Fatal(err)
	}
	// The persistent image is taken *before* the child version exists: a
	// crash after deriving in memory but before re-saving loses it.
	var oldImage bytes.Buffer
	if err := m.Store().Save(&oldImage); err != nil {
		t.Fatal(err)
	}
	child, err := m.Store().Derive(root)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Store().Configure(child, func(d *dfm.Descriptor) error {
		d.Entry(dfm.EntryKey{Function: "greet", Component: "en"}).Enabled = false
		d.Entry(dfm.EntryKey{Function: "greet", Component: "fr"}).Enabled = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store().MarkInstantiable(child); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "evolution.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	m.SetJournal(j)

	a, b := f.newDCDO(), f.newDCDO()
	for _, obj := range []*core.DCDO{a, b} {
		if err := m.CreateInstance(context.Background(), LocalInstance{Obj: obj}, v(1), registry.NativeImplType); err != nil {
			t.Fatalf("create: %v", err)
		}
	}
	// Crash mid-pass: a reaches 1.1, b untouched, no done record.
	rep, err := m.EvolveFleetPartial(context.Background(), v(1, 1), 1)
	if err != nil || !rep.Halted {
		t.Fatalf("partial pass: %+v err=%v", rep, err)
	}
	_ = j.Close()

	// Restart from the OLD image: version 1.1 does not exist there, so the
	// interrupted pass's target is orphaned and a must roll back.
	store, err := LoadStore(&oldImage)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewWithStore(store, evolution.MultiIncreasing, evolution.Explicit)
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	m2.SetJournal(j2)
	for _, obj := range []*core.DCDO{a, b} {
		if err := m2.Adopt(context.Background(), LocalInstance{Obj: obj}, registry.NativeImplType); err != nil {
			t.Fatalf("re-adopt: %v", err)
		}
	}
	report, err := m2.Recover(context.Background())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if report.Passes != 1 || len(report.RolledBack) != 1 {
		t.Fatalf("report = %+v, want 1 pass with 1 rollback", report)
	}
	if got := a.Version(); !got.Equal(v(1)) {
		t.Fatalf("a at %s after rollback, want %s", got, v(1))
	}
	if got := b.Version(); !got.Equal(v(1)) {
		t.Fatalf("b at %s, want untouched %s", got, v(1))
	}
	recA, err := m2.RecordOf(LocalInstance{Obj: a}.LOID())
	if err != nil || !recA.Version.Equal(v(1)) {
		t.Fatalf("rolled-back record = %+v (%v)", recA, err)
	}
}

func TestRecoverQuarantinesUnreachableInstance(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiIncreasing, evolution.Explicit)
	path := filepath.Join(t.TempDir(), "evolution.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	m.SetJournal(j)

	good := f.newDCDO()
	if err := m.CreateInstance(context.Background(), LocalInstance{Obj: good}, v(1), registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	bad := &flakyInstance{loid: naming.LOID{Domain: 9, Class: 2, Instance: 1}, ver: v(1)}
	if err := m.Adopt(context.Background(), bad, registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	if err := m.SetCurrentVersion(context.Background(), v(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Crash after beginning the pass but before touching anything.
	if _, err := m.EvolveFleetPartial(context.Background(), v(1, 1), 0); err != nil {
		t.Fatal(err)
	}
	_ = j.Close()

	bad.down.Store(true) // partitioned across the restart
	m2 := restartManager(t, m, evolution.MultiIncreasing, evolution.Explicit, path)
	if err := m2.Adopt(context.Background(), LocalInstance{Obj: good}, registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	if err := m2.AdoptUnverified(bad, registry.NativeImplType, v(1), "unreachable at boot"); err != nil {
		t.Fatal(err)
	}
	report, err := m2.Recover(context.Background())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(report.Quarantined) != 1 || report.Quarantined[0] != bad.loid {
		t.Fatalf("quarantined = %v, want [%s]", report.Quarantined, bad.loid)
	}
	if q, _ := m2.IsQuarantined(bad.loid); !q {
		t.Fatal("unreachable instance not quarantined after recovery")
	}
	// The reachable instance converged to the target.
	if got := good.Version(); !got.Equal(v(1, 1)) {
		t.Fatalf("reachable instance at %s, want %s", got, v(1, 1))
	}
	// The quarantined instance is excluded from subsequent fleet passes.
	rep, err := m2.EvolveFleet(context.Background(), v(1, 1))
	if err != nil {
		t.Fatalf("fleet pass with quarantined instance: %v", err)
	}
	for _, loid := range rep.Evolved {
		if loid == bad.loid {
			t.Fatal("fleet pass touched a quarantined instance")
		}
	}
}

func TestRecoverRequiresJournal(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiIncreasing, evolution.Explicit)
	if _, err := m.Recover(context.Background()); !errors.Is(err, ErrNoJournal) {
		t.Fatalf("recover without journal: %v, want ErrNoJournal", err)
	}
}
