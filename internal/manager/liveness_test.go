package manager

import (
	"context"

	"testing"
	"time"

	"godcdo/internal/evolution"
	"godcdo/internal/naming"
	"godcdo/internal/obs"
	"godcdo/internal/registry"
	"godcdo/internal/rpc"
	"godcdo/internal/transport"
	"godcdo/internal/vclock"
)

// liveEnv hosts three DCDOs on separate inproc endpoints behind a seeded
// fault-injecting dialer, managed as remote instances — the smallest
// topology where one instance can be partitioned while the rest stay
// reachable.
type liveEnv struct {
	mgr    *Manager
	faults *transport.Faults
	loids  []naming.LOID
	eps    map[naming.LOID]string
	obs    *obs.Obs
}

func newLiveEnv(t *testing.T, f *fixture) *liveEnv {
	t.Helper()
	clk := vclock.Real{}
	agent := naming.NewAgent(clk)
	cache := naming.NewCache(agent, clk, 0)
	net := transport.NewInprocNetwork()
	faults := transport.NewFaults(1)
	client := rpc.NewClient(cache, transport.NewFaultDialer(net.Dialer(), faults))
	// Short timeouts: a partitioned endpoint must fail a probe in
	// milliseconds, not the default seconds.
	client.Retry = rpc.RetryPolicy{
		CallTimeout: 20 * time.Millisecond,
		MaxAttempts: 2,
		MaxRebinds:  1,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
	}

	o := obs.New()
	mgr := f.newManager(t, evolution.MultiIncreasing, evolution.Explicit)
	mgr.SetObs(o)

	env := &liveEnv{mgr: mgr, faults: faults, eps: make(map[naming.LOID]string), obs: o}
	for i := 0; i < 3; i++ {
		obj := f.newDCDO()
		loid := obj.LOID()
		disp := rpc.NewDispatcher()
		srv, err := net.Listen(loid.String(), disp)
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		disp.Host(loid, obj)
		agent.Register(loid, naming.Address{Endpoint: srv.Endpoint()})
		env.eps[loid] = srv.Endpoint()

		inst := RemoteInstance{Client: client, Target: loid}
		if err := mgr.CreateInstance(context.Background(), inst, v(1), registry.NativeImplType); err != nil {
			t.Fatalf("create %s: %v", loid, err)
		}
		env.loids = append(env.loids, loid)
	}
	return env
}

func (e *liveEnv) hasEvent(kind string, loid naming.LOID) bool {
	for _, ev := range e.obs.GetEvents().Recent(256) {
		if ev.Kind == kind && ev.Object == loid.String() {
			return true
		}
	}
	return false
}

// TestFleetEvolutionQuarantinesPartitionedInstance is the quarantine
// semantics contract: a fleet pass with one partitioned instance evolves
// the reachable majority, quarantines (and reports) the partitioned one
// with a `quarantined` event, and the prober converges it after heal.
func TestFleetEvolutionQuarantinesPartitionedInstance(t *testing.T) {
	f := newFixture(t)
	env := newLiveEnv(t, f)
	m := env.mgr
	victim := env.loids[1]
	env.faults.Partition(env.eps[victim])

	if err := m.SetCurrentVersion(context.Background(), v(1, 1)); err != nil {
		t.Fatalf("set current: %v", err)
	}
	rep, err := m.EvolveFleet(context.Background(), v(1, 1))
	if err != nil {
		t.Fatalf("fleet pass: %v", err)
	}
	if len(rep.Evolved) != 2 || len(rep.Skipped) != 1 || rep.Skipped[0] != victim {
		t.Fatalf("fleet report = %+v, want 2 evolved + victim skipped", rep)
	}
	if q, reason := m.IsQuarantined(victim); !q || reason == "" {
		t.Fatalf("victim not quarantined (q=%v reason=%q)", q, reason)
	}
	if !env.hasEvent("quarantined", victim) {
		t.Fatal("no quarantined event emitted")
	}
	for _, loid := range rep.Evolved {
		rec, err := m.RecordOf(loid)
		if err != nil || !rec.Version.Equal(v(1, 1)) {
			t.Fatalf("evolved record %s = %+v (%v)", loid, rec, err)
		}
	}
	// The quarantined victim's record still shows the old version.
	if rec, _ := m.RecordOf(victim); !rec.Version.Equal(v(1)) {
		t.Fatalf("victim record = %s, want untouched %s", rec.Version, v(1))
	}

	// A second pass skips the quarantined instance outright: it is not in
	// the plan, so the pass succeeds without probing the dead endpoint.
	rep2, err := m.EvolveFleet(context.Background(), v(1, 1))
	if err != nil {
		t.Fatalf("second pass: %v", err)
	}
	if len(rep2.Evolved) != 2 || len(rep2.Skipped) != 0 {
		t.Fatalf("second pass = %+v, want quarantined instance excluded", rep2)
	}

	// While partitioned, the prober keeps it quarantined (backoff defers
	// repeat probes rather than hammering the dead endpoint).
	prober := &Prober{Mgr: m, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	if _, err := prober.Sweep(context.Background()); err != nil {
		t.Fatalf("sweep during partition: %v", err)
	}
	if q, _ := m.IsQuarantined(victim); !q {
		t.Fatal("victim unquarantined while still partitioned")
	}

	// Heal: the next probe (after backoff) observes the instance alive and
	// re-converges it to the current version.
	env.faults.Heal(env.eps[victim])
	deadline := time.Now().Add(2 * time.Second)
	for {
		rep, err := prober.Sweep(context.Background())
		if err != nil {
			t.Fatalf("sweep after heal: %v", err)
		}
		if len(rep.Reconverged) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never reconverged after heal")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if q, _ := m.IsQuarantined(victim); q {
		t.Fatal("victim still quarantined after reconvergence")
	}
	rec, err := m.RecordOf(victim)
	if err != nil || !rec.Version.Equal(v(1, 1)) {
		t.Fatalf("victim record after heal = %+v (%v), want %s", rec, err, v(1, 1))
	}
	actual, err := m.instanceProbe(context.Background(), victim)
	if err != nil || !actual.Equal(v(1, 1)) {
		t.Fatalf("victim actual version = %s (%v), want %s", actual, err, v(1, 1))
	}
	if !env.hasEvent("reconverged", victim) {
		t.Fatal("no reconverged event emitted")
	}
	if !env.hasEvent("unquarantined", victim) {
		t.Fatal("no unquarantined event emitted")
	}
}

// TestProberPrunesDroppedInstanceState is the regression test for the
// probe-state leak: state for a dropped LOID must disappear on the next
// sweep, and a re-created instance under the same LOID must start with a
// clean failure count rather than inheriting the old incarnation's backoff.
func TestProberPrunesDroppedInstanceState(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiIncreasing, evolution.Explicit)
	loid := naming.LOID{Domain: 9, Class: 3, Instance: 7}
	dead := &flakyInstance{loid: loid, ver: v(1)}
	dead.down.Store(true)
	if err := m.AdoptUnverified(dead, registry.NativeImplType, v(1), "down"); err != nil {
		t.Fatalf("adopt unverified: %v", err)
	}

	clk := vclock.NewVirtual(time.Unix(0, 0))
	// Threshold 2: one failure accumulates state without quarantining, so
	// inherited state would visibly mis-quarantine a fresh instance.
	p := &Prober{Mgr: m, Clock: clk, FailureThreshold: 2, BaseBackoff: 10 * time.Millisecond}
	if _, err := p.Sweep(context.Background()); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	p.mu.Lock()
	_, tracked := p.state[loid]
	p.mu.Unlock()
	if !tracked {
		t.Fatal("failing instance has no probe state after sweep")
	}

	// Drop the instance; the next sweep must prune its state even though the
	// LOID never gets probed again.
	m.Drop(loid)
	clk.Advance(time.Minute)
	if _, err := p.Sweep(context.Background()); err != nil {
		t.Fatalf("sweep after drop: %v", err)
	}
	p.mu.Lock()
	leaked := len(p.state)
	p.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("probe state leaked for %d dropped LOIDs", leaked)
	}

	// Re-create the LOID as a healthy instance: one failure of the *old*
	// incarnation must not count against the new one, so a single transient
	// failure now stays below the threshold.
	fresh := &flakyInstance{loid: loid, ver: v(1)}
	fresh.down.Store(true)
	if err := m.AdoptUnverified(fresh, registry.NativeImplType, v(1), "fresh"); err != nil {
		t.Fatalf("re-adopt: %v", err)
	}
	rep, err := p.Sweep(context.Background())
	if err != nil {
		t.Fatalf("sweep of fresh instance: %v", err)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("fresh instance crossed the quarantine threshold on first failure: inherited stale probe state (report %+v)", rep)
	}
	p.mu.Lock()
	st := p.state[loid]
	p.mu.Unlock()
	if st == nil || st.failures != 1 {
		t.Fatalf("fresh instance probe state = %+v, want exactly 1 failure", st)
	}
}

// TestProberBackoffDefersProbes pins the backoff contract: consecutive
// failures stretch the window between probes of a dead instance.
func TestProberBackoffDefersProbes(t *testing.T) {
	f := newFixture(t)
	m := f.newManager(t, evolution.MultiIncreasing, evolution.Explicit)
	dead := &flakyInstance{loid: naming.LOID{Domain: 9, Class: 3, Instance: 1}, ver: v(1)}
	dead.down.Store(true)
	if err := m.Adopt(context.Background(), dead, registry.NativeImplType); err == nil {
		// Adopt probes; a down instance cannot be adopted this way.
		t.Fatal("adopt of a down instance unexpectedly succeeded")
	}
	if err := m.AdoptUnverified(dead, registry.NativeImplType, v(1), "down"); err != nil {
		t.Fatalf("adopt unverified: %v", err)
	}

	clk := vclock.NewVirtual(time.Unix(0, 0))
	p := &Prober{Mgr: m, Clock: clk, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second}

	rep, err := p.Sweep(context.Background())
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(rep.Probed) != 1 {
		t.Fatalf("first sweep probed %v, want the dead instance", rep.Probed)
	}
	// Within the backoff window the instance is deferred, not re-probed.
	rep, _ = p.Sweep(context.Background())
	if len(rep.Deferred) != 1 || len(rep.Probed) != 0 {
		t.Fatalf("second sweep = %+v, want deferred", rep)
	}
	// After the window it is probed again.
	clk.Advance(150 * time.Millisecond)
	rep, _ = p.Sweep(context.Background())
	if len(rep.Probed) != 1 {
		t.Fatalf("post-backoff sweep = %+v, want probe", rep)
	}
	// Recovery: instance comes back, probe succeeds, quarantine lifts.
	dead.down.Store(false)
	clk.Advance(time.Second)
	rep, err = p.Sweep(context.Background())
	if err != nil {
		t.Fatalf("sweep after recovery: %v", err)
	}
	if len(rep.Reconverged) != 1 {
		t.Fatalf("recovery sweep = %+v, want reconverged", rep)
	}
	if q, _ := m.IsQuarantined(dead.loid); q {
		t.Fatal("instance still quarantined after recovery")
	}
}
