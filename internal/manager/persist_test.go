package manager

import (
	"context"

	"bytes"
	"errors"
	"testing"

	"godcdo/internal/dfm"
	"godcdo/internal/evolution"
	"godcdo/internal/registry"
)

// buildTree assembles a store with root 1 (instantiable), children 1.1
// (instantiable) and 1.2 (configurable), and grandchild 1.1.1
// (configurable).
func buildTree(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	root, err := s.CreateRoot(seedDescriptor())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkInstantiable(root); err != nil {
		t.Fatal(err)
	}
	c1, err := s.Derive(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkInstantiable(c1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Derive(root); err != nil { // 1.2 stays configurable
		t.Fatal(err)
	}
	if _, err := s.Derive(c1); err != nil { // 1.1.1 stays configurable
		t.Fatal(err)
	}
	return s
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	src := buildTree(t)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got.Len() != src.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), src.Len())
	}
	if !got.Root().Equal(src.Root()) {
		t.Fatalf("root = %v", got.Root())
	}
	for _, v := range src.Versions() {
		srcState, _ := src.State(v)
		gotState, err := got.State(v)
		if err != nil || gotState != srcState {
			t.Fatalf("state of %s = %v, %v (want %v)", v, gotState, err, srcState)
		}
		srcDesc, _ := src.Descriptor(v)
		gotDesc, err := got.Descriptor(v)
		if err != nil || !gotDesc.Equivalent(srcDesc) {
			t.Fatalf("descriptor of %s not equivalent", v)
		}
		srcParent, _ := src.Parent(v)
		gotParent, _ := got.Parent(v)
		if !gotParent.Equal(srcParent) {
			t.Fatalf("parent of %s = %v, want %v", v, gotParent, srcParent)
		}
		srcKids, _ := src.Children(v)
		gotKids, _ := got.Children(v)
		if len(srcKids) != len(gotKids) {
			t.Fatalf("children of %s = %v, want %v", v, gotKids, srcKids)
		}
	}
}

func TestLoadedStoreContinuesDeriving(t *testing.T) {
	src := buildTree(t)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The child counter must have survived: the next derivation from the
	// root is 1.3, not a collision with 1.1 or 1.2.
	child, err := got.Derive(got.Root())
	if err != nil {
		t.Fatal(err)
	}
	if child.String() != "1.3" {
		t.Fatalf("next child = %v, want 1.3", child)
	}
	// Instantiable versions stay frozen across the reload.
	if err := got.Configure(got.Root(), func(*dfm.Descriptor) error { return nil }); !errors.Is(err, ErrVersionFrozen) {
		t.Fatalf("err = %v, want ErrVersionFrozen", err)
	}
}

func TestManagerRestartFlow(t *testing.T) {
	f := newFixture(t)
	m1 := f.newManager(t, evolution.SingleVersion, evolution.Explicit)
	obj := f.newDCDO()
	if err := m1.CreateInstance(context.Background(), LocalInstance{Obj: obj}, v(1), registry.NativeImplType); err != nil {
		t.Fatal(err)
	}

	// "Restart": persist the store, rebuild a manager on it, re-adopt the
	// still-running instance.
	var buf bytes.Buffer
	if err := m1.Store().Save(&buf); err != nil {
		t.Fatal(err)
	}
	store, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewWithStore(store, evolution.SingleVersion, evolution.Explicit)
	if err := m2.SetCurrentVersion(context.Background(), v(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m2.Adopt(context.Background(), LocalInstance{Obj: obj}, registry.NativeImplType); err != nil {
		t.Fatal(err)
	}
	if err := m2.EvolveInstance(context.Background(), obj.LOID(), v(1, 1)); err != nil {
		t.Fatal(err)
	}
	out, err := obj.InvokeMethod("greet", nil)
	if err != nil || string(out) != "bonjour" {
		t.Fatalf("greet after restart evolution = %q, %v", out, err)
	}
}

func TestLoadStoreRejectsCorrupt(t *testing.T) {
	src := buildTree(t)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	image := buf.Bytes()
	for _, cut := range []int{0, 1, 5, len(image) / 2, len(image) - 1} {
		if _, err := LoadStore(bytes.NewReader(image[:cut])); err == nil {
			t.Errorf("cut=%d: corrupt image accepted", cut)
		}
	}
}

func TestLoadStoreRejectsWrongFormat(t *testing.T) {
	// A frame whose payload declares an unknown format version.
	var buf bytes.Buffer
	s := NewStore()
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Patch the format byte inside the frame (first payload byte after the
	// 5-byte frame header; format 1 encodes as a single varint byte).
	image := buf.Bytes()
	image[5] = 99
	if _, err := LoadStore(bytes.NewReader(image)); !errors.Is(err, ErrBadStoreImage) {
		t.Fatalf("err = %v, want ErrBadStoreImage", err)
	}
}

func TestSaveLoadEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := NewStore().Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || !got.Root().IsZero() {
		t.Fatalf("empty store round trip: len=%d root=%v", got.Len(), got.Root())
	}
}
