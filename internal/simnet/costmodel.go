// Package simnet provides a deterministic network simulation for the
// modeled-time experiments: a cost model calibrated against the paper's
// Centurion testbed (16 dual 400 MHz Pentium IIs on 100 Mbps switched
// Ethernet), and a virtual message bus that delivers messages on a virtual
// clock.
//
// The paper's multi-second results (implementation downloads, stale-binding
// discovery, multi-component object creation) cannot be reproduced in
// real time inside a benchmark harness; they are reproduced here in virtual
// time using costs derived from the numbers the paper reports.
package simnet

import (
	"time"
)

// CostModel computes modeled durations for network operations. Bulk
// transfers in Legion go through the object message layer in chunks, each
// paying marshalling/scheduling overhead, which is why the paper's effective
// download throughput (~0.3 MB/s) is far below raw Ethernet bandwidth.
type CostModel struct {
	// RTT is the round-trip latency between two nodes.
	RTT time.Duration
	// BandwidthBps is the raw link bandwidth in bits per second.
	BandwidthBps int64
	// PerMessageCPU is the processing cost each message pays on the
	// receiving node (demarshalling, dispatch).
	PerMessageCPU time.Duration
	// ChunkSize is the bulk-transfer chunk size in bytes.
	ChunkSize int64
	// PerChunkOverhead is the Legion message-layer cost per bulk chunk
	// (marshalling through objects, scheduling); it dominates transfer time.
	PerChunkOverhead time.Duration
	// TransferStartup is the fixed cost to begin a bulk transfer (locating
	// the source object, opening the stream, metadata exchange).
	TransferStartup time.Duration
	// ProcessSpawn is the cost to create a new OS process for an object
	// (fork/exec, linking the monolithic executable, runtime init).
	ProcessSpawn time.Duration
	// ComponentBind is the per-component cost to incorporate an already
	// downloaded component into a running DCDO (reading the descriptor and
	// mapping the code into the address space). The paper reports ~200 µs
	// per cached component — but object *creation* from many components
	// pays a much larger per-component cost (ICO lookup + remote read),
	// captured by ComponentFetch.
	ComponentBind time.Duration
	// ComponentFetch is the per-component cost during object creation to
	// contact the component's ICO and read its (small) descriptor+code when
	// it is not already cached at the host.
	ComponentFetch time.Duration
}

// Centurion returns the cost model calibrated against the numbers the paper
// reports for the Centurion testbed:
//
//   - 550 KB implementation download ≈ 4 s, 5.1 MB ≈ 15–25 s
//   - monolithic object creation ≈ 2.2 s
//   - 500 functions / 50 components creation ≈ 10 s
//   - cached component incorporation ≈ 200 µs each
func Centurion() CostModel {
	return CostModel{
		RTT:              500 * time.Microsecond,
		BandwidthBps:     100_000_000, // 100 Mbps switched Ethernet
		PerMessageCPU:    100 * time.Microsecond,
		ChunkSize:        64 << 10,
		PerChunkOverhead: 210 * time.Millisecond,
		TransferStartup:  2 * time.Second,
		ProcessSpawn:     2 * time.Second,
		ComponentBind:    200 * time.Microsecond,
		ComponentFetch:   155 * time.Millisecond,
	}
}

// MessageTime is the modeled one-way cost of a small control message.
func (m CostModel) MessageTime(bytes int64) time.Duration {
	return m.RTT/2 + m.serialization(bytes) + m.PerMessageCPU
}

// RPCTime is the modeled round-trip cost of a request/response exchange with
// the given payload sizes.
func (m CostModel) RPCTime(reqBytes, respBytes int64) time.Duration {
	return m.RTT + m.serialization(reqBytes) + m.serialization(respBytes) + 2*m.PerMessageCPU
}

// TransferTime is the modeled cost of a bulk transfer of the given size
// through the object message layer (the path implementation downloads take).
func (m CostModel) TransferTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	chunks := (bytes + m.ChunkSize - 1) / m.ChunkSize
	perChunk := m.RTT + m.PerChunkOverhead + m.serialization(min64(bytes, m.ChunkSize))
	return m.TransferStartup + time.Duration(chunks)*perChunk
}

// CreationTime is the modeled cost to create an object whose implementation
// is split into components. A monolithic object (components == 1 with
// monolithic true) pays only process spawn; a DCDO pays spawn plus a
// per-component fetch+bind.
func (m CostModel) CreationTime(components int, monolithic bool) time.Duration {
	if monolithic || components <= 0 {
		return m.ProcessSpawn + 200*time.Millisecond // spawn + small executable setup
	}
	perComponent := m.ComponentFetch + m.ComponentBind
	return m.ProcessSpawn + time.Duration(components)*perComponent
}

func (m CostModel) serialization(bytes int64) time.Duration {
	if m.BandwidthBps <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(bytes * 8 * int64(time.Second) / m.BandwidthBps)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
