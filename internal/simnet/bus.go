package simnet

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"time"

	"godcdo/internal/vclock"
)

// Errors returned by the bus.
var (
	// ErrUnknownNode is returned when sending to a node that was never
	// registered.
	ErrUnknownNode = errors.New("simnet: unknown node")
	// ErrNodeDown is returned when sending to a node that has been taken
	// down (models a crashed or migrated-away process).
	ErrNodeDown = errors.New("simnet: node down")
	// ErrBusClosed is returned by Recv after the bus shuts down.
	ErrBusClosed = errors.New("simnet: bus closed")
)

// Message is a payload delivered between simulated nodes.
type Message struct {
	From      string
	To        string
	Payload   []byte
	DeliverAt time.Time
	seq       uint64
}

// Bus connects simulated nodes. Delivery times are computed from the cost
// model against the virtual clock; messages become receivable once the clock
// passes their delivery time. The bus itself never blocks senders.
type Bus struct {
	clock *vclock.Virtual
	model CostModel

	mu     sync.Mutex
	nodes  map[string]*Node
	seq    uint64
	closed bool
}

// NewBus returns an empty bus over the given virtual clock and cost model.
func NewBus(clock *vclock.Virtual, model CostModel) *Bus {
	return &Bus{clock: clock, model: model, nodes: make(map[string]*Node)}
}

// Model returns the bus's cost model.
func (b *Bus) Model() CostModel { return b.model }

// Clock returns the virtual clock the bus runs on.
func (b *Bus) Clock() *vclock.Virtual { return b.clock }

// Node registers (or returns the existing) node with the given name.
func (b *Bus) Node(name string) *Node {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n, ok := b.nodes[name]; ok {
		return n
	}
	n := &Node{bus: b, name: name, up: true}
	n.cond = sync.NewCond(&n.mu)
	b.nodes[name] = n
	return n
}

// Close shuts the bus down, waking all blocked receivers with ErrBusClosed.
func (b *Bus) Close() {
	b.mu.Lock()
	b.closed = true
	nodes := make([]*Node, 0, len(b.nodes))
	for _, n := range b.nodes {
		nodes = append(nodes, n)
	}
	b.mu.Unlock()
	for _, n := range nodes {
		n.mu.Lock()
		n.closed = true
		n.cond.Broadcast()
		n.mu.Unlock()
	}
}

// Send delivers payload from node "from" to node "to" after the modeled
// one-way message time. It returns the modeled delivery time.
func (b *Bus) Send(from, to string, payload []byte) (time.Time, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return time.Time{}, ErrBusClosed
	}
	dst, ok := b.nodes[to]
	if !ok {
		b.mu.Unlock()
		return time.Time{}, fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	b.seq++
	seq := b.seq
	b.mu.Unlock()

	dst.mu.Lock()
	if !dst.up {
		dst.mu.Unlock()
		return time.Time{}, fmt.Errorf("%w: %q", ErrNodeDown, to)
	}
	deliverAt := b.clock.Now().Add(b.model.MessageTime(int64(len(payload))))
	heap.Push(&dst.inbox, &Message{
		From: from, To: to, Payload: payload, DeliverAt: deliverAt, seq: seq,
	})
	dst.cond.Broadcast()
	dst.mu.Unlock()
	return deliverAt, nil
}

// Node is one simulated machine attached to the bus.
type Node struct {
	bus  *Bus
	name string

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  msgHeap
	up     bool
	closed bool
}

// Name returns the node's bus name.
func (n *Node) Name() string { return n.name }

// Up reports whether the node accepts messages.
func (n *Node) Up() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.up
}

// SetUp marks the node up or down. A down node rejects sends, modelling a
// dead process whose clients' cached bindings are now stale.
func (n *Node) SetUp(up bool) {
	n.mu.Lock()
	n.up = up
	n.cond.Broadcast()
	n.mu.Unlock()
}

// Send sends payload to the named destination node.
func (n *Node) Send(to string, payload []byte) (time.Time, error) {
	return n.bus.Send(n.name, to, payload)
}

// TryRecv returns the next deliverable message, or ok=false if none is
// deliverable at the current virtual time.
func (n *Node) TryRecv() (Message, bool) {
	now := n.bus.clock.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.inbox) == 0 || n.inbox[0].DeliverAt.After(now) {
		return Message{}, false
	}
	m, ok := heap.Pop(&n.inbox).(*Message)
	if !ok {
		return Message{}, false
	}
	return *m, true
}

// Recv blocks until a message is deliverable (advancing through the virtual
// clock as needed) or the bus closes.
func (n *Node) Recv() (Message, error) {
	for {
		n.mu.Lock()
		for len(n.inbox) == 0 && !n.closed {
			n.cond.Wait()
		}
		if n.closed {
			n.mu.Unlock()
			return Message{}, ErrBusClosed
		}
		head := n.inbox[0]
		now := n.bus.clock.Now()
		if !head.DeliverAt.After(now) {
			m, _ := heap.Pop(&n.inbox).(*Message)
			n.mu.Unlock()
			return *m, nil
		}
		wait := head.DeliverAt.Sub(now)
		n.mu.Unlock()
		// Wait for virtual time to reach the delivery instant. Another
		// goroutine must advance the clock (the harness does).
		n.bus.clock.Sleep(wait)
	}
}

// Pending reports the number of queued (not yet received) messages.
func (n *Node) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.inbox)
}

type msgHeap []*Message

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].DeliverAt.Equal(h[j].DeliverAt) {
		return h[i].seq < h[j].seq
	}
	return h[i].DeliverAt.Before(h[j].DeliverAt)
}
func (h msgHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *msgHeap) Push(x any) {
	m, ok := x.(*Message)
	if !ok {
		return
	}
	*h = append(*h, m)
}

func (h *msgHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return m
}
