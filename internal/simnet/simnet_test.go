package simnet

import (
	"errors"
	"testing"
	"time"

	"godcdo/internal/vclock"
)

func TestCenturionDownloadTimesMatchPaper(t *testing.T) {
	m := Centurion()
	// Paper: 550 KB implementation downloads in about 4 seconds.
	small := m.TransferTime(550 << 10)
	if small < 3*time.Second || small > 5*time.Second {
		t.Fatalf("550KB transfer = %v, want ≈4s", small)
	}
	// Paper: 5.1 MB implementation takes 15 to 25 seconds.
	large := m.TransferTime(5_347_738) // 5.1 MB
	if large < 15*time.Second || large > 25*time.Second {
		t.Fatalf("5.1MB transfer = %v, want within [15s,25s]", large)
	}
	// Shape: bigger transfers take longer.
	if large <= small {
		t.Fatalf("5.1MB (%v) not slower than 550KB (%v)", large, small)
	}
}

func TestCenturionCreationTimesMatchPaper(t *testing.T) {
	m := Centurion()
	mono := m.CreationTime(1, true)
	// Paper: monolithic creation with 500 functions ≈ 2.2 s.
	if mono < 1800*time.Millisecond || mono > 2600*time.Millisecond {
		t.Fatalf("monolithic creation = %v, want ≈2.2s", mono)
	}
	// Paper: 500 functions in 50 components ≈ 10 s.
	fifty := m.CreationTime(50, false)
	if fifty < 8*time.Second || fifty > 12*time.Second {
		t.Fatalf("50-component creation = %v, want ≈10s", fifty)
	}
	// Paper: "for more reasonably configured objects (fewer components),
	// results are comparable to the static executables".
	few := m.CreationTime(3, false)
	if few > 2*mono {
		t.Fatalf("3-component creation = %v, not comparable to monolithic %v", few, mono)
	}
	// Monotone in component count.
	prev := time.Duration(0)
	for _, c := range []int{1, 5, 10, 25, 50} {
		cur := m.CreationTime(c, false)
		if cur <= prev {
			t.Fatalf("creation time not monotone at %d components: %v <= %v", c, cur, prev)
		}
		prev = cur
	}
}

func TestCostModelEdgeCases(t *testing.T) {
	m := Centurion()
	if m.TransferTime(0) != 0 {
		t.Fatal("zero-byte transfer should cost zero")
	}
	if m.TransferTime(-5) != 0 {
		t.Fatal("negative transfer should cost zero")
	}
	if got := m.CreationTime(0, false); got != m.CreationTime(1, true) {
		t.Fatalf("zero components should fall back to monolithic cost, got %v", got)
	}
	var zero CostModel
	if zero.MessageTime(100) != 0 {
		t.Fatal("zero model message time should be zero")
	}
}

func TestRPCTimeComponents(t *testing.T) {
	m := Centurion()
	rpc := m.RPCTime(100, 100)
	if rpc < m.RTT {
		t.Fatalf("RPC time %v less than RTT %v", rpc, m.RTT)
	}
	// Payload size matters but only via serialization.
	bigger := m.RPCTime(1<<20, 100)
	if bigger <= rpc {
		t.Fatal("larger request should cost more")
	}
}

func TestBusDeliveryOrder(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	bus := NewBus(clk, Centurion())
	a := bus.Node("a")
	b := bus.Node("b")

	if _, err := a.Send("b", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Send("b", []byte("second")); err != nil {
		t.Fatal(err)
	}

	// Nothing deliverable until the clock advances.
	if _, ok := b.TryRecv(); ok {
		t.Fatal("message delivered before virtual time advanced")
	}
	clk.Advance(time.Second)

	m1, ok := b.TryRecv()
	if !ok {
		t.Fatal("first message not deliverable")
	}
	m2, ok := b.TryRecv()
	if !ok {
		t.Fatal("second message not deliverable")
	}
	if string(m1.Payload) != "first" || string(m2.Payload) != "second" {
		t.Fatalf("out of order: %q then %q", m1.Payload, m2.Payload)
	}
	if m1.From != "a" || m1.To != "b" {
		t.Fatalf("bad addressing: %+v", m1)
	}
}

func TestBusRecvBlocksUntilVirtualDelivery(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	bus := NewBus(clk, Centurion())
	a := bus.Node("a")
	b := bus.Node("b")

	got := make(chan Message, 1)
	errCh := make(chan error, 1)
	go func() {
		m, err := b.Recv()
		if err != nil {
			errCh <- err
			return
		}
		got <- m
	}()

	if _, err := a.Send("b", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	// Drive virtual time until the receiver's sleep resolves.
	deadline := time.Now().Add(2 * time.Second)
	for {
		clk.RunUntilIdle()
		select {
		case m := <-got:
			if string(m.Payload) != "hi" {
				t.Fatalf("payload = %q", m.Payload)
			}
			return
		case err := <-errCh:
			t.Fatal(err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("Recv never returned")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBusUnknownAndDownNodes(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	bus := NewBus(clk, Centurion())
	a := bus.Node("a")
	if _, err := a.Send("ghost", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	b := bus.Node("b")
	b.SetUp(false)
	if _, err := a.Send("b", nil); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	if b.Up() {
		t.Fatal("node reports up after SetUp(false)")
	}
	b.SetUp(true)
	if _, err := a.Send("b", nil); err != nil {
		t.Fatalf("send after SetUp(true): %v", err)
	}
	if b.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", b.Pending())
	}
}

func TestBusCloseWakesReceivers(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	bus := NewBus(clk, Centurion())
	n := bus.Node("n")
	errCh := make(chan error, 1)
	go func() {
		_, err := n.Recv()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the receiver block
	bus.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrBusClosed) {
			t.Fatalf("err = %v, want ErrBusClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv not woken by Close")
	}
	if _, err := bus.Node("n").Send("n", nil); !errors.Is(err, ErrBusClosed) {
		t.Fatalf("send after close err = %v", err)
	}
}

func TestBusNodeIdentityStable(t *testing.T) {
	bus := NewBus(vclock.NewVirtual(time.Unix(0, 0)), Centurion())
	if bus.Node("x") != bus.Node("x") {
		t.Fatal("Node() returned different instances for same name")
	}
	if bus.Node("x").Name() != "x" {
		t.Fatal("bad node name")
	}
}
