package legion

import (
	"fmt"

	"godcdo/internal/naming"
	"godcdo/internal/vault"
)

// Deactivate captures the object's state into the vault and evicts it from
// the node, deregistering its binding: the object goes dormant with no
// running incarnation (Legion's normal resource-reclamation path).
func (n *Node) Deactivate(loid naming.LOID, obj StatefulObject, v vault.Vault) error {
	state, err := obj.CaptureState()
	if err != nil {
		return fmt.Errorf("deactivate %s: capture: %w", loid, err)
	}
	if err := v.Store(loid, state); err != nil {
		return fmt.Errorf("deactivate %s: %w", loid, err)
	}
	if err := n.EvictObject(loid, true); err != nil {
		// Roll the vault entry back so a later activation cannot resurrect
		// a live object's stale state.
		_ = v.Delete(loid)
		return fmt.Errorf("deactivate %s: %w", loid, err)
	}
	return nil
}

// Activate restores a dormant object's state from the vault into a fresh
// incarnation, hosts it on the node, and removes the vault entry. The
// incarnation must already embody the object's implementation (a class
// incarnation for normal objects, an empty configured DCDO for DCDOs —
// whose captured descriptor rebuilds the implementation during restore).
func (n *Node) Activate(loid naming.LOID, incarnation StatefulObject, v vault.Vault) error {
	state, err := v.Load(loid)
	if err != nil {
		return fmt.Errorf("activate %s: %w", loid, err)
	}
	if err := incarnation.RestoreState(state); err != nil {
		return fmt.Errorf("activate %s: restore: %w", loid, err)
	}
	if _, err := n.HostObject(loid, incarnation); err != nil {
		return fmt.Errorf("activate %s: %w", loid, err)
	}
	if err := v.Delete(loid); err != nil {
		return fmt.Errorf("activate %s: cleanup: %w", loid, err)
	}
	return nil
}
