package legion

import (
	"context"

	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godcdo/internal/naming"
	"godcdo/internal/rpc"
	"godcdo/internal/transport"
	"godcdo/internal/vault"
	"godcdo/internal/vclock"
	"godcdo/internal/wire"
)

// counterMethods returns a method table with "inc" and "get" over a counter
// persisted in the state under "n".
func counterMethods() map[string]Method {
	read := func(s *State) uint64 {
		raw, ok := s.Get("n")
		if !ok {
			return 0
		}
		v, _ := wire.NewDecoder(raw).Uvarint()
		return v
	}
	write := func(s *State, v uint64) {
		e := wire.NewEncoder(8)
		e.PutUvarint(v)
		s.Set("n", e.Bytes())
	}
	return map[string]Method{
		"inc": func(s *State, _ []byte) ([]byte, error) {
			write(s, read(s)+1)
			return nil, nil
		},
		"get": func(s *State, _ []byte) ([]byte, error) {
			e := wire.NewEncoder(8)
			e.PutUvarint(read(s))
			return e.Bytes(), nil
		},
	}
}

func getCounter(t *testing.T, client *rpc.Client, loid naming.LOID) uint64 {
	t.Helper()
	out, err := client.Invoke(context.Background(), loid, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := wire.NewDecoder(out).Uvarint()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func newTestNodes(t *testing.T, names ...string) (*naming.Agent, []*Node) {
	t.Helper()
	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	nodes := make([]*Node, len(names))
	for i, name := range names {
		n, err := NewNode(NodeConfig{Name: name, Agent: agent, Inproc: net})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		nodes[i] = n
	}
	return agent, nodes
}

func TestNodeHostAndInvoke(t *testing.T) {
	_, nodes := newTestNodes(t, "n1", "n2")
	n1, n2 := nodes[0], nodes[1]

	alloc := naming.NewAllocator(1, 3)
	class := NewClass("counter", alloc, counterMethods(), 550<<10)
	obj, err := class.CreateInstance(n1)
	if err != nil {
		t.Fatal(err)
	}
	if !n1.Hosts(obj.LOID()) {
		t.Fatal("n1 does not host the new object")
	}

	// Invoke from another node.
	for i := 0; i < 3; i++ {
		if _, err := n2.Client().Invoke(context.Background(), obj.LOID(), "inc", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := getCounter(t, n2.Client(), obj.LOID()); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if _, err := n2.Client().Invoke(context.Background(), obj.LOID(), "nope", nil); !errors.Is(err, rpc.ErrNoSuchFunction) {
		t.Fatalf("err = %v, want ErrNoSuchFunction", err)
	}
}

func TestNormalObjectInterfaceSorted(t *testing.T) {
	obj := NewNormalObject(naming.LOID{Instance: 1}, counterMethods(), 100)
	if got := obj.Interface(); !reflect.DeepEqual(got, []string{"get", "inc"}) {
		t.Fatalf("Interface = %v", got)
	}
	if obj.ExecutableSize != 100 {
		t.Fatalf("ExecutableSize = %d", obj.ExecutableSize)
	}
}

func TestStateEncodeDecodeRoundTrip(t *testing.T) {
	s := NewState()
	s.Set("a", []byte{1, 2})
	s.Set("b", nil)
	s.Set("z", []byte("zzz"))
	s.Delete("b")

	out, err := DecodeState(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("len = %d", out.Len())
	}
	a, ok := out.Get("a")
	if !ok || !reflect.DeepEqual(a, []byte{1, 2}) {
		t.Fatalf("a = %v, %v", a, ok)
	}
	if _, ok := out.Get("b"); ok {
		t.Fatal("deleted key survived round trip")
	}
}

func TestStateGetReturnsCopy(t *testing.T) {
	s := NewState()
	s.Set("k", []byte{1})
	v, _ := s.Get("k")
	v[0] = 9
	v2, _ := s.Get("k")
	if v2[0] != 1 {
		t.Fatal("Get returned aliased storage")
	}
}

func TestDecodeStateCorrupt(t *testing.T) {
	if _, err := DecodeState([]byte{0xff}); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("err = %v, want ErrCorruptState", err)
	}
	e := wire.NewEncoder(8)
	e.PutUvarint(5) // claims five entries, provides none
	if _, err := DecodeState(e.Bytes()); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("err = %v, want ErrCorruptState", err)
	}
}

func TestMigratePreservesStateAndHealsBindings(t *testing.T) {
	_, nodes := newTestNodes(t, "src", "dst")
	src, dst := nodes[0], nodes[1]

	alloc := naming.NewAllocator(1, 3)
	class := NewClass("counter", alloc, counterMethods(), 550<<10)
	obj, err := class.CreateInstance(src)
	if err != nil {
		t.Fatal(err)
	}
	loid := obj.LOID()

	// A client on dst warms its binding cache against the src address.
	agent, ok := src.Agent().(*naming.Agent)
	if !ok {
		t.Fatal("test node should use the in-memory agent")
	}
	client := dst.Client()
	if _, err := client.Invoke(context.Background(), loid, "inc", nil); err != nil {
		t.Fatal(err)
	}

	// Migrate to dst.
	target := class.NewIncarnation(loid)
	if err := Migrate(loid, src, dst, obj, target); err != nil {
		t.Fatal(err)
	}
	if src.Hosts(loid) || !dst.Hosts(loid) {
		t.Fatal("object not moved")
	}
	// State moved with the object; cached binding heals transparently.
	if got := getCounter(t, client, loid); got != 1 {
		t.Fatalf("counter after migration = %d, want 1", got)
	}
	// Incarnation bumped at the agent.
	if inc := agent.Current(loid); inc != 2 {
		t.Fatalf("incarnation = %d, want 2", inc)
	}
}

// Concurrent clients keep invoking through one node's client while the
// object migrates back and forth between two hosts. Invoke must ride out
// every stale binding (including calls landing inside the migration window,
// when the binding agent still names the evicted source) without losing a
// single call. Run under -race.
func TestMigrationStormNoLostCalls(t *testing.T) {
	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	mkNode := func(name string, retry *rpc.RetryPolicy) *Node {
		n, err := NewNode(NodeConfig{Name: name, Agent: agent, Inproc: net, Retry: retry})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		return n
	}
	a := mkNode("host-a", nil)
	b := mkNode("host-b", nil)
	// The client node needs patience for the migration window (when the
	// agent still names the evicted source) but test-fast backoffs.
	cl := mkNode("client", &rpc.RetryPolicy{
		CallTimeout: 2 * time.Second,
		MaxAttempts: 3,
		MaxRebinds:  12,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		Multiplier:  2,
	})

	alloc := naming.NewAllocator(1, 3)
	class := NewClass("counter", alloc, counterMethods(), 550<<10)
	obj, err := class.CreateInstance(a)
	if err != nil {
		t.Fatal(err)
	}
	loid := obj.LOID()

	const (
		workers        = 6
		callsPerWorker = 30
		migrations     = 15
	)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		src, dst := a, b
		cur := StatefulObject(obj)
		for i := 0; i < migrations; i++ {
			target := class.NewIncarnation(loid)
			if err := Migrate(loid, src, dst, cur, target); err != nil {
				t.Errorf("migration %d: %v", i, err)
				return
			}
			cur = target
			src, dst = dst, src
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var failures atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < callsPerWorker; i++ {
				if _, err := cl.Client().Invoke(context.Background(), loid, "get", nil); err != nil {
					failures.Add(1)
					t.Errorf("lost call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d lost calls during migration storm", failures.Load())
	}
	st := cl.Client().Stats()
	if st.Calls != workers*callsPerWorker || st.Errors != 0 {
		t.Fatalf("stats = %+v, want %d clean calls", st, workers*callsPerWorker)
	}
	// Shared-cache invalidation coalescing keeps rebinds near the migration
	// count even with many concurrent callers; the migration window adds at
	// most a handful of same-endpoint re-resolves per migration per caller.
	if int(st.Rebinds) > migrations*(workers+1) {
		t.Fatalf("rebinds = %d, want <= %d", st.Rebinds, migrations*(workers+1))
	}
	t.Logf("migration storm: %d calls, %d rebinds, %d backoffs over %d migrations",
		st.Calls, st.Rebinds, st.Backoffs, migrations)
}

func TestMigrateRestoreFailureRollsBack(t *testing.T) {
	_, nodes := newTestNodes(t, "src", "dst")
	src, dst := nodes[0], nodes[1]

	alloc := naming.NewAllocator(1, 3)
	class := NewClass("counter", alloc, counterMethods(), 1)
	obj, err := class.CreateInstance(src)
	if err != nil {
		t.Fatal(err)
	}
	err = Migrate(obj.LOID(), src, dst, obj, failingRestore{})
	if err == nil {
		t.Fatal("expected restore failure")
	}
	// Rolled back: still hosted at the source.
	if !src.Hosts(obj.LOID()) {
		t.Fatal("object lost after failed migration")
	}
}

type failingRestore struct{}

func (failingRestore) InvokeMethod(string, []byte) ([]byte, error) { return nil, nil }
func (failingRestore) CaptureState() ([]byte, error)               { return nil, nil }
func (failingRestore) RestoreState([]byte) error                   { return errors.New("boom") }

func TestEvictUnknownObject(t *testing.T) {
	_, nodes := newTestNodes(t, "only")
	if err := nodes[0].EvictObject(naming.LOID{Instance: 9}, true); !errors.Is(err, ErrNotHosted) {
		t.Fatalf("err = %v, want ErrNotHosted", err)
	}
}

func TestNodeCloseRejectsHosting(t *testing.T) {
	_, nodes := newTestNodes(t, "closing")
	n := nodes[0]
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.HostObject(naming.LOID{Instance: 1}, NewNormalObject(naming.LOID{Instance: 1}, nil, 0)); !errors.Is(err, ErrNodeClosed) {
		t.Fatalf("err = %v, want ErrNodeClosed", err)
	}
	if err := n.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
}

func TestNodeOverTCP(t *testing.T) {
	agent := naming.NewAgent(vclock.Real{})
	n1, err := NewNode(NodeConfig{Name: "tcp1", Agent: agent})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := NewNode(NodeConfig{Name: "tcp2", Agent: agent})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()

	alloc := naming.NewAllocator(1, 3)
	class := NewClass("counter", alloc, counterMethods(), 1)
	obj, err := class.CreateInstance(n1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Client().Invoke(context.Background(), obj.LOID(), "inc", nil); err != nil {
		t.Fatal(err)
	}
	if got := getCounter(t, n2.Client(), obj.LOID()); got != 1 {
		t.Fatalf("counter over TCP = %d", got)
	}
}

func TestClassInstancesTracked(t *testing.T) {
	_, nodes := newTestNodes(t, "n")
	alloc := naming.NewAllocator(1, 3)
	class := NewClass("counter", alloc, counterMethods(), 1)
	if class.Name() != "counter" || class.ExecutableSize() != 1 {
		t.Fatal("class metadata wrong")
	}
	for i := 0; i < 3; i++ {
		if _, err := class.CreateInstance(nodes[0]); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(class.Instances()); got != 3 {
		t.Fatalf("instances = %d", got)
	}
}

func TestDeactivateActivateThroughVault(t *testing.T) {
	_, nodes := newTestNodes(t, "n1", "n2")
	n1, n2 := nodes[0], nodes[1]
	v := vault.NewMemory()

	class := NewClass("counter", naming.NewAllocator(1, 3), counterMethods(), 1)
	obj, err := class.CreateInstance(n1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Client().Invoke(context.Background(), obj.LOID(), "inc", nil); err != nil {
		t.Fatal(err)
	}

	// Deactivate: the object goes dormant in the vault; its binding is
	// gone entirely.
	if err := n1.Deactivate(obj.LOID(), obj, v); err != nil {
		t.Fatal(err)
	}
	if n1.Hosts(obj.LOID()) {
		t.Fatal("object still hosted after deactivation")
	}
	if loids, _ := v.List(); len(loids) != 1 {
		t.Fatalf("vault = %v", loids)
	}
	n2.Cache().Invalidate(obj.LOID())
	if _, err := n2.Client().Invoke(context.Background(), obj.LOID(), "inc", nil); !errors.Is(err, naming.ErrNotBound) {
		t.Fatalf("call to dormant object err = %v, want ErrNotBound", err)
	}

	// Activate on a different node: state survives, vault entry removed.
	incarnation := class.NewIncarnation(obj.LOID())
	if err := n2.Activate(obj.LOID(), incarnation, v); err != nil {
		t.Fatal(err)
	}
	if got := getCounter(t, n1.Client(), obj.LOID()); got != 1 {
		t.Fatalf("counter after reactivation = %d, want 1", got)
	}
	if loids, _ := v.List(); len(loids) != 0 {
		t.Fatalf("vault not cleaned: %v", loids)
	}
}

func TestActivateMissingEntry(t *testing.T) {
	_, nodes := newTestNodes(t, "n")
	v := vault.NewMemory()
	class := NewClass("c", naming.NewAllocator(1, 3), counterMethods(), 1)
	loid := naming.LOID{Instance: 404}
	err := nodes[0].Activate(loid, class.NewIncarnation(loid), v)
	if !errors.Is(err, vault.ErrNotStored) {
		t.Fatalf("err = %v, want ErrNotStored", err)
	}
}

func TestDeactivateRollsBackVaultOnEvictFailure(t *testing.T) {
	_, nodes := newTestNodes(t, "n")
	v := vault.NewMemory()
	// Object was never hosted: evict fails, and the vault entry written
	// during deactivation must be rolled back.
	obj := NewNormalObject(naming.LOID{Instance: 9}, counterMethods(), 1)
	err := nodes[0].Deactivate(obj.LOID(), obj, v)
	if !errors.Is(err, ErrNotHosted) {
		t.Fatalf("err = %v, want ErrNotHosted", err)
	}
	if loids, _ := v.List(); len(loids) != 0 {
		t.Fatalf("vault entry leaked: %v", loids)
	}
}

func TestNodeAccessors(t *testing.T) {
	_, nodes := newTestNodes(t, "acc")
	n := nodes[0]
	if n.Name() != "acc" {
		t.Fatalf("Name = %q", n.Name())
	}
	if n.Endpoint() != "inproc:acc" {
		t.Fatalf("Endpoint = %q", n.Endpoint())
	}
	if n.Dispatcher() == nil || n.Cache() == nil || n.Clock() == nil {
		t.Fatal("nil accessor")
	}
	if n.HostImpl().Arch != "go" {
		t.Fatalf("HostImpl = %v", n.HostImpl())
	}
}

func TestNormalObjectStateAccessor(t *testing.T) {
	obj := NewNormalObject(naming.LOID{Instance: 1}, counterMethods(), 1)
	obj.State().Set("k", []byte("v"))
	got, ok := obj.State().Get("k")
	if !ok || string(got) != "v" {
		t.Fatalf("state = %q, %v", got, ok)
	}
}

func TestNewNodeRequiresAgent(t *testing.T) {
	if _, err := NewNode(NodeConfig{Name: "x"}); err == nil {
		t.Fatal("node without agent accepted")
	}
}
