// Package legion implements the base distributed-object runtime the DCDO
// model is hosted in: nodes (Legion hosts) that serve objects over real
// transports, class objects that create instances, normal (monolithic)
// objects used as the evolution baseline, and object migration with state
// capture and restore.
package legion

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"godcdo/internal/naming"
	"godcdo/internal/obs"
	"godcdo/internal/policy"
	"godcdo/internal/registry"
	"godcdo/internal/replica"
	"godcdo/internal/rpc"
	"godcdo/internal/transport"
	"godcdo/internal/vclock"
)

// Errors returned by nodes and migration.
var (
	// ErrNotHosted is returned when an operation targets an object the
	// node does not host.
	ErrNotHosted = errors.New("legion: object not hosted on this node")
	// ErrNodeClosed is returned after Close.
	ErrNodeClosed = errors.New("legion: node closed")
)

// NodeConfig assembles a node's dependencies.
type NodeConfig struct {
	// Name is the node's display name (and inproc endpoint name).
	Name string
	// Agent is the domain's binding agent.
	Agent naming.Authority
	// Inproc, when set, serves on the in-process network instead of TCP.
	Inproc *transport.InprocNetwork
	// TCPAddr is the TCP listen address when Inproc is nil. Empty means
	// "127.0.0.1:0".
	TCPAddr string
	// HostImpl is the node's native implementation type.
	HostImpl registry.ImplType
	// Clock defaults to the real clock.
	Clock vclock.Clock
	// CallTimeout overrides the per-attempt timeout of the node's client.
	// Zero keeps the policy's value.
	CallTimeout time.Duration
	// Retry, when non-nil, replaces the client's entire retry policy
	// (rpc.DefaultRetryPolicy otherwise). CallTimeout, if also set, still
	// overrides the policy's per-attempt timeout.
	Retry *rpc.RetryPolicy
	// Obs, when non-nil, wires the node's client, dispatcher, and every
	// hosted object that implements obs.Configurable into the shared
	// observability layer. Nil keeps the seed zero-overhead paths.
	Obs *obs.Obs
	// MaxInflight caps concurrent dispatches on the node's dispatcher;
	// excess requests queue up to QueueDepth and are shed with
	// wire.CodeOverloaded beyond that. Zero leaves admission unlimited.
	MaxInflight int
	// QueueDepth bounds the admission queue when MaxInflight is set.
	QueueDepth int
	// TransportStripes sets the TCP dialer's per-endpoint connection count
	// (calls are spread round-robin). Zero means 1, the pre-striping
	// behaviour.
	TransportStripes int
	// TransportWorkers bounds the TCP server's concurrent handler
	// goroutines, below the dispatcher's admission control (which sheds;
	// this caps goroutine fan-out and applies read-loop backpressure).
	// Zero means unlimited.
	TransportWorkers int
	// DisableTransportFastPath reverts the node's TCP transport to the
	// pre-fast-path behaviour (no frame pooling, no write coalescing) in
	// both directions. Baseline for experiments and an escape hatch.
	DisableTransportFastPath bool
	// BorrowedArgs lets batch sub-call handlers borrow their argument
	// payloads zero-copy from the inbound frame instead of receiving a
	// defensive copy. Requires every hosted handler to not retain args
	// past its return (the frame-pool ownership contract).
	BorrowedArgs bool
	// AdaptiveTransportStripes lets the TCP dialer open extra connection
	// stripes (up to TransportStripes) when observed in-flight load per
	// live connection crosses the growth threshold, instead of only
	// ramping lazily round-robin.
	AdaptiveTransportStripes bool
	// ReplicaFactory, when non-nil, makes the node a placement candidate for
	// the distribution-policy reconciler: a replica-host service is hosted
	// at rpc.ReplicaHostLOID that constructs inner objects via the factory
	// and hosts them as backup replicas on demand.
	ReplicaFactory replica.Factory
	// Policy, when non-nil, is registered with the binding agent for every
	// LOID the node hosts via HostObject (the node's default distribution
	// policy), provided the agent supports policy registration —
	// naming.Agent does, pre-policy authorities are left alone.
	Policy *policy.DistributionPolicy
}

// Node is one Legion host: it serves hosted objects on a transport endpoint
// and provides a client for outbound invocations.
type Node struct {
	name     string
	agent    naming.Authority
	disp     *rpc.Dispatcher
	server   transport.Server
	dialer   transport.Dialer
	client   *rpc.Client
	cache    *naming.Cache
	hostImpl registry.ImplType
	clock    vclock.Clock
	obs      *obs.Obs
	policy   *policy.DistributionPolicy
	rhost    *replica.HostService

	mu     sync.Mutex
	closed bool
}

// PolicyRegistrar is the slice of the binding agent the node's default
// policy publishes through. naming.Agent and rpc.RemoteAgent both satisfy
// it.
type PolicyRegistrar interface {
	RegisterPolicy(loid naming.LOID, pol policy.DistributionPolicy)
}

// NewNode starts a node per cfg.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Agent == nil {
		return nil, errors.New("legion: node requires a binding agent")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = vclock.Real{}
	}
	hostImpl := cfg.HostImpl
	if hostImpl == (registry.ImplType{}) {
		hostImpl = registry.NativeImplType
	}

	disp := rpc.NewDispatcher()
	if cfg.MaxInflight > 0 {
		disp.SetAdmission(cfg.MaxInflight, cfg.QueueDepth)
	}
	disp.BorrowedArgs = cfg.BorrowedArgs
	tcpDialer := transport.NewTCPDialer()
	tcpDialer.Stripes = cfg.TransportStripes
	tcpDialer.AdaptiveStripes = cfg.AdaptiveTransportStripes
	tcpDialer.DisableFastPath = cfg.DisableTransportFastPath
	var (
		server transport.Server
		dialer transport.Dialer
		err    error
	)
	if cfg.Inproc != nil {
		server, err = cfg.Inproc.Listen(cfg.Name, disp)
		if err != nil {
			return nil, fmt.Errorf("legion: node %q: %w", cfg.Name, err)
		}
		dialer = transport.NewMultiDialer(map[transport.Scheme]transport.Dialer{
			transport.SchemeInproc: cfg.Inproc.Dialer(),
			transport.SchemeTCP:    tcpDialer,
		})
	} else {
		addr := cfg.TCPAddr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		server, err = transport.ListenTCPOptions(addr, disp, transport.TCPServerOptions{
			MaxWorkers:      cfg.TransportWorkers,
			DisableFastPath: cfg.DisableTransportFastPath,
		})
		if err != nil {
			return nil, fmt.Errorf("legion: node %q: %w", cfg.Name, err)
		}
		dialer = tcpDialer
	}

	cache := naming.NewCache(cfg.Agent, clock, 0)
	client := rpc.NewClient(cache, dialer)
	if cfg.Retry != nil {
		client.Retry = *cfg.Retry
	}
	if cfg.CallTimeout > 0 {
		client.Retry.CallTimeout = cfg.CallTimeout
	}
	if cfg.Obs != nil {
		client.Tracer = cfg.Obs.Tracer
		client.ObserveStages(cfg.Obs.Metrics)
		if cfg.Obs.Metrics != nil {
			cfg.Obs.Metrics.RegisterCounters("client."+cfg.Name, client.Metrics())
		}
		disp.SetObs(cfg.Obs)
		if reg := cfg.Obs.Metrics; reg != nil {
			ts, _ := server.(*transport.TCPServer)
			if ts != nil {
				prefix := "server." + cfg.Name + "."
				reg.RegisterGaugeFunc(prefix+"accepted_conns", func() int64 {
					return int64(ts.Stats().AcceptedConns)
				})
				reg.RegisterGaugeFunc(prefix+"active_conns", func() int64 {
					return ts.Stats().ActiveConns
				})
				reg.RegisterGaugeFunc(prefix+"decode_errors", func() int64 {
					return int64(ts.Stats().DecodeErrors)
				})
				reg.RegisterGaugeFunc(prefix+"dropped_frames", func() int64 {
					return int64(ts.Stats().DroppedFrames)
				})
			}
			rpc.RegisterTransportMetrics(reg, cfg.Name, tcpDialer, ts)
			if fl := cfg.Obs.GetFlight(); fl != nil {
				prefix := "flight." + cfg.Name + "."
				reg.RegisterGaugeFunc(prefix+"live", func() int64 {
					return int64(fl.Stats().Live)
				})
				reg.RegisterGaugeFunc(prefix+"retained", func() int64 {
					return int64(fl.Stats().Retained)
				})
				reg.RegisterGaugeFunc(prefix+"evicted", func() int64 {
					return int64(fl.Stats().Evicted)
				})
			}
		}
	}
	// Every node answers liveness probes at the well-known health LOID
	// (hosted on the dispatcher only — probers address nodes by endpoint).
	disp.Host(rpc.HealthLOID, rpc.NewHealthService(cfg.Name, clock, disp.Len))
	var rhost *replica.HostService
	if cfg.ReplicaFactory != nil {
		rhost = &replica.HostService{Factory: cfg.ReplicaFactory, Dialer: dialer, Host: disp.Host}
		disp.Host(rpc.ReplicaHostLOID, rhost)
	}
	return &Node{
		name:     cfg.Name,
		agent:    cfg.Agent,
		disp:     disp,
		server:   server,
		dialer:   dialer,
		client:   client,
		cache:    cache,
		hostImpl: hostImpl,
		clock:    clock,
		obs:      cfg.Obs,
		policy:   cfg.Policy,
		rhost:    rhost,
	}, nil
}

// ReplicaHost returns the node's replica-host service, nil when the node
// was configured without a ReplicaFactory.
func (n *Node) ReplicaHost() *replica.HostService { return n.rhost }

// Obs returns the node's observability handle, nil when disabled.
func (n *Node) Obs() *obs.Obs { return n.obs }

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Endpoint returns the node's dialable endpoint.
func (n *Node) Endpoint() string { return n.server.Endpoint() }

// Client returns the node's outbound invocation client.
func (n *Node) Client() *rpc.Client { return n.client }

// Cache returns the node's binding cache.
func (n *Node) Cache() *naming.Cache { return n.cache }

// Agent returns the domain's binding authority.
func (n *Node) Agent() naming.Authority { return n.agent }

// Dispatcher returns the node's object dispatcher.
func (n *Node) Dispatcher() *rpc.Dispatcher { return n.disp }

// HostImpl returns the node's native implementation type.
func (n *Node) HostImpl() registry.ImplType { return n.hostImpl }

// Clock returns the node's clock.
func (n *Node) Clock() vclock.Clock { return n.clock }

// HostObject activates obj at loid on this node and registers the binding,
// bumping the incarnation.
func (n *Node) HostObject(loid naming.LOID, obj rpc.Object) (naming.Address, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return naming.Address{}, ErrNodeClosed
	}
	n.mu.Unlock()
	if n.obs != nil {
		if c, ok := obj.(obs.Configurable); ok {
			c.SetObs(n.obs)
		}
	}
	n.disp.Host(loid, obj)
	addr := n.agent.Register(loid, naming.Address{Endpoint: n.server.Endpoint()})
	if n.policy != nil {
		if pr, ok := n.agent.(PolicyRegistrar); ok {
			pr.RegisterPolicy(loid, *n.policy)
		}
	}
	return addr, nil
}

// HostInfraService hosts an infrastructure service at a well-known LOID on
// the node's dispatcher only — never registered with the binding agent,
// mirroring how the health and obs services are reached: callers address
// the node by endpoint, not by binding lookup. The object picks up the
// node's observability handle when it is Configurable.
func (n *Node) HostInfraService(loid naming.LOID, obj rpc.Object) {
	if n.obs != nil {
		if c, ok := obj.(obs.Configurable); ok {
			c.SetObs(n.obs)
		}
	}
	n.disp.Host(loid, obj)
}

// EvictObject deactivates loid on this node. When deregister is set the
// binding agent forgets the object entirely (destruction); otherwise the
// binding is left stale (crash / pre-migration), which is what clients then
// discover the hard way.
func (n *Node) EvictObject(loid naming.LOID, deregister bool) error {
	if !n.disp.Hosted(loid) {
		return fmt.Errorf("%w: %s on %s", ErrNotHosted, loid, n.name)
	}
	n.disp.Evict(loid)
	if deregister {
		n.agent.Deregister(loid)
	}
	return nil
}

// Hosts reports whether the node currently hosts loid.
func (n *Node) Hosts(loid naming.LOID) bool { return n.disp.Hosted(loid) }

// Close stops serving and releases the client's connections.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	err := n.server.Close()
	if derr := n.dialer.Close(); err == nil {
		err = derr
	}
	return err
}

// StatefulObject is implemented by objects whose state can be captured and
// restored — the object-mandatory interface Legion requires for migration
// and for the baseline evolution pipeline.
type StatefulObject interface {
	rpc.Object
	// CaptureState serialises the object's state.
	CaptureState() ([]byte, error)
	// RestoreState reinstates previously captured state.
	RestoreState([]byte) error
}

// Migrate moves a stateful object from one node to another: capture state,
// deactivate at the source, restore into target (a fresh incarnation of the
// object's implementation on the destination), activate, and re-register
// the binding. Clients' cached bindings become stale and heal on their next
// call.
func Migrate(loid naming.LOID, src, dst *Node, obj StatefulObject, target StatefulObject) error {
	state, err := obj.CaptureState()
	if err != nil {
		return fmt.Errorf("migrate %s: capture: %w", loid, err)
	}
	if err := src.EvictObject(loid, false); err != nil {
		return fmt.Errorf("migrate %s: %w", loid, err)
	}
	if err := target.RestoreState(state); err != nil {
		// Roll back: reactivate at the source.
		if _, herr := src.HostObject(loid, obj); herr != nil {
			return errors.Join(
				fmt.Errorf("migrate %s: restore: %w", loid, err),
				fmt.Errorf("migrate %s: rollback failed: %w", loid, herr),
			)
		}
		return fmt.Errorf("migrate %s: restore: %w", loid, err)
	}
	if _, err := dst.HostObject(loid, target); err != nil {
		return fmt.Errorf("migrate %s: activate on %s: %w", loid, dst.Name(), err)
	}
	return nil
}
