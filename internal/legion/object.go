package legion

import (
	"fmt"
	"sort"
	"sync"

	"godcdo/internal/naming"
	"godcdo/internal/objstate"
	"godcdo/internal/rpc"
)

// Method is one entry of a normal object's static method table.
type Method func(state *State, args []byte) ([]byte, error)

// State is the serialisable key/value state objects carry (see package
// objstate). Both normal objects and DCDOs use the same container, which is
// what lets the baseline comparison capture and restore identical data.
type State = objstate.State

// NewState returns an empty state.
func NewState() *State { return objstate.New() }

// ErrCorruptState is returned when captured state cannot be decoded.
var ErrCorruptState = objstate.ErrCorrupt

// DecodeState parses state produced by State.Encode.
func DecodeState(buf []byte) (*State, error) { return objstate.Decode(buf) }

// NormalObject is a traditional Legion object: its behaviour is a static
// monolithic method table fixed at build time. It is the baseline the paper
// compares DCDOs against — changing its implementation requires the full
// replace-the-executable pipeline in package baseline.
type NormalObject struct {
	loid    naming.LOID
	methods map[string]Method
	state   *State
	// ExecutableSize models the monolithic binary's size; the baseline
	// evolution pipeline downloads this many bytes.
	ExecutableSize int64
}

var (
	_ rpc.Object     = (*NormalObject)(nil)
	_ StatefulObject = (*NormalObject)(nil)
)

// NewNormalObject builds a normal object over the given method table.
func NewNormalObject(loid naming.LOID, methods map[string]Method, executableSize int64) *NormalObject {
	copied := make(map[string]Method, len(methods))
	for name, m := range methods {
		copied[name] = m
	}
	return &NormalObject{
		loid:           loid,
		methods:        copied,
		state:          NewState(),
		ExecutableSize: executableSize,
	}
}

// LOID returns the object's name.
func (o *NormalObject) LOID() naming.LOID { return o.loid }

// State exposes the object's mutable state.
func (o *NormalObject) State() *State { return o.state }

// Interface returns the sorted method names.
func (o *NormalObject) Interface() []string {
	names := make([]string, 0, len(o.methods))
	for name := range o.methods {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// InvokeMethod implements rpc.Object. Unlike a DCDO there is no DFM: the
// method table is immutable, so dispatch is a single map lookup.
func (o *NormalObject) InvokeMethod(method string, args []byte) ([]byte, error) {
	m, ok := o.methods[method]
	if !ok {
		return nil, fmt.Errorf("%q: %w", method, rpc.ErrNoSuchFunction)
	}
	return m(o.state, args)
}

// CaptureState implements StatefulObject.
func (o *NormalObject) CaptureState() ([]byte, error) {
	return o.state.Encode(), nil
}

// RestoreState implements StatefulObject.
func (o *NormalObject) RestoreState(buf []byte) error {
	s, err := DecodeState(buf)
	if err != nil {
		return err
	}
	o.state = s
	return nil
}

// Class is a Legion class object for normal objects: it holds the type's
// executable metadata and creates instances on nodes.
type Class struct {
	name     string
	alloc    *naming.Allocator
	methods  map[string]Method
	execSize int64

	mu        sync.Mutex
	instances map[naming.LOID]*NormalObject
}

// NewClass returns a class creating objects with the given method table and
// modelled executable size.
func NewClass(name string, alloc *naming.Allocator, methods map[string]Method, execSize int64) *Class {
	copied := make(map[string]Method, len(methods))
	for n, m := range methods {
		copied[n] = m
	}
	return &Class{
		name:      name,
		alloc:     alloc,
		methods:   copied,
		execSize:  execSize,
		instances: make(map[naming.LOID]*NormalObject),
	}
}

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// ExecutableSize returns the class's modelled executable size.
func (c *Class) ExecutableSize() int64 { return c.execSize }

// CreateInstance allocates a LOID, instantiates the object, and hosts it on
// node.
func (c *Class) CreateInstance(node *Node) (*NormalObject, error) {
	loid := c.alloc.Next()
	obj := NewNormalObject(loid, c.methods, c.execSize)
	if _, err := node.HostObject(loid, obj); err != nil {
		return nil, fmt.Errorf("class %s: %w", c.name, err)
	}
	c.mu.Lock()
	c.instances[loid] = obj
	c.mu.Unlock()
	return obj, nil
}

// NewIncarnation builds a fresh (empty-state) instance of the class's
// implementation for loid without hosting it — the "new process" the
// baseline evolution pipeline starts.
func (c *Class) NewIncarnation(loid naming.LOID) *NormalObject {
	return NewNormalObject(loid, c.methods, c.execSize)
}

// Instances returns the LOIDs of created instances, sorted.
func (c *Class) Instances() []naming.LOID {
	c.mu.Lock()
	out := make([]naming.LOID, 0, len(c.instances))
	for loid := range c.instances {
		out = append(out, loid)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
