// Package demo assembles the demo deployment dcdo-node serves and tests
// drive: a pricing DCDO (flat v1, bulk-discount v1.1), the ICOs holding its
// two component revisions, and a proactive manager with both versions
// instantiable. The manager runs the multi-version increasing style so a
// rollout supervisor can canary 1.1 beside instances still on 1
// (single-version would deny any instance leaving the designated version).
package demo

import (
	"context"
	"fmt"

	"godcdo/internal/component"
	"godcdo/internal/core"
	"godcdo/internal/dfm"
	"godcdo/internal/evolution"
	"godcdo/internal/legion"
	"godcdo/internal/manager"
	"godcdo/internal/naming"
	"godcdo/internal/registry"
	"godcdo/internal/rpc"
	"godcdo/internal/version"
	"godcdo/internal/wire"
)

// Well-known LOIDs of the demo deployment (domain 0 is infrastructure).
var (
	// ManagerLOID names the demo DCDO Manager.
	ManagerLOID = naming.LOID{Domain: 0, Class: 2, Instance: 1}
	// PricingLOID names the demo pricing DCDO.
	PricingLOID = naming.LOID{Domain: 1, Class: 1, Instance: 1}
	// ICOV1LOID and ICOV2LOID name the ICOs holding the two pricing
	// component revisions.
	ICOV1LOID = naming.LOID{Domain: 1, Class: 9, Instance: 1}
	ICOV2LOID = naming.LOID{Domain: 1, Class: 9, Instance: 2}
)

// Deployment holds the assembled demo objects.
type Deployment struct {
	Manager *manager.Manager
	Pricing *core.DCDO
}

// Install publishes the demo deployment on node: both ICOs, the pricing
// DCDO at version 1, and the manager (with version 1.1 instantiable, ready
// to activate).
func Install(node *legion.Node) (*Deployment, error) {
	reg := registry.New()
	if _, err := reg.Register("pricing-v1:1", registry.NativeImplType, map[string]registry.Func{
		"price": PriceFunc(100, 0),
	}); err != nil {
		return nil, err
	}
	if _, err := reg.Register("pricing-v2:1", registry.NativeImplType, map[string]registry.Func{
		"price": PriceFunc(100, 20),
	}); err != nil {
		return nil, err
	}

	mkComp := func(id, ref string) (*component.Component, error) {
		return component.NewSynthetic(component.Descriptor{
			ID: id, Revision: 1, CodeRef: ref,
			Impl: registry.NativeImplType, CodeSize: 550 << 10,
			Functions: []component.FunctionDecl{{Name: "price", Exported: true}},
		})
	}
	compV1, err := mkComp("pricing-v1", "pricing-v1:1")
	if err != nil {
		return nil, err
	}
	compV2, err := mkComp("pricing-v2", "pricing-v2:1")
	if err != nil {
		return nil, err
	}
	if _, err := node.HostObject(ICOV1LOID, component.NewICO(compV1)); err != nil {
		return nil, err
	}
	if _, err := node.HostObject(ICOV2LOID, component.NewICO(compV2)); err != nil {
		return nil, err
	}

	fetcher := &component.CachingFetcher{
		Store:   component.NewStore(),
		Backing: &component.RemoteFetcher{Client: node.Client()},
	}
	obj := core.New(core.Config{
		LOID:     PricingLOID,
		Registry: reg,
		Fetcher:  fetcher,
	})

	mgr := manager.New(evolution.MultiIncreasing, evolution.Proactive)
	// Wire observability before any configuration so instance creation and
	// version designation are captured too (HostObject would only wire from
	// hosting time onward).
	if o := node.Obs(); o != nil {
		obj.SetObs(o)
		mgr.SetObs(o)
	}
	rootDesc := dfm.NewDescriptor()
	rootDesc.Components["pricing-v1"] = dfm.ComponentRef{
		ICO: ICOV1LOID, CodeRef: "pricing-v1:1", Impl: registry.NativeImplType,
		CodeSize: 550 << 10, Revision: 1,
	}
	rootDesc.Entries = []dfm.EntryDesc{
		{Function: "price", Component: "pricing-v1", Exported: true, Enabled: true},
	}
	root, err := mgr.Store().CreateRoot(rootDesc)
	if err != nil {
		return nil, err
	}
	if err := mgr.Store().MarkInstantiable(root); err != nil {
		return nil, err
	}
	if err := mgr.SetCurrentVersion(context.Background(), root); err != nil {
		return nil, err
	}

	child, err := mgr.Store().Derive(root)
	if err != nil {
		return nil, err
	}
	err = mgr.Store().Configure(child, func(d *dfm.Descriptor) error {
		d.Components["pricing-v2"] = dfm.ComponentRef{
			ICO: ICOV2LOID, CodeRef: "pricing-v2:1", Impl: registry.NativeImplType,
			CodeSize: 550 << 10, Revision: 1,
		}
		d.Entry(dfm.EntryKey{Function: "price", Component: "pricing-v1"}).Enabled = false
		d.Entries = append(d.Entries, dfm.EntryDesc{
			Function: "price", Component: "pricing-v2", Exported: true, Enabled: true,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := mgr.Store().MarkInstantiable(child); err != nil {
		return nil, err
	}

	if err := mgr.CreateInstance(context.Background(), manager.LocalInstance{Obj: obj}, version.ID{1}, registry.NativeImplType); err != nil {
		return nil, err
	}
	if _, err := node.HostObject(PricingLOID, obj); err != nil {
		return nil, err
	}
	if _, err := node.HostObject(ManagerLOID, &manager.Object{Mgr: mgr}); err != nil {
		return nil, err
	}
	return &Deployment{Manager: mgr, Pricing: obj}, nil
}

// PriceFunc builds a pricing implementation charging unitPrice per unit
// with discountPct off above 10 units. Arguments carry the quantity as a
// uvarint; the result is the total as a uvarint.
func PriceFunc(unitPrice, discountPct uint64) registry.Func {
	return func(_ registry.Caller, args []byte) ([]byte, error) {
		qty, err := wire.NewDecoder(args).Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: quantity: %v", rpc.ErrBadRequest, err)
		}
		total := qty * unitPrice
		if qty > 10 && discountPct > 0 {
			total = total * (100 - discountPct) / 100
		}
		e := wire.NewEncoder(8)
		e.PutUvarint(total)
		return e.Bytes(), nil
	}
}
