package integration_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"godcdo/internal/component"
	"godcdo/internal/core"
	"godcdo/internal/dfm"
	"godcdo/internal/legion"
	"godcdo/internal/manager"
	"godcdo/internal/naming"
	"godcdo/internal/obs"
	"godcdo/internal/registry"
	"godcdo/internal/rpc"
	"godcdo/internal/transport"
	"godcdo/internal/vclock"
	"godcdo/internal/version"
	"godcdo/internal/wire"
)

// hasEvent reports whether the node's event log holds an event of kind.
func hasEvent(o *obs.Obs, kind string) bool {
	for _, ev := range o.GetEvents().Recent(128) {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}

// waitUntil polls cond for up to 3 s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestExpiredRequestRejectedBeforeDispatchOverTCP sends a request over real
// TCP whose propagated deadline already passed: the server must reject it
// with CodeExpired before the DCDO runs anything, and record the outcome in
// its obs layer.
func TestExpiredRequestRejectedBeforeDispatchOverTCP(t *testing.T) {
	localAgent := naming.NewAgent(vclock.Real{})
	node, err := legion.NewNode(legion.NodeConfig{Name: "srv", Agent: localAgent, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	var executions atomic.Int64
	reg := registry.New()
	if _, err := reg.Register("count:1", registry.NativeImplType, map[string]registry.Func{
		"get": func(registry.Caller, []byte) ([]byte, error) {
			executions.Add(1)
			return []byte("ran"), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	comp, err := component.NewSynthetic(component.Descriptor{
		ID: "count", Revision: 1, CodeRef: "count:1",
		Impl: registry.AnyImplType, CodeSize: 4 << 10,
		Functions: []component.FunctionDecl{{Name: "get", Exported: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	icoLOID := naming.LOID{Domain: 7, Class: 9, Instance: 1}
	if _, err := node.HostObject(icoLOID, component.NewICO(comp)); err != nil {
		t.Fatal(err)
	}

	objLOID := naming.LOID{Domain: 7, Class: 1, Instance: 1}
	obj := core.New(core.Config{LOID: objLOID, Registry: reg, Fetcher: remoteFetcher(node)})
	desc := dfm.NewDescriptor()
	desc.Components["count"] = dfm.ComponentRef{ICO: icoLOID, CodeRef: "count:1", Impl: registry.AnyImplType, CodeSize: 4 << 10, Revision: 1}
	desc.Entries = []dfm.EntryDesc{{Function: "get", Component: "count", Exported: true, Enabled: true}}
	if _, err := obj.ApplyDescriptor(context.Background(), desc, version.ID{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := node.HostObject(objLOID, obj); err != nil {
		t.Fatal(err)
	}

	// A live control: the same request with a valid deadline executes.
	d := transport.NewTCPDialer()
	defer d.Close()
	fresh := &wire.Envelope{Kind: wire.KindRequest, ID: 1, Target: objLOID.String(),
		Method: "get", Deadline: time.Now().Add(2 * time.Second).UnixNano()}
	resp, err := d.Call(context.Background(), node.Endpoint(), fresh, 2*time.Second)
	if err != nil || resp.Kind != wire.KindResponse {
		t.Fatalf("fresh request: %+v, %v", resp, err)
	}
	if executions.Load() != 1 {
		t.Fatalf("executions = %d after a live request, want 1", executions.Load())
	}

	// The expired request must be refused before dispatch: no execution.
	stale := &wire.Envelope{Kind: wire.KindRequest, ID: 2, Target: objLOID.String(),
		Method: "get", Deadline: time.Now().Add(-time.Second).UnixNano()}
	resp, err = d.Call(context.Background(), node.Endpoint(), stale, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != wire.KindError || resp.Code != wire.CodeExpired {
		t.Fatalf("stale request: kind=%s code=%d, want error/CodeExpired", resp.Kind, resp.Code)
	}
	if executions.Load() != 1 {
		t.Fatalf("expired request executed (executions = %d)", executions.Load())
	}
	if st := node.Dispatcher().Stats(); st.ExpiredOnArrival != 1 {
		t.Fatalf("stats = %+v, want ExpiredOnArrival=1", st)
	}
	if !hasEvent(node.Obs(), "request-expired") {
		t.Fatal("no request-expired event recorded")
	}
}

// blockingFetcher delegates to Backing except for Block, whose fetch parks
// until the caller's context ends — a stand-in for a slow component
// download that the propagated deadline must be able to abort.
type blockingFetcher struct {
	Backing component.Fetcher
	Block   naming.LOID
	blocked atomic.Int64
}

func (f *blockingFetcher) Fetch(ctx context.Context, ico naming.LOID) (*component.Component, error) {
	if ico == f.Block {
		f.blocked.Add(1)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return f.Backing.Fetch(ctx, ico)
}

// TestCancellationAbortsEvolutionBetweenStagesOverTCP drives a remote
// ApplyDescriptor whose component fetch outlives the caller's deadline: the
// propagated deadline must abort the apply at a stage boundary (the object
// keeps its old version — no partial configuration), and the server must
// record the mid-dispatch cancellation.
func TestCancellationAbortsEvolutionBetweenStagesOverTCP(t *testing.T) {
	g := newGreeterType(t)

	localAgent := naming.NewAgent(vclock.Real{})
	infra, err := legion.NewNode(legion.NodeConfig{Name: "infra", Agent: localAgent})
	if err != nil {
		t.Fatal(err)
	}
	defer infra.Close()
	if _, err := infra.HostObject(rpc.AgentLOID, &rpc.AgentService{Agent: localAgent}); err != nil {
		t.Fatal(err)
	}
	g.hostICOs(t, infra)

	remote := &rpc.RemoteAgent{Dialer: transport.NewTCPDialer(), Endpoint: infra.Endpoint(), Timeout: 2 * time.Second}
	server, err := legion.NewNode(legion.NodeConfig{
		Name: "server", Agent: remote, CallTimeout: 2 * time.Second, Obs: obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	// Version 1.1 adds a component whose ICO is never reachable: its fetch
	// blocks until the dispatch context ends.
	slowICO := naming.LOID{Domain: 1, Class: 9, Instance: 3}
	fetcher := &blockingFetcher{Backing: remoteFetcher(server), Block: slowICO}
	objLOID := naming.LOID{Domain: 1, Class: 1, Instance: 7}
	obj := core.New(core.Config{LOID: objLOID, Registry: g.reg, Fetcher: fetcher})
	if _, err := obj.ApplyDescriptor(context.Background(), g.descriptor("greet-en"), version.ID{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.HostObject(objLOID, obj); err != nil {
		t.Fatal(err)
	}

	desc11 := g.descriptor("greet-en")
	desc11.Components["greet-de"] = dfm.ComponentRef{ICO: slowICO, CodeRef: "greet-de:1", Impl: registry.AnyImplType, CodeSize: 8 << 10, Revision: 1}
	desc11.Entries = append(desc11.Entries, dfm.EntryDesc{Function: "greet", Component: "greet-de", Exported: true})

	// The admin applies 1.1 remotely under a short deadline; the fetch of
	// greet-de outlives it.
	client, err := legion.NewNode(legion.NodeConfig{Name: "admin", Agent: remote, CallTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ri := manager.RemoteInstance{Client: client.Client(), Target: objLOID}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := ri.Apply(ctx, desc11, version.ID{1, 1}); err == nil {
		t.Fatal("apply with an expiring deadline succeeded")
	}

	// The fetch was actually reached and aborted by the propagated deadline.
	waitUntil(t, "blocked fetch", func() bool { return fetcher.blocked.Load() >= 1 })
	// The server noticed the cancellation mid-dispatch…
	waitUntil(t, "cancelled dispatch stat", func() bool {
		return server.Dispatcher().Stats().Cancelled >= 1
	})
	if !hasEvent(server.Obs(), "dispatch-cancelled") {
		t.Fatal("no dispatch-cancelled event recorded")
	}
	// …and the object aborted between stages: still fully on version 1.
	if got := obj.Version(); !got.Equal(version.ID{1}) {
		t.Fatalf("version = %v after aborted apply, want 1", got)
	}
	out, err := obj.InvokeMethod("greet", nil)
	if err != nil || string(out) != "hello" {
		t.Fatalf("object unusable after aborted apply: %q, %v", out, err)
	}
}
