package integration_test

import (
	"context"

	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godcdo/internal/core"
	"godcdo/internal/dfm"
	"godcdo/internal/legion"
	"godcdo/internal/naming"
	"godcdo/internal/rpc"
	"godcdo/internal/transport"
	"godcdo/internal/vclock"
	"godcdo/internal/version"
)

// TestStressEvolutionUnderTraffic runs sustained concurrent load against a
// DCDO while a configurator continuously swaps implementations and applies
// whole-descriptor evolutions, then migrates the object mid-storm. The
// invariants: no hard failures other than the transient disabled/rebind
// classes §3.2 requires callers to tolerate, every success returns one of
// the two legal answers, and the object ends the storm healthy.
func TestStressEvolutionUnderTraffic(t *testing.T) {
	g := newGreeterType(t)
	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	mkNode := func(name string) *legion.Node {
		n, err := legion.NewNode(legion.NodeConfig{Name: name, Agent: agent, Inproc: net})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		return n
	}
	n1 := mkNode("s1")
	n2 := mkNode("s2")
	icoHost := mkNode("icos")
	g.hostICOs(t, icoHost)

	objLOID := naming.LOID{Domain: 1, Class: 1, Instance: 50}
	obj := core.New(core.Config{LOID: objLOID, Registry: g.reg, Fetcher: remoteFetcher(n1)})
	if _, err := obj.ApplyDescriptor(context.Background(), g.descriptor("greet-en"), version.ID{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.HostObject(objLOID, obj); err != nil {
		t.Fatal(err)
	}

	const clients = 6
	duration := 700 * time.Millisecond
	if testing.Short() {
		duration = 150 * time.Millisecond
	}

	var (
		stop      = make(chan struct{})
		wg        sync.WaitGroup
		calls     atomic.Uint64
		transient atomic.Uint64
		hardFail  atomic.Uint64
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := mkNodeClient(t, agent, net, i)
			for {
				select {
				case <-stop:
					return
				default:
				}
				out, err := client.Invoke(context.Background(), objLOID, "greet", nil)
				calls.Add(1)
				if err != nil {
					if errors.Is(err, rpc.ErrFunctionDisabled) || errors.Is(err, rpc.ErrNoSuchObject) {
						transient.Add(1)
						continue
					}
					hardFail.Add(1)
					t.Errorf("hard failure: %v", err)
					return
				}
				if s := string(out); s != "hello" && s != "bonjour" {
					hardFail.Add(1)
					t.Errorf("corrupt response %q", s)
					return
				}
			}
		}(c)
	}

	// Configurator: alternate between single-function swaps and
	// whole-descriptor evolutions.
	deadline := time.Now().Add(duration)
	cur := obj
	enabled := "greet-en"
	round := uint32(1)
	for time.Now().Before(deadline) {
		next := "greet-fr"
		if enabled == "greet-fr" {
			next = "greet-en"
		}
		if round%2 == 0 {
			if err := cur.DisableFunction(dfm.EntryKey{Function: "greet", Component: enabled}); err != nil {
				t.Fatalf("disable: %v", err)
			}
			if err := cur.EnableFunction(dfm.EntryKey{Function: "greet", Component: next}); err != nil {
				t.Fatalf("enable: %v", err)
			}
		} else {
			round++
			if _, err := cur.ApplyDescriptor(context.Background(), g.descriptor(next), version.ID{1, round}); err != nil {
				t.Fatalf("apply: %v", err)
			}
		}
		enabled = next
		round++
	}

	// Migrate mid-storm.
	target := core.New(core.Config{LOID: objLOID, Registry: g.reg, Fetcher: remoteFetcher(n2)})
	if err := legion.Migrate(objLOID, n1, n2, cur, target); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	time.Sleep(50 * time.Millisecond) // let traffic heal and keep flowing
	close(stop)
	wg.Wait()

	if hardFail.Load() > 0 {
		t.Fatalf("%d hard failures out of %d calls", hardFail.Load(), calls.Load())
	}
	if calls.Load() == 0 {
		t.Fatal("no traffic generated")
	}
	// Post-storm health check.
	out, err := n1.Client().Invoke(context.Background(), objLOID, "greet", nil)
	if err != nil {
		t.Fatalf("post-storm invoke: %v", err)
	}
	if s := string(out); s != "hello" && s != "bonjour" {
		t.Fatalf("post-storm response %q", s)
	}
	t.Logf("storm: %d calls, %d transient (disabled/rebinding), 0 hard failures",
		calls.Load(), transient.Load())
}

// mkNodeClient builds an isolated client (own cache) on the shared network.
func mkNodeClient(t *testing.T, agent *naming.Agent, net *transport.InprocNetwork, i int) *rpc.Client {
	t.Helper()
	cache := naming.NewCache(agent, vclock.Real{}, 0)
	client := rpc.NewClient(cache, net.Dialer())
	client.Retry.CallTimeout = 2 * time.Second
	client.Retry.MaxRebinds = 4
	client.Retry.BaseBackoff = time.Millisecond
	client.Retry.MaxBackoff = 10 * time.Millisecond
	return client
}
