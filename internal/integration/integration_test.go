// Package integration_test drives whole-system scenarios across the real
// stack: TCP transports, remote binding agents, remote managers, DCDO
// evolution under live traffic, and DCDO migration between heterogeneous
// hosts.
package integration_test

import (
	"context"

	"errors"
	"fmt"
	"testing"
	"time"

	"godcdo/internal/component"
	"godcdo/internal/core"
	"godcdo/internal/dfm"
	"godcdo/internal/evolution"
	"godcdo/internal/legion"
	"godcdo/internal/manager"
	"godcdo/internal/naming"
	"godcdo/internal/registry"
	"godcdo/internal/rpc"
	"godcdo/internal/transport"
	"godcdo/internal/vault"
	"godcdo/internal/vclock"
	"godcdo/internal/version"
	"godcdo/internal/wire"
)

// compile-time check: a DCDO is a legion.StatefulObject, so the generic
// migration path applies to it.
var _ legion.StatefulObject = (*core.DCDO)(nil)

// greeterType bundles a registry and two greet components (en, fr) with
// their ICO LOIDs, served by whichever node hosts the ICOs.
type greeterType struct {
	reg    *registry.Registry
	icoEN  naming.LOID
	icoFR  naming.LOID
	compEN *component.Component
	compFR *component.Component
}

func newGreeterType(t *testing.T) *greeterType {
	t.Helper()
	g := &greeterType{
		reg:   registry.New(),
		icoEN: naming.LOID{Domain: 1, Class: 9, Instance: 1},
		icoFR: naming.LOID{Domain: 1, Class: 9, Instance: 2},
	}
	register := func(ref, msg string, impl registry.ImplType) {
		t.Helper()
		_, err := g.reg.Register(ref, impl, map[string]registry.Func{
			"greet": func(registry.Caller, []byte) ([]byte, error) { return []byte(msg), nil },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	register("greet-en:1", "hello", registry.NativeImplType)
	register("greet-fr:1", "bonjour", registry.NativeImplType)

	mk := func(id, ref string) *component.Component {
		t.Helper()
		c, err := component.NewSynthetic(component.Descriptor{
			ID: id, Revision: 1, CodeRef: ref,
			Impl: registry.AnyImplType, CodeSize: 8 << 10,
			Functions: []component.FunctionDecl{{Name: "greet", Exported: true}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	g.compEN = mk("greet-en", "greet-en:1")
	g.compFR = mk("greet-fr", "greet-fr:1")
	return g
}

// descriptor builds the two-component descriptor enabling the named one.
func (g *greeterType) descriptor(enabled string) *dfm.Descriptor {
	d := dfm.NewDescriptor()
	d.Components["greet-en"] = dfm.ComponentRef{ICO: g.icoEN, CodeRef: "greet-en:1", Impl: registry.AnyImplType, CodeSize: 8 << 10, Revision: 1}
	d.Components["greet-fr"] = dfm.ComponentRef{ICO: g.icoFR, CodeRef: "greet-fr:1", Impl: registry.AnyImplType, CodeSize: 8 << 10, Revision: 1}
	d.Entries = []dfm.EntryDesc{
		{Function: "greet", Component: "greet-en", Exported: true, Enabled: enabled == "greet-en"},
		{Function: "greet", Component: "greet-fr", Exported: true, Enabled: enabled == "greet-fr"},
	}
	return d
}

// hostICOs serves the components' ICOs on node.
func (g *greeterType) hostICOs(t *testing.T, node *legion.Node) {
	t.Helper()
	if _, err := node.HostObject(g.icoEN, component.NewICO(g.compEN)); err != nil {
		t.Fatal(err)
	}
	if _, err := node.HostObject(g.icoFR, component.NewICO(g.compFR)); err != nil {
		t.Fatal(err)
	}
}

// remoteFetcher returns a fetcher that downloads components over RPC
// through the node's client.
func remoteFetcher(node *legion.Node) component.Fetcher {
	return &component.CachingFetcher{
		Store:   component.NewStore(),
		Backing: &component.RemoteFetcher{Client: node.Client()},
	}
}

// TestFullDeploymentOverTCP builds the complete multi-"process" topology
// with only TCP between the pieces: the agent service and ICOs on an infra
// node, a manager exposed remotely, a DCDO on a server node that downloads
// its components over RPC, and a client that drives evolution through the
// remote manager.
func TestFullDeploymentOverTCP(t *testing.T) {
	g := newGreeterType(t)

	// Infra node owns the in-memory agent and serves it + the ICOs.
	localAgent := naming.NewAgent(vclock.Real{})
	infra, err := legion.NewNode(legion.NodeConfig{Name: "infra", Agent: localAgent})
	if err != nil {
		t.Fatal(err)
	}
	defer infra.Close()
	if _, err := infra.HostObject(rpc.AgentLOID, &rpc.AgentService{Agent: localAgent}); err != nil {
		t.Fatal(err)
	}
	g.hostICOs(t, infra)

	// Every other node reaches the agent remotely over TCP.
	newRemoteNode := func(name string) *legion.Node {
		t.Helper()
		remote := &rpc.RemoteAgent{
			Dialer:   transport.NewTCPDialer(),
			Endpoint: infra.Endpoint(),
			Timeout:  2 * time.Second,
		}
		n, err := legion.NewNode(legion.NodeConfig{Name: name, Agent: remote, CallTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		return n
	}
	server := newRemoteNode("server")
	clientNode := newRemoteNode("client")

	// Manager on the infra node, exposed remotely.
	mgr := manager.New(evolution.SingleVersion, evolution.Explicit)
	root, err := mgr.Store().CreateRoot(g.descriptor("greet-en"))
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Store().MarkInstantiable(root); err != nil {
		t.Fatal(err)
	}
	if err := mgr.SetCurrentVersion(context.Background(), root); err != nil {
		t.Fatal(err)
	}
	mgrLOID := naming.LOID{Domain: 0, Class: 2, Instance: 1}
	if _, err := infra.HostObject(mgrLOID, &manager.Object{Mgr: mgr}); err != nil {
		t.Fatal(err)
	}

	// The DCDO lives on the server node and downloads its components from
	// the infra node's ICOs over TCP.
	objLOID := naming.LOID{Domain: 1, Class: 1, Instance: 1}
	obj := core.New(core.Config{
		LOID:     objLOID,
		Registry: g.reg,
		Fetcher:  remoteFetcher(server),
	})
	if _, err := server.HostObject(objLOID, obj); err != nil {
		t.Fatal(err)
	}
	// The manager manages it through a remote proxy (itself over TCP).
	ri := manager.RemoteInstance{Client: infra.Client(), Target: objLOID}
	if err := mgr.CreateInstance(context.Background(), ri, nil, registry.NativeImplType); err != nil {
		t.Fatal(err)
	}

	// The client calls the object.
	out, err := clientNode.Client().Invoke(context.Background(), objLOID, "greet", nil)
	if err != nil || string(out) != "hello" {
		t.Fatalf("greet = %q, %v", out, err)
	}

	// An administrator (the client node) derives and activates version 1.1
	// entirely through the remote manager interface.
	admin := clientNode.Client()
	deriveOut, err := admin.Invoke(context.Background(), mgrLOID, manager.MethodDerive, manager.EncodeVersionArgs(root))
	if err != nil {
		t.Fatal(err)
	}
	segs, err := wire.NewDecoder(deriveOut).UintSlice()
	if err != nil {
		t.Fatal(err)
	}
	child, err := version.Decode(segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []struct {
		key     dfm.EntryKey
		enabled bool
	}{
		{dfm.EntryKey{Function: "greet", Component: "greet-en"}, false},
		{dfm.EntryKey{Function: "greet", Component: "greet-fr"}, true},
	} {
		if _, err := admin.Invoke(context.Background(), mgrLOID, manager.MethodVSetEnabled,
			manager.EncodeSetEnabledArgs(child, step.key, step.enabled)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := admin.Invoke(context.Background(), mgrLOID, manager.MethodMarkInstantiable, manager.EncodeVersionArgs(child)); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Invoke(context.Background(), mgrLOID, manager.MethodSetCurrent, manager.EncodeVersionArgs(child)); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Invoke(context.Background(), mgrLOID, manager.MethodEvolveInstance,
		manager.EncodeEvolveInstanceArgs(objLOID, child)); err != nil {
		t.Fatal(err)
	}

	out, err = clientNode.Client().Invoke(context.Background(), objLOID, "greet", nil)
	if err != nil || string(out) != "bonjour" {
		t.Fatalf("greet after remote evolution = %q, %v", out, err)
	}
	rec, err := mgr.RecordOf(objLOID)
	if err != nil || !rec.Version.Equal(child) {
		t.Fatalf("record = %+v, %v", rec, err)
	}
}

// TestDCDOMigrationPreservesStateAndConfiguration migrates a stateful DCDO
// between nodes using the generic legion migration path; its counter and
// configuration survive, and clients heal their bindings.
func TestDCDOMigrationPreservesStateAndConfiguration(t *testing.T) {
	g := newGreeterType(t)
	if _, err := g.reg.Register("count:1", registry.NativeImplType, map[string]registry.Func{
		"inc": func(c registry.Caller, _ []byte) ([]byte, error) {
			raw, _ := c.State().Get("n")
			var n uint64
			if raw != nil {
				n, _ = wire.NewDecoder(raw).Uvarint()
			}
			e := wire.NewEncoder(8)
			e.PutUvarint(n + 1)
			c.State().Set("n", e.Bytes())
			return e.Bytes(), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	countComp, err := component.NewSynthetic(component.Descriptor{
		ID: "count", Revision: 1, CodeRef: "count:1",
		Impl: registry.AnyImplType, CodeSize: 1 << 10,
		Functions: []component.FunctionDecl{{Name: "inc", Exported: true}},
	})
	if err != nil {
		t.Fatal(err)
	}

	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	mkNode := func(name string) *legion.Node {
		n, err := legion.NewNode(legion.NodeConfig{Name: name, Agent: agent, Inproc: net})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		return n
	}
	src := mkNode("src")
	dst := mkNode("dst")
	icoHost := mkNode("icos")
	g.hostICOs(t, icoHost)
	countICO := naming.LOID{Domain: 1, Class: 9, Instance: 3}
	if _, err := icoHost.HostObject(countICO, component.NewICO(countComp)); err != nil {
		t.Fatal(err)
	}

	desc := g.descriptor("greet-en")
	desc.Components["count"] = dfm.ComponentRef{ICO: countICO, CodeRef: "count:1", Impl: registry.AnyImplType, CodeSize: 1 << 10, Revision: 1}
	desc.Entries = append(desc.Entries, dfm.EntryDesc{Function: "inc", Component: "count", Exported: true, Enabled: true})

	objLOID := naming.LOID{Domain: 1, Class: 1, Instance: 7}
	obj := core.New(core.Config{LOID: objLOID, Registry: g.reg, Fetcher: remoteFetcher(src)})
	if _, err := obj.ApplyDescriptor(context.Background(), desc, version.ID{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.HostObject(objLOID, obj); err != nil {
		t.Fatal(err)
	}

	// A client bumps the counter twice (and caches the src binding).
	client := mkNode("client")
	for i := 0; i < 2; i++ {
		if _, err := client.Client().Invoke(context.Background(), objLOID, "inc", nil); err != nil {
			t.Fatal(err)
		}
	}

	// Migrate: the destination incarnation is a fresh DCDO wired to the
	// destination node's fetcher; the capture rebuilds it there.
	target := core.New(core.Config{LOID: objLOID, Registry: g.reg, Fetcher: remoteFetcher(dst)})
	if err := legion.Migrate(objLOID, src, dst, obj, target); err != nil {
		t.Fatal(err)
	}
	if src.Hosts(objLOID) || !dst.Hosts(objLOID) {
		t.Fatal("object did not move")
	}

	// The client's next call heals the stale binding and sees counter 3.
	out, err := client.Client().Invoke(context.Background(), objLOID, "inc", nil)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := wire.NewDecoder(out).Uvarint()
	if n != 3 {
		t.Fatalf("counter after migration = %d, want 3", n)
	}
	// Configuration equivalent, version preserved.
	if !target.Snapshot().Equivalent(obj.Snapshot()) {
		t.Fatal("migrated configuration not equivalent")
	}
	if !target.Version().Equal(version.ID{1}) {
		t.Fatalf("migrated version = %v", target.Version())
	}
}

// TestHeterogeneousMigration reproduces §2.1's point: two functionally
// equivalent implementations of the same component (different
// implementation types) are interchangeable, so an object can migrate to a
// node of a different architecture and come back up on the implementation
// matching that host.
func TestHeterogeneousMigration(t *testing.T) {
	g := newGreeterType(t)
	sparc := registry.ImplType{Arch: "sparc", Format: "elf", Language: "c"}
	// The same code reference, "compiled" for sparc: functionally
	// equivalent but distinguishable output so we can observe selection.
	if _, err := g.reg.Register("greet-en:1", sparc, map[string]registry.Func{
		"greet": func(registry.Caller, []byte) ([]byte, error) { return []byte("hello (sparc build)"), nil },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.reg.Register("greet-fr:1", sparc, map[string]registry.Func{
		"greet": func(registry.Caller, []byte) ([]byte, error) { return []byte("bonjour (sparc build)"), nil },
	}); err != nil {
		t.Fatal(err)
	}

	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	goNode, err := legion.NewNode(legion.NodeConfig{Name: "go-host", Agent: agent, Inproc: net})
	if err != nil {
		t.Fatal(err)
	}
	defer goNode.Close()
	sparcNode, err := legion.NewNode(legion.NodeConfig{Name: "sparc-host", Agent: agent, Inproc: net, HostImpl: sparc})
	if err != nil {
		t.Fatal(err)
	}
	defer sparcNode.Close()
	g.hostICOs(t, goNode)

	objLOID := naming.LOID{Domain: 1, Class: 1, Instance: 8}
	obj := core.New(core.Config{
		LOID: objLOID, Registry: g.reg, Fetcher: remoteFetcher(goNode),
		HostImpl: goNode.HostImpl(),
	})
	if _, err := obj.ApplyDescriptor(context.Background(), g.descriptor("greet-en"), version.ID{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := goNode.HostObject(objLOID, obj); err != nil {
		t.Fatal(err)
	}
	out, err := obj.InvokeMethod("greet", nil)
	if err != nil || string(out) != "hello" {
		t.Fatalf("greet on go host = %q, %v", out, err)
	}

	// Migrate to the sparc host: the fresh incarnation binds the sparc
	// implementations of the same components.
	target := core.New(core.Config{
		LOID: objLOID, Registry: g.reg, Fetcher: remoteFetcher(sparcNode),
		HostImpl: sparc,
	})
	if err := legion.Migrate(objLOID, goNode, sparcNode, obj, target); err != nil {
		t.Fatal(err)
	}
	out, err = target.InvokeMethod("greet", nil)
	if err != nil || string(out) != "hello (sparc build)" {
		t.Fatalf("greet on sparc host = %q, %v", out, err)
	}
	// Functionally equivalent per §2.1: same components, same interface.
	if !target.Snapshot().Equivalent(obj.Snapshot()) {
		t.Fatal("heterogeneous incarnations not functionally equivalent")
	}
}

// TestLazyUpdateAgainstRemoteManager wraps a DCDO in a lazy updater whose
// manager view is a remote proxy: designating a new current version on the
// (remote) manager takes effect on the object's next invocation.
func TestLazyUpdateAgainstRemoteManager(t *testing.T) {
	g := newGreeterType(t)
	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	infra, err := legion.NewNode(legion.NodeConfig{Name: "infra", Agent: agent, Inproc: net})
	if err != nil {
		t.Fatal(err)
	}
	defer infra.Close()
	serverNode, err := legion.NewNode(legion.NodeConfig{Name: "server", Agent: agent, Inproc: net})
	if err != nil {
		t.Fatal(err)
	}
	defer serverNode.Close()
	g.hostICOs(t, infra)

	mgr := manager.New(evolution.SingleVersion, evolution.Lazy)
	root, err := mgr.Store().CreateRoot(g.descriptor("greet-en"))
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Store().MarkInstantiable(root); err != nil {
		t.Fatal(err)
	}
	if err := mgr.SetCurrentVersion(context.Background(), root); err != nil {
		t.Fatal(err)
	}
	child, err := mgr.Store().Derive(root)
	if err != nil {
		t.Fatal(err)
	}
	err = mgr.Store().Configure(child, func(d *dfm.Descriptor) error {
		d.Entry(dfm.EntryKey{Function: "greet", Component: "greet-en"}).Enabled = false
		d.Entry(dfm.EntryKey{Function: "greet", Component: "greet-fr"}).Enabled = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Store().MarkInstantiable(child); err != nil {
		t.Fatal(err)
	}
	mgrLOID := naming.LOID{Domain: 0, Class: 2, Instance: 2}
	if _, err := infra.HostObject(mgrLOID, &manager.Object{Mgr: mgr}); err != nil {
		t.Fatal(err)
	}

	obj := core.New(core.Config{
		LOID:     naming.LOID{Domain: 1, Class: 1, Instance: 9},
		Registry: g.reg,
		Fetcher:  remoteFetcher(serverNode),
	})
	if _, err := obj.ApplyDescriptor(context.Background(), g.descriptor("greet-en"), root); err != nil {
		t.Fatal(err)
	}
	view := manager.RemoteView{Client: serverNode.Client(), Target: mgrLOID}
	lazy := evolution.NewLazyUpdater(obj, view, evolution.StrictConsistency(), nil)
	if _, err := serverNode.HostObject(obj.LOID(), lazy); err != nil {
		t.Fatal(err)
	}

	client, err := legion.NewNode(legion.NodeConfig{Name: "client", Agent: agent, Inproc: net})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	out, err := client.Client().Invoke(context.Background(), obj.LOID(), "greet", nil)
	if err != nil || string(out) != "hello" {
		t.Fatalf("greet = %q, %v", out, err)
	}

	// Designate the new current version; the next invocation lazily
	// updates the object through the remote view before serving.
	if err := mgr.SetCurrentVersion(context.Background(), child); err != nil {
		t.Fatal(err)
	}
	out, err = client.Client().Invoke(context.Background(), obj.LOID(), "greet", nil)
	if err != nil || string(out) != "bonjour" {
		t.Fatalf("greet after lazy remote update = %q, %v", out, err)
	}
	checks, updates := lazy.Stats()
	if checks < 2 || updates != 1 {
		t.Fatalf("lazy stats: %d checks, %d updates", checks, updates)
	}
}

// TestDisappearingExportedFunctionAcrossTheWire reproduces §3.1's first
// problem end to end: a client discovers an interface, the function is
// disabled before its invocation lands, and the failure arrives as the
// matchable error class the paper prescribes.
func TestDisappearingExportedFunctionAcrossTheWire(t *testing.T) {
	g := newGreeterType(t)
	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	server, err := legion.NewNode(legion.NodeConfig{Name: "server", Agent: agent, Inproc: net})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	g.hostICOs(t, server)

	obj := core.New(core.Config{
		LOID:     naming.LOID{Domain: 1, Class: 1, Instance: 10},
		Registry: g.reg,
		Fetcher:  remoteFetcher(server),
	})
	if _, err := obj.ApplyDescriptor(context.Background(), g.descriptor("greet-en"), version.ID{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.HostObject(obj.LOID(), obj); err != nil {
		t.Fatal(err)
	}

	client, err := legion.NewNode(legion.NodeConfig{Name: "client", Agent: agent, Inproc: net})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Client obtains the interface: greet is there.
	out, err := client.Client().Invoke(context.Background(), obj.LOID(), core.MethodInterface, nil)
	if err != nil {
		t.Fatal(err)
	}
	names, err := wire.NewDecoder(out).StringSlice()
	if err != nil || len(names) != 1 || names[0] != "greet" {
		t.Fatalf("interface = %v, %v", names, err)
	}

	// Before the invocation is sent, greet is disabled with no
	// replacement.
	if err := obj.DisableFunction(dfm.EntryKey{Function: "greet", Component: "greet-en"}); err != nil {
		t.Fatal(err)
	}
	_, err = client.Client().Invoke(context.Background(), obj.LOID(), "greet", nil)
	if !errors.Is(err, rpc.ErrFunctionDisabled) {
		t.Fatalf("err = %v, want ErrFunctionDisabled across the wire", err)
	}

	// Removing the component entirely turns it into "no such function".
	if err := obj.RemoveComponent("greet-en"); err != nil {
		t.Fatal(err)
	}
	if err := obj.RemoveComponent("greet-fr"); err != nil {
		t.Fatal(err)
	}
	_, err = client.Client().Invoke(context.Background(), obj.LOID(), "greet", nil)
	if !errors.Is(err, rpc.ErrNoSuchFunction) {
		t.Fatalf("err = %v, want ErrNoSuchFunction across the wire", err)
	}
}

// TestDCDODeactivateReactivateThroughVault parks a stateful DCDO in a
// file-backed vault and brings it back on another node after a simulated
// restart: implementation rebuilt from the captured descriptor, state
// intact.
func TestDCDODeactivateReactivateThroughVault(t *testing.T) {
	g := newGreeterType(t)
	if _, err := g.reg.Register("kv:1", registry.NativeImplType, map[string]registry.Func{
		"put": func(c registry.Caller, args []byte) ([]byte, error) {
			c.State().Set("k", args)
			return nil, nil
		},
		"get": func(c registry.Caller, _ []byte) ([]byte, error) {
			v, _ := c.State().Get("k")
			return v, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	kvComp, err := component.NewSynthetic(component.Descriptor{
		ID: "kv", Revision: 1, CodeRef: "kv:1",
		Impl: registry.AnyImplType, CodeSize: 1 << 10,
		Functions: []component.FunctionDecl{
			{Name: "put", Exported: true},
			{Name: "get", Exported: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	n1, err := legion.NewNode(legion.NodeConfig{Name: "v1", Agent: agent, Inproc: net})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := legion.NewNode(legion.NodeConfig{Name: "v2", Agent: agent, Inproc: net})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	kvICO := naming.LOID{Domain: 1, Class: 9, Instance: 30}
	if _, err := n1.HostObject(kvICO, component.NewICO(kvComp)); err != nil {
		t.Fatal(err)
	}

	desc := dfm.NewDescriptor()
	desc.Components["kv"] = dfm.ComponentRef{ICO: kvICO, CodeRef: "kv:1", Impl: registry.AnyImplType, CodeSize: 1 << 10, Revision: 1}
	desc.Entries = []dfm.EntryDesc{
		{Function: "put", Component: "kv", Exported: true, Enabled: true},
		{Function: "get", Component: "kv", Exported: true, Enabled: true},
	}
	objLOID := naming.LOID{Domain: 1, Class: 1, Instance: 40}
	obj := core.New(core.Config{LOID: objLOID, Registry: g.reg, Fetcher: remoteFetcher(n1)})
	if _, err := obj.ApplyDescriptor(context.Background(), desc, version.ID{1, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.HostObject(objLOID, obj); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.Client().Invoke(context.Background(), objLOID, "put", []byte("precious")); err != nil {
		t.Fatal(err)
	}

	// Deactivate into a file vault.
	v, err := vault.NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.Deactivate(objLOID, obj, v); err != nil {
		t.Fatal(err)
	}
	if n1.Hosts(objLOID) {
		t.Fatal("object still live after deactivation")
	}

	// Reactivate on the other node: the empty incarnation rebuilds its
	// implementation from the captured descriptor.
	incarnation := core.New(core.Config{LOID: objLOID, Registry: g.reg, Fetcher: remoteFetcher(n2)})
	if err := n2.Activate(objLOID, incarnation, v); err != nil {
		t.Fatal(err)
	}
	out, err := n1.Client().Invoke(context.Background(), objLOID, "get", nil)
	if err != nil || string(out) != "precious" {
		t.Fatalf("get after reactivation = %q, %v", out, err)
	}
	if !incarnation.Version().Equal(version.ID{1, 3}) {
		t.Fatalf("version = %v", incarnation.Version())
	}
}

// TestProactiveFleetOverRemoteInstances has a local manager proactively
// evolve a fleet of DCDOs it only reaches through RPC proxies.
func TestProactiveFleetOverRemoteInstances(t *testing.T) {
	g := newGreeterType(t)
	agent := naming.NewAgent(vclock.Real{})
	net := transport.NewInprocNetwork()
	infra, err := legion.NewNode(legion.NodeConfig{Name: "infra", Agent: agent, Inproc: net})
	if err != nil {
		t.Fatal(err)
	}
	defer infra.Close()
	g.hostICOs(t, infra)

	mgr := manager.New(evolution.SingleVersion, evolution.Proactive)
	root, err := mgr.Store().CreateRoot(g.descriptor("greet-en"))
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Store().MarkInstantiable(root); err != nil {
		t.Fatal(err)
	}
	if err := mgr.SetCurrentVersion(context.Background(), root); err != nil {
		t.Fatal(err)
	}

	var objs []*core.DCDO
	for i := 0; i < 4; i++ {
		node, err := legion.NewNode(legion.NodeConfig{Name: fmt.Sprintf("w%d", i), Agent: agent, Inproc: net})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = node.Close() })
		obj := core.New(core.Config{
			LOID:     naming.LOID{Domain: 1, Class: 1, Instance: uint64(20 + i)},
			Registry: g.reg,
			Fetcher:  remoteFetcher(node),
		})
		if _, err := node.HostObject(obj.LOID(), obj); err != nil {
			t.Fatal(err)
		}
		ri := manager.RemoteInstance{Client: infra.Client(), Target: obj.LOID()}
		if err := mgr.CreateInstance(context.Background(), ri, nil, registry.NativeImplType); err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}

	child, err := mgr.Store().Derive(root)
	if err != nil {
		t.Fatal(err)
	}
	err = mgr.Store().Configure(child, func(d *dfm.Descriptor) error {
		d.Entry(dfm.EntryKey{Function: "greet", Component: "greet-en"}).Enabled = false
		d.Entry(dfm.EntryKey{Function: "greet", Component: "greet-fr"}).Enabled = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Store().MarkInstantiable(child); err != nil {
		t.Fatal(err)
	}
	// One call fans out to the whole fleet over RPC.
	if err := mgr.SetCurrentVersion(context.Background(), child); err != nil {
		t.Fatal(err)
	}
	for i, obj := range objs {
		out, err := obj.InvokeMethod("greet", nil)
		if err != nil || string(out) != "bonjour" {
			t.Fatalf("fleet member %d greet = %q, %v", i, out, err)
		}
		if !obj.Version().Equal(child) {
			t.Fatalf("fleet member %d version = %v", i, obj.Version())
		}
	}
}
