// Package objstate provides the serialisable key/value state container
// shared by all stateful godcdo objects: normal Legion objects carry one,
// and DCDOs carry one so their data survives evolution and migration while
// their implementation changes underneath it.
package objstate

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"godcdo/internal/wire"
)

// State is a mutable key→bytes map guarded internally. Methods read and
// write it; capture/restore serialise it deterministically. A generation
// counter increments on every mutation so replication can cheaply detect
// "did this call change anything" without diffing or re-encoding.
type State struct {
	mu   sync.Mutex
	data map[string][]byte
	gen  uint64
}

// New returns an empty state.
func New() *State {
	return &State{data: make(map[string][]byte)}
}

// Get returns a copy of the value stored under key.
func (s *State) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Set stores a copy of value under key.
func (s *State) Set(key string, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	s.mu.Lock()
	s.data[key] = v
	s.gen++
	s.mu.Unlock()
}

// Delete removes key.
func (s *State) Delete(key string) {
	s.mu.Lock()
	if _, ok := s.data[key]; ok {
		delete(s.data, key)
		s.gen++
	}
	s.mu.Unlock()
}

// Generation reports the mutation counter: it increments on every Set,
// effective Delete, and ReplaceFrom. Equal generations across two reads
// mean no mutation happened in between.
func (s *State) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Keys returns the sorted keys.
func (s *State) Keys() []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Len reports the number of keys.
func (s *State) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Encode serialises the state deterministically (sorted keys).
func (s *State) Encode() []byte {
	s.mu.Lock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e := wire.NewEncoder(64)
	e.PutUvarint(uint64(len(keys)))
	for _, k := range keys {
		e.PutString(k)
		e.PutBytes(s.data[k])
	}
	s.mu.Unlock()
	return e.Bytes()
}

// ErrCorrupt is returned when captured state cannot be decoded.
var ErrCorrupt = errors.New("objstate: corrupt state")

// Decode parses state produced by Encode.
func Decode(buf []byte) (*State, error) {
	dec := wire.NewDecoder(buf)
	n, err := dec.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrCorrupt, err)
	}
	if n > uint64(dec.Remaining()) {
		return nil, fmt.Errorf("%w: count %d exceeds buffer", ErrCorrupt, n)
	}
	s := New()
	for i := uint64(0); i < n; i++ {
		k, err := dec.String()
		if err != nil {
			return nil, fmt.Errorf("%w: key: %v", ErrCorrupt, err)
		}
		v, err := dec.Bytes()
		if err != nil {
			return nil, fmt.Errorf("%w: value: %v", ErrCorrupt, err)
		}
		s.Set(k, v)
	}
	return s, nil
}

// ReplaceFrom atomically replaces the state's contents with those encoded
// in buf (produced by Encode on another State). On decode failure the state
// is left untouched. This is the backup side of replica state shipping: the
// primary's snapshot lands as one generation bump, never as a partially
// applied mixture.
func (s *State) ReplaceFrom(buf []byte) error {
	next, err := Decode(buf)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.data = next.data
	s.gen++
	s.mu.Unlock()
	return nil
}
