package objstate

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"godcdo/internal/wire"
)

func TestSetGetDeleteLen(t *testing.T) {
	s := New()
	if s.Len() != 0 {
		t.Fatal("new state not empty")
	}
	s.Set("a", []byte{1, 2})
	s.Set("b", nil)
	v, ok := s.Get("a")
	if !ok || !bytes.Equal(v, []byte{1, 2}) {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("found missing key")
	}
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("Keys = %v", got)
	}
}

func TestGetSetCopySemantics(t *testing.T) {
	s := New()
	in := []byte{1}
	s.Set("k", in)
	in[0] = 9
	v, _ := s.Get("k")
	if v[0] != 1 {
		t.Fatal("Set aliased caller's slice")
	}
	v[0] = 7
	v2, _ := s.Get("k")
	if v2[0] != 1 {
		t.Fatal("Get returned aliased storage")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(keys []string, vals [][]byte) bool {
		s := New()
		for i, k := range keys {
			var v []byte
			if i < len(vals) {
				v = vals[i]
			}
			s.Set(k, v)
		}
		out, err := Decode(s.Encode())
		if err != nil {
			return false
		}
		if out.Len() != s.Len() {
			return false
		}
		for _, k := range s.Keys() {
			a, _ := s.Get(k)
			b, ok := out.Get(k)
			if !ok || !bytes.Equal(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, b := New(), New()
	for _, k := range []string{"z", "a", "m"} {
		a.Set(k, []byte(k))
	}
	for _, k := range []string{"a", "m", "z"} { // different insert order
		b.Set(k, []byte(k))
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("encoding depends on insertion order")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := Decode([]byte{0xff}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	e := wire.NewEncoder(8)
	e.PutUvarint(3) // claims three entries, provides none
	if _, err := Decode(e.Bytes()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := string(rune('a' + w))
			for i := 0; i < 200; i++ {
				s.Set(key, []byte{byte(i)})
				if _, ok := s.Get(key); !ok {
					t.Errorf("key %q lost", key)
					return
				}
				_ = s.Encode()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
}
