package version

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestParseStringRoundTrip(t *testing.T) {
	for _, s := range []string{"1", "3.2", "3.2.0.4", "0", "1.0.0"} {
		id, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if id.String() != s {
			t.Fatalf("round trip %q -> %q", s, id.String())
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, s := range []string{"", "1..2", "a.b", "1.2.", ".1", "-1.2", "99999999999"} {
		if _, err := Parse(s); !errors.Is(err, ErrBadVersion) {
			t.Errorf("Parse(%q) err = %v, want ErrBadVersion", s, err)
		}
	}
}

func TestNilIDString(t *testing.T) {
	if got := (ID)(nil).String(); got != "<none>" {
		t.Fatalf("nil ID String = %q", got)
	}
	if !(ID)(nil).IsZero() || Root.IsZero() {
		t.Fatal("IsZero misbehaves")
	}
}

func TestAncestry(t *testing.T) {
	v32 := ID{3, 2}
	v321 := ID{3, 2, 1}
	v3204 := ID{3, 2, 0, 4}
	v33 := ID{3, 3}

	if !v32.IsAncestorOf(v321) || !v32.IsAncestorOf(v3204) {
		t.Fatal("3.2 should be ancestor of 3.2.1 and 3.2.0.4")
	}
	if v32.IsAncestorOf(v33) {
		t.Fatal("3.2 is not ancestor of 3.3")
	}
	if v32.IsAncestorOf(v32) {
		t.Fatal("ancestry is strict")
	}
	if !v321.IsDescendantOf(v32) || v33.IsDescendantOf(v32) {
		t.Fatal("IsDescendantOf misbehaves")
	}
	// The paper's example: 3.2 can evolve to 3.2.1 or 3.2.0.4, not 3.3.
	for _, ok := range []struct {
		to   ID
		want bool
	}{{v321, true}, {v3204, true}, {v33, false}} {
		if got := ok.to.IsDescendantOf(v32); got != ok.want {
			t.Errorf("%v descendant of 3.2 = %v, want %v", ok.to, got, ok.want)
		}
	}
}

func TestChildParent(t *testing.T) {
	v := ID{3, 2}
	c := v.Child(1)
	if c.String() != "3.2.1" {
		t.Fatalf("Child = %v", c)
	}
	if !c.Parent().Equal(v) {
		t.Fatalf("Parent = %v", c.Parent())
	}
	if Root.Parent() != nil {
		t.Fatal("root Parent should be nil")
	}
	// Child must not alias the parent's storage.
	c2 := v.Child(9)
	if c[len(c)-1] == c2[len(c2)-1] {
		t.Fatal("children share storage")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1", "1", 0},
		{"1", "2", -1},
		{"2", "1", 1},
		{"1.2", "1.2.1", -1},
		{"1.2.1", "1.2", 1},
		{"1.10", "1.9", 1},
	}
	for _, c := range cases {
		a, _ := Parse(c.a)
		b, _ := Parse(c.b)
		if got := a.Compare(b); got != c.want {
			t.Errorf("Compare(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := ID{1, 2, 3}
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone aliases storage")
	}
	if (ID)(nil).Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(segs []uint32) bool {
		id := make(ID, len(segs))
		copy(id, segs)
		out, err := Decode(id.Encode())
		if err != nil {
			return false
		}
		if len(id) == 0 {
			return out == nil
		}
		return out.Equal(id)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeOverflow(t *testing.T) {
	if _, err := Decode([]uint64{1 << 40}); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestEqualProperties(t *testing.T) {
	f := func(a, b []uint32) bool {
		ida := ID(a)
		idb := ID(b)
		// Symmetric, and ancestry implies inequality.
		if ida.Equal(idb) != idb.Equal(ida) {
			return false
		}
		if ida.IsAncestorOf(idb) && ida.Equal(idb) {
			return false
		}
		// An ID equals its clone.
		return ida.Equal(ida.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
