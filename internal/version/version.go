// Package version implements the version identifiers of §2.1: arrays of
// positive integers naming versions of an object type's implementation.
// Versions form a tree — "a version 3.2 DCDO can evolve to version 3.2.1 or
// to version 3.2.0.4, but not to version 3.3" — where derivation appends
// segments, so ancestry is a prefix relation.
package version

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ID identifies one version of an object type's implementation. IDs are
// unique only within an object type (per the paper), not globally. The nil
// ID is "no version".
type ID []uint32

// ErrBadVersion is returned by Parse for malformed input.
var ErrBadVersion = errors.New("version: malformed version identifier")

// Root is the conventional first version of a type.
var Root = ID{1}

// Parse parses dotted-decimal form, e.g. "3.2.0.4".
func Parse(s string) (ID, error) {
	if s == "" {
		return nil, fmt.Errorf("%w: empty", ErrBadVersion)
	}
	parts := strings.Split(s, ".")
	id := make(ID, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: segment %q", ErrBadVersion, p)
		}
		id = append(id, uint32(n))
	}
	return id, nil
}

// String renders dotted-decimal form; the nil ID renders as "<none>".
func (id ID) String() string {
	if len(id) == 0 {
		return "<none>"
	}
	var b strings.Builder
	for i, seg := range id {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(uint64(seg), 10))
	}
	return b.String()
}

// IsZero reports whether id names no version.
func (id ID) IsZero() bool { return len(id) == 0 }

// Equal reports segment-wise equality.
func (id ID) Equal(other ID) bool {
	if len(id) != len(other) {
		return false
	}
	for i := range id {
		if id[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (id ID) Clone() ID {
	if id == nil {
		return nil
	}
	out := make(ID, len(id))
	copy(out, id)
	return out
}

// IsAncestorOf reports whether other is (strictly) derived from id — i.e.
// id is a proper prefix of other in the version tree.
func (id ID) IsAncestorOf(other ID) bool {
	if len(id) >= len(other) {
		return false
	}
	for i := range id {
		if id[i] != other[i] {
			return false
		}
	}
	return true
}

// IsDescendantOf reports whether id is (strictly) derived from other.
func (id ID) IsDescendantOf(other ID) bool { return other.IsAncestorOf(id) }

// Child returns the version derived from id with the given final segment
// (e.g. ID{3,2}.Child(1) == 3.2.1).
func (id ID) Child(segment uint32) ID {
	out := make(ID, len(id)+1)
	copy(out, id)
	out[len(id)] = segment
	return out
}

// Parent returns the version id derives from, or nil for a root.
func (id ID) Parent() ID {
	if len(id) <= 1 {
		return nil
	}
	return id[:len(id)-1].Clone()
}

// Compare orders versions lexicographically by segment (tree pre-order for
// siblings' subtrees). It returns -1, 0, or +1.
func (id ID) Compare(other ID) int {
	n := len(id)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		switch {
		case id[i] < other[i]:
			return -1
		case id[i] > other[i]:
			return 1
		}
	}
	switch {
	case len(id) < len(other):
		return -1
	case len(id) > len(other):
		return 1
	default:
		return 0
	}
}

// Encode returns the segments widened to uint64 for wire transfer.
func (id ID) Encode() []uint64 {
	out := make([]uint64, len(id))
	for i, seg := range id {
		out[i] = uint64(seg)
	}
	return out
}

// Decode reconstructs an ID from Encode's output.
func Decode(segments []uint64) (ID, error) {
	if len(segments) == 0 {
		return nil, nil
	}
	id := make(ID, len(segments))
	for i, seg := range segments {
		if seg > uint64(^uint32(0)) {
			return nil, fmt.Errorf("%w: segment %d overflows", ErrBadVersion, seg)
		}
		id[i] = uint32(seg)
	}
	return id, nil
}
