package obs

import (
	"sync"
	"time"
)

// Event is one structured evolution/reconfiguration record: who
// incorporated/enabled/disabled/removed what, when, and which version
// resulted. Events come from core.DCDO's observer stream and from the
// manager's own operations.
type Event struct {
	Seq       uint64    `json:"seq"`
	Time      time.Time `json:"time"`
	Kind      string    `json:"kind"`
	Object    string    `json:"object,omitempty"`
	Component string    `json:"component,omitempty"`
	Function  string    `json:"function,omitempty"`
	Version   string    `json:"version,omitempty"`
	Detail    string    `json:"detail,omitempty"`
}

// EventLog is a fixed-size ring of Events. A nil *EventLog is the disabled
// state: Append and Recent are no-ops.
type EventLog struct {
	mu   sync.Mutex
	seq  uint64
	ring []Event
	head int
	size int
	sink func(Event)
}

// DefaultEventLogSize is how many events a log retains.
const DefaultEventLogSize = 1024

// NewEventLog returns a log retaining the last ringSize events
// (DefaultEventLogSize if ringSize <= 0).
func NewEventLog(ringSize int) *EventLog {
	if ringSize <= 0 {
		ringSize = DefaultEventLogSize
	}
	return &EventLog{ring: make([]Event, ringSize)}
}

// Append records ev, stamping its sequence number and (if unset) its time.
// Nil-safe.
func (l *EventLog) Append(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	l.ring[l.head] = ev
	l.head = (l.head + 1) % len(l.ring)
	if l.size < len(l.ring) {
		l.size++
	}
	sink := l.sink
	l.mu.Unlock()
	if sink != nil {
		sink(ev)
	}
}

// SetSink installs a callback invoked with every appended event (after its
// sequence number and time are stamped), on the appender's goroutine — it
// must be fast and must never block, since appenders include evolution hot
// paths. One sink per log (the supervisor's hub fans out from there); nil
// uninstalls. Nil-safe.
func (l *EventLog) SetSink(fn func(Event)) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = fn
	l.mu.Unlock()
}

// Recent returns up to limit of the most recent events, oldest first (all
// retained events if limit <= 0). Nil-safe.
func (l *EventLog) Recent(limit int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.size
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Event, 0, n)
	start := l.head - n
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// Len returns the number of retained events. Nil-safe.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}
