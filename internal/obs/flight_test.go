package obs

import (
	"errors"
	"testing"
	"time"
)

func TestSamplerRateDistribution(t *testing.T) {
	s := NewSampler(0.01)
	const n = 200000
	kept := 0
	for i := uint64(1); i <= n; i++ {
		if s.Keep(i) {
			kept++
		}
	}
	// 1% of 200k = 2000; sequential IDs through splitmix64 should land
	// within a loose 3x band.
	if kept < 700 || kept > 6000 {
		t.Fatalf("kept %d of %d at 1%%, want ~2000", kept, n)
	}
	decisions, keptStat := s.Stats()
	if decisions != n || keptStat != uint64(kept) {
		t.Fatalf("stats = %d/%d, want %d/%d", decisions, keptStat, n, kept)
	}
}

func TestSamplerDecisionStablePerTraceID(t *testing.T) {
	s := NewSampler(0.5)
	for i := uint64(1); i < 1000; i++ {
		if s.Keep(i) != s.Keep(i) {
			t.Fatalf("decision for trace %d not stable", i)
		}
	}
}

func TestSamplerEdgeRates(t *testing.T) {
	if !NewSampler(1).Keep(42) || !NewSampler(2).Keep(42) {
		t.Fatal("rate >= 1 must keep everything")
	}
	s := NewSampler(0)
	for i := uint64(1); i < 100; i++ {
		if s.Keep(i) {
			t.Fatalf("rate 0 kept trace %d", i)
		}
	}
	var nilS *Sampler
	if !nilS.Keep(7) {
		t.Fatal("nil sampler must keep everything")
	}
}

func TestSamplerRetune(t *testing.T) {
	s := NewSampler(0)
	if s.Keep(1) {
		t.Fatal("rate 0 kept")
	}
	s.SetRate(1)
	if !s.Keep(1) {
		t.Fatal("retuned rate 1 dropped")
	}
}

func TestFlightRetainOnError(t *testing.T) {
	tr := NewTracer(64)
	fl := NewFlightRecorder(8, -1) // errors only
	tr.SetFlight(fl)

	root := tr.StartSpan(StageClientInvoke, SpanContext{})
	child := root.Child(StageServerDispatch)
	child.Fail(errors.New("boom"))
	child.Finish()
	root.Finish()

	ft, ok := fl.Trace(root.Context().TraceID)
	if !ok {
		t.Fatal("errored trace not retained")
	}
	if ft.Reason != RetainError {
		t.Fatalf("reason = %q, want %q", ft.Reason, RetainError)
	}
	// Both the triggering child and the later-finishing root must be there.
	if len(ft.Spans) != 2 {
		t.Fatalf("retained %d spans, want 2: %+v", len(ft.Spans), ft.Spans)
	}
}

func TestFlightRetainOnSlow(t *testing.T) {
	tr := NewTracer(64)
	fl := NewFlightRecorder(8, time.Millisecond)
	tr.SetFlight(fl)

	slow := tr.StartSpan(StageClientInvoke, SpanContext{})
	time.Sleep(3 * time.Millisecond)
	slow.Finish()
	fast := tr.StartSpan(StageClientInvoke, SpanContext{})
	fast.Finish()

	if _, ok := fl.Trace(slow.Context().TraceID); !ok {
		t.Fatal("slow trace not retained")
	}
	if _, ok := fl.Trace(fast.Context().TraceID); ok {
		t.Fatal("fast healthy trace retained")
	}
	if got := fl.Recent(0); len(got) != 1 || got[0].Reason != RetainSlow {
		t.Fatalf("recent = %+v, want one slow retention", got)
	}
}

func TestFlightLazyRetention(t *testing.T) {
	// The unsampled path materialises records directly, without spans.
	fl := NewFlightRecorder(8, 50*time.Millisecond)
	if fl.ShouldRetain(10*time.Millisecond, false) {
		t.Fatal("healthy fast call retained")
	}
	if !fl.ShouldRetain(60*time.Millisecond, false) || !fl.ShouldRetain(0, true) {
		t.Fatal("slow/errored call not retained")
	}
	fl.Retain(77, RetainSlow, SpanRecord{TraceID: 77, SpanID: 1, Stage: StageClientInvoke, Duration: 60 * time.Millisecond})
	// A server-side record for the same trace merges in.
	fl.Retain(77, RetainError, SpanRecord{TraceID: 77, SpanID: 2, ParentID: 1, Stage: StageServerDispatch, Duration: 55 * time.Millisecond})
	ft, ok := fl.Trace(77)
	if !ok || len(ft.Spans) != 2 {
		t.Fatalf("merged trace = %+v ok=%v, want 2 spans", ft, ok)
	}
	if ft.Reason != RetainSlow {
		t.Fatalf("first promotion reason must stick, got %q", ft.Reason)
	}
	if ft.MaxNs != 60*time.Millisecond {
		t.Fatalf("MaxNs = %v, want 60ms", ft.MaxNs)
	}
}

func TestFlightEvictionFIFO(t *testing.T) {
	fl := NewFlightRecorder(3, -1)
	for id := uint64(1); id <= 5; id++ {
		fl.Retain(id, RetainError, SpanRecord{TraceID: id, SpanID: id})
	}
	for id := uint64(1); id <= 2; id++ {
		if fl.Retained(id) {
			t.Fatalf("trace %d should have been evicted", id)
		}
	}
	for id := uint64(3); id <= 5; id++ {
		if !fl.Retained(id) {
			t.Fatalf("trace %d missing", id)
		}
	}
	st := fl.Stats()
	if st.Live != 3 || st.Retained != 5 || st.Evicted != 2 {
		t.Fatalf("stats = %+v, want live 3 retained 5 evicted 2", st)
	}
}

func TestFlightSpanDedupAndCap(t *testing.T) {
	fl := NewFlightRecorder(2, -1)
	rec := SpanRecord{TraceID: 9, SpanID: 4, Stage: StageClientInvoke}
	fl.Retain(9, RetainError, rec)
	fl.Retain(9, RetainError, rec) // duplicate span ID ignored
	fl.Append(rec)
	ft, _ := fl.Trace(9)
	if len(ft.Spans) != 1 {
		t.Fatalf("duplicate spans retained: %d", len(ft.Spans))
	}
	for i := 0; i < maxFlightSpans+10; i++ {
		fl.Append(SpanRecord{TraceID: 9, SpanID: uint64(100 + i)})
	}
	ft, _ = fl.Trace(9)
	if len(ft.Spans) > maxFlightSpans {
		t.Fatalf("span cap breached: %d", len(ft.Spans))
	}
}

func TestFlightSlowestOrdering(t *testing.T) {
	fl := NewFlightRecorder(8, -1)
	fl.Retain(1, RetainSlow, SpanRecord{TraceID: 1, SpanID: 1, Duration: 10 * time.Millisecond})
	fl.Retain(2, RetainSlow, SpanRecord{TraceID: 2, SpanID: 2, Duration: 30 * time.Millisecond})
	fl.Retain(3, RetainSlow, SpanRecord{TraceID: 3, SpanID: 3, Duration: 20 * time.Millisecond})
	got := fl.Slowest(2)
	if len(got) != 2 || got[0].TraceID != 2 || got[1].TraceID != 3 {
		t.Fatalf("slowest = %+v, want traces 2,3", got)
	}
}

func TestFlightAppendIgnoresUnretained(t *testing.T) {
	fl := NewFlightRecorder(4, -1)
	fl.Append(SpanRecord{TraceID: 123, SpanID: 1})
	if fl.Retained(123) {
		t.Fatal("Append must not create entries")
	}
}

func TestFlightNilSafety(t *testing.T) {
	var fl *FlightRecorder
	fl.Retain(1, RetainError, SpanRecord{})
	fl.Append(SpanRecord{TraceID: 1})
	if fl.Retained(1) || fl.ShouldRetain(time.Hour, true) {
		t.Fatal("nil recorder retained something")
	}
	if _, ok := fl.Trace(1); ok {
		t.Fatal("nil recorder returned a trace")
	}
	if fl.Recent(0) != nil || fl.Slowest(0) != nil {
		t.Fatal("nil recorder returned traces")
	}
	if st := fl.Stats(); st != (FlightStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	fl.SetThreshold(time.Second)
	if fl.Threshold() != 0 {
		t.Fatal("nil threshold nonzero")
	}
	var tr *Tracer
	if tr.MintContext() != (SpanContext{}) || tr.MintSpanID() != 0 || !tr.Keep(5) || tr.Flight() != nil {
		t.Fatal("nil tracer helpers not nil-safe")
	}
}

func TestNewWithOptionsShapes(t *testing.T) {
	o := NewWithOptions(Options{SpanRing: 16, EventRing: 8, SampleRate: 0.25, FlightCapacity: 32, FlightThreshold: time.Second})
	if o.Tracer == nil || o.Tracer.Sampler() == nil {
		t.Fatal("sampler not installed")
	}
	if o.Flight == nil || o.Tracer.Flight() != o.Flight {
		t.Fatal("flight recorder not wired to tracer")
	}
	if o.Flight.Threshold() != time.Second {
		t.Fatalf("threshold = %v", o.Flight.Threshold())
	}
	// New() keeps the legacy shape: everything kept, no flight recorder.
	if def := New(); def.Tracer.Sampler() != nil || def.GetFlight() != nil {
		t.Fatal("New() must not sample or retain")
	}
	// Rate >= 1 installs no sampler (keep everything, zero overhead).
	if o2 := NewWithOptions(Options{SampleRate: 1}); o2.Tracer.Sampler() != nil {
		t.Fatal("rate 1 installed a sampler")
	}
}
