// Package obs is the runtime's observability layer: a dependency-free
// tracer, a structured evolution-event log, and a per-node metrics registry,
// bundled into an Obs handle that the rpc, core, manager, and legion layers
// accept optionally. Every entry point is nil-safe — a nil *Tracer returns
// nil *Span, and every *Span method is a no-op on a nil receiver — so
// instrumented code pays one pointer compare, and zero allocations, when
// observability is disabled.
package obs

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names used across the runtime. Spans are labelled with these so
// harness reports and the ctl `trace` subcommand can attribute latency to a
// fixed taxonomy (see DESIGN.md "Observability").
const (
	StageClientInvoke   = "client.invoke"   // whole client-side Invoke, incl. retries
	StageClientBind     = "client.bind"     // naming cache resolve / agent lookup
	StageClientAttempt  = "client.attempt"  // one transport round trip
	StageClientBackoff  = "client.backoff"  // sleep between retries
	StageClientRebind   = "client.rebind"   // binding invalidation + re-resolve
	StageServerDispatch = "server.dispatch" // rpc.Dispatcher.Handle
	StageDCDOControl    = "dcdo.control"    // dcdo.* control-plane method
	StageDCDOResolve    = "dcdo.resolve"    // dfm.BeginExportedCall resolution
	StageDCDOFunc       = "dcdo.func"       // user function execution
	StageDCDOApply      = "dcdo.apply"      // core.ApplyDescriptor evolution
	StageMgrEvolve      = "mgr.evolve"      // manager EvolveInstance
	StageMgrApply       = "mgr.apply"       // manager applying descriptor to one instance
	StageMgrRecover     = "mgr.recover"     // manager journal replay after restart
	StageMgrProbe       = "mgr.probe"       // liveness prober sweep
)

// SpanContext identifies a position in a trace; it is what crosses the wire
// (as the envelope's trace metadata) and what parents a child span. The zero
// value means "no trace".
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context belongs to a trace.
func (c SpanContext) Valid() bool { return c.TraceID != 0 }

// SpanRecord is the immutable, exported form of a finished (or in-flight)
// span, as stored in the tracer's ring and serialised by /debug/obs.
type SpanRecord struct {
	TraceID  uint64            `json:"trace_id"`
	SpanID   uint64            `json:"span_id"`
	ParentID uint64            `json:"parent_id,omitempty"`
	Stage    string            `json:"stage"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Err      string            `json:"err,omitempty"`
	Annots   map[string]string `json:"annotations,omitempty"`
}

// Span is one timed stage within a trace. Spans are created by
// Tracer.StartSpan or Span.Child and recorded into the tracer's ring by
// Finish. All methods are safe on a nil receiver, so call sites can thread a
// possibly-nil span without branching.
type Span struct {
	tracer *Tracer
	ctx    SpanContext
	parent uint64
	stage  string
	start  time.Time
	mu     sync.Mutex
	err    string
	annots map[string]string
	done   bool
}

// Tracer mints trace/span IDs and keeps a fixed-size ring of recently
// finished spans. A nil *Tracer is the disabled state: StartSpan returns
// nil and the caller's instrumentation collapses to a pointer compare.
//
// A tracer optionally carries a head Sampler (nil keeps every trace) and a
// FlightRecorder (nil disables tail retention). When both are present the
// tracer implements the two-tier recording model: sampled traces record
// eager spans into the ring as always, and any recorded span that errors or
// exceeds the recorder's threshold promotes its whole trace into the
// recorder; unsampled traces skip the ring entirely and are materialised
// into the recorder lazily by the rpc layer only when they misbehave.
type Tracer struct {
	next    atomic.Uint64 // ID allocator; seeded randomly so nodes don't collide
	sampler *Sampler
	flight  *FlightRecorder
	mu      sync.Mutex
	ring    []SpanRecord
	head    int
	size    int
}

// DefaultRingSize is how many finished spans a tracer retains.
const DefaultRingSize = 4096

// NewTracer returns a tracer retaining the last ringSize finished spans
// (DefaultRingSize if ringSize <= 0).
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	t := &Tracer{ring: make([]SpanRecord, ringSize)}
	// Random base offset keeps span/trace IDs from distinct node-local
	// tracers from colliding when their spans are merged into one trace.
	t.next.Store(rand.Uint64() | 1)
	return t
}

// nextID returns a fresh nonzero ID.
func (t *Tracer) nextID() uint64 {
	for {
		id := t.next.Add(1)
		if id != 0 {
			return id
		}
	}
}

// SetSampler installs (or clears) the head sampler. A nil sampler keeps
// every trace.
func (t *Tracer) SetSampler(s *Sampler) {
	if t == nil {
		return
	}
	t.sampler = s
}

// Sampler returns the tracer's head sampler (nil = keep everything).
func (t *Tracer) Sampler() *Sampler {
	if t == nil {
		return nil
	}
	return t.sampler
}

// SetFlight installs (or clears) the flight recorder spans promote into.
func (t *Tracer) SetFlight(f *FlightRecorder) {
	if t == nil {
		return
	}
	t.flight = f
}

// Flight returns the tracer's flight recorder (nil = no tail retention).
// Nil-safe.
func (t *Tracer) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.flight
}

// Keep applies the head sampler to traceID. Nil-safe: a nil tracer (or no
// sampler) keeps everything.
func (t *Tracer) Keep(traceID uint64) bool {
	if t == nil {
		return true
	}
	return t.sampler.Keep(traceID)
}

// MintContext allocates a fresh root trace context without creating a Span.
// This is the unsampled fast path's primitive: the caller gets wire-ready
// trace/span IDs (two atomic adds, zero allocations) and materialises
// SpanRecords only if the call later proves worth retaining. Nil-safe.
func (t *Tracer) MintContext() SpanContext {
	if t == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: t.nextID(), SpanID: t.nextID()}
}

// MintSpanID allocates a fresh span ID for lazily-materialised records.
// Nil-safe.
func (t *Tracer) MintSpanID() uint64 {
	if t == nil {
		return 0
	}
	return t.nextID()
}

// StartSpan begins a span for the given stage. If parent is valid the span
// joins that trace with a parent link; otherwise it roots a new trace. A nil
// tracer returns nil.
func (t *Tracer) StartSpan(stage string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tracer: t, stage: stage, start: time.Now()}
	sp.ctx.SpanID = t.nextID()
	if parent.Valid() {
		sp.ctx.TraceID = parent.TraceID
		sp.parent = parent.SpanID
	} else {
		sp.ctx.TraceID = t.nextID()
	}
	return sp
}

// Child begins a sub-span of sp for the given stage. Nil-safe.
func (sp *Span) Child(stage string) *Span {
	if sp == nil {
		return nil
	}
	return sp.tracer.StartSpan(stage, sp.ctx)
}

// Context returns the span's trace position (zero for a nil span).
func (sp *Span) Context() SpanContext {
	if sp == nil {
		return SpanContext{}
	}
	return sp.ctx
}

// Annotate attaches a key/value annotation. Nil-safe; callers should guard
// expensive value construction with `if sp != nil` themselves.
func (sp *Span) Annotate(key, value string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.annots == nil {
		sp.annots = make(map[string]string, 4)
	}
	sp.annots[key] = value
	sp.mu.Unlock()
}

// Fail records err on the span (no-op for nil span or nil error).
func (sp *Span) Fail(err error) {
	if sp == nil || err == nil {
		return
	}
	sp.mu.Lock()
	sp.err = err.Error()
	sp.mu.Unlock()
}

// Finish stamps the duration and records the span into the tracer's ring.
// Finishing twice records once. Nil-safe.
func (sp *Span) Finish() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.done {
		sp.mu.Unlock()
		return
	}
	sp.done = true
	rec := SpanRecord{
		TraceID:  sp.ctx.TraceID,
		SpanID:   sp.ctx.SpanID,
		ParentID: sp.parent,
		Stage:    sp.stage,
		Start:    sp.start,
		Duration: time.Since(sp.start),
		Err:      sp.err,
		Annots:   sp.annots,
	}
	sp.mu.Unlock()
	sp.tracer.record(rec)
}

// record appends rec to the ring, evicting the oldest entry when full, and
// runs the tail-retention trigger: a span that errored or exceeded the
// flight recorder's threshold promotes its whole trace (every span for it
// still in the ring) into the recorder; spans of already-retained traces
// keep appending so the retained trace ends up complete.
func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	t.ring[t.head] = rec
	t.head = (t.head + 1) % len(t.ring)
	if t.size < len(t.ring) {
		t.size++
	}
	t.mu.Unlock()
	if f := t.flight; f != nil {
		if reason, ok := f.shouldPromote(rec.Duration, rec.Err != ""); ok {
			f.Retain(rec.TraceID, reason, t.Trace(rec.TraceID)...)
		} else {
			f.Append(rec)
		}
	}
}

// Recent returns up to limit of the most recently finished spans, oldest
// first (all retained spans if limit <= 0). Nil-safe: a nil tracer returns
// nil.
func (t *Tracer) Recent(limit int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.size
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]SpanRecord, 0, n)
	// Oldest retained entry sits at head-size (mod len); walk forward,
	// skipping to the last n.
	start := t.head - n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Trace returns every retained span belonging to traceID, oldest first.
func (t *Tracer) Trace(traceID uint64) []SpanRecord {
	if t == nil || traceID == 0 {
		return nil
	}
	var out []SpanRecord
	for _, rec := range t.Recent(0) {
		if rec.TraceID == traceID {
			out = append(out, rec)
		}
	}
	return out
}
