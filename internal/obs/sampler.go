package obs

import (
	"math"
	"sync/atomic"
)

// Sampler makes the head sampling decision for new traces: a trace is either
// kept (eager span recording, as before sampling existed) or dropped (no
// spans; only tail retention in the flight recorder applies). The decision is
// made once, at the trace root on the client, and carried across the wire as
// an envelope trace flag so every node treats the distributed trace the same
// way.
//
// A nil *Sampler keeps everything — it is the disabled state, and the state
// obs.New() configures by default, so existing behaviour (and the cross-node
// trace integration tests) are unchanged unless a rate is set explicitly.
type Sampler struct {
	// threshold partitions the uint64 space: a trace ID hashed below it is
	// kept. Stored atomically so the rate can be retuned on a live node.
	threshold atomic.Uint64
	// decisions/kept count sampling outcomes for the /debug surfaces.
	decisions atomic.Uint64
	kept      atomic.Uint64
}

// NewSampler returns a head sampler keeping approximately rate of traces
// (rate in [0,1]). Rates at or above 1 keep everything; returning a non-nil
// sampler even then keeps the stats surfaces live. Rates at or below 0 drop
// everything (tail retention still applies).
func NewSampler(rate float64) *Sampler {
	s := &Sampler{}
	s.SetRate(rate)
	return s
}

// SetRate retunes the keep probability. Safe on a live node.
func (s *Sampler) SetRate(rate float64) {
	switch {
	case rate <= 0:
		s.threshold.Store(0)
	case rate >= 1:
		s.threshold.Store(math.MaxUint64)
	default:
		s.threshold.Store(uint64(rate * math.MaxUint64))
	}
}

// Keep decides whether the trace identified by traceID is sampled. The
// decision is a pure function of the ID (splitmix64 finalizer) so it is
// stable across retries that reuse the ID, cheap (no locks, no allocs), and
// uniform even though trace IDs from one tracer are sequential. A nil
// sampler keeps everything.
func (s *Sampler) Keep(traceID uint64) bool {
	if s == nil {
		return true
	}
	t := s.threshold.Load()
	if t == math.MaxUint64 {
		s.decisions.Add(1)
		s.kept.Add(1)
		return true
	}
	keep := mix64(traceID) < t
	s.decisions.Add(1)
	if keep {
		s.kept.Add(1)
	}
	return keep
}

// Stats returns how many head decisions were made and how many kept.
func (s *Sampler) Stats() (decisions, kept uint64) {
	if s == nil {
		return 0, 0
	}
	return s.decisions.Load(), s.kept.Load()
}

// mix64 is the splitmix64 finalizer: a cheap invertible hash with good
// avalanche, turning sequential trace IDs into uniform samples.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
