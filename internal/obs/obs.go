package obs

import (
	"encoding/json"
	"time"

	"godcdo/internal/metrics"
)

// Obs bundles the node-wide observability surfaces: a metrics registry, a
// tracer, an evolution-event log, and (optionally) a flight recorder for
// tail-retained traces. A nil *Obs disables everything; the accessors below
// are nil-safe so call sites hold one optional pointer.
type Obs struct {
	Metrics *metrics.Registry
	Tracer  *Tracer
	Events  *EventLog
	Flight  *FlightRecorder
}

// Options configures an Obs built by NewWithOptions. The zero value
// reproduces New(): full tracing at default ring sizes, every trace kept,
// no flight recorder.
type Options struct {
	// SpanRing / EventRing size the tracer and event-log rings
	// (defaults: DefaultRingSize / DefaultEventLogSize).
	SpanRing  int
	EventRing int
	// SampleRate sets the head-sampling keep probability. Values <= 0 or
	// >= 1 keep every trace (no sampler is installed), matching the
	// pre-sampling behaviour.
	SampleRate float64
	// FlightCapacity > 0 enables the flight recorder with room for that
	// many retained traces; FlightThreshold is its slow-span promotion
	// threshold (DefaultFlightThreshold when zero, errors-only when
	// negative).
	FlightCapacity  int
	FlightThreshold time.Duration
}

// New returns an Obs with tracing, events, and metrics all enabled at
// default ring sizes, keeping every trace (no sampling, no flight
// recorder).
func New() *Obs {
	return NewWithOptions(Options{})
}

// NewWithOptions returns an Obs shaped by opts; see Options for defaults.
func NewWithOptions(opts Options) *Obs {
	o := &Obs{
		Metrics: metrics.NewRegistry(),
		Tracer:  NewTracer(opts.SpanRing),
		Events:  NewEventLog(opts.EventRing),
	}
	if opts.SampleRate > 0 && opts.SampleRate < 1 {
		o.Tracer.SetSampler(NewSampler(opts.SampleRate))
	}
	if opts.FlightCapacity > 0 {
		o.Flight = NewFlightRecorder(opts.FlightCapacity, opts.FlightThreshold)
		o.Tracer.SetFlight(o.Flight)
	}
	return o
}

// NewMetricsOnly returns an Obs that collects metrics and events but does
// not trace — the shape harness experiments use, since per-call span
// recording would perturb timing sweeps.
func NewMetricsOnly() *Obs {
	return &Obs{
		Metrics: metrics.NewRegistry(),
		Events:  NewEventLog(0),
	}
}

// GetTracer returns the tracer, or nil when o is nil. Nil-safe.
func (o *Obs) GetTracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// GetMetrics returns the registry, or nil when o is nil. Nil-safe.
func (o *Obs) GetMetrics() *metrics.Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// GetEvents returns the event log, or nil when o is nil. Nil-safe.
func (o *Obs) GetEvents() *EventLog {
	if o == nil {
		return nil
	}
	return o.Events
}

// GetFlight returns the flight recorder, or nil when o is nil or tail
// retention is not configured. Nil-safe.
func (o *Obs) GetFlight() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.Flight
}

// Configurable is implemented by hosted objects (and other components) that
// accept an Obs handle after construction; legion.Node.HostObject auto-wires
// them.
type Configurable interface {
	SetObs(*Obs)
}

// Snapshot is the expvar-style JSON view of a node's observability state,
// served at /debug/obs and over the obs RPC service.
type Snapshot struct {
	Time    time.Time                `json:"time"`
	Metrics metrics.RegistrySnapshot `json:"metrics"`
	Spans   []SpanRecord             `json:"spans,omitempty"`
	Events  []Event                  `json:"events,omitempty"`
}

// SnapshotLimits bounds how much span/event history a snapshot carries.
type SnapshotLimits struct {
	Spans  int
	Events int
}

// Snapshot captures the current state. Nil-safe: a nil Obs yields a zero
// snapshot (stamped with the current time).
func (o *Obs) Snapshot(lim SnapshotLimits) Snapshot {
	snap := Snapshot{Time: time.Now()}
	if o == nil {
		return snap
	}
	if o.Metrics != nil {
		snap.Metrics = o.Metrics.Snapshot()
	}
	snap.Spans = o.Tracer.Recent(lim.Spans)
	snap.Events = o.Events.Recent(lim.Events)
	return snap
}

// SnapshotJSON renders a snapshot as indented JSON.
func (o *Obs) SnapshotJSON(lim SnapshotLimits) ([]byte, error) {
	return json.MarshalIndent(o.Snapshot(lim), "", "  ")
}
