package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
)

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
}

func uitoa(n uint64) string { return strconv.FormatUint(n, 10) }
