package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Retention reasons recorded on flight-recorder entries.
const (
	RetainError = "error" // a span in the trace failed
	RetainSlow  = "slow"  // a span exceeded the latency threshold
)

// Defaults for the flight recorder's bounds.
const (
	// DefaultFlightCapacity is how many retained traces the recorder holds
	// before evicting the oldest.
	DefaultFlightCapacity = 256
	// DefaultFlightThreshold is the latency above which a span promotes its
	// trace to retained status.
	DefaultFlightThreshold = 100 * time.Millisecond
	// maxFlightSpans caps how many spans one retained trace accumulates, so
	// a pathological retry storm cannot grow an entry without bound.
	maxFlightSpans = 128
)

// FlightTrace is one retained trace: the complete set of spans the node saw
// for a trace that errored or ran slow, regardless of the head-sampling
// decision. This is what makes the 1-in-10k slow request explainable at 1%
// head sampling.
type FlightTrace struct {
	TraceID  uint64        `json:"trace_id"`
	Reason   string        `json:"reason"`
	Retained time.Time     `json:"retained"`
	MaxNs    time.Duration `json:"max_ns"` // slowest span in the trace
	Spans    []SpanRecord  `json:"spans"`
}

// FlightStats summarises recorder activity for gauges and /debug surfaces.
type FlightStats struct {
	Live     int    `json:"live"`     // traces currently retained
	Retained uint64 `json:"retained"` // traces ever promoted
	Evicted  uint64 `json:"evicted"`  // traces pushed out by capacity
}

// FlightRecorder is a bounded ring of retained traces. Promotion is
// tail-based: a trace enters when any of its spans errors or exceeds the
// latency threshold — whether those spans were recorded eagerly (sampled
// traces) or materialised lazily on completion (unsampled traces). Once a
// trace is retained, spans that finish later keep appending to it, so the
// recorder ends up holding the *complete* trace, not just the triggering
// span. When full, the oldest retained trace is evicted FIFO.
//
// All methods are nil-safe so unconfigured nodes pay one pointer compare.
type FlightRecorder struct {
	threshold atomic.Int64 // promotion latency threshold, ns (0 = errors only)

	mu       sync.Mutex
	capacity int
	traces   map[uint64]*FlightTrace
	order    []uint64 // retention order, oldest first

	retained atomic.Uint64
	evicted  atomic.Uint64
}

// NewFlightRecorder returns a recorder holding up to capacity traces
// (DefaultFlightCapacity if capacity <= 0), promoting on error or on spans
// at or above threshold (DefaultFlightThreshold if threshold == 0; negative
// disables latency promotion, retaining errors only).
func NewFlightRecorder(capacity int, threshold time.Duration) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	f := &FlightRecorder{
		capacity: capacity,
		traces:   make(map[uint64]*FlightTrace, capacity),
		order:    make([]uint64, 0, capacity),
	}
	if threshold == 0 {
		threshold = DefaultFlightThreshold
	}
	f.SetThreshold(threshold)
	return f
}

// Threshold returns the promotion latency threshold (0 = errors only).
func (f *FlightRecorder) Threshold() time.Duration {
	if f == nil {
		return 0
	}
	ns := f.threshold.Load()
	if ns < 0 {
		return 0
	}
	return time.Duration(ns)
}

// SetThreshold retunes the promotion threshold on a live node. Negative
// disables latency-based promotion (errors still retain).
func (f *FlightRecorder) SetThreshold(d time.Duration) {
	if f == nil {
		return
	}
	f.threshold.Store(int64(d))
}

// shouldPromote reports whether a span with the given duration/error state
// triggers retention, and the reason. Cheap: one atomic load.
func (f *FlightRecorder) shouldPromote(d time.Duration, errored bool) (string, bool) {
	if f == nil {
		return "", false
	}
	if errored {
		return RetainError, true
	}
	if th := f.threshold.Load(); th > 0 && int64(d) >= th {
		return RetainSlow, true
	}
	return "", false
}

// ShouldRetain reports whether a call outcome (duration + error) would
// promote its trace. Exposed for lazy (unsampled) call paths that decide at
// completion whether to materialise spans at all.
func (f *FlightRecorder) ShouldRetain(d time.Duration, errored bool) bool {
	_, ok := f.shouldPromote(d, errored)
	return ok
}

// Retain promotes traceID with the given spans, creating the entry if needed
// and merging new spans (deduplicated by span ID) into an existing one. The
// first promotion's reason sticks. Nil-safe.
func (f *FlightRecorder) Retain(traceID uint64, reason string, spans ...SpanRecord) {
	if f == nil || traceID == 0 {
		return
	}
	f.mu.Lock()
	ft, ok := f.traces[traceID]
	if !ok {
		if len(f.order) >= f.capacity {
			oldest := f.order[0]
			f.order = f.order[1:]
			delete(f.traces, oldest)
			f.evicted.Add(1)
		}
		ft = &FlightTrace{TraceID: traceID, Reason: reason, Retained: time.Now()}
		f.traces[traceID] = ft
		f.order = append(f.order, traceID)
		f.retained.Add(1)
	}
	for _, rec := range spans {
		f.appendLocked(ft, rec)
	}
	f.mu.Unlock()
}

// Append adds rec to an already-retained trace; it does nothing when the
// trace was never promoted. This is how spans finishing after the promotion
// trigger (e.g. the client root closing after a server span errored)
// complete the retained trace. Nil-safe.
func (f *FlightRecorder) Append(rec SpanRecord) {
	if f == nil || rec.TraceID == 0 {
		return
	}
	f.mu.Lock()
	if ft, ok := f.traces[rec.TraceID]; ok {
		f.appendLocked(ft, rec)
	}
	f.mu.Unlock()
}

// appendLocked merges rec into ft, skipping duplicates and enforcing the
// per-trace span cap.
func (f *FlightRecorder) appendLocked(ft *FlightTrace, rec SpanRecord) {
	if len(ft.Spans) >= maxFlightSpans {
		return
	}
	for i := range ft.Spans {
		if ft.Spans[i].SpanID == rec.SpanID && rec.SpanID != 0 {
			return
		}
	}
	ft.Spans = append(ft.Spans, rec)
	if rec.Duration > ft.MaxNs {
		ft.MaxNs = rec.Duration
	}
}

// Retained reports whether traceID is currently held. Nil-safe.
func (f *FlightRecorder) Retained(traceID uint64) bool {
	if f == nil || traceID == 0 {
		return false
	}
	f.mu.Lock()
	_, ok := f.traces[traceID]
	f.mu.Unlock()
	return ok
}

// Trace returns a copy of the retained trace, or false if not held.
func (f *FlightRecorder) Trace(traceID uint64) (FlightTrace, bool) {
	if f == nil {
		return FlightTrace{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ft, ok := f.traces[traceID]
	if !ok {
		return FlightTrace{}, false
	}
	return copyFlightTrace(ft), true
}

// Recent returns up to limit retained traces, most recently promoted first
// (all if limit <= 0). Nil-safe.
func (f *FlightRecorder) Recent(limit int) []FlightTrace {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.order)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]FlightTrace, 0, n)
	for i := len(f.order) - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, copyFlightTrace(f.traces[f.order[i]]))
	}
	return out
}

// Slowest returns up to limit retained traces ordered by their slowest span,
// longest first (all if limit <= 0). Nil-safe.
func (f *FlightRecorder) Slowest(limit int) []FlightTrace {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]FlightTrace, 0, len(f.order))
	for _, id := range f.order {
		out = append(out, copyFlightTrace(f.traces[id]))
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].MaxNs > out[j].MaxNs })
	if limit > 0 && limit < len(out) {
		out = out[:limit]
	}
	return out
}

// Stats returns recorder activity counters. Nil-safe.
func (f *FlightRecorder) Stats() FlightStats {
	if f == nil {
		return FlightStats{}
	}
	f.mu.Lock()
	live := len(f.order)
	f.mu.Unlock()
	return FlightStats{
		Live:     live,
		Retained: f.retained.Load(),
		Evicted:  f.evicted.Load(),
	}
}

// copyFlightTrace deep-copies the span slice so callers can hold the result
// without racing recorder mutation.
func copyFlightTrace(ft *FlightTrace) FlightTrace {
	cp := *ft
	cp.Spans = append([]SpanRecord(nil), ft.Spans...)
	return cp
}
