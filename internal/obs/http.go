package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler returns an http.Handler serving the node's observability state:
//
//	/debug/obs         — full JSON snapshot (metrics + recent spans + events)
//	/debug/obs/spans   — recent spans, ?trace=<id> filters to one trace,
//	                     ?limit=<n> bounds the count
//	/debug/obs/events  — recent evolution events, ?limit=<n> bounds the count
//
// The handler is nil-safe on a nil Obs (it serves empty snapshots), so
// cmd/dcdo-node can register it unconditionally.
func (o *Obs) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.Snapshot(SnapshotLimits{Spans: 256, Events: 256}))
	})
	mux.HandleFunc("/debug/obs/spans", func(w http.ResponseWriter, r *http.Request) {
		limit := queryInt(r, "limit", 256)
		var spans []SpanRecord
		if tid := queryUint64(r, "trace"); tid != 0 {
			spans = o.GetTracer().Trace(tid)
		} else {
			spans = o.GetTracer().Recent(limit)
		}
		if spans == nil {
			spans = []SpanRecord{}
		}
		writeJSON(w, spans)
	})
	mux.HandleFunc("/debug/obs/events", func(w http.ResponseWriter, r *http.Request) {
		events := o.GetEvents().Recent(queryInt(r, "limit", 256))
		if events == nil {
			events = []Event{}
		}
		writeJSON(w, events)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		fl := o.GetFlight()
		if tid := queryUint64(r, "trace"); tid != 0 {
			ft, ok := fl.Trace(tid)
			if !ok {
				http.Error(w, "trace not retained", http.StatusNotFound)
				return
			}
			writeJSON(w, ft)
			return
		}
		limit := queryInt(r, "limit", 64)
		var traces []FlightTrace
		if r.URL.Query().Get("sort") == "slowest" {
			traces = fl.Slowest(limit)
		} else {
			traces = fl.Recent(limit)
		}
		if traces == nil {
			traces = []FlightTrace{}
		}
		writeJSON(w, struct {
			Stats  FlightStats   `json:"stats"`
			Traces []FlightTrace `json:"traces"`
		}{fl.Stats(), traces})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func queryInt(r *http.Request, key string, def int) int {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return def
	}
	return n
}

func queryUint64(r *http.Request, key string) uint64 {
	s := r.URL.Query().Get(key)
	if s == "" {
		return 0
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0
	}
	return n
}
