package obs

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan(StageClientInvoke, SpanContext{})
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	// Every method must be callable on the nil span.
	sp.Annotate("k", "v")
	sp.Fail(errors.New("boom"))
	child := sp.Child(StageClientBind)
	if child != nil {
		t.Fatal("nil span produced a child")
	}
	if ctx := sp.Context(); ctx.Valid() {
		t.Fatal("nil span has a valid context")
	}
	sp.Finish()
	if got := tr.Recent(10); got != nil {
		t.Fatalf("nil tracer Recent = %v", got)
	}
	if got := tr.Trace(1); got != nil {
		t.Fatalf("nil tracer Trace = %v", got)
	}
}

func TestSpanParentLinks(t *testing.T) {
	tr := NewTracer(16)
	root := tr.StartSpan(StageClientInvoke, SpanContext{})
	if !root.Context().Valid() {
		t.Fatal("root context invalid")
	}
	child := root.Child(StageClientBind)
	grand := child.Child(StageClientAttempt)
	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child left the trace")
	}
	if grand.Context().TraceID != root.Context().TraceID {
		t.Fatal("grandchild left the trace")
	}
	grand.Finish()
	child.Finish()
	root.Fail(errors.New("late failure"))
	root.Finish()
	root.Finish() // double-finish records once

	recs := tr.Trace(root.Context().TraceID)
	if len(recs) != 3 {
		t.Fatalf("got %d spans in trace, want 3", len(recs))
	}
	byID := make(map[uint64]SpanRecord)
	for _, r := range recs {
		byID[r.SpanID] = r
	}
	g := byID[grand.Context().SpanID]
	c := byID[child.Context().SpanID]
	r := byID[root.Context().SpanID]
	if g.ParentID != c.SpanID {
		t.Fatalf("grandchild parent = %d, want %d", g.ParentID, c.SpanID)
	}
	if c.ParentID != r.SpanID {
		t.Fatalf("child parent = %d, want %d", c.ParentID, r.SpanID)
	}
	if r.ParentID != 0 {
		t.Fatalf("root parent = %d, want 0", r.ParentID)
	}
	if r.Err != "late failure" {
		t.Fatalf("root err = %q", r.Err)
	}
}

func TestSpanJoinsRemoteParent(t *testing.T) {
	// Simulates the wire: a server-side tracer adopts a client-side context.
	client := NewTracer(16)
	server := NewTracer(16)
	cs := client.StartSpan(StageClientAttempt, SpanContext{})
	remote := SpanContext{TraceID: cs.Context().TraceID, SpanID: cs.Context().SpanID}
	ss := server.StartSpan(StageServerDispatch, remote)
	ss.Finish()
	cs.Finish()
	recs := server.Trace(cs.Context().TraceID)
	if len(recs) != 1 {
		t.Fatalf("server trace has %d spans, want 1", len(recs))
	}
	if recs[0].ParentID != cs.Context().SpanID {
		t.Fatalf("server span parent = %d, want client span %d", recs[0].ParentID, cs.Context().SpanID)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.StartSpan(StageDCDOFunc, SpanContext{}).Finish()
	}
	recs := tr.Recent(0)
	if len(recs) != 4 {
		t.Fatalf("ring retained %d, want 4", len(recs))
	}
	if got := tr.Recent(2); len(got) != 2 {
		t.Fatalf("Recent(2) returned %d", len(got))
	}
	// Recent must be oldest-first.
	if !recs[0].Start.Before(recs[3].Start) && !recs[0].Start.Equal(recs[3].Start) {
		t.Fatal("Recent not oldest-first")
	}
}

func TestSpanAnnotations(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.StartSpan(StageClientInvoke, SpanContext{})
	sp.Annotate("loid", "1.2.3")
	sp.Annotate("method", "leaf0")
	sp.Finish()
	recs := tr.Recent(1)
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Annots["loid"] != "1.2.3" || recs[0].Annots["method"] != "leaf0" {
		t.Fatalf("annotations = %v", recs[0].Annots)
	}
}

func TestEventLog(t *testing.T) {
	var nilLog *EventLog
	nilLog.Append(Event{Kind: "x"}) // must not panic
	if nilLog.Recent(5) != nil || nilLog.Len() != 0 {
		t.Fatal("nil log not empty")
	}

	l := NewEventLog(4)
	for i := 0; i < 6; i++ {
		l.Append(Event{Kind: "enabled", Function: "f"})
	}
	evs := l.Recent(0)
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	// Sequence numbers keep counting across eviction, oldest first.
	if evs[0].Seq != 3 || evs[3].Seq != 6 {
		t.Fatalf("seqs = %d..%d, want 3..6", evs[0].Seq, evs[3].Seq)
	}
	if evs[0].Time.IsZero() {
		t.Fatal("event time not stamped")
	}
	if got := l.Recent(2); len(got) != 2 || got[1].Seq != 6 {
		t.Fatalf("Recent(2) = %+v", got)
	}
}

func TestObsNilSafety(t *testing.T) {
	var o *Obs
	if o.GetTracer() != nil || o.GetMetrics() != nil || o.GetEvents() != nil {
		t.Fatal("nil Obs accessors not nil")
	}
	snap := o.Snapshot(SnapshotLimits{Spans: 10, Events: 10})
	if len(snap.Spans) != 0 || len(snap.Events) != 0 {
		t.Fatalf("nil Obs snapshot not empty: %+v", snap)
	}
	if snap.Time.IsZero() {
		t.Fatal("snapshot time not stamped")
	}
}

func TestObsSnapshotJSON(t *testing.T) {
	o := New()
	o.Metrics.Histogram("stage.bind").Observe(time.Millisecond)
	o.Tracer.StartSpan(StageClientInvoke, SpanContext{}).Finish()
	o.Events.Append(Event{Kind: "incorporated", Component: "c1"})
	data, err := o.SnapshotJSON(SnapshotLimits{Spans: 10, Events: 10})
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if snap.Metrics.Histograms["stage.bind"].Count != 1 {
		t.Fatalf("metrics missing from snapshot: %s", data)
	}
	if len(snap.Spans) != 1 || len(snap.Events) != 1 {
		t.Fatalf("spans/events missing from snapshot: %s", data)
	}
}

func TestHTTPHandler(t *testing.T) {
	o := New()
	sp := o.Tracer.StartSpan(StageServerDispatch, SpanContext{})
	sp.Finish()
	o.Tracer.StartSpan(StageClientInvoke, SpanContext{}).Finish()
	o.Events.Append(Event{Kind: "disabled", Function: "g"})

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	var snap Snapshot
	getJSON(t, srv.URL+"/debug/obs", &snap)
	if len(snap.Spans) != 2 || len(snap.Events) != 1 {
		t.Fatalf("/debug/obs: %d spans, %d events", len(snap.Spans), len(snap.Events))
	}

	var spans []SpanRecord
	getJSON(t, srv.URL+"/debug/obs/spans?limit=1", &spans)
	if len(spans) != 1 {
		t.Fatalf("/debug/obs/spans?limit=1 returned %d", len(spans))
	}
	spans = nil
	getJSON(t, srv.URL+"/debug/obs/spans?trace="+uitoa(sp.Context().TraceID), &spans)
	if len(spans) != 1 || spans[0].Stage != StageServerDispatch {
		t.Fatalf("trace filter: %+v", spans)
	}

	var events []Event
	getJSON(t, srv.URL+"/debug/obs/events", &events)
	if len(events) != 1 || events[0].Kind != "disabled" {
		t.Fatalf("/debug/obs/events: %+v", events)
	}
}

func TestHTTPHandlerNilObs(t *testing.T) {
	var o *Obs
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	var spans []SpanRecord
	getJSON(t, srv.URL+"/debug/obs/spans", &spans)
	if len(spans) != 0 {
		t.Fatalf("nil obs spans: %+v", spans)
	}
	var snap Snapshot
	getJSON(t, srv.URL+"/debug/obs", &snap)
}
