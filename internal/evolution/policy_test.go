package evolution

import (
	"errors"
	"testing"

	"godcdo/internal/version"
)

func TestCheckTransitionRequiresInstantiable(t *testing.T) {
	for _, s := range []Style{SingleVersion, MultiNoUpdate, MultiIncreasing, MultiGeneral, MultiHybrid} {
		err := s.CheckTransition(TransitionInput{
			From: version.ID{1}, To: version.ID{1, 1}, ToInstantiable: false,
		})
		if !errors.Is(err, ErrNotInstantiable) {
			t.Errorf("%s: err = %v, want ErrNotInstantiable", s, err)
		}
	}
}

func TestSingleVersionOnlyAllowsCurrent(t *testing.T) {
	in := TransitionInput{
		From: version.ID{1}, To: version.ID{1, 2},
		Current: version.ID{1, 2}, ToInstantiable: true,
	}
	if err := SingleVersion.CheckTransition(in); err != nil {
		t.Fatal(err)
	}
	in.To = version.ID{1, 1} // instantiable but not current
	if err := SingleVersion.CheckTransition(in); !errors.Is(err, ErrTransitionDenied) {
		t.Fatalf("err = %v, want ErrTransitionDenied", err)
	}
}

func TestMultiNoUpdateAllowsCreationOnly(t *testing.T) {
	// Creation: From is zero.
	if err := MultiNoUpdate.CheckTransition(TransitionInput{
		To: version.ID{1}, ToInstantiable: true,
	}); err != nil {
		t.Fatal(err)
	}
	// Evolution of a deployed instance: denied.
	err := MultiNoUpdate.CheckTransition(TransitionInput{
		From: version.ID{1}, To: version.ID{1, 1}, ToInstantiable: true,
	})
	if !errors.Is(err, ErrTransitionDenied) {
		t.Fatalf("err = %v, want ErrTransitionDenied", err)
	}
}

func TestMultiIncreasingRequiresDescent(t *testing.T) {
	// The paper's example: 3.2 → 3.2.1 and 3.2 → 3.2.0.4 allowed; 3.2 →
	// 3.3 denied.
	from := version.ID{3, 2}
	for _, c := range []struct {
		to version.ID
		ok bool
	}{
		{version.ID{3, 2, 1}, true},
		{version.ID{3, 2, 0, 4}, true},
		{version.ID{3, 3}, false},
		{version.ID{3, 2}, false}, // same version is not a descendant
	} {
		err := MultiIncreasing.CheckTransition(TransitionInput{
			From: from, To: c.to, ToInstantiable: true,
		})
		if c.ok && err != nil {
			t.Errorf("3.2 -> %s: %v", c.to, err)
		}
		if !c.ok && !errors.Is(err, ErrTransitionDenied) {
			t.Errorf("3.2 -> %s: err = %v, want ErrTransitionDenied", c.to, err)
		}
	}
	// Creation from zero is always legal.
	if err := MultiIncreasing.CheckTransition(TransitionInput{
		To: version.ID{3, 3}, ToInstantiable: true,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiGeneralAllowsAnything(t *testing.T) {
	if err := MultiGeneral.CheckTransition(TransitionInput{
		From: version.ID{3, 2}, To: version.ID{1}, ToInstantiable: true,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiHybridUsesDerivationRules(t *testing.T) {
	ok := TransitionInput{
		From: version.ID{2}, To: version.ID{1}, ToInstantiable: true,
	}
	if err := MultiHybrid.CheckTransition(ok); err != nil {
		t.Fatal(err)
	}
	bad := ok
	bad.DerivationErr = errors.New("mandatory function removed")
	if err := MultiHybrid.CheckTransition(bad); !errors.Is(err, ErrTransitionDenied) {
		t.Fatalf("err = %v, want ErrTransitionDenied", err)
	}
}

func TestStyleAndPolicyStrings(t *testing.T) {
	for s, want := range map[Style]string{
		SingleVersion: "single-version", MultiNoUpdate: "multi-version/no-update",
		MultiIncreasing: "multi-version/increasing", MultiGeneral: "multi-version/general",
		MultiHybrid: "multi-version/hybrid", Style(42): "style(42)",
	} {
		if got := s.String(); got != want {
			t.Errorf("Style(%d) = %q, want %q", s, got, want)
		}
	}
	for p, want := range map[UpdatePolicy]string{
		Proactive: "proactive", Explicit: "explicit", Lazy: "lazy", UpdatePolicy(9): "policy(9)",
	} {
		if got := p.String(); got != want {
			t.Errorf("UpdatePolicy(%d) = %q, want %q", p, got, want)
		}
	}
}

func TestUnknownStyleErrors(t *testing.T) {
	if err := Style(42).CheckTransition(TransitionInput{ToInstantiable: true}); err == nil {
		t.Fatal("unknown style accepted")
	}
}

func TestStrictConsistency(t *testing.T) {
	if StrictConsistency().EveryCalls != 1 {
		t.Fatal("strict consistency should check on every call")
	}
}
