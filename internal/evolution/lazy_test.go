package evolution

import (
	"context"

	"errors"
	"testing"
	"time"

	"godcdo/internal/component"
	"godcdo/internal/core"
	"godcdo/internal/dfm"
	"godcdo/internal/naming"
	"godcdo/internal/registry"
	"godcdo/internal/vclock"
	"godcdo/internal/version"
)

// lazyFixture builds a DCDO with a single "greet" component and a fake
// manager view serving two instantiable descriptors: v1 enables greet@en,
// v1.1 enables greet@fr.
type lazyFixture struct {
	dcdo *core.DCDO
	mgr  *fakeView
}

type fakeView struct {
	current version.ID
	descs   map[string]*dfm.Descriptor
	err     error
}

func (f *fakeView) CurrentVersion() (version.ID, error) {
	if f.err != nil {
		return nil, f.err
	}
	return f.current.Clone(), nil
}

func (f *fakeView) InstantiableDescriptor(v version.ID) (*dfm.Descriptor, error) {
	if f.err != nil {
		return nil, f.err
	}
	d, ok := f.descs[v.String()]
	if !ok {
		return nil, errors.New("fake: unknown version")
	}
	return d.Clone(), nil
}

func greetFunc(msg string) registry.Func {
	return func(registry.Caller, []byte) ([]byte, error) { return []byte(msg), nil }
}

func newLazyFixture(t *testing.T) *lazyFixture {
	t.Helper()
	reg := registry.New()
	if _, err := reg.Register("en:1", registry.NativeImplType, map[string]registry.Func{"greet": greetFunc("hello")}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("fr:1", registry.NativeImplType, map[string]registry.Func{"greet": greetFunc("bonjour")}); err != nil {
		t.Fatal(err)
	}

	icoEN := naming.LOID{Domain: 1, Class: 8, Instance: 1}
	icoFR := naming.LOID{Domain: 1, Class: 8, Instance: 2}
	comps := map[naming.LOID]*component.Component{}
	for _, c := range []struct {
		ico  naming.LOID
		id   string
		code string
	}{{icoEN, "en", "en:1"}, {icoFR, "fr", "fr:1"}} {
		comp, err := component.NewSynthetic(component.Descriptor{
			ID: c.id, Revision: 1, CodeRef: c.code,
			Impl: registry.NativeImplType, CodeSize: 16,
			Functions: []component.FunctionDecl{{Name: "greet", Exported: true}},
		})
		if err != nil {
			t.Fatal(err)
		}
		comps[c.ico] = comp
	}
	fetcher := component.FetcherFunc(func(ico naming.LOID) (*component.Component, error) {
		c, ok := comps[ico]
		if !ok {
			return nil, errors.New("no such ico")
		}
		return c, nil
	})

	d := core.New(core.Config{
		LOID:     naming.LOID{Domain: 1, Class: 1, Instance: 1},
		Registry: reg,
		Fetcher:  fetcher,
	})

	mkDesc := func(enabled string) *dfm.Descriptor {
		desc := dfm.NewDescriptor()
		desc.Components["en"] = dfm.ComponentRef{ICO: icoEN, CodeRef: "en:1", Impl: registry.NativeImplType, CodeSize: 16, Revision: 1}
		desc.Components["fr"] = dfm.ComponentRef{ICO: icoFR, CodeRef: "fr:1", Impl: registry.NativeImplType, CodeSize: 16, Revision: 1}
		desc.Entries = []dfm.EntryDesc{
			{Function: "greet", Component: "en", Exported: true, Enabled: enabled == "en"},
			{Function: "greet", Component: "fr", Exported: true, Enabled: enabled == "fr"},
		}
		return desc
	}
	v1 := version.ID{1}
	v11 := version.ID{1, 1}
	mgr := &fakeView{
		current: v1,
		descs: map[string]*dfm.Descriptor{
			v1.String():  mkDesc("en"),
			v11.String(): mkDesc("fr"),
		},
	}
	if _, err := d.ApplyDescriptor(context.Background(), mkDesc("en"), v1); err != nil {
		t.Fatal(err)
	}
	return &lazyFixture{dcdo: d, mgr: mgr}
}

func TestLazyStrictConsistencyUpdatesOnNextCall(t *testing.T) {
	f := newLazyFixture(t)
	lu := NewLazyUpdater(f.dcdo, f.mgr, StrictConsistency(), nil)

	out, err := lu.InvokeMethod("greet", nil)
	if err != nil || string(out) != "hello" {
		t.Fatalf("greet = %q, %v", out, err)
	}
	// Manager designates a new current version; the very next call updates
	// the object first.
	f.mgr.current = version.ID{1, 1}
	out, err = lu.InvokeMethod("greet", nil)
	if err != nil || string(out) != "bonjour" {
		t.Fatalf("greet after update = %q, %v", out, err)
	}
	if !f.dcdo.Version().Equal(version.ID{1, 1}) {
		t.Fatalf("version = %v", f.dcdo.Version())
	}
	checks, updates := lu.Stats()
	if checks < 2 || updates != 1 {
		t.Fatalf("stats = %d checks %d updates", checks, updates)
	}
}

func TestLazyEveryKChecksOnlyEveryKth(t *testing.T) {
	f := newLazyFixture(t)
	lu := NewLazyUpdater(f.dcdo, f.mgr, LazySpec{EveryCalls: 3}, nil)
	f.mgr.current = version.ID{1, 1}

	// Calls 1 and 2: no check; still the old implementation.
	for i := 0; i < 2; i++ {
		out, err := lu.InvokeMethod("greet", nil)
		if err != nil || string(out) != "hello" {
			t.Fatalf("call %d = %q, %v", i+1, out, err)
		}
	}
	// Call 3 triggers the check and updates.
	out, err := lu.InvokeMethod("greet", nil)
	if err != nil || string(out) != "bonjour" {
		t.Fatalf("call 3 = %q, %v", out, err)
	}
}

func TestLazyEveryTUsesClock(t *testing.T) {
	f := newLazyFixture(t)
	clk := vclock.NewVirtual(time.Unix(0, 0))
	lu := NewLazyUpdater(f.dcdo, f.mgr, LazySpec{EveryTime: 10 * time.Second}, clk)
	f.mgr.current = version.ID{1, 1}

	out, _ := lu.InvokeMethod("greet", nil)
	if string(out) != "hello" {
		t.Fatalf("before interval = %q", out)
	}
	clk.Advance(11 * time.Second)
	out, _ = lu.InvokeMethod("greet", nil)
	if string(out) != "bonjour" {
		t.Fatalf("after interval = %q", out)
	}
}

func TestLazyOnMigrate(t *testing.T) {
	f := newLazyFixture(t)
	lu := NewLazyUpdater(f.dcdo, f.mgr, LazySpec{OnMigrate: true}, nil)
	f.mgr.current = version.ID{1, 1}

	// Plain calls never check (no call/time trigger configured).
	out, _ := lu.InvokeMethod("greet", nil)
	if string(out) != "hello" {
		t.Fatalf("pre-migrate = %q", out)
	}
	if err := lu.OnMigrate(); err != nil {
		t.Fatal(err)
	}
	out, _ = lu.InvokeMethod("greet", nil)
	if string(out) != "bonjour" {
		t.Fatalf("post-migrate = %q", out)
	}

	// OnMigrate is a no-op when the spec does not enable it.
	lu2 := NewLazyUpdater(f.dcdo, f.mgr, LazySpec{}, nil)
	if err := lu2.OnMigrate(); err != nil {
		t.Fatal(err)
	}
}

func TestLazyRestrictSkipsNonDescendants(t *testing.T) {
	f := newLazyFixture(t)
	lu := NewLazyUpdater(f.dcdo, f.mgr, StrictConsistency(), nil)
	lu.Restrict = true

	// Current version 2 is not derived from the object's version 1: the
	// object stays put (§3.5).
	v2 := version.ID{2}
	f.mgr.descs[v2.String()] = f.mgr.descs[version.ID{1, 1}.String()]
	f.mgr.current = v2

	out, err := lu.InvokeMethod("greet", nil)
	if err != nil || string(out) != "hello" {
		t.Fatalf("greet = %q, %v", out, err)
	}
	if !f.dcdo.Version().Equal(version.ID{1}) {
		t.Fatalf("version = %v, want unchanged 1", f.dcdo.Version())
	}

	// A descendant is applied.
	f.mgr.current = version.ID{1, 1}
	out, _ = lu.InvokeMethod("greet", nil)
	if string(out) != "bonjour" {
		t.Fatalf("greet = %q", out)
	}
}

func TestLazyManagerUnreachableServesStale(t *testing.T) {
	f := newLazyFixture(t)
	lu := NewLazyUpdater(f.dcdo, f.mgr, StrictConsistency(), nil)
	f.mgr.err = errors.New("manager down")

	out, err := lu.InvokeMethod("greet", nil)
	if err != nil || string(out) != "hello" {
		t.Fatalf("greet with manager down = %q, %v", out, err)
	}
}

func TestLazyCheckNowNoCurrentVersion(t *testing.T) {
	f := newLazyFixture(t)
	f.mgr.current = nil
	lu := NewLazyUpdater(f.dcdo, f.mgr, StrictConsistency(), nil)
	if err := lu.CheckNow(); err != nil {
		t.Fatal(err)
	}
	if f.dcdo.Version().Equal(version.ID{}) {
		t.Fatal("version should be unchanged")
	}
}

func TestLazyDCDOAccessor(t *testing.T) {
	f := newLazyFixture(t)
	lu := NewLazyUpdater(f.dcdo, f.mgr, StrictConsistency(), nil)
	if lu.DCDO() != f.dcdo {
		t.Fatal("DCDO() returned wrong object")
	}
}
