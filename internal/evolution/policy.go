// Package evolution implements the evolution management strategies of
// §3.3–3.5: the styles that govern which version transitions are legal
// (single-version, multi-version no-update / increasing-version-number /
// general / hybrid) and the update policies that govern when instances are
// brought to a new version (proactive, explicit, lazy — per call, every k
// calls, every t time units, on migration).
package evolution

import (
	"errors"
	"fmt"
	"time"

	"godcdo/internal/version"
)

// Errors returned by transition checks.
var (
	// ErrTransitionDenied is returned when a style forbids a version
	// transition.
	ErrTransitionDenied = errors.New("evolution: transition denied by style")
	// ErrNotInstantiable is returned when the target version is not
	// instantiable.
	ErrNotInstantiable = errors.New("evolution: target version not instantiable")
)

// Style selects how a DCDO Manager lets objects move between versions.
type Style int

// Styles from §3.4 and §3.5.
const (
	// SingleVersion: exactly one official current version; instances only
	// evolve to it.
	SingleVersion Style = iota + 1
	// MultiNoUpdate: instances are created at a version and never evolve.
	MultiNoUpdate
	// MultiIncreasing: an instance may only evolve to versions derived
	// from its current version (a descending path in the version tree).
	MultiIncreasing
	// MultiGeneral: an instance may evolve to any instantiable version.
	MultiGeneral
	// MultiHybrid: like general, but transitions that would remove a
	// mandatory function or unfreeze a permanent implementation are
	// disallowed (checked via descriptor derivation rules).
	MultiHybrid
)

// String implements fmt.Stringer.
func (s Style) String() string {
	switch s {
	case SingleVersion:
		return "single-version"
	case MultiNoUpdate:
		return "multi-version/no-update"
	case MultiIncreasing:
		return "multi-version/increasing"
	case MultiGeneral:
		return "multi-version/general"
	case MultiHybrid:
		return "multi-version/hybrid"
	default:
		return fmt.Sprintf("style(%d)", int(s))
	}
}

// TransitionInput carries everything a style needs to judge a transition.
type TransitionInput struct {
	// From is the instance's current version; To the requested one.
	From, To version.ID
	// Current is the manager's designated current version (single-version
	// style only).
	Current version.ID
	// ToInstantiable reports whether To is marked instantiable.
	ToInstantiable bool
	// DerivationErr is the result of checking To's descriptor against
	// From's under the mandatory/permanent rules (hybrid style only); nil
	// when the rules hold.
	DerivationErr error
}

// CheckTransition applies the style's rules to one proposed transition.
func (s Style) CheckTransition(in TransitionInput) error {
	if !in.ToInstantiable {
		return fmt.Errorf("%w: %s", ErrNotInstantiable, in.To)
	}
	switch s {
	case SingleVersion:
		// "DCDOs will only evolve to the current version maintained by the
		// DCDO Manager, not to any other version, even if it is marked as
		// instantiable."
		if !in.To.Equal(in.Current) {
			return fmt.Errorf("%w: %s only allows the current version %s, not %s",
				ErrTransitionDenied, s, in.Current, in.To)
		}
		return nil
	case MultiNoUpdate:
		if in.From.IsZero() {
			return nil // creation is allowed; evolution is not
		}
		return fmt.Errorf("%w: %s never evolves deployed instances", ErrTransitionDenied, s)
	case MultiIncreasing:
		if in.From.IsZero() || in.To.IsDescendantOf(in.From) {
			return nil
		}
		return fmt.Errorf("%w: %s requires %s to derive from %s",
			ErrTransitionDenied, s, in.To, in.From)
	case MultiGeneral:
		return nil
	case MultiHybrid:
		if in.DerivationErr != nil {
			return fmt.Errorf("%w: %s: %v", ErrTransitionDenied, s, in.DerivationErr)
		}
		return nil
	default:
		return fmt.Errorf("evolution: unknown style %d", int(s))
	}
}

// UpdatePolicy selects when instances are brought to a newly designated
// current version (§3.4).
type UpdatePolicy int

// Update policies.
const (
	// Proactive: designating a new current version triggers an immediate
	// attempt to update all existing instances.
	Proactive UpdatePolicy = iota + 1
	// Explicit: the manager relies on other objects calling in to evolve
	// instances.
	Explicit
	// Lazy: each DCDO decides when to check for updates (see LazySpec).
	Lazy
)

// String implements fmt.Stringer.
func (p UpdatePolicy) String() string {
	switch p {
	case Proactive:
		return "proactive"
	case Explicit:
		return "explicit"
	case Lazy:
		return "lazy"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// LazySpec parameterises the lazy update policy's variations: check on
// every call (EveryCalls == 1), every k calls, every t time units, and/or on
// migration. Zero fields disable that trigger.
type LazySpec struct {
	EveryCalls uint64
	EveryTime  time.Duration
	OnMigrate  bool
}

// StrictConsistency is the "simplest variation": consult the manager on
// every invocation.
func StrictConsistency() LazySpec { return LazySpec{EveryCalls: 1} }
