package evolution

import (
	"context"
	"fmt"
	"sync"
	"time"

	"godcdo/internal/core"
	"godcdo/internal/dfm"
	"godcdo/internal/rpc"
	"godcdo/internal/vclock"
	"godcdo/internal/version"
)

// ManagerView is the slice of a DCDO Manager a lazily updating DCDO needs:
// the designated current version and the descriptor of any instantiable
// version. Local managers implement it directly; remote managers are
// reachable through a proxy.
type ManagerView interface {
	// CurrentVersion returns the manager's designated current version (nil
	// when none is designated).
	CurrentVersion() (version.ID, error)
	// InstantiableDescriptor returns the descriptor of an instantiable
	// version.
	InstantiableDescriptor(v version.ID) (*dfm.Descriptor, error)
}

// LazyUpdater wraps a DCDO so that invocations trigger update checks per a
// LazySpec — the lazy update policy of §3.4 in which "a DCDO itself
// determines when it gets updated to the current version".
//
// With Restrict set, only current versions derived from the object's version
// are applied (the §3.5 variation for increasing-version-number managers);
// otherwise the object silently stays where it is.
type LazyUpdater struct {
	dcdo  *core.DCDO
	mgr   ManagerView
	spec  LazySpec
	clock vclock.Clock
	// Restrict limits automatic updates to descendants of the object's
	// current version.
	Restrict bool

	mu        sync.Mutex
	calls     uint64
	lastCheck time.Time
	updates   uint64
	checks    uint64
}

var (
	_ rpc.Object             = (*LazyUpdater)(nil)
	_ rpc.ContextAwareObject = (*LazyUpdater)(nil)
)

// NewLazyUpdater wraps dcdo.
func NewLazyUpdater(dcdo *core.DCDO, mgr ManagerView, spec LazySpec, clock vclock.Clock) *LazyUpdater {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &LazyUpdater{dcdo: dcdo, mgr: mgr, spec: spec, clock: clock, lastCheck: clock.Now()}
}

// DCDO returns the wrapped object.
func (l *LazyUpdater) DCDO() *core.DCDO { return l.dcdo }

// Stats reports how many update checks ran and how many applied an update.
func (l *LazyUpdater) Stats() (checks, updates uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checks, l.updates
}

// InvokeMethod implements rpc.Object: it runs the due update check, then
// delegates to the wrapped DCDO.
func (l *LazyUpdater) InvokeMethod(method string, args []byte) ([]byte, error) {
	if l.checkDue() {
		if err := l.CheckNow(); err != nil {
			// An unreachable manager must not take the object down; serve
			// the call at the current version (the object is merely
			// out of date, which lazy consistency permits).
			_ = err
		}
	}
	return l.dcdo.InvokeMethod(method, args)
}

// InvokeMethodCtx implements rpc.ContextAwareObject: the update check still
// runs (it is the object's own maintenance, not the caller's work), then
// the call proper is delegated with the caller's context intact.
func (l *LazyUpdater) InvokeMethodCtx(ctx context.Context, method string, args []byte) ([]byte, error) {
	if l.checkDue() {
		_ = l.CheckNow() // see InvokeMethod: staleness is tolerated, downtime is not
	}
	return l.dcdo.InvokeMethodCtx(ctx, method, args)
}

// OnMigrate runs the migration-triggered check.
func (l *LazyUpdater) OnMigrate() error {
	if !l.spec.OnMigrate {
		return nil
	}
	return l.CheckNow()
}

// checkDue advances the call counter and clock trigger state.
func (l *LazyUpdater) checkDue() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	due := false
	if l.spec.EveryCalls > 0 {
		l.calls++
		if l.calls >= l.spec.EveryCalls {
			l.calls = 0
			due = true
		}
	}
	if l.spec.EveryTime > 0 {
		now := l.clock.Now()
		if now.Sub(l.lastCheck) >= l.spec.EveryTime {
			l.lastCheck = now
			due = true
		}
	}
	return due
}

// CheckNow consults the manager and applies the current version if the
// object is out of date (and, under Restrict, only if the current version
// derives from the object's).
func (l *LazyUpdater) CheckNow() error {
	l.mu.Lock()
	l.checks++
	l.mu.Unlock()

	cur, err := l.mgr.CurrentVersion()
	if err != nil {
		return fmt.Errorf("lazy check: %w", err)
	}
	if cur.IsZero() {
		return nil
	}
	mine := l.dcdo.Version()
	if cur.Equal(mine) {
		return nil
	}
	if l.Restrict && !mine.IsZero() && !cur.IsDescendantOf(mine) {
		return nil // stays at its present version (§3.5)
	}
	desc, err := l.mgr.InstantiableDescriptor(cur)
	if err != nil {
		return fmt.Errorf("lazy update to %s: %w", cur, err)
	}
	// The update is applied under a background context: it is maintenance
	// the object chose to run, and aborting it at one caller's deadline
	// would leave the object half-evolved for every other caller.
	if _, err := l.dcdo.ApplyDescriptor(context.Background(), desc, cur); err != nil {
		return fmt.Errorf("lazy update to %s: %w", cur, err)
	}
	l.mu.Lock()
	l.updates++
	l.mu.Unlock()
	return nil
}
