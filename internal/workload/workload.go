// Package workload generates the synthetic object types the paper's
// evaluation sweeps over: implementations with F dynamic functions spread
// across C components (§4 measures creation with 500 functions in 50
// components, and call overhead for self-, intra-, and inter-component
// calls).
package workload

import (
	"errors"
	"fmt"

	"godcdo/internal/component"
	"godcdo/internal/dfm"
	"godcdo/internal/naming"
	"godcdo/internal/registry"
)

// Spec describes one synthetic object type.
type Spec struct {
	// Prefix namespaces the generated component IDs and code refs so
	// multiple workloads can share one registry.
	Prefix string
	// Functions is the total number of leaf dynamic functions.
	Functions int
	// Components is the number of components the functions are spread
	// over.
	Components int
	// BytesPerFunction sizes each component's synthetic code
	// (functions-in-component × BytesPerFunction). Zero means 1 KiB.
	BytesPerFunction int64
	// WithCallers adds, per component i, two extra functions exercising
	// the call classes of experiment E1: "<prefix>_intra<i>" calls a leaf
	// in the same component, "<prefix>_inter<i>" calls a leaf in the next
	// component (mod C).
	WithCallers bool
}

// Built is a generated object type ready to instantiate.
type Built struct {
	// Components holds the generated components, indexed by position.
	Components []*component.Component
	// ICOs maps component ID to the ICO LOID assigned to it.
	ICOs map[string]naming.LOID
	// Descriptor enables every generated function (each has exactly one
	// implementation).
	Descriptor *dfm.Descriptor
	// LeafNames lists the leaf function names in generation order.
	LeafNames []string
}

// LeafName returns the j-th leaf function of component i.
func LeafName(prefix string, i, j int) string {
	return fmt.Sprintf("%s_f%d_%d", prefix, i, j)
}

// IntraCallerName returns component i's intra-component caller.
func IntraCallerName(prefix string, i int) string {
	return fmt.Sprintf("%s_intra%d", prefix, i)
}

// InterCallerName returns component i's inter-component caller.
func InterCallerName(prefix string, i int) string {
	return fmt.Sprintf("%s_inter%d", prefix, i)
}

// ErrBadSpec is returned for unusable specs.
var ErrBadSpec = errors.New("workload: bad spec")

// Build registers the spec's modules in reg, assigns ICO LOIDs from alloc,
// and returns the built type. Components and descriptor reference real
// synthetic code bytes so transfers cost accordingly.
func Build(reg *registry.Registry, alloc *naming.Allocator, spec Spec) (*Built, error) {
	if spec.Functions <= 0 || spec.Components <= 0 {
		return nil, fmt.Errorf("%w: need positive functions and components", ErrBadSpec)
	}
	if spec.Components > spec.Functions {
		return nil, fmt.Errorf("%w: more components (%d) than functions (%d)",
			ErrBadSpec, spec.Components, spec.Functions)
	}
	if spec.Prefix == "" {
		spec.Prefix = "w"
	}
	perFunc := spec.BytesPerFunction
	if perFunc == 0 {
		perFunc = 1 << 10
	}

	built := &Built{
		ICOs:       make(map[string]naming.LOID, spec.Components),
		Descriptor: dfm.NewDescriptor(),
	}

	// Distribute functions round-robin so counts differ by at most one.
	perComp := make([]int, spec.Components)
	for f := 0; f < spec.Functions; f++ {
		perComp[f%spec.Components]++
	}

	leaf := func(registry.Caller, []byte) ([]byte, error) {
		return nil, nil
	}
	makeCaller := func(target string) registry.Func {
		return func(c registry.Caller, args []byte) ([]byte, error) {
			return c.CallInternal(target, args)
		}
	}

	for i := 0; i < spec.Components; i++ {
		compID := fmt.Sprintf("%s_c%d", spec.Prefix, i)
		codeRef := compID + ":1"
		funcs := make(map[string]registry.Func, perComp[i]+2)
		decls := make([]component.FunctionDecl, 0, perComp[i]+2)
		for j := 0; j < perComp[i]; j++ {
			name := LeafName(spec.Prefix, i, j)
			funcs[name] = leaf
			decls = append(decls, component.FunctionDecl{Name: name, Exported: true})
			built.LeafNames = append(built.LeafNames, name)
		}
		if spec.WithCallers {
			intraTarget := LeafName(spec.Prefix, i, 0)
			interTarget := LeafName(spec.Prefix, (i+1)%spec.Components, 0)
			intraName := IntraCallerName(spec.Prefix, i)
			interName := InterCallerName(spec.Prefix, i)
			funcs[intraName] = makeCaller(intraTarget)
			funcs[interName] = makeCaller(interTarget)
			decls = append(decls,
				component.FunctionDecl{Name: intraName, Exported: true, Calls: []string{intraTarget}},
				component.FunctionDecl{Name: interName, Exported: true, Calls: []string{interTarget}},
			)
		}
		if _, err := reg.Register(codeRef, registry.NativeImplType, funcs); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		desc := component.Descriptor{
			ID: compID, Revision: 1, CodeRef: codeRef,
			Impl: registry.NativeImplType, CodeSize: int64(len(decls)) * perFunc,
			Functions: decls,
		}
		comp, err := component.NewSynthetic(desc)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		built.Components = append(built.Components, comp)

		ico := alloc.Next()
		built.ICOs[compID] = ico
		built.Descriptor.Components[compID] = dfm.ComponentRef{
			ICO: ico, CodeRef: codeRef, Impl: registry.NativeImplType,
			CodeSize: desc.CodeSize, Revision: 1,
		}
		for _, d := range decls {
			built.Descriptor.Entries = append(built.Descriptor.Entries, dfm.EntryDesc{
				Function: d.Name, Component: compID, Exported: true, Enabled: true,
			})
		}
	}
	if err := built.Descriptor.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated descriptor invalid: %w", err)
	}
	return built, nil
}

// Fetcher returns a fetcher serving the built components by ICO LOID.
func (b *Built) Fetcher() component.Fetcher {
	byICO := make(map[naming.LOID]*component.Component, len(b.Components))
	for _, c := range b.Components {
		byICO[b.ICOs[c.Desc.ID]] = c
	}
	return component.FetcherFunc(func(ico naming.LOID) (*component.Component, error) {
		c, ok := byICO[ico]
		if !ok {
			return nil, fmt.Errorf("workload: no component at %s", ico)
		}
		return c, nil
	})
}

// TotalCodeBytes sums the generated components' code sizes.
func (b *Built) TotalCodeBytes() int64 {
	var total int64
	for _, c := range b.Components {
		total += c.Desc.CodeSize
	}
	return total
}
