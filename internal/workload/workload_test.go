package workload

import (
	"context"

	"errors"
	"testing"

	"godcdo/internal/core"
	"godcdo/internal/naming"
	"godcdo/internal/registry"
	"godcdo/internal/version"
)

func TestBuildDistributesFunctions(t *testing.T) {
	reg := registry.New()
	alloc := naming.NewAllocator(1, 9)
	b, err := Build(reg, alloc, Spec{Prefix: "t1", Functions: 10, Components: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Components) != 3 {
		t.Fatalf("components = %d", len(b.Components))
	}
	if len(b.LeafNames) != 10 {
		t.Fatalf("leaves = %d", len(b.LeafNames))
	}
	// Round-robin: 4+3+3.
	sizes := []int{len(b.Components[0].Desc.Functions), len(b.Components[1].Desc.Functions), len(b.Components[2].Desc.Functions)}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("function distribution = %v", sizes)
	}
	if len(b.Descriptor.Entries) != 10 {
		t.Fatalf("descriptor entries = %d", len(b.Descriptor.Entries))
	}
	if err := b.Descriptor.ValidateInstantiable(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildWithCallersAddsCallerFunctions(t *testing.T) {
	reg := registry.New()
	alloc := naming.NewAllocator(1, 9)
	b, err := Build(reg, alloc, Spec{Prefix: "t2", Functions: 4, Components: 2, WithCallers: true})
	if err != nil {
		t.Fatal(err)
	}
	// 4 leaves + 2 callers per component.
	if len(b.Descriptor.Entries) != 4+2*2 {
		t.Fatalf("entries = %d", len(b.Descriptor.Entries))
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	reg := registry.New()
	alloc := naming.NewAllocator(1, 9)
	for _, spec := range []Spec{
		{Functions: 0, Components: 1},
		{Functions: 1, Components: 0},
		{Functions: 2, Components: 3},
	} {
		if _, err := Build(reg, alloc, spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("spec %+v: err = %v, want ErrBadSpec", spec, err)
		}
	}
}

func TestBuiltInstantiatesWorkingDCDO(t *testing.T) {
	reg := registry.New()
	alloc := naming.NewAllocator(1, 9)
	b, err := Build(reg, alloc, Spec{Prefix: "t3", Functions: 6, Components: 2, WithCallers: true})
	if err != nil {
		t.Fatal(err)
	}
	d := core.New(core.Config{
		LOID:     naming.LOID{Domain: 1, Class: 1, Instance: 1},
		Registry: reg,
		Fetcher:  b.Fetcher(),
	})
	if _, err := d.ApplyDescriptor(context.Background(), b.Descriptor, version.ID{1}); err != nil {
		t.Fatal(err)
	}
	// Leaf calls work.
	if _, err := d.InvokeMethod(LeafName("t3", 0, 0), nil); err != nil {
		t.Fatal(err)
	}
	// Intra- and inter-component callers route through the DFM.
	if _, err := d.InvokeMethod(IntraCallerName("t3", 0), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InvokeMethod(InterCallerName("t3", 1), nil); err != nil {
		t.Fatal(err)
	}
	if got := len(d.ComponentIDs()); got != 2 {
		t.Fatalf("components = %d", got)
	}
}

func TestBuiltTotalCodeBytes(t *testing.T) {
	reg := registry.New()
	alloc := naming.NewAllocator(1, 9)
	b, err := Build(reg, alloc, Spec{Prefix: "t4", Functions: 4, Components: 2, BytesPerFunction: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.TotalCodeBytes(); got != 400 {
		t.Fatalf("TotalCodeBytes = %d, want 400", got)
	}
}

func TestBuildDefaultPrefixAndUniqueICOs(t *testing.T) {
	reg := registry.New()
	alloc := naming.NewAllocator(1, 9)
	b, err := Build(reg, alloc, Spec{Functions: 3, Components: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[naming.LOID]bool)
	for _, loid := range b.ICOs {
		if seen[loid] {
			t.Fatal("duplicate ICO LOID")
		}
		seen[loid] = true
	}
	if len(seen) != 3 {
		t.Fatalf("icos = %d", len(seen))
	}
}

func TestBuildFetcherUnknownICO(t *testing.T) {
	reg := registry.New()
	alloc := naming.NewAllocator(1, 9)
	b, err := Build(reg, alloc, Spec{Functions: 1, Components: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Fetcher().Fetch(context.Background(), naming.LOID{Instance: 999}); err == nil {
		t.Fatal("unknown ICO fetched")
	}
}
