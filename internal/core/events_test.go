package core

import (
	"context"

	"strings"
	"sync"
	"testing"

	"godcdo/internal/dfm"
	"godcdo/internal/version"
)

// eventRecorder collects emitted events thread-safely.
type eventRecorder struct {
	mu     sync.Mutex
	events []Event
}

func (r *eventRecorder) observe(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *eventRecorder) kinds() []EventKind {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EventKind, len(r.events))
	for i, e := range r.events {
		out[i] = e.Kind
	}
	return out
}

func (r *eventRecorder) last() Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events[len(r.events)-1]
}

func TestObserverSeesConfigurationEvents(t *testing.T) {
	f := newFixture(t)
	rec := &eventRecorder{}
	d := f.newDCDO(t, Config{Observer: rec.observe})
	f.incorporate(t, d, "mathlib", true)
	f.incorporate(t, d, "revlib", false)

	if err := d.DisableFunction(key("compare", "mathlib")); err != nil {
		t.Fatal(err)
	}
	if err := d.EnableFunction(key("compare", "revlib")); err != nil {
		t.Fatal(err)
	}
	if err := d.AddDependency(dfm.Dependency{Kind: dfm.DepD, FromFunc: "sort", ToFunc: "compare"}); err != nil {
		t.Fatal(err)
	}

	want := []EventKind{
		EventIncorporated, EventIncorporated,
		EventDisabled, EventEnabled, EventDependencyAdded,
	}
	got := rec.kinds()
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
	if e := rec.last(); !strings.Contains(e.Detail, "[sort] -> [compare]") {
		t.Fatalf("dependency event detail = %q", e.Detail)
	}
}

func TestObserverSeesEvolutionEvent(t *testing.T) {
	f := newFixture(t)
	rec := &eventRecorder{}
	d := f.newDCDO(t, Config{Observer: rec.observe})
	f.incorporate(t, d, "mathlib", true)

	target := snapshotWith(d, func(desc *dfm.Descriptor) {
		desc.Entry(key("sort", "mathlib")).Exported = false
	})
	if _, err := d.ApplyDescriptor(context.Background(), target, version.ID{1, 4}); err != nil {
		t.Fatal(err)
	}
	e := rec.last()
	if e.Kind != EventEvolved {
		t.Fatalf("last event = %v", e.Kind)
	}
	if !e.Version.Equal(version.ID{1, 4}) {
		t.Fatalf("event version = %v", e.Version)
	}
	if !strings.Contains(e.Detail, "1 entries retuned") {
		t.Fatalf("event detail = %q", e.Detail)
	}
	if !strings.Contains(e.String(), "evolved") || !strings.Contains(e.String(), "version=1.4") {
		t.Fatalf("event string = %q", e.String())
	}
}

func TestFailedOperationsEmitNoEvents(t *testing.T) {
	f := newFixture(t)
	rec := &eventRecorder{}
	d := f.newDCDO(t, Config{Observer: rec.observe})
	f.incorporate(t, d, "mathlib", true)
	before := len(rec.kinds())

	if err := d.EnableFunction(key("ghost", "mathlib")); err == nil {
		t.Fatal("expected failure")
	}
	if err := d.AddDependency(dfm.Dependency{Kind: dfm.DepA, FromFunc: "x", ToFunc: "y"}); err == nil {
		t.Fatal("expected failure")
	}
	if err := d.RemoveComponent("ghost"); err == nil {
		t.Fatal("expected failure")
	}
	if got := len(rec.kinds()); got != before {
		t.Fatalf("failed operations emitted %d events", got-before)
	}
}

func TestNoObserverIsSafe(t *testing.T) {
	f := newFixture(t)
	d := f.newDCDO(t, Config{}) // no observer
	f.incorporate(t, d, "mathlib", true)
	if err := d.DisableFunction(key("sort", "mathlib")); err != nil {
		t.Fatal(err)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{
		EventIncorporated: "incorporated", EventComponentRemoved: "component-removed",
		EventEnabled: "enabled", EventDisabled: "disabled",
		EventEvolved: "evolved", EventDependencyAdded: "dependency-added",
		EventKind(42): "event(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d) = %q, want %q", k, got, want)
		}
	}
}
