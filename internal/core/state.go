package core

import (
	"context"
	"fmt"

	"godcdo/internal/dfm"
	"godcdo/internal/objstate"
	"godcdo/internal/version"
	"godcdo/internal/wire"
)

// A DCDO carries persistent state alongside its replaceable implementation:
// dynamic functions read and write it through their Caller, and it survives
// evolution (the implementation changes underneath it) and migration (it is
// captured, moved, and restored while the implementation is *rebuilt* at
// the destination from the same version descriptor, using components that
// match the destination's implementation type — the heterogeneity story of
// §2.1).

// State implements registry.Caller: dynamic functions access the object's
// persistent state through it.
func (d *DCDO) State() *objstate.State { return d.state }

// CaptureState serialises everything needed to re-instantiate the object
// elsewhere: its version, its configuration descriptor, and its persistent
// state. Together with RestoreState this makes a DCDO a
// legion.StatefulObject, so the generic migration path applies to DCDOs.
func (d *DCDO) CaptureState() ([]byte, error) {
	snap := d.Snapshot()
	e := wire.NewEncoder(256)
	e.PutUintSlice(d.Version().Encode())
	e.PutBytes(snap.Encode())
	e.PutBytes(d.state.Encode())
	return e.Bytes(), nil
}

// RestoreState rebuilds a (typically fresh) DCDO from a capture: it applies
// the captured descriptor — fetching components through this object's own
// fetcher and binding implementations that match this object's host
// implementation type — and then reinstates the persistent state.
func (d *DCDO) RestoreState(buf []byte) error {
	dec := wire.NewDecoder(buf)
	segs, err := dec.UintSlice()
	if err != nil {
		return fmt.Errorf("core: restore: version: %w", err)
	}
	ver, err := version.Decode(segs)
	if err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	descBytes, err := dec.Bytes()
	if err != nil {
		return fmt.Errorf("core: restore: descriptor: %w", err)
	}
	desc, err := dfm.DecodeDescriptor(descBytes)
	if err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	stateBytes, err := dec.Bytes()
	if err != nil {
		return fmt.Errorf("core: restore: state: %w", err)
	}
	restored, err := objstate.Decode(stateBytes)
	if err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}

	// RestoreState implements the context-free legion.StatefulObject
	// contract; restoration runs to completion rather than inheriting any
	// caller deadline — a half-restored object is worse than a slow one.
	if _, err := d.ApplyDescriptor(context.Background(), desc, ver); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	d.mu.Lock()
	d.state = restored
	d.mu.Unlock()
	return nil
}
