package core

import (
	"fmt"
	"time"

	"godcdo/internal/naming"
	"godcdo/internal/obs"
	"godcdo/internal/version"
)

// EventKind classifies configuration events a DCDO emits.
type EventKind int

// Event kinds.
const (
	// EventIncorporated fires after a component is incorporated.
	EventIncorporated EventKind = iota + 1
	// EventComponentRemoved fires after a component is removed.
	EventComponentRemoved
	// EventEnabled fires after a function implementation is enabled.
	EventEnabled
	// EventDisabled fires after a function implementation is disabled.
	EventDisabled
	// EventEvolved fires after a whole-descriptor evolution completes.
	EventEvolved
	// EventDependencyAdded fires after a dependency is installed.
	EventDependencyAdded
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventIncorporated:
		return "incorporated"
	case EventComponentRemoved:
		return "component-removed"
	case EventEnabled:
		return "enabled"
	case EventDisabled:
		return "disabled"
	case EventEvolved:
		return "evolved"
	case EventDependencyAdded:
		return "dependency-added"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event records one configuration change on a DCDO. Events let operators
// audit evolution — which components arrived, which functions flipped, when
// versions changed — without scraping logs.
type Event struct {
	Kind      EventKind
	Object    naming.LOID
	Component string
	Function  string
	Version   version.ID
	Detail    string
	Time      time.Time
}

// String renders a log-friendly line.
func (e Event) String() string {
	s := fmt.Sprintf("%s %s", e.Object, e.Kind)
	if e.Function != "" {
		s += " " + e.Function
	}
	if e.Component != "" {
		s += "@" + e.Component
	}
	if !e.Version.IsZero() {
		s += " version=" + e.Version.String()
	}
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// Observer receives configuration events. Observers run synchronously on
// the configuring goroutine and must return quickly; hand slow work to a
// channel or goroutine.
type Observer func(Event)

// emit delivers an event to the configured observer, if any, and mirrors it
// into the node's obs event log when SetObs wired one.
func (d *DCDO) emit(kind EventKind, component, function string, ver version.ID, detail string) {
	observer := d.cfg.Observer
	st := d.obsState.Load()
	if observer == nil && (st == nil || st.events == nil) {
		return
	}
	ev := Event{
		Kind:      kind,
		Object:    d.cfg.LOID,
		Component: component,
		Function:  function,
		Version:   ver,
		Detail:    detail,
		Time:      d.cfg.Clock.Now(),
	}
	if observer != nil {
		observer(ev)
	}
	if st != nil && st.events != nil {
		verStr := ""
		if !ver.IsZero() {
			verStr = ver.String()
		}
		st.events.Append(obs.Event{
			Time:      ev.Time,
			Kind:      kind.String(),
			Object:    d.cfg.LOID.String(),
			Component: component,
			Function:  function,
			Version:   verStr,
			Detail:    detail,
		})
	}
}
