package core

import (
	"context"
	"strings"
	"time"

	"godcdo/internal/dfm"
	"godcdo/internal/metrics"
	"godcdo/internal/obs"
	"godcdo/internal/rpc"
	"godcdo/internal/version"
)

// dcdoObs is the object's immutable observability wiring, swapped
// atomically so the invoke path reads it with one pointer load and no lock.
type dcdoObs struct {
	tracer      *obs.Tracer
	events      *obs.EventLog
	histResolve *metrics.Histogram
	histFunc    *metrics.Histogram
}

var (
	_ obs.Configurable  = (*DCDO)(nil)
	_ rpc.ContextObject = (*DCDO)(nil)
)

// SetObs wires the object into o: DFM resolution and user-function
// execution gain dcdo.resolve / dcdo.func spans and histograms, every DFM
// function gets a per-function latency histogram ("dfm.<loid>.<fn>"), and
// configuration events are mirrored into o's event log. A nil o disables
// all of it and restores the seed invoke path.
func (d *DCDO) SetObs(o *obs.Obs) {
	if o == nil {
		d.obsState.Store(nil)
		d.table.EnableLatency(nil)
		return
	}
	st := &dcdoObs{tracer: o.Tracer, events: o.Events}
	if reg := o.Metrics; reg != nil {
		st.histResolve = reg.Histogram(obs.StageDCDOResolve)
		st.histFunc = reg.Histogram(obs.StageDCDOFunc)
		prefix := "dfm." + d.cfg.LOID.String() + "."
		d.table.EnableLatency(func(fn string) *metrics.Histogram {
			return reg.Histogram(prefix + fn)
		})
	} else {
		d.table.EnableLatency(nil)
	}
	d.obsState.Store(st)
}

// invokeMetered is the histogram-observing variant of the InvokeMethod user
// path, taken only when SetObs installed observability state.
func (d *DCDO) invokeMetered(st *dcdoObs, method string, args []byte) ([]byte, error) {
	var resolveStart time.Time
	if st.histResolve != nil {
		resolveStart = time.Now()
	}
	impl, release, err := d.table.BeginExportedCall(method)
	if st.histResolve != nil {
		st.histResolve.Observe(time.Since(resolveStart))
	}
	if err != nil {
		return nil, mapDFMError(err)
	}
	defer release()
	var funcStart time.Time
	if st.histFunc != nil {
		funcStart = time.Now()
	}
	result, err := impl(d, args)
	if st.histFunc != nil {
		st.histFunc.Observe(time.Since(funcStart))
	}
	return result, err
}

// InvokeMethodTraced implements rpc.ContextObject: the dispatcher hands the
// server-side span context down so the object's internal stages — DFM
// resolution and user-function execution (or the control-plane handler) —
// appear as children of server.dispatch in the caller's trace. ctx is
// checked at the same stage boundaries InvokeMethodCtx uses, so cancelled
// calls abort between resolution and execution even when traced.
func (d *DCDO) InvokeMethodTraced(ctx context.Context, parent obs.SpanContext, method string, args []byte) ([]byte, error) {
	st := d.obsState.Load()
	if st == nil || st.tracer == nil {
		return d.InvokeMethodCtx(ctx, method, args)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if strings.HasPrefix(method, ControlPrefix) {
		sp := st.tracer.StartSpan(obs.StageDCDOControl, parent)
		sp.Annotate("method", method)
		result, err := d.invokeControl(ctx, method, args)
		sp.Fail(err)
		sp.Finish()
		return result, err
	}

	rs := st.tracer.StartSpan(obs.StageDCDOResolve, parent)
	var resolveStart time.Time
	if st.histResolve != nil {
		resolveStart = time.Now()
	}
	impl, release, err := d.table.BeginExportedCall(method)
	if st.histResolve != nil {
		st.histResolve.Observe(time.Since(resolveStart))
	}
	rs.Fail(err)
	rs.Finish()
	if err != nil {
		return nil, mapDFMError(err)
	}
	defer release()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	fs := st.tracer.StartSpan(obs.StageDCDOFunc, parent)
	fs.Annotate("function", method)
	var funcStart time.Time
	if st.histFunc != nil {
		funcStart = time.Now()
	}
	result, err := impl(d, args)
	if st.histFunc != nil {
		st.histFunc.Observe(time.Since(funcStart))
	}
	fs.Fail(err)
	fs.Finish()
	return result, err
}

// ApplyDescriptorTraced is ApplyDescriptor with the caller's span context
// (the manager's mgr.apply span), recording the whole evolution as a
// dcdo.apply span. With tracing off it is exactly ApplyDescriptor.
func (d *DCDO) ApplyDescriptorTraced(ctx context.Context, parent obs.SpanContext, target *dfm.Descriptor, newVersion version.ID) (ApplyReport, error) {
	st := d.obsState.Load()
	if st == nil || st.tracer == nil {
		return d.ApplyDescriptor(ctx, target, newVersion)
	}
	sp := st.tracer.StartSpan(obs.StageDCDOApply, parent)
	sp.Annotate("object", d.cfg.LOID.String())
	sp.Annotate("version", newVersion.String())
	report, err := d.ApplyDescriptor(ctx, target, newVersion)
	sp.Fail(err)
	sp.Finish()
	return report, err
}
