package core

import (
	"context"

	"fmt"
	"math/rand"
	"testing"

	"godcdo/internal/component"
	"godcdo/internal/dfm"
	"godcdo/internal/naming"
	"godcdo/internal/registry"
	"godcdo/internal/version"
)

// Property: for ANY pair of valid instantiable descriptors (current,
// target) drawn from a component pool, evolving a DCDO from current to
// target yields a snapshot functionally equivalent to target, and the
// object keeps dispatching correctly. This is the central correctness
// property of the evolution mechanism: the plan computed by Diff, executed
// by ApplyDescriptor, always lands exactly on the requested configuration.

// descriptorPool builds a pool of components: nFuncs functions, each with
// an implementation in 2 components (so enabled implementations can swap),
// plus a per-component singleton function.
type descriptorPool struct {
	reg      *registry.Registry
	comps    []component.Descriptor
	icos     map[string]naming.LOID
	fetch    component.Fetcher
	funcsByC map[string][]string
}

func newDescriptorPool(t *testing.T, nComps, nShared int) *descriptorPool {
	t.Helper()
	p := &descriptorPool{
		reg:      registry.New(),
		icos:     make(map[string]naming.LOID),
		funcsByC: make(map[string][]string),
	}
	store := make(map[naming.LOID]*component.Component)
	for ci := 0; ci < nComps; ci++ {
		compID := fmt.Sprintf("pc%d", ci)
		codeRef := compID + ":1"
		funcs := make(map[string]registry.Func)
		var decls []component.FunctionDecl
		add := func(name string) {
			result := []byte(name + "@" + compID)
			funcs[name] = func(registry.Caller, []byte) ([]byte, error) { return result, nil }
			decls = append(decls, component.FunctionDecl{Name: name, Exported: true})
			p.funcsByC[compID] = append(p.funcsByC[compID], name)
		}
		// Shared functions implemented by every component.
		for fi := 0; fi < nShared; fi++ {
			add(fmt.Sprintf("shared%d", fi))
		}
		// One function unique to this component.
		add(fmt.Sprintf("only%d", ci))

		if _, err := p.reg.Register(codeRef, registry.NativeImplType, funcs); err != nil {
			t.Fatal(err)
		}
		desc := component.Descriptor{
			ID: compID, Revision: 1, CodeRef: codeRef,
			Impl: registry.NativeImplType, CodeSize: 128,
			Functions: decls,
		}
		comp, err := component.NewSynthetic(desc)
		if err != nil {
			t.Fatal(err)
		}
		ico := naming.LOID{Domain: 1, Class: 9, Instance: uint64(100 + ci)}
		p.comps = append(p.comps, desc)
		p.icos[compID] = ico
		store[ico] = comp
	}
	p.fetch = component.FetcherFunc(func(ico naming.LOID) (*component.Component, error) {
		c, ok := store[ico]
		if !ok {
			return nil, fmt.Errorf("pool: no component at %s", ico)
		}
		return c, nil
	})
	return p
}

// randomDescriptor draws a valid instantiable descriptor: a nonempty subset
// of components, all their entries present, exactly one enabled
// implementation per function name chosen among incorporated components.
func (p *descriptorPool) randomDescriptor(rng *rand.Rand) *dfm.Descriptor {
	d := dfm.NewDescriptor()
	// Nonempty random subset of components.
	var chosen []component.Descriptor
	for {
		chosen = chosen[:0]
		for _, c := range p.comps {
			if rng.Intn(2) == 0 {
				chosen = append(chosen, c)
			}
		}
		if len(chosen) > 0 {
			break
		}
	}
	implsByFunc := make(map[string][]string) // function -> component IDs
	for _, c := range chosen {
		d.Components[c.ID] = dfm.ComponentRef{
			ICO: p.icos[c.ID], CodeRef: c.CodeRef,
			Impl: c.Impl, CodeSize: c.CodeSize, Revision: c.Revision,
		}
		for _, fn := range c.Functions {
			implsByFunc[fn.Name] = append(implsByFunc[fn.Name], c.ID)
		}
	}
	for fn, comps := range implsByFunc {
		enabledIdx := rng.Intn(len(comps))
		for i, compID := range comps {
			d.Entries = append(d.Entries, dfm.EntryDesc{
				Function:  fn,
				Component: compID,
				Exported:  rng.Intn(4) != 0, // mostly exported
				Enabled:   i == enabledIdx,
			})
		}
	}
	return d
}

func TestPropertyApplyReachesAnyTarget(t *testing.T) {
	const rounds = 60
	pool := newDescriptorPool(t, 4, 3)
	rng := rand.New(rand.NewSource(42)) // deterministic property run

	obj := New(Config{
		LOID:     naming.LOID{Domain: 1, Class: 1, Instance: 1},
		Registry: pool.reg,
		Fetcher:  pool.fetch,
	})
	// Start somewhere.
	start := pool.randomDescriptor(rng)
	if err := start.ValidateInstantiable(); err != nil {
		t.Fatalf("generator produced invalid descriptor: %v", err)
	}
	if _, err := obj.ApplyDescriptor(context.Background(), start, version.ID{1}); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < rounds; round++ {
		target := pool.randomDescriptor(rng)
		if err := target.ValidateInstantiable(); err != nil {
			t.Fatalf("round %d: generator produced invalid descriptor: %v", round, err)
		}
		ver := version.ID{1, uint32(round + 1)}
		if _, err := obj.ApplyDescriptor(context.Background(), target, ver); err != nil {
			t.Fatalf("round %d: apply: %v", round, err)
		}
		snap := obj.Snapshot()
		if !snap.Equivalent(target) {
			t.Fatalf("round %d: snapshot not equivalent to target\nsnap=%+v\ntarget=%+v",
				round, snap.Entries, target.Entries)
		}
		if err := snap.Validate(); err != nil {
			t.Fatalf("round %d: snapshot invalid: %v", round, err)
		}
		if !obj.Version().Equal(ver) {
			t.Fatalf("round %d: version = %v, want %v", round, obj.Version(), ver)
		}

		// Every enabled exported function dispatches to the exact
		// implementation the target enables.
		for _, e := range target.Entries {
			if !e.Enabled || !e.Exported {
				continue
			}
			out, err := obj.InvokeMethod(e.Function, nil)
			if err != nil {
				t.Fatalf("round %d: invoke %s: %v", round, e.Function, err)
			}
			want := e.Function + "@" + e.Component
			if string(out) != want {
				t.Fatalf("round %d: %s dispatched to %q, want %q", round, e.Function, out, want)
			}
		}
	}
}

// Property: concurrent whole-descriptor evolutions are serialised; the
// final state is exactly one of the requested targets (never an
// interleaving), and the object serves correctly throughout.
func TestPropertyConcurrentApplySerialised(t *testing.T) {
	pool := newDescriptorPool(t, 3, 2)
	rng := rand.New(rand.NewSource(99))

	for round := 0; round < 10; round++ {
		obj := New(Config{
			LOID:     naming.LOID{Domain: 1, Class: 1, Instance: uint64(round + 1)},
			Registry: pool.reg,
			Fetcher:  pool.fetch,
		})
		start := pool.randomDescriptor(rng)
		if _, err := obj.ApplyDescriptor(context.Background(), start, version.ID{1}); err != nil {
			t.Fatal(err)
		}
		a := pool.randomDescriptor(rng)
		b := pool.randomDescriptor(rng)

		errs := make(chan error, 2)
		go func() {
			_, err := obj.ApplyDescriptor(context.Background(), a, version.ID{1, 1})
			errs <- err
		}()
		go func() {
			_, err := obj.ApplyDescriptor(context.Background(), b, version.ID{1, 2})
			errs <- err
		}()
		for i := 0; i < 2; i++ {
			if err := <-errs; err != nil {
				t.Fatalf("round %d: concurrent apply: %v", round, err)
			}
		}
		snap := obj.Snapshot()
		if !snap.Equivalent(a) && !snap.Equivalent(b) {
			t.Fatalf("round %d: final state is neither target", round)
		}
		if err := snap.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// Property: the diff between a snapshot and itself is always empty, and
// applying it is a no-op (idempotence of evolution).
func TestPropertyApplyIdempotent(t *testing.T) {
	pool := newDescriptorPool(t, 3, 2)
	rng := rand.New(rand.NewSource(7))

	for round := 0; round < 20; round++ {
		desc := pool.randomDescriptor(rng)
		obj := New(Config{
			LOID:     naming.LOID{Domain: 1, Class: 1, Instance: uint64(round + 1)},
			Registry: pool.reg,
			Fetcher:  pool.fetch,
		})
		if _, err := obj.ApplyDescriptor(context.Background(), desc, version.ID{1}); err != nil {
			t.Fatal(err)
		}
		snap := obj.Snapshot()
		plan := dfm.Diff(snap, snap)
		if !plan.Empty() {
			t.Fatalf("round %d: self-diff not empty: %+v", round, plan)
		}
		report, err := obj.ApplyDescriptor(context.Background(), snap, version.ID{1})
		if err != nil {
			t.Fatal(err)
		}
		if report != (ApplyReport{}) {
			t.Fatalf("round %d: self-apply did work: %+v", round, report)
		}
	}
}
